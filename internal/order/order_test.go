package order

import "testing"

func TestComparators(t *testing.T) {
	if !Float64(1.0, 2.0) || Float64(2.0, 1.0) || Float64(1.0, 1.0) {
		t.Error("Float64 comparator wrong")
	}
	if !Int64(int64(1), int64(2)) || Int64(int64(2), int64(2)) {
		t.Error("Int64 comparator wrong")
	}
	if !Int(1, 2) || Int(3, 2) {
		t.Error("Int comparator wrong")
	}
}

func TestReverse(t *testing.T) {
	desc := Reverse(Float64)
	if !desc(2.0, 1.0) || desc(1.0, 2.0) || desc(1.0, 1.0) {
		t.Error("Reverse comparator wrong")
	}
}

func TestKVLess(t *testing.T) {
	a := KV{Key: 1, Seq: 5}
	b := KV{Key: 2, Seq: 0}
	c := KV{Key: 1, Seq: 6}
	if !KVLess(a, b) || KVLess(b, a) {
		t.Error("KVLess key ordering wrong")
	}
	if !KVLess(a, c) || KVLess(c, a) {
		t.Error("KVLess seq tie-break wrong")
	}
	if KVLess(a, a) {
		t.Error("KVLess not irreflexive")
	}
}
