// Package order defines comparison functions shared by the sorting,
// selection and sparse-algebra packages.
package order

import "repro/internal/machine"

// Less is a strict weak ordering on element values.
type Less func(a, b machine.Value) bool

// Float64 orders float64 values ascending.
func Float64(a, b machine.Value) bool { return a.(float64) < b.(float64) }

// Int64 orders int64 values ascending.
func Int64(a, b machine.Value) bool { return a.(int64) < b.(int64) }

// Int orders int values ascending.
func Int(a, b machine.Value) bool { return a.(int) < b.(int) }

// Reverse returns the opposite ordering. The randomized rank selection uses
// it to "reverse the order of the elements (logically, that is, by
// henceforth flipping the result of the comparator)" (Section VI, step 7).
func Reverse(less Less) Less {
	return func(a, b machine.Value) bool { return less(b, a) }
}

// KV is a key-value pair ordered by key; ties are broken by a sequence
// number so that sorts of KV values are effectively stable. The PRAM
// simulation and SpMV sort (key, payload) tuples.
type KV struct {
	Key int64
	Seq int64
	Val machine.Value
}

// KVLess orders KV pairs by (Key, Seq).
func KVLess(a, b machine.Value) bool {
	x, y := a.(KV), b.(KV)
	if x.Key != y.Key {
		return x.Key < y.Key
	}
	return x.Seq < y.Seq
}
