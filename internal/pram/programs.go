package pram

import "repro/internal/machine"

// TreeSum is an EREW PRAM program summing m float64 cells with a binary
// reduction tree: p = m/2 processors, log2 m steps, the total ends in cell
// 0. Each step t has processor i combine cells 2^{t+1}i and 2^{t+1}i + 2^t.
// Memory cells are read by at most one processor per step, so it is EREW.
type TreeSum struct {
	N int // number of summands; must be a power of two
}

type treeSumState struct {
	partial float64
	phase   int
}

func (ts TreeSum) Procs() int { return max(ts.N/2, 1) }
func (ts TreeSum) Cells() int { return ts.N }

// Steps: each reduction level needs two reads (one per operand) and one
// write, serialized into three PRAM steps per level.
func (ts TreeSum) Steps() int {
	levels := 0
	for s := ts.N; s > 1; s /= 2 {
		levels++
	}
	return 3 * levels
}

func (ts TreeSum) InitState(int) machine.Value { return treeSumState{} }

func (ts TreeSum) level(t int) (lvl, phase int) { return t / 3, t % 3 }

func (ts TreeSum) active(lvl, proc int) bool {
	return proc < ts.N>>(lvl+1)
}

func (ts TreeSum) Read(t, proc int, state machine.Value) (int, bool) {
	lvl, phase := ts.level(t)
	if !ts.active(lvl, proc) {
		return 0, false
	}
	stride := 1 << lvl
	base := proc * stride * 2
	switch phase {
	case 0:
		return base, true
	case 1:
		return base + stride, true
	default:
		return 0, false
	}
}

func (ts TreeSum) Compute(t, proc int, state machine.Value, read machine.Value) (machine.Value, *Write) {
	lvl, phase := ts.level(t)
	st := state.(treeSumState)
	if !ts.active(lvl, proc) {
		return st, nil
	}
	switch phase {
	case 0:
		st.partial = read.(float64)
		return st, nil
	case 1:
		st.partial += read.(float64)
		return st, nil
	default:
		return st, &Write{Addr: proc * (1 << (lvl + 1)), Val: st.partial}
	}
}

// HillisSteele is the classic doubling prefix-sum program: n processors, n
// cells, one step per doubling level (plus one initial load step). At level
// l, processor i >= 2^l reads cell i - 2^l and writes the updated prefix to
// cell i, so cell c is read by processor c + 2^l while processor c writes
// it — concurrent access within a step, requiring the CRCW simulation (the
// EREW simulation rejects it).
type HillisSteele struct {
	N int // number of elements; must be a power of two
}

func (hs HillisSteele) Procs() int { return hs.N }
func (hs HillisSteele) Cells() int { return hs.N }

func (hs HillisSteele) Steps() int {
	levels := 0
	for s := hs.N; s > 1; s /= 2 {
		levels++
	}
	return 1 + levels
}

func (hs HillisSteele) InitState(int) machine.Value { return float64(0) }

func (hs HillisSteele) Read(t, proc int, state machine.Value) (int, bool) {
	if t == 0 {
		return proc, true // load own value
	}
	off := 1 << (t - 1)
	if proc < off {
		return 0, false // prefix already complete
	}
	return proc - off, true
}

func (hs HillisSteele) Compute(t, proc int, state machine.Value, read machine.Value) (machine.Value, *Write) {
	if t == 0 {
		return read, nil
	}
	off := 1 << (t - 1)
	if proc < off {
		return state, nil
	}
	sum := state.(float64) + read.(float64)
	return sum, &Write{Addr: proc, Val: sum}
}

// BroadcastWrite is a one-step concurrent-write program: every processor
// writes its index to cell 0; the arbitrary-CRCW rule (lowest index wins in
// this simulation) must leave 0 there. It exists to exercise and test the
// concurrent-write resolution.
type BroadcastWrite struct {
	P int
}

func (bw BroadcastWrite) Procs() int                  { return bw.P }
func (bw BroadcastWrite) Cells() int                  { return 1 }
func (bw BroadcastWrite) Steps() int                  { return 1 }
func (bw BroadcastWrite) InitState(int) machine.Value { return nil }
func (bw BroadcastWrite) Read(int, int, machine.Value) (int, bool) {
	return 0, false
}

func (bw BroadcastWrite) Compute(t, proc int, state, read machine.Value) (machine.Value, *Write) {
	return nil, &Write{Addr: 0, Val: proc}
}

// ConcurrentRead is a one-step program where every processor reads cell 0
// and stores it in local state. Under EREW it must fail; under CRCW every
// processor ends with the value.
type ConcurrentRead struct {
	P int
}

func (cr ConcurrentRead) Procs() int                  { return cr.P }
func (cr ConcurrentRead) Cells() int                  { return 1 }
func (cr ConcurrentRead) Steps() int                  { return 1 }
func (cr ConcurrentRead) InitState(int) machine.Value { return nil }
func (cr ConcurrentRead) Read(int, int, machine.Value) (int, bool) {
	return 0, true
}

func (cr ConcurrentRead) Compute(t, proc int, state, read machine.Value) (machine.Value, *Write) {
	return read, nil
}

// ListRanking computes, for every node of a linked list (or, more
// generally, an in-tree), its distance to the tail/root by pointer jumping
// (Wyllie's algorithm): log2(n) rounds of rank[i] += rank[next[i]];
// next[i] = next[next[i]], each serialized into four PRAM steps (two reads,
// two writes). On a simple list the schedule happens to stay exclusive; on
// an in-tree several nodes read the same successor cells, exercising the
// CRCW simulation on an irregular, data-dependent access pattern.
//
// Memory layout: cells [0, n) hold next pointers (int; n means nil), cells
// [n, 2n) hold ranks (int64).
type ListRanking struct {
	Next []int // next[i] in [0, n], n meaning end-of-list
}

type listState struct {
	next    int
	rank    int64
	fetched int64 // neighbor's rank fetched in the current round
}

func (lr ListRanking) n() int     { return len(lr.Next) }
func (lr ListRanking) Procs() int { return lr.n() }
func (lr ListRanking) Cells() int { return 2 * lr.n() }

func (lr ListRanking) Steps() int {
	rounds := 0
	for s := 1; s < lr.n(); s *= 2 {
		rounds++
	}
	return 4 * rounds
}

func (lr ListRanking) InitState(proc int) machine.Value {
	rank := int64(1)
	if lr.Next[proc] == lr.n() {
		rank = 0
	}
	return listState{next: lr.Next[proc], rank: rank}
}

func (lr ListRanking) Read(t, proc int, state machine.Value) (int, bool) {
	st := state.(listState)
	if st.next == lr.n() {
		return 0, false // reached the tail; nothing to jump over
	}
	switch t % 4 {
	case 0:
		return lr.n() + st.next, true // neighbor's rank
	case 1:
		return st.next, true // neighbor's next
	default:
		return 0, false
	}
}

func (lr ListRanking) Compute(t, proc int, state, read machine.Value) (machine.Value, *Write) {
	st := state.(listState)
	if st.next == lr.n() {
		// Still publish our (final) values so jumpers read fresh cells.
		switch t % 4 {
		case 2:
			return st, &Write{Addr: lr.n() + proc, Val: st.rank}
		case 3:
			return st, &Write{Addr: proc, Val: st.next}
		}
		return st, nil
	}
	switch t % 4 {
	case 0:
		st.fetched = read.(int64)
		return st, nil
	case 1:
		st.rank += st.fetched
		st.next = read.(int)
		return st, nil
	case 2:
		return st, &Write{Addr: lr.n() + proc, Val: st.rank}
	default:
		return st, &Write{Addr: proc, Val: st.next}
	}
}
