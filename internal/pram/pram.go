// Package pram simulates PRAM algorithms on the Spatial Computer Model
// (Section VII of the paper).
//
// The shared memory is emulated by a dedicated subgrid of processors (one
// word-sized cell per PE, row-major) and the PRAM processors occupy a square
// subgrid next to it, indexed along the Z-order curve. Each synchronous PRAM
// step lets every processor read one cell, compute locally, and write one
// cell.
//
//   - The EREW simulation (Lemma VII.1) services each access with a direct
//     request/response message pair: O(p(sqrt p + sqrt m)) energy and O(1)
//     depth per step. It rejects concurrent accesses to a cell.
//   - The CRCW simulation (Lemma VII.2) resolves concurrency by sorting
//     access tuples with the energy-optimal 2-D mergesort, electing one
//     leader per cell, broadcasting read values with a segmented scan, and
//     sorting the results back to the requesting processors: same energy,
//     O(log^3 p) depth per step.
package pram

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/zorder"
)

// Write is a memory write issued by a processor: store Val into cell Addr.
type Write struct {
	Addr int
	Val  machine.Value
}

// Program is a synchronous PRAM algorithm. Each processor owns O(1) words
// of local state (the spatial PE simulating it holds the state in one
// register). In every step each processor may read one cell, then compute,
// then write one cell.
type Program interface {
	// Procs returns the number of PRAM processors p.
	Procs() int
	// Cells returns the number of shared memory cells m.
	Cells() int
	// Steps returns the number of synchronous steps T.
	Steps() int
	// InitState returns processor proc's initial local state.
	InitState(proc int) machine.Value
	// Read returns the cell processor proc reads at step t (ok=false if
	// the processor does not read this step).
	Read(t, proc int, state machine.Value) (addr int, ok bool)
	// Compute consumes the read value (nil if the processor did not read)
	// and returns the new local state and an optional write.
	Compute(t, proc int, state machine.Value, read machine.Value) (machine.Value, *Write)
}

// Mode selects the concurrency discipline of the simulation.
type Mode int

const (
	// EREW rejects any two processors touching the same cell in a step.
	EREW Mode = iota
	// CRCW allows arbitrary concurrent reads and writes; concurrent
	// writes are resolved in favor of the lowest processor index
	// (a deterministic instance of the paper's "arbitrary" CRCW).
	CRCW
)

func (md Mode) String() string {
	if md == EREW {
		return "EREW"
	}
	return "CRCW"
}

// ErrConcurrentAccess is returned by the EREW simulation when a step
// violates exclusive access.
var ErrConcurrentAccess = errors.New("pram: concurrent access to a memory cell in EREW mode")

// Sim simulates one Program on a Machine.
type Sim struct {
	M    *machine.Machine
	Prog Program
	Mode Mode

	mem       grid.Rect
	memTrack  grid.Track
	procs     grid.Rect
	procTrack grid.Track
	procN     int // padded processor count (procs.Size())
	state     []machine.Value
}

// memReg is the register holding a memory cell's word.
const memReg = "pram.mem"

// New lays out the memory and processor subgrids on the machine and places
// the initial memory image. The memory subgrid is ceil(sqrt m) x
// ceil(sqrt m) at the origin; the processor subgrid is the next power-of-two
// square to its right (square and power-of-two so the CRCW sorting steps
// can run on it).
func New(m *machine.Machine, prog Program, mode Mode, memInit []machine.Value) *Sim {
	cells := prog.Cells()
	if len(memInit) > cells {
		panic(fmt.Sprintf("pram: %d init values for %d cells", len(memInit), cells))
	}
	memSide := int(math.Ceil(math.Sqrt(float64(max(cells, 1)))))
	mem := grid.Square(machine.Coord{}, memSide)
	procSide := zorder.NextPow2(int(math.Ceil(math.Sqrt(float64(max(prog.Procs(), 1))))))
	procs := mem.RightOf(procSide, procSide)

	s := &Sim{
		M: m, Prog: prog, Mode: mode,
		mem: mem, memTrack: grid.RowMajor(mem),
		procs: procs, procTrack: grid.ZOrder(procs),
		procN: procs.Size(),
		state: make([]machine.Value, prog.Procs()),
	}
	for i := 0; i < cells; i++ {
		var v machine.Value
		if i < len(memInit) {
			v = memInit[i]
		}
		m.Set(s.memTrack.At(i), memReg, v)
	}
	for p := 0; p < prog.Procs(); p++ {
		s.state[p] = prog.InitState(p)
		m.Set(s.procTrack.At(p), "pram.state", s.state[p])
	}
	return s
}

// MemRegion and ProcRegion expose the layout for tests and tools.
func (s *Sim) MemRegion() grid.Rect  { return s.mem }
func (s *Sim) ProcRegion() grid.Rect { return s.procs }

// Memory returns the current contents of the shared memory.
func (s *Sim) Memory() []machine.Value {
	out := make([]machine.Value, s.Prog.Cells())
	for i := range out {
		out[i] = s.M.Get(s.memTrack.At(i), memReg)
	}
	return out
}

// State returns processor proc's local state.
func (s *Sim) State(proc int) machine.Value { return s.state[proc] }

// Run executes all steps of the program.
func (s *Sim) Run() error {
	for t := 0; t < s.Prog.Steps(); t++ {
		if err := s.Step(t); err != nil {
			return fmt.Errorf("step %d: %w", t, err)
		}
	}
	return nil
}

// Step executes one synchronous PRAM step.
func (s *Sim) Step(t int) error {
	p := s.Prog.Procs()
	reads := make([]int, p) // -1: no read
	for i := 0; i < p; i++ {
		addr, ok := s.Prog.Read(t, i, s.state[i])
		if !ok {
			reads[i] = -1
			continue
		}
		if addr < 0 || addr >= s.Prog.Cells() {
			return fmt.Errorf("pram: processor %d reads out-of-range cell %d", i, addr)
		}
		reads[i] = addr
	}

	var got []machine.Value
	var err error
	if s.Mode == EREW {
		got, err = s.readEREW(reads)
	} else {
		got, err = s.readCRCW(reads)
	}
	if err != nil {
		return err
	}

	writes := make([]*Write, p)
	for i := 0; i < p; i++ {
		newState, w := s.Prog.Compute(t, i, s.state[i], got[i])
		s.state[i] = newState
		s.M.Set(s.procTrack.At(i), "pram.state", newState)
		if w != nil {
			if w.Addr < 0 || w.Addr >= s.Prog.Cells() {
				return fmt.Errorf("pram: processor %d writes out-of-range cell %d", i, w.Addr)
			}
		}
		writes[i] = w
	}
	if s.Mode == EREW {
		// Exclusive access also forbids one processor reading a cell
		// while another writes it in the same step.
		readBy := make(map[int]int, p)
		for i, a := range reads {
			if a >= 0 {
				readBy[a] = i
			}
		}
		for i, w := range writes {
			if w == nil {
				continue
			}
			if other, ok := readBy[w.Addr]; ok && other != i {
				return fmt.Errorf("%w: processor %d writes cell %d read by processor %d",
					ErrConcurrentAccess, i, w.Addr, other)
			}
		}
		return s.writeEREW(writes)
	}
	s.writeCRCW(writes)
	return nil
}

// readEREW services reads with one request round and one reply round.
func (s *Sim) readEREW(reads []int) ([]machine.Value, error) {
	seen := make(map[int]int, len(reads))
	for i, a := range reads {
		if a < 0 {
			continue
		}
		if other, dup := seen[a]; dup {
			return nil, fmt.Errorf("%w: processors %d and %d read cell %d", ErrConcurrentAccess, other, i, a)
		}
		seen[a] = i
	}
	s.M.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i, a := range reads {
			if a >= 0 {
				send(s.procTrack.At(i), s.memTrack.At(a), "pram.req", i)
			}
		}
	})
	got := make([]machine.Value, len(reads))
	s.M.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i, a := range reads {
			if a >= 0 {
				v := s.M.Get(s.memTrack.At(a), memReg)
				got[i] = v
				send(s.memTrack.At(a), s.procTrack.At(i), "pram.val", v)
			}
		}
	})
	for i, a := range reads {
		if a >= 0 {
			s.M.Del(s.memTrack.At(a), "pram.req")
			s.M.Del(s.procTrack.At(i), "pram.val")
		}
	}
	return got, nil
}

func (s *Sim) writeEREW(writes []*Write) error {
	seen := make(map[int]int, len(writes))
	for i, w := range writes {
		if w == nil {
			continue
		}
		if other, dup := seen[w.Addr]; dup {
			return fmt.Errorf("%w: processors %d and %d write cell %d", ErrConcurrentAccess, other, i, w.Addr)
		}
		seen[w.Addr] = i
	}
	s.M.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i, w := range writes {
			if w != nil {
				send(s.procTrack.At(i), s.memTrack.At(w.Addr), memReg, w.Val)
			}
		}
	})
	return nil
}

// dummyKey sorts non-participating tuples after all real addresses.
const dummyKey = int64(1) << 60

// readCRCW implements the sorting-based concurrent read of Lemma VII.2.
func (s *Sim) readCRCW(reads []int) ([]machine.Value, error) {
	// Every processor (including padded grid slots) contributes a tuple
	// (key=addr, seq=proc) so the sorted layout covers the whole subgrid.
	for i := 0; i < s.procN; i++ {
		key := dummyKey
		if i < len(reads) && reads[i] >= 0 {
			key = int64(reads[i])
		}
		s.M.Set(s.procTrack.At(i), "pram.t", order.KV{Key: key, Seq: int64(i)})
	}
	// Sort tuples by address onto the Z-order curve of the subgrid.
	core.SortToTrack(s.M, s.procs, "pram.t", s.procTrack, "pram.t", order.KVLess)

	// Leader election: each position learns its predecessor's key.
	s.electLeaders("pram.t")

	// Leaders fetch their cell's value: request round + reply round.
	s.M.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < s.procN; i++ {
			c := s.procTrack.At(i)
			kv := s.M.Get(c, "pram.t").(order.KV)
			if s.M.Get(c, "pram.head").(bool) && kv.Key != dummyKey {
				send(c, s.memTrack.At(int(kv.Key)), "pram.req", i)
			}
		}
	})
	s.M.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < s.procN; i++ {
			c := s.procTrack.At(i)
			kv := s.M.Get(c, "pram.t").(order.KV)
			if s.M.Get(c, "pram.head").(bool) && kv.Key != dummyKey {
				cell := s.memTrack.At(int(kv.Key))
				send(cell, c, "pram.bv", s.M.Get(cell, memReg))
				s.M.Del(cell, "pram.req")
			}
		}
	})
	// Non-leaders hold a placeholder; the segmented broadcast (a
	// segmented scan with the First operator) fills in the leader's value.
	for i := 0; i < s.procN; i++ {
		c := s.procTrack.At(i)
		if !s.M.Has(c, "pram.bv") {
			m := machine.Value(nil)
			s.M.Set(c, "pram.bv", m)
		}
	}
	collectives.SegmentedScan(s.M, s.procs, "pram.bv", "pram.head", collectives.First, nil)

	// Route results back: tuples (key=orig processor, val=read value)
	// sorted by key land exactly on their processor (processors are
	// Z-order indexed).
	for i := 0; i < s.procN; i++ {
		c := s.procTrack.At(i)
		kv := s.M.Get(c, "pram.t").(order.KV)
		s.M.Set(c, "pram.t", order.KV{Key: kv.Seq, Val: s.M.Get(c, "pram.bv")})
		s.M.Del(c, "pram.bv")
		s.M.Del(c, "pram.head")
	}
	core.SortToTrack(s.M, s.procs, "pram.t", s.procTrack, "pram.t", order.KVLess)

	got := make([]machine.Value, len(reads))
	for i := range reads {
		kv := s.M.Get(s.procTrack.At(i), "pram.t").(order.KV)
		if int(kv.Key) != i {
			return nil, fmt.Errorf("pram: tuple for processor %d landed at %d", kv.Key, i)
		}
		if reads[i] >= 0 {
			got[i] = kv.Val
		}
	}
	grid.Clear(s.M, s.procTrack, "pram.t", s.procN)
	return got, nil
}

// writeCRCW implements the sorting-based concurrent write: tuples sorted by
// (address, processor), the first processor of each address group wins.
func (s *Sim) writeCRCW(writes []*Write) {
	for i := 0; i < s.procN; i++ {
		key := dummyKey
		var val machine.Value
		if i < len(writes) && writes[i] != nil {
			key = int64(writes[i].Addr)
			val = writes[i].Val
		}
		s.M.Set(s.procTrack.At(i), "pram.t", order.KV{Key: key, Seq: int64(i), Val: val})
	}
	core.SortToTrack(s.M, s.procs, "pram.t", s.procTrack, "pram.t", order.KVLess)
	s.electLeaders("pram.t")
	s.M.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < s.procN; i++ {
			c := s.procTrack.At(i)
			kv := s.M.Get(c, "pram.t").(order.KV)
			if s.M.Get(c, "pram.head").(bool) && kv.Key != dummyKey {
				send(c, s.memTrack.At(int(kv.Key)), memReg, kv.Val)
			}
		}
	})
	grid.Clear(s.M, s.procTrack, "pram.t", s.procN)
	grid.Clear(s.M, s.procTrack, "pram.head", s.procN)
}

// electLeaders marks, in register "pram.head", every Z-order position whose
// key differs from its predecessor's ("each processor sends its index to
// the next processor in the sequence; if the received index differs from
// its own or no message is received, it becomes a leader").
func (s *Sim) electLeaders(reg machine.Reg) {
	s.M.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i+1 < s.procN; i++ {
			kv := s.M.Get(s.procTrack.At(i), reg).(order.KV)
			send(s.procTrack.At(i), s.procTrack.At(i+1), "pram.prev", kv.Key)
		}
	})
	for i := 0; i < s.procN; i++ {
		c := s.procTrack.At(i)
		head := true
		if i > 0 {
			head = s.M.Get(c, "pram.prev").(int64) != s.M.Get(c, reg).(order.KV).Key
			s.M.Del(c, "pram.prev")
		}
		s.M.Set(c, "pram.head", head)
	}
}
