package pram

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

func floatCells(vals []float64) []machine.Value {
	out := make([]machine.Value, len(vals))
	for i, v := range vals {
		out[i] = v
	}
	return out
}

func TestTreeSumEREW(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 64} {
		vals := make([]float64, n)
		want := 0.0
		for i := range vals {
			vals[i] = rng.Float64()
			want += vals[i]
		}
		m := machine.New()
		sim := New(m, TreeSum{N: n}, EREW, floatCells(vals))
		if err := sim.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := sim.Memory()[0].(float64)
		if d := got - want; d > 1e-9 || d < -1e-9 {
			t.Errorf("n=%d: tree sum %v, want %v", n, got, want)
		}
	}
}

func TestTreeSumCRCWSameResult(t *testing.T) {
	// An EREW program runs unchanged (and correctly) under the CRCW
	// simulation.
	rng := rand.New(rand.NewSource(2))
	n := 16
	vals := make([]float64, n)
	want := 0.0
	for i := range vals {
		vals[i] = rng.Float64()
		want += vals[i]
	}
	m := machine.New()
	sim := New(m, TreeSum{N: n}, CRCW, floatCells(vals))
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	got := sim.Memory()[0].(float64)
	if d := got - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("tree sum under CRCW %v, want %v", got, want)
	}
}

func TestHillisSteelePrefixCRCW(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 16} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		m := machine.New()
		sim := New(m, HillisSteele{N: n}, CRCW, floatCells(vals))
		if err := sim.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		mem := sim.Memory()
		acc := 0.0
		for i := range vals {
			acc += vals[i]
			got := mem[i].(float64)
			if d := got - acc; d > 1e-9 || d < -1e-9 {
				t.Fatalf("n=%d: prefix[%d] = %v, want %v", n, i, got, acc)
			}
		}
	}
}

func TestHillisSteeleFailsUnderEREW(t *testing.T) {
	// The doubling prefix has concurrent reads; EREW must reject it.
	vals := make([]float64, 8)
	m := machine.New()
	sim := New(m, HillisSteele{N: 8}, EREW, floatCells(vals))
	err := sim.Run()
	if !errors.Is(err, ErrConcurrentAccess) {
		t.Errorf("expected ErrConcurrentAccess, got %v", err)
	}
}

func TestConcurrentReadModes(t *testing.T) {
	m := machine.New()
	sim := New(m, ConcurrentRead{P: 8}, EREW, []machine.Value{42})
	if err := sim.Run(); !errors.Is(err, ErrConcurrentAccess) {
		t.Errorf("EREW concurrent read: expected error, got %v", err)
	}

	m = machine.New()
	sim = New(m, ConcurrentRead{P: 8}, CRCW, []machine.Value{42})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if got := sim.State(p); got != 42 {
			t.Errorf("proc %d state = %v, want 42", p, got)
		}
	}
}

func TestConcurrentWriteLowestWins(t *testing.T) {
	m := machine.New()
	sim := New(m, BroadcastWrite{P: 16}, CRCW, nil)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sim.Memory()[0]; got != 0 {
		t.Errorf("concurrent write resolved to %v, want 0 (lowest index)", got)
	}
}

func TestConcurrentWriteFailsUnderEREW(t *testing.T) {
	m := machine.New()
	sim := New(m, BroadcastWrite{P: 4}, EREW, nil)
	if err := sim.Run(); !errors.Is(err, ErrConcurrentAccess) {
		t.Errorf("EREW concurrent write: expected error, got %v", err)
	}
}

func TestEREWStepCosts(t *testing.T) {
	// Lemma VII.1: each step costs O(p(sqrt p + sqrt m)) energy and O(1)
	// depth. TreeSum does 3 sub-steps per level; its depth must stay a
	// small multiple of Steps() regardless of n.
	for _, n := range []int{16, 64, 256} {
		vals := make([]float64, n)
		m := machine.New()
		sim := New(m, TreeSum{N: n}, EREW, floatCells(vals))
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		steps := int64(TreeSum{N: n}.Steps())
		if d := m.Metrics().Depth; d > 3*steps {
			t.Errorf("n=%d: EREW depth %d exceeds 3*steps=%d", n, d, 3*steps)
		}
	}
}

func TestCRCWDepthPolylogPerStep(t *testing.T) {
	// Lemma VII.2: O(log^3 p) depth per step — quadrupling p should not
	// double per-step depth.
	depthPerStep := func(p int) float64 {
		m := machine.New()
		sim := New(m, ConcurrentRead{P: p}, CRCW, []machine.Value{1.0})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(m.Metrics().Depth)
	}
	// log^3 predicts (log 1024 / log 256)^3 = 1.95; linear would give 4.
	if r := depthPerStep(1024) / depthPerStep(256); r >= 3 {
		t.Errorf("CRCW per-step depth ratio %.2f not polylogarithmic", r)
	}
}

func TestMemoryReadback(t *testing.T) {
	m := machine.New()
	init := []machine.Value{1.5, 2.5, 3.5}
	prog := ConcurrentRead{P: 2}
	_ = prog
	sim := New(m, TreeSum{N: 4}, EREW, init)
	mem := sim.Memory()
	if mem[0] != 1.5 || mem[1] != 2.5 || mem[2] != 3.5 || mem[3] != nil {
		t.Errorf("memory image %v", mem)
	}
}

func TestLayoutRegions(t *testing.T) {
	m := machine.New()
	sim := New(m, TreeSum{N: 64}, EREW, floatCells(make([]float64, 64)))
	mem, procs := sim.MemRegion(), sim.ProcRegion()
	if mem.H != 8 || mem.W != 8 {
		t.Errorf("memory region %v, want 8x8", mem)
	}
	if procs.H != procs.W || procs.H < 6 {
		t.Errorf("proc region %v not a square of side >= ceil(sqrt 32)", procs)
	}
	if procs.Origin.Col <= mem.Origin.Col+mem.W-1 {
		t.Errorf("proc region %v overlaps memory %v", procs, mem)
	}
}

func TestListRankingCRCW(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 4, 8, 16} {
		// Build a random list over nodes 0..n-1.
		perm := rng.Perm(n)
		next := make([]int, n)
		for i := 0; i < n-1; i++ {
			next[perm[i]] = perm[i+1]
		}
		next[perm[n-1]] = n // tail
		m := machine.New()
		// Memory init: next pointers and initial ranks.
		init := make([]machine.Value, 2*n)
		for i := 0; i < n; i++ {
			init[i] = next[i]
			r := int64(1)
			if next[i] == n {
				r = 0
			}
			init[n+i] = r
		}
		sim := New(m, ListRanking{Next: next}, CRCW, init)
		if err := sim.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		mem := sim.Memory()
		for pos, node := range perm {
			want := int64(n - 1 - pos)
			if got := mem[n+node].(int64); got != want {
				t.Fatalf("n=%d: rank of node %d (position %d) = %d, want %d", n, node, pos, got, want)
			}
		}
	}
}

func TestListRankingChainIsEREWSafe(t *testing.T) {
	// On a simple list the successor pointers stay injective under
	// jumping, so the phased Wyllie schedule is exclusive — it must run
	// under EREW too.
	next := []int{1, 2, 3, 4} // chain 0->1->2->3->nil
	init := make([]machine.Value, 8)
	for i := 0; i < 4; i++ {
		init[i] = next[i]
		r := int64(1)
		if next[i] == 4 {
			r = 0
		}
		init[4+i] = r
	}
	m := machine.New()
	sim := New(m, ListRanking{Next: next}, EREW, init)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	mem := sim.Memory()
	for i, want := range []int64{3, 2, 1, 0} {
		if got := mem[4+i].(int64); got != want {
			t.Errorf("rank[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestListRankingInTreeNeedsCRCW(t *testing.T) {
	// On an in-tree several nodes share a successor, so the same rank
	// cell is read concurrently: EREW must reject it, CRCW must compute
	// the depth of every node.
	next := []int{2, 2, 4, 2} // 0,1,3 -> 2 -> nil
	init := make([]machine.Value, 8)
	for i := 0; i < 4; i++ {
		init[i] = next[i]
		r := int64(1)
		if next[i] == 4 {
			r = 0
		}
		init[4+i] = r
	}
	m := machine.New()
	sim := New(m, ListRanking{Next: next}, EREW, init)
	if err := sim.Run(); !errors.Is(err, ErrConcurrentAccess) {
		t.Errorf("expected ErrConcurrentAccess, got %v", err)
	}

	m = machine.New()
	sim = New(m, ListRanking{Next: next}, CRCW, init)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	mem := sim.Memory()
	for i, want := range []int64{1, 1, 0, 1} {
		if got := mem[4+i].(int64); got != want {
			t.Errorf("depth[%d] = %d, want %d", i, got, want)
		}
	}
}
