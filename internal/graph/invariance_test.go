package graph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
)

// TestAnswersInvariantAcrossExecution pins the separation between answers
// and costs: sharding and batched sends are executor choices and must
// change neither the results nor the cost metrics; the mapping (PageRank's
// track kind) may change costs but never the fixpoint.
func TestAnswersInvariantAcrossExecution(t *testing.T) {
	g := PowerLaw(60, rand.New(rand.NewSource(21)))
	type result struct {
		levels    []int
		labels    []int
		triangles int64
		metrics   [3]machine.Metrics
	}
	run := func(shards int, batch bool) result {
		var res result
		lease := func() *machine.Machine {
			m := machine.New()
			m.SetShards(shards)
			m.SetBatchSends(batch)
			return m
		}
		m := lease()
		var err error
		if res.levels, err = BFS(m, g, 0); err != nil {
			t.Fatal(err)
		}
		res.metrics[0] = m.Metrics()
		m = lease()
		if res.labels, _, err = Components(m, g); err != nil {
			t.Fatal(err)
		}
		res.metrics[1] = m.Metrics()
		m = lease()
		if res.triangles, err = Triangles(m, g); err != nil {
			t.Fatal(err)
		}
		res.metrics[2] = m.Metrics()
		return res
	}

	base := run(1, false)
	for _, cfg := range []struct {
		shards int
		batch  bool
	}{{1, true}, {2, true}, {4, true}, {4, false}} {
		got := run(cfg.shards, cfg.batch)
		if !reflect.DeepEqual(got.levels, base.levels) {
			t.Fatalf("shards=%d batch=%v: BFS levels changed", cfg.shards, cfg.batch)
		}
		if !reflect.DeepEqual(got.labels, base.labels) {
			t.Fatalf("shards=%d batch=%v: component labels changed", cfg.shards, cfg.batch)
		}
		if got.triangles != base.triangles {
			t.Fatalf("shards=%d batch=%v: triangle count %d != %d", cfg.shards, cfg.batch, got.triangles, base.triangles)
		}
		for i, mm := range got.metrics {
			if mm.Energy != base.metrics[i].Energy || mm.Depth != base.metrics[i].Depth ||
				mm.Distance != base.metrics[i].Distance || mm.Messages != base.metrics[i].Messages {
				t.Fatalf("shards=%d batch=%v: algorithm %d cost metrics drifted: %+v vs %+v",
					cfg.shards, cfg.batch, i, mm, base.metrics[i])
			}
		}
	}
}

// TestPageRankInvariantAcrossMappings pins that the track kind — a layout
// choice — changes SpMV costs but never the ranks beyond scan-association
// noise.
func TestPageRankInvariantAcrossMappings(t *testing.T) {
	g := PowerLaw(48, rand.New(rand.NewSource(5)))
	kinds := []grid.TrackKind{grid.TrackZOrder, grid.TrackRowMajor, grid.TrackHilbert}
	var base []float64
	var baseEnergy int64
	costsDiffer := false
	for i, kind := range kinds {
		m := machine.New()
		pr, err := PageRank(m, g, 0.85, 4, kind)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = pr
			baseEnergy = m.Metrics().Energy
			continue
		}
		for v := range base {
			if math.Abs(pr[v]-base[v]) > 1e-9 {
				t.Fatalf("kind %v: pr[%d] = %v, want %v", kind, v, pr[v], base[v])
			}
		}
		if m.Metrics().Energy != baseEnergy {
			costsDiffer = true
		}
	}
	if !costsDiffer {
		t.Fatal("every track kind produced identical energy; the mapping knob is dead")
	}
}

// TestBFSDeterministicRerun pins byte-identical reruns on a fresh machine:
// same graph, same source, same levels and identical cost metrics.
func TestBFSDeterministicRerun(t *testing.T) {
	g := Mesh2D(6)
	m1, m2 := machine.New(), machine.New()
	l1, err1 := BFS(m1, g, 7)
	l2, err2 := BFS(m2, g, 7)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatal("BFS levels differ across reruns")
	}
	if m1.Metrics() != m2.Metrics() {
		t.Fatalf("BFS metrics differ across reruns: %+v vs %+v", m1.Metrics(), m2.Metrics())
	}
}
