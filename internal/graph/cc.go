package graph

import (
	"math"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/tree"
)

// CC register names.
const (
	regEdge  = "graph.edge" // directed-edge record on the edge grid
	regPrev  = "graph.prev" // predecessor key during leader election
	regBV    = "graph.bv"   // scan value (fetched label / segment minimum)
	regNext  = "graph.next" // successor's head flag (end-of-segment detection)
	regLab   = "graph.lab"  // current label, kept on each vertex cell
	regCand  = "graph.cand" // per-vertex hook candidate delivery
	regPair  = "graph.pair" // (label, candidate) pair on the vertex grid
	regRCand = "graph.rcand" // per-representative minimum candidate delivery
)

// edgeRec is the on-grid record of one directed edge; lab carries the
// source endpoint's fetched label between the two sort passes.
type edgeRec struct {
	src, dst int
	lab      int64
	pad      bool
}

// vpair is the (label, candidate) record the per-representative
// aggregation sorts on the vertex grid.
type vpair struct {
	lab, cand int64
	pad       bool
}

// Components labels every vertex with the minimum vertex id of its
// connected component and returns the labels with the number of hooking
// rounds executed.
//
// Each round is a Shiloach–Vishkin-style min-hooking step built entirely
// from Table I primitives, followed by a pointer-jumping contraction that
// is a single treefix (RootfixSum) over the hook forest:
//
//  1. Sort the 2m directed edges by source (merge sort onto the Z-order
//     track), elect segment leaders, and fetch label[src] from the vertex
//     grid — the spmv gather pattern — then flood it with a segmented
//     First-scan so every edge knows its source's label.
//  2. Re-sort by destination and take a segmented min-scan over the
//     carried labels: the last cell of each segment holds the minimum
//     neighboring label of that destination and delivers it to the
//     vertex cell (one conflict-free send per distinct destination).
//  3. Aggregate candidates per representative: each vertex cell forms a
//     (label, min(label, candidate)) pair, the vertex grid sorts the
//     pairs by label, and a segmented min-scan delivers each label
//     group's minimum to the representative's cell. Without this step,
//     hooking degrades to O(diameter) rounds on adversarial id orders;
//     with it, representatives at least halve per merging round, giving
//     O(log n) rounds.
//  4. Hook: a representative r with a strictly smaller candidate c hooks
//     to c; every hook target is itself a representative with a smaller
//     id, so the forest (plus a virtual super-root for non-improving
//     representatives) is acyclic, and one RootfixSum over it — the
//     treefix primitive, Θ(n) energy and O(log n) depth for any shape —
//     flattens every chain to its top representative in one shot. The new
//     labels are written back to the vertex cells in one routing round.
//
// Convergence: if any edge joins two differently-labeled vertices, the
// larger-labeled side's representative receives a strictly smaller
// candidate, so a round with no improvement proves per-component label
// uniformity; labels only decrease and are bounded below by the component
// minimum, which is a fixpoint.
//
// Composed costs per round: two edge-grid merge sorts Θ((2m)^1.5) energy,
// one vertex-grid merge sort Θ(n^1.5), the scans Θ(m), the treefix Θ(n);
// depth is sort-dominated at O(log² m). With O(log n) rounds the total is
// Θ(m^1.5 log n) energy and O(log³ n) depth.
func Components(m *machine.Machine, g *Graph) ([]int, int, error) {
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	labels := make([]int, g.N)
	for v := range labels {
		labels[v] = v
	}
	if g.N == 0 || len(g.Adj) == 0 {
		return labels, 0, nil
	}

	// Vertex square at the origin, edge square to its right (same layout
	// as BFS).
	vr := grid.Square(machine.Coord{}, pow2SideFor(g.N))
	vt := grid.RowMajor(vr)
	vtz := grid.ZOrder(vr)
	vtotal := vr.Size()
	eside := pow2SideFor(len(g.Adj))
	er := vr.RightOf(eside, eside)
	et := grid.ZOrder(er)
	total := er.Size()

	// Initial labels are the identity — free placement.
	lab := make([]int64, g.N)
	for v := 0; v < g.N; v++ {
		lab[v] = int64(v)
		m.Set(vt.At(v), regLab, int64(v))
	}
	// Directed edge records, one per cell (free placement of the input).
	for i := 0; i < total; i++ {
		m.Set(et.At(i), regEdge, edgeRec{pad: true})
	}
	{
		i := 0
		for v := 0; v < g.N; v++ {
			for _, w := range g.Neighbors(v) {
				m.Set(et.At(i), regEdge, edgeRec{src: v, dst: w})
				i++
			}
		}
	}

	maxRounds := 2*int(math.Ceil(math.Log2(float64(g.N)+1))) + 8
	executed := 0
	for rounds := 0; rounds < maxRounds; rounds++ {
		executed++
		// Step 1: sort by source, elect leaders, gather label[src] with
		// the spmv request/reply rounds (leaders announce themselves, the
		// vertex cell answers with its label register).
		m.Phase("graph/cc-gather")
		core.SortToTrack(m, er, regEdge, et, regEdge, edgeBySrc)
		electHeads(m, et, total, func(c machine.Coord) int64 {
			return srcKey(m.Get(c, regEdge).(edgeRec))
		})
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for i := 0; i < total; i++ {
				c := et.At(i)
				e := m.Get(c, regEdge).(edgeRec)
				if m.Get(c, regHead).(bool) && !e.pad {
					send(c, vt.At(e.src), "graph.req", i)
				}
			}
		})
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for i := 0; i < total; i++ {
				c := et.At(i)
				e := m.Get(c, regEdge).(edgeRec)
				if m.Get(c, regHead).(bool) && !e.pad {
					cell := vt.At(e.src)
					send(cell, c, regBV, m.Get(cell, regLab))
					m.Del(cell, "graph.req")
				}
			}
		})
		for i := 0; i < total; i++ {
			c := et.At(i)
			if !m.Has(c, regBV) {
				m.Set(c, regBV, infInt64)
			}
		}
		collectives.SegmentedScan(m, er, regBV, regHead, collectives.First, infInt64)
		for i := 0; i < total; i++ {
			c := et.At(i)
			e := m.Get(c, regEdge).(edgeRec)
			if !e.pad {
				e.lab = m.Get(c, regBV).(int64)
				m.Set(c, regEdge, e)
			}
			m.Del(c, regBV)
			m.Del(c, regHead)
		}

		// Step 2: sort by destination, segmented min over carried labels,
		// deliver each destination's minimum neighboring label.
		m.Phase("graph/cc-scatter")
		core.SortToTrack(m, er, regEdge, et, regEdge, edgeByDst)
		electHeads(m, et, total, func(c machine.Coord) int64 {
			return dstKey(m.Get(c, regEdge).(edgeRec))
		})
		for i := 0; i < total; i++ {
			c := et.At(i)
			e := m.Get(c, regEdge).(edgeRec)
			v := infInt64
			if !e.pad {
				v = e.lab
			}
			m.Set(c, regBV, v)
		}
		collectives.SegmentedScan(m, er, regBV, regHead, minInt64, infInt64)
		lastOfSegment(m, et, total, func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value), i int) {
			c := et.At(i)
			e := m.Get(c, regEdge).(edgeRec)
			if !e.pad {
				send(c, vt.At(e.dst), regCand, m.Get(c, regBV))
			}
		})
		for i := 0; i < total; i++ {
			c := et.At(i)
			m.Del(c, regBV)
			m.Del(c, regHead)
			m.Del(c, regNext)
		}

		// Step 3: aggregate candidates per representative on the vertex
		// grid: sort (label, candidate) pairs by label, segmented min,
		// deliver each group's minimum to the representative's cell.
		m.Phase("graph/cc-aggregate")
		for v := 0; v < vtotal; v++ {
			c := vt.At(v)
			if v >= g.N {
				m.Set(c, regPair, vpair{pad: true})
				continue
			}
			cand := lab[v]
			if got, ok := m.Lookup(c, regCand); ok {
				if got.(int64) < cand {
					cand = got.(int64)
				}
				m.Del(c, regCand)
			}
			m.Set(c, regPair, vpair{lab: lab[v], cand: cand})
		}
		core.SortToTrack(m, vr, regPair, vtz, regPair, pairByLab)
		electHeads(m, vtz, vtotal, func(c machine.Coord) int64 {
			return labKey(m.Get(c, regPair).(vpair))
		})
		for i := 0; i < vtotal; i++ {
			c := vtz.At(i)
			p := m.Get(c, regPair).(vpair)
			v := infInt64
			if !p.pad {
				v = p.cand
			}
			m.Set(c, regBV, v)
		}
		collectives.SegmentedScan(m, vr, regBV, regHead, minInt64, infInt64)
		lastOfSegment(m, vtz, vtotal, func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value), i int) {
			c := vtz.At(i)
			p := m.Get(c, regPair).(vpair)
			if !p.pad {
				send(c, vt.At(int(p.lab)), regRCand, m.Get(c, regBV))
			}
		})
		for i := 0; i < vtotal; i++ {
			c := vtz.At(i)
			m.Del(c, regBV)
			m.Del(c, regHead)
			m.Del(c, regNext)
			m.Del(c, regPair)
		}

		// Step 4: hook representatives to strictly smaller candidates and
		// contract every chain with one treefix over the hook forest.
		m.Phase("graph/cc-contract")
		improved := false
		super := g.N // virtual super-root for non-improving representatives
		parent := make([]int, g.N+1)
		vals := make([]float64, g.N+1)
		parent[super] = super
		for v := 0; v < g.N; v++ {
			rc, ok := m.Lookup(vt.At(v), regRCand)
			if ok {
				m.Del(vt.At(v), regRCand)
			}
			if lab[v] != int64(v) {
				parent[v] = int(lab[v]) // member → its representative
				continue
			}
			if ok && rc.(int64) < int64(v) {
				parent[v] = int(rc.(int64)) // hook to the smaller rep
				improved = true
			} else {
				parent[v] = super
				vals[v] = float64(v) // chain tops contribute their own id
			}
		}
		if !improved {
			break
		}
		flat, err := tree.RootfixSum(m, tree.Tree{Parent: parent}, vals)
		if err != nil {
			return nil, 0, err
		}
		// Write the contracted labels back to the vertex cells: one
		// routing round from the treefix subgrid (whose origin coincides
		// with the vertex grid's) to each vertex cell.
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for v := 0; v < g.N; v++ {
				send(machine.Coord{}, vt.At(v), regLab, int64(flat[v]))
			}
		})
		for v := 0; v < g.N; v++ {
			lab[v] = int64(flat[v])
		}
	}

	for i := 0; i < total; i++ {
		m.Del(et.At(i), regEdge)
	}
	for v := 0; v < g.N; v++ {
		m.Del(vt.At(v), regLab)
		labels[v] = int(lab[v])
	}
	return labels, executed, nil
}

// srcKey/dstKey/labKey order real records before pads.
func srcKey(e edgeRec) int64 {
	if e.pad {
		return infInt64
	}
	return int64(e.src)
}

func dstKey(e edgeRec) int64 {
	if e.pad {
		return infInt64
	}
	return int64(e.dst)
}

func labKey(p vpair) int64 {
	if p.pad {
		return infInt64
	}
	return p.lab
}

func edgeBySrc(a, b machine.Value) bool { return srcKey(a.(edgeRec)) < srcKey(b.(edgeRec)) }
func edgeByDst(a, b machine.Value) bool { return dstKey(a.(edgeRec)) < dstKey(b.(edgeRec)) }
func pairByLab(a, b machine.Value) bool { return labKey(a.(vpair)) < labKey(b.(vpair)) }

// electHeads sets regHead on every track position whose key differs from
// its predecessor's — the spmv leader election, generalized to any keyed
// record.
func electHeads(m *machine.Machine, t grid.Track, total int, key func(machine.Coord) int64) {
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i+1 < total; i++ {
			send(t.At(i), t.At(i+1), regPrev, key(t.At(i)))
		}
	})
	for i := 0; i < total; i++ {
		c := t.At(i)
		head := true
		if i > 0 {
			head = m.Get(c, regPrev).(int64) != key(c)
			m.Del(c, regPrev)
		}
		m.Set(c, regHead, head)
	}
}

// lastOfSegment learns each position's successor head flag in one round,
// then runs emit for every position that ends a segment (its successor is
// a head, or it is the final position). emit receives the round's send
// function and the position index.
func lastOfSegment(m *machine.Machine, t grid.Track, total int, emit func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value), i int)) {
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 1; i < total; i++ {
			send(t.At(i), t.At(i-1), regNext, m.Get(t.At(i), regHead))
		}
	})
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < total; i++ {
			last := i == total-1
			if !last {
				last = m.Get(t.At(i), regNext).(bool)
			}
			if last {
				emit(send, i)
			}
		}
	})
}
