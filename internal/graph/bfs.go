package graph

import (
	"fmt"

	"repro/internal/collectives"
	"repro/internal/grid"
	"repro/internal/machine"
)

// BFS register names. All graph registers are namespaced "graph." so the
// algorithms can share a machine with the primitives they call.
const (
	regMark  = "graph.mark"  // frontier marker delivered to a CSR segment head
	regLvl   = "graph.lvl"   // per-edge-cell segmented-broadcast value
	regHead  = "graph.head"  // segment head flag (CSR row starts)
	regVisit = "graph.visit" // discovered-level delivery to a vertex cell
)

// BFS runs a level-synchronous breadth-first search from src and returns
// the level of every vertex (-1 when unreachable).
//
// Layout: vertex cells occupy a power-of-two square at the origin
// (row-major, one PE per vertex); the CSR adjacency array occupies a
// power-of-two square to its right, one directed edge per PE in Z-order,
// with a static head flag on every CSR row start ("predefined input
// format" — placement is free, like the spmv triples).
//
// Each level is one frontier expansion built from the segmented-broadcast
// primitive: every frontier vertex sends one marker to its adjacency
// segment's head, a segmented scan with the First operator floods the
// marker across the segment (Lemma IV.3 costs: Θ(E) energy over the edge
// grid, O(log E) depth), and each marked edge cell delivers level+1 to its
// destination's vertex cell — concurrent deliveries carry the same value,
// so the machine's later-wins semantics keep the result deterministic.
//
// Composed costs for a graph with E = 2m directed edge cells and BFS depth
// (eccentricity) D: each directed edge scatters exactly once across the
// whole run and each vertex sends exactly one marker, so
//
//	Energy   = Θ(E·D)  for the per-level segmented scans
//	         + Θ(E·√E) for the one-shot marker/scatter traffic
//	Depth    = Θ(D·log E)   (levels are dependent; each is scan-dominated)
//	Distance = Θ(√E)
//
// On the 2D mesh (D = Θ(√n), m = Θ(n)) both energy terms are Θ(n^1.5) and
// depth is Θ(√n log n); on the power-law family (D = O(log n)) energy is
// Θ(m^1.5) and depth O(log² n).
func BFS(m *machine.Machine, g *Graph, src int) ([]int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.N == 0 {
		return nil, nil
	}
	if src < 0 || src >= g.N {
		return nil, fmt.Errorf("graph: BFS source %d outside [0,%d)", src, g.N)
	}

	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	if len(g.Adj) == 0 {
		return dist, nil
	}

	// Vertex square at the origin, edge square to its right.
	vr := grid.Square(machine.Coord{}, pow2SideFor(g.N))
	vt := grid.RowMajor(vr)
	eside := pow2SideFor(len(g.Adj))
	er := vr.RightOf(eside, eside)
	et := grid.ZOrder(er)
	total := er.Size()

	// Static structure (free placement): head flags at CSR row starts and
	// on every pad cell past the adjacency array.
	heads := make([]bool, total)
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > 0 {
			heads[g.Off[v]] = true
		}
	}
	for i := len(g.Adj); i < total; i++ {
		heads[i] = true
	}
	for i := 0; i < total; i++ {
		m.Set(et.At(i), regHead, heads[i])
	}

	frontier := []int{src}
	for lvl := 0; len(frontier) > 0; lvl++ {
		m.Phase("graph/bfs-level")
		// Frontier vertices mark their adjacency segment heads.
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for _, v := range frontier {
				if g.Degree(v) > 0 {
					send(vt.At(v), et.At(g.Off[v]), regMark, int64(lvl))
				}
			}
		})
		// Local: seed the scan register from the marker (-1 elsewhere),
		// then flood each marker across its segment.
		for i := 0; i < total; i++ {
			c := et.At(i)
			if v, ok := m.Lookup(c, regMark); ok {
				m.Set(c, regLvl, v)
				m.Del(c, regMark)
			} else {
				m.Set(c, regLvl, int64(-1))
			}
		}
		collectives.SegmentedScan(m, er, regLvl, regHead, collectives.First, int64(-1))
		// Marked edge cells deliver level+1 to their destination vertex.
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for _, v := range frontier {
				for i := g.Off[v]; i < g.Off[v+1]; i++ {
					c := et.At(i)
					if m.Get(c, regLvl).(int64) == int64(lvl) {
						send(c, vt.At(g.Adj[i]), regVisit, int64(lvl+1))
					}
				}
			}
		})
		// Host: collect the next frontier from the delivered visits.
		var next []int
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if dist[w] >= 0 {
					continue
				}
				if got, ok := m.Lookup(vt.At(w), regVisit); ok && got.(int64) == int64(lvl+1) {
					dist[w] = lvl + 1
					next = append(next, w)
					m.Del(vt.At(w), regVisit)
				}
			}
		}
		frontier = next
	}

	for i := 0; i < total; i++ {
		c := et.At(i)
		m.Del(c, regLvl)
		m.Del(c, regHead)
	}
	return dist, nil
}
