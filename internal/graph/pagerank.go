package graph

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/spmv"
)

// PageRank runs iters power iterations of damped PageRank on g and returns
// the rank vector. Each iteration is one sparse matrix-vector product on
// the paper's direct SpMV algorithm (internal/spmv, Theorem VIII.2) over
// the column-stochastic transition matrix P with P[w][u] = 1/deg(u) for
// every edge u—w, along the track chosen by kind (grid.TrackZOrder is the
// paper's energy-optimal layout; the other kinds are the tuner's
// alternatives). Dangling vertices (degree 0) spread their mass uniformly,
// handled host-side like any other O(n) input-vector preparation:
//
//	pr' = (1-d)/n + d · (P·pr + dangling/n)
//
// Composed costs: iterations are genuinely dependent (each consumes the
// previous vector), so for m directed non-zeros the run takes
// Θ(iters · m^1.5) energy, O(iters · log³ n) depth and Θ(√m) distance —
// the SpMV row of Table I scaled by the iteration count.
//
// Note the float64 caveat: ranks are exact only up to the scan-tree
// association order, so results are bit-identical across shards/batch and
// workers but carry ~1e-12-relative noise across different track kinds.
func PageRank(m *machine.Machine, g *Graph, damping float64, iters int, kind grid.TrackKind) ([]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if damping < 0 || damping >= 1 {
		return nil, fmt.Errorf("graph: damping %v outside [0,1)", damping)
	}
	if g.N == 0 {
		return nil, nil
	}
	n := float64(g.N)
	pr := make([]float64, g.N)
	for i := range pr {
		pr[i] = 1 / n
	}
	if len(g.Adj) == 0 {
		return pr, nil
	}

	a := spmv.Matrix{N: g.N, Entries: make([]spmv.Entry, 0, len(g.Adj))}
	for u := 0; u < g.N; u++ {
		inv := 1 / float64(g.Degree(u))
		for _, w := range g.Neighbors(u) {
			a.Entries = append(a.Entries, spmv.Entry{Row: w, Col: u, Val: inv})
		}
	}

	for it := 0; it < iters; it++ {
		m.Phase("graph/pagerank-iter")
		dangling := 0.0
		for v := 0; v < g.N; v++ {
			if g.Degree(v) == 0 {
				dangling += pr[v]
			}
		}
		y, err := spmv.MultiplyMapped(m, a, pr, kind)
		if err != nil {
			return nil, err
		}
		for v := range pr {
			pr[v] = (1-damping)/n + damping*(y[v]+dangling/n)
		}
	}
	return pr, nil
}
