package graph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
)

// testGraphs returns the correctness corpus: generated families plus the
// hand-built edge cases the issue names (empty, single vertex, self-loops,
// duplicates, disconnected components).
func testGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return map[string]*Graph{
		"empty":         FromEdges(0, nil),
		"single-vertex": FromEdges(1, nil),
		"self-loops":    FromEdges(4, [][2]int{{0, 0}, {1, 1}, {0, 1}, {2, 3}, {3, 3}}),
		"duplicates":    FromEdges(3, [][2]int{{0, 1}, {1, 0}, {0, 1}, {1, 2}}),
		"isolated":      FromEdges(5, [][2]int{{1, 3}}),
		"two-components": FromEdges(8, [][2]int{
			{0, 1}, {1, 2}, {2, 0}, // a triangle
			{4, 5}, {5, 6}, {6, 7}, // a path, ids interleaved with nothing
		}),
		"path":      FromEdges(9, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}}),
		"mesh-4x4":  Mesh2D(4),
		"mesh-5x5":  Mesh2D(5),
		"powerlaw":  PowerLaw(40, rng),
		"powerlaw2": PowerLaw(97, rand.New(rand.NewSource(11))),
		"complete": func() *Graph {
			var es [][2]int
			for u := 0; u < 7; u++ {
				for v := u + 1; v < 7; v++ {
					es = append(es, [2]int{u, v})
				}
			}
			return FromEdges(7, es)
		}(),
	}
}

func TestFromEdgesShape(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 0}, {0, 1}, {1, 0}, {0, 1}, {2, 3}})
	if g.M() != 2 {
		t.Fatalf("M() = %d after dedupe/self-loop drop, want 2", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Degree(3) != 1 {
		t.Fatalf("degrees = %d,%d want 1,1", g.Degree(0), g.Degree(3))
	}
	for name, g := range testGraphs(t) {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestMesh2D(t *testing.T) {
	g := Mesh2D(4)
	if g.N != 16 || g.M() != 24 {
		t.Fatalf("4x4 mesh: n=%d m=%d, want 16, 24", g.N, g.M())
	}
	if HostTriangles(g) != 0 {
		t.Fatal("mesh has triangles")
	}
}

func TestPowerLawConnected(t *testing.T) {
	g := PowerLaw(200, rand.New(rand.NewSource(3)))
	labels := HostComponents(g)
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("power-law graph disconnected: label[%d] = %d", v, l)
		}
	}
}

func TestBFS(t *testing.T) {
	for name, g := range testGraphs(t) {
		m := machine.New()
		got, err := BFS(m, g, 0)
		if g.N == 0 {
			if err != nil || got != nil {
				t.Fatalf("%s: BFS on empty graph = %v, %v", name, got, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := HostBFS(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: level[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestBFSBadSource(t *testing.T) {
	m := machine.New()
	if _, err := BFS(m, Mesh2D(2), 9); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestComponents(t *testing.T) {
	for name, g := range testGraphs(t) {
		m := machine.New()
		got, rounds, err := Components(m, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := HostComponents(g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: label[%d] = %d, want %d (rounds=%d)", name, v, got[v], want[v], rounds)
			}
		}
		if g.N > 0 && len(g.Adj) > 0 {
			limit := 2*int(math.Ceil(math.Log2(float64(g.N)+1))) + 8
			if rounds > limit {
				t.Fatalf("%s: %d hooking rounds exceeds the O(log n) cap %d", name, rounds, limit)
			}
		}
	}
}

// TestComponentsAdversarialPath pins the O(log n) round bound on the
// interleaved-id path that defeats per-vertex hooking without the
// per-representative aggregation step: 0-2-1-4-3-6-5-... erodes label
// boundaries one vertex per round under naive min-neighbor hooking.
func TestComponentsAdversarialPath(t *testing.T) {
	const n = 64
	var edges [][2]int
	order := make([]int, n)
	for i := range order {
		if i%2 == 0 {
			order[i] = i
		} else if i+1 < n {
			order[i] = i + 1
		} else {
			order[i] = i
		}
	}
	seen := map[int]bool{}
	var seq []int
	for _, v := range order {
		if !seen[v] {
			seen[v] = true
			seq = append(seq, v)
		}
	}
	for i := 1; i < len(seq); i++ {
		edges = append(edges, [2]int{seq[i-1], seq[i]})
	}
	g := FromEdges(n, edges)
	m := machine.New()
	labels, rounds, err := Components(m, g)
	if err != nil {
		t.Fatal(err)
	}
	want := HostComponents(g)
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
	if rounds > 20 {
		t.Fatalf("adversarial path took %d rounds; hooking degraded past O(log n)", rounds)
	}
}

func TestPageRank(t *testing.T) {
	for name, g := range testGraphs(t) {
		m := machine.New()
		got, err := PageRank(m, g, 0.85, 3, grid.TrackZOrder)
		if g.N == 0 {
			if err != nil || got != nil {
				t.Fatalf("%s: PageRank on empty graph = %v, %v", name, got, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := HostPageRank(g, 0.85, 3)
		sum := 0.0
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("%s: pr[%d] = %v, want %v", name, v, got[v], want[v])
			}
			sum += got[v]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: ranks sum to %v, want 1", name, sum)
		}
	}
}

func TestPageRankBadDamping(t *testing.T) {
	m := machine.New()
	if _, err := PageRank(m, Mesh2D(2), 1.0, 1, grid.TrackZOrder); err == nil {
		t.Fatal("damping 1.0 accepted")
	}
}

func TestTriangles(t *testing.T) {
	for name, g := range testGraphs(t) {
		m := machine.New()
		got, err := Triangles(m, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want := HostTriangles(g); got != want {
			t.Fatalf("%s: %d triangles, want %d", name, got, want)
		}
	}
}

func TestTrianglesComplete(t *testing.T) {
	// K7 has C(7,3) = 35 triangles; the brute-force reference itself is
	// cross-checked here against the closed form.
	g := testGraphs(t)["complete"]
	if want := int64(35); HostTriangles(g) != want {
		t.Fatalf("host reference: %d, want %d", HostTriangles(g), want)
	}
	m := machine.New()
	got, err := Triangles(m, g)
	if err != nil {
		t.Fatal(err)
	}
	if got != 35 {
		t.Fatalf("Triangles(K7) = %d, want 35", got)
	}
}

// TestAlgorithmsChargeCosts pins that the algorithms actually run on the
// grid: every algorithm on a non-trivial graph must spend energy.
func TestAlgorithmsChargeCosts(t *testing.T) {
	g := Mesh2D(4)
	check := func(name string, run func(m *machine.Machine) error) {
		m := machine.New()
		if err := run(m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mm := m.Metrics()
		if mm.Energy <= 0 || mm.Depth <= 0 {
			t.Fatalf("%s: free lunch — energy=%d depth=%d", name, mm.Energy, mm.Depth)
		}
	}
	check("bfs", func(m *machine.Machine) error { _, err := BFS(m, g, 0); return err })
	check("cc", func(m *machine.Machine) error { _, _, err := Components(m, g); return err })
	check("pagerank", func(m *machine.Machine) error {
		_, err := PageRank(m, g, 0.85, 1, grid.TrackZOrder)
		return err
	})
	check("triangles", func(m *machine.Machine) error { _, err := Triangles(m, Mesh2D(3)); return err })
}
