package graph

// Host-side reference implementations. The on-grid algorithms must agree
// with these exactly (BFS levels, component labels, triangle counts) or to
// float tolerance (PageRank, whose on-grid additions associate along the
// scan tree). The experiment sweeps replay them as built-in correctness
// gates, so every conformance run also re-verifies the answers.

// HostBFS is the reference breadth-first search: levels from src, -1 when
// unreachable.
func HostBFS(g *Graph, src int) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// HostComponents is the reference union-find labeling: every vertex maps
// to the minimum vertex id of its connected component.
func HostComponents(g *Graph) []int {
	parent := make([]int, g.N)
	for v := range parent {
		parent[v] = v
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			rv, rw := find(v), find(w)
			if rv != rw {
				// Union by minimum id keeps the labels canonical.
				if rv < rw {
					parent[rw] = rv
				} else {
					parent[rv] = rw
				}
			}
		}
	}
	labels := make([]int, g.N)
	for v := range labels {
		labels[v] = find(v)
	}
	return labels
}

// HostPageRank is the reference damped power iteration with uniform
// dangling-mass redistribution, matching PageRank's update rule.
func HostPageRank(g *Graph, damping float64, iters int) []float64 {
	if g.N == 0 {
		return nil
	}
	n := float64(g.N)
	pr := make([]float64, g.N)
	for i := range pr {
		pr[i] = 1 / n
	}
	y := make([]float64, g.N)
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for v := 0; v < g.N; v++ {
			if g.Degree(v) == 0 {
				dangling += pr[v]
			}
		}
		for i := range y {
			y[i] = 0
		}
		for u := 0; u < g.N; u++ {
			if d := g.Degree(u); d > 0 {
				share := pr[u] / float64(d)
				for _, w := range g.Neighbors(u) {
					y[w] += share
				}
			}
		}
		for v := range pr {
			pr[v] = (1-damping)/n + damping*(y[v]+dangling/n)
		}
	}
	return pr
}

// HostTriangles is the reference count: for every oriented wedge at its
// (degree, id)-minimal apex, test the closing edge by adjacency lookup.
func HostTriangles(g *Graph) int64 {
	rank := func(v int) int64 { return int64(g.Degree(v))<<32 | int64(v) }
	adj := make([]map[int]bool, g.N)
	for v := 0; v < g.N; v++ {
		adj[v] = make(map[int]bool, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			adj[v][w] = true
		}
	}
	var count int64
	for u := 0; u < g.N; u++ {
		var out []int
		for _, w := range g.Neighbors(u) {
			if rank(u) < rank(w) {
				out = append(out, w)
			}
		}
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if adj[out[i]][out[j]] {
					count++
				}
			}
		}
	}
	return count
}
