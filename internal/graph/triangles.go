package graph

import (
	"math"

	"repro/internal/collectives"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/sortnet"
)

// Triangle-counting registers.
const (
	regKey = "graph.key" // composite (pair, tag) sort key
	regCnt = "graph.cnt" // per-cell triangle indicator for the reduce
)

// Triangles counts the triangles of g with the classic oriented
// edge/wedge merge-intersection, executed as one data-oblivious sorting-
// network pass (the sortnet family) plus a segmented broadcast and a
// reduce:
//
// The host orients every edge from its lower-(degree, id) endpoint to the
// higher one — input preprocessing, like the CSR offsets — so each vertex
// has out-degree O(√m) and every triangle has exactly one apex (the vertex
// with two outgoing edges). For each apex the out-neighbor pairs become
// "wedge" records; a triangle exists exactly when a wedge's endpoint pair
// also occurs as an oriented edge. Both record kinds are encoded into one
// float64 key, 2·pair + tag with tag 0 for edges and 1 for wedges, so one
// bitonic sort along the Z-order track groups every pair's edge record
// (if any) immediately before its wedges. A segmented First-broadcast
// then hands each wedge its group's first key — even iff the pair is an
// edge — and a quadrant reduce sums the matches at the subgrid origin.
//
// Being a sorting network, the bitonic pass is oblivious to the values
// and runs on the machine's counting-only fast path when batching is on.
//
// Composed costs for S = edges + wedges = O(m^1.5) records: the bitonic
// sort costs Θ(S^1.5 log S) energy and O(log² S) depth (Lemma V.4), which
// dominates the Θ(S) scan and reduce — so Θ(m^2.25 log m) energy
// worst-case, and Θ(m^1.5 log m) on bounded-degree families like the 2D
// mesh where wedges are O(m).
func Triangles(m *machine.Machine, g *Graph) (int64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if g.N == 0 || len(g.Adj) == 0 {
		return 0, nil
	}

	// Host preprocessing: orient by (degree, id) and enumerate wedges.
	rank := func(v int) int64 { return int64(g.Degree(v))<<32 | int64(v) }
	nn := float64(g.N)
	var keys []float64
	out := make([][]int, g.N)
	for u := 0; u < g.N; u++ {
		for _, w := range g.Neighbors(u) {
			if rank(u) < rank(w) {
				out[u] = append(out[u], w)
			}
		}
	}
	pairKey := func(v, w int) float64 {
		if rank(w) < rank(v) {
			v, w = w, v
		}
		return float64(v)*nn + float64(w)
	}
	for u := 0; u < g.N; u++ {
		for _, w := range out[u] {
			keys = append(keys, 2*pairKey(u, w)) // edge record, tag 0
		}
		for i := 0; i < len(out[u]); i++ {
			for j := i + 1; j < len(out[u]); j++ {
				keys = append(keys, 2*pairKey(out[u][i], out[u][j])+1) // wedge, tag 1
			}
		}
	}
	if len(keys) == 0 {
		return 0, nil
	}

	// One record per PE on a power-of-two square, pads at +Inf.
	ur := grid.Square(machine.Coord{}, pow2SideFor(len(keys)))
	ut := grid.ZOrder(ur)
	total := ur.Size()
	for i := 0; i < total; i++ {
		v := math.Inf(1)
		if i < len(keys) {
			v = keys[i]
		}
		m.Set(ut.At(i), regKey, v)
	}

	// Sort along the Z-order track: each pair's records become contiguous,
	// edge (even key) before its wedges (odd keys).
	m.Phase("graph/tri-sort")
	sortnet.Sort(m, ut, regKey, total, order.Float64)

	// Group by pair and broadcast each group's first key.
	m.Phase("graph/tri-match")
	electHeads(m, ut, total, func(c machine.Coord) int64 {
		k := m.Get(c, regKey).(float64)
		if math.IsInf(k, 1) {
			return infInt64
		}
		return int64(k) / 2
	})
	for i := 0; i < total; i++ {
		c := ut.At(i)
		m.Set(c, regBV, m.Get(c, regKey))
	}
	collectives.SegmentedScan(m, ur, regBV, regHead, collectives.First, math.Inf(1))

	// A wedge whose group starts with an edge record closes a triangle.
	for i := 0; i < total; i++ {
		c := ut.At(i)
		k := m.Get(c, regKey).(float64)
		first := m.Get(c, regBV).(float64)
		cnt := 0.0
		if !math.IsInf(k, 1) && int64(k)%2 == 1 && int64(first)%2 == 0 {
			cnt = 1.0
		}
		m.Set(c, regCnt, cnt)
		m.Del(c, regBV)
		m.Del(c, regHead)
		m.Del(c, regKey)
	}
	m.Phase("graph/tri-count")
	collectives.Reduce(m, ur, regCnt, collectives.Add)
	totalV := m.Get(ur.Origin, regCnt).(float64)
	grid.Clear(m, ut, regCnt, total)
	return int64(math.Round(totalV)), nil
}
