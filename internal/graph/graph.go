// Package graph builds application-level graph analytics from the paper's
// energy-optimal primitives: BFS on a level-synchronous frontier driven by
// segmented scans over CSR adjacency, connected components by min-label
// hooking contracted with the treefix primitive (internal/tree), PageRank
// as iterated SpMV (internal/spmv, the mapped Z-order path), and triangle
// counting by sorting and merge-intersecting on the sorting-network family
// (internal/sortnet). Each algorithm runs on a *machine.Machine and its
// costs compose from the Table I rows the primitives are certified to —
// the composed Θ-bounds are registered as claims in internal/bounds.
//
// Graphs are undirected and simple: FromEdges drops self-loops and
// duplicate edges, so every workload the generators emit is in the
// "predefined input format" the paper assumes. The host derives static
// structure (CSR offsets, orientations, Euler tours of hook forests) the
// way internal/tree derives its tour — input preprocessing — while every
// data movement that depends on on-grid values is paid for in messages.
package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/machine"
)

// Graph is an undirected simple graph in CSR form: the neighbors of vertex
// v are Adj[Off[v]:Off[v+1]], sorted ascending. Both directions of every
// edge are stored, so len(Adj) == 2*M().
type Graph struct {
	N   int
	Off []int
	Adj []int
}

// M returns the undirected edge count.
func (g *Graph) M() int { return len(g.Adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.Off[v+1] - g.Off[v] }

// Neighbors returns v's adjacency slice (shared storage; do not mutate).
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Off[v]:g.Off[v+1]] }

// Validate checks CSR shape invariants.
func (g *Graph) Validate() error {
	if g.N < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.N)
	}
	if len(g.Off) != g.N+1 {
		return fmt.Errorf("graph: %d offsets for %d vertices", len(g.Off), g.N)
	}
	for v := 0; v < g.N; v++ {
		if g.Off[v] > g.Off[v+1] {
			return fmt.Errorf("graph: offsets decrease at vertex %d", v)
		}
	}
	for _, w := range g.Adj {
		if w < 0 || w >= g.N {
			return fmt.Errorf("graph: neighbor %d outside [0,%d)", w, g.N)
		}
	}
	return nil
}

// FromEdges builds the CSR graph on n vertices from an edge list,
// dropping self-loops and duplicate edges (either orientation).
func FromEdges(n int, edges [][2]int) *Graph {
	deg := make([]int, n)
	type e struct{ u, v int }
	uniq := make(map[e]bool, len(edges))
	kept := make([]e, 0, len(edges))
	for _, p := range edges {
		u, v := p[0], p[1]
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := e{u, v}
		if uniq[k] {
			continue
		}
		uniq[k] = true
		kept = append(kept, k)
		deg[u]++
		deg[v]++
	}
	g := &Graph{N: n, Off: make([]int, n+1)}
	for v := 0; v < n; v++ {
		g.Off[v+1] = g.Off[v] + deg[v]
	}
	g.Adj = make([]int, g.Off[n])
	pos := make([]int, n)
	copy(pos, g.Off[:n])
	for _, k := range kept {
		g.Adj[pos[k.u]] = k.v
		pos[k.u]++
		g.Adj[pos[k.v]] = k.u
		pos[k.v]++
	}
	for v := 0; v < n; v++ {
		sort.Ints(g.Adj[g.Off[v]:g.Off[v+1]])
	}
	return g
}

// Mesh2D returns the side x side 4-neighbor lattice (n = side² vertices,
// diameter Θ(side) = Θ(√n)) — the polynomial-diameter family of the graph
// sweeps. Vertex (r,c) has index r*side+c.
func Mesh2D(side int) *Graph {
	var edges [][2]int
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := r*side + c
			if c+1 < side {
				edges = append(edges, [2]int{v, v + 1})
			}
			if r+1 < side {
				edges = append(edges, [2]int{v, v + side})
			}
		}
	}
	return FromEdges(side*side, edges)
}

// PowerLaw returns a connected RMAT-ish power-law graph on n vertices: a
// random-ancestor backbone (vertex i attaches to a uniform j < i, giving
// connectivity and O(log n) diameter with high probability) plus ~n extra
// edges whose endpoints are skewed toward low vertex ids (u^2-style
// preferential attachment), producing the heavy-tailed degree profile of
// R-MAT generators. Deterministic given rng — the sweeps seed it through
// the harness's per-point FNV scheme.
func PowerLaw(n int, rng *rand.Rand) *Graph {
	var edges [][2]int
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{i, rng.Intn(i)})
	}
	skew := func() int {
		f := rng.Float64()
		return int(f * f * float64(n))
	}
	for k := 0; k < n; k++ {
		u, v := rng.Intn(n), skew()
		edges = append(edges, [2]int{u, v})
	}
	return FromEdges(n, edges)
}

// --- shared helpers for the on-grid layouts -------------------------------

// pow2SideFor returns the smallest power-of-two side whose square holds at
// least n cells (n = 0 maps to side 1).
func pow2SideFor(n int) int {
	side := 1
	for side*side < n {
		side *= 2
	}
	return side
}

// minInt64 is the collectives.Op for int64 minima.
func minInt64(a, b machine.Value) machine.Value {
	if a.(int64) < b.(int64) {
		return a
	}
	return b
}

// infInt64 is the identity of minInt64: larger than any vertex id.
const infInt64 = int64(math.MaxInt64)
