package simcache

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Backend is the persistent layer under the LRU: one opaque encoded
// document per content hash. Implementations must be safe for concurrent
// use; Put must be atomic enough that a concurrent Get never observes a
// partially written document.
type Backend interface {
	Get(hash string) (data []byte, ok bool, err error)
	Put(hash string, data []byte) error
}

// memory is the in-process Backend: a mutex-guarded map. Useful in tests
// and as a second cache tier when no directory is configured.
type memory struct {
	mu sync.Mutex
	m  map[string][]byte
}

// Memory returns an empty in-memory backend.
func Memory() Backend { return &memory{m: make(map[string][]byte)} }

func (b *memory) Get(hash string) ([]byte, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.m[hash]
	return data, ok, nil
}

func (b *memory) Put(hash string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[hash] = append([]byte(nil), data...)
	return nil
}

// dir is the flat-file Backend: <dir>/<hash>.json per entry. Hashes are
// hex SHA-256, so names never collide or need escaping, and a cache dir
// can be persisted/restored wholesale (the nightly CI does exactly that
// with actions/cache). Writes go through a temp file + rename so readers
// never see a torn document.
type dir struct {
	path string
}

// Dir returns a backend rooted at path, creating the directory if needed.
func Dir(path string) (Backend, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	return &dir{path: path}, nil
}

func (b *dir) file(hash string) string { return filepath.Join(b.path, hash+".json") }

func (b *dir) Get(hash string) ([]byte, bool, error) {
	data, err := os.ReadFile(b.file(hash))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func (b *dir) Put(hash string, data []byte) error {
	tmp, err := os.CreateTemp(b.path, "put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, b.file(hash)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
