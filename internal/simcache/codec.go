package simcache

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// The row codec must round-trip every cell *exactly*: cached rows feed the
// same table renderers and power-law fits as fresh rows, and the
// repository's contract is byte-identical output. Plain JSON numbers lose
// both the Go type (int vs int64 vs float64 — bounds.cellFloat and the
// experiments' cellF type-switch on it) and low bits of large float64s, so
// each cell is encoded as a single-entry object tagging its type:
//
//	{"s":"scan"}  string
//	{"i":"42"}    int      (decimal string: JSON numbers round through float64)
//	{"I":"42"}    int64
//	{"f":"0x1.8p+01"}  float64, hex float — exact, including -0 and huge values
//	{"b":true}    bool
//
// NaN/Inf never appear in sweep rows today, but the hex-float encoding
// would carry them fine if they did ("NaN" / "+Inf" via strconv).

type cell struct {
	S  *string `json:"s,omitempty"`
	I  *string `json:"i,omitempty"`
	I6 *string `json:"I,omitempty"`
	F  *string `json:"f,omitempty"`
	B  *bool   `json:"b,omitempty"`
}

type document struct {
	Rows [][]cell `json:"rows"`
}

func encodeRows(rows []Row) ([]byte, error) {
	doc := document{Rows: make([][]cell, len(rows))}
	for i, r := range rows {
		cs := make([]cell, len(r))
		for j, v := range r {
			switch x := v.(type) {
			case string:
				s := x
				cs[j] = cell{S: &s}
			case int:
				s := strconv.FormatInt(int64(x), 10)
				cs[j] = cell{I: &s}
			case int64:
				s := strconv.FormatInt(x, 10)
				cs[j] = cell{I6: &s}
			case float64:
				s := strconv.FormatFloat(x, 'x', -1, 64)
				cs[j] = cell{F: &s}
			case bool:
				b := x
				cs[j] = cell{B: &b}
			default:
				return nil, fmt.Errorf("unencodable row cell %T at row %d col %d", v, i, j)
			}
		}
		doc.Rows[i] = cs
	}
	return json.Marshal(doc)
}

func decodeRows(data []byte) ([]Row, error) {
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	rows := make([]Row, len(doc.Rows))
	for i, cs := range doc.Rows {
		r := make(Row, len(cs))
		for j, c := range cs {
			switch {
			case c.S != nil:
				r[j] = *c.S
			case c.I != nil:
				v, err := strconv.ParseInt(*c.I, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("row %d col %d: %w", i, j, err)
				}
				r[j] = int(v)
			case c.I6 != nil:
				v, err := strconv.ParseInt(*c.I6, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("row %d col %d: %w", i, j, err)
				}
				r[j] = v
			case c.F != nil:
				v, err := strconv.ParseFloat(*c.F, 64)
				if err != nil {
					return nil, fmt.Errorf("row %d col %d: %w", i, j, err)
				}
				r[j] = v
			case c.B != nil:
				r[j] = *c.B
			default:
				return nil, fmt.Errorf("row %d col %d: empty cell", i, j)
			}
		}
		rows[i] = r
	}
	return rows, nil
}
