package simcache

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var golden = Key{Sweep: "bounds/scan", Point: 3, Seed: 1, Shards: 4, Batch: true, Congestion: false, Version: "vcs:deadbeef"}

// TestKeyHashGolden pins the key encoding: the hash must be this exact
// string on every platform and run. If this test fails the encoding
// changed, which silently orphans every persisted cache entry — bump the
// "simcache/v3" tag deliberately and update the constant here if that is
// intended. (v1 → v2 added the Mapping field, v2 → v3 the Machine backend
// field; the older generations' entries were orphaned on purpose.)
func TestKeyHashGolden(t *testing.T) {
	const want = "a5b6970969cd7cf929bc57f397f9af423ec139c5a262f7d14ae90dbb48d792bd"
	if got := golden.Hash(); got != want {
		t.Errorf("golden key hash drifted:\n got  %s\n want %s", got, want)
	}
	if got := golden.Hash(); got != golden.Hash() {
		t.Error("Hash is not deterministic across calls")
	}
}

// TestKeyHashSensitivity: every field of the key must change the address.
// A field that doesn't is a stale-hit correctness bug waiting to happen —
// e.g. serving seed-1 rows to a seed-2 run.
func TestKeyHashSensitivity(t *testing.T) {
	base := golden.Hash()
	mutations := map[string]Key{
		"sweep":      {Sweep: "bounds/sort", Point: 3, Seed: 1, Shards: 4, Batch: true, Version: "vcs:deadbeef"},
		"point":      {Sweep: "bounds/scan", Point: 4, Seed: 1, Shards: 4, Batch: true, Version: "vcs:deadbeef"},
		"seed":       {Sweep: "bounds/scan", Point: 3, Seed: 2, Shards: 4, Batch: true, Version: "vcs:deadbeef"},
		"shards":     {Sweep: "bounds/scan", Point: 3, Seed: 1, Shards: 8, Batch: true, Version: "vcs:deadbeef"},
		"batch":      {Sweep: "bounds/scan", Point: 3, Seed: 1, Shards: 4, Batch: false, Version: "vcs:deadbeef"},
		"congestion": {Sweep: "bounds/scan", Point: 3, Seed: 1, Shards: 4, Batch: true, Congestion: true, Version: "vcs:deadbeef"},
		"mapping":    {Sweep: "bounds/scan", Point: 3, Seed: 1, Shards: 4, Batch: true, Mapping: "track=zorder,arity=4,tile=square,sort=bitonic", Version: "vcs:deadbeef"},
		"machine":    {Sweep: "bounds/scan", Point: 3, Seed: 1, Shards: 4, Batch: true, Machine: "mesh:16x16:4", Version: "vcs:deadbeef"},
		"version":    {Sweep: "bounds/scan", Point: 3, Seed: 1, Shards: 4, Batch: true, Version: "vcs:cafef00d"},
	}
	seen := map[string]string{base: "base"}
	for field, k := range mutations {
		h := k.Hash()
		if h == base {
			t.Errorf("changing %s did not change the key hash", field)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("keys %s and %s collide", field, prev)
		}
		seen[h] = field
	}
}

// TestKeyHashUnambiguousEncoding: string fields are length-prefixed, so
// shifting bytes between adjacent fields must not produce the same address.
func TestKeyHashUnambiguousEncoding(t *testing.T) {
	a := Key{Sweep: "ab", Version: "c"}
	b := Key{Sweep: "a", Version: "bc"}
	if a.Hash() == b.Hash() {
		t.Error("concatenation-ambiguous keys collide")
	}
}

func sampleRows() []Row {
	return []Row{
		{"scan", 256, int64(511), 1.5, true},
		{4096, float64(1 << 62), math.Copysign(0, -1), 0.1 + 0.2}, // values JSON numbers would mangle
	}
}

func TestCodecRoundTripsExactly(t *testing.T) {
	rows := sampleRows()
	data, err := encodeRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRows(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Errorf("round trip changed rows:\n got  %#v\n want %#v", got, rows)
	}
	// -0.0 survives with its sign (DeepEqual can't see the difference).
	if v := got[1][2].(float64); !math.Signbit(v) {
		t.Error("negative zero lost its sign bit")
	}
}

func TestCodecRejectsUnknownTypes(t *testing.T) {
	if _, err := encodeRows([]Row{{struct{}{}}}); err == nil {
		t.Error("encode accepted a struct cell")
	}
}

func TestCacheMemoryRoundTrip(t *testing.T) {
	c := New(Memory(), 0)
	k := Key{Sweep: "s", Point: 1, Seed: 1, Version: "v"}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(k, sampleRows()); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || !reflect.DeepEqual(got, sampleRows()) {
		t.Fatalf("Get after Put = %v, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 store", st)
	}
}

// TestCacheDiskSurvivesLRU: an entry evicted from the LRU must still be
// served from the directory backend — and repopulate the LRU on the way.
func TestCacheDiskSurvivesLRU(t *testing.T) {
	backend, err := Dir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := New(backend, 2)
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = Key{Sweep: "s", Point: i, Version: "v"}
		if err := c.Put(keys[i], []Row{{i}}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("LRU holds %d entries, want 2", c.Len())
	}
	for i, k := range keys {
		rows, ok := c.Get(k)
		if !ok || rows[0][0] != i {
			t.Fatalf("key %d: rows=%v ok=%v after eviction", i, rows, ok)
		}
	}
	if st := c.Stats(); st.Errors != 0 {
		t.Errorf("backend errors: %+v", st)
	}
}

// TestCacheDiskPersistsAcrossInstances mimics two CLI invocations sharing
// -cache DIR: a second cache over the same directory serves the first
// one's entries.
func TestCacheDiskPersistsAcrossInstances(t *testing.T) {
	dirPath := t.TempDir()
	b1, _ := Dir(dirPath)
	c1 := New(b1, 0)
	k := Key{Sweep: "persist", Point: 7, Seed: 3, Version: "v"}
	if err := c1.Put(k, sampleRows()); err != nil {
		t.Fatal(err)
	}
	b2, _ := Dir(dirPath)
	c2 := New(b2, 0)
	got, ok := c2.Get(k)
	if !ok || !reflect.DeepEqual(got, sampleRows()) {
		t.Fatalf("second instance: rows=%v ok=%v", got, ok)
	}
}

// TestCacheCorruptFileIsMiss: a truncated/garbage document degrades to a
// miss (and counts an error), never to wrong rows.
func TestCacheCorruptFileIsMiss(t *testing.T) {
	dirPath := t.TempDir()
	backend, _ := Dir(dirPath)
	c := New(backend, 0)
	k := Key{Sweep: "corrupt", Version: "v"}
	if err := c.Put(k, sampleRows()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirPath, k.Hash()+".json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Evict the good in-memory copy by rebuilding the front.
	c = New(backend, 0)
	if _, ok := c.Get(k); ok {
		t.Fatal("corrupt backend entry served as a hit")
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Errorf("stats = %+v, want 1 error", st)
	}
}

func TestCacheNilBackend(t *testing.T) {
	c := New(nil, 2)
	k := Key{Sweep: "mem-only"}
	if err := c.Put(k, []Row{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); !ok {
		t.Error("nil-backend cache lost its entry")
	}
}

func TestCodeVersionStableAndNonEmpty(t *testing.T) {
	v := CodeVersion()
	if v == "" {
		t.Fatal("empty code version")
	}
	if v != CodeVersion() {
		t.Error("CodeVersion changed between calls")
	}
	if !strings.HasPrefix(v, "vcs:") && !strings.HasPrefix(v, "exe:") && v != "dev" {
		t.Errorf("unexpected version shape %q", v)
	}
}
