// Package simcache is a content-addressed store for simulation results.
//
// Every measurement in this repository is byte-deterministic: a sweep
// point's rows are a pure function of (sweep name, point index, base seed,
// machine configuration, code version). That makes results perfectly
// cacheable — a hit is not an approximation of a fresh run, it *is* the
// fresh run's output — so repeated conformance checks and benchmark sweeps
// can skip simulation entirely.
//
// The cache is layered: a small in-memory LRU of decoded rows fronts a
// pluggable Backend holding one encoded JSON document per key (Memory for
// tests and single-process reuse, Dir for flat files that persist across
// processes and CI runs). Keys are hashed content addresses; see Key for
// what goes into one and DESIGN.md for why each field is there.
package simcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Row mirrors harness.Row (a slice of table cells) without importing the
// harness, which imports this package.
type Row = []any

// Key identifies one sweep point's result. Every field that could change
// the produced rows — or that an operator could plausibly *believe*
// changes them — is part of the address:
//
//   - Sweep, Point, Seed determine the point's workload (the harness
//     derives the point RNG from exactly these).
//   - Shards, Batch and Congestion are machine options. Sharding and
//     batched sends are proven output-invariant (internal/machine), but
//     they stay in the key anyway: a stale hit that masked a
//     shard-invariance regression would be a correctness bug dressed as a
//     speedup, so the key is conservative. Congestion tracking genuinely
//     changes what some sweeps report (MaxCongestion columns).
//   - Mapping is the canonical layout/schedule string of the sweep's
//     mapping (internal/mapping), empty for unmapped sweeps. Mapped sweeps
//     share one name (and so one RNG stream — candidates measure identical
//     workloads) while producing different rows per mapping, so the
//     mapping must be part of the address.
//   - Machine is the canonical spec of the machine backend the point ran
//     on (machine.Backend.String(): "ideal", "mesh:WxH[:block]",
//     "torus:WxH[:block]"). Finite backends charge different costs for the
//     same computation, so rows measured on different fabrics must never
//     alias. "" and "ideal" are distinct encodings of the same backend;
//     callers canonicalize (the harness always writes the String() form).
//   - Version pins the code that produced the rows; see CodeVersion.
type Key struct {
	Sweep      string
	Point      int
	Seed       int64
	Shards     int
	Batch      bool
	Congestion bool
	Mapping    string
	Machine    string
	Version    string
}

// Hash returns the key's content address: a hex SHA-256 over an
// unambiguous (length-prefixed) encoding of every field. Two distinct keys
// cannot collide by concatenation tricks ("ab"+"c" vs "a"+"bc"), and the
// encoding never changes silently — the golden test in this package pins
// it.
func (k Key) Hash() string {
	h := sha256.New()
	writeStr := func(s string) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(len(s)))
		h.Write(b[:])
		io.WriteString(h, s)
	}
	writeInt := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	writeBool := func(v bool) {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	writeStr("simcache/v3")
	writeStr(k.Sweep)
	writeInt(int64(k.Point))
	writeInt(k.Seed)
	writeInt(int64(k.Shards))
	writeBool(k.Batch)
	writeBool(k.Congestion)
	writeStr(k.Mapping)
	writeStr(k.Machine)
	writeStr(k.Version)
	return hex.EncodeToString(h.Sum(nil))
}

// Stats counts cache traffic. Errors counts backend failures (unreadable
// files, full disks); a failed Get is served as a miss and a failed Put is
// dropped, so errors degrade the cache to a slower one, never to a wrong
// one.
type Stats struct {
	Hits, Misses, Stores, Errors int64
}

// Cache is the in-memory LRU front over a Backend. Safe for concurrent
// use.
type Cache struct {
	backend Backend
	maxLRU  int

	mu  sync.Mutex
	lru *list.List // of *entry, most recent first
	idx map[string]*list.Element

	hits, misses, stores, errs atomic.Int64
}

type entry struct {
	hash string
	rows []Row
}

// New returns a cache over backend with an LRU holding up to maxEntries
// decoded results (maxEntries <= 0 means a default of 4096). A nil
// backend is valid: the LRU is then the only storage.
func New(backend Backend, maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &Cache{backend: backend, maxLRU: maxEntries, lru: list.New(), idx: make(map[string]*list.Element)}
}

// Get returns the rows stored under k. The returned outer slice is the
// caller's; the rows themselves are shared and must be treated as
// read-only (every consumer in this repository renders or fits them).
func (c *Cache) Get(k Key) ([]Row, bool) {
	hash := k.Hash()
	c.mu.Lock()
	if el, ok := c.idx[hash]; ok {
		c.lru.MoveToFront(el)
		rows := el.Value.(*entry).rows
		c.mu.Unlock()
		c.hits.Add(1)
		return append([]Row(nil), rows...), true
	}
	c.mu.Unlock()

	if c.backend != nil {
		data, ok, err := c.backend.Get(hash)
		if err != nil {
			c.errs.Add(1)
		} else if ok {
			rows, derr := decodeRows(data)
			if derr != nil {
				// A corrupt or stale-format file is a miss, not a failure:
				// the point re-simulates and Put overwrites the entry.
				c.errs.Add(1)
			} else {
				c.insert(hash, rows)
				c.hits.Add(1)
				return append([]Row(nil), rows...), true
			}
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores rows under k in both layers. Rows with cell types outside
// the supported set (string, int, int64, float64, bool) are rejected with
// an error and cached nowhere.
func (c *Cache) Put(k Key, rows []Row) error {
	data, err := encodeRows(rows)
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	hash := k.Hash()
	c.insert(hash, append([]Row(nil), rows...))
	c.stores.Add(1)
	if c.backend != nil {
		if err := c.backend.Put(hash, data); err != nil {
			c.errs.Add(1)
			return fmt.Errorf("simcache: %w", err)
		}
	}
	return nil
}

func (c *Cache) insert(hash string, rows []Row) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[hash]; ok {
		el.Value.(*entry).rows = rows
		c.lru.MoveToFront(el)
		return
	}
	c.idx[hash] = c.lru.PushFront(&entry{hash: hash, rows: rows})
	for c.lru.Len() > c.maxLRU {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.idx, oldest.Value.(*entry).hash)
	}
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Stores: c.stores.Load(),
		Errors: c.errs.Load(),
	}
}

// Len reports how many entries the LRU currently holds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

var (
	codeVersionOnce sync.Once
	codeVersion     string
)

// CodeVersion derives the Key.Version for the running binary. Preference
// order:
//
//  1. The VCS revision from build info, when the build was stamped from a
//     clean working tree — stable across rebuilds of the same commit,
//     which is what lets CI warm-start a cache persisted from an earlier
//     run of the same code.
//  2. A SHA-256 of the executable itself otherwise (dirty trees, test
//     binaries, stripped builds) — any code change reliably changes the
//     address, so a development loop can never be served stale rows.
//  3. "dev" as the last resort when even the executable is unreadable.
func CodeVersion() string {
	codeVersionOnce.Do(func() { codeVersion = computeCodeVersion() })
	return codeVersion
}

func computeCodeVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" && !dirty {
			return "vcs:" + rev
		}
	}
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return "exe:" + hex.EncodeToString(h.Sum(nil))
			}
		}
	}
	return "dev"
}
