// Package cliflags registers the flag set shared by the repo's CLIs
// (boundcheck, spatialbench, spatiald, spatialtune), so the pool-,
// seed-, timeout- and cache-related flags keep one name, one default
// and one help string everywhere. Each helper registers its flags on
// the caller's FlagSet and returns the parsed values' home, so the
// CLIs stay plain flag-package programs.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/simcache"
)

// Pool holds the worker-pool sizing flags (-parallel/-shards/-batch).
// The knobs change wall-clock only: sweep rows are byte-identical for
// any setting at a fixed seed (see internal/machine), so they exist to
// attribute regressions and speedups, not to change results.
type Pool struct {
	Parallel int
	Shards   int
	Batch    bool
}

// AddPool registers -parallel, -shards and -batch on fs.
func AddPool(fs *flag.FlagSet) *Pool {
	p := &Pool{}
	fs.IntVar(&p.Parallel, "parallel", runtime.GOMAXPROCS(0), "worker goroutines for sweep points")
	fs.IntVar(&p.Shards, "shards", runtime.GOMAXPROCS(0), "intra-simulation shards per machine (1 = sequential rounds; output is identical for any value)")
	fs.BoolVar(&p.Batch, "batch", true, "drive machines through the batched send API (counting-only fast path for data-oblivious sweeps; output is identical)")
	return p
}

// HarnessOptions renders the pool flags as harness options, in the
// order every CLI applied them before the flags moved here.
func (p *Pool) HarnessOptions() []harness.Option {
	opts := []harness.Option{harness.WithWorkers(p.Parallel)}
	if p.Shards > 1 {
		opts = append(opts, harness.WithShards(p.Shards))
	}
	if p.Batch {
		opts = append(opts, harness.WithBatchSends())
	}
	return opts
}

// MachineBackend holds the -backend flag: the hardware model sweep
// machines charge message costs on. Finite backends fold the unbounded
// virtual grid onto a W×H fabric (see internal/machine); results are
// identical under every backend, only the cost metrics change.
type MachineBackend struct {
	Spec string
}

// AddBackend registers -backend on fs.
func AddBackend(fs *flag.FlagSet) *MachineBackend {
	b := &MachineBackend{}
	fs.StringVar(&b.Spec, "backend", "ideal",
		"machine backend: ideal, mesh:WxH[:block] or torus:WxH[:block] (folds the grid onto a finite fabric; costs change, results don't)")
	return b
}

// Parse validates the spec via machine.ParseBackend.
func (b *MachineBackend) Parse() (machine.Backend, error) {
	return machine.ParseBackend(b.Spec)
}

// HarnessOption renders the flag as the runner option carrying the
// backend (harness.WithBackend). The ideal default is explicit rather
// than omitted: the runner canonicalizes the spec into its cache keys
// either way.
func (b *MachineBackend) HarnessOption() (harness.Option, error) {
	bk, err := b.Parse()
	if err != nil {
		return nil, err
	}
	return harness.WithBackend(bk), nil
}

// AddSeed registers the workload-generation -seed flag.
func AddSeed(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 1, "random seed for workload generation")
}

// AddTimeout registers the per-sweep -timeout budget.
func AddTimeout(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, "per-sweep wall-clock budget; unstarted points are skipped (0 = none)")
}

// AddServer registers -server with a command-specific usage string
// (the daemon's role differs per client: boundcheck ships whole
// conformance runs, spatialbench single sweeps).
func AddServer(fs *flag.FlagSet, usage string) *string {
	return fs.String("server", "", usage)
}

// Cache holds the content-addressed result-cache flag (-cache). Dir is
// empty when the flag was not given.
type Cache struct {
	Dir string
}

// AddCache registers -cache on fs. usage overrides the standard help
// string when non-empty (spatiald's cache is in-memory by default, so
// its flag reads differently).
func AddCache(fs *flag.FlagSet, usage string) *Cache {
	if usage == "" {
		usage = "directory for the content-addressed result cache (reruns serve hits instead of simulating)"
	}
	c := &Cache{}
	fs.StringVar(&c.Dir, "cache", "", usage)
	return c
}

// Backend opens the on-disk backend, or returns nil when no -cache
// directory was given (spatiald then runs an in-memory cache).
func (c *Cache) Backend() (simcache.Backend, error) {
	if c.Dir == "" {
		return nil, nil
	}
	return simcache.Dir(c.Dir)
}

// Open returns the unbounded cache the one-shot CLIs attach via
// harness.WithCache, or nil when -cache was not given.
func (c *Cache) Open() (*simcache.Cache, error) {
	backend, err := c.Backend()
	if err != nil || backend == nil {
		return nil, err
	}
	return simcache.New(backend, 0), nil
}

// ReportStats writes the post-run hit/miss line the caching CLIs
// share; no-op for a nil cache. Stats belong on stderr only: stdout
// must stay byte-identical between cold and warm runs.
func (c *Cache) ReportStats(w io.Writer, prog string, cache *simcache.Cache) {
	if cache == nil {
		return
	}
	st := cache.Stats()
	fmt.Fprintf(w, "%s: cache: %d hits, %d misses, %d stored (dir %s)\n",
		prog, st.Hits, st.Misses, st.Stores, c.Dir)
}
