package cliflags

import (
	"bytes"
	"flag"
	"io"
	"strings"
	"testing"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// TestPoolFlags: defaults parse, overrides land, and the harness option
// list shrinks when sharding/batching are off (shards=1 and -batch=false
// must not register their options).
func TestPoolFlags(t *testing.T) {
	fs := newFS()
	p := AddPool(fs)
	if err := fs.Parse([]string{"-parallel", "3", "-shards", "1", "-batch=false"}); err != nil {
		t.Fatal(err)
	}
	if p.Parallel != 3 || p.Shards != 1 || p.Batch {
		t.Fatalf("parsed pool %+v", p)
	}
	if got := len(p.HarnessOptions()); got != 1 {
		t.Errorf("shards=1 batch=false yields %d options, want 1 (workers only)", got)
	}
	p.Shards, p.Batch = 4, true
	if got := len(p.HarnessOptions()); got != 3 {
		t.Errorf("shards=4 batch=true yields %d options, want 3", got)
	}
}

// TestCacheFlag: no -cache means no cache and no stats line; a directory
// opens an on-disk backend; stats render with the directory.
func TestCacheFlag(t *testing.T) {
	fs := newFS()
	c := AddCache(fs, "")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cache, err := c.Open(); err != nil || cache != nil {
		t.Fatalf("empty -cache opened %v, %v", cache, err)
	}
	var buf bytes.Buffer
	c.ReportStats(&buf, "prog", nil)
	if buf.Len() != 0 {
		t.Errorf("nil cache reported stats: %q", buf.String())
	}

	fs = newFS()
	c = AddCache(fs, "")
	if err := fs.Parse([]string{"-cache", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	cache, err := c.Open()
	if err != nil || cache == nil {
		t.Fatalf("Open: %v, %v", cache, err)
	}
	c.ReportStats(&buf, "prog", cache)
	if !strings.Contains(buf.String(), "prog: cache: 0 hits") {
		t.Errorf("stats line: %q", buf.String())
	}
}

// TestSharedScalarFlags: seed, timeout and server register under their
// canonical names with the canonical defaults.
func TestSharedScalarFlags(t *testing.T) {
	fs := newFS()
	seed := AddSeed(fs)
	timeout := AddTimeout(fs)
	server := AddServer(fs, "daemon URL")
	if err := fs.Parse([]string{"-seed", "9", "-timeout", "2s", "-server", "host:1"}); err != nil {
		t.Fatal(err)
	}
	if *seed != 9 || timeout.Seconds() != 2 || *server != "host:1" {
		t.Errorf("parsed seed=%d timeout=%v server=%q", *seed, *timeout, *server)
	}
}
