// Micro-benchmarks of the simulator's hot paths: message delivery, parallel
// rounds, independent forks, register access and grid reuse. `make bench`
// runs these (plus the end-to-end BenchmarkTable1Sort) and rewrites
// BENCH_machine.json at the repository root.
package machine

import (
	"fmt"
	"testing"

	"repro/internal/trace"
)

// BenchmarkMachineSendChain measures a long relay chain: one Get + one
// delivery per operation, all within or between adjacent tiles.
func BenchmarkMachineSendChain(b *testing.B) {
	m := New()
	m.Set(Coord{0, 0}, "v", 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(Coord{0, i % 64}, "v", Coord{0, i%64 + 1}, "v")
	}
}

// BenchmarkMachineSendScattered measures sends between PEs in different
// tiles (cache-unfriendly access pattern).
func BenchmarkMachineSendScattered(b *testing.B) {
	m := New()
	const stride = 61 // co-prime with the tile side
	for i := 0; i < 64; i++ {
		m.Set(Coord{i * stride % 997, i * stride * 7 % 997}, "v", 1.0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Coord{i * stride % 997, i * stride * 7 % 997}
		c := Coord{(i + 1) * stride % 997, (i + 1) * stride * 7 % 997}
		m.SendValue(a, c, "v", 1.0)
	}
}

// BenchmarkMachineSetGet measures the register file fast path.
func BenchmarkMachineSetGet(b *testing.B) {
	m := New()
	c := Coord{5, 5}
	m.Set(c, "v", 1.0)
	m.Set(c, "w", 2.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(c, "v", i)
		_ = m.Get(c, "v")
	}
}

// BenchmarkMachinePar measures a parallel round of k messages: steady-state
// rounds must not allocate (reused pending buffer, per-PE snapshots).
func BenchmarkMachinePar(b *testing.B) {
	for _, k := range []int{16, 256} {
		b.Run(fmt.Sprintf("msgs=%d", k), func(b *testing.B) {
			m := New()
			vals := make([]Value, k) // pre-boxed so the bench measures the machine, not interface conversion
			for i := 0; i < k; i++ {
				m.Set(Coord{0, i}, "v", float64(i))
				vals[i] = float64(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
					for j := 0; j < k; j++ {
						send(Coord{0, j}, Coord{1, j}, "v", vals[j])
					}
				})
			}
		})
	}
}

// BenchmarkMachineBatchRound measures a recorded round through the batch
// API: record k messages, then one charge pass and one delivery pass.
// Steady-state rounds must not allocate (the machine owns one reusable
// batch buffer).
func BenchmarkMachineBatchRound(b *testing.B) {
	for _, k := range []int{16, 256} {
		b.Run(fmt.Sprintf("msgs=%d", k), func(b *testing.B) {
			m := New()
			vals := make([]Value, k)
			for i := 0; i < k; i++ {
				m.Set(Coord{0, i}, "v", float64(i))
				vals[i] = float64(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.SendBatch(func(bt *Batch) {
					for j := 0; j < k; j++ {
						bt.Send(Coord{0, j}, Coord{1, j}, "v", vals[j])
					}
				})
			}
		})
	}
}

// BenchmarkMachineCountRound measures the counting-only round: charged like
// a full round but with no payload and no register delivery — the fast path
// data-oblivious algorithms take when CountingOnly reports true.
func BenchmarkMachineCountRound(b *testing.B) {
	for _, k := range []int{16, 256} {
		b.Run(fmt.Sprintf("msgs=%d", k), func(b *testing.B) {
			m := New()
			m.SetBatchSends(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.SendBatch(func(bt *Batch) {
					for j := 0; j < k; j++ {
						bt.Count(Coord{0, j}, Coord{1, j})
					}
				})
			}
		})
	}
}

// BenchmarkMachineCountPair measures the fused compare-exchange primitive
// sorting networks run level after level: two counting-only messages with
// the tile lookups hoisted into pre-resolved handles.
func BenchmarkMachineCountPair(b *testing.B) {
	m := New()
	m.SetBatchSends(true)
	hs := make([]PEHandle, 64)
	for i := range hs {
		hs[i] = m.Handle(Coord{0, i})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CountPair(hs[i%32], hs[i%32+32])
	}
}

// BenchmarkMachineShardedRound measures one large batched round executed
// across shards (fork, chunked charge, per-shard delivery, join). The shard
// count is reported as a metric so bench-compare can refuse to diff runs
// taken at different parallelism.
func BenchmarkMachineShardedRound(b *testing.B) {
	const k = 4096 // >= defaultShardMin, so the sharded path actually runs
	const shards = 4
	m := New()
	m.SetShards(shards)
	vals := make([]Value, k)
	for i := 0; i < k; i++ {
		m.Set(Coord{0, i}, "v", float64(i))
		vals[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SendBatch(func(bt *Batch) {
			for j := 0; j < k; j++ {
				bt.Send(Coord{0, j}, Coord{1, j}, "v", vals[j])
			}
		})
	}
	b.ReportMetric(float64(shards), "shards")
}

// BenchmarkMachineIndependent measures a two-branch fork relaying through a
// shared PE (journal + rollback machinery).
func BenchmarkMachineIndependent(b *testing.B) {
	m := New()
	m.Set(Coord{0, 0}, "v", 1.0)
	m.Set(Coord{9, 9}, "v", 2.0)
	shared := Coord{5, 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Independent(
			func() { m.SendValue(Coord{0, 0}, shared, "a", 1.0) },
			func() { m.SendValue(Coord{9, 9}, shared, "b", 2.0) },
		)
	}
}

// BenchmarkMachineReset measures grid reuse for sweeps: populate a 64x64
// region, then Reset. The first population builds the tiles and per-PE
// register slices and happens before the timer, so the loop measures the
// steady-state reuse cycle — which must be allocation-free.
func BenchmarkMachineReset(b *testing.B) {
	m := New()
	populate := func() {
		for r := 0; r < 64; r++ {
			for c := 0; c < 64; c++ {
				m.Set(Coord{r, c}, "v", 1.0)
			}
		}
	}
	populate()
	m.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		populate()
		m.Reset()
	}
}

// BenchmarkMachineResetSparse measures Reset on a pooled machine whose
// grid was warmed by a much larger earlier run: only the tiles the last
// point touched are scanned, not the whole 256x256 footprint.
func BenchmarkMachineResetSparse(b *testing.B) {
	m := New()
	for r := 0; r < 256; r++ {
		for c := 0; c < 256; c++ {
			m.Set(Coord{r, c}, "v", 1.0)
		}
	}
	m.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 16; r++ {
			for c := 0; c < 16; c++ {
				m.Set(Coord{r, c}, "v", 1.0)
			}
		}
		m.Reset()
	}
}

// BenchmarkMachineSendTraced measures the relay chain with a trace sink
// attached — the price of observability when it is switched on. (The
// disabled case is covered by BenchmarkMachineSendChain, whose nil sink
// check is the only cost and which the bench-compare gate holds flat.)
func BenchmarkMachineSendTraced(b *testing.B) {
	m := New()
	var count int64
	m.SetSink(trace.SinkFunc(func(e *trace.Event) { count += e.Dist }))
	m.Set(Coord{0, 0}, "v", 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(Coord{0, i % 64}, "v", Coord{0, i%64 + 1}, "v")
	}
	_ = count
}

// BenchmarkMachineCongestion measures XY-routed link accounting on a
// diagonal walk (one bump per hop).
func BenchmarkMachineCongestion(b *testing.B) {
	m := New()
	m.EnableCongestionTracking()
	m.Set(Coord{0, 0}, "v", 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SendValue(Coord{0, 0}, Coord{31, 31}, "v", 1.0)
	}
}
