package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// Finite-hardware backends. The model's grid is unbounded with O(1) memory
// per PE; every real target is a finite W×H fabric. A Backend selects the
// cost model messages are charged under:
//
//   - Ideal: the paper's unbounded grid — Manhattan distance between the
//     virtual coordinates themselves. The zero value; costs nothing.
//   - Mesh: a finite W×H grid of physical PEs. Virtual PEs fold onto it
//     periodically: along each axis, a pane of size·Block virtual cells
//     maps onto the fabric with Block consecutive virtual cells per
//     physical PE, and the pane repeats across the unbounded axis. A
//     message is charged the Manhattan distance between the physical homes
//     of its endpoints.
//   - Torus: the mesh plus wraparound links — per-axis distance is the
//     shorter way around the ring.
//
// Folding changes costs, never results: register routing, values and
// message counts are untouched, so answers are byte-identical under every
// backend (the backend invariance suite pins this). Two distinct virtual
// PEs may share a physical home; a message between them costs zero energy
// but still counts as a message and a chain hop. Memory accounting under a
// finite backend additionally tracks how many registers are co-resident on
// each physical PE (see Machine.SetBackend).
type Backend struct {
	Kind BackendKind
	// W, H are the physical fabric dimensions (columns, rows). Ignored for
	// Ideal.
	W, H int
	// Block is the per-axis fold factor: each physical PE hosts a
	// Block×Block block of virtual PEs per pane. 1 (or 0, normalized to 1)
	// means one virtual PE per physical PE per pane.
	Block int
}

// BackendKind names the cost model of a Backend.
type BackendKind uint8

const (
	BackendIdeal BackendKind = iota
	BackendMesh
	BackendTorus
)

// Ideal returns the unbounded paper-model backend (the default).
func Ideal() Backend { return Backend{} }

// Mesh returns a finite w×h mesh backend with per-axis fold factor block.
func Mesh(w, h, block int) Backend {
	return Backend{Kind: BackendMesh, W: w, H: h, Block: block}
}

// Torus returns a finite w×h torus backend with per-axis fold factor block.
func Torus(w, h, block int) Backend {
	return Backend{Kind: BackendTorus, W: w, H: h, Block: block}
}

// maxFabricPEs bounds W*H: the machine keeps one int32 occupancy counter
// per physical PE, so an absurd spec would be an absurd allocation.
const maxFabricPEs = 1 << 22

// maxFoldSpan bounds the per-axis pane span size·Block. foldAxis computes
// span := size*block, so without a cap a huge Block wraps the product (to
// zero or negative) and the first message divides by zero. 2^30 keeps the
// product safe even for 32-bit int while allowing panes of a billion
// virtual cells per axis — far beyond any sweep.
const maxFoldSpan = 1 << 30

func (b Backend) validate() error {
	switch b.Kind {
	case BackendIdeal:
		return nil
	case BackendMesh, BackendTorus:
		if b.W < 1 || b.H < 1 {
			return fmt.Errorf("machine: backend %s: fabric must be at least 1x1", b)
		}
		// Overflow-safe W*H ≤ maxFabricPEs: the product itself can wrap
		// negative for adversarial dimensions, so divide instead.
		if b.W > maxFabricPEs/b.H {
			return fmt.Errorf("machine: backend %s: fabric exceeds %d physical PEs", b, maxFabricPEs)
		}
		if b.Block < 0 {
			return fmt.Errorf("machine: backend %s: negative fold block", b)
		}
		if b.Block > maxFoldSpan/max(b.W, b.H) {
			return fmt.Errorf("machine: backend %s: fold block exceeds pane span cap %d", b, maxFoldSpan)
		}
		return nil
	}
	return fmt.Errorf("machine: unknown backend kind %d", b.Kind)
}

// normalize maps the accepted zero forms onto canonical values.
func (b Backend) normalize() Backend {
	if b.Kind == BackendIdeal {
		return Backend{}
	}
	if b.Block < 1 {
		b.Block = 1
	}
	return b
}

// Finite reports whether the backend folds onto a finite fabric.
func (b Backend) Finite() bool { return b.Kind != BackendIdeal }

// FoldFactor returns the per-axis fold factor f: virtual distances contract
// by at most f per hop, and the folded-energy bound E_ideal ≤ f·(E_backend
// + 2·messages) holds whenever the computation fits inside one pane.
func (b Backend) FoldFactor() int {
	if b.Kind == BackendIdeal || b.Block < 1 {
		return 1
	}
	return b.Block
}

// String renders the backend in the spec syntax ParseBackend accepts:
// "ideal", "mesh:WxH", "torus:WxH:block".
func (b Backend) String() string {
	switch b.Kind {
	case BackendIdeal:
		return "ideal"
	case BackendMesh, BackendTorus:
		name := "mesh"
		if b.Kind == BackendTorus {
			name = "torus"
		}
		if b.Block > 1 {
			return fmt.Sprintf("%s:%dx%d:%d", name, b.W, b.H, b.Block)
		}
		return fmt.Sprintf("%s:%dx%d", name, b.W, b.H)
	}
	return fmt.Sprintf("backend(%d)", b.Kind)
}

// ParseBackend parses a backend spec: "ideal" (or ""), "mesh:WxH[:block]"
// or "torus:WxH[:block]", e.g. "mesh:16x16" or "torus:32x32:4".
func ParseBackend(spec string) (Backend, error) {
	s := strings.TrimSpace(strings.ToLower(spec))
	if s == "" || s == "ideal" {
		return Backend{}, nil
	}
	name, rest, ok := strings.Cut(s, ":")
	var kind BackendKind
	switch name {
	case "mesh":
		kind = BackendMesh
	case "torus":
		kind = BackendTorus
	default:
		return Backend{}, fmt.Errorf("machine: unknown backend %q (want ideal, mesh:WxH[:block] or torus:WxH[:block])", spec)
	}
	if !ok {
		return Backend{}, fmt.Errorf("machine: backend %q: missing WxH dimensions", spec)
	}
	dims, blockStr, hasBlock := strings.Cut(rest, ":")
	wStr, hStr, ok := strings.Cut(dims, "x")
	if !ok {
		return Backend{}, fmt.Errorf("machine: backend %q: dimensions must be WxH", spec)
	}
	w, err := strconv.Atoi(wStr)
	if err != nil {
		return Backend{}, fmt.Errorf("machine: backend %q: bad width %q", spec, wStr)
	}
	h, err := strconv.Atoi(hStr)
	if err != nil {
		return Backend{}, fmt.Errorf("machine: backend %q: bad height %q", spec, hStr)
	}
	block := 1
	if hasBlock {
		block, err = strconv.Atoi(blockStr)
		if err != nil || block < 1 {
			return Backend{}, fmt.Errorf("machine: backend %q: bad fold block %q", spec, blockStr)
		}
	}
	b := Backend{Kind: kind, W: w, H: h, Block: block}
	if err := b.validate(); err != nil {
		return Backend{}, err
	}
	return b, nil
}

// foldAxis maps a virtual axis coordinate onto its physical home on an axis
// of size physical PEs with the given fold block: the pane of size·block
// virtual cells repeats periodically (Euclidean modulo, so negative scratch
// coordinates wrap onto the pane too), and block consecutive cells inside a
// pane share one physical PE.
func foldAxis(v, size, block int) int {
	span := size * block
	u := v % span
	if u < 0 {
		u += span
	}
	return u / block
}

// Fold returns the physical home of virtual PE c (c itself under Ideal).
func (b Backend) Fold(c Coord) Coord {
	if b.Kind == BackendIdeal {
		return c
	}
	block := b.Block
	if block < 1 {
		block = 1
	}
	return Coord{Row: foldAxis(c.Row, b.H, block), Col: foldAxis(c.Col, b.W, block)}
}

// axisDist is the per-axis physical distance between two folded
// coordinates: |Δ| on a mesh, the shorter way around the ring on a torus.
func (b Backend) axisDist(p1, p2, size int) int64 {
	d := absInt64(p1 - p2)
	if b.Kind == BackendTorus {
		if wrap := int64(size) - d; wrap < d {
			d = wrap
		}
	}
	return d
}

// Dist returns the cost of one message from a to c under this backend: the
// Manhattan distance of the virtual coordinates under Ideal, the (mesh or
// torus) distance between the physical homes otherwise.
func (b Backend) Dist(a, c Coord) int64 {
	if b.Kind == BackendIdeal {
		return Dist(a, c)
	}
	block := b.Block
	if block < 1 {
		block = 1
	}
	return b.axisDist(foldAxis(a.Row, b.H, block), foldAxis(c.Row, b.H, block), b.H) +
		b.axisDist(foldAxis(a.Col, b.W, block), foldAxis(c.Col, b.W, block), b.W)
}

// physIndex is the dense row-major index of c's physical home on the
// fabric. Only meaningful for finite backends.
func (b Backend) physIndex(c Coord) int {
	p := b.Fold(c)
	return p.Row*b.W + p.Col
}
