package machine

import (
	"testing"
	"testing/quick"
)

func TestParseBackend(t *testing.T) {
	cases := []struct {
		spec string
		want Backend
	}{
		{"ideal", Backend{}},
		{"", Backend{}},
		{"  Ideal ", Backend{}},
		{"mesh:16x16", Mesh(16, 16, 1)},
		{"mesh:8x4", Mesh(8, 4, 1)},
		{"torus:32x32:4", Torus(32, 32, 4)},
		{"MESH:16x16:2", Mesh(16, 16, 2)},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.spec)
		if err != nil {
			t.Errorf("ParseBackend(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBackend(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		// String must round-trip through ParseBackend.
		back, err := ParseBackend(got.String())
		if err != nil || back != got {
			t.Errorf("round-trip %q -> %v -> %v (%v)", c.spec, got, back, err)
		}
	}
	for _, bad := range []string{"mesh", "mesh:16", "mesh:0x4", "mesh:4x-1", "torus:axb", "ring:8x8", "mesh:16x16:0", "mesh:16x16:x", "mesh:99999x99999",
		// Overflow probes: W*H and W·Block/H·Block must be checked without
		// computing a product that can wrap (these crashed the daemon once).
		"mesh:3037000500x3037000500", "torus:3037000500x3037000500",
		"mesh:4x4:4611686018427387904", "torus:4x4:4611686018427387904",
		"mesh:4x4:1073741824"} {
		if b, err := ParseBackend(bad); err == nil {
			t.Errorf("ParseBackend(%q) = %v, want error", bad, b)
		}
	}
}

// TestBackendOverflowRejected pins the two overflow regressions: adversarial
// W×H whose product wraps negative, and a fold block large enough that
// foldAxis's size*block span wraps to zero (integer divide by zero on the
// first message). Both must be rejected by validate — never reach SetBackend
// or Fold.
func TestBackendOverflowRejected(t *testing.T) {
	huge := []Backend{
		Mesh(3037000500, 3037000500, 1),
		Torus(3037000500, 3037000500, 1),
		Mesh(4, 4, 4611686018427387904),
		Torus(4, 4, 4611686018427387904),
		Mesh(4, 4, maxFoldSpan/4+1),
	}
	for _, b := range huge {
		if err := b.validate(); err == nil {
			t.Errorf("validate(%+v) = nil, want overflow error", b)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetBackend(%+v) did not panic", b)
				}
			}()
			New().SetBackend(b)
		}()
	}
	// The largest admissible block still folds and routes without wrapping.
	b := Mesh(4, 4, maxFoldSpan/4)
	if err := b.validate(); err != nil {
		t.Fatalf("validate at pane-span cap: %v", err)
	}
	if got := b.Fold(Coord{Row: maxFoldSpan - 1, Col: 0}); got != (Coord{Row: 3, Col: 0}) {
		t.Errorf("Fold at pane edge = %v, want {3 0}", got)
	}
	if d := b.Dist(Coord{}, Coord{Row: maxFoldSpan - 1, Col: 0}); d != 3 {
		t.Errorf("Dist across pane = %d, want 3", d)
	}
}

func TestBackendFold(t *testing.T) {
	b := Mesh(4, 4, 2) // pane is 8x8 virtual cells
	cases := []struct {
		v    Coord
		want Coord
	}{
		{Coord{0, 0}, Coord{0, 0}},
		{Coord{1, 1}, Coord{0, 0}},
		{Coord{2, 3}, Coord{1, 1}},
		{Coord{7, 7}, Coord{3, 3}},
		{Coord{8, 8}, Coord{0, 0}},   // next pane wraps
		{Coord{-1, -1}, Coord{3, 3}}, // negative coords wrap onto the pane
		{Coord{-8, 15}, Coord{0, 3}},
	}
	for _, c := range cases {
		if got := b.Fold(c.v); got != c.want {
			t.Errorf("Fold(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if got := Ideal().Fold(Coord{-5, 9}); got != (Coord{-5, 9}) {
		t.Errorf("Ideal fold moved %v", got)
	}
}

func TestBackendDistProperties(t *testing.T) {
	mesh := Mesh(8, 8, 2)
	torus := Torus(8, 8, 2)
	f := func(ar, ac, br, bc int16) bool {
		a := Coord{int(ar), int(ac)}
		b := Coord{int(br), int(bc)}
		dm := mesh.Dist(a, b)
		dt := torus.Dist(a, b)
		// Symmetric, non-negative, torus never longer than mesh, both
		// bounded by the fabric diameter.
		return dm == mesh.Dist(b, a) && dt == torus.Dist(b, a) &&
			dm >= 0 && dt >= 0 && dt <= dm && dm <= 14 && dt <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBackendDistContractionInPane(t *testing.T) {
	// Inside one pane the folded mesh distance never exceeds the ideal
	// distance, and the ideal distance is bounded by
	// block·(mesh distance + 2) per the fold-inflation bound.
	b := Mesh(8, 8, 4) // pane 32x32
	f := func(ar, ac, br, bc uint8) bool {
		a := Coord{int(ar) % 32, int(ac) % 32}
		c := Coord{int(br) % 32, int(bc) % 32}
		dm := b.Dist(a, c)
		di := Dist(a, c)
		return dm <= di && di <= int64(b.Block)*(dm+2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBackendTorusWrap(t *testing.T) {
	b := Torus(8, 8, 1)
	if d := b.Dist(Coord{0, 0}, Coord{0, 7}); d != 1 {
		t.Errorf("torus wrap col dist = %d, want 1", d)
	}
	if d := b.Dist(Coord{7, 0}, Coord{0, 0}); d != 1 {
		t.Errorf("torus wrap row dist = %d, want 1", d)
	}
	m := Mesh(8, 8, 1)
	if d := m.Dist(Coord{0, 0}, Coord{0, 7}); d != 7 {
		t.Errorf("mesh edge dist = %d, want 7", d)
	}
}

// TestBackendAnswersInvariant pins the core contract: backends change
// costs, never results. The same message pattern delivers the same
// registers under every backend; energy contracts on the folded fabrics.
func TestBackendAnswersInvariant(t *testing.T) {
	run := func(b Backend) (vals [4]Value, m Metrics) {
		mach := New()
		mach.SetBackend(b)
		for i := 0; i < 4; i++ {
			mach.Set(Coord{0, i * 5}, "v", i)
		}
		mach.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
			for i := 0; i < 4; i++ {
				send(Coord{0, i * 5}, Coord{3, 15 - i*5}, "v", i*10)
			}
		})
		for i := 0; i < 4; i++ {
			vals[i] = mach.Get(Coord{3, 15 - i*5}, "v")
		}
		return vals, mach.Metrics()
	}
	idealVals, idealM := run(Ideal())
	for _, b := range []Backend{Mesh(4, 4, 2), Torus(4, 4, 2), Mesh(32, 32, 1)} {
		vals, m := run(b)
		if vals != idealVals {
			t.Errorf("%v: values %v differ from ideal %v", b, vals, idealVals)
		}
		if m.Messages != idealM.Messages || m.Depth != idealM.Depth {
			t.Errorf("%v: messages/depth %v differ from ideal %v", b, m, idealM)
		}
		if m.Energy > idealM.Energy {
			t.Errorf("%v: folded energy %d exceeds ideal %d", b, m.Energy, idealM.Energy)
		}
	}
}

// TestBackendPhysicalMemory: folding a row of occupied virtual PEs onto one
// physical PE multiplies the reported peak by the number of co-residents.
func TestBackendPhysicalMemory(t *testing.T) {
	m := New()
	m.SetBackend(Mesh(2, 2, 2)) // each physical PE hosts a 2x2 virtual block per pane
	// Four virtual PEs of one 2x2 block, one register each: all share the
	// physical home (0,0).
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			m.Set(Coord{r, c}, "v", 1)
		}
	}
	if got := m.Metrics().PeakMemory; got != 4 {
		t.Errorf("folded PeakMemory = %d, want 4 (fold factor squared)", got)
	}
	// Freeing shrinks occupancy but not the recorded peak.
	m.Del(Coord{0, 0}, "v")
	m.Del(Coord{0, 1}, "v")
	if got := m.Metrics().PeakMemory; got != 4 {
		t.Errorf("PeakMemory after frees = %d, want peak 4", got)
	}
	// Under Ideal the same placement peaks at 1 register per PE.
	m2 := New()
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			m2.Set(Coord{r, c}, "v", 1)
		}
	}
	if got := m2.Metrics().PeakMemory; got != 1 {
		t.Errorf("ideal PeakMemory = %d, want 1", got)
	}
}

// TestBackendSetMidRunRebuildsOccupancy: SetBackend on a machine with live
// registers rebuilds the physical counts from current state.
func TestBackendSetMidRunRebuildsOccupancy(t *testing.T) {
	m := New()
	for i := 0; i < 4; i++ {
		m.Set(Coord{0, i}, "v", i)
	}
	m.SetBackend(Mesh(2, 2, 2)) // cols 0..3 fold onto physical cols 0,0,1,1 row 0
	if got := m.Metrics().PeakMemory; got != 2 {
		t.Errorf("rebuilt PeakMemory = %d, want 2", got)
	}
	m.SetBackend(Ideal())
	if got := m.Metrics().PeakMemory; got != 1 {
		t.Errorf("PeakMemory back on ideal = %d, want 1", got)
	}
}

// TestBackendSurvivesReset: the backend setting survives Reset (like
// shards/batch), while occupancy counts and peaks clear.
func TestBackendSurvivesReset(t *testing.T) {
	m := New()
	m.SetBackend(Torus(4, 4, 2))
	m.Set(Coord{0, 0}, "v", 1)
	m.Set(Coord{1, 1}, "v", 1)
	if got := m.Metrics().PeakMemory; got != 2 {
		t.Fatalf("pre-reset PeakMemory = %d, want 2", got)
	}
	m.Reset()
	if m.Backend() != Torus(4, 4, 2) {
		t.Errorf("backend did not survive Reset: %v", m.Backend())
	}
	if got := m.Metrics().PeakMemory; got != 0 {
		t.Errorf("post-reset PeakMemory = %d, want 0", got)
	}
	if d := m.dist(Coord{0, 0}, Coord{0, 7}); d != 1 {
		t.Errorf("post-reset torus dist = %d, want 1", d)
	}
}

// TestBackendCongestionConsistency: under every backend, the sum of link
// traversals equals the energy — each message bumps exactly its backend
// distance in (physical) links — and folding the same traffic onto a
// smaller fabric cannot reduce the peak link load.
func TestBackendCongestionConsistency(t *testing.T) {
	run := func(b Backend) (peak, total, energy int64) {
		m := New()
		m.SetBackend(b)
		m.EnableCongestionTracking()
		m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
			for i := 0; i < 8; i++ {
				send(Coord{i, 0}, Coord{i, 12}, "v", i)
				send(Coord{0, i}, Coord{12, i}, "v", i)
			}
		})
		return m.MaxCongestion(), m.TotalLinkTraversals(), m.Metrics().Energy
	}
	var idealPeak int64
	for _, b := range []Backend{Ideal(), Mesh(16, 16, 1), Mesh(4, 4, 4), Torus(4, 4, 4)} {
		peak, total, energy := run(b)
		if total != energy {
			t.Errorf("%v: link traversals %d != energy %d", b, total, energy)
		}
		if b.Kind == BackendIdeal {
			idealPeak = peak
			continue
		}
		if b.FoldFactor() > 1 && peak < idealPeak {
			t.Errorf("%v: folded peak link load %d below ideal %d", b, peak, idealPeak)
		}
	}
}

// TestBackendShardedCountingIdentical: counting-only rounds may still run
// shard-parallel under a finite backend, and stay byte-identical to the
// sequential engine.
func TestBackendShardedCountingIdentical(t *testing.T) {
	run := func(shards int) Metrics {
		m := New()
		m.SetBackend(Mesh(8, 8, 2))
		m.SetShards(shards)
		m.shardMin = 1 // force the sharded path even for small rounds
		m.SetBatchSends(true)
		for round := 0; round < 3; round++ {
			b := m.Round()
			for i := 0; i < 64; i++ {
				b.Count(Coord{i % 16, i / 4}, Coord{(i * 7) % 16, (i * 3) % 16})
			}
			b.Flush()
		}
		return m.Metrics()
	}
	seq := run(1)
	for _, k := range []int{2, 4, 8} {
		if got := run(k); got != seq {
			t.Errorf("shards=%d metrics %v != sequential %v", k, got, seq)
		}
	}
}

// TestBackendRegisterRoundsForcedSequential: a register-delivering round
// under a finite backend takes the sequential path even with sharding
// enabled, keeping the physical memory peak exact.
func TestBackendRegisterRoundsForcedSequential(t *testing.T) {
	run := func(shards int) Metrics {
		m := New()
		m.SetBackend(Mesh(2, 2, 4))
		m.SetShards(shards)
		m.shardMin = 1
		m.SendBatch(func(b *Batch) {
			for i := 0; i < 64; i++ {
				b.Send(Coord{8, 8}, Coord{i / 8, i % 8}, "v", i)
			}
		})
		return m.Metrics()
	}
	seq := run(1)
	for _, k := range []int{2, 8} {
		if got := run(k); got != seq {
			t.Errorf("shards=%d metrics %v != sequential %v", k, got, seq)
		}
	}
	// All 64 destinations fold onto the 2x2 fabric: 16 co-residents each.
	if seq.PeakMemory != 16 {
		t.Errorf("folded PeakMemory = %d, want 16", seq.PeakMemory)
	}
}

// TestShardedFoldedMatchesSequential extends the byte-identical sharding
// contract to finite backends: the same workload folded onto a mesh or
// torus must yield identical metrics, clocks and registers for any shard
// count. Folding charges costs in the sequential charge pass, so shard
// parallelism must never observe it; run with -race this also covers the
// occupancy counters the fold maintains per physical PE.
func TestShardedFoldedMatchesSequential(t *testing.T) {
	for _, bk := range []Backend{Mesh(6, 5, 3), Torus(6, 5, 3)} {
		base := New()
		base.SetBackend(bk)
		batchWorkload(base, 42)
		want := snapshotState(base)

		ideal := New()
		batchWorkload(ideal, 42)
		if base.Metrics().Energy == ideal.Metrics().Energy {
			t.Fatalf("%s: folded energy equals ideal; fold not engaged by the workload", bk)
		}

		for _, k := range []int{2, 4, 7} {
			m := New()
			m.SetBackend(bk)
			m.SetShards(k)
			m.shardMin = 1
			batchWorkload(m, 42)
			if got := snapshotState(m); got != want {
				t.Fatalf("%s shards=%d diverged from sequential folded engine:\n got %.300s\nwant %.300s", bk, k, got, want)
			}
		}
	}
}
