package machine

import "sync"

// Shard-parallel round execution.
//
// The model makes every message of a parallel round causally independent: a
// send reads its sender's clock as of the start of the round and never
// advances it, so charging the messages of one round commutes, and the only
// cross-message interaction is at the receivers — clock merges (max), the
// energy/message sums, the depth/distance maxima, and register overwrites in
// issue order. All of those are either associative-commutative reductions or
// are confined to a single destination PE. Sharding exploits exactly that
// structure:
//
//   - a sequential grouping pass resolves every sender and receiver PE (the
//     only step that mutates the tile map, the tile cache and the touched-PE
//     accounting) and buckets messages by destination tile;
//   - the charge pass splits the round into contiguous chunks, each chunk
//     accumulating energy/messages/max-depth/max-distance into shard-local
//     counters merged deterministically at the barrier;
//   - the delivery pass runs one goroutine per shard; all deliveries to a
//     given tile land in the same shard, so clock merges, register writes and
//     the per-tile touch counters stay single-writer, while per-shard peak
//     memory, Independent journals and memory-limit violations are merged
//     after the join.
//
// Because integer sums and maxima are exact and per-PE delivery order is
// preserved inside a shard, the resulting counters, clocks and registers are
// byte-identical to the sequential engine for every shard count. When a
// trace sink or congestion tracking is attached the charge pass stays
// sequential (events must stream in issue order with cumulative counters;
// link loads share one map), and only delivery is parallelized.

// defaultShardMin is the smallest round (in messages) worth forking for.
// Below it, the fork/join overhead of a handful of goroutines exceeds the
// round's sequential cost.
const defaultShardMin = 2048

// SetShards sets the number of shards rounds are partitioned into. k <= 1
// restores sequential execution. The setting survives Reset, so pooled
// machines keep their shard count across sweep points. Sharding changes no
// observable output — counters, clocks, registers and trace streams are
// byte-identical for every k — only wall-clock time.
func (m *Machine) SetShards(k int) {
	if k < 1 {
		k = 1
	}
	m.shards = k
}

// Shards returns the configured shard count (at least 1).
func (m *Machine) Shards() int {
	if m.shards < 1 {
		return 1
	}
	return m.shards
}

// shardTouch is a shard-local deferred noteTouch: the receiver PE with the
// clock it had before this round's first merge, plus the Independent
// generation that had last journaled it. After the join the entry is
// distributed into the journals of every active branch newer than seen.
type shardTouch struct {
	c    Coord
	p    *pe
	pre  clock
	seen uint64
}

// chargeAccum is one charge chunk's shard-local counters.
type chargeAccum struct {
	energy   int64
	messages int64
	maxDepth int64
	maxDist  int64
}

// shardViolation records the earliest memory-limit violation seen by one
// delivery shard (idx is the message's issue index, for picking the globally
// first violation deterministically).
type shardViolation struct {
	idx int32
	err MemoryLimitError
}

// shardScratch holds the reusable buffers of the sharded executor.
type shardScratch struct {
	srcs, dsts []*pe
	buckets    [][]int32
	charges    []chargeAccum
	journals   [][]shardTouch
	peaks      []int
	viols      []shardViolation
}

func (s *shardScratch) size(n, k int) {
	if cap(s.srcs) < n {
		s.srcs = make([]*pe, n)
		s.dsts = make([]*pe, n)
	}
	s.srcs = s.srcs[:n]
	s.dsts = s.dsts[:n]
	for len(s.buckets) < k {
		s.buckets = append(s.buckets, nil)
	}
	for i := 0; i < k; i++ {
		s.buckets[i] = s.buckets[i][:0]
	}
	if cap(s.charges) < k {
		s.charges = make([]chargeAccum, k)
		s.journals = make([][]shardTouch, k)
		s.peaks = make([]int, k)
		s.viols = make([]shardViolation, k)
	}
	s.charges = s.charges[:k]
	s.journals = s.journals[:k]
	s.peaks = s.peaks[:k]
	s.viols = s.viols[:k]
}

// shardOf maps a destination tile to a shard with a splitmix-style hash so
// that row-, column- and block-shaped traffic all spread across shards.
func shardOf(k Coord, n int) int {
	x := uint64(int64(k.Row))*0x9E3779B97F4A7C15 + uint64(int64(k.Col))*0xC2B2AE3D27D4EB4F
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 29
	return int(x % uint64(n))
}

// processSharded executes one recorded round across m.shards shards. See the
// package comment above for the phase structure and the commutation argument.
func (m *Machine) processSharded(msgs []bmsg) {
	k := m.shards
	s := &m.sh
	s.size(len(msgs), k)

	// Grouping pass: resolve PEs (single-threaded — this is the only phase
	// that may create tiles, move the tile cache or flip touched bits) and
	// bucket deliveries by destination tile.
	for i := range msgs {
		g := &msgs[i]
		if g.from != g.to {
			s.srcs[i] = m.peAt(g.from)
		} else {
			s.srcs[i] = nil
		}
		s.dsts[i] = m.peAt(g.to)
		b := shardOf(tileKey(g.to), k)
		s.buckets[b] = append(s.buckets[b], int32(i))
	}

	// Charge pass. No clock mutates until delivery, so sender clocks read
	// here are start-of-round values regardless of chunk interleaving.
	if m.sink != nil || m.cong != nil {
		// Events must stream in issue order with exact cumulative counters,
		// and congestion shares one link-load map: charge sequentially.
		m.chargeResolved(msgs)
	} else {
		var wg sync.WaitGroup
		chunk := (len(msgs) + k - 1) / k
		for w := 0; w < k; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(msgs))
			if lo >= hi {
				s.charges[w] = chargeAccum{}
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				s.charges[w] = chargeChunk(msgs[lo:hi], s.srcs[lo:hi], m.bk)
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < k; w++ {
			a := &s.charges[w]
			m.energy += a.energy
			m.messages += a.messages
			if a.maxDepth > m.maxDepth {
				m.maxDepth = a.maxDepth
			}
			if a.maxDist > m.maxDist {
				m.maxDist = a.maxDist
			}
		}
	}

	// Delivery pass: one goroutine per shard; every delivery to a given tile
	// is in exactly one shard, in issue order.
	var top uint64
	if n := len(m.indepGens); n > 0 {
		top = m.indepGens[n-1]
	}
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		if len(s.buckets[w]) == 0 {
			s.peaks[w] = 0
			s.journals[w] = s.journals[w][:0]
			s.viols[w] = shardViolation{idx: -1}
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m.deliverShard(msgs, s.buckets[w], top, w)
		}(w)
	}
	wg.Wait()

	// Join: merge shard-local peaks, distribute deferred touches into the
	// active Independent journals, and surface the earliest memory-limit
	// violation (same message the sequential engine would have panicked on).
	for w := 0; w < k; w++ {
		if s.peaks[w] > m.peakMem {
			m.peakMem = s.peaks[w]
		}
	}
	if top != 0 {
		for w := 0; w < k; w++ {
			for _, e := range s.journals[w] {
				for i := len(m.indepGens) - 1; i >= 0 && m.indepGens[i] > e.seen; i-- {
					m.indepLogs[i] = append(m.indepLogs[i], indepEntry{c: e.c, p: e.p, pre: e.pre})
				}
			}
			s.journals[w] = s.journals[w][:0]
		}
	}
	if m.memLimit > 0 {
		first := shardViolation{idx: -1}
		for w := 0; w < k; w++ {
			if v := s.viols[w]; v.idx >= 0 && (first.idx < 0 || v.idx < first.idx) {
				first = v
			}
		}
		if first.idx >= 0 {
			panic(first.err)
		}
	}
}

// chargeResolved is chargeRound over pre-resolved sender PEs: the sequential
// charge pass of a sharded round when a sink or congestion tracking forces
// in-order event emission.
func (m *Machine) chargeResolved(msgs []bmsg) {
	for i := range msgs {
		g := &msgs[i]
		src := m.sh.srcs[i]
		if src == nil { // self-send: free local computation
			g.depth, g.dist = 0, 0
			continue
		}
		d := m.dist(g.from, g.to)
		m.energy += d
		m.messages++
		if m.cong != nil {
			m.cong.route(m.bk, g.from, g.to)
		}
		g.depth = src.clk.depth + 1
		g.dist = src.clk.dist + d
		if g.depth > m.maxDepth {
			m.maxDepth = g.depth
		}
		if g.dist > m.maxDist {
			m.maxDist = g.dist
		}
		if m.sink != nil {
			m.emit(g.from, g.to, d, g.v, g.depth, g.dist)
		}
	}
}

// chargeChunk charges one contiguous chunk of the round into local counters.
// It only reads sender clocks (and the immutable backend value) and writes
// the chunk's own messages, so chunks are data-race free by construction.
func chargeChunk(msgs []bmsg, srcs []*pe, bk Backend) chargeAccum {
	var a chargeAccum
	for i := range msgs {
		g := &msgs[i]
		src := srcs[i]
		if src == nil {
			g.depth, g.dist = 0, 0
			continue
		}
		d := bk.Dist(g.from, g.to)
		a.energy += d
		a.messages++
		g.depth = src.clk.depth + 1
		g.dist = src.clk.dist + d
		if g.depth > a.maxDepth {
			a.maxDepth = g.depth
		}
		if g.dist > a.maxDist {
			a.maxDist = g.dist
		}
	}
	return a
}

// deliverShard applies one shard's deliveries in issue order: clock merges,
// register writes, per-PE and shard-local memory peaks, and deferred
// Independent journaling. All receiver PEs of the shard live in tiles owned
// exclusively by this shard for the duration of the round.
func (m *Machine) deliverShard(msgs []bmsg, idxs []int32, top uint64, w int) {
	s := &m.sh
	journal := s.journals[w][:0]
	peak := 0
	viol := shardViolation{idx: -1}
	for _, i := range idxs {
		g := &msgs[i]
		p := s.dsts[i]
		if top != 0 && p.indepSeen < top {
			journal = append(journal, shardTouch{c: g.to, p: p, pre: p.clk, seen: p.indepSeen})
			p.indepSeen = top
		}
		p.clk.merge(g.depth, g.dist)
		if g.dst != countReg {
			// No physGrow here: rounds that deliver registers under a
			// finite backend never reach the sharded path (see shardSafe).
			p.set(g.dst, g.v)
			n := len(p.regs)
			if n > p.peakReg {
				p.peakReg = n
			}
			if n > peak {
				peak = n
			}
			if m.memLimit > 0 && n > m.memLimit && viol.idx < 0 {
				viol = shardViolation{idx: i, err: MemoryLimitError{PE: g.to, Registers: n, Limit: m.memLimit}}
			}
		}
	}
	s.journals[w] = journal
	s.peaks[w] = peak
	s.viols[w] = viol
}
