package machine

// Congestion tracking. The model's energy metric is the *total* load on
// the communication network; for architects the complementary quantity is
// the *maximum* load on any single mesh link. This opt-in tracker routes
// every message along the dimension-ordered (X-then-Y) path a mesh NoC
// would use and counts traversals per directed link. It is an extension
// beyond the paper's metrics, used by the congestion experiment and the
// visualization tool; tracking costs O(distance) bookkeeping per message,
// so it is off by default.

// linkDir identifies the four mesh directions.
type linkDir uint8

const (
	linkEast linkDir = iota
	linkWest
	linkSouth
	linkNorth
)

type link struct {
	from Coord
	dir  linkDir
}

// congestion holds per-link traversal counts.
type congestion struct {
	load map[link]int64
	peak int64
}

// EnableCongestionTracking starts counting per-link traffic under
// dimension-ordered (column-first, then row) routing. Call before running
// the algorithm of interest.
func (m *Machine) EnableCongestionTracking() {
	m.cong = &congestion{load: make(map[link]int64)}
}

// MaxCongestion returns the highest traversal count over all directed mesh
// links, or 0 if tracking is disabled.
func (m *Machine) MaxCongestion() int64 {
	if m.cong == nil {
		return 0
	}
	return m.cong.peak
}

// TotalLinkTraversals returns the sum of link traversals — with XY routing
// this equals the energy, which tests use as a consistency check.
func (m *Machine) TotalLinkTraversals() int64 {
	if m.cong == nil {
		return 0
	}
	var total int64
	for _, v := range m.cong.load {
		total += v
	}
	return total
}

// routeMessage walks the X-then-Y path from a to b, bumping link loads.
func (c *congestion) routeMessage(a, b Coord) {
	cur := a
	step := func(d linkDir, dr, dc int) {
		l := link{from: cur, dir: d}
		c.load[l]++
		if c.load[l] > c.peak {
			c.peak = c.load[l]
		}
		cur = cur.Add(dr, dc)
	}
	for cur.Col < b.Col {
		step(linkEast, 0, 1)
	}
	for cur.Col > b.Col {
		step(linkWest, 0, -1)
	}
	for cur.Row < b.Row {
		step(linkSouth, 1, 0)
	}
	for cur.Row > b.Row {
		step(linkNorth, -1, 0)
	}
}
