package machine

// Congestion tracking. The model's energy metric is the *total* load on
// the communication network; for architects the complementary quantity is
// the *maximum* load on any single mesh link. This opt-in tracker routes
// every message along the dimension-ordered (X-then-Y) path a mesh NoC
// would use and counts traversals per directed link. It is an extension
// beyond the paper's metrics, used by the congestion experiment and the
// visualization tool; tracking costs O(distance) bookkeeping per message,
// so it is off by default.
//
// Link loads use the same 16x16 tiling as the PE grid: each tile holds a
// dense array of the four outgoing directed links of its 256 PEs, and a
// one-entry tile cache exploits the hop-by-hop locality of XY walks, so
// the per-hop cost is an index computation rather than a map probe on a
// (coordinate, direction) key.

// linkDir identifies the four mesh directions.
type linkDir uint8

const (
	linkEast linkDir = iota
	linkWest
	linkSouth
	linkNorth
)

// congTile holds the traversal counts of the 4 outgoing directed links of
// each PE in one 16x16 tile.
type congTile struct {
	load [tileSide * tileSide * 4]int64
}

// congestion holds per-link traversal counts.
type congestion struct {
	tiles   map[Coord]*congTile
	lastKey Coord
	last    *congTile
	peak    int64
}

// EnableCongestionTracking starts counting per-link traffic under
// dimension-ordered (column-first, then row) routing. Call before running
// the algorithm of interest.
func (m *Machine) EnableCongestionTracking() {
	m.cong = &congestion{tiles: make(map[Coord]*congTile)}
}

// DisableCongestionTracking stops per-link accounting and discards the
// recorded loads. Machine pools use it to hand a machine leased for a
// congestion sweep back to ordinary (tracking-free) service.
func (m *Machine) DisableCongestionTracking() { m.cong = nil }

// MaxCongestion returns the highest traversal count over all directed mesh
// links, or 0 if tracking is disabled.
func (m *Machine) MaxCongestion() int64 {
	if m.cong == nil {
		return 0
	}
	return m.cong.peak
}

// TotalLinkTraversals returns the sum of link traversals — with XY routing
// this equals the energy, which tests use as a consistency check.
func (m *Machine) TotalLinkTraversals() int64 {
	if m.cong == nil {
		return 0
	}
	var total int64
	for _, t := range m.cong.tiles {
		for _, v := range t.load {
			total += v
		}
	}
	return total
}

// reset clears all link loads while keeping tracking enabled. Tiles are
// zeroed in place so a Reset machine reuses their allocations.
func (c *congestion) reset() {
	for _, t := range c.tiles {
		t.load = [tileSide * tileSide * 4]int64{}
	}
	c.peak = 0
}

// bump increments the load of the directed link leaving at in direction d.
func (c *congestion) bump(at Coord, d linkDir) {
	k := tileKey(at)
	t := c.last
	if t == nil || c.lastKey != k {
		var ok bool
		t, ok = c.tiles[k]
		if !ok {
			t = &congTile{}
			c.tiles[k] = t
		}
		c.lastKey, c.last = k, t
	}
	i := tileIndex(at)<<2 | int(d)
	t.load[i]++
	if t.load[i] > c.peak {
		c.peak = t.load[i]
	}
}

// route walks one message under the given backend: the virtual XY path
// under Ideal, the XY path between the physical homes on a mesh, and the
// wrap-aware shortest XY path on a torus. Under a finite backend the
// recorded link loads are therefore loads on *physical* fabric links, with
// coordinates in [0,H)×[0,W) — exactly what the heatmap of a real fabric
// shows — and TotalLinkTraversals still equals the energy, because every
// message bumps exactly its backend distance in links.
func (c *congestion) route(b Backend, from, to Coord) {
	switch b.Kind {
	case BackendIdeal:
		c.routeMessage(from, to)
	case BackendMesh:
		c.routeMessage(b.Fold(from), b.Fold(to))
	case BackendTorus:
		c.routeTorus(b.Fold(from), b.Fold(to), b.W, b.H)
	}
}

// routeTorus walks the X-then-Y path on a W×H torus, taking the shorter
// way around each ring (east/south on a tie) and wrapping coordinates at
// the fabric edges.
func (c *congestion) routeTorus(a, b Coord, w, h int) {
	cur := a
	east := (b.Col - cur.Col) % w
	if east < 0 {
		east += w
	}
	if east <= w-east {
		for i := 0; i < east; i++ {
			c.bump(cur, linkEast)
			cur.Col = (cur.Col + 1) % w
		}
	} else {
		for i := 0; i < w-east; i++ {
			c.bump(cur, linkWest)
			cur.Col = (cur.Col - 1 + w) % w
		}
	}
	south := (b.Row - cur.Row) % h
	if south < 0 {
		south += h
	}
	if south <= h-south {
		for i := 0; i < south; i++ {
			c.bump(cur, linkSouth)
			cur.Row = (cur.Row + 1) % h
		}
	} else {
		for i := 0; i < h-south; i++ {
			c.bump(cur, linkNorth)
			cur.Row = (cur.Row - 1 + h) % h
		}
	}
}

// routeMessage walks the X-then-Y path from a to b, bumping link loads.
func (c *congestion) routeMessage(a, b Coord) {
	cur := a
	for cur.Col < b.Col {
		c.bump(cur, linkEast)
		cur.Col++
	}
	for cur.Col > b.Col {
		c.bump(cur, linkWest)
		cur.Col--
	}
	for cur.Row < b.Row {
		c.bump(cur, linkSouth)
		cur.Row++
	}
	for cur.Row > b.Row {
		c.bump(cur, linkNorth)
		cur.Row--
	}
}
