// Package machine implements the Spatial Computer Model as a cost-exact
// simulator.
//
// The model (Section III of the paper): an unbounded 2-D grid of processing
// elements (PEs), each with O(1) words of local memory. A message from
// p_{i,j} to p_{x,y} has distance |x-i| + |y-j| (Manhattan). The cost of a
// computation is measured by three metrics:
//
//   - Energy: the sum of the distances of all messages sent. It measures the
//     total load on the on-chip network.
//   - Depth: the longest chain of consecutively dependent messages. Low
//     depth means high parallelism.
//   - Distance: the largest total distance along any chain of dependent
//     messages. It measures the wire latency of the computation.
//
// Algorithms are expressed as sequences of Send operations. The machine
// maintains per-PE causality clocks tracking, for every PE, the longest
// dependent-message chain that ends there (independently by hop count and by
// summed distance). A message's chain extends the sender's clock; delivery
// merges it into the receiver's clock. Sends do not advance the sender's
// clock, so a PE can emit many mutually independent messages, matching the
// model's definition of dependent-message chains. Local computation is free:
// the model counts messages only.
package machine

import (
	"fmt"
	"sort"
)

// Coord identifies the processing element p_{Row,Col} on the grid. The grid
// is unbounded in all four directions; negative coordinates are valid.
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("p(%d,%d)", c.Row, c.Col) }

// Add returns the coordinate offset by (dr, dc).
func (c Coord) Add(dr, dc int) Coord { return Coord{c.Row + dr, c.Col + dc} }

// Dist returns the Manhattan distance between two coordinates, which is the
// model's cost of sending one message between them.
func Dist(a, b Coord) int64 {
	return absInt64(a.Row-b.Row) + absInt64(a.Col-b.Col)
}

func absInt64(x int) int64 {
	if x < 0 {
		return int64(-x)
	}
	return int64(x)
}

// Value is the payload of a message or register. Payloads must be
// word-sized: a scalar or a constant-size tuple (the model's messages carry
// O(1) words).
type Value = any

// Reg names a register in a PE's O(1)-sized register file.
type Reg = string

// clock is the causality clock of a PE: the longest dependent-message chain
// ending at the PE, measured in hops (depth) and in summed Manhattan
// distance (dist). The two maxima may be achieved by different chains; both
// are exact per the model's definitions.
type clock struct {
	depth int64
	dist  int64
}

func (c *clock) merge(depth, dist int64) {
	if depth > c.depth {
		c.depth = depth
	}
	if dist > c.dist {
		c.dist = dist
	}
}

// regSlot is one named register. PEs hold O(1) registers, so the register
// file is a small slice scanned linearly — much faster than a map for the
// simulator's hot path.
type regSlot struct {
	name Reg
	v    Value
}

// pe is the state of one processing element.
type pe struct {
	regs    []regSlot
	clk     clock
	peakReg int
}

func (p *pe) lookup(name Reg) (Value, bool) {
	for i := range p.regs {
		if p.regs[i].name == name {
			return p.regs[i].v, true
		}
	}
	return nil, false
}

// set stores v, reusing an existing slot when present.
func (p *pe) set(name Reg, v Value) {
	for i := range p.regs {
		if p.regs[i].name == name {
			p.regs[i].v = v
			return
		}
	}
	p.regs = append(p.regs, regSlot{name, v})
}

func (p *pe) del(name Reg) {
	for i := range p.regs {
		if p.regs[i].name == name {
			last := len(p.regs) - 1
			p.regs[i] = p.regs[last]
			p.regs[last] = regSlot{}
			p.regs = p.regs[:last]
			return
		}
	}
}

// Metrics is a snapshot of the accumulated cost counters of a Machine.
type Metrics struct {
	// Energy is the total Manhattan distance travelled by all messages.
	Energy int64
	// Depth is the longest chain of dependent messages, in messages.
	Depth int64
	// Distance is the largest summed distance of any dependent chain.
	Distance int64
	// Messages is the total number of messages sent.
	Messages int64
	// PeakMemory is the largest number of registers simultaneously live on
	// any single PE. The model requires this to be O(1), i.e. independent
	// of the input size.
	PeakMemory int
}

// Sub returns the metrics accumulated between an earlier snapshot prev and
// this one. Depth, Distance and PeakMemory are absolute maxima and are
// returned as-is (use a fresh Machine to isolate a single computation).
func (m Metrics) Sub(prev Metrics) Metrics {
	return Metrics{
		Energy:     m.Energy - prev.Energy,
		Depth:      m.Depth,
		Distance:   m.Distance,
		Messages:   m.Messages - prev.Messages,
		PeakMemory: m.PeakMemory,
	}
}

func (m Metrics) String() string {
	return fmt.Sprintf("energy=%d depth=%d distance=%d messages=%d peakMem=%d",
		m.Energy, m.Depth, m.Distance, m.Messages, m.PeakMemory)
}

// Tracer receives a callback for every message sent, for visualization and
// debugging. It must not mutate the machine.
type Tracer func(from, to Coord, v Value)

// Machine simulates the Spatial Computer Model. The zero value is not
// usable; construct with New.
type Machine struct {
	pes map[Coord]*pe

	energy   int64
	messages int64
	maxDepth int64
	maxDist  int64
	peakMem  int

	// memLimit, when positive, bounds the number of registers per PE;
	// exceeding it panics. Algorithms in the paper assume O(1) memory per
	// PE, and tests use the limit to enforce the contract.
	memLimit int

	// indepLogs is the stack of active Independent branches. Each map
	// records, per PE touched by the branch, the clock the PE had when
	// the branch first delivered to it, so the branch's clock effects can
	// be rolled back and merged at the join.
	indepLogs []map[Coord]clock

	// cong, when non-nil, tracks per-link traffic (see congestion.go).
	cong *congestion

	tracer Tracer
}

// New returns an empty machine with unlimited per-PE memory accounting
// (peaks are still recorded).
func New() *Machine {
	return &Machine{pes: make(map[Coord]*pe)}
}

// NewWithMemoryLimit returns a machine that panics if any PE ever holds more
// than limit registers. Use it in tests to certify the O(1)-memory contract.
func NewWithMemoryLimit(limit int) *Machine {
	m := New()
	m.memLimit = limit
	return m
}

// SetTracer installs a message tracer (nil removes it).
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

func (m *Machine) at(c Coord) *pe {
	p, ok := m.pes[c]
	if !ok {
		p = &pe{regs: make([]regSlot, 0, 4)}
		m.pes[c] = p
	}
	return p
}

// Metrics returns the current cost counters.
func (m *Machine) Metrics() Metrics {
	return Metrics{
		Energy:     m.energy,
		Depth:      m.maxDepth,
		Distance:   m.maxDist,
		Messages:   m.messages,
		PeakMemory: m.peakMem,
	}
}

// ResetClocks zeroes all causality clocks and the depth/distance maxima
// while keeping register contents and energy. Use it to measure the depth of
// a later phase in isolation.
func (m *Machine) ResetClocks() {
	for _, p := range m.pes {
		p.clk = clock{}
	}
	m.maxDepth, m.maxDist = 0, 0
}

// Set stores v into register r of PE c without any communication. It models
// local computation (free in this model) or initial input placement.
func (m *Machine) Set(c Coord, r Reg, v Value) {
	p := m.at(c)
	p.set(r, v)
	m.noteMem(c, p)
}

// Get returns the value in register r of PE c. It panics if the register is
// empty: reading a value a PE never received is an algorithmic bug.
func (m *Machine) Get(c Coord, r Reg) Value {
	p, ok := m.pes[c]
	if !ok {
		panic(fmt.Sprintf("machine: read from untouched PE %v register %q", c, r))
	}
	v, ok := p.lookup(r)
	if !ok {
		panic(fmt.Sprintf("machine: read from empty register %q of %v", r, c))
	}
	return v
}

// Lookup returns the value in register r of PE c, with ok=false if empty.
func (m *Machine) Lookup(c Coord, r Reg) (Value, bool) {
	p, ok := m.pes[c]
	if !ok {
		return nil, false
	}
	v, ok := p.lookup(r)
	return v, ok
}

// Del frees register r of PE c. Algorithms free scratch registers so the
// per-PE memory peak reflects their true O(1) working set.
func (m *Machine) Del(c Coord, r Reg) {
	if p, ok := m.pes[c]; ok {
		p.del(r)
	}
}

// Has reports whether register r of PE c holds a value.
func (m *Machine) Has(c Coord, r Reg) bool {
	_, ok := m.Lookup(c, r)
	return ok
}

// Send transmits the value in register srcReg of PE from into register
// dstReg of PE to, paying Manhattan-distance energy and extending the
// dependent-message chain. A send from a PE to itself is free (it is local
// computation).
func (m *Machine) Send(from Coord, srcReg Reg, to Coord, dstReg Reg) {
	v := m.Get(from, srcReg)
	m.SendValue(from, to, dstReg, v)
}

// SendValue transmits v, a value computed locally at from, into register
// dstReg of to. The chain semantics are identical to Send.
func (m *Machine) SendValue(from, to Coord, dstReg Reg, v Value) {
	if from == to {
		m.Set(to, dstReg, v)
		return
	}
	d := Dist(from, to)
	src := m.at(from)
	msgDepth := src.clk.depth + 1
	msgDist := src.clk.dist + d

	m.energy += d
	m.messages++
	if m.cong != nil {
		m.cong.routeMessage(from, to)
	}
	if msgDepth > m.maxDepth {
		m.maxDepth = msgDepth
	}
	if msgDist > m.maxDist {
		m.maxDist = msgDist
	}

	dst := m.at(to)
	m.noteTouch(to, dst)
	dst.clk.merge(msgDepth, msgDist)
	dst.set(dstReg, v)
	m.noteMem(to, dst)

	if m.tracer != nil {
		m.tracer(from, to, v)
	}
}

// Move is Send followed by freeing the source register: the value migrates.
func (m *Machine) Move(from Coord, srcReg Reg, to Coord, dstReg Reg) {
	m.Send(from, srcReg, to, dstReg)
	if from != to || srcReg != dstReg {
		m.Del(from, srcReg)
	}
}

// Independent executes the given tasks as logically parallel branches of
// the computation: message chains inside one branch do not extend chains of
// another, even when branches relay through the same PEs. The depth and
// distance metrics measure the longest chain through the resulting DAG
// (each branch starts from the clocks at the fork; the join merges the
// branches' clock maxima), matching the paper's definition of depth as the
// longest chain of consecutively dependent messages.
//
// Algorithms use it for recursions whose siblings are data-independent —
// e.g. the four quadrant sorts of the 2-D mergesort — where a sequential
// simulation would otherwise serialize unrelated chains through shared
// scratch PEs. Energy accounting is unaffected. Branches still execute
// sequentially in program order, so they must not communicate through
// registers either.
func (m *Machine) Independent(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	merged := make(map[Coord]clock)
	for _, task := range tasks {
		log := make(map[Coord]clock)
		m.indepLogs = append(m.indepLogs, log)
		task()
		m.indepLogs = m.indepLogs[:len(m.indepLogs)-1]
		for c, pre := range log {
			p := m.pes[c]
			end := merged[c]
			end.merge(p.clk.depth, p.clk.dist)
			merged[c] = end
			p.clk = pre // roll back for the next branch
		}
	}
	for c, clk := range merged {
		p := m.at(c)
		// The rolled-back clock is what the fork point left behind; the
		// join raises it to the branch maxima. Record the touch in any
		// enclosing branch so nested forks roll back correctly.
		m.noteTouch(c, p)
		p.clk.merge(clk.depth, clk.dist)
	}
}

// noteTouch records PE p's current clock in every active Independent branch
// log that has not seen it yet. Must be called before any clock mutation.
func (m *Machine) noteTouch(c Coord, p *pe) {
	for _, log := range m.indepLogs {
		if _, ok := log[c]; !ok {
			log[c] = p.clk
		}
	}
}

// Par executes a round of logically simultaneous sends: every message
// issued through the callback extends its sender's chain as of the start of
// the round, so deliveries within the round never chain to other sends of
// the same round. Algorithms use it for parallel steps in which many PEs
// act at once (compare-exchange levels, permutation routing, PRAM steps).
// Deliveries are applied in issue order; if two messages target the same
// register, the later one wins.
func (m *Machine) Par(round func(send func(from, to Coord, dstReg Reg, v Value))) {
	type delivery struct {
		to     Coord
		dstReg Reg
		v      Value
		depth  int64
		dist   int64
	}
	var pending []delivery
	snapshot := make(map[Coord]clock)
	send := func(from, to Coord, dstReg Reg, v Value) {
		if from == to {
			pending = append(pending, delivery{to: to, dstReg: dstReg, v: v})
			return
		}
		clk, ok := snapshot[from]
		if !ok {
			clk = m.at(from).clk
			snapshot[from] = clk
		}
		d := Dist(from, to)
		m.energy += d
		m.messages++
		if m.cong != nil {
			m.cong.routeMessage(from, to)
		}
		msg := delivery{to: to, dstReg: dstReg, v: v, depth: clk.depth + 1, dist: clk.dist + d}
		if msg.depth > m.maxDepth {
			m.maxDepth = msg.depth
		}
		if msg.dist > m.maxDist {
			m.maxDist = msg.dist
		}
		pending = append(pending, msg)
		if m.tracer != nil {
			m.tracer(from, to, v)
		}
	}
	round(send)
	for _, msg := range pending {
		dst := m.at(msg.to)
		m.noteTouch(msg.to, dst)
		dst.clk.merge(msg.depth, msg.dist)
		dst.set(msg.dstReg, msg.v)
		m.noteMem(msg.to, dst)
	}
}

// Exchange swaps the contents of register r between PEs a and b using two
// messages (each PE sends its value; neither send depends on the other).
func (m *Machine) Exchange(a, b Coord, r Reg) {
	va := m.Get(a, r)
	vb := m.Get(b, r)
	m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
		send(a, b, r, va)
		send(b, a, r, vb)
	})
}

func (m *Machine) noteMem(c Coord, p *pe) {
	n := len(p.regs)
	if n > p.peakReg {
		p.peakReg = n
	}
	if n > m.peakMem {
		m.peakMem = n
	}
	if m.memLimit > 0 && n > m.memLimit {
		panic(fmt.Sprintf("machine: PE %v exceeded memory limit: %d registers > limit %d", c, n, m.memLimit))
	}
}

// Clock returns the causality clock (depth, distance) of PE c, i.e. the
// longest dependent-message chain ending there.
func (m *Machine) Clock(c Coord) (depth, dist int64) {
	p, ok := m.pes[c]
	if !ok {
		return 0, 0
	}
	return p.clk.depth, p.clk.dist
}

// TouchedPEs returns the number of PEs that have ever held a value or
// participated in a message.
func (m *Machine) TouchedPEs() int { return len(m.pes) }

// Registers returns a sorted list of the live register names of PE c,
// mainly for debugging and tests.
func (m *Machine) Registers(c Coord) []Reg {
	p, ok := m.pes[c]
	if !ok {
		return nil
	}
	names := make([]Reg, 0, len(p.regs))
	for i := range p.regs {
		names = append(names, p.regs[i].name)
	}
	sort.Strings(names)
	return names
}
