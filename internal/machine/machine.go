// Package machine implements the Spatial Computer Model as a cost-exact
// simulator.
//
// The model (Section III of the paper): an unbounded 2-D grid of processing
// elements (PEs), each with O(1) words of local memory. A message from
// p_{i,j} to p_{x,y} has distance |x-i| + |y-j| (Manhattan). The cost of a
// computation is measured by three metrics:
//
//   - Energy: the sum of the distances of all messages sent. It measures the
//     total load on the on-chip network.
//   - Depth: the longest chain of consecutively dependent messages. Low
//     depth means high parallelism.
//   - Distance: the largest total distance along any chain of dependent
//     messages. It measures the wire latency of the computation.
//
// Algorithms are expressed as sequences of Send operations. The machine
// maintains per-PE causality clocks tracking, for every PE, the longest
// dependent-message chain that ends there (independently by hop count and by
// summed distance). A message's chain extends the sender's clock; delivery
// merges it into the receiver's clock. Sends do not advance the sender's
// clock, so a PE can emit many mutually independent messages, matching the
// model's definition of dependent-message chains. Local computation is free:
// the model counts messages only.
//
// # Storage layout
//
// The grid is stored as fixed-size 16x16 tiles of contiguous PE structs in a
// map keyed by tile coordinate, with a one-entry tile cache in front of the
// map. The spatial locality of the algorithms (neighbor exchanges, subgrid
// recursions) means most consecutive accesses land in the same tile, so the
// common case is one shift/mask index computation instead of a map probe per
// PE. Register names are interned to small integer ids once per machine, so
// the per-PE register scan compares ints, not strings. Par and Independent
// reuse their round buffers across calls, making steady-state simulation
// allocation-free; Reset reuses the grid (and the per-PE register slices)
// across runs of a sweep.
package machine

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Coord identifies the processing element p_{Row,Col} on the grid. The grid
// is unbounded in all four directions; negative coordinates are valid.
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("p(%d,%d)", c.Row, c.Col) }

// Add returns the coordinate offset by (dr, dc).
func (c Coord) Add(dr, dc int) Coord { return Coord{c.Row + dr, c.Col + dc} }

// Dist returns the Manhattan distance between two coordinates, which is the
// model's cost of sending one message between them.
func Dist(a, b Coord) int64 {
	return absInt64(a.Row-b.Row) + absInt64(a.Col-b.Col)
}

func absInt64(x int) int64 {
	// Widen before negating: int64(-x) overflows for math.MinInt32 on
	// 32-bit platforms, where -int64(x) is exact. On 64-bit platforms the
	// lone unrepresentable magnitude is -math.MinInt64; saturate it to
	// MaxInt64 so the distance stays non-negative.
	w := int64(x)
	if w < 0 {
		w = -w
		if w < 0 { // math.MinInt64
			w = math.MaxInt64
		}
	}
	return w
}

// Value is the payload of a message or register. Payloads must be
// word-sized: a scalar or a constant-size tuple (the model's messages carry
// O(1) words).
type Value = any

// Reg names a register in a PE's O(1)-sized register file.
type Reg = string

// regID is an interned register name. Interning happens once per (machine,
// name) pair; the per-PE register file stores ids so the hot-path scan is an
// integer compare.
type regID int32

// clock is the causality clock of a PE: the longest dependent-message chain
// ending at the PE, measured in hops (depth) and in summed Manhattan
// distance (dist). The two maxima may be achieved by different chains; both
// are exact per the model's definitions.
type clock struct {
	depth int64
	dist  int64
}

func (c *clock) merge(depth, dist int64) {
	if depth > c.depth {
		c.depth = depth
	}
	if dist > c.dist {
		c.dist = dist
	}
}

// regSlot is one named register. PEs hold O(1) registers, so the register
// file is a small slice scanned linearly with interned-id compares.
type regSlot struct {
	id regID
	v  Value
}

// pe is the state of one processing element. PEs live by value inside
// tiles; a nil-regs, untouched pe costs nothing beyond its tile slot.
type pe struct {
	regs    []regSlot
	clk     clock
	peakReg int
	// touched marks PEs that have held a value or participated in a
	// message; tiles allocate 256 PEs at a time, so membership cannot be
	// inferred from allocation.
	touched bool
	// snapClk/snapSeen implement Par's start-of-round clock snapshot
	// without a per-round map: a snapshot is valid iff snapSeen equals the
	// machine's current round stamp.
	snapClk  clock
	snapSeen uint64
	// indepSeen is the generation of the innermost active Independent
	// branch that has journaled this PE. Branch generations increase
	// monotonically down the stack, so the branches that have NOT seen the
	// PE are exactly the suffix of the stack with generation > indepSeen.
	indepSeen uint64
}

func (p *pe) lookup(id regID) (Value, bool) {
	for i := range p.regs {
		if p.regs[i].id == id {
			return p.regs[i].v, true
		}
	}
	return nil, false
}

// set stores v, reusing an existing slot when present. It reports whether
// the register file grew (a new slot was appended), which the finite
// backends use to maintain physical-PE occupancy counts.
func (p *pe) set(id regID, v Value) (grew bool) {
	for i := range p.regs {
		if p.regs[i].id == id {
			p.regs[i].v = v
			return false
		}
	}
	p.regs = append(p.regs, regSlot{id, v})
	return true
}

// del frees the register and reports whether a slot was actually removed.
func (p *pe) del(id regID) (removed bool) {
	for i := range p.regs {
		if p.regs[i].id == id {
			last := len(p.regs) - 1
			p.regs[i] = p.regs[last]
			p.regs[last] = regSlot{}
			p.regs = p.regs[:last]
			return true
		}
	}
	return false
}

// Tiles are 16x16: big enough that subgrid recursions stay within a handful
// of tiles, small enough that sparse access patterns don't waste memory.
const (
	tileShift = 4
	tileSide  = 1 << tileShift
	tileMask  = tileSide - 1
)

// tile is a dense block of 256 PEs. Arithmetic shift and two's-complement
// masking make the key/index math correct for negative coordinates too.
type tile struct {
	// touched counts this tile's touched PEs, letting Reset and
	// ResetClocks skip clean tiles entirely. Pooled machines recycled
	// across sweep points keep the tiles of their largest run, while most
	// points touch only a small region; the skip makes Reset proportional
	// to the area the last run actually used.
	touched int
	pes     [tileSide * tileSide]pe
}

func tileKey(c Coord) Coord {
	return Coord{c.Row >> tileShift, c.Col >> tileShift}
}

func tileIndex(c Coord) int {
	return (c.Row&tileMask)<<tileShift | (c.Col & tileMask)
}

// Metrics is a snapshot of the accumulated cost counters of a Machine.
type Metrics struct {
	// Energy is the total Manhattan distance travelled by all messages.
	Energy int64
	// Depth is the longest chain of dependent messages, in messages.
	Depth int64
	// Distance is the largest summed distance of any dependent chain.
	Distance int64
	// Messages is the total number of messages sent.
	Messages int64
	// PeakMemory is the largest number of registers simultaneously live on
	// any single PE. The model requires this to be O(1), i.e. independent
	// of the input size.
	PeakMemory int
}

// Sub returns the metrics accumulated between an earlier snapshot prev and
// this one. Depth, Distance and PeakMemory are absolute maxima and are
// returned as-is (use a fresh Machine to isolate a single computation).
func (m Metrics) Sub(prev Metrics) Metrics {
	return Metrics{
		Energy:     m.Energy - prev.Energy,
		Depth:      m.Depth,
		Distance:   m.Distance,
		Messages:   m.Messages - prev.Messages,
		PeakMemory: m.PeakMemory,
	}
}

func (m Metrics) String() string {
	return fmt.Sprintf("energy=%d depth=%d distance=%d messages=%d peakMem=%d",
		m.Energy, m.Depth, m.Distance, m.Messages, m.PeakMemory)
}

// delivery is one message of a Par round, buffered until the round closes.
type delivery struct {
	to    Coord
	dst   regID
	v     Value
	depth int64
	dist  int64
}

// Machine simulates the Spatial Computer Model. The zero value is not
// usable; construct with New.
type Machine struct {
	tiles map[Coord]*tile
	// One-entry tile cache: valid whenever last != nil. Tiles are never
	// removed (Reset zeroes them in place), so the cache needs no
	// invalidation.
	lastKey Coord
	last    *tile

	touched int // count of PEs with the touched bit set

	// Register interning: a tiny MRU cache in front of the map. Algorithms
	// address one or two registers in their hot loops ("v", a scratch), and
	// constant names from the same binary share backing arrays, so the
	// cache compare is usually a pointer compare.
	reg0Name, reg1Name Reg
	reg0ID, reg1ID     regID
	regIDs             map[string]regID
	regNames           []string

	energy   int64
	messages int64
	maxDepth int64
	maxDist  int64
	peakMem  int

	// memLimit, when positive, bounds the number of registers per PE;
	// exceeding it panics. Algorithms in the paper assume O(1) memory per
	// PE, and tests use the limit to enforce the contract.
	memLimit int

	// indepLogs is the stack of active Independent branches. Each journal
	// records, once per PE touched by the branch, the clock the PE had when
	// the branch first delivered to it, so the branch's clock effects can
	// be rolled back and merged at the join. indepGens holds the strictly
	// increasing generation of each active branch (see pe.indepSeen);
	// journalPool and logPool recycle the buffers.
	indepLogs   [][]indepEntry
	indepGens   []uint64
	indepGen    uint64
	journalPool [][]indepEntry
	logPool     []map[Coord]clock

	// pendingBuf is Par's reusable delivery buffer; parRound stamps the
	// per-PE clock snapshots of the current round.
	pendingBuf []delivery
	parRound   uint64

	// batch is the machine's reusable batched round (see batch.go); parSend
	// is the bound Batch.Send method value Par forwards to when rounds run
	// sharded, allocated once so Par stays allocation-free.
	batch   Batch
	parSend func(from, to Coord, dstReg Reg, v Value)
	// batchSends marks the machine as driven through the batch API, enabling
	// the counting-only fast path (see Batch.Count and CountingOnly).
	batchSends bool

	// shards partitions batched rounds of at least shardMin messages across
	// that many goroutines (see shard.go); sh holds the executor's reusable
	// buffers. Both settings survive Reset.
	shards   int
	shardMin int
	sh       shardScratch

	// cong, when non-nil, tracks per-link traffic (see congestion.go).
	cong *congestion

	// bk is the cost backend (see backend.go): the ideal unbounded grid
	// (zero value), or a finite folded mesh/torus fabric. When finite,
	// physCnt counts the registers co-resident on each physical PE (dense
	// row-major W×H) and physPeak is the largest count ever reached. The
	// backend survives Reset; the occupancy counts are cleared.
	bk       Backend
	physCnt  []int32
	physPeak int

	// sink, when non-nil, receives one trace.Event per message sent; phase
	// is the current Phase annotation stamped onto emitted events. The
	// send fast paths pay a nil check only when tracing is disabled.
	sink  trace.Sink
	phase string
}

// New returns an empty machine with unlimited per-PE memory accounting
// (peaks are still recorded).
func New() *Machine {
	m := &Machine{
		tiles:    make(map[Coord]*tile),
		regIDs:   make(map[string]regID, 8),
		shardMin: defaultShardMin,
	}
	m.batch.m = m
	m.parSend = m.batch.Send
	return m
}

// NewWithMemoryLimit returns a machine that panics if any PE ever holds more
// than limit registers. Use it in tests to certify the O(1)-memory contract.
func NewWithMemoryLimit(limit int) *Machine {
	m := New()
	m.memLimit = limit
	return m
}

// SetBackend selects the cost backend (see backend.go). It panics on an
// invalid backend. The setting survives Reset, so pooled machines keep
// their fabric across sweep points; pass Ideal() to restore the unbounded
// model. Switching backends mid-run is allowed — the physical occupancy
// counters are rebuilt from the live registers, and the physical peak
// restarts from the current occupancy.
//
// Finite backends execute batched rounds sequentially even when SetShards
// has enabled sharding: the physical co-residency peak depends on the
// issue order of register writes across the whole round, which the
// shard-parallel delivery pass does not preserve.
func (m *Machine) SetBackend(b Backend) {
	b = b.normalize()
	if err := b.validate(); err != nil {
		panic(err)
	}
	m.bk = b
	m.physPeak = 0
	if !b.Finite() {
		m.physCnt = nil
		return
	}
	need := b.W * b.H
	if cap(m.physCnt) < need {
		m.physCnt = make([]int32, need)
	} else {
		m.physCnt = m.physCnt[:need]
		clear(m.physCnt)
	}
	// Rebuild occupancy from whatever is already live so SetBackend is
	// valid at any point, not just on an empty machine.
	for k, t := range m.tiles {
		if t.touched == 0 {
			continue
		}
		for i := range t.pes {
			p := &t.pes[i]
			if !p.touched || len(p.regs) == 0 {
				continue
			}
			c := Coord{Row: k.Row<<tileShift | i>>tileShift, Col: k.Col<<tileShift | i&tileMask}
			idx := b.physIndex(c)
			m.physCnt[idx] += int32(len(p.regs))
			if int(m.physCnt[idx]) > m.physPeak {
				m.physPeak = int(m.physCnt[idx])
			}
		}
	}
}

// Backend returns the machine's cost backend.
func (m *Machine) Backend() Backend { return m.bk }

// dist is the backend-aware message cost: Manhattan distance of the
// virtual coordinates under Ideal, distance between physical homes on a
// finite fabric.
func (m *Machine) dist(a, b Coord) int64 {
	if m.bk.Kind == BackendIdeal {
		return Dist(a, b)
	}
	return m.bk.Dist(a, b)
}

// physGrow/physShrink maintain the per-physical-PE occupancy counts of a
// finite backend; both are no-ops under Ideal.
func (m *Machine) physGrow(c Coord) {
	if m.physCnt == nil {
		return
	}
	i := m.bk.physIndex(c)
	n := m.physCnt[i] + 1
	m.physCnt[i] = n
	if int(n) > m.physPeak {
		m.physPeak = int(n)
	}
}

func (m *Machine) physShrink(c Coord) {
	if m.physCnt == nil {
		return
	}
	m.physCnt[m.bk.physIndex(c)]--
}

// SetSink installs a trace sink receiving one trace.Event per message sent
// (nil removes it). The sink is invoked synchronously on the send path and
// must not call back into the machine. It survives Reset, so a pooled
// machine keeps streaming across sweep points until the sink is removed.
func (m *Machine) SetSink(s trace.Sink) { m.sink = s }

// Sink returns the installed trace sink, or nil.
func (m *Machine) Sink() trace.Sink { return m.sink }

// Phase annotates subsequent messages with a phase name, stamped onto the
// emitted trace events ("" clears it). Slash-separated names ("sort/merge")
// render as nested scopes in trace.ChromeSink. Phases are labels only: they
// do not affect the cost metrics.
func (m *Machine) Phase(name string) { m.phase = name }

// emit streams one message to the sink. Only called with m.sink != nil;
// kept out of line so the traced branch does not grow the send fast path.
func (m *Machine) emit(from, to Coord, d int64, v Value, msgDepth, msgDist int64) {
	e := trace.Event{
		Seq:         m.messages,
		From:        trace.Coord(from),
		To:          trace.Coord(to),
		Dist:        d,
		Value:       v,
		DepthBefore: msgDepth - 1,
		DepthAfter:  msgDepth,
		DistBefore:  msgDist - d,
		DistAfter:   msgDist,
		EnergyCum:   m.energy,
		Phase:       m.phase,
	}
	m.sink.Event(&e)
}

// regID interns a register name, assigning the next small id on first use.
func (m *Machine) regID(name Reg) regID {
	if name == m.reg0Name && len(name) > 0 {
		return m.reg0ID
	}
	if name == m.reg1Name && len(name) > 0 {
		m.reg0Name, m.reg1Name = name, m.reg0Name
		m.reg0ID, m.reg1ID = m.reg1ID, m.reg0ID
		return m.reg0ID
	}
	id, ok := m.regIDs[name]
	if !ok {
		id = regID(len(m.regNames))
		m.regIDs[name] = id
		m.regNames = append(m.regNames, name)
	}
	if len(name) > 0 {
		m.reg0Name, m.reg1Name = name, m.reg0Name
		m.reg0ID, m.reg1ID = id, m.reg0ID
	}
	return id
}

// regIDLookup is regID without interning: ok=false if the name has never
// been used on this machine (no PE can hold it).
func (m *Machine) regIDLookup(name Reg) (regID, bool) {
	if name == m.reg0Name && len(name) > 0 {
		return m.reg0ID, true
	}
	if name == m.reg1Name && len(name) > 0 {
		return m.reg1ID, true
	}
	id, ok := m.regIDs[name]
	return id, ok
}

// peAt returns the PE at c, allocating its tile if needed and marking the PE
// touched. It is the accessor for every operation that makes a PE exist.
func (m *Machine) peAt(c Coord) *pe {
	k := tileKey(c)
	t := m.last
	if t == nil || m.lastKey != k {
		var ok bool
		t, ok = m.tiles[k]
		if !ok {
			t = &tile{}
			m.tiles[k] = t
		}
		m.lastKey, m.last = k, t
	}
	p := &t.pes[tileIndex(c)]
	if !p.touched {
		p.touched = true
		t.touched++
		m.touched++
	}
	return p
}

// peLookup returns the PE at c if it has been touched, else nil. Read-only
// accessors use it so queries never make PEs exist.
func (m *Machine) peLookup(c Coord) *pe {
	k := tileKey(c)
	t := m.last
	if t == nil || m.lastKey != k {
		var ok bool
		t, ok = m.tiles[k]
		if !ok {
			return nil
		}
		m.lastKey, m.last = k, t
	}
	p := &t.pes[tileIndex(c)]
	if !p.touched {
		return nil
	}
	return p
}

// Metrics returns the current cost counters. Under a finite backend
// PeakMemory is the largest number of registers ever co-resident on one
// physical PE (folding multiplies the per-PE footprint by the number of
// virtual PEs a physical PE hosts); it is always at least the virtual
// per-PE peak, and equal to it when no two touched virtual PEs share a
// physical home.
func (m *Machine) Metrics() Metrics {
	pm := m.peakMem
	if m.physPeak > pm {
		pm = m.physPeak
	}
	return Metrics{
		Energy:     m.energy,
		Depth:      m.maxDepth,
		Distance:   m.maxDist,
		Messages:   m.messages,
		PeakMemory: pm,
	}
}

// ResetClocks zeroes all causality clocks and the depth/distance maxima
// while keeping register contents and energy. Use it to measure the depth of
// a later phase in isolation.
func (m *Machine) ResetClocks() {
	for _, t := range m.tiles {
		if t.touched == 0 {
			continue // clocks only ever change on touched PEs
		}
		for i := range t.pes {
			t.pes[i].clk = clock{}
		}
	}
	m.maxDepth, m.maxDist = 0, 0
}

// Reset returns the machine to its freshly-constructed state — all
// registers freed, all clocks and cost counters zeroed — while keeping the
// allocated tiles, per-PE register slices, interning table and round buffers
// for reuse. Sweeps run many sizes on one machine with Reset between points
// instead of reallocating the grid each time. The memory limit, trace sink,
// congestion-tracking, shard-count, batched-send and backend settings
// survive (the phase annotation is cleared); congestion link loads and
// physical-PE occupancy counts are cleared.
func (m *Machine) Reset() {
	for _, t := range m.tiles {
		if t.touched == 0 {
			continue
		}
		t.touched = 0
		for i := range t.pes {
			p := &t.pes[i]
			if !p.touched {
				continue
			}
			for j := range p.regs {
				p.regs[j] = regSlot{}
			}
			p.regs = p.regs[:0]
			p.clk = clock{}
			p.peakReg = 0
			p.snapSeen = 0
			p.indepSeen = 0
			p.touched = false
		}
	}
	m.touched = 0
	m.energy, m.messages, m.maxDepth, m.maxDist = 0, 0, 0, 0
	m.peakMem = 0
	m.phase = ""
	m.indepLogs = m.indepLogs[:0]
	m.indepGens = m.indepGens[:0]
	if m.cong != nil {
		m.cong.reset()
	}
	if m.physCnt != nil {
		clear(m.physCnt)
	}
	m.physPeak = 0
}

// Set stores v into register r of PE c without any communication. It models
// local computation (free in this model) or initial input placement.
func (m *Machine) Set(c Coord, r Reg, v Value) {
	p := m.peAt(c)
	if p.set(m.regID(r), v) {
		m.physGrow(c)
	}
	m.noteMem(c, p)
}

// Get returns the value in register r of PE c. It panics if the register is
// empty: reading a value a PE never received is an algorithmic bug.
func (m *Machine) Get(c Coord, r Reg) Value {
	p := m.peLookup(c)
	if p == nil {
		panic(fmt.Sprintf("machine: read from untouched PE %v register %q", c, r))
	}
	if id, ok := m.regIDLookup(r); ok {
		if v, ok := p.lookup(id); ok {
			return v
		}
	}
	panic(fmt.Sprintf("machine: read from empty register %q of %v", r, c))
}

// Lookup returns the value in register r of PE c, with ok=false if empty.
func (m *Machine) Lookup(c Coord, r Reg) (Value, bool) {
	p := m.peLookup(c)
	if p == nil {
		return nil, false
	}
	id, ok := m.regIDLookup(r)
	if !ok {
		return nil, false
	}
	return p.lookup(id)
}

// Del frees register r of PE c. Algorithms free scratch registers so the
// per-PE memory peak reflects their true O(1) working set.
func (m *Machine) Del(c Coord, r Reg) {
	if p := m.peLookup(c); p != nil {
		if id, ok := m.regIDLookup(r); ok {
			if p.del(id) {
				m.physShrink(c)
			}
		}
	}
}

// Has reports whether register r of PE c holds a value.
func (m *Machine) Has(c Coord, r Reg) bool {
	_, ok := m.Lookup(c, r)
	return ok
}

// Send transmits the value in register srcReg of PE from into register
// dstReg of PE to, paying Manhattan-distance energy and extending the
// dependent-message chain. A send from a PE to itself is free (it is local
// computation).
//
// Send is the singleton, immediately-delivered form: a later Send from `to`
// chains onto this one. For rounds of causally independent messages use the
// batched form (Round/SendBatch, or Par), which amortizes per-message
// overhead and is eligible for shard-parallel execution.
func (m *Machine) Send(from Coord, srcReg Reg, to Coord, dstReg Reg) {
	v := m.Get(from, srcReg)
	m.SendValue(from, to, dstReg, v)
}

// SendValue transmits v, a value computed locally at from, into register
// dstReg of to. The chain semantics are identical to Send; like Send it is
// the chain-extending singleton form — prefer Round/SendBatch for bulk
// rounds of independent messages.
func (m *Machine) SendValue(from, to Coord, dstReg Reg, v Value) {
	if from == to {
		m.Set(to, dstReg, v)
		return
	}
	d := m.dist(from, to)
	src := m.peAt(from)
	msgDepth := src.clk.depth + 1
	msgDist := src.clk.dist + d

	m.energy += d
	m.messages++
	if m.cong != nil {
		m.cong.route(m.bk, from, to)
	}
	if msgDepth > m.maxDepth {
		m.maxDepth = msgDepth
	}
	if msgDist > m.maxDist {
		m.maxDist = msgDist
	}

	dst := m.peAt(to)
	m.noteTouch(to, dst)
	dst.clk.merge(msgDepth, msgDist)
	if dst.set(m.regID(dstReg), v) {
		m.physGrow(to)
	}
	m.noteMem(to, dst)

	if m.sink != nil {
		m.emit(from, to, d, v, msgDepth, msgDist)
	}
}

// Move is Send followed by freeing the source register: the value migrates.
func (m *Machine) Move(from Coord, srcReg Reg, to Coord, dstReg Reg) {
	m.Send(from, srcReg, to, dstReg)
	if from != to || srcReg != dstReg {
		m.Del(from, srcReg)
	}
}

// indepEntry is one journaled PE of an Independent branch: the PE and the
// clock it had when the branch first touched it.
type indepEntry struct {
	c   Coord
	p   *pe
	pre clock
}

// getLog pops a clock log off the pool (or makes one); putLog clears it and
// returns it, keeping Independent allocation-free in steady state. The same
// scheme recycles branch journals.
func (m *Machine) getLog() map[Coord]clock {
	if n := len(m.logPool); n > 0 {
		log := m.logPool[n-1]
		m.logPool = m.logPool[:n-1]
		return log
	}
	return make(map[Coord]clock)
}

func (m *Machine) putLog(log map[Coord]clock) {
	clear(log)
	m.logPool = append(m.logPool, log)
}

func (m *Machine) getJournal() []indepEntry {
	if n := len(m.journalPool); n > 0 {
		j := m.journalPool[n-1]
		m.journalPool = m.journalPool[:n-1]
		return j
	}
	return nil
}

func (m *Machine) putJournal(j []indepEntry) {
	for i := range j {
		j[i] = indepEntry{}
	}
	m.journalPool = append(m.journalPool, j[:0])
}

// Independent executes the given tasks as logically parallel branches of
// the computation: message chains inside one branch do not extend chains of
// another, even when branches relay through the same PEs. The depth and
// distance metrics measure the longest chain through the resulting DAG
// (each branch starts from the clocks at the fork; the join merges the
// branches' clock maxima), matching the paper's definition of depth as the
// longest chain of consecutively dependent messages.
//
// Algorithms use it for recursions whose siblings are data-independent —
// e.g. the four quadrant sorts of the 2-D mergesort — where a sequential
// simulation would otherwise serialize unrelated chains through shared
// scratch PEs. Energy accounting is unaffected. Branches still execute
// sequentially in program order, so they must not communicate through
// registers either.
func (m *Machine) Independent(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	merged := m.getLog()
	for _, task := range tasks {
		m.indepGen++
		m.indepGens = append(m.indepGens, m.indepGen)
		m.indepLogs = append(m.indepLogs, m.getJournal())
		task()
		n := len(m.indepLogs)
		log := m.indepLogs[n-1]
		m.indepLogs = m.indepLogs[:n-1]
		m.indepGens = m.indepGens[:n-1]
		for i := range log {
			e := &log[i]
			end := merged[e.c]
			end.merge(e.p.clk.depth, e.p.clk.dist)
			merged[e.c] = end
			e.p.clk = e.pre // roll back for the next branch
		}
		m.putJournal(log)
	}
	for c, clk := range merged {
		p := m.peAt(c)
		// The rolled-back clock is what the fork point left behind; the
		// join raises it to the branch maxima. Record the touch in any
		// enclosing branch so nested forks roll back correctly.
		m.noteTouch(c, p)
		p.clk.merge(clk.depth, clk.dist)
	}
	m.putLog(merged)
}

// noteTouch records PE p's current clock in every active Independent branch
// journal that has not seen it yet. Must be called before any clock
// mutation. Branch generations increase down the stack and a PE is always
// journaled into a contiguous suffix of it, so p.indepSeen — the innermost
// generation that has seen p — makes the already-journaled case one compare.
func (m *Machine) noteTouch(c Coord, p *pe) {
	n := len(m.indepGens)
	if n == 0 || p.indepSeen >= m.indepGens[n-1] {
		return
	}
	for i := n - 1; i >= 0 && m.indepGens[i] > p.indepSeen; i-- {
		m.indepLogs[i] = append(m.indepLogs[i], indepEntry{c: c, p: p, pre: p.clk})
	}
	p.indepSeen = m.indepGens[n-1]
}

// Par executes a round of logically simultaneous sends: every message
// issued through the callback extends its sender's chain as of the start of
// the round, so deliveries within the round never chain to other sends of
// the same round. Algorithms use it for parallel steps in which many PEs
// act at once (compare-exchange levels, permutation routing, PRAM steps).
// Deliveries are applied in issue order; if two messages target the same
// register, the later one wins. The round callback must only issue sends —
// it must not invoke Par or Independent itself.
//
// Par is the closure form of the round API; SendBatch/Round is the recorded
// form. With sharding enabled (SetShards > 1) Par records the round into the
// machine's batch and executes it through the shard-parallel path, with
// byte-identical results.
func (m *Machine) Par(round func(send func(from, to Coord, dstReg Reg, v Value))) {
	if m.shards > 1 {
		b := m.Round()
		round(m.parSend)
		b.Flush()
		return
	}
	m.parRound++
	gen := m.parRound
	pending := m.pendingBuf[:0]
	m.pendingBuf = nil
	send := func(from, to Coord, dstReg Reg, v Value) {
		if from == to {
			pending = append(pending, delivery{to: to, dst: m.regID(dstReg), v: v})
			return
		}
		src := m.peAt(from)
		if src.snapSeen != gen {
			src.snapClk = src.clk
			src.snapSeen = gen
		}
		d := m.dist(from, to)
		m.energy += d
		m.messages++
		if m.cong != nil {
			m.cong.route(m.bk, from, to)
		}
		msg := delivery{to: to, dst: m.regID(dstReg), v: v,
			depth: src.snapClk.depth + 1, dist: src.snapClk.dist + d}
		if msg.depth > m.maxDepth {
			m.maxDepth = msg.depth
		}
		if msg.dist > m.maxDist {
			m.maxDist = msg.dist
		}
		pending = append(pending, msg)
		if m.sink != nil {
			m.emit(from, to, d, v, msg.depth, msg.dist)
		}
	}
	round(send)
	for i := range pending {
		msg := &pending[i]
		dst := m.peAt(msg.to)
		m.noteTouch(msg.to, dst)
		dst.clk.merge(msg.depth, msg.dist)
		if dst.set(msg.dst, msg.v) {
			m.physGrow(msg.to)
		}
		m.noteMem(msg.to, dst)
	}
	for i := range pending {
		pending[i].v = nil // release payload references until the next round
	}
	m.pendingBuf = pending
}

// Exchange swaps the contents of register r between PEs a and b using two
// messages (each PE sends its value; neither send depends on the other).
func (m *Machine) Exchange(a, b Coord, r Reg) {
	va := m.Get(a, r)
	vb := m.Get(b, r)
	m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
		send(a, b, r, va)
		send(b, a, r, vb)
	})
}

// MemoryLimitError reports a PE exceeding the configured per-PE register
// limit. The machine panics with this value (an O(1)-memory contract
// violation is an algorithmic bug, not a data error); facades that expose
// the limit as configuration may recover it and return it as an error.
type MemoryLimitError struct {
	PE        Coord
	Registers int
	Limit     int
}

func (e MemoryLimitError) Error() string {
	return fmt.Sprintf("machine: PE %v exceeded memory limit: %d registers > limit %d", e.PE, e.Registers, e.Limit)
}

func (m *Machine) noteMem(c Coord, p *pe) {
	n := len(p.regs)
	if n > p.peakReg {
		p.peakReg = n
	}
	if n > m.peakMem {
		m.peakMem = n
	}
	if m.memLimit > 0 && n > m.memLimit {
		panic(MemoryLimitError{PE: c, Registers: n, Limit: m.memLimit})
	}
}

// Clock returns the causality clock (depth, distance) of PE c, i.e. the
// longest dependent-message chain ending there.
func (m *Machine) Clock(c Coord) (depth, dist int64) {
	p := m.peLookup(c)
	if p == nil {
		return 0, 0
	}
	return p.clk.depth, p.clk.dist
}

// TouchedPEs returns the number of PEs that have ever held a value or
// participated in a message.
func (m *Machine) TouchedPEs() int { return m.touched }

// Registers returns a sorted list of the live register names of PE c,
// mainly for debugging and tests.
func (m *Machine) Registers(c Coord) []Reg {
	p := m.peLookup(c)
	if p == nil {
		return nil
	}
	names := make([]Reg, 0, len(p.regs))
	for i := range p.regs {
		names = append(names, m.regNames[p.regs[i].id])
	}
	sort.Strings(names)
	return names
}
