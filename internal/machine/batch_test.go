package machine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/trace"
)

// batchWorkload drives m through a deterministic mix of batched rounds,
// Par rounds, singleton sends, self-sends, register collisions and nested
// Independent forks — every code path the sharded executor must reproduce
// byte-identically. All sends go through Par/SendBatch so the same workload
// runs on sequential and sharded machines alike.
func batchWorkload(m *Machine, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const side = 40
	at := func(i int) Coord { return Coord{i / side, i % side} }
	for i := 0; i < side*side; i++ {
		m.Set(at(i), "v", float64(i))
	}
	// A few big rounds with collisions and self-sends.
	for r := 0; r < 4; r++ {
		m.SendBatch(func(b *Batch) {
			for j := 0; j < 3000; j++ {
				from := at(rng.Intn(side * side))
				to := at(rng.Intn(side * side))
				b.Send(from, to, "v", float64(j))
			}
		})
	}
	// Chained singletons between rounds so sender clocks differ.
	for j := 0; j < 50; j++ {
		m.Send(at(j), "v", at(j+1), "v")
	}
	// Independent branches containing rounds, with a nested fork.
	m.Independent(
		func() {
			m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
				for j := 0; j < 2500; j++ {
					send(at(j%700), at((j*13)%700), "a", float64(j))
				}
			})
		},
		func() {
			m.Independent(
				func() {
					m.SendBatch(func(b *Batch) {
						for j := 0; j < 2500; j++ {
							b.Send(at(700+j%200), at(700+(j*7)%200), "b", float64(j))
						}
					})
				},
				func() { m.Send(at(900), "v", at(901), "v") },
			)
		},
	)
	// One more round so post-join clocks feed new messages.
	m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
		for j := 0; j < 2500; j++ {
			send(at(j%1000), at((j*31)%1000), "v", float64(j))
		}
	})
}

// snapshotState captures everything observable: metrics, per-PE clocks and
// sorted register contents over the workload's region.
func snapshotState(m *Machine) string {
	out := fmt.Sprintf("%v touched=%d\n", m.Metrics(), m.TouchedPEs())
	for row := 0; row < 40; row++ {
		for col := 0; col < 40; col++ {
			c := Coord{row, col}
			d, x := m.Clock(c)
			if d == 0 && x == 0 && m.peLookup(c) == nil {
				continue
			}
			out += fmt.Sprintf("p(%d,%d) clk=%d/%d", row, col, d, x)
			for _, r := range m.Registers(c) {
				v, _ := m.Lookup(c, r)
				out += fmt.Sprintf(" %s=%v", r, v)
			}
			out += "\n"
		}
	}
	return out
}

// TestShardedMatchesSequential is the machine-level half of the tentpole's
// byte-identical guarantee: the same workload on 1, 2, 4 and 7 shards (with
// the fork threshold lowered so even small rounds shard) must yield
// identical metrics, clocks and registers.
func TestShardedMatchesSequential(t *testing.T) {
	base := New()
	batchWorkload(base, 42)
	want := snapshotState(base)
	for _, k := range []int{1, 2, 4, 7, 16} {
		m := New()
		m.SetShards(k)
		m.shardMin = 1
		batchWorkload(m, 42)
		if got := snapshotState(m); got != want {
			t.Fatalf("shards=%d diverged from sequential engine:\n got %.300s\nwant %.300s", k, got, want)
		}
	}
}

// TestShardedSurvivesReset checks the shard setting and results survive
// machine pooling: run, Reset, run again sharded.
func TestShardedSurvivesReset(t *testing.T) {
	m := New()
	m.SetShards(4)
	m.shardMin = 1
	batchWorkload(m, 7)
	m.Reset()
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d after Reset, want 4", m.Shards())
	}
	batchWorkload(m, 9)
	fresh := New()
	batchWorkload(fresh, 9)
	if got, want := snapshotState(m), snapshotState(fresh); got != want {
		t.Fatalf("recycled sharded machine diverged from fresh sequential machine")
	}
}

// TestShardedEventStream: with a sink attached the charge pass stays
// sequential, so the event stream must be identical for every shard count.
func TestShardedEventStream(t *testing.T) {
	record := func(k int) []trace.Event {
		var events []trace.Event
		m := New()
		m.SetSink(trace.SinkFunc(func(e *trace.Event) { events = append(events, *e) }))
		if k > 1 {
			m.SetShards(k)
			m.shardMin = 1
		}
		batchWorkload(m, 3)
		return events
	}
	want := record(1)
	for _, k := range []int{2, 4} {
		got := record(k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: event stream differs (len %d vs %d)", k, len(got), len(want))
		}
	}
}

// TestCountMatchesSend: a counting-only round must charge exactly like a
// value round — energy, depth, distance, messages, clocks, touched PEs —
// with only the register traffic (and hence PeakMemory) skipped.
func TestCountMatchesSend(t *testing.T) {
	for _, k := range []int{1, 4} {
		val, cnt := New(), New()
		if k > 1 {
			val.SetShards(k)
			val.shardMin = 1
			cnt.SetShards(k)
			cnt.shardMin = 1
		}
		for _, m := range []*Machine{val, cnt} {
			for i := 0; i < 64; i++ {
				m.Set(Coord{0, i}, "v", float64(i))
			}
		}
		for r := 0; r < 3; r++ {
			val.SendBatch(func(b *Batch) {
				for i := 0; i < 63; i++ {
					b.Send(Coord{0, i}, Coord{0, i + 1}, "in", float64(i))
					b.Send(Coord{0, i + 1}, Coord{0, i}, "in", float64(i))
				}
			})
			for i := 0; i < 64; i++ {
				val.Del(Coord{0, i}, "in")
			}
			cnt.SendBatch(func(b *Batch) {
				for i := 0; i < 63; i++ {
					b.Count(Coord{0, i}, Coord{0, i + 1})
					b.Count(Coord{0, i + 1}, Coord{0, i})
				}
			})
		}
		mv, mc := val.Metrics(), cnt.Metrics()
		mv.PeakMemory, mc.PeakMemory = 0, 0
		if mv != mc {
			t.Fatalf("shards=%d: counting metrics %v != value metrics %v", k, mc, mv)
		}
		if val.TouchedPEs() != cnt.TouchedPEs() {
			t.Fatalf("shards=%d: touched %d != %d", k, cnt.TouchedPEs(), val.TouchedPEs())
		}
		for i := 0; i < 64; i++ {
			dv, xv := val.Clock(Coord{0, i})
			dc, xc := cnt.Clock(Coord{0, i})
			if dv != dc || xv != xc {
				t.Fatalf("shards=%d: clock mismatch at %d: %d/%d vs %d/%d", k, i, dc, xc, dv, xv)
			}
		}
		if cnt.Metrics().PeakMemory != 1 {
			t.Fatalf("counting run materialized registers: peak %d", cnt.Metrics().PeakMemory)
		}
	}
}

// TestShardedMemoryLimit: the sharded engine must surface the same first
// violation the sequential engine panics on (it finishes the round first, so
// only the error value is compared).
func TestShardedMemoryLimit(t *testing.T) {
	run := func(shards int) (err MemoryLimitError) {
		defer func() {
			if r := recover(); r != nil {
				err = r.(MemoryLimitError)
			}
		}()
		m := NewWithMemoryLimit(2)
		m.SetShards(shards)
		m.shardMin = 1
		m.SendBatch(func(b *Batch) {
			for i := 0; i < 100; i++ {
				b.Send(Coord{1, 0}, Coord{0, i % 10}, Reg(fmt.Sprintf("r%d", i)), i)
			}
		})
		return
	}
	want := run(1)
	if want.Limit != 2 {
		t.Fatalf("sequential run did not violate the limit: %+v", want)
	}
	for _, k := range []int{2, 4} {
		if got := run(k); got != want {
			t.Fatalf("shards=%d: violation %+v, want %+v", k, got, want)
		}
	}
}

// TestRoundMisuse covers the batch API's contract panics.
func TestRoundMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	m := New()
	expectPanic("nested Round", func() {
		m.Round()
		defer func() { m.batch.open = false }()
		m.Round()
	})
	expectPanic("Send after Flush", func() {
		b := m.Round()
		b.Flush()
		b.Send(Coord{0, 0}, Coord{0, 1}, "v", 1)
	})
	expectPanic("double Flush", func() {
		b := m.Round()
		b.Flush()
		b.Flush()
	})
}

// TestSharedSinkUnderShardParallelism is the -race coverage the sharding PR
// promises: several goroutines, each driving its own sharded machine, all
// stream into one Synchronized sink while delivery goroutines mutate PE
// state concurrently. Run with -race this catches any escape of shard-local
// state; the metrics must still match a sequential reference.
func TestSharedSinkUnderShardParallelism(t *testing.T) {
	var mu sync.Mutex
	var events int
	shared := trace.Synchronized(trace.SinkFunc(func(*trace.Event) {
		mu.Lock()
		events++
		mu.Unlock()
	}))
	ref := New()
	batchWorkload(ref, 11)
	want := ref.Metrics()

	var wg sync.WaitGroup
	got := make([]Metrics, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := New()
			m.SetShards(4)
			m.shardMin = 1
			m.SetSink(shared)
			batchWorkload(m, 11)
			got[w] = m.Metrics()
		}(w)
	}
	wg.Wait()
	for w, g := range got {
		if g != want {
			t.Fatalf("worker %d: metrics %v, want %v", w, g, want)
		}
	}
	if events != int(want.Messages)*4 {
		t.Fatalf("shared sink saw %d events, want %d", events, want.Messages*4)
	}
}
