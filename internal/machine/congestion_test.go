package machine

import "testing"

func TestCongestionSingleMessage(t *testing.T) {
	m := New()
	m.EnableCongestionTracking()
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{2, 3}, "v")
	if got := m.MaxCongestion(); got != 1 {
		t.Errorf("max congestion = %d, want 1", got)
	}
	if got, want := m.TotalLinkTraversals(), m.Metrics().Energy; got != want {
		t.Errorf("traversals %d != energy %d", got, want)
	}
}

func TestCongestionSharedLink(t *testing.T) {
	// Two messages eastward along the same row share the first link.
	m := New()
	m.EnableCongestionTracking()
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{0, 3}, "a")
	m.Send(Coord{0, 0}, "v", Coord{0, 5}, "b")
	if got := m.MaxCongestion(); got != 2 {
		t.Errorf("max congestion = %d, want 2", got)
	}
}

func TestCongestionOppositeDirectionsIndependent(t *testing.T) {
	// East and west traversals of the same physical span are different
	// directed links.
	m := New()
	m.EnableCongestionTracking()
	m.Set(Coord{0, 0}, "v", 1)
	m.Set(Coord{0, 4}, "v", 2)
	m.Exchange(Coord{0, 0}, Coord{0, 4}, "v")
	if got := m.MaxCongestion(); got != 1 {
		t.Errorf("max congestion = %d, want 1 (opposite directions)", got)
	}
}

func TestCongestionXYRouting(t *testing.T) {
	// Column-first routing: (0,0)->(2,2) and (0,4)->(2,2) share no link
	// until the vertical segment at column 2 — where both descend.
	m := New()
	m.EnableCongestionTracking()
	m.Set(Coord{0, 0}, "v", 1)
	m.Set(Coord{0, 4}, "v", 2)
	m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
		send(Coord{0, 0}, Coord{2, 2}, "a", 1)
		send(Coord{0, 4}, Coord{2, 2}, "b", 2)
	})
	if got := m.MaxCongestion(); got != 2 {
		t.Errorf("max congestion = %d, want 2 (shared vertical segment)", got)
	}
}

func TestCongestionDisabledByDefault(t *testing.T) {
	m := New()
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{5, 5}, "v")
	if m.MaxCongestion() != 0 || m.TotalLinkTraversals() != 0 {
		t.Error("congestion tracked without being enabled")
	}
}
