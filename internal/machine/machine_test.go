package machine

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int64
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{3, 4}, 7},
		{Coord{-2, 5}, Coord{1, 1}, 7},
		{Coord{10, 10}, Coord{10, 11}, 1},
	}
	for _, c := range cases {
		if got := Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Dist(c.b, c.a); got != c.want {
			t.Errorf("Dist not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestAbsInt64Extremes(t *testing.T) {
	// Regression: the old implementation negated before widening, so
	// absInt64(math.MinInt) overflowed to a negative distance.
	cases := []struct {
		in   int
		want int64
	}{
		{0, 0},
		{-1, 1},
		{math.MaxInt, int64(math.MaxInt)},
		{math.MinInt + 1, int64(math.MaxInt)},
		{math.MinInt, math.MaxInt64}, // saturated: |MinInt64| is unrepresentable
	}
	for _, c := range cases {
		got := absInt64(c.in)
		if got != c.want {
			t.Errorf("absInt64(%d) = %d, want %d", c.in, got, c.want)
		}
		if got < 0 {
			t.Errorf("absInt64(%d) = %d is negative", c.in, got)
		}
	}
}

func TestDistQuickTriangle(t *testing.T) {
	f := func(ar, ac, br, bc, cr, cc int16) bool {
		a := Coord{int(ar), int(ac)}
		b := Coord{int(br), int(bc)}
		c := Coord{int(cr), int(cc)}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSendAccountsEnergy(t *testing.T) {
	m := New()
	m.Set(Coord{0, 0}, "v", 42)
	m.Send(Coord{0, 0}, "v", Coord{3, 4}, "v")
	got := m.Metrics()
	if got.Energy != 7 || got.Messages != 1 || got.Depth != 1 || got.Distance != 7 {
		t.Errorf("metrics after one send: %v", got)
	}
	if v := m.Get(Coord{3, 4}, "v"); v != 42 {
		t.Errorf("delivered value %v", v)
	}
}

func TestSelfSendIsFree(t *testing.T) {
	m := New()
	m.Set(Coord{1, 1}, "a", 5)
	m.Send(Coord{1, 1}, "a", Coord{1, 1}, "b")
	got := m.Metrics()
	if got.Energy != 0 || got.Messages != 0 || got.Depth != 0 {
		t.Errorf("self send should be free, got %v", got)
	}
	if v := m.Get(Coord{1, 1}, "b"); v != 5 {
		t.Errorf("self send lost value: %v", v)
	}
}

func TestChainDepthAndDistance(t *testing.T) {
	// A relay chain p0 -> p1 -> p2 -> p3 along a row has depth 3 and
	// distance = total path length.
	m := New()
	m.Set(Coord{0, 0}, "v", 1.0)
	m.Send(Coord{0, 0}, "v", Coord{0, 2}, "v")
	m.Send(Coord{0, 2}, "v", Coord{0, 5}, "v")
	m.Send(Coord{0, 5}, "v", Coord{0, 6}, "v")
	got := m.Metrics()
	if got.Depth != 3 {
		t.Errorf("chain depth = %d, want 3", got.Depth)
	}
	if got.Distance != 6 {
		t.Errorf("chain distance = %d, want 6", got.Distance)
	}
	if got.Energy != 6 {
		t.Errorf("chain energy = %d, want 6", got.Energy)
	}
}

func TestIndependentSendsDoNotChain(t *testing.T) {
	// A PE that emits k messages without receiving in between produces k
	// independent chains of depth 1 (the model's dependent-chain
	// definition; see DESIGN.md).
	m := New()
	root := Coord{0, 0}
	m.Set(root, "v", 7)
	for i := 1; i <= 10; i++ {
		m.Send(root, "v", Coord{0, i}, "v")
	}
	got := m.Metrics()
	if got.Depth != 1 {
		t.Errorf("independent sends depth = %d, want 1", got.Depth)
	}
	if got.Distance != 10 {
		t.Errorf("distance = %d, want 10 (longest single message)", got.Distance)
	}
	if got.Energy != 55 {
		t.Errorf("energy = %d, want 55", got.Energy)
	}
}

func TestBinaryTreeDepthIsLogarithmic(t *testing.T) {
	// A binary fan-out over 2^k leaves must measure depth exactly k.
	m := New()
	m.Set(Coord{0, 0}, "v", 1)
	// Doubling broadcast along a row: at step s, PEs 0..2^s-1 each send to
	// their partner at offset 2^s.
	n := 64
	for s := 1; s < n; s *= 2 {
		for i := 0; i < s; i++ {
			m.Send(Coord{0, i}, "v", Coord{0, i + s}, "v")
		}
	}
	got := m.Metrics()
	if got.Depth != 6 {
		t.Errorf("doubling broadcast depth = %d, want 6", got.Depth)
	}
}

func TestReceiveThenSendChains(t *testing.T) {
	// After receiving, a PE's subsequent sends extend the chain.
	m := New()
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{0, 1}, "v")
	m.Send(Coord{0, 1}, "v", Coord{0, 2}, "a")
	m.Send(Coord{0, 1}, "v", Coord{0, 3}, "b")
	got := m.Metrics()
	if got.Depth != 2 {
		t.Errorf("depth = %d, want 2", got.Depth)
	}
	if got.Distance != 3 { // 1 + 2 via the send to (0,3)
		t.Errorf("distance = %d, want 3", got.Distance)
	}
}

func TestExchange(t *testing.T) {
	m := New()
	a, b := Coord{0, 0}, Coord{0, 4}
	m.Set(a, "x", "left")
	m.Set(b, "x", "right")
	m.Exchange(a, b, "x")
	if m.Get(a, "x") != "right" || m.Get(b, "x") != "left" {
		t.Error("exchange did not swap values")
	}
	got := m.Metrics()
	if got.Energy != 8 || got.Messages != 2 {
		t.Errorf("exchange cost %v, want energy 8 messages 2", got)
	}
	if got.Depth != 1 {
		t.Errorf("exchange depth %d, want 1 (the two sends are independent)", got.Depth)
	}
}

func TestMoveFreesSource(t *testing.T) {
	m := New()
	m.Set(Coord{0, 0}, "v", 9)
	m.Move(Coord{0, 0}, "v", Coord{2, 0}, "v")
	if m.Has(Coord{0, 0}, "v") {
		t.Error("Move left source register live")
	}
	if m.Get(Coord{2, 0}, "v") != 9 {
		t.Error("Move lost the value")
	}
}

func TestGetEmptyPanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Error("Get on empty register did not panic")
		}
	}()
	m.Get(Coord{5, 5}, "nope")
}

func TestMemoryAccounting(t *testing.T) {
	m := New()
	c := Coord{0, 0}
	m.Set(c, "a", 1)
	m.Set(c, "b", 2)
	m.Set(c, "c", 3)
	if got := m.Metrics().PeakMemory; got != 3 {
		t.Errorf("peak memory = %d, want 3", got)
	}
	m.Del(c, "a")
	m.Del(c, "b")
	m.Set(c, "d", 4)
	if got := m.Metrics().PeakMemory; got != 3 {
		t.Errorf("peak memory after frees = %d, want still 3", got)
	}
}

func TestMemoryLimitEnforced(t *testing.T) {
	m := NewWithMemoryLimit(2)
	c := Coord{0, 0}
	m.Set(c, "a", 1)
	m.Set(c, "b", 2)
	defer func() {
		if recover() == nil {
			t.Error("memory limit violation did not panic")
		}
	}()
	m.Set(c, "c", 3)
}

func TestResetClocks(t *testing.T) {
	m := New()
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{0, 9}, "v")
	m.ResetClocks()
	if got := m.Metrics(); got.Depth != 0 || got.Distance != 0 {
		t.Errorf("after reset: %v", got)
	}
	if got := m.Metrics(); got.Energy != 9 {
		t.Errorf("reset must keep energy, got %v", got)
	}
	m.Send(Coord{0, 9}, "v", Coord{0, 10}, "v")
	if got := m.Metrics(); got.Depth != 1 || got.Distance != 1 {
		t.Errorf("post-reset chain: %v", got)
	}
}

func TestMetricsSub(t *testing.T) {
	m := New()
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{0, 3}, "v")
	before := m.Metrics()
	m.Send(Coord{0, 3}, "v", Coord{0, 5}, "v")
	diff := m.Metrics().Sub(before)
	if diff.Energy != 2 || diff.Messages != 1 {
		t.Errorf("Sub = %v", diff)
	}
}

func TestSinkSeesMessages(t *testing.T) {
	m := New()
	var events []trace.Event
	m.SetSink(trace.SinkFunc(func(e *trace.Event) { events = append(events, *e) }))
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{1, 1}, "v")
	m.Send(Coord{1, 1}, "v", Coord{2, 2}, "v")
	m.Send(Coord{2, 2}, "v", Coord{2, 2}, "v") // self-send: free, not traced
	if len(events) != 2 {
		t.Fatalf("sink saw %d messages, want 2", len(events))
	}
	first, second := events[0], events[1]
	want := trace.Event{Seq: 1, From: trace.Coord{Row: 0, Col: 0}, To: trace.Coord{Row: 1, Col: 1}, Dist: 2,
		Value: 1, DepthBefore: 0, DepthAfter: 1, DistBefore: 0, DistAfter: 2, EnergyCum: 2}
	if first != want {
		t.Errorf("first event = %+v, want %+v", first, want)
	}
	want = trace.Event{Seq: 2, From: trace.Coord{Row: 1, Col: 1}, To: trace.Coord{Row: 2, Col: 2}, Dist: 2,
		Value: 1, DepthBefore: 1, DepthAfter: 2, DistBefore: 2, DistAfter: 4, EnergyCum: 4}
	if second != want {
		t.Errorf("second event = %+v, want %+v", second, want)
	}
	mm := m.Metrics()
	if second.DepthAfter != mm.Depth || second.DistAfter != mm.Distance || second.EnergyCum != mm.Energy {
		t.Errorf("final event chain (%d,%d,%d) disagrees with metrics %v",
			second.DepthAfter, second.DistAfter, second.EnergyCum, mm)
	}
}

func TestSinkParSnapshotDepths(t *testing.T) {
	m := New()
	var events []trace.Event
	m.SetSink(trace.SinkFunc(func(e *trace.Event) { events = append(events, *e) }))
	m.Set(Coord{0, 0}, "v", 1.0)
	m.SendValue(Coord{0, 0}, Coord{0, 1}, "v", 1.0)
	// Within one round, the relay out of (0,1) uses the start-of-round
	// clock: the incoming message of the same round must not extend it.
	m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
		send(Coord{0, 0}, Coord{0, 1}, "w", 2.0)
		send(Coord{0, 1}, Coord{0, 2}, "v", 3.0)
	})
	if len(events) != 3 {
		t.Fatalf("saw %d events, want 3", len(events))
	}
	if got := events[2]; got.DepthBefore != 1 || got.DepthAfter != 2 {
		t.Errorf("round relay depths = (%d,%d), want (1,2)", got.DepthBefore, got.DepthAfter)
	}
}

func TestPhaseStampsEventsAndResets(t *testing.T) {
	m := New()
	var phases []string
	m.SetSink(trace.SinkFunc(func(e *trace.Event) { phases = append(phases, e.Phase) }))
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{0, 1}, "v")
	m.Phase("up")
	m.Send(Coord{0, 1}, "v", Coord{0, 2}, "v")
	m.Phase("")
	m.Send(Coord{0, 2}, "v", Coord{0, 3}, "v")
	m.Phase("stale")
	m.Reset() // clears the phase, keeps the sink
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{0, 1}, "v")
	want := []string{"", "up", "", ""}
	if len(phases) != len(want) {
		t.Fatalf("saw %d events, want %d", len(phases), len(want))
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Errorf("event %d phase = %q, want %q", i, phases[i], want[i])
		}
	}
}

func TestClockQuery(t *testing.T) {
	m := New()
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{0, 4}, "v")
	d, dist := m.Clock(Coord{0, 4})
	if d != 1 || dist != 4 {
		t.Errorf("clock = (%d,%d), want (1,4)", d, dist)
	}
	d, dist = m.Clock(Coord{9, 9})
	if d != 0 || dist != 0 {
		t.Errorf("untouched clock = (%d,%d)", d, dist)
	}
}

func TestRegistersListing(t *testing.T) {
	m := New()
	c := Coord{0, 0}
	m.Set(c, "b", 1)
	m.Set(c, "a", 2)
	got := m.Registers(c)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Registers = %v", got)
	}
	if m.Registers(Coord{9, 9}) != nil {
		t.Error("Registers of untouched PE should be nil")
	}
}

func TestParRoundIndependence(t *testing.T) {
	// In a parallel round, a PE that receives a message and then sends one
	// must not chain the two: both chains extend pre-round clocks.
	m := New()
	m.Set(Coord{0, 0}, "v", 1)
	m.Set(Coord{0, 1}, "v", 2)
	m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
		send(Coord{0, 0}, Coord{0, 1}, "in", 1)
		send(Coord{0, 1}, Coord{0, 2}, "in", 2)
	})
	if got := m.Metrics(); got.Depth != 1 {
		t.Errorf("par round depth = %d, want 1", got.Depth)
	}
	// A subsequent send from a round receiver chains onto the round.
	m.Send(Coord{0, 2}, "in", Coord{0, 3}, "in")
	if got := m.Metrics(); got.Depth != 2 {
		t.Errorf("post-round depth = %d, want 2", got.Depth)
	}
}

func TestParSelfSendFree(t *testing.T) {
	m := New()
	m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
		send(Coord{1, 1}, Coord{1, 1}, "x", 9)
	})
	if got := m.Metrics(); got.Energy != 0 || got.Messages != 0 {
		t.Errorf("self send in Par not free: %v", got)
	}
	if m.Get(Coord{1, 1}, "x") != 9 {
		t.Error("self send in Par lost value")
	}
}

func TestParLastWriteWins(t *testing.T) {
	m := New()
	m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
		send(Coord{0, 0}, Coord{2, 2}, "x", "first")
		send(Coord{1, 1}, Coord{2, 2}, "x", "second")
	})
	if got := m.Get(Coord{2, 2}, "x"); got != "second" {
		t.Errorf("last write should win, got %v", got)
	}
}

func TestIndependentBranchesDoNotChain(t *testing.T) {
	// Two branches relay through the same PE; their chains must not
	// concatenate, and the join must keep the max.
	m := New()
	shared := Coord{5, 5}
	m.Set(Coord{0, 0}, "v", 1)
	m.Set(Coord{9, 9}, "v", 2)
	m.Independent(
		func() {
			m.Send(Coord{0, 0}, "v", shared, "a")
			m.Send(shared, "a", Coord{0, 1}, "a")
		},
		func() {
			m.Send(Coord{9, 9}, "v", shared, "b")
			m.Send(shared, "b", Coord{9, 8}, "b")
		},
	)
	if d := m.Metrics().Depth; d != 2 {
		t.Errorf("independent branches depth = %d, want 2", d)
	}
	// A later send from the shared PE chains onto the join's maximum
	// receive-clock (depth 1 — outgoing sends never advance the sender).
	m.Send(shared, "a", Coord{5, 6}, "c")
	if d := m.Metrics().Depth; d != 2 {
		t.Errorf("post-join depth = %d, want 2", d)
	}
}

func TestIndependentNested(t *testing.T) {
	m := New()
	hub := Coord{0, 0}
	m.Set(hub, "v", 1)
	m.Independent(
		func() {
			m.Independent(
				func() { m.Send(hub, "v", Coord{0, 1}, "x") },
				func() { m.Send(hub, "v", Coord{0, 2}, "x") },
			)
		},
		func() { m.Send(hub, "v", Coord{0, 3}, "x") },
	)
	if d := m.Metrics().Depth; d != 1 {
		t.Errorf("nested independent depth = %d, want 1", d)
	}
}

func TestIndependentSingleAndEmpty(t *testing.T) {
	m := New()
	m.Independent()
	ran := false
	m.Independent(func() { ran = true })
	if !ran {
		t.Error("single-task Independent did not run the task")
	}
}

func TestTouchedPEs(t *testing.T) {
	m := New()
	if m.TouchedPEs() != 0 {
		t.Error("fresh machine has touched PEs")
	}
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{1, 1}, "v")
	if got := m.TouchedPEs(); got != 2 {
		t.Errorf("TouchedPEs = %d, want 2", got)
	}
}

func TestMetricsString(t *testing.T) {
	s := Metrics{Energy: 5, Depth: 2, Distance: 3, Messages: 1, PeakMemory: 4}.String()
	for _, want := range []string{"energy=5", "depth=2", "distance=3", "messages=1", "peakMem=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("Metrics.String() = %q missing %q", s, want)
		}
	}
	if got := (Coord{1, 2}).String(); got != "p(1,2)" {
		t.Errorf("Coord.String() = %q", got)
	}
}
