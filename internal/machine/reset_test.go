package machine

import (
	"fmt"
	"testing"
)

// runSample exercises every accounting path: plain sends, a Par round, an
// Independent fork and a congestion-free relay, and returns the metrics.
func runSample(m *Machine) Metrics {
	m.Set(Coord{0, 0}, "v", 1.0)
	m.Set(Coord{0, 1}, "w", 2.0)
	m.Send(Coord{0, 0}, "v", Coord{3, 4}, "v")
	m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
		send(Coord{3, 4}, Coord{0, 0}, "back", 9)
		send(Coord{0, 1}, Coord{5, 5}, "w", 3.0)
	})
	m.Independent(
		func() { m.Send(Coord{5, 5}, "w", Coord{5, 6}, "w") },
		func() { m.Send(Coord{0, 0}, "back", Coord{1, 0}, "b") },
	)
	return m.Metrics()
}

func TestResetMatchesFreshMachine(t *testing.T) {
	fresh := New()
	want := runSample(fresh)

	m := New()
	runSample(m)
	m.Reset()

	if got := m.Metrics(); got != (Metrics{}) {
		t.Fatalf("metrics after Reset = %v, want zero", got)
	}
	if got := m.TouchedPEs(); got != 0 {
		t.Fatalf("TouchedPEs after Reset = %d, want 0", got)
	}
	if m.Has(Coord{0, 0}, "v") || m.Has(Coord{5, 5}, "w") {
		t.Fatal("registers survived Reset")
	}
	if regs := m.Registers(Coord{3, 4}); regs != nil {
		t.Fatalf("Registers after Reset = %v, want nil", regs)
	}
	if d, dist := m.Clock(Coord{3, 4}); d != 0 || dist != 0 {
		t.Fatalf("clock after Reset = (%d,%d), want (0,0)", d, dist)
	}

	// A rerun on the reused grid must account identically to a fresh one.
	if got := runSample(m); got != want {
		t.Errorf("rerun after Reset = %v, want %v", got, want)
	}
	if got, want := m.TouchedPEs(), fresh.TouchedPEs(); got != want {
		t.Errorf("TouchedPEs after rerun = %d, want %d", got, want)
	}
}

func TestResetRepeatedSweep(t *testing.T) {
	m := New()
	var first Metrics
	for round := 0; round < 5; round++ {
		m.Reset()
		got := runSample(m)
		if round == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("round %d metrics %v, want %v", round, got, first)
		}
	}
}

func TestResetKeepsMemoryLimit(t *testing.T) {
	m := NewWithMemoryLimit(2)
	m.Set(Coord{0, 0}, "a", 1)
	m.Reset()
	m.Set(Coord{0, 0}, "a", 1)
	m.Set(Coord{0, 0}, "b", 2)
	defer func() {
		if recover() == nil {
			t.Error("memory limit not enforced after Reset")
		}
	}()
	m.Set(Coord{0, 0}, "c", 3)
}

func TestResetKeepsCongestionTracking(t *testing.T) {
	m := New()
	m.EnableCongestionTracking()
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{0, 3}, "v")
	if m.MaxCongestion() != 1 {
		t.Fatalf("pre-reset congestion = %d", m.MaxCongestion())
	}
	m.Reset()
	if m.MaxCongestion() != 0 || m.TotalLinkTraversals() != 0 {
		t.Fatal("congestion loads survived Reset")
	}
	m.Set(Coord{0, 0}, "v", 1)
	m.Send(Coord{0, 0}, "v", Coord{0, 3}, "v")
	if got := m.MaxCongestion(); got != 1 {
		t.Errorf("post-reset congestion = %d, want 1 (tracking should stay on)", got)
	}
	if got, want := m.TotalLinkTraversals(), m.Metrics().Energy; got != want {
		t.Errorf("traversals %d != energy %d after Reset", got, want)
	}
}

func TestResetSteadyStateAllocFree(t *testing.T) {
	m := New()
	work := func() {
		for r := 0; r < 32; r++ {
			for c := 0; c < 32; c++ {
				m.Set(Coord{r, c}, "v", 1.0)
			}
		}
		m.Send(Coord{0, 0}, "v", Coord{31, 31}, "w")
		m.Reset()
	}
	work() // warm the tiles and per-PE register slices
	if avg := testing.AllocsPerRun(100, work); avg != 0 {
		t.Errorf("populate+Reset cycle = %.1f allocs/run, want 0", avg)
	}
}

func TestResetSkipsCleanTiles(t *testing.T) {
	// A machine warmed by a large run and then recycled for a small one
	// must fully reset the small run's region (tile skipping is an
	// optimization, not a semantic change).
	m := New()
	for r := 0; r < 128; r++ {
		for c := 0; c < 128; c++ {
			m.Set(Coord{r, c}, "v", 1.0)
		}
	}
	m.Reset()
	m.Set(Coord{3, 3}, "v", 42.0)
	m.Send(Coord{3, 3}, "v", Coord{100, 100}, "v")
	m.Reset()
	if m.TouchedPEs() != 0 {
		t.Fatalf("TouchedPEs = %d, want 0", m.TouchedPEs())
	}
	if m.Has(Coord{3, 3}, "v") || m.Has(Coord{100, 100}, "v") {
		t.Fatal("registers survived Reset")
	}
	if got := m.Metrics(); got != (Metrics{}) {
		t.Fatalf("metrics after Reset = %v, want zero", got)
	}
}

func TestNegativeAndTileBoundaryCoords(t *testing.T) {
	// Exercise PEs straddling tile boundaries (tiles are 16x16) and deep in
	// the negative quadrants.
	coords := []Coord{
		{0, 0}, {15, 15}, {16, 16}, {15, 16}, {16, 15},
		{-1, -1}, {-16, -16}, {-17, 31}, {100, -100},
	}
	m := New()
	for i, c := range coords {
		m.Set(c, "v", i)
	}
	for i, c := range coords {
		if got := m.Get(c, "v"); got != i {
			t.Fatalf("Get(%v) = %v, want %d", c, got, i)
		}
	}
	if got := m.TouchedPEs(); got != len(coords) {
		t.Fatalf("TouchedPEs = %d, want %d", got, len(coords))
	}
	// Neighbor PEs in the same tile must not alias.
	m.Set(Coord{-1, -1}, "v", "a")
	if got := m.Get(Coord{-16, -16}, "v"); got != 6 {
		t.Errorf("tile aliasing: Get(p(-16,-16)) = %v", got)
	}
	// A send across a tile boundary accounts the exact Manhattan distance.
	m.Send(Coord{15, 15}, "v", Coord{16, 16}, "x")
	if got := m.Metrics().Energy; got != 2 {
		t.Errorf("cross-tile send energy = %d, want 2", got)
	}
}

func TestUntouchedNeighborInAllocatedTile(t *testing.T) {
	// Touching one PE allocates its whole 16x16 tile; its neighbors must
	// still read as untouched.
	m := New()
	m.Set(Coord{3, 3}, "v", 1)
	if m.Has(Coord{3, 4}, "v") {
		t.Error("neighbor in same tile reads as touched")
	}
	if m.TouchedPEs() != 1 {
		t.Errorf("TouchedPEs = %d, want 1", m.TouchedPEs())
	}
	if m.Registers(Coord{3, 4}) != nil {
		t.Error("neighbor has registers")
	}
	defer func() {
		if recover() == nil {
			t.Error("Get on untouched neighbor did not panic")
		}
	}()
	m.Get(Coord{3, 4}, "v")
}

func TestManyRegisterNamesInterned(t *testing.T) {
	// More distinct names than the MRU cache holds: interning must stay
	// stable and Registers must report original names.
	m := New()
	c := Coord{0, 0}
	const k = 40
	for i := 0; i < k; i++ {
		m.Set(c, fmt.Sprintf("r%02d", i), i)
	}
	for i := 0; i < k; i++ {
		if got := m.Get(c, fmt.Sprintf("r%02d", i)); got != i {
			t.Fatalf("reg r%02d = %v, want %d", i, got, i)
		}
	}
	if got := m.Metrics().PeakMemory; got != k {
		t.Errorf("peak memory = %d, want %d", got, k)
	}
	names := m.Registers(c)
	if len(names) != k || names[0] != "r00" || names[k-1] != "r39" {
		t.Errorf("Registers = %v", names)
	}
}

func TestParBufferReuseAcrossRounds(t *testing.T) {
	// Consecutive Par rounds share buffers; chains must still span rounds
	// (round 2 senders chain onto round 1 deliveries).
	m := New()
	m.Set(Coord{0, 0}, "v", 1)
	for round := 0; round < 4; round++ {
		r := round
		m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
			send(Coord{0, r}, Coord{0, r + 1}, "v", r)
		})
	}
	if got := m.Metrics().Depth; got != 4 {
		t.Errorf("chained rounds depth = %d, want 4", got)
	}
	if got := m.Metrics().Energy; got != 4 {
		t.Errorf("energy = %d, want 4", got)
	}
}

func TestIndependentAfterReset(t *testing.T) {
	m := New()
	runSample(m)
	m.Reset()
	m.Set(Coord{0, 0}, "v", 1)
	m.Independent(
		func() { m.Send(Coord{0, 0}, "v", Coord{0, 5}, "a") },
		func() { m.Send(Coord{0, 0}, "v", Coord{5, 0}, "b") },
	)
	if got := m.Metrics().Depth; got != 1 {
		t.Errorf("depth = %d, want 1 (branches independent)", got)
	}
}
