package machine

import (
	"fmt"
	"sync"
	"testing"
)

// isolationWorkload returns a deterministic workload parameterized by i
// that mixes plain sends, a Par round, a (nested) Independent fork and
// register churn, with i-dependent geometry so different workloads produce
// different metrics.
func isolationWorkload(i int) func(m *Machine) Metrics {
	return func(m *Machine) Metrics {
		span := 3 + i%5
		for k := 0; k <= span; k++ {
			m.Set(Coord{0, k}, "v", float64(k+i))
		}
		for k := 0; k < span; k++ {
			m.Send(Coord{0, k}, "v", Coord{0, k + 1}, "v")
		}
		m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
			for k := 0; k <= span; k++ {
				send(Coord{0, k}, Coord{1 + i%3, k}, "w", float64(k))
			}
		})
		m.Independent(
			func() { m.SendValue(Coord{0, 0}, Coord{7, 7}, "a", 1.0) },
			func() { m.SendValue(Coord{0, span}, Coord{7, 7}, "b", 2.0) },
			func() {
				m.Par(func(send func(from, to Coord, dstReg Reg, v Value)) {
					send(Coord{1 + i%3, 0}, Coord{9, 9}, "c", 3.0)
				})
			},
		)
		m.Del(Coord{7, 7}, "a")
		return m.Metrics()
	}
}

// TestConcurrentPooledMachinesIsolated runs many pooled machines at once
// (each goroutine leases a machine, Resets it, runs a mixed
// Par/Independent workload and returns it) and asserts every run's metrics
// match the single-threaded reference. Machines share no state, so this
// must be race-free and metric-exact; `make check` runs it under -race.
func TestConcurrentPooledMachinesIsolated(t *testing.T) {
	const kinds = 8
	want := make([]Metrics, kinds)
	for i := 0; i < kinds; i++ {
		want[i] = isolationWorkload(i)(New())
	}

	pool := sync.Pool{New: func() any { return New() }}
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	for g := 0; g < 2*kinds; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 25; rep++ {
				i := (g + rep) % kinds
				m := pool.Get().(*Machine)
				m.Reset()
				got := isolationWorkload(i)(m)
				pool.Put(m)
				if got != want[i] {
					select {
					case errc <- fmt.Errorf("goroutine %d rep %d workload %d: metrics %v, want %v", g, rep, i, got, want[i]):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
