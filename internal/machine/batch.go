package machine

// Batched rounds.
//
// A Batch is the machine's hot-path send API: algorithms record the messages
// of one parallel round up front, then Flush charges and delivers them all at
// once. Recording is a plain slice append, so the per-message overhead of the
// round (tile lookups, clock snapshots, sink checks) is paid in two tight
// passes over the buffer instead of per send. The semantics are exactly those
// of Par: every message extends its sender's chain as of the start of the
// round, deliveries are applied in issue order (later wins on a register
// collision), and a send from a PE to itself is free local computation.
//
// The split into a record pass, a charge pass and a delivery pass is also
// what makes sharded execution possible: because no delivery is applied until
// every message has been charged, the sender clocks read during the charge
// pass are the start-of-round clocks by construction — no per-PE snapshot
// stamping is needed — and the charge and delivery passes can each be
// partitioned across shards (see shard.go).

// countReg marks a recorded message as counting-only: it is charged like any
// other message (energy, depth, distance, congestion, clock merge at the
// receiver) but delivers no register value. Counting-only sends back the
// machine's fast path for data-oblivious algorithms that keep payloads
// host-side; see Batch.Count.
const countReg regID = -1

// bmsg is one recorded message of a batched round. depth/dist are filled in
// by the charge pass and consumed by the delivery pass.
type bmsg struct {
	from, to Coord
	depth    int64
	dist     int64
	v        Value
	dst      regID
}

// Batch accumulates the messages of one parallel round. Obtain it with
// Machine.Round (or the SendBatch convenience wrapper), record messages with
// Send/Count, and close the round with Flush. The machine owns a single
// reusable batch, so rounds do not allocate in steady state; batched rounds
// cannot nest, and the recording callbacks must not invoke Par, Independent
// or any other machine operation that sends.
type Batch struct {
	m    *Machine
	msgs []bmsg
	open bool
}

// Round opens the machine's batched round and returns its buffer. The round
// is not charged until Flush. Round panics if a round is already open:
// batched rounds, like Par rounds, do not nest.
func (m *Machine) Round() *Batch {
	if m.batch.open {
		panic("machine: Round called while a batched round is open")
	}
	m.batch.m = m
	m.batch.open = true
	m.batch.msgs = m.batch.msgs[:0]
	return &m.batch
}

// SendBatch records one parallel round through the callback and flushes it:
//
//	m.SendBatch(func(b *machine.Batch) {
//	    for _, e := range edges {
//	        b.Send(e.src, e.dst, "v", vals[e.i])
//	    }
//	})
//
// It is the batched equivalent of Par and the preferred form for bulk rounds.
func (m *Machine) SendBatch(round func(b *Batch)) {
	b := m.Round()
	round(b)
	b.Flush()
}

// Send records one message of the round: v, a value computed locally at
// from, is delivered into register dstReg of to when the round flushes. The
// cost semantics match SendValue inside a Par round.
func (b *Batch) Send(from, to Coord, dstReg Reg, v Value) {
	if !b.open {
		panic("machine: Send on a flushed Batch")
	}
	b.msgs = append(b.msgs, bmsg{from: from, to: to, v: v, dst: b.m.regID(dstReg)})
}

// Count records a counting-only message: it is charged exactly like Send —
// Manhattan-distance energy, chain extension at the receiver, congestion
// routing, touched-PE accounting — but carries no payload and writes no
// register. Algorithms whose data movement is oblivious to the values (e.g.
// sorting networks) use Count to keep payloads host-side when the machine
// reports CountingOnly, skipping the register traffic while leaving Energy,
// Depth, Distance and Messages bit-identical. PeakMemory then reflects only
// the registers actually materialized.
func (b *Batch) Count(from, to Coord) {
	if !b.open {
		panic("machine: Count on a flushed Batch")
	}
	b.msgs = append(b.msgs, bmsg{from: from, to: to, dst: countReg})
}

// Len returns the number of messages recorded so far in the open round.
func (b *Batch) Len() int { return len(b.msgs) }

// Flush closes the round: all recorded messages are charged against the
// start-of-round sender clocks, then delivered in issue order. After Flush
// the batch must not be used until the next Round.
func (b *Batch) Flush() {
	if !b.open {
		panic("machine: Flush on a flushed Batch")
	}
	b.open = false
	m := b.m
	m.processRound(b.msgs)
	for i := range b.msgs {
		b.msgs[i].v = nil // release payload references until the next round
	}
	b.msgs = b.msgs[:0]
}

// processRound executes one recorded round: sequentially, or shard-parallel
// when sharding is enabled and the round is large enough to amortize the
// fork/join (see shard.go). Both paths produce byte-identical counters,
// clocks and register state.
func (m *Machine) processRound(msgs []bmsg) {
	if m.shards > 1 && len(msgs) >= m.shardMin && m.shardSafe(msgs) {
		m.processSharded(msgs)
		return
	}
	m.chargeRound(msgs)
	m.deliverRound(msgs)
}

// shardSafe reports whether a round may run shard-parallel: always under
// the ideal backend; under a finite backend only when the round delivers no
// registers (counting-only), because the physical co-residency peak of a
// folded fabric depends on the issue order of register writes across the
// whole round, which per-shard delivery does not preserve.
func (m *Machine) shardSafe(msgs []bmsg) bool {
	if m.physCnt == nil {
		return true
	}
	for i := range msgs {
		if msgs[i].dst != countReg {
			return false
		}
	}
	return true
}

// chargeRound is the sequential charge pass: for each message it accounts
// energy/messages/congestion, stamps the message with the chain depth and
// distance it realizes (sender's start-of-round clock extended by one hop),
// raises the global maxima, and streams the event to the sink. No clock is
// mutated, so sender clocks read here are start-of-round values.
func (m *Machine) chargeRound(msgs []bmsg) {
	for i := range msgs {
		g := &msgs[i]
		if g.from == g.to {
			g.depth, g.dist = 0, 0
			continue
		}
		src := m.peAt(g.from)
		d := m.dist(g.from, g.to)
		m.energy += d
		m.messages++
		if m.cong != nil {
			m.cong.route(m.bk, g.from, g.to)
		}
		g.depth = src.clk.depth + 1
		g.dist = src.clk.dist + d
		if g.depth > m.maxDepth {
			m.maxDepth = g.depth
		}
		if g.dist > m.maxDist {
			m.maxDist = g.dist
		}
		if m.sink != nil {
			m.emit(g.from, g.to, d, g.v, g.depth, g.dist)
		}
	}
}

// deliverRound is the sequential delivery pass: in issue order, each message
// merges its chain into the receiver's clock and (unless counting-only)
// stores its payload.
func (m *Machine) deliverRound(msgs []bmsg) {
	for i := range msgs {
		g := &msgs[i]
		p := m.peAt(g.to)
		m.noteTouch(g.to, p)
		p.clk.merge(g.depth, g.dist)
		if g.dst != countReg {
			if p.set(g.dst, g.v) {
				m.physGrow(g.to)
			}
			m.noteMem(g.to, p)
		}
	}
}

// PEHandle is a resolved reference to one PE, for hot loops that issue many
// counting-only messages between a fixed set of PEs (e.g. a sorting network
// running level after level over the same wires). Resolving the handle once
// with Machine.Handle hoists the per-message tile lookup out of the loop.
// Handles stay bound to their machine; using one after Reset observes the
// reset (blank) PE state, so re-resolve per measurement.
type PEHandle struct {
	c Coord
	p *pe
}

// Coord returns the grid coordinate the handle resolves.
func (h PEHandle) Coord() Coord { return h.c }

// Handle resolves the PE at c, allocating and touching it exactly like any
// send endpoint would.
func (m *Machine) Handle(c Coord) PEHandle {
	return PEHandle{c: c, p: m.peAt(c)}
}

// CountPair charges one compare-exchange between two distinct PEs: the two
// counting-only messages a->b and b->a of a single parallel round, fused into
// one call. It is exactly equivalent to a Round carrying Count(a, b) and
// Count(b, a) — both messages extend the sender chains as of the start of
// the round — but skips the message buffer and the per-message tile lookups.
//
// The fusion is only sound because the two endpoints form a complete round by
// themselves: callers batching a level of many exchanges may fuse them as
// consecutive CountPair calls only if the pairs are vertex-disjoint, which is
// what defines a sorting-network level. Like Batch.Count, CountPair emits no
// trace event and delivers no register, so it is intended for machines in
// counting-only mode (see CountingOnly).
func (m *Machine) CountPair(a, b PEHandle) {
	if a.p == b.p {
		m.noteTouch(a.c, a.p) // two self-sends: free local computation
		return
	}
	d := m.dist(a.c, b.c)
	m.energy += 2 * d
	m.messages += 2
	if m.cong != nil {
		m.cong.route(m.bk, a.c, b.c)
		m.cong.route(m.bk, b.c, a.c)
	}
	// Start-of-round sender clocks: nothing else in this (two-message) round
	// touches a or b, so reading them directly is the round snapshot.
	ad, adist := a.p.clk.depth+1, a.p.clk.dist+d
	bd, bdist := b.p.clk.depth+1, b.p.clk.dist+d
	if ad > m.maxDepth {
		m.maxDepth = ad
	}
	if bd > m.maxDepth {
		m.maxDepth = bd
	}
	if adist > m.maxDist {
		m.maxDist = adist
	}
	if bdist > m.maxDist {
		m.maxDist = bdist
	}
	m.noteTouch(a.c, a.p)
	m.noteTouch(b.c, b.p)
	a.p.clk.merge(bd, bdist)
	b.p.clk.merge(ad, adist)
}

// SetBatchSends marks the machine as driven through the batched send API,
// allowing algorithms with data-oblivious communication to take the
// counting-only fast path (see CountingOnly). The flag changes no cost
// semantics by itself and survives Reset.
func (m *Machine) SetBatchSends(on bool) { m.batchSends = on }

// BatchSends reports whether SetBatchSends enabled the batched-send mode.
func (m *Machine) BatchSends() bool { return m.batchSends }

// CountingOnly reports whether algorithms may replace register-delivering
// sends with Batch.Count: batched-send mode is on, no trace sink is attached
// (counting-only messages carry no payload to trace), and no per-PE memory
// limit is set (host-side payloads would hide register pressure from the
// limit). Energy, Depth, Distance, Messages and TouchedPEs are identical
// either way; only PeakMemory reflects the skipped register traffic.
func (m *Machine) CountingOnly() bool {
	return m.batchSends && m.sink == nil && m.memLimit == 0
}
