package zorder

// Hilbert-curve encoding, provided as a layout ablation against the Z-order
// curve. The paper uses the Z-order (Morton) curve because its quadrant
// structure matches the 4-ary summation tree of the scan; the Hilbert curve
// has strictly unit-distance steps (total length exactly n-1, against the
// Z-order's ~5n/3), which benefits purely sequential traversals but lacks
// the Morton index's bit-interleaved quadrant arithmetic.

// HilbertEncode returns the Hilbert-curve index of cell (row, col) on a
// side x side grid; side must be a power of two.
func HilbertEncode(side, row, col int) uint64 {
	if !IsPow2(side) {
		panic("zorder: HilbertEncode requires power-of-two side")
	}
	var d uint64
	x, y := col, row
	for s := side / 2; s > 0; s /= 2 {
		var rx, ry int
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// HilbertDecode returns the (row, col) cell of Hilbert index d on a
// side x side grid; side must be a power of two.
func HilbertDecode(side int, d uint64) (row, col int) {
	if !IsPow2(side) {
		panic("zorder: HilbertDecode requires power-of-two side")
	}
	var x, y int
	t := d
	for s := 1; s < side; s *= 2 {
		rx := int(1 & (t / 2))
		ry := int(1 & (t ^ uint64(rx)))
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return y, x
}

// hilbertRot rotates/flips a quadrant appropriately.
func hilbertRot(s, x, y, rx, ry int) (int, int) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// HilbertCurve returns the cells of a side x side grid in Hilbert order, as
// (row, col) pairs. Side must be a power of two.
func HilbertCurve(side int) [][2]int {
	n := side * side
	out := make([][2]int, n)
	for i := 0; i < n; i++ {
		r, c := HilbertDecode(side, uint64(i))
		out[i] = [2]int{r, c}
	}
	return out
}

// HilbertCurveEnergy returns the total Manhattan length of the Hilbert
// curve on a side x side grid: exactly side*side - 1, every step being
// unit-distance.
func HilbertCurveEnergy(side int) int64 {
	var total int64
	pr, pc := 0, 0
	for i := 1; i < side*side; i++ {
		r, c := HilbertDecode(side, uint64(i))
		total += abs64(r-pr) + abs64(c-pc)
		pr, pc = r, c
	}
	return total
}
