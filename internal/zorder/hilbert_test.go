package zorder

import (
	"testing"
	"testing/quick"
)

func TestHilbertRoundTrip(t *testing.T) {
	for _, side := range []int{1, 2, 4, 8, 16, 32} {
		for row := 0; row < side; row++ {
			for col := 0; col < side; col++ {
				d := HilbertEncode(side, row, col)
				r, c := HilbertDecode(side, d)
				if r != row || c != col {
					t.Fatalf("side %d: decode(encode(%d,%d)) = (%d,%d)", side, row, col, r, c)
				}
			}
		}
	}
}

func TestHilbertQuick(t *testing.T) {
	const side = 64
	f := func(r, c uint8) bool {
		row, col := int(r)%side, int(c)%side
		rr, cc := HilbertDecode(side, HilbertEncode(side, row, col))
		return rr == row && cc == col
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHilbertCurveUnitSteps(t *testing.T) {
	// The defining property: consecutive Hilbert cells are grid neighbors.
	for _, side := range []int{2, 4, 8, 16} {
		cells := HilbertCurve(side)
		for i := 1; i < len(cells); i++ {
			dr := cells[i][0] - cells[i-1][0]
			dc := cells[i][1] - cells[i-1][1]
			if dr < 0 {
				dr = -dr
			}
			if dc < 0 {
				dc = -dc
			}
			if dr+dc != 1 {
				t.Fatalf("side %d: step %d jumps by %d", side, i, dr+dc)
			}
		}
	}
}

func TestHilbertCoversAllCells(t *testing.T) {
	side := 16
	seen := make(map[[2]int]bool)
	for _, c := range HilbertCurve(side) {
		if seen[c] {
			t.Fatalf("duplicate cell %v", c)
		}
		seen[c] = true
	}
	if len(seen) != side*side {
		t.Fatalf("covered %d cells", len(seen))
	}
}

func TestHilbertVsZOrderEnergy(t *testing.T) {
	// Ablation: the Hilbert curve's length is exactly n-1 (unit steps);
	// the Z-order curve pays a constant factor more (~5n/3) but gains the
	// quadrant arithmetic the scan's summation tree needs.
	for _, side := range []int{8, 32, 128} {
		n := int64(side * side)
		h := HilbertCurveEnergy(side)
		z := CurveEnergy(side)
		if h != n-1 {
			t.Errorf("side %d: hilbert energy %d, want n-1 = %d", side, h, n-1)
		}
		if z <= h {
			t.Errorf("side %d: z-order energy %d not above hilbert %d", side, z, h)
		}
		if z > 2*n {
			t.Errorf("side %d: z-order energy %d not linear", side, z)
		}
	}
}
