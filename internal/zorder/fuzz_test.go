package zorder

import "testing"

func FuzzMortonRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint16(0))
	f.Add(uint16(1), uint16(2))
	f.Add(uint16(65535), uint16(65535))
	f.Fuzz(func(t *testing.T, row, col uint16) {
		r, c := Decode(Encode(int(row), int(col)))
		if r != int(row) || c != int(col) {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", row, col, r, c)
		}
	})
}

func FuzzHilbertRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0))
	f.Add(uint8(5), uint8(200))
	f.Fuzz(func(t *testing.T, row, col uint8) {
		const side = 256
		r, c := HilbertDecode(side, HilbertEncode(side, int(row), int(col)))
		if r != int(row) || c != int(col) {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", row, col, r, c)
		}
	})
}
