// Package zorder implements Morton (Z-order) space-filling curve
// encoding for the Spatial Computer Model.
//
// Storing arrays according to a Z-order traversal of the grid improves the
// spatial locality of parallel algorithms (Section III of the paper): the
// curve visits the four quadrants of a square grid recursively, top-left,
// top-right, bottom-left, bottom-right. Observation 1 states that sending a
// message along each edge of a Z-order curve of a sqrt(n) x sqrt(n) subgrid
// takes O(n) energy.
//
// Coordinates follow the paper's convention: processor p_{i,j} sits at row i,
// column j. The Morton index interleaves row and column bits so that the
// quadrant order is (top-left, top-right, bottom-left, bottom-right), i.e.
// the row bit is the more significant bit of each pair.
package zorder

import "math/bits"

// Encode returns the Morton index of the cell at (row, col).
// Row and col must be non-negative and fit in 32 bits.
func Encode(row, col int) uint64 {
	return interleave(uint32(col)) | interleave(uint32(row))<<1
}

// Decode returns the (row, col) cell of the Morton index i.
func Decode(i uint64) (row, col int) {
	return int(deinterleave(i >> 1)), int(deinterleave(i))
}

// interleave spreads the bits of x so that bit k of x lands at bit 2k.
func interleave(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// deinterleave collects the even-position bits of v into a compact integer.
func deinterleave(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return uint32(v)
}

// Curve returns the cells of a side x side grid in Z-order, as (row, col)
// pairs relative to the grid origin. Side must be a power of two.
func Curve(side int) [][2]int {
	if !IsPow2(side) {
		panic("zorder: side must be a power of two")
	}
	n := side * side
	out := make([][2]int, n)
	for i := 0; i < n; i++ {
		r, c := Decode(uint64(i))
		out[i] = [2]int{r, c}
	}
	return out
}

// CurveEnergy returns the total Manhattan length of the Z-order curve on a
// side x side grid, i.e. the energy of sending one message along each curve
// edge (Observation 1: O(n)).
func CurveEnergy(side int) int64 {
	var total int64
	pr, pc := 0, 0
	for i := 1; i < side*side; i++ {
		r, c := Decode(uint64(i))
		total += abs64(r-pr) + abs64(c-pc)
		pr, pc = r, c
	}
	return total
}

func abs64(x int) int64 {
	if x < 0 {
		return int64(-x)
	}
	return int64(x)
}

// IsPow2 reports whether x is a positive power of two.
func IsPow2(x int) bool {
	return x > 0 && x&(x-1) == 0
}

// IsPow4 reports whether x is a positive power of four.
func IsPow4(x int) bool {
	return IsPow2(x) && bits.TrailingZeros64(uint64(x))%2 == 0
}

// Log2 returns floor(log2(x)) for x > 0.
func Log2(x int) int {
	if x <= 0 {
		panic("zorder: Log2 of non-positive value")
	}
	return bits.Len64(uint64(x)) - 1
}

// NextPow4 returns the smallest power of four >= x (x >= 1).
func NextPow4(x int) int {
	if x < 1 {
		return 1
	}
	p := 1
	for p < x {
		p *= 4
	}
	return p
}

// NextPow2 returns the smallest power of two >= x (x >= 1).
func NextPow2(x int) int {
	if x < 1 {
		return 1
	}
	p := 1
	for p < x {
		p *= 2
	}
	return p
}

// Sqrt returns the integer square root of a perfect square n, panicking if n
// is not a perfect square. Grid algorithms use it to recover the side length
// of a subgrid holding n elements.
func Sqrt(n int) int {
	if n < 0 {
		panic("zorder: Sqrt of negative value")
	}
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	if r*r != n {
		panic("zorder: Sqrt of non-square value")
	}
	return r
}
