package zorder

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for row := 0; row < 64; row++ {
		for col := 0; col < 64; col++ {
			i := Encode(row, col)
			r, c := Decode(i)
			if r != row || c != col {
				t.Fatalf("Decode(Encode(%d,%d)) = (%d,%d)", row, col, r, c)
			}
		}
	}
}

func TestEncodeQuadrantOrder(t *testing.T) {
	// The four cells of a 2x2 grid must appear in the paper's quadrant
	// order: top-left, top-right, bottom-left, bottom-right.
	want := [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i, w := range want {
		if got := Encode(w[0], w[1]); got != uint64(i) {
			t.Errorf("Encode(%d,%d) = %d, want %d", w[0], w[1], got, i)
		}
	}
}

func TestEncodeRecursiveStructure(t *testing.T) {
	// Cells of the top-left quadrant of a 2s x 2s grid must occupy Morton
	// indices [0, s*s), the top-right [s*s, 2*s*s), etc.
	const s = 8
	quadOf := func(row, col int) int {
		q := 0
		if row >= s {
			q += 2
		}
		if col >= s {
			q++
		}
		return q
	}
	for row := 0; row < 2*s; row++ {
		for col := 0; col < 2*s; col++ {
			i := Encode(row, col)
			if got, want := int(i)/(s*s), quadOf(row, col); got != want {
				t.Fatalf("cell (%d,%d) morton %d in quadrant %d, want %d", row, col, i, got, want)
			}
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(row, col uint16) bool {
		r, c := Decode(Encode(int(row), int(col)))
		return r == int(row) && c == int(col)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeMonotoneInterleave(t *testing.T) {
	// Encoding is strictly monotone along each axis when the other
	// coordinate is fixed.
	f := func(a, b uint8, col uint8) bool {
		if a == b {
			return true
		}
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return Encode(lo, int(col)) < Encode(hi, int(col))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCurveVisitsAllCellsOnce(t *testing.T) {
	for _, side := range []int{1, 2, 4, 8, 16} {
		cells := Curve(side)
		if len(cells) != side*side {
			t.Fatalf("Curve(%d): %d cells", side, len(cells))
		}
		seen := make(map[[2]int]bool, len(cells))
		for _, c := range cells {
			if c[0] < 0 || c[0] >= side || c[1] < 0 || c[1] >= side {
				t.Fatalf("Curve(%d): out of range cell %v", side, c)
			}
			if seen[c] {
				t.Fatalf("Curve(%d): duplicate cell %v", side, c)
			}
			seen[c] = true
		}
	}
}

func TestCurveEnergyLinear(t *testing.T) {
	// Observation 1: the Z-order curve of a sqrt(n) x sqrt(n) grid has
	// total length O(n). Verify the ratio energy/n is bounded by a small
	// constant and non-decreasing convergence.
	for _, side := range []int{2, 4, 8, 16, 32, 64, 128} {
		n := int64(side * side)
		e := CurveEnergy(side)
		if e < n-1 {
			t.Errorf("side %d: curve energy %d below n-1=%d", side, e, n-1)
		}
		if e > 3*n {
			t.Errorf("side %d: curve energy %d exceeds 3n=%d (not linear)", side, e, 3*n)
		}
	}
}

func TestPow2Pow4(t *testing.T) {
	cases := []struct {
		x          int
		pow2, pow4 bool
	}{
		{1, true, true}, {2, true, false}, {3, false, false}, {4, true, true},
		{8, true, false}, {16, true, true}, {64, true, true}, {0, false, false},
		{-4, false, false}, {1024, true, true}, {2048, true, false},
	}
	for _, c := range cases {
		if got := IsPow2(c.x); got != c.pow2 {
			t.Errorf("IsPow2(%d) = %v", c.x, got)
		}
		if got := IsPow4(c.x); got != c.pow4 {
			t.Errorf("IsPow4(%d) = %v", c.x, got)
		}
	}
}

func TestNextPow(t *testing.T) {
	if got := NextPow4(1); got != 1 {
		t.Errorf("NextPow4(1) = %d", got)
	}
	if got := NextPow4(5); got != 16 {
		t.Errorf("NextPow4(5) = %d", got)
	}
	if got := NextPow4(16); got != 16 {
		t.Errorf("NextPow4(16) = %d", got)
	}
	if got := NextPow2(5); got != 8 {
		t.Errorf("NextPow2(5) = %d", got)
	}
	if got := NextPow2(0); got != 1 {
		t.Errorf("NextPow2(0) = %d", got)
	}
}

func TestLog2(t *testing.T) {
	for _, c := range [][2]int{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10}} {
		if got := Log2(c[0]); got != c[1] {
			t.Errorf("Log2(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestSqrt(t *testing.T) {
	for _, s := range []int{0, 1, 2, 3, 7, 100} {
		if got := Sqrt(s * s); got != s {
			t.Errorf("Sqrt(%d) = %d, want %d", s*s, got, s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Sqrt(8) did not panic")
		}
	}()
	Sqrt(8)
}
