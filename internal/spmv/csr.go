package spmv

import "fmt"

// CSR is the compressed-sparse-row companion format: RowPtr has N+1
// entries; the non-zeros of row i are ColIdx[RowPtr[i]:RowPtr[i+1]] with
// values Val[RowPtr[i]:RowPtr[i+1]]. The spatial algorithms consume COO
// (each PE holds one arbitrary triple, matching the paper's input
// assumption); CSR conversion is provided for interoperability with
// host-side solvers.
type CSR struct {
	N      int
	RowPtr []int
	ColIdx []int
	Val    []float64
}

// FromCSR builds a COO matrix from a CSR description.
func FromCSR(c CSR) (Matrix, error) {
	if len(c.RowPtr) != c.N+1 {
		return Matrix{}, fmt.Errorf("spmv: RowPtr has %d entries for %d rows", len(c.RowPtr), c.N)
	}
	nnz := c.RowPtr[c.N]
	if len(c.ColIdx) != nnz || len(c.Val) != nnz {
		return Matrix{}, fmt.Errorf("spmv: %d column indices / %d values for %d non-zeros", len(c.ColIdx), len(c.Val), nnz)
	}
	a := Matrix{N: c.N, Entries: make([]Entry, 0, nnz)}
	for r := 0; r < c.N; r++ {
		lo, hi := c.RowPtr[r], c.RowPtr[r+1]
		if lo > hi || hi > nnz {
			return Matrix{}, fmt.Errorf("spmv: row %d has invalid extent [%d,%d)", r, lo, hi)
		}
		for k := lo; k < hi; k++ {
			a.Entries = append(a.Entries, Entry{Row: r, Col: c.ColIdx[k], Val: c.Val[k]})
		}
	}
	return a, a.Validate()
}

// ToCSR converts the COO matrix to CSR, summing duplicate coordinates and
// ordering each row's entries by column.
func (a Matrix) ToCSR() CSR {
	// Accumulate duplicates.
	type key struct{ r, c int }
	acc := make(map[key]float64, len(a.Entries))
	for _, e := range a.Entries {
		acc[key{e.Row, e.Col}] += e.Val
	}
	rowCnt := make([]int, a.N+1)
	for k := range acc {
		rowCnt[k.r+1]++
	}
	for i := 0; i < a.N; i++ {
		rowCnt[i+1] += rowCnt[i]
	}
	out := CSR{
		N:      a.N,
		RowPtr: rowCnt,
		ColIdx: make([]int, len(acc)),
		Val:    make([]float64, len(acc)),
	}
	// Place entries, then sort each row segment by column (rows are small;
	// insertion sort keeps this dependency-free).
	next := append([]int(nil), rowCnt[:a.N]...)
	for k, v := range acc {
		i := next[k.r]
		out.ColIdx[i] = k.c
		out.Val[i] = v
		next[k.r]++
	}
	for r := 0; r < a.N; r++ {
		lo, hi := out.RowPtr[r], out.RowPtr[r+1]
		for i := lo + 1; i < hi; i++ {
			c, v := out.ColIdx[i], out.Val[i]
			j := i - 1
			for j >= lo && out.ColIdx[j] > c {
				out.ColIdx[j+1], out.Val[j+1] = out.ColIdx[j], out.Val[j]
				j--
			}
			out.ColIdx[j+1], out.Val[j+1] = c, v
		}
	}
	return out
}
