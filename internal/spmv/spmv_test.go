package spmv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func randomMatrix(rng *rand.Rand, n, nnz int) Matrix {
	a := Matrix{N: n}
	for i := 0; i < nnz; i++ {
		a.Entries = append(a.Entries, Entry{
			Row: rng.Intn(n),
			Col: rng.Intn(n),
			Val: rng.Float64()*4 - 2,
		})
	}
	return a
}

func randomVector(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*4 - 2
	}
	return x
}

func vecsAlmostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

func TestMultiplyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, nnz int }{
		{4, 1}, {4, 8}, {8, 16}, {16, 40}, {32, 100}, {64, 256},
	} {
		a := randomMatrix(rng, tc.n, tc.nnz)
		x := randomVector(rng, tc.n)
		m := machine.New()
		got, err := Multiply(m, a, x)
		if err != nil {
			t.Fatal(err)
		}
		if want := a.MultiplyDense(x); !vecsAlmostEqual(got, want) {
			t.Fatalf("n=%d nnz=%d: Multiply = %v, want %v", tc.n, tc.nnz, got, want)
		}
	}
}

func TestMultiplyQuick(t *testing.T) {
	f := func(coords []uint16, vals []int8, xs []int8) bool {
		n := 16
		a := Matrix{N: n}
		for i := 0; i < len(coords) && i < len(vals) && i < 48; i++ {
			a.Entries = append(a.Entries, Entry{
				Row: int(coords[i]) % n,
				Col: int(coords[i]>>4) % n,
				Val: float64(vals[i]),
			})
		}
		x := make([]float64, n)
		for i := range x {
			if i < len(xs) {
				x[i] = float64(xs[i])
			}
		}
		m := machine.New()
		got, err := Multiply(m, a, x)
		if err != nil {
			return false
		}
		return vecsAlmostEqual(got, a.MultiplyDense(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMultiplySpecialShapes(t *testing.T) {
	n := 16
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	cases := map[string]Matrix{
		"identity": func() Matrix {
			a := Matrix{N: n}
			for i := 0; i < n; i++ {
				a.Entries = append(a.Entries, Entry{i, i, 1})
			}
			return a
		}(),
		"singleRow":  {N: n, Entries: []Entry{{3, 0, 2}, {3, 5, -1}, {3, 15, 0.5}}},
		"singleCol":  {N: n, Entries: []Entry{{0, 7, 1}, {4, 7, 2}, {15, 7, 3}}},
		"duplicates": {N: n, Entries: []Entry{{2, 2, 1}, {2, 2, 1}, {2, 2, 1}}},
		"denseRow": func() Matrix {
			a := Matrix{N: n}
			for j := 0; j < n; j++ {
				a.Entries = append(a.Entries, Entry{0, j, 1})
			}
			return a
		}(),
	}
	for name, a := range cases {
		m := machine.New()
		got, err := Multiply(m, a, x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if want := a.MultiplyDense(x); !vecsAlmostEqual(got, want) {
			t.Fatalf("%s: got %v, want %v", name, got, want)
		}
	}
}

func TestMultiplyEmptyMatrix(t *testing.T) {
	m := machine.New()
	got, err := Multiply(m, Matrix{N: 4}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("y[%d] = %v, want 0", i, v)
		}
	}
}

func TestMultiplyValidates(t *testing.T) {
	m := machine.New()
	if _, err := Multiply(m, Matrix{N: 4, Entries: []Entry{{5, 0, 1}}}, make([]float64, 4)); err == nil {
		t.Error("out-of-range entry not rejected")
	}
	if _, err := Multiply(m, Matrix{N: 4, Entries: []Entry{{0, 0, 1}}}, make([]float64, 3)); err == nil {
		t.Error("bad vector length not rejected")
	}
}

func TestMultiplyLinearity(t *testing.T) {
	// Property: A(x + y) = Ax + Ay.
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 16, 40)
	x := randomVector(rng, 16)
	y := randomVector(rng, 16)
	xy := make([]float64, 16)
	for i := range xy {
		xy[i] = x[i] + y[i]
	}
	run := func(v []float64) []float64 {
		m := machine.New()
		out, err := Multiply(m, a, v)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ax, ay, axy := run(x), run(y), run(xy)
	sum := make([]float64, 16)
	for i := range sum {
		sum[i] = ax[i] + ay[i]
	}
	if !vecsAlmostEqual(axy, sum) {
		t.Errorf("linearity violated: A(x+y)=%v, Ax+Ay=%v", axy, sum)
	}
}

func TestMultiplyPRAMMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ n, nnz int }{{4, 6}, {8, 16}, {16, 48}} {
		a := randomMatrix(rng, tc.n, tc.nnz)
		x := randomVector(rng, tc.n)
		m := machine.New()
		got, err := MultiplyPRAM(m, a, x)
		if err != nil {
			t.Fatal(err)
		}
		if want := a.MultiplyDense(x); !vecsAlmostEqual(got, want) {
			t.Fatalf("n=%d nnz=%d: MultiplyPRAM = %v, want %v", tc.n, tc.nnz, got, want)
		}
	}
}

func TestDirectBeatsPRAMDepth(t *testing.T) {
	// Section VIII: the direct algorithm improves depth and distance by a
	// Theta(log n) factor over the PRAM simulation.
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 32, 128)
	x := randomVector(rng, 32)

	md := machine.New()
	if _, err := Multiply(md, a, x); err != nil {
		t.Fatal(err)
	}
	mp := machine.New()
	if _, err := MultiplyPRAM(mp, a, x); err != nil {
		t.Fatal(err)
	}
	if md.Metrics().Depth >= mp.Metrics().Depth {
		t.Errorf("direct depth %d not below PRAM depth %d", md.Metrics().Depth, mp.Metrics().Depth)
	}
	if md.Metrics().Distance >= mp.Metrics().Distance {
		t.Errorf("direct distance %d not below PRAM distance %d", md.Metrics().Distance, mp.Metrics().Distance)
	}
}

func TestMultiplyEnergyScaling(t *testing.T) {
	// Theorem VIII.2: O(m^{3/2}) energy — quadrupling nnz should scale
	// energy by roughly 8, clearly below 16.
	energyAt := func(nnz int) float64 {
		rng := rand.New(rand.NewSource(5))
		a := randomMatrix(rng, 64, nnz)
		x := randomVector(rng, 64)
		m := machine.New()
		if _, err := Multiply(m, a, x); err != nil {
			t.Fatal(err)
		}
		return float64(m.Metrics().Energy)
	}
	if r := energyAt(1024) / energyAt(256); r > 14 {
		t.Errorf("spmv energy quadrupling ratio %.1f too large for O(m^{3/2})", r)
	}
}

func TestMultiplyDepthPolylog(t *testing.T) {
	depthAt := func(nnz int) float64 {
		rng := rand.New(rand.NewSource(6))
		a := randomMatrix(rng, 64, nnz)
		x := randomVector(rng, 64)
		m := machine.New()
		if _, err := Multiply(m, a, x); err != nil {
			t.Fatal(err)
		}
		return float64(m.Metrics().Depth)
	}
	// O(log^3) predicts ~(12/10)^3 = 1.73 plus lower-order noise at these
	// sizes (measured ratios decline 3.1 -> 2.2 -> 1.8 across the sweep);
	// a linear-depth algorithm would hold a constant ratio of 4.
	if r := depthAt(4096) / depthAt(1024); r >= 2.8 {
		t.Errorf("spmv depth quadrupling ratio %.2f not polylogarithmic", r)
	}
}
