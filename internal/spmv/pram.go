package spmv

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/pram"
	"repro/internal/zorder"
)

// pramPair is the (value, segment-head) pair flowing through the segmented
// doubling prefix.
type pramPair struct {
	sum  float64
	head bool
}

// combine is the segmented-scan combination: a head on the right absorbs
// everything to its left.
func combine(l, r pramPair) pramPair {
	if r.head {
		return r
	}
	return pramPair{sum: l.sum + r.sum, head: l.head}
}

// pramProgram is the CRCW PRAM SpMV of Section VIII: one processor per
// non-zero entry (entries pre-sorted by row on the host, as the PRAM
// algorithm assumes its input in a convenient layout). Memory layout:
//
//	cells [0, n):        the vector x
//	cells [n, n+m):      (product, head) pairs
//	cells [n+m, n+m+n):  the output y
//
// Step 0 reads x[col] (concurrent reads), step 1 writes the initial pair,
// steps 2..2+log2(m) run the segmented Hillis-Steele doubling, and the last
// step has each row's final processor write y[row].
type pramProgram struct {
	a      Matrix
	m2     int // m rounded up to a power of two
	levels int
}

func newPRAMProgram(a Matrix) *pramProgram {
	entries := append([]Entry(nil), a.Entries...)
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Row < entries[j].Row })
	m2 := zorder.NextPow2(max(len(entries), 1))
	levels := 0
	for s := m2; s > 1; s /= 2 {
		levels++
	}
	return &pramProgram{a: Matrix{N: a.N, Entries: entries}, m2: m2, levels: levels}
}

func (p *pramProgram) Procs() int { return p.a.NNZ() }
func (p *pramProgram) Cells() int { return p.a.N + p.a.NNZ() + p.a.N }
func (p *pramProgram) Steps() int { return 3 + p.levels }

func (p *pramProgram) InitState(int) machine.Value { return pramPair{} }

func (p *pramProgram) pairCell(i int) int { return p.a.N + i }
func (p *pramProgram) outCell(r int) int  { return p.a.N + p.a.NNZ() + r }

func (p *pramProgram) isHead(i int) bool {
	return i == 0 || p.a.Entries[i].Row != p.a.Entries[i-1].Row
}

func (p *pramProgram) isLast(i int) bool {
	return i == p.a.NNZ()-1 || p.a.Entries[i+1].Row != p.a.Entries[i].Row
}

func (p *pramProgram) Read(t, proc int, state machine.Value) (int, bool) {
	switch {
	case t == 0:
		return p.a.Entries[proc].Col, true
	case t == 1 || t == p.Steps()-1:
		return 0, false
	default:
		off := 1 << (t - 2)
		if proc < off {
			return 0, false
		}
		return p.pairCell(proc - off), true
	}
}

func (p *pramProgram) Compute(t, proc int, state, read machine.Value) (machine.Value, *pram.Write) {
	switch {
	case t == 0:
		prod := p.a.Entries[proc].Val * read.(float64)
		return pramPair{sum: prod, head: p.isHead(proc)}, nil
	case t == 1:
		return state, &pram.Write{Addr: p.pairCell(proc), Val: state}
	case t == p.Steps()-1:
		if !p.isLast(proc) {
			return state, nil
		}
		return state, &pram.Write{Addr: p.outCell(p.a.Entries[proc].Row), Val: state.(pramPair).sum}
	default:
		off := 1 << (t - 2)
		if proc < off {
			return state, nil
		}
		next := combine(read.(pramPair), state.(pramPair))
		return next, &pram.Write{Addr: p.pairCell(proc), Val: next}
	}
}

// MultiplyPRAM computes y = A*x by running the CRCW PRAM SpMV program under
// the sorting-based simulation of Lemma VII.2. It is the paper's PRAM
// simulation upper bound: same O(m^{3/2}) energy as the direct algorithm
// but an extra Theta(log) factor in depth and distance.
func MultiplyPRAM(m *machine.Machine, a Matrix, x []float64) ([]float64, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if len(x) != a.N {
		return nil, fmt.Errorf("spmv: vector length %d for %dx%d matrix", len(x), a.N, a.N)
	}
	if a.NNZ() == 0 {
		return make([]float64, a.N), nil
	}
	prog := newPRAMProgram(a)
	memInit := make([]machine.Value, prog.Cells())
	for j, v := range x {
		memInit[j] = v
	}
	for r := 0; r < a.N; r++ {
		memInit[prog.outCell(r)] = 0.0
	}
	sim := pram.New(m, prog, pram.CRCW, memInit)
	if err := sim.Run(); err != nil {
		return nil, err
	}
	mem := sim.Memory()
	y := make([]float64, a.N)
	for r := 0; r < a.N; r++ {
		y[r] = mem[prog.outCell(r)].(float64)
	}
	return y, nil
}
