// Package spmv implements sparse matrix-vector multiplication on the
// Spatial Computer Model (Section VIII of the paper).
//
// The matrix is stored in coordinate format (COO): each non-zero is a
// triple (i, j, A_ij), distributed one per PE over a sqrt(m) x sqrt(m)
// subgrid in arbitrary order; the dense vector x occupies a sqrt(n) x
// sqrt(n) subgrid next to it.
//
// Multiply is the paper's direct algorithm (Theorem VIII.2): sort by
// column, elect column leaders, fetch and segmented-broadcast the vector
// entries, multiply locally, sort by row, and segmented-scan the partial
// products — O(m^{3/2}) energy, O(log^3 n) depth, O(sqrt m) distance,
// matching the lower bound of Lemma VIII.1 for m = O(n).
//
// MultiplyPRAM is the PRAM-simulation upper bound from the same section: a
// CRCW program computing the products and summing them with a doubling
// (segmented Hillis-Steele) prefix, executed by the Lemma VII.2 simulation —
// O(m^{3/2}) energy but O(log^4 n) depth and O(sqrt m log n) distance, a
// log-factor worse than the direct algorithm in depth and distance.
package spmv

import (
	"fmt"
	"math"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/zorder"
)

// Entry is one non-zero matrix element A[Row][Col] = Val.
type Entry struct {
	Row, Col int
	Val      float64
}

// Matrix is an N x N sparse matrix in coordinate (COO) format. Duplicate
// coordinates are allowed and contribute additively.
type Matrix struct {
	N       int
	Entries []Entry
}

// NNZ returns the number of stored entries.
func (a Matrix) NNZ() int { return len(a.Entries) }

// Validate checks that all coordinates are in range.
func (a Matrix) Validate() error {
	for _, e := range a.Entries {
		if e.Row < 0 || e.Row >= a.N || e.Col < 0 || e.Col >= a.N {
			return fmt.Errorf("spmv: entry (%d,%d) outside %dx%d matrix", e.Row, e.Col, a.N, a.N)
		}
	}
	return nil
}

// MultiplyDense is the host-side reference: y = A*x by direct accumulation.
func (a Matrix) MultiplyDense(x []float64) []float64 {
	y := make([]float64, a.N)
	for _, e := range a.Entries {
		y[e.Row] += e.Val * x[e.Col]
	}
	return y
}

// triple is the on-grid representation of a COO entry; pad marks the dummy
// entries filling the matrix subgrid up to a power-of-four size.
type triple struct {
	row, col int
	val      float64
	x        float64 // fetched vector entry
	pad      bool
}

const (
	regT    = "spmv.t"    // triple / partial product tuple
	regHead = "spmv.head" // segment head flag
	regBV   = "spmv.bv"   // segmented-broadcast value
)

// Multiply computes y = A*x with the direct sort+scan algorithm on machine
// m. It lays out the matrix subgrid at the origin and the vector subgrid to
// its right, runs the seven steps of Section VIII, and returns y. The
// matrix track is the paper's Z-order curve; MultiplyMapped exposes the
// track as a tunable.
func Multiply(m *machine.Machine, a Matrix, x []float64) ([]float64, error) {
	return MultiplyMapped(m, a, x, grid.TrackZOrder)
}

// MultiplyMapped is Multiply with the matrix-subgrid track (the order the
// triples are sorted along and scanned over) chosen by the caller: Z-order
// is the paper's locality-preserving default, Hilbert trades slightly
// different locality, row-major is the curve-free baseline. The matrix
// subgrid is always a square power-of-two side, so every track kind is
// valid. The vector and output subgrids stay row-major — they are
// addressed pointwise, never scanned.
func MultiplyMapped(m *machine.Machine, a Matrix, x []float64, kind grid.TrackKind) ([]float64, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if len(x) != a.N {
		return nil, fmt.Errorf("spmv: vector length %d for %dx%d matrix", len(x), a.N, a.N)
	}
	if a.NNZ() == 0 {
		return make([]float64, a.N), nil
	}

	// Layout: matrix triples on a square power-of-two subgrid (padded),
	// x on a ceil(sqrt n) square to the right, y below x.
	side := zorder.NextPow2(int(math.Ceil(math.Sqrt(float64(a.NNZ())))))
	mat := grid.Square(machine.Coord{}, side)
	mt := grid.TrackFor(kind, mat)
	total := mat.Size()

	vecSide := int(math.Ceil(math.Sqrt(float64(a.N))))
	vec := mat.RightOf(vecSide, vecSide)
	vt := grid.RowMajor(vec)
	out := vec.Below(vecSide, vecSide)
	ot := grid.RowMajor(out)

	for i := 0; i < total; i++ {
		if i < a.NNZ() {
			e := a.Entries[i]
			m.Set(mt.At(i), regT, triple{row: e.Row, col: e.Col, val: e.Val})
		} else {
			m.Set(mt.At(i), regT, triple{pad: true})
		}
	}
	for j := 0; j < a.N; j++ {
		m.Set(vt.At(j), "spmv.x", x[j])
	}

	// Step 1: sort the triples by column index (padding last).
	m.Phase("spmv/sort-cols")
	core.SortToTrack(m, mat, regT, mt, regT, tripleByCol)

	// Step 2: column leaders — each PE learns its Z-order predecessor's
	// column index.
	m.Phase("spmv/col-leaders")
	electLeaders(m, mt, total, func(t triple) int64 { return colKey(t) })

	// Step 3: column leaders fetch x_j and a segmented broadcast (a
	// segmented scan with the First operator) distributes it.
	m.Phase("spmv/broadcast-x")
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < total; i++ {
			c := mt.At(i)
			t := m.Get(c, regT).(triple)
			if m.Get(c, regHead).(bool) && !t.pad {
				send(c, vt.At(t.col), "spmv.req", i)
			}
		}
	})
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < total; i++ {
			c := mt.At(i)
			t := m.Get(c, regT).(triple)
			if m.Get(c, regHead).(bool) && !t.pad {
				cell := vt.At(t.col)
				send(cell, c, regBV, m.Get(cell, "spmv.x"))
				m.Del(cell, "spmv.req")
			}
		}
	})
	for i := 0; i < total; i++ {
		c := mt.At(i)
		if !m.Has(c, regBV) {
			m.Set(c, regBV, 0.0)
		}
	}
	// Segmented scans must follow the order the triples were sorted in:
	// the paper's Z-order track uses the energy-optimal quadtree scan,
	// other tracks the tree scan along the curve.
	segScan := func(op collectives.Op) {
		if kind == grid.TrackZOrder {
			collectives.SegmentedScan(m, mat, regBV, regHead, op, 0.0)
		} else {
			collectives.SegmentedScanTrack(m, mt, regBV, regHead, op, 0.0)
		}
	}
	segScan(collectives.First)

	// Step 4: local partial products.
	for i := 0; i < total; i++ {
		c := mt.At(i)
		t := m.Get(c, regT).(triple)
		if !t.pad {
			t.x = m.Get(c, regBV).(float64)
		}
		m.Set(c, regT, t)
		m.Del(c, regBV)
		m.Del(c, regHead)
	}

	// Step 5: sort the products by row index.
	m.Phase("spmv/sort-rows")
	core.SortToTrack(m, mat, regT, mt, regT, tripleByRow)

	// Step 6: row leaders.
	m.Phase("spmv/row-leaders")
	electLeaders(m, mt, total, func(t triple) int64 { return rowKey(t) })

	// Step 7: segmented scan sums each row's products; the last PE of a
	// segment holds the row total and routes it to the output subgrid.
	m.Phase("spmv/row-sums")
	for i := 0; i < total; i++ {
		c := mt.At(i)
		t := m.Get(c, regT).(triple)
		prod := 0.0
		if !t.pad {
			prod = t.val * t.x
		}
		m.Set(c, regBV, prod)
	}
	segScan(collectives.Add)
	m.Phase("spmv/route-out")
	// A PE is the last of its segment iff its successor is a head (or it
	// is the final PE); learn the successor's head flag in one round.
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 1; i < total; i++ {
			send(mt.At(i), mt.At(i-1), "spmv.nexthead", m.Get(mt.At(i), regHead))
		}
	})
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < total; i++ {
			c := mt.At(i)
			t := m.Get(c, regT).(triple)
			if t.pad {
				continue
			}
			last := i == total-1
			if !last {
				nh := m.Get(c, "spmv.nexthead").(bool)
				// The successor being a pad triple also ends the segment
				// (pads sort last and form their own segment).
				last = nh
			}
			if last {
				send(c, ot.At(t.row), "spmv.y", m.Get(c, regBV))
			}
		}
	})
	for i := 0; i < total; i++ {
		c := mt.At(i)
		m.Del(c, "spmv.nexthead")
		m.Del(c, regBV)
		m.Del(c, regHead)
		m.Del(c, regT)
	}

	y := make([]float64, a.N)
	for r := 0; r < a.N; r++ {
		if v, ok := m.Lookup(ot.At(r), "spmv.y"); ok {
			y[r] = v.(float64)
			m.Del(ot.At(r), "spmv.y")
		}
	}
	return y, nil
}

// colKey and rowKey order real triples by column/row with pads last.
func colKey(t triple) int64 {
	if t.pad {
		return int64(1) << 60
	}
	return int64(t.col)
}

func rowKey(t triple) int64 {
	if t.pad {
		return int64(1) << 60
	}
	return int64(t.row)
}

func tripleByCol(a, b machine.Value) bool { return colKey(a.(triple)) < colKey(b.(triple)) }
func tripleByRow(a, b machine.Value) bool { return rowKey(a.(triple)) < rowKey(b.(triple)) }

// electLeaders sets regHead on each track position whose key differs from
// its predecessor's ("each processor sends its column index to the next
// processor in the sequence; if the received index differs from its own or
// no message is received, it becomes a leader").
func electLeaders(m *machine.Machine, t grid.Track, total int, key func(triple) int64) {
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i+1 < total; i++ {
			send(t.At(i), t.At(i+1), "spmv.prev", key(m.Get(t.At(i), regT).(triple)))
		}
	})
	for i := 0; i < total; i++ {
		c := t.At(i)
		head := true
		if i > 0 {
			head = m.Get(c, "spmv.prev").(int64) != key(m.Get(c, regT).(triple))
			m.Del(c, "spmv.prev")
		}
		m.Set(c, regHead, head)
	}
}
