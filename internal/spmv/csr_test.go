package spmv

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
)

func TestFromCSRRoundTrip(t *testing.T) {
	c := CSR{
		N:      3,
		RowPtr: []int{0, 2, 2, 4},
		ColIdx: []int{0, 2, 1, 2},
		Val:    []float64{1, 2, 3, 4},
	}
	a, err := FromCSR(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != 4 {
		t.Fatalf("nnz = %d", a.NNZ())
	}
	x := []float64{1, 10, 100}
	y := a.MultiplyDense(x)
	want := []float64{201, 0, 430}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestFromCSRValidation(t *testing.T) {
	bad := []CSR{
		{N: 2, RowPtr: []int{0, 1}, ColIdx: []int{0}, Val: []float64{1}},           // short RowPtr
		{N: 2, RowPtr: []int{0, 1, 3}, ColIdx: []int{0, 1}, Val: []float64{1, 2}},  // nnz mismatch
		{N: 2, RowPtr: []int{0, 2, 1}, ColIdx: []int{0, 1}, Val: []float64{1, 2}},  // decreasing ptr
		{N: 2, RowPtr: []int{0, 1, 2}, ColIdx: []int{0, 99}, Val: []float64{1, 2}}, // col range
	}
	for i, c := range bad {
		if _, err := FromCSR(c); err == nil {
			t.Errorf("case %d: invalid CSR accepted", i)
		}
	}
}

func TestToCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 16, 60) // includes duplicate coordinates
	x := randomVector(rng, 16)
	want := a.MultiplyDense(x)

	c := a.ToCSR()
	// Structure checks.
	if len(c.RowPtr) != 17 || c.RowPtr[0] != 0 {
		t.Fatalf("RowPtr malformed: %v", c.RowPtr)
	}
	for r := 0; r < c.N; r++ {
		for i := c.RowPtr[r] + 1; i < c.RowPtr[r+1]; i++ {
			if c.ColIdx[i] <= c.ColIdx[i-1] {
				t.Fatalf("row %d not strictly column-sorted (duplicates must merge)", r)
			}
		}
	}
	back, err := FromCSR(c)
	if err != nil {
		t.Fatal(err)
	}
	got := back.MultiplyDense(x)
	if !vecsAlmostEqual(got, want) {
		t.Errorf("CSR round trip changed the operator: %v vs %v", got, want)
	}
}

func TestCSRThroughSpatialMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 16, 48)
	x := randomVector(rng, 16)
	back, err := FromCSR(a.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New()
	got, err := Multiply(m, back, x)
	if err != nil {
		t.Fatal(err)
	}
	if !vecsAlmostEqual(got, a.MultiplyDense(x)) {
		t.Error("spatial multiply of CSR-converted matrix disagrees with dense reference")
	}
}
