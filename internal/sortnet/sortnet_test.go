package sortnet

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
)

func runOnTrack(t *testing.T, nw Network, vals []float64) []float64 {
	t.Helper()
	side := 1
	for side*side < len(vals) {
		side *= 2
	}
	m := machine.New()
	tr := grid.Slice(grid.RowMajor(grid.Square(machine.Coord{}, side)), 0, len(vals))
	for i, v := range vals {
		m.Set(tr.At(i), "v", v)
	}
	Run(m, nw, tr, "v", order.Float64)
	out := make([]float64, len(vals))
	for i := range out {
		out[i] = m.Get(tr.At(i), "v").(float64)
	}
	return out
}

func isSorted(vals []float64) bool {
	return sort.Float64sAreSorted(vals)
}

func TestBitonicSortsRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 16, 64, 256} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		got := runOnTrack(t, Bitonic(n), vals)
		if !isSorted(got) {
			t.Errorf("n=%d: bitonic output not sorted", n)
		}
	}
}

func TestBitonicIsPermutation(t *testing.T) {
	f := func(raw []int8) bool {
		n := 1
		for n < len(raw) || n < 2 {
			n *= 2
		}
		vals := make([]float64, n)
		for i, v := range raw {
			vals[i] = float64(v)
		}
		got := runOnTrack(t, Bitonic(n), vals)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBitonicNetworkShape(t *testing.T) {
	for _, n := range []int{2, 8, 64} {
		nw := Bitonic(n)
		log := 0
		for s := n; s > 1; s /= 2 {
			log++
		}
		if want := log * (log + 1) / 2; nw.Depth() != want {
			t.Errorf("n=%d: depth %d, want %d", n, nw.Depth(), want)
		}
		if want := n / 2 * nw.Depth(); nw.Comparators() != want {
			t.Errorf("n=%d: comparators %d, want %d", n, nw.Comparators(), want)
		}
		// Wires must pair disjointly within a level.
		for li, level := range nw {
			used := make(map[int]bool)
			for _, c := range level {
				if c.Lo >= c.Hi || used[c.Lo] || used[c.Hi] {
					t.Fatalf("n=%d level %d: bad comparator %+v", n, li, c)
				}
				used[c.Lo], used[c.Hi] = true, true
			}
		}
	}
}

func TestBitonicMergeMergesSortedHalves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	// Bitonic input: first half ascending, second half descending.
	sort.Float64s(vals[:n/2])
	sort.Sort(sort.Reverse(sort.Float64Slice(vals[n/2:])))
	got := runOnTrack(t, BitonicMerge(n), vals)
	if !isSorted(got) {
		t.Error("bitonic merge failed on bitonic input")
	}
}

func TestOddEvenTransposition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 16, 33} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		got := runOnTrack(t, OddEvenTransposition(n), vals)
		if !isSorted(got) {
			t.Errorf("n=%d: odd-even transposition failed", n)
		}
	}
}

func TestRunIsDataOblivious(t *testing.T) {
	// The message pattern must depend only on n, not on values: the
	// total energy for two different inputs of the same size is equal.
	energy := func(seed int64) int64 {
		rng := rand.New(rand.NewSource(seed))
		m := machine.New()
		tr := grid.RowMajor(grid.Square(machine.Coord{}, 8))
		for i := 0; i < 64; i++ {
			m.Set(tr.At(i), "v", rng.Float64())
		}
		Run(m, Bitonic(64), tr, "v", order.Float64)
		return m.Metrics().Energy
	}
	if e1, e2 := energy(1), energy(2); e1 != e2 {
		t.Errorf("bitonic energy depends on data: %d vs %d", e1, e2)
	}
}

func TestBitonicDepthOnGridIsLogSquared(t *testing.T) {
	// Lemma V.4: Theta(log^2 n) depth. Each network level contributes
	// exactly one message round (+1 for the local compare's reply), so
	// measured depth is within a small constant of levels.
	for _, side := range []int{4, 8, 16} {
		n := side * side
		m := machine.New()
		tr := grid.RowMajor(grid.Square(machine.Coord{}, side))
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < n; i++ {
			m.Set(tr.At(i), "v", rng.Float64())
		}
		Sort(m, tr, "v", n, order.Float64)
		levels := int64(Bitonic(n).Depth())
		d := m.Metrics().Depth
		if d < levels || d > 2*levels {
			t.Errorf("side %d: depth %d outside [%d, %d]", side, d, levels, 2*levels)
		}
	}
}

func TestBitonicEnergySuperlinearByLogFactor(t *testing.T) {
	// Lemma V.4 on a square grid: Theta(n^{3/2} log n) energy. Check that
	// energy / n^{3/2} grows (the log factor) across sides.
	prev := 0.0
	for _, side := range []int{4, 8, 16, 32} {
		n := side * side
		m := machine.New()
		tr := grid.RowMajor(grid.Square(machine.Coord{}, side))
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < n; i++ {
			m.Set(tr.At(i), "v", rng.Float64())
		}
		Sort(m, tr, "v", n, order.Float64)
		norm := float64(m.Metrics().Energy) / (float64(n) * float64(side))
		if norm <= prev {
			t.Errorf("side %d: energy/n^1.5 = %.3f did not grow (prev %.3f)", side, norm, prev)
		}
		prev = norm
	}
}

func TestShearsortSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, side := range []int{2, 4, 8} {
		n := side * side
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.RowMajor(r)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
			m.Set(tr.At(i), "v", vals[i])
		}
		Shearsort(m, r, "v", order.Float64)
		got := make([]float64, n)
		for i := range got {
			got[i] = m.Get(tr.At(i), "v").(float64)
		}
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("side %d: shearsort[%d] = %v, want %v", side, i, got[i], want[i])
			}
		}
	}
}

func TestShearsortDepthPolynomial(t *testing.T) {
	// The mesh baseline's depth grows like sqrt(n) log n — verify it is
	// at least side (polynomially deep), in contrast to the network sorts.
	for _, side := range []int{8, 16} {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.RowMajor(r)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < side*side; i++ {
			m.Set(tr.At(i), "v", rng.Float64())
		}
		Shearsort(m, r, "v", order.Float64)
		if d := m.Metrics().Depth; d < int64(side) {
			t.Errorf("side %d: shearsort depth %d unexpectedly below side", side, d)
		}
	}
}

func TestSortDescendingComparator(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	got := runOnTrack(t, Bitonic(8), vals)
	_ = got
	m := machine.New()
	tr := grid.Slice(grid.RowMajor(grid.Square(machine.Coord{}, 4)), 0, 8)
	for i, v := range vals {
		m.Set(tr.At(i), "v", v)
	}
	Run(m, Bitonic(8), tr, "v", order.Reverse(order.Float64))
	prev := m.Get(tr.At(0), "v").(float64)
	for i := 1; i < 8; i++ {
		cur := m.Get(tr.At(i), "v").(float64)
		if cur > prev {
			t.Fatal("descending sort produced ascending pair")
		}
		prev = cur
	}
}

func TestOddEvenMergeSortSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{2, 4, 16, 64, 256} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		got := runOnTrack(t, OddEvenMergeSort(n), vals)
		if !isSorted(got) {
			t.Errorf("n=%d: odd-even mergesort failed", n)
		}
	}
}

func TestOddEvenMergeSortIsPermutation(t *testing.T) {
	f := func(raw []int8) bool {
		n := 1
		for n < len(raw) || n < 2 {
			n *= 2
		}
		vals := make([]float64, n)
		for i, v := range raw {
			vals[i] = float64(v)
		}
		got := runOnTrack(t, OddEvenMergeSort(n), vals)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOddEvenMergeSortFewerComparators(t *testing.T) {
	// Batcher's odd-even network beats the bitonic network on comparator
	// count at the same O(log^2 n) depth.
	for _, n := range []int{64, 256, 1024} {
		oe, bi := OddEvenMergeSort(n), Bitonic(n)
		if oe.Comparators() >= bi.Comparators() {
			t.Errorf("n=%d: odd-even %d comparators not below bitonic %d", n, oe.Comparators(), bi.Comparators())
		}
	}
}

func TestNetworkOnZOrderLayoutAblation(t *testing.T) {
	// Layout ablation: mapping the bitonic wires along the Z-order curve
	// instead of row-major changes only constants — both remain
	// Theta(n^{3/2} log n) — but Z-order keeps recursive halves in compact
	// blocks and measures lower energy.
	rng := rand.New(rand.NewSource(9))
	side := 16
	n := side * side
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	run := func(tr grid.Track) int64 {
		m := machine.New()
		for i := 0; i < n; i++ {
			m.Set(tr.At(i), "v", vals[i])
		}
		Run(m, Bitonic(n), tr, "v", order.Float64)
		for i := 1; i < n; i++ {
			if m.Get(tr.At(i), "v").(float64) < m.Get(tr.At(i-1), "v").(float64) {
				t.Fatal("not sorted")
			}
		}
		return m.Metrics().Energy
	}
	r := grid.Square(machine.Coord{}, side)
	rowE := run(grid.RowMajor(r))
	zE := run(grid.ZOrder(r))
	if zE >= rowE {
		t.Errorf("z-order-mapped bitonic energy %d not below row-major %d", zE, rowE)
	}
}
