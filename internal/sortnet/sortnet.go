// Package sortnet implements sorting networks mapped onto the Spatial
// Computer Model grid (Section V-B of the paper).
//
// Sorting networks are data-oblivious: for each time step they define a set
// of disjoint index pairs to compare-and-swap, depending only on the input
// size. Mapping each wire to a processor (row-major by default) yields a
// low-depth spatial sorting algorithm, but — as Lemmas V.3 and V.4 show —
// an energy-suboptimal one: Bitonic Sort takes Theta(n^{3/2} log n) energy
// on a square subgrid, a Theta(log n) factor above the permutation lower
// bound, because the recursion eventually degenerates into a 1-D algorithm
// inside single rows.
package sortnet

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/zorder"
)

// Comparator compares wires Lo < Hi at one network step; if Asc, the smaller
// value ends at Lo, otherwise at Hi.
type Comparator struct {
	Lo, Hi int
	Asc    bool
}

// Network is a sorting (or merging) network: a sequence of levels, each a
// set of disjoint comparators executed in parallel.
type Network [][]Comparator

// Depth returns the number of levels.
func (nw Network) Depth() int { return len(nw) }

// Comparators returns the total comparator count.
func (nw Network) Comparators() int {
	total := 0
	for _, level := range nw {
		total += len(level)
	}
	return total
}

// Bitonic returns Batcher's bitonic sorting network for n wires (n a power
// of two): O(log^2 n) levels and O(n log^2 n) comparators.
func Bitonic(n int) Network {
	if !zorder.IsPow2(n) {
		panic(fmt.Sprintf("sortnet: Bitonic requires power-of-two size, got %d", n))
	}
	var nw Network
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			var level []Comparator
			for i := 0; i < n; i++ {
				l := i ^ j
				if l > i {
					level = append(level, Comparator{Lo: i, Hi: l, Asc: i&k == 0})
				}
			}
			nw = append(nw, level)
		}
	}
	return nw
}

// BitonicMerge returns the merge network that sorts a bitonic sequence of n
// wires — in particular the concatenation of an ascending and a descending
// sorted half: O(log n) levels, n/2 comparators each (Figure 2, Lemma V.3).
func BitonicMerge(n int) Network {
	if !zorder.IsPow2(n) {
		panic(fmt.Sprintf("sortnet: BitonicMerge requires power-of-two size, got %d", n))
	}
	var nw Network
	for j := n >> 1; j > 0; j >>= 1 {
		var level []Comparator
		for i := 0; i < n; i++ {
			l := i ^ j
			if l > i {
				level = append(level, Comparator{Lo: i, Hi: l, Asc: true})
			}
		}
		nw = append(nw, level)
	}
	return nw
}

// OddEvenMergeSort returns Batcher's odd-even mergesort network for n wires
// (n a power of two): the same O(log^2 n) depth family as the bitonic
// network with roughly half the comparators — the second classic
// data-oblivious baseline.
func OddEvenMergeSort(n int) Network {
	if !zorder.IsPow2(n) {
		panic(fmt.Sprintf("sortnet: OddEvenMergeSort requires power-of-two size, got %d", n))
	}
	var nw Network
	for p := 1; p < n; p *= 2 {
		for k := p; k >= 1; k /= 2 {
			var level []Comparator
			for j := k % p; j <= n-1-k; j += 2 * k {
				for i := 0; i <= min(k-1, n-j-k-1); i++ {
					if (i+j)/(2*p) == (i+j+k)/(2*p) {
						level = append(level, Comparator{Lo: i + j, Hi: i + j + k, Asc: true})
					}
				}
			}
			nw = append(nw, level)
		}
	}
	return nw
}

// OddEvenTransposition returns the odd-even transposition (brick) network:
// n levels of neighbor comparators. On a 1-D layout it is the classic
// linear-depth, linear-distance mesh algorithm.
func OddEvenTransposition(n int) Network {
	var nw Network
	for step := 0; step < n; step++ {
		var level []Comparator
		for i := step % 2; i+1 < n; i += 2 {
			level = append(level, Comparator{Lo: i, Hi: i + 1, Asc: true})
		}
		nw = append(nw, level)
	}
	return nw
}

// Run executes the network on the machine over the wires of track t, whose
// register reg holds the elements. Each comparator is realized as one
// message round trip between the two wire PEs (both PEs send their value,
// then locally keep the min or max), so a comparator between PEs at
// Manhattan distance d costs 2d energy. Levels execute as parallel rounds.
func Run(m *machine.Machine, nw Network, t grid.Track, reg machine.Reg, less order.Less) {
	for _, level := range nw {
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for _, c := range level {
				lo, hi := t.At(c.Lo), t.At(c.Hi)
				send(lo, hi, "net.in", m.Get(lo, reg))
				send(hi, lo, "net.in", m.Get(hi, reg))
			}
		})
		for _, c := range level {
			lo, hi := t.At(c.Lo), t.At(c.Hi)
			a := m.Get(lo, reg)      // value at the low wire
			b := m.Get(lo, "net.in") // value received from the high wire
			small, large := a, b
			if less(b, a) {
				small, large = b, a
			}
			if c.Asc {
				m.Set(lo, reg, small)
				m.Set(hi, reg, large)
			} else {
				m.Set(lo, reg, large)
				m.Set(hi, reg, small)
			}
			m.Del(lo, "net.in")
			m.Del(hi, "net.in")
		}
	}
}

// Sort runs the full bitonic sorting network over the first n positions of
// track t. n must be a power of two. With a row-major track on an h x w
// subgrid this is the paper's baseline with Theta(h^2 w + w^2 h log h)
// energy, Theta(log^2 n) depth and Theta(h + w log h) distance (Lemma V.4).
func Sort(m *machine.Machine, t grid.Track, reg machine.Reg, n int, less order.Less) {
	Run(m, Bitonic(n), grid.Slice(t, 0, n), reg, less)
}

// Shearsort sorts the n = side*side elements stored row-major on the square
// region r into snake order (even rows ascending left-to-right, odd rows
// right-to-left), then permutes snake order to row-major. It alternates
// row and column odd-even transposition phases for ceil(log2 side)+1
// rounds — a classic mesh-connected-computer algorithm (Section II-B):
// polynomial Theta(sqrt(n) log n) depth, which is exactly what the paper's
// polylog-depth algorithms improve upon.
func Shearsort(m *machine.Machine, r grid.Rect, reg machine.Reg, less order.Less) {
	if !r.IsSquare() {
		panic(fmt.Sprintf("sortnet: Shearsort requires a square region, got %v", r))
	}
	side := r.H
	rounds := zorder.Log2(zorder.NextPow2(side)) + 1
	rowNet := OddEvenTransposition(side)
	for round := 0; round < rounds; round++ {
		// Sort rows in alternating directions (snake order).
		for row := 0; row < side; row++ {
			tr := rowTrack(r, row)
			if row%2 == 0 {
				Run(m, rowNet, tr, reg, less)
			} else {
				Run(m, rowNet, tr, reg, order.Reverse(less))
			}
		}
		// Sort columns top-to-bottom.
		for col := 0; col < side; col++ {
			Run(m, rowNet, colTrack(r, col), reg, less)
		}
	}
	// One final row phase leaves the snake fully sorted.
	for row := 0; row < side; row++ {
		tr := rowTrack(r, row)
		if row%2 == 0 {
			Run(m, rowNet, tr, reg, less)
		} else {
			Run(m, rowNet, tr, reg, order.Reverse(less))
		}
	}
	// Permute snake order to row-major.
	perm := make([]int, side*side)
	for i := range perm {
		row, col := i/side, i%side
		if row%2 == 1 {
			col = side - 1 - col
		}
		perm[row*side+col] = i
	}
	grid.Route(m, grid.RowMajor(r), reg, grid.RowMajor(r), reg, perm)
}

func rowTrack(r grid.Rect, row int) grid.Track {
	return grid.Slice(grid.RowMajor(r), row*r.W, r.W)
}

func colTrack(r grid.Rect, col int) grid.Track {
	cs := make([]machine.Coord, r.H)
	for i := range cs {
		cs[i] = r.At(i, col)
	}
	return grid.Coords(cs...)
}
