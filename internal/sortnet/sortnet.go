// Package sortnet implements sorting networks mapped onto the Spatial
// Computer Model grid (Section V-B of the paper).
//
// Sorting networks are data-oblivious: for each time step they define a set
// of disjoint index pairs to compare-and-swap, depending only on the input
// size. Mapping each wire to a processor (row-major by default) yields a
// low-depth spatial sorting algorithm, but — as Lemmas V.3 and V.4 show —
// an energy-suboptimal one: Bitonic Sort takes Theta(n^{3/2} log n) energy
// on a square subgrid, a Theta(log n) factor above the permutation lower
// bound, because the recursion eventually degenerates into a 1-D algorithm
// inside single rows.
//
// Execution goes through the machine's batched round API: each network
// level is recorded as one round (two messages per comparator) and flushed,
// which makes levels eligible for shard-parallel execution. Because the
// communication pattern is oblivious to the values, the package also
// supports the machine's counting-only fast path: when
// machine.CountingOnly() reports true, values are kept host-side and each
// comparator issues two Batch.Count messages instead of register traffic,
// leaving Energy, Depth, Distance and Messages bit-identical. Large
// networks stream their levels (see Levels) so a 2^20-wire bitonic network
// never materializes its ~2*10^8 comparators at once.
package sortnet

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/zorder"
)

// Comparator compares wires Lo < Hi at one network step; if Asc, the smaller
// value ends at Lo, otherwise at Hi.
type Comparator struct {
	Lo, Hi int
	Asc    bool
}

// Network is a sorting (or merging) network: a sequence of levels, each a
// set of disjoint comparators executed in parallel. A materialized Network
// is convenient for small sizes and tests; the runners work on the
// streaming Levels form so large networks need not be materialized.
type Network [][]Comparator

// Depth returns the number of levels.
func (nw Network) Depth() int { return len(nw) }

// Comparators returns the total comparator count.
func (nw Network) Comparators() int {
	total := 0
	for _, level := range nw {
		total += len(level)
	}
	return total
}

// Levels adapts the materialized network to the streaming form.
func (nw Network) Levels() Levels {
	return Levels{
		Count: len(nw),
		At: func(level int, buf []Comparator) []Comparator {
			return append(buf[:0], nw[level]...)
		},
	}
}

// Levels is the streaming form of a sorting network: Count levels, each
// generated on demand into a caller-provided buffer. At must be
// deterministic; the runners reuse one buffer across levels, so the
// returned slice is only valid until the next call.
type Levels struct {
	Count int
	At    func(level int, buf []Comparator) []Comparator
}

// Bitonic returns Batcher's bitonic sorting network for n wires (n a power
// of two): O(log^2 n) levels and O(n log^2 n) comparators. For large n
// prefer BitonicLevels, which streams the same network without
// materializing it.
func Bitonic(n int) Network {
	ls := BitonicLevels(n)
	nw := make(Network, ls.Count)
	for i := range nw {
		nw[i] = ls.At(i, nil)
	}
	return nw
}

// BitonicLevels streams Batcher's bitonic sorting network for n wires (n a
// power of two) level by level.
func BitonicLevels(n int) Levels {
	if !zorder.IsPow2(n) {
		panic(fmt.Sprintf("sortnet: Bitonic requires power-of-two size, got %d", n))
	}
	type step struct{ k, j int }
	var steps []step
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			steps = append(steps, step{k, j})
		}
	}
	return Levels{
		Count: len(steps),
		At: func(level int, buf []Comparator) []Comparator {
			s := steps[level]
			buf = buf[:0]
			for i := 0; i < n; i++ {
				l := i ^ s.j
				if l > i {
					buf = append(buf, Comparator{Lo: i, Hi: l, Asc: i&s.k == 0})
				}
			}
			return buf
		},
	}
}

// BitonicMerge returns the merge network that sorts a bitonic sequence of n
// wires — in particular the concatenation of an ascending and a descending
// sorted half: O(log n) levels, n/2 comparators each (Figure 2, Lemma V.3).
func BitonicMerge(n int) Network {
	if !zorder.IsPow2(n) {
		panic(fmt.Sprintf("sortnet: BitonicMerge requires power-of-two size, got %d", n))
	}
	var nw Network
	for j := n >> 1; j > 0; j >>= 1 {
		var level []Comparator
		for i := 0; i < n; i++ {
			l := i ^ j
			if l > i {
				level = append(level, Comparator{Lo: i, Hi: l, Asc: true})
			}
		}
		nw = append(nw, level)
	}
	return nw
}

// OddEvenMergeSort returns Batcher's odd-even mergesort network for n wires
// (n a power of two): the same O(log^2 n) depth family as the bitonic
// network with roughly half the comparators — the second classic
// data-oblivious baseline.
func OddEvenMergeSort(n int) Network {
	if !zorder.IsPow2(n) {
		panic(fmt.Sprintf("sortnet: OddEvenMergeSort requires power-of-two size, got %d", n))
	}
	var nw Network
	for p := 1; p < n; p *= 2 {
		for k := p; k >= 1; k /= 2 {
			var level []Comparator
			for j := k % p; j <= n-1-k; j += 2 * k {
				for i := 0; i <= min(k-1, n-j-k-1); i++ {
					if (i+j)/(2*p) == (i+j+k)/(2*p) {
						level = append(level, Comparator{Lo: i + j, Hi: i + j + k, Asc: true})
					}
				}
			}
			nw = append(nw, level)
		}
	}
	return nw
}

// OddEvenTransposition returns the odd-even transposition (brick) network:
// n levels of neighbor comparators. On a 1-D layout it is the classic
// linear-depth, linear-distance mesh algorithm.
func OddEvenTransposition(n int) Network {
	ls := OddEvenTranspositionLevels(n)
	nw := make(Network, ls.Count)
	for i := range nw {
		nw[i] = ls.At(i, nil)
	}
	return nw
}

// OddEvenTranspositionLevels streams the odd-even transposition network.
func OddEvenTranspositionLevels(n int) Levels {
	return Levels{
		Count: n,
		At: func(step int, buf []Comparator) []Comparator {
			buf = buf[:0]
			for i := step % 2; i+1 < n; i += 2 {
				buf = append(buf, Comparator{Lo: i, Hi: i + 1, Asc: true})
			}
			return buf
		},
	}
}

// TrackRun pairs one track with the comparison order its elements sort by,
// for fused execution of the same network over many disjoint tracks (see
// RunMany). Use order.Reverse(less) to sort a track descending.
type TrackRun struct {
	Track grid.Track
	Less  order.Less
}

// Run executes the network on the machine over the wires of track t, whose
// register reg holds the elements (every track position must hold one).
// Each comparator is realized as one message round trip between the two
// wire PEs (both PEs send their value, then locally keep the min or max),
// so a comparator between PEs at Manhattan distance d costs 2d energy.
// Levels execute as batched parallel rounds; when the machine reports
// CountingOnly, values stay host-side and the rounds are counting-only.
func Run(m *machine.Machine, nw Network, t grid.Track, reg machine.Reg, less order.Less) {
	RunLevels(m, nw.Levels(), t, reg, less)
}

// RunLevels is Run over the streaming network form.
func RunLevels(m *machine.Machine, ls Levels, t grid.Track, reg machine.Reg, less order.Less) {
	RunMany(m, ls, []TrackRun{{Track: t, Less: less}}, reg)
}

// RunMany executes the same network over many pairwise disjoint tracks,
// fusing level i of every track into one batched round. Comparator chains
// never cross tracks, so the resulting metrics are identical to running the
// network on each track sequentially — but the fused rounds are large
// enough for the machine's sharded executor to parallelize, where the
// per-track rounds (e.g. one row of a mesh) would be too small. The tracks
// must be pairwise disjoint and every track position must hold reg.
func RunMany(m *machine.Machine, ls Levels, tracks []TrackRun, reg machine.Reg) {
	if m.CountingOnly() {
		runManyCounting(m, ls, tracks, reg)
		return
	}
	var level []Comparator
	for l := 0; l < ls.Count; l++ {
		level = ls.At(l, level)
		m.SendBatch(func(b *machine.Batch) {
			for _, tr := range tracks {
				for _, c := range level {
					lo, hi := tr.Track.At(c.Lo), tr.Track.At(c.Hi)
					b.Send(lo, hi, "net.in", m.Get(lo, reg))
					b.Send(hi, lo, "net.in", m.Get(hi, reg))
				}
			}
		})
		for _, tr := range tracks {
			for _, c := range level {
				lo, hi := tr.Track.At(c.Lo), tr.Track.At(c.Hi)
				a := m.Get(lo, reg)      // value at the low wire
				b := m.Get(lo, "net.in") // value received from the high wire
				small, large := a, b
				if tr.Less(b, a) {
					small, large = b, a
				}
				if c.Asc {
					m.Set(lo, reg, small)
					m.Set(hi, reg, large)
				} else {
					m.Set(lo, reg, large)
					m.Set(hi, reg, small)
				}
				m.Del(lo, "net.in")
				m.Del(hi, "net.in")
			}
		}
	}
}

// runManyCounting is RunMany on the counting-only fast path: the values
// live in host memory and each comparator is one machine.CountPair — the
// fused form of the two counting messages the register-delivering path
// would send, sound because the comparators of a level are vertex-disjoint.
// Track PEs are resolved to handles once, so the per-comparator work is pure
// arithmetic on the cost counters: no message buffer, no tile lookups. The
// sorted values are placed back into reg at the end. All cost metrics except
// PeakMemory (no "net.in" register ever materializes) are bit-identical.
func runManyCounting(m *machine.Machine, ls Levels, tracks []TrackRun, reg machine.Reg) {
	vals := make([][]machine.Value, len(tracks))
	hs := make([][]machine.PEHandle, len(tracks))
	for ti, tr := range tracks {
		n := tr.Track.Len()
		vals[ti] = make([]machine.Value, n)
		hs[ti] = make([]machine.PEHandle, n)
		for i := 0; i < n; i++ {
			c := tr.Track.At(i)
			vals[ti][i] = m.Get(c, reg)
			hs[ti][i] = m.Handle(c)
		}
	}
	var level []Comparator
	for l := 0; l < ls.Count; l++ {
		level = ls.At(l, level)
		for ti, tr := range tracks {
			vs, h := vals[ti], hs[ti]
			for _, c := range level {
				m.CountPair(h[c.Lo], h[c.Hi])
				a, bv := vs[c.Lo], vs[c.Hi]
				small, large := a, bv
				if tr.Less(bv, a) {
					small, large = bv, a
				}
				if c.Asc {
					vs[c.Lo], vs[c.Hi] = small, large
				} else {
					vs[c.Lo], vs[c.Hi] = large, small
				}
			}
		}
	}
	for ti, tr := range tracks {
		for i, v := range vals[ti] {
			m.Set(tr.Track.At(i), reg, v)
		}
	}
}

// Sort runs the full bitonic sorting network over the first n positions of
// track t. n must be a power of two. With a row-major track on an h x w
// subgrid this is the paper's baseline with Theta(h^2 w + w^2 h log h)
// energy, Theta(log^2 n) depth and Theta(h + w log h) distance (Lemma V.4).
func Sort(m *machine.Machine, t grid.Track, reg machine.Reg, n int, less order.Less) {
	RunLevels(m, BitonicLevels(n), grid.Slice(t, 0, n), reg, less)
}

// Shearsort sorts the n = side*side elements stored row-major on the square
// region r into snake order (even rows ascending left-to-right, odd rows
// right-to-left), then permutes snake order to row-major. It alternates
// row and column odd-even transposition phases for ceil(log2 side)+1
// rounds — a classic mesh-connected-computer algorithm (Section II-B):
// polynomial Theta(sqrt(n) log n) depth, which is exactly what the paper's
// polylog-depth algorithms improve upon. Each phase runs all rows (or all
// columns) fused through RunMany, so one transposition step of the whole
// mesh is a single batched round of side^2 messages.
func Shearsort(m *machine.Machine, r grid.Rect, reg machine.Reg, less order.Less) {
	if !r.IsSquare() {
		panic(fmt.Sprintf("sortnet: Shearsort requires a square region, got %v", r))
	}
	side := r.H
	rounds := zorder.Log2(zorder.NextPow2(side)) + 1
	net := OddEvenTranspositionLevels(side)
	// Snake order: even rows ascend, odd rows descend; columns always ascend.
	rows := make([]TrackRun, side)
	cols := make([]TrackRun, side)
	for i := 0; i < side; i++ {
		rows[i] = TrackRun{Track: rowTrack(r, i), Less: less}
		if i%2 == 1 {
			rows[i].Less = order.Reverse(less)
		}
		cols[i] = TrackRun{Track: colTrack(r, i), Less: less}
	}
	for round := 0; round < rounds; round++ {
		RunMany(m, net, rows, reg)
		RunMany(m, net, cols, reg)
	}
	// One final row phase leaves the snake fully sorted.
	RunMany(m, net, rows, reg)
	// Permute snake order to row-major.
	perm := make([]int, side*side)
	for i := range perm {
		row, col := i/side, i%side
		if row%2 == 1 {
			col = side - 1 - col
		}
		perm[row*side+col] = i
	}
	grid.Route(m, grid.RowMajor(r), reg, grid.RowMajor(r), reg, perm)
}

func rowTrack(r grid.Rect, row int) grid.Track {
	return grid.Slice(grid.RowMajor(r), row*r.W, r.W)
}

func colTrack(r grid.Rect, col int) grid.Track {
	cs := make([]machine.Coord, r.H)
	for i := range cs {
		cs[i] = r.At(i, col)
	}
	return grid.Coords(cs...)
}
