// Package collectives implements the communication collectives of Section IV
// of the paper on the Spatial Computer Model: broadcast without multicasting,
// low-depth reduce, the energy-optimal Z-order parallel scan, and segmented
// variants, together with the naive baselines the paper compares against
// (binary-tree broadcast/reduce/scan over a 1-D layout, sequential scan).
package collectives

import (
	"repro/internal/machine"
)

// Op is a binary operator combining two values. Scan requires associativity;
// Reduce additionally requires commutativity when the array order differs
// from the reduction order (the paper's reduce takes inputs "stored in
// arbitrary order").
type Op func(a, b machine.Value) machine.Value

// Add is the float64 addition operator.
func Add(a, b machine.Value) machine.Value { return a.(float64) + b.(float64) }

// AddInt is the int64 addition operator.
func AddInt(a, b machine.Value) machine.Value { return a.(int64) + b.(int64) }

// MaxFloat returns the larger of two float64 values.
func MaxFloat(a, b machine.Value) machine.Value {
	if a.(float64) >= b.(float64) {
		return a
	}
	return b
}

// MinFloat returns the smaller of two float64 values.
func MinFloat(a, b machine.Value) machine.Value {
	if a.(float64) <= b.(float64) {
		return a
	}
	return b
}

// First returns its left argument. It is associative and turns a segmented
// scan into a segmented broadcast (every element of a segment receives the
// segment's first value).
func First(a, b machine.Value) machine.Value { return a }
