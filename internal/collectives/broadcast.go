package collectives

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/machine"
)

// Broadcast distributes the value in register reg of r.Origin to register
// reg of every PE in r, without multicasting (every transmission is a
// point-to-point message). It implements Section IV-A:
//
//   - on a square w x w region, recurse on quadrants: the origin sends the
//     value to the top-left corners of the other three quadrants, then each
//     quadrant broadcasts recursively (O(w^2) energy);
//   - on an h x 1 column (or 1 x w row), use a binary broadcast tree
//     (O(h log h) energy);
//   - on a general h x w region with h >= w, first run the 1-D broadcast
//     down the first column hitting the top-left corner of each w x w
//     block, then a 2-D broadcast inside each block (and symmetrically for
//     w > h).
//
// Total: O(hw + max(h,w) log max(h,w)) energy, O(log n) depth, O(h+w)
// distance (Lemma IV.1).
func Broadcast(m *machine.Machine, r grid.Rect, reg machine.Reg) {
	switch {
	case r.H <= 0 || r.W <= 0:
		panic(fmt.Sprintf("collectives: Broadcast on empty region %v", r))
	case r.H == 1 && r.W == 1:
		return
	case r.H == 1 || r.W == 1:
		BroadcastTrack(m, grid.RowMajor(r), reg)
	case r.H == r.W:
		broadcast2D(m, r, reg)
	case r.H > r.W:
		// 1-D broadcast down the first column, restricted to block corners.
		blocks := (r.H + r.W - 1) / r.W
		corners := make([]machine.Coord, blocks)
		for b := range corners {
			corners[b] = r.At(b*r.W, 0)
		}
		BroadcastTrack(m, grid.Coords(corners...), reg)
		for b := 0; b < blocks; b++ {
			h := r.W
			if (b+1)*r.W > r.H {
				h = r.H - b*r.W
			}
			sub := grid.Rect{Origin: r.At(b*r.W, 0), H: h, W: r.W}
			if sub.IsSquare() {
				broadcast2D(m, sub, reg)
			} else {
				Broadcast(m, sub, reg)
			}
		}
	default: // r.W > r.H: symmetric, blocks along the first row.
		blocks := (r.W + r.H - 1) / r.H
		corners := make([]machine.Coord, blocks)
		for b := range corners {
			corners[b] = r.At(0, b*r.H)
		}
		BroadcastTrack(m, grid.Coords(corners...), reg)
		for b := 0; b < blocks; b++ {
			w := r.H
			if (b+1)*r.H > r.W {
				w = r.W - b*r.H
			}
			sub := grid.Rect{Origin: r.At(0, b*r.H), H: r.H, W: w}
			if sub.IsSquare() {
				broadcast2D(m, sub, reg)
			} else {
				Broadcast(m, sub, reg)
			}
		}
	}
}

// broadcast2D is the recursive quadrant broadcast on a (near-)square
// region: the origin sends the value to the top-left corners of the other
// quadrants, then each quadrant recurses. Odd sides split into uneven
// halves. Energy recurrence E(w) = 3w/2 + O(1) + 4E(w/2+1) = O(w^2).
//
// The up-to-three corner sends of one recursion level are mutually
// independent, so they go out as one batched round (metrics and trace
// stream are identical to issuing them as singleton Sends — sends never
// advance the sender's clock — but the round is eligible for sharding).
func broadcast2D(m *machine.Machine, r grid.Rect, reg machine.Reg) {
	v := m.Get(r.Origin, reg)
	m.SendBatch(func(b *machine.Batch) {
		for _, q := range halfQuadrants(r) {
			if q.Origin != r.Origin {
				b.Send(r.Origin, q.Origin, reg, v)
			}
		}
	})
	for _, q := range halfQuadrants(r) {
		broadcast2D(m, q, reg)
	}
}

// halfQuadrants splits r into up to four quadrants by halving each side
// (rounding up), omitting empty ones. A 1x1 region yields nothing.
func halfQuadrants(r grid.Rect) []grid.Rect {
	if r.H == 1 && r.W == 1 {
		return nil
	}
	h1, w1 := (r.H+1)/2, (r.W+1)/2
	var out []grid.Rect
	for _, part := range [4][4]int{
		{0, 0, h1, w1},
		{0, w1, h1, r.W - w1},
		{h1, 0, r.H - h1, w1},
		{h1, w1, r.H - h1, r.W - w1},
	} {
		if part[2] > 0 && part[3] > 0 {
			out = append(out, grid.Rect{Origin: r.At(part[0], part[1]), H: part[2], W: part[3]})
		}
	}
	return out
}

// BroadcastTrack broadcasts the value at track position 0 to every position
// of the track using a binary tree over track indices: position lo sends to
// position mid, then both halves recurse. Over an h x 1 column this is the
// paper's 1-D broadcast with O(h log h) energy and O(log h) depth; over the
// row-major track of a square grid it is the naive binary-tree broadcast
// baseline with Theta(n log n) energy (Section IV-C).
func BroadcastTrack(m *machine.Machine, t grid.Track, reg machine.Reg) {
	BroadcastTree(m, t, reg, 2)
}

// BroadcastTree is BroadcastTrack generalized to arity-way trees: the range
// [lo, hi) splits into arity equal chunks (boundaries lo + i*(hi-lo)/arity),
// lo sends to the head of every non-first chunk, and each chunk recurses.
// Arity 2 reproduces BroadcastTrack's binary recursion exactly — same
// messages in the same order. Higher arities trade depth (log_k levels)
// against energy (longer average hop on index-contiguous tracks); the tree
// arity is a mapping knob the tuner searches (internal/tuner).
func BroadcastTree(m *machine.Machine, t grid.Track, reg machine.Reg, arity int) {
	if arity < 2 {
		panic(fmt.Sprintf("collectives: BroadcastTree arity %d < 2", arity))
	}
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo <= 1 {
			return
		}
		for i := 1; i < arity; i++ {
			head := lo + i*(hi-lo)/arity
			prev := lo + (i-1)*(hi-lo)/arity
			if head == prev || head == hi {
				continue // empty chunk (hi-lo < arity)
			}
			m.Send(t.At(lo), reg, t.At(head), reg)
		}
		for i := 0; i < arity; i++ {
			clo := lo + i*(hi-lo)/arity
			chi := lo + (i+1)*(hi-lo)/arity
			if chi > clo {
				rec(clo, chi)
			}
		}
	}
	rec(0, t.Len())
}

// BroadcastChain broadcasts the value at track position 0 along the track as
// a sequential relay chain: O(track length) energy on a Z-order or snake
// track, but Theta(n) depth. It is the "zero parallelism" extreme of the
// depth/energy trade-off.
func BroadcastChain(m *machine.Machine, t grid.Track, reg machine.Reg) {
	for i := 1; i < t.Len(); i++ {
		m.Send(t.At(i-1), reg, t.At(i), reg)
	}
}
