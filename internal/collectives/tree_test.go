package collectives

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
)

// binaryBroadcastRef is the pre-generalization BroadcastTrack recursion,
// kept verbatim as the byte-identity reference for BroadcastTree arity 2.
func binaryBroadcastRef(m *machine.Machine, t grid.Track, reg machine.Reg) {
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo <= 1 {
			return
		}
		mid := (lo + hi) / 2
		m.Send(t.At(lo), reg, t.At(mid), reg)
		rec(lo, mid)
		rec(mid, hi)
	}
	rec(0, t.Len())
}

// binaryReduceRef is the pre-generalization ReduceTrack recursion.
func binaryReduceRef(m *machine.Machine, t grid.Track, reg machine.Reg, op Op) {
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo <= 1 {
			return
		}
		mid := (lo + hi) / 2
		rec(lo, mid)
		rec(mid, hi)
		m.Send(t.At(mid), reg, t.At(lo), "reduce.in")
		v := op(m.Get(t.At(lo), reg), m.Get(t.At(lo), "reduce.in"))
		m.Del(t.At(lo), "reduce.in")
		m.Set(t.At(lo), reg, v)
	}
	rec(0, t.Len())
}

func TestBroadcastTreeArity2MatchesBinary(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 64, 100} {
		r := grid.Rect{H: 1, W: n}
		ref := machine.New()
		ref.Set(r.Origin, "v", 1.5)
		binaryBroadcastRef(ref, grid.RowMajor(r), "v")

		got := machine.New()
		got.Set(r.Origin, "v", 1.5)
		BroadcastTree(got, grid.RowMajor(r), "v", 2)

		if ref.Metrics() != got.Metrics() {
			t.Fatalf("n=%d: arity-2 metrics %v differ from binary reference %v", n, got.Metrics(), ref.Metrics())
		}
		checkAll(t, got, r, "v", 1.5)
	}
}

func TestReduceTreeArity2MatchesBinary(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 64, 100} {
		r := grid.Rect{H: 1, W: n}
		ref := machine.New()
		got := machine.New()
		for i := 0; i < n; i++ {
			ref.Set(r.At(0, i), "v", float64(i))
			got.Set(r.At(0, i), "v", float64(i))
		}
		binaryReduceRef(ref, grid.RowMajor(r), "v", Add)
		ReduceTree(got, grid.RowMajor(r), "v", Add, 2)
		if ref.Metrics() != got.Metrics() {
			t.Fatalf("n=%d: arity-2 metrics %v differ from binary reference %v", n, got.Metrics(), ref.Metrics())
		}
		want := float64(n*(n-1)) / 2
		if v := got.Get(r.Origin, "v"); v != want {
			t.Fatalf("n=%d: reduced to %v, want %v", n, v, want)
		}
	}
}

func TestTreeArityCorrectness(t *testing.T) {
	for _, arity := range []int{2, 3, 4, 8} {
		for _, n := range []int{1, 2, 4, 7, 16, 33, 64} {
			r := grid.Rect{H: 1, W: n}

			b := machine.New()
			b.Set(r.Origin, "v", 9.0)
			BroadcastTree(b, grid.RowMajor(r), "v", arity)
			checkAll(t, b, r, "v", 9.0)

			m := machine.New()
			for i := 0; i < n; i++ {
				m.Set(r.At(0, i), "v", float64(i+1))
			}
			ReduceTree(m, grid.RowMajor(r), "v", Add, arity)
			want := float64(n*(n+1)) / 2
			if v := m.Get(r.Origin, "v"); v != want {
				t.Fatalf("arity=%d n=%d: reduced to %v, want %v", arity, n, v, want)
			}
		}
	}
}

// Higher arity flattens the tree: depth must not increase with fan-out,
// and at the extremes it must strictly decrease (the knob is real).
func TestTreeArityDepthTradeoff(t *testing.T) {
	const n = 256
	r := grid.Rect{H: 1, W: n}
	depth := func(arity int) int64 {
		m := machine.New()
		m.Set(r.Origin, "v", 1.0)
		BroadcastTree(m, grid.RowMajor(r), "v", arity)
		return m.Metrics().Depth
	}
	d2, d4, d8 := depth(2), depth(4), depth(8)
	if d4 > d2 || d8 > d4 {
		t.Fatalf("depth not monotone in arity: d2=%d d4=%d d8=%d", d2, d4, d8)
	}
	if d8 >= d2 {
		t.Fatalf("arity 8 depth %d not below arity 2 depth %d", d8, d2)
	}
}

func TestTreeRejectsBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BroadcastTree arity 1 did not panic")
		}
	}()
	m := machine.New()
	BroadcastTree(m, grid.RowMajor(grid.Rect{H: 1, W: 4}), "v", 1)
}
