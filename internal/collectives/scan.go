package collectives

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/zorder"
)

// Scan computes the inclusive prefix combination of the array stored in
// Z-order in register reg on the square region r, in place: after the call,
// the PE at Z-order position i holds op(A_0, ..., A_i). It returns the total
// op(A_0, ..., A_{n-1}).
//
// This is the energy-optimal scan of Section IV-C: an up-sweep computes
// partial sums along a 4-ary summation tree over the grid's quadrants (the
// root of a height-i subtree is held by the i-th PE in Z-order of the
// subtree's quadrant), and a down-sweep pushes exclusive prefixes back down
// the same tree. Costs (Lemma IV.3): O(n) energy, O(log n) depth, O(sqrt n)
// distance. op must be associative; identity must satisfy
// op(identity, x) = x.
func Scan(m *machine.Machine, r grid.Rect, reg machine.Reg, op Op, identity machine.Value) machine.Value {
	if !r.IsSquare() || !zorder.IsPow2(r.H) {
		panic(fmt.Sprintf("collectives: Scan requires square power-of-two region, got %v", r))
	}
	height := zorder.Log2(r.H)
	upsweep(m, r, height, reg, op)
	root := scanHolder(r, height)
	total := m.Get(root, sumReg(height))
	m.Set(root, downReg(height), identity)
	downsweep(m, r, height, reg, op)
	return total
}

// Register names used by the scan's summation tree are qualified by tree
// height because one PE can hold internal nodes of two different heights
// (e.g. the cell at Z-index 1 of its 2x2 block is also Z-index 5 of its
// 32x32 block). A PE holds at most two node roles for any feasible grid (a
// third would need side >= 2^1029), so the working set stays O(1).
func sumReg(k int) machine.Reg  { return fmt.Sprintf("scan.sum%d", k) }
func downReg(k int) machine.Reg { return fmt.Sprintf("scan.down%d", k) }
func childReg(k, i int) machine.Reg {
	return fmt.Sprintf("scan.s%d.%d", k, i)
}

// scanHolder returns the PE holding the root of the height-k summation
// subtree of subgrid sub: the k-th PE of sub in Z-order.
func scanHolder(sub grid.Rect, k int) machine.Coord {
	if k == 0 {
		return sub.Origin
	}
	return grid.ZOrder(sub).At(k)
}

func upsweep(m *machine.Machine, sub grid.Rect, k int, reg machine.Reg, op Op) {
	if k == 0 {
		m.Set(sub.Origin, sumReg(0), m.Get(sub.Origin, reg))
		return
	}
	q := sub.Quadrants()
	for i := 0; i < 4; i++ {
		upsweep(m, q[i], k-1, reg, op)
	}
	p := scanHolder(sub, k)
	// The four child-root sums travel to p as one batched round: the sends
	// originate at four distinct PEs and none depends on another, so the
	// round is equivalent to four singleton Moves (and shard-eligible).
	m.SendBatch(func(b *machine.Batch) {
		for i := 0; i < 4; i++ {
			b.Send(scanHolder(q[i], k-1), p, childReg(k, i), m.Get(scanHolder(q[i], k-1), sumReg(k-1)))
		}
	})
	for i := 0; i < 4; i++ {
		m.Del(scanHolder(q[i], k-1), sumReg(k-1))
	}
	acc := m.Get(p, childReg(k, 0))
	for i := 1; i < 4; i++ {
		acc = op(acc, m.Get(p, childReg(k, i)))
	}
	m.Set(p, sumReg(k), acc)
}

// downsweep assumes the holder of sub has received the exclusive prefix for
// the subtree in downReg(k). It distributes prefixes to the quadrants and,
// at the leaves, combines them with the array elements in place.
func downsweep(m *machine.Machine, sub grid.Rect, k int, reg machine.Reg, op Op) {
	p := scanHolder(sub, k)
	x := m.Get(p, downReg(k))
	m.Del(p, downReg(k))
	if k == 0 {
		m.Set(p, reg, op(x, m.Get(p, reg)))
		m.Del(p, sumReg(0)) // only live when the whole scan is a single PE
		return
	}
	m.Del(p, sumReg(k))
	q := sub.Quadrants()
	// The four prefix pushes all originate at p and are mutually
	// independent, so they form one batched round; the exclusive prefixes
	// are accumulated host-side first, exactly as the singleton sends did.
	var xs [4]machine.Value
	for i := 0; i < 4; i++ {
		xs[i] = x
		if i < 3 {
			x = op(x, m.Get(p, childReg(k, i)))
		}
		m.Del(p, childReg(k, i))
	}
	m.SendBatch(func(b *machine.Batch) {
		for i := 0; i < 4; i++ {
			b.Send(p, scanHolder(q[i], k-1), downReg(k-1), xs[i])
		}
	})
	for i := 0; i < 4; i++ {
		downsweep(m, q[i], k-1, reg, op)
	}
}

// ScanTrack computes the inclusive prefix combination of the array stored at
// the positions of track t, in place, using the classic binary-tree
// (Blelloch) up-sweep/down-sweep over track indices. The track length must
// be a power of two.
//
// Over a row-major layout this is the naive 1-D scan baseline of Section
// IV-C with Theta(n log n) energy and O(log n) depth; over a single column
// it matches the 1-D tree bounds.
func ScanTrack(m *machine.Machine, t grid.Track, reg machine.Reg, op Op, identity machine.Value) machine.Value {
	n := t.Len()
	if !zorder.IsPow2(n) {
		panic(fmt.Sprintf("collectives: ScanTrack requires power-of-two length, got %d", n))
	}
	if n == 1 {
		return m.Get(t.At(0), reg)
	}
	// Keep the original elements so the exclusive result can be turned
	// into an inclusive one locally.
	for i := 0; i < n; i++ {
		c := t.At(i)
		m.Set(c, "scan.orig", m.Get(c, reg))
	}
	// Up-sweep: in-place partial sums, one register per PE.
	for d := 1; d < n; d *= 2 {
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for k := 0; k+2*d <= n; k += 2 * d {
				send(t.At(k+d-1), t.At(k+2*d-1), "scan.in", m.Get(t.At(k+d-1), reg))
			}
		})
		for k := 0; k+2*d <= n; k += 2 * d {
			c := t.At(k + 2*d - 1)
			m.Set(c, reg, op(m.Get(c, "scan.in"), m.Get(c, reg)))
			m.Del(c, "scan.in")
		}
	}
	total := m.Get(t.At(n-1), reg)
	m.Set(t.At(n-1), reg, identity)
	// Down-sweep: left child receives the parent prefix, right child
	// receives op(parent prefix, left subtree sum).
	for d := n / 2; d >= 1; d /= 2 {
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for k := 0; k+2*d <= n; k += 2 * d {
				l, rr := t.At(k+d-1), t.At(k+2*d-1)
				send(l, rr, "scan.t", m.Get(l, reg))
				send(rr, l, "scan.p", m.Get(rr, reg))
			}
		})
		for k := 0; k+2*d <= n; k += 2 * d {
			l, rr := t.At(k+d-1), t.At(k+2*d-1)
			m.Set(l, reg, m.Get(l, "scan.p"))
			m.Del(l, "scan.p")
			m.Set(rr, reg, op(m.Get(rr, reg), m.Get(rr, "scan.t")))
			m.Del(rr, "scan.t")
		}
	}
	// Convert the exclusive prefixes to inclusive ones locally.
	for i := 0; i < n; i++ {
		c := t.At(i)
		m.Set(c, reg, op(m.Get(c, reg), m.Get(c, "scan.orig")))
		m.Del(c, "scan.orig")
	}
	return total
}

// ScanSequential computes the inclusive prefix combination along track t
// with a sequential relay chain: O(sum of consecutive track distances)
// energy — Theta(n) on Z-order and row-major layouts — but Theta(n) depth.
// It is the "minimum energy, zero parallelism" baseline of Section IV-C.
func ScanSequential(m *machine.Machine, t grid.Track, reg machine.Reg, op Op) machine.Value {
	n := t.Len()
	for i := 1; i < n; i++ {
		prev, cur := t.At(i-1), t.At(i)
		m.Send(prev, reg, cur, "scan.prev")
		m.Set(cur, reg, op(m.Get(cur, "scan.prev"), m.Get(cur, reg)))
		m.Del(cur, "scan.prev")
	}
	return m.Get(t.At(n-1), reg)
}

// Seg is the element type of segmented scans: a value plus a flag marking
// the first element of a segment.
type Seg struct {
	Val  machine.Value
	Head bool
}

// Segmented lifts an associative operator to the segmented operator of
// Section IV-C ("for any associative operator, we can define a segmented
// associative operator that has the logic of the segments built-in"): a
// segment head absorbs everything to its left. The result is associative
// but not commutative.
func Segmented(op Op) Op {
	return func(a, b machine.Value) machine.Value {
		x, y := a.(Seg), b.(Seg)
		if y.Head {
			return y
		}
		return Seg{Val: op(x.Val, y.Val), Head: x.Head}
	}
}

// SegmentedScan computes, in place, inclusive per-segment prefix
// combinations of the array stored in Z-order in register reg on r, where a
// true value in register headReg marks the first element of each segment.
// Position 0 is treated as a segment head implicitly. Same costs as Scan.
func SegmentedScan(m *machine.Machine, r grid.Rect, reg, headReg machine.Reg, op Op, identity machine.Value) {
	t := grid.ZOrder(r)
	n := t.Len()
	for i := 0; i < n; i++ {
		c := t.At(i)
		head := i == 0
		if v, ok := m.Lookup(c, headReg); ok && v.(bool) {
			head = true
		}
		m.Set(c, reg, Seg{Val: m.Get(c, reg), Head: head})
	}
	Scan(m, r, reg, Segmented(op), Seg{Val: identity})
	for i := 0; i < n; i++ {
		c := t.At(i)
		m.Set(c, reg, m.Get(c, reg).(Seg).Val)
	}
}

// SegmentedScanTrack is SegmentedScan along an arbitrary track, realized
// with the binary-tree ScanTrack: the element order is the track's, so
// algorithms whose data is sorted along a non-Z-order curve (see
// spmv.MultiplyMapped) scan in the order they sorted in. Same costs as
// ScanTrack.
func SegmentedScanTrack(m *machine.Machine, t grid.Track, reg, headReg machine.Reg, op Op, identity machine.Value) {
	n := t.Len()
	for i := 0; i < n; i++ {
		c := t.At(i)
		head := i == 0
		if v, ok := m.Lookup(c, headReg); ok && v.(bool) {
			head = true
		}
		m.Set(c, reg, Seg{Val: m.Get(c, reg), Head: head})
	}
	ScanTrack(m, t, reg, Segmented(op), Seg{Val: identity})
	for i := 0; i < n; i++ {
		c := t.At(i)
		m.Set(c, reg, m.Get(c, reg).(Seg).Val)
	}
}
