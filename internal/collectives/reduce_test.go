package collectives

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
)

func fillRandom(m *machine.Machine, r grid.Rect, reg machine.Reg, rng *rand.Rand) []float64 {
	vals := make([]float64, 0, r.Size())
	for row := 0; row < r.H; row++ {
		for col := 0; col < r.W; col++ {
			v := rng.Float64()*100 - 50
			m.Set(r.At(row, col), reg, v)
			vals = append(vals, v)
		}
	}
	return vals
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if -a > scale {
		scale = -a
	}
	return d < 1e-9*scale
}

func TestReduceSumSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, side := range []int{1, 2, 4, 8, 16} {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		vals := fillRandom(m, r, "v", rng)
		want := 0.0
		for _, v := range vals {
			want += v
		}
		Reduce(m, r, "v", Add)
		if got := m.Get(r.Origin, "v").(float64); !almostEqual(got, want) {
			t.Errorf("side %d: reduce sum %v, want %v", side, got, want)
		}
	}
}

func TestReduceRectangles(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shapes := [][2]int{{1, 8}, {8, 1}, {4, 16}, {16, 4}, {4, 12}, {12, 4}, {2, 4}}
	for _, s := range shapes {
		m := machine.New()
		r := grid.Rect{Origin: machine.Coord{Row: -2, Col: 9}, H: s[0], W: s[1]}
		vals := fillRandom(m, r, "v", rng)
		want := 0.0
		for _, v := range vals {
			want += v
		}
		Reduce(m, r, "v", Add)
		if got := m.Get(r.Origin, "v").(float64); !almostEqual(got, want) {
			t.Errorf("%v: reduce sum %v, want %v", r, got, want)
		}
	}
}

func TestReduceMax(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := machine.New()
	r := grid.Square(machine.Coord{}, 8)
	vals := fillRandom(m, r, "v", rng)
	want := vals[0]
	for _, v := range vals {
		if v > want {
			want = v
		}
	}
	Reduce(m, r, "v", MaxFloat)
	if got := m.Get(r.Origin, "v").(float64); got != want {
		t.Errorf("reduce max %v, want %v", got, want)
	}
}

func TestReduceEnergyLinearOnSquare(t *testing.T) {
	// Corollary IV.2 / Section IV-B: O(n) energy on a square subgrid —
	// the Theta(log n) improvement over the binary-tree reduce.
	rng := rand.New(rand.NewSource(10))
	for _, side := range []int{8, 16, 32, 64} {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		fillRandom(m, r, "v", rng)
		Reduce(m, r, "v", Add)
		n := int64(side * side)
		if e := m.Metrics().Energy; e > 4*n {
			t.Errorf("side %d: reduce energy %d > 4n", side, e)
		}
	}
}

func TestReduceBeatsTreeByGrowingFactor(t *testing.T) {
	prev := 0.0
	rng := rand.New(rand.NewSource(11))
	for _, side := range []int{8, 16, 32, 64} {
		r := grid.Square(machine.Coord{}, side)

		m1 := machine.New()
		fillRandom(m1, r, "v", rng)
		Reduce(m1, r, "v", Add)

		m2 := machine.New()
		fillRandom(m2, r, "v", rng)
		ReduceTrack(m2, grid.RowMajor(r), "v", Add)

		ratio := float64(m2.Metrics().Energy) / float64(m1.Metrics().Energy)
		if ratio <= prev {
			t.Errorf("side %d: tree/2D reduce energy ratio %.2f did not grow", side, ratio)
		}
		prev = ratio
	}
}

func TestReduceTrackCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := machine.New()
	r := grid.Square(machine.Coord{}, 4)
	vals := fillRandom(m, r, "v", rng)
	want := 0.0
	for _, v := range vals {
		want += v
	}
	ReduceTrack(m, grid.RowMajor(r), "v", Add)
	if got := m.Get(r.Origin, "v").(float64); !almostEqual(got, want) {
		t.Errorf("ReduceTrack sum %v, want %v", got, want)
	}
}

func TestAllReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := machine.New()
	r := grid.Square(machine.Coord{}, 8)
	vals := fillRandom(m, r, "v", rng)
	want := 0.0
	for _, v := range vals {
		want += v
	}
	AllReduce(m, r, "v", Add)
	for row := 0; row < r.H; row++ {
		for col := 0; col < r.W; col++ {
			if got := m.Get(r.At(row, col), "v").(float64); !almostEqual(got, want) {
				t.Fatalf("PE (%d,%d): allreduce %v, want %v", row, col, got, want)
			}
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	m := machine.New()
	src := grid.Square(machine.Coord{}, 4)
	scratch := src.RightOf(4, 4)
	srcT := grid.ZOrder(src)
	dstT := grid.RowMajor(scratch)
	n := 16
	for i := 0; i < n; i++ {
		m.Set(srcT.At(i), "v", i*i)
	}
	Gather(m, srcT, "v", dstT, "g")
	for i := 0; i < n; i++ {
		if m.Has(srcT.At(i), "v") {
			t.Fatal("Gather left source registers live")
		}
		if got := m.Get(dstT.At(i), "g"); got != i*i {
			t.Fatalf("gathered[%d] = %v", i, got)
		}
	}
	Scatter(m, dstT, "g", srcT, "v")
	for i := 0; i < n; i++ {
		if got := m.Get(srcT.At(i), "v"); got != i*i {
			t.Fatalf("scattered[%d] = %v", i, got)
		}
	}
	if d := m.Metrics().Depth; d > 2 {
		t.Errorf("gather+scatter depth %d, want <= 2", d)
	}
}
