package collectives

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/machine"
)

// Reduce combines the values in register reg of every PE of r with the
// associative, commutative operator op, leaving the result in register reg
// of r.Origin. It uses the reverse communication pattern of Broadcast
// (Corollary IV.2): O(hw + max(h,w) log max(h,w)) energy, O(log n) depth,
// O(h+w) distance. On a square subgrid this improves the energy of a
// logarithmic-depth reduce by a Theta(log n) factor over the binary-tree
// baseline (ReduceTrack).
func Reduce(m *machine.Machine, r grid.Rect, reg machine.Reg, op Op) {
	switch {
	case r.H <= 0 || r.W <= 0:
		panic(fmt.Sprintf("collectives: Reduce on empty region %v", r))
	case r.H == 1 && r.W == 1:
		return
	case r.H == 1 || r.W == 1:
		ReduceTrack(m, grid.RowMajor(r), reg, op)
	case r.H == r.W:
		reduce2D(m, r, reg, op)
	case r.H > r.W:
		blocks := (r.H + r.W - 1) / r.W
		corners := make([]machine.Coord, blocks)
		for b := 0; b < blocks; b++ {
			h := r.W
			if (b+1)*r.W > r.H {
				h = r.H - b*r.W
			}
			sub := grid.Rect{Origin: r.At(b*r.W, 0), H: h, W: r.W}
			if sub.IsSquare() {
				reduce2D(m, sub, reg, op)
			} else {
				Reduce(m, sub, reg, op)
			}
			corners[b] = sub.Origin
		}
		ReduceTrack(m, grid.Coords(corners...), reg, op)
	default: // r.W > r.H
		blocks := (r.W + r.H - 1) / r.H
		corners := make([]machine.Coord, blocks)
		for b := 0; b < blocks; b++ {
			w := r.H
			if (b+1)*r.H > r.W {
				w = r.W - b*r.H
			}
			sub := grid.Rect{Origin: r.At(0, b*r.H), H: r.H, W: w}
			if sub.IsSquare() {
				reduce2D(m, sub, reg, op)
			} else {
				Reduce(m, sub, reg, op)
			}
			corners[b] = sub.Origin
		}
		ReduceTrack(m, grid.Coords(corners...), reg, op)
	}
}

// reduce2D reduces a (near-)square region to its origin by reversing the
// recursive quadrant broadcast. Odd sides split into uneven halves.
func reduce2D(m *machine.Machine, r grid.Rect, reg machine.Reg, op Op) {
	quads := halfQuadrants(r)
	if len(quads) == 0 {
		return
	}
	for _, q := range quads {
		reduce2D(m, q, reg, op)
	}
	acc := m.Get(r.Origin, reg)
	for _, q := range quads {
		if q.Origin == r.Origin {
			continue
		}
		m.Send(q.Origin, reg, r.Origin, "reduce.in")
		acc = op(acc, m.Get(r.Origin, "reduce.in"))
	}
	m.Del(r.Origin, "reduce.in")
	m.Set(r.Origin, reg, acc)
}

// ReduceTrack reduces the values at all track positions to position 0 with a
// binary tree over track indices (the reverse of BroadcastTrack). Over the
// row-major track of a square grid this is the Theta(n log n)-energy
// logarithmic-depth baseline the paper improves on.
func ReduceTrack(m *machine.Machine, t grid.Track, reg machine.Reg, op Op) {
	ReduceTree(m, t, reg, op, 2)
}

// ReduceTree is ReduceTrack generalized to arity-way trees (the reverse of
// BroadcastTree): each of the arity chunks of [lo, hi) reduces recursively,
// then every non-first chunk head sends its partial result to lo, which
// folds them in chunk order. Arity 2 reproduces ReduceTrack's binary
// recursion exactly — same messages in the same order.
func ReduceTree(m *machine.Machine, t grid.Track, reg machine.Reg, op Op, arity int) {
	if arity < 2 {
		panic(fmt.Sprintf("collectives: ReduceTree arity %d < 2", arity))
	}
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if hi-lo <= 1 {
			return
		}
		for i := 0; i < arity; i++ {
			clo := lo + i*(hi-lo)/arity
			chi := lo + (i+1)*(hi-lo)/arity
			if chi > clo {
				rec(clo, chi)
			}
		}
		for i := 1; i < arity; i++ {
			head := lo + i*(hi-lo)/arity
			prev := lo + (i-1)*(hi-lo)/arity
			if head == prev {
				continue // empty chunk (hi-lo < arity)
			}
			m.Send(t.At(head), reg, t.At(lo), "reduce.in")
			v := op(m.Get(t.At(lo), reg), m.Get(t.At(lo), "reduce.in"))
			m.Del(t.At(lo), "reduce.in")
			m.Set(t.At(lo), reg, v)
		}
	}
	rec(0, t.Len())
}

// AllReduce combines the values of register reg across r with op and leaves
// the result in register reg of every PE: a Reduce followed by a Broadcast.
func AllReduce(m *machine.Machine, r grid.Rect, reg machine.Reg, op Op) {
	Reduce(m, r, reg, op)
	Broadcast(m, r, reg)
}
