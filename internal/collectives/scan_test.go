package collectives

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/machine"
)

// placeZOrder puts vals onto the Z-order track of a square region big
// enough to hold them and returns the region.
func placeZOrder(m *machine.Machine, vals []float64) grid.Rect {
	side := 1
	for side*side < len(vals) {
		side *= 2
	}
	r := grid.Square(machine.Coord{}, side)
	tr := grid.ZOrder(r)
	for i, v := range vals {
		m.Set(tr.At(i), "v", v)
	}
	return r
}

func prefixSums(vals []float64) []float64 {
	out := make([]float64, len(vals))
	acc := 0.0
	for i, v := range vals {
		acc += v
		out[i] = acc
	}
	return out
}

func TestScanMatchesSequentialPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 4, 16, 64, 256, 1024} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()*10 - 5
		}
		m := machine.New()
		r := placeZOrder(m, vals)
		total := Scan(m, r, "v", Add, 0.0)
		want := prefixSums(vals)
		tr := grid.ZOrder(r)
		for i := range vals {
			if got := m.Get(tr.At(i), "v").(float64); !almostEqual(got, want[i]) {
				t.Fatalf("n=%d: prefix[%d] = %v, want %v", n, i, got, want[i])
			}
		}
		if !almostEqual(total.(float64), want[n-1]) {
			t.Errorf("n=%d: total %v, want %v", n, total, want[n-1])
		}
	}
}

func TestScanQuick(t *testing.T) {
	f := func(raw []int8) bool {
		n := 1
		for n < len(raw) || n < 4 {
			n *= 4
		}
		vals := make([]float64, n)
		for i, v := range raw {
			vals[i] = float64(v)
		}
		m := machine.New()
		r := placeZOrder(m, vals)
		Scan(m, r, "v", Add, 0.0)
		want := prefixSums(vals)
		tr := grid.ZOrder(r)
		for i := range vals {
			if !almostEqual(m.Get(tr.At(i), "v").(float64), want[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestScanNonCommutativeOp(t *testing.T) {
	// Scan must respect array order for associative but non-commutative
	// operators. Use string concatenation.
	concat := func(a, b machine.Value) machine.Value { return a.(string) + b.(string) }
	m := machine.New()
	r := grid.Square(machine.Coord{}, 4)
	tr := grid.ZOrder(r)
	letters := "abcdefghijklmnop"
	for i := 0; i < 16; i++ {
		m.Set(tr.At(i), "v", string(letters[i]))
	}
	Scan(m, r, "v", concat, "")
	for i := 0; i < 16; i++ {
		want := letters[:i+1]
		if got := m.Get(tr.At(i), "v").(string); got != want {
			t.Fatalf("prefix[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestScanEnergyLinear(t *testing.T) {
	// Lemma IV.3: O(n) energy. Verify energy/n is bounded by a constant
	// across two orders of magnitude.
	for _, side := range []int{4, 8, 16, 32, 64} {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.ZOrder(r)
		for i := 0; i < side*side; i++ {
			m.Set(tr.At(i), "v", 1.0)
		}
		Scan(m, r, "v", Add, 0.0)
		n := int64(side * side)
		if e := m.Metrics().Energy; e > 8*n {
			t.Errorf("side %d: scan energy %d > 8n = %d", side, e, 8*n)
		}
	}
}

func TestScanDepthLogarithmic(t *testing.T) {
	for _, side := range []int{4, 8, 16, 32, 64} {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.ZOrder(r)
		for i := 0; i < side*side; i++ {
			m.Set(tr.At(i), "v", 1.0)
		}
		Scan(m, r, "v", Add, 0.0)
		logn := 0
		for s := side * side; s > 1; s /= 2 {
			logn++
		}
		// Up-sweep + down-sweep: at most a small constant per tree level.
		if d := m.Metrics().Depth; d > int64(3*logn) {
			t.Errorf("side %d: scan depth %d > 3 log n = %d", side, d, 3*logn)
		}
	}
}

func TestScanDistanceSqrtN(t *testing.T) {
	for _, side := range []int{8, 16, 32, 64} {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.ZOrder(r)
		for i := 0; i < side*side; i++ {
			m.Set(tr.At(i), "v", 1.0)
		}
		Scan(m, r, "v", Add, 0.0)
		if d := m.Metrics().Distance; d > int64(16*side) {
			t.Errorf("side %d: scan distance %d > 16*sqrt(n)", side, d)
		}
	}
}

func TestScanMemoryConstant(t *testing.T) {
	// The per-PE working set must not grow with n (O(1) memory model).
	peak := func(side int) int {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.ZOrder(r)
		for i := 0; i < side*side; i++ {
			m.Set(tr.At(i), "v", 1.0)
		}
		Scan(m, r, "v", Add, 0.0)
		return m.Metrics().PeakMemory
	}
	// A PE can serve as summation-tree node for two heights (first
	// possible at height 5, i.e. side 32), so the peak saturates there: it
	// must be identical for side 64 and side 128 and a small constant.
	p64, p128 := peak(64), peak(128)
	if p64 != p128 {
		t.Errorf("scan peak memory still grows: side 64 -> %d, side 128 -> %d", p64, p128)
	}
	if p128 > 13 {
		t.Errorf("scan peak memory %d not a small constant", p128)
	}
}

func TestScanCleansScratchRegisters(t *testing.T) {
	m := machine.New()
	r := grid.Square(machine.Coord{}, 8)
	tr := grid.ZOrder(r)
	for i := 0; i < 64; i++ {
		m.Set(tr.At(i), "v", 1.0)
	}
	Scan(m, r, "v", Add, 0.0)
	for i := 0; i < 64; i++ {
		if regs := m.Registers(tr.At(i)); len(regs) != 1 || regs[0] != "v" {
			t.Fatalf("PE %v has leftover registers %v", tr.At(i), regs)
		}
	}
}

func TestScanTrackMatchesPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 8, 64, 256} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()*4 - 2
		}
		m := machine.New()
		side := 1
		for side*side < n {
			side *= 2
		}
		r := grid.Square(machine.Coord{}, side)
		tr := grid.Slice(grid.RowMajor(r), 0, n)
		for i, v := range vals {
			m.Set(tr.At(i), "v", v)
		}
		ScanTrack(m, tr, "v", Add, 0.0)
		want := prefixSums(vals)
		for i := range vals {
			if got := m.Get(tr.At(i), "v").(float64); !almostEqual(got, want[i]) {
				t.Fatalf("n=%d: ScanTrack prefix[%d] = %v, want %v", n, i, got, want[i])
			}
		}
	}
}

func TestScanTrackNonCommutative(t *testing.T) {
	concat := func(a, b machine.Value) machine.Value { return a.(string) + b.(string) }
	m := machine.New()
	r := grid.Square(machine.Coord{}, 4)
	tr := grid.RowMajor(r)
	letters := "abcdefghijklmnop"
	for i := 0; i < 16; i++ {
		m.Set(tr.At(i), "v", string(letters[i]))
	}
	ScanTrack(m, tr, "v", concat, "")
	for i := 0; i < 16; i++ {
		if got := m.Get(tr.At(i), "v").(string); got != letters[:i+1] {
			t.Fatalf("prefix[%d] = %q, want %q", i, got, letters[:i+1])
		}
	}
}

func TestScanSequentialMatchesPrefixAndCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 256
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	m := machine.New()
	r := placeZOrder(m, vals)
	tr := grid.ZOrder(r)
	ScanSequential(m, tr, "v", Add)
	want := prefixSums(vals)
	for i := range vals {
		if got := m.Get(tr.At(i), "v").(float64); !almostEqual(got, want[i]) {
			t.Fatalf("prefix[%d] = %v, want %v", i, got, want[i])
		}
	}
	got := m.Metrics()
	if got.Depth != int64(n-1) {
		t.Errorf("sequential scan depth %d, want n-1", got.Depth)
	}
	if got.Energy > int64(3*n) {
		t.Errorf("sequential scan energy %d, want O(n) on Z-order track", got.Energy)
	}
}

func TestScanBaselineEnergyOrdering(t *testing.T) {
	// Section IV-C: tree scan has an extra Theta(log n) energy factor; the
	// 2-D Z-order scan and sequential scan are linear.
	run := func(side int, f func(m *machine.Machine, r grid.Rect)) int64 {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.ZOrder(r)
		for i := 0; i < side*side; i++ {
			m.Set(tr.At(i), "v", 1.0)
		}
		f(m, r)
		return m.Metrics().Energy
	}
	zscan := func(m *machine.Machine, r grid.Rect) { Scan(m, r, "v", Add, 0.0) }
	tscan := func(m *machine.Machine, r grid.Rect) { ScanTrack(m, grid.RowMajor(r), "v", Add, 0.0) }
	sscan := func(m *machine.Machine, r grid.Rect) { ScanSequential(m, grid.ZOrder(r), "v", Add) }
	// The tree/z-order energy ratio must grow with n (Theta(log n) gap).
	prev := 0.0
	for _, side := range []int{8, 16, 32, 64} {
		ratio := float64(run(side, tscan)) / float64(run(side, zscan))
		if ratio <= prev {
			t.Errorf("side %d: tree/z-order scan energy ratio %.2f did not grow (prev %.2f)", side, ratio, prev)
		}
		prev = ratio
	}
	// The sequential scan stays within a constant of the z-order scan.
	if seqE, zE := run(32, sscan), run(32, zscan); seqE > 2*zE {
		t.Errorf("sequential scan energy %d should be comparable to z-order scan %d", seqE, zE)
	}
}

func TestSegmentedScan(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 256
	vals := make([]float64, n)
	heads := make([]bool, n)
	for i := range vals {
		vals[i] = rng.Float64()*6 - 3
		heads[i] = rng.Intn(5) == 0
	}
	heads[0] = true
	m := machine.New()
	r := placeZOrder(m, vals)
	tr := grid.ZOrder(r)
	for i, h := range heads {
		m.Set(tr.At(i), "head", h)
	}
	SegmentedScan(m, r, "v", "head", Add, 0.0)
	acc := 0.0
	for i := range vals {
		if heads[i] {
			acc = 0
		}
		acc += vals[i]
		if got := m.Get(tr.At(i), "v").(float64); !almostEqual(got, acc) {
			t.Fatalf("segmented prefix[%d] = %v, want %v", i, got, acc)
		}
	}
}

func TestSegmentedScanQuick(t *testing.T) {
	f := func(raw []int8, headBits []bool) bool {
		n := 4
		for n < len(raw) {
			n *= 4
		}
		vals := make([]float64, n)
		heads := make([]bool, n)
		for i := range raw {
			vals[i] = float64(raw[i])
		}
		for i := range heads {
			if i < len(headBits) {
				heads[i] = headBits[i]
			}
		}
		m := machine.New()
		r := placeZOrder(m, vals)
		tr := grid.ZOrder(r)
		for i, h := range heads {
			m.Set(tr.At(i), "head", h)
		}
		SegmentedScan(m, r, "v", "head", Add, 0.0)
		acc := 0.0
		for i := range vals {
			if heads[i] || i == 0 {
				acc = 0
			}
			acc += vals[i]
			if !almostEqual(m.Get(tr.At(i), "v").(float64), acc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSegmentedBroadcastViaFirstOp(t *testing.T) {
	// Segmented scan with the First operator copies each segment's first
	// value to the whole segment (used by SpMV's segmented broadcast).
	m := machine.New()
	n := 64
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	r := placeZOrder(m, vals)
	tr := grid.ZOrder(r)
	headAt := map[int]bool{0: true, 5: true, 17: true, 40: true}
	for i := 0; i < n; i++ {
		m.Set(tr.At(i), "head", headAt[i])
	}
	SegmentedScan(m, r, "v", "head", First, 0.0)
	cur := 0.0
	for i := 0; i < n; i++ {
		if headAt[i] {
			cur = float64(i)
		}
		if got := m.Get(tr.At(i), "v").(float64); got != cur {
			t.Fatalf("segmented broadcast[%d] = %v, want %v", i, got, cur)
		}
	}
}

func TestSegmentedOpAssociative(t *testing.T) {
	// Property: the segmented operator is associative for arbitrary
	// values/flags.
	op := Segmented(Add)
	f := func(a, b, c int8, ha, hb, hc bool) bool {
		x := Seg{Val: float64(a), Head: ha}
		y := Seg{Val: float64(b), Head: hb}
		z := Seg{Val: float64(c), Head: hc}
		l := op(op(x, y), z).(Seg)
		r := op(x, op(y, z)).(Seg)
		return l.Head == r.Head && almostEqual(l.Val.(float64), r.Val.(float64))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequentialScanHilbertVsZOrderLayout(t *testing.T) {
	// Layout ablation: the sequential scan over the Hilbert track costs
	// exactly n-1 energy (unit steps); over the Z-order track it pays the
	// curve's constant (~5n/3). Both compute the same prefix sums.
	rng := rand.New(rand.NewSource(55))
	side := 16
	n := side * side
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	run := func(tr grid.Track) (last float64, energy int64) {
		m := machine.New()
		for i := 0; i < n; i++ {
			m.Set(tr.At(i), "v", vals[i])
		}
		ScanSequential(m, tr, "v", Add)
		return m.Get(tr.At(n-1), "v").(float64), m.Metrics().Energy
	}
	r := grid.Square(machine.Coord{}, side)
	hLast, hE := run(grid.Hilbert(r))
	zLast, zE := run(grid.ZOrder(r))
	if !almostEqual(hLast, zLast) {
		t.Errorf("layouts disagree: %v vs %v", hLast, zLast)
	}
	if hE != int64(n-1) {
		t.Errorf("hilbert sequential scan energy %d, want n-1 = %d", hE, n-1)
	}
	if zE <= hE {
		t.Errorf("z-order sequential energy %d not above hilbert %d", zE, hE)
	}
}
