package collectives

import (
	"repro/internal/grid"
	"repro/internal/machine"
)

// Gather moves the values in register srcReg of the PEs of src into register
// dstReg of the first src.Len() positions of dst, one direct message per
// element, all in one parallel round. Gathering k elements from a region of
// diameter D costs O(k*(D + D')) energy, O(1) depth and O(D + D') distance,
// where D' is the diameter of the destination.
func Gather(m *machine.Machine, src grid.Track, srcReg machine.Reg, dst grid.Track, dstReg machine.Reg) {
	copyTrack(m, src, srcReg, dst, dstReg, src.Len())
}

// Scatter is the inverse of Gather: it distributes the first dst.Len()
// values from src back onto the positions of dst.
func Scatter(m *machine.Machine, src grid.Track, srcReg machine.Reg, dst grid.Track, dstReg machine.Reg) {
	copyTrack(m, src, srcReg, dst, dstReg, dst.Len())
}

func copyTrack(m *machine.Machine, src grid.Track, srcReg machine.Reg, dst grid.Track, dstReg machine.Reg, n int) {
	vals := make([]machine.Value, n)
	for i := 0; i < n; i++ {
		vals[i] = m.Get(src.At(i), srcReg)
		m.Del(src.At(i), srcReg)
	}
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < n; i++ {
			send(src.At(i), dst.At(i), dstReg, vals[i])
		}
	})
}
