package collectives

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
)

func checkAll(t *testing.T, m *machine.Machine, r grid.Rect, reg machine.Reg, want machine.Value) {
	t.Helper()
	for row := 0; row < r.H; row++ {
		for col := 0; col < r.W; col++ {
			if got := m.Get(r.At(row, col), reg); got != want {
				t.Fatalf("PE (%d,%d): got %v, want %v", row, col, got, want)
			}
		}
	}
}

func TestBroadcastSquare(t *testing.T) {
	for _, side := range []int{1, 2, 4, 8, 16} {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		m.Set(r.Origin, "v", 3.25)
		Broadcast(m, r, "v")
		checkAll(t, m, r, "v", 3.25)
	}
}

func TestBroadcastRectangles(t *testing.T) {
	shapes := [][2]int{{1, 16}, {16, 1}, {4, 16}, {16, 4}, {8, 2}, {2, 8}, {4, 12}, {12, 4}}
	for _, s := range shapes {
		m := machine.New()
		r := grid.Rect{Origin: machine.Coord{Row: 3, Col: -5}, H: s[0], W: s[1]}
		m.Set(r.Origin, "v", 7)
		Broadcast(m, r, "v")
		checkAll(t, m, r, "v", 7)
	}
}

func TestBroadcast2DEnergyLinear(t *testing.T) {
	// Lemma IV.1: on a square w x w subgrid the broadcast is O(w^2) = O(n)
	// energy, i.e. no log factor. Check energy/n stays below a constant.
	for _, side := range []int{4, 8, 16, 32, 64} {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		m.Set(r.Origin, "v", 1)
		Broadcast(m, r, "v")
		n := int64(side * side)
		if e := m.Metrics().Energy; e > 4*n {
			t.Errorf("side %d: broadcast energy %d > 4n = %d", side, e, 4*n)
		}
	}
}

func TestBroadcastDepthLogarithmic(t *testing.T) {
	for _, side := range []int{4, 8, 16, 32, 64} {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		m.Set(r.Origin, "v", 1)
		Broadcast(m, r, "v")
		// Depth of the recursive quadrant broadcast is exactly log2(side)
		// (one level per halving; the three corner sends per level are
		// sequential from the same PE but mutually independent).
		logn := int64(0)
		for s := side; s > 1; s /= 2 {
			logn++
		}
		if d := m.Metrics().Depth; d != logn {
			t.Errorf("side %d: broadcast depth %d, want %d", side, d, logn)
		}
	}
}

func TestBroadcastDistanceLinearInSide(t *testing.T) {
	// Lemma IV.1: distance O(w + h). The recursion's distances form a
	// geometric series, so distance <= 4*(w+h).
	for _, side := range []int{4, 16, 64} {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		m.Set(r.Origin, "v", 1)
		Broadcast(m, r, "v")
		if d := m.Metrics().Distance; d > int64(4*2*side) {
			t.Errorf("side %d: broadcast distance %d too large", side, d)
		}
	}
}

func TestBroadcastTrackBaselineHasLogFactor(t *testing.T) {
	// The binary-tree broadcast over a row-major layout costs
	// Theta(n log n): verify it exceeds the 2-D broadcast by a growing
	// factor.
	prevRatio := 0.0
	for _, side := range []int{8, 16, 32, 64} {
		r := grid.Square(machine.Coord{}, side)

		m1 := machine.New()
		m1.Set(r.Origin, "v", 1)
		Broadcast(m1, r, "v")

		m2 := machine.New()
		m2.Set(r.Origin, "v", 1)
		BroadcastTrack(m2, grid.RowMajor(r), "v")

		ratio := float64(m2.Metrics().Energy) / float64(m1.Metrics().Energy)
		if ratio <= prevRatio {
			t.Errorf("side %d: tree/2D energy ratio %.2f did not grow (prev %.2f)", side, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestBroadcastChain(t *testing.T) {
	m := machine.New()
	r := grid.Square(machine.Coord{}, 4)
	tr := grid.ZOrder(r)
	m.Set(tr.At(0), "v", 11)
	BroadcastChain(m, tr, "v")
	checkAll(t, m, r, "v", 11)
	if d := m.Metrics().Depth; d != int64(tr.Len()-1) {
		t.Errorf("chain depth %d, want %d", d, tr.Len()-1)
	}
}

func TestBroadcastMemoryConstant(t *testing.T) {
	// The broadcast uses a single register per PE regardless of n.
	for _, side := range []int{4, 32} {
		m := machine.NewWithMemoryLimit(1)
		r := grid.Square(machine.Coord{}, side)
		m.Set(r.Origin, "v", 1)
		Broadcast(m, r, "v") // panics if any PE exceeds one register
	}
}
