package harness

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/simcache"
)

// backendPoint scatters a deterministic burst of messages and reports the
// energy it cost; with identical workloads per point, the reported energy
// is a pure function of the runner's backend.
func backendPoint(i int, env *Env) []Row {
	m := env.Machine()
	n := 64 + 8*i
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for j := 0; j < n; j++ {
			from := machine.Coord{Row: j % 16, Col: j / 16}
			to := machine.Coord{Row: (j * 7) % 16, Col: (j * 3) % 16}
			send(from, to, "v", float64(j))
		}
	})
	met := m.Metrics()
	return One(i, met.Energy, met.Messages)
}

// TestWithBackendAppliedAndRestored: leased machines carry the runner's
// backend; machines returned to the pool are restored to ideal.
func TestWithBackendAppliedAndRestored(t *testing.T) {
	bk := machine.Mesh(4, 4, 4)
	r := New(1, WithWorkers(1), WithBackend(bk))
	rows := r.Sweep("backend-applied", 3, func(i int, env *Env) []Row {
		if got := env.Machine().Backend().String(); got != bk.String() {
			t.Errorf("point %d: leased machine backend %q, want %q", i, got, bk.String())
		}
		return backendPoint(i, env)
	})
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	m := r.pool.Get().(*machine.Machine)
	if m.Backend().Finite() {
		t.Errorf("pooled machine backend %q after release, want ideal", m.Backend())
	}
}

// TestWithBackendChangesCostsNotWorkloads: the backend is not part of the
// point RNG seed, so runs on different fabrics measure the same workload —
// message counts match — while folded energies contract (E_mesh <= E_ideal).
func TestWithBackendChangesCostsNotWorkloads(t *testing.T) {
	ideal := New(9, WithWorkers(2)).Sweep("backend-costs", 5, backendPoint)
	mesh := New(9, WithWorkers(2), WithBackend(machine.Mesh(4, 4, 4))).Sweep("backend-costs", 5, backendPoint)
	for i := range ideal {
		if ideal[i][2] != mesh[i][2] {
			t.Errorf("point %d: message counts diverge (%v vs %v) — backend leaked into the workload", i, ideal[i][2], mesh[i][2])
		}
		if mesh[i][1].(int64) > ideal[i][1].(int64) {
			t.Errorf("point %d: mesh energy %v exceeds ideal %v", i, mesh[i][1], ideal[i][1])
		}
	}
}

// TestCacheKeyedByBackend: rows measured on one fabric must never be served
// to a run on another — including the ideal default, whose key encoding is
// the canonical "ideal" either way the runner spells it.
func TestCacheKeyedByBackend(t *testing.T) {
	cache := simcache.New(simcache.Memory(), 0)
	base := []Option{WithCache(cache), WithCacheVersion("t"), WithWorkers(1)}
	New(1, base...).Sweep("backend-keyed", 4, backendPoint)
	if st := cache.Stats(); st.Misses != 4 {
		t.Fatalf("priming run: %+v", st)
	}

	before := cache.Stats().Hits
	New(1, append([]Option{WithBackend(machine.Mesh(8, 8, 2))}, base...)...).Sweep("backend-keyed", 4, backendPoint)
	if after := cache.Stats().Hits; after != before {
		t.Errorf("mesh-backend run hit the ideal rows (%d -> %d hits)", before, after)
	}
	before = cache.Stats().Hits
	New(1, append([]Option{WithBackend(machine.Torus(8, 8, 2))}, base...)...).Sweep("backend-keyed", 4, backendPoint)
	if after := cache.Stats().Hits; after != before {
		t.Errorf("torus-backend run hit foreign rows (%d -> %d hits)", before, after)
	}

	// An explicit ideal backend is the same address as the default.
	before = cache.Stats().Hits
	New(1, append([]Option{WithBackend(machine.Ideal())}, base...)...).Sweep("backend-keyed", 4, backendPoint)
	if got := cache.Stats().Hits - before; got != 4 {
		t.Errorf("explicit-ideal rerun scored %d hits, want 4 (canonical key form)", got)
	}

	// And a warmed mesh run hits its own rows.
	before = cache.Stats().Hits
	New(1, append([]Option{WithBackend(machine.Mesh(8, 8, 2))}, base...)...).Sweep("backend-keyed", 4, backendPoint)
	if got := cache.Stats().Hits - before; got != 4 {
		t.Errorf("warmed mesh rerun scored %d hits, want 4", got)
	}
}
