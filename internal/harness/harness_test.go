package harness

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/trace"
)

// measurePoint is a representative sweep point: draw a workload from the
// point RNG, run it on the pooled machine, report size and metrics.
func measurePoint(i int, env *Env) []Row {
	n := 4 + i%7
	vals := make([]float64, n)
	for k := range vals {
		vals[k] = env.Rng.Float64()
	}
	mm := env.Measure(func(m *machine.Machine) {
		for k, v := range vals {
			m.Set(machine.Coord{Col: k}, "v", v)
		}
		for k := 0; k < n-1; k++ {
			m.Send(machine.Coord{Col: k}, "v", machine.Coord{Col: k + 1}, "v")
		}
	})
	return One(i, n, float64(mm.Energy), mm.Depth, env.Rng.Int63())
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	var want []Row
	for _, workers := range []int{1, 2, 4, 13} {
		rows := New(42, WithWorkers(workers)).Sweep("det", 31, measurePoint)
		if workers == 1 {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("workers=%d rows differ from sequential\nseq: %v\npar: %v", workers, want, rows)
		}
	}
}

func TestRowOrderUnderScrambledCompletion(t *testing.T) {
	// Early points sleep so later points finish first; rows must still come
	// back in point order.
	rows := New(1, WithWorkers(8)).Sweep("order", 16, func(i int, env *Env) []Row {
		time.Sleep(time.Duration(16-i) * time.Millisecond)
		return One(i)
	})
	for i, r := range rows {
		if r[0] != i {
			t.Fatalf("row %d = %v, want [%d]", i, r, i)
		}
	}
}

func TestMultiRowPointsFlattenInOrder(t *testing.T) {
	rows := New(1, WithWorkers(4)).Sweep("multi", 5, func(i int, env *Env) []Row {
		out := make([]Row, i%3+1)
		for j := range out {
			out[j] = Row{i, j}
		}
		return out
	})
	want := 0
	for i := 0; i < 5; i++ {
		want += i%3 + 1
	}
	if len(rows) != want {
		t.Fatalf("flattened %d rows, want %d", len(rows), want)
	}
	for k := 1; k < len(rows); k++ {
		pi, pj := rows[k-1][0].(int), rows[k-1][1].(int)
		ci, cj := rows[k][0].(int), rows[k][1].(int)
		if ci < pi || (ci == pi && cj != pj+1) {
			t.Fatalf("rows out of order at %d: %v after %v", k, rows[k], rows[k-1])
		}
	}
}

func TestPointSeedIndependentOfSiblingPoints(t *testing.T) {
	// A point's RNG stream depends only on (seed, sweep, index) — points
	// must not perturb each other even when they draw different amounts.
	draws := func(workers, points int) []int64 {
		out := make([]int64, points)
		New(7, WithWorkers(workers)).Sweep("iso", points, func(i int, env *Env) []Row {
			for k := 0; k < i*3; k++ { // i-dependent extra draws
				env.Rng.Int63()
			}
			out[i] = env.Rng.Int63()
			return nil
		})
		return out
	}
	if !reflect.DeepEqual(draws(1, 9), draws(6, 9)) {
		t.Error("per-point RNG streams depend on worker count")
	}
	// And distinct points/sweeps get distinct seeds.
	if pointSeed(1, "a", 0) == pointSeed(1, "a", 1) || pointSeed(1, "a", 0) == pointSeed(1, "b", 0) ||
		pointSeed(1, "a", 0) == pointSeed(2, "a", 0) {
		t.Error("pointSeed collisions across index/name/base")
	}
}

func TestOverlappedSweepsShareWorkers(t *testing.T) {
	r := New(3, WithWorkers(4))
	a := r.Go("a", 9, measurePoint)
	b := r.Go("b", 9, measurePoint)
	ar, br := a.Rows(), b.Rows()
	// Same point function under a different sweep name → different
	// workloads; under the same name → identical rows.
	if reflect.DeepEqual(ar, br) {
		t.Error("sweeps 'a' and 'b' produced identical rows; names should key the RNG")
	}
	if again := r.Sweep("a", 9, measurePoint); !reflect.DeepEqual(ar, again) {
		t.Error("re-running sweep 'a' on the same runner changed its rows")
	}
}

func TestPointPanicPropagates(t *testing.T) {
	defer func() {
		v := recover()
		pp, ok := v.(*PointPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want *PointPanic", v, v)
		}
		if pp.Sweep != "boom" || pp.Index != 3 || pp.Value != "kaput" {
			t.Errorf("PointPanic = {%q %d %v}", pp.Sweep, pp.Index, pp.Value)
		}
		if len(pp.Stack) == 0 {
			t.Error("PointPanic carries no stack")
		}
	}()
	New(1, WithWorkers(2)).Sweep("boom", 4, func(i int, env *Env) []Row {
		if i == 3 {
			panic("kaput")
		}
		return One(i)
	})
	t.Fatal("Rows returned despite point panic")
}

func TestWithCongestionScopedToSweep(t *testing.T) {
	r := New(1, WithWorkers(1))
	rows := r.Sweep("cong", 1, func(i int, env *Env) []Row {
		m := env.Machine()
		m.Set(machine.Coord{}, "v", 1.0)
		m.Send(machine.Coord{}, "v", machine.Coord{Col: 5}, "v")
		return One(float64(m.MaxCongestion()))
	}, WithCongestion())
	if rows[0][0] != 1.0 {
		t.Errorf("congestion sweep measured max load %v, want 1", rows[0][0])
	}
	// The machine goes back to the pool untracked: a follow-up plain sweep
	// must see zero congestion accounting.
	rows = r.Sweep("plain", 1, func(i int, env *Env) []Row {
		m := env.Machine()
		m.Set(machine.Coord{}, "v", 1.0)
		m.Send(machine.Coord{}, "v", machine.Coord{Col: 5}, "v")
		return One(float64(m.MaxCongestion()))
	})
	if rows[0][0] != 0.0 {
		t.Errorf("plain sweep after congestion sweep measured %v, want 0 (tracker leaked through pool)", rows[0][0])
	}
}

func TestMachineResetBetweenMeasures(t *testing.T) {
	New(1).Sweep("reset", 1, func(i int, env *Env) []Row {
		first := env.Measure(func(m *machine.Machine) {
			m.Set(machine.Coord{}, "v", 1.0)
			m.Send(machine.Coord{}, "v", machine.Coord{Col: 9}, "v")
		})
		second := env.Measure(func(m *machine.Machine) {
			if m.Metrics() != (machine.Metrics{}) {
				panic("Measure did not reset the machine")
			}
			if m.Has(machine.Coord{}, "v") {
				panic("registers survived into second Measure")
			}
		})
		if second.Energy != 0 {
			panic(fmt.Sprintf("second measure energy = %d", second.Energy))
		}
		_ = first
		return nil
	})
}

func TestProgressReporting(t *testing.T) {
	var calls atomic.Int32
	var lastDone, lastTotal atomic.Int32
	r := New(1, WithWorkers(4), WithProgress(func(done, total int) {
		calls.Add(1)
		lastDone.Store(int32(done))
		lastTotal.Store(int32(total))
	}))
	r.Sweep("p", 10, func(i int, env *Env) []Row { return One(i) })
	if calls.Load() != 10 {
		t.Errorf("progress called %d times, want 10", calls.Load())
	}
	if lastDone.Load() != 10 || lastTotal.Load() != 10 {
		t.Errorf("final progress = %d/%d, want 10/10", lastDone.Load(), lastTotal.Load())
	}
}

func TestWorkersDefaultAndFloor(t *testing.T) {
	if w := New(1).Workers(); w < 1 {
		t.Errorf("default workers = %d", w)
	}
	if w := New(1, WithWorkers(-3)).Workers(); w != New(1).Workers() {
		t.Errorf("negative WithWorkers changed count to %d", w)
	}
}

// TestSweepMatchesDirectRuns cross-checks the harness against hand-rolled
// sequential measurement: same seeds, same machines, same metrics.
func TestSweepMatchesDirectRuns(t *testing.T) {
	rows := New(99, WithWorkers(5)).Sweep("x", 8, measurePoint)
	for i := 0; i < 8; i++ {
		rng := rand.New(rand.NewSource(pointSeed(99, "x", i)))
		n := 4 + i%7
		vals := make([]float64, n)
		for k := range vals {
			vals[k] = rng.Float64()
		}
		m := machine.New()
		for k, v := range vals {
			m.Set(machine.Coord{Col: k}, "v", v)
		}
		for k := 0; k < n-1; k++ {
			m.Send(machine.Coord{Col: k}, "v", machine.Coord{Col: k + 1}, "v")
		}
		want := Row{i, n, float64(m.Metrics().Energy), m.Metrics().Depth, rng.Int63()}
		if !reflect.DeepEqual(rows[i], want) {
			t.Errorf("point %d: harness %v, direct %v", i, rows[i], want)
		}
	}
}

// TestWithSinkSharedHeatmap feeds one Synchronized heatmap from every
// worker of a parallel sweep and cross-checks its totals against the summed
// point metrics. Run under -race this is the concurrency test for
// runner-level sinks.
func TestWithSinkSharedHeatmap(t *testing.T) {
	hm := trace.NewHeatmap()
	r := New(1, WithWorkers(4), WithSink(trace.Synchronized(hm)))
	var energy, messages int64
	rows := r.Sweep("sink-heatmap", 32, func(i int, env *Env) []Row {
		mm := env.Measure(func(m *machine.Machine) {
			n := 4 + i%5
			for k := 0; k < n; k++ {
				m.Set(machine.Coord{Col: k}, "v", float64(k))
			}
			for k := 0; k < n-1; k++ {
				m.Send(machine.Coord{Col: k}, "v", machine.Coord{Col: k + 1}, "v")
			}
		})
		atomic.AddInt64(&energy, mm.Energy)
		atomic.AddInt64(&messages, mm.Messages)
		return One(i)
	})
	if len(rows) != 32 {
		t.Fatalf("got %d rows, want 32", len(rows))
	}
	if hm.Events() != messages {
		t.Errorf("heatmap observed %d events, points sent %d messages", hm.Events(), messages)
	}
	var traffic int64
	_, cells := hm.Grid()
	for _, row := range cells {
		for _, c := range row {
			traffic += c.SendTraffic
		}
	}
	if traffic != energy {
		t.Errorf("heatmap send traffic %d, summed point energy %d", traffic, energy)
	}
}

// TestWithCriticalPathCheckPasses runs a parallel sweep with per-point
// verification enabled: every measurement (including several per point, and
// Par rounds) must reconstruct chains matching its Depth and Distance.
func TestWithCriticalPathCheckPasses(t *testing.T) {
	r := New(7, WithWorkers(4), WithCriticalPathCheck())
	rows := r.Sweep("cp-check", 24, func(i int, env *Env) []Row {
		// Two measurements per point: verify must fire between them too.
		_ = env.Measure(func(m *machine.Machine) {
			m.Set(machine.Coord{}, "v", 1.0)
			m.Send(machine.Coord{}, "v", machine.Coord{Row: 3}, "v")
		})
		mm := env.Measure(func(m *machine.Machine) {
			n := 3 + i%6
			for k := 0; k < n; k++ {
				m.Set(machine.Coord{Col: k}, "v", float64(k))
			}
			m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
				for k := 0; k < n; k++ {
					send(machine.Coord{Col: k}, machine.Coord{Row: 1, Col: k}, "v", float64(k))
				}
			})
			for k := 0; k < n-1; k++ {
				m.Send(machine.Coord{Row: 1, Col: k}, "v", machine.Coord{Row: 1, Col: k + 1}, "v")
			}
		})
		return One(i, mm.Depth)
	})
	if len(rows) != 24 {
		t.Fatalf("got %d rows, want 24", len(rows))
	}
}

// TestWithCriticalPathCheckCatchesTampering: a point that fakes the event
// stream (an extra event the machine never sent) must fail the check with a
// PointPanic.
func TestWithCriticalPathCheckCatchesTampering(t *testing.T) {
	r := New(7, WithWorkers(1), WithCriticalPathCheck())
	defer func() {
		v := recover()
		pp, ok := v.(*PointPanic)
		if !ok {
			t.Fatalf("recovered %T %v, want *PointPanic", v, v)
		}
		if pp.Sweep != "cp-tamper" {
			t.Errorf("panic from sweep %q", pp.Sweep)
		}
	}()
	r.Sweep("cp-tamper", 1, func(i int, env *Env) []Row {
		m := env.Machine()
		m.Set(machine.Coord{}, "v", 1.0)
		m.Send(machine.Coord{}, "v", machine.Coord{Row: 2}, "v")
		// Inject a bogus deeper event directly into the sink.
		trace.Walk(m.Sink(), func(s trace.Sink) {
			if cp, ok := s.(*trace.CriticalPath); ok {
				cp.Event(&trace.Event{Seq: 99, From: trace.Coord{Row: 2}, To: trace.Coord{Row: 4},
					Dist: 2, DepthBefore: 1, DepthAfter: 2, DistBefore: 2, DistAfter: 4})
			}
		})
		return One(i)
	})
	t.Fatal("sweep with tampered event stream did not panic")
}

// TestReleasedMachinesDropSinks: machines returned to the pool must not
// carry a sink into the next lease when the runner has none configured.
func TestReleasedMachinesDropSinks(t *testing.T) {
	r := New(1, WithWorkers(1), WithCriticalPathCheck())
	_ = r.Sweep("first", 1, func(i int, env *Env) []Row {
		m := env.Machine()
		m.Set(machine.Coord{}, "v", 1.0)
		m.Send(machine.Coord{}, "v", machine.Coord{Row: 1}, "v")
		return One(i)
	})
	m := r.pool.Get().(*machine.Machine)
	if s := m.Sink(); s != nil {
		t.Errorf("pooled machine still carries sink %T", s)
	}
}
