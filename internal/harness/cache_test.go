package harness

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/simcache"
	"repro/internal/trace"
)

// TestCacheWarmSweepIdenticalAndSimulationFree: a second identical sweep on
// a warmed cache must return byte-identical rows without executing a single
// point function (no machine lease, no RNG draw, no simulation).
func TestCacheWarmSweepIdenticalAndSimulationFree(t *testing.T) {
	cache := simcache.New(simcache.Memory(), 0)
	var executions atomic.Int32
	counted := func(i int, env *Env) []Row {
		executions.Add(1)
		return measurePoint(i, env)
	}

	cold := New(42, WithWorkers(3), WithCache(cache), WithCacheVersion("t")).Sweep("warm", 13, counted)
	if got := executions.Load(); got != 13 {
		t.Fatalf("cold run executed %d points, want 13", got)
	}
	plain := New(42, WithWorkers(3)).Sweep("warm", 13, measurePoint)
	if !reflect.DeepEqual(cold, plain) {
		t.Fatal("cold cached run's rows differ from an uncached run")
	}

	warmRunner := New(42, WithWorkers(3), WithCache(cache), WithCacheVersion("t"))
	warm := warmRunner.Go("warm", 13, counted)
	rows := warm.Rows()
	if got := executions.Load(); got != 13 {
		t.Errorf("warm run executed %d extra points, want 0 (all hits)", got-13)
	}
	if !reflect.DeepEqual(rows, plain) {
		t.Fatal("warm rows differ from the uncached run")
	}
	if warm.CacheHits() != 13 {
		t.Errorf("warm sweep reports %d hits, want 13", warm.CacheHits())
	}
	if n := warmRunner.RowsSimulated(); n != 0 {
		t.Errorf("warm runner simulated %d rows, want 0", n)
	}
	if st := cache.Stats(); st.Hits != 13 || st.Misses != 13 {
		t.Errorf("cache stats = %+v, want 13 hits / 13 misses", st)
	}
}

// TestCacheKeyedBySeedAndOptions: changing the runner seed, shard count,
// batch mode or the sweep's congestion option must miss — the workload or
// the machine configuration differs, so serving the old rows would be a
// stale-hit bug (for shards/batch the rows would coincide, but the key is
// deliberately conservative; see simcache.Key).
func TestCacheKeyedBySeedAndOptions(t *testing.T) {
	cache := simcache.New(simcache.Memory(), 0)
	base := []Option{WithCache(cache), WithCacheVersion("t"), WithWorkers(1)}
	New(1, base...).Sweep("keyed", 4, measurePoint)
	if st := cache.Stats(); st.Misses != 4 {
		t.Fatalf("priming run: %+v", st)
	}
	variants := []struct {
		name string
		seed int64
		opts []Option
		sw   []SweepOption
	}{
		{"seed", 2, base, nil},
		{"shards", 1, append([]Option{WithShards(2)}, base...), nil},
		{"batch", 1, append([]Option{WithBatchSends()}, base...), nil},
		{"congestion", 1, base, []SweepOption{WithCongestion()}},
		{"version", 1, []Option{WithCache(cache), WithCacheVersion("t2"), WithWorkers(1)}, nil},
	}
	for _, v := range variants {
		before := cache.Stats().Hits
		New(v.seed, v.opts...).Sweep("keyed", 4, measurePoint, v.sw...)
		if after := cache.Stats().Hits; after != before {
			t.Errorf("%s variant hit the cache (%d -> %d hits); key must separate it", v.name, before, after)
		}
	}
	// And the unchanged configuration still hits.
	before := cache.Stats().Hits
	New(1, base...).Sweep("keyed", 4, measurePoint)
	if got := cache.Stats().Hits - before; got != 4 {
		t.Errorf("identical rerun scored %d hits, want 4", got)
	}
}

// TestCriticalPathCheckFiresOnMissesOnly is the cache half of the
// verification contract: tampering that trips WithCriticalPathCheck still
// panics on a miss (so bad rows are never stored), while the warmed rerun
// of an honest sweep leases no machine and therefore skips verification
// entirely instead of re-simulating just to re-check.
func TestCriticalPathCheckFiresOnMissesOnly(t *testing.T) {
	cache := simcache.New(simcache.Memory(), 0)

	tamper := func(i int, env *Env) []Row {
		m := env.Machine()
		m.Set(machine.Coord{}, "v", 1.0)
		m.Send(machine.Coord{}, "v", machine.Coord{Row: 2}, "v")
		trace.Walk(m.Sink(), func(s trace.Sink) {
			if cp, ok := s.(*trace.CriticalPath); ok {
				cp.Event(&trace.Event{Seq: 99, From: trace.Coord{Row: 2}, To: trace.Coord{Row: 4},
					Dist: 2, DepthBefore: 1, DepthAfter: 2, DistBefore: 2, DistAfter: 4})
			}
		})
		return One(i)
	}
	func() {
		defer func() {
			if _, ok := recover().(*PointPanic); !ok {
				t.Error("tampered miss did not raise a PointPanic: cpcheck no longer fires on the miss path")
			}
		}()
		New(7, WithWorkers(1), WithCriticalPathCheck(), WithCache(cache), WithCacheVersion("t")).
			Sweep("cp-cache-tamper", 1, tamper)
	}()
	if st := cache.Stats(); st.Stores != 0 {
		t.Errorf("a measurement that failed verification was stored (%+v)", st)
	}

	// Honest sweep: cold run verifies and stores; warm run must succeed
	// without executing points — the hit path carries no machine to verify.
	var executions atomic.Int32
	honest := func(i int, env *Env) []Row {
		executions.Add(1)
		mm := env.Measure(func(m *machine.Machine) {
			m.Set(machine.Coord{}, "v", 1.0)
			m.Send(machine.Coord{}, "v", machine.Coord{Row: 3}, "v")
		})
		return One(i, mm.Depth)
	}
	opts := []Option{WithWorkers(2), WithCriticalPathCheck(), WithCache(cache), WithCacheVersion("t")}
	cold := New(7, opts...).Sweep("cp-cache-honest", 6, honest)
	warm := New(7, opts...).Sweep("cp-cache-honest", 6, honest)
	if executions.Load() != 6 {
		t.Errorf("warm cpcheck run executed %d points, want 0 (hits skip verification)", executions.Load()-6)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("warm rows differ from cold rows under cpcheck")
	}
}

// TestCachePanickedAndSkippedPointsNotStored: neither a panicking point nor
// one skipped by the sweep deadline may leave an entry behind.
func TestCachePanickedAndSkippedPointsNotStored(t *testing.T) {
	cache := simcache.New(simcache.Memory(), 0)
	func() {
		defer func() { recover() }()
		New(1, WithWorkers(1), WithCache(cache), WithCacheVersion("t")).
			Sweep("boom", 1, func(i int, env *Env) []Row { panic("kaput") })
	}()
	if st := cache.Stats(); st.Stores != 0 {
		t.Errorf("panicked point stored rows: %+v", st)
	}

	s := New(1, WithWorkers(1), WithCache(cache), WithCacheVersion("t")).
		Go("late", 3, func(i int, env *Env) []Row {
			time.Sleep(5 * time.Millisecond)
			return One(i)
		}, WithDeadline(time.Nanosecond))
	s.Rows()
	if st := cache.Stats(); int(st.Stores) != 3-s.Skipped() {
		t.Errorf("stores %d + skipped %d != 3 points", st.Stores, s.Skipped())
	}
	// The skipped points must re-run (miss), not resolve to empty rows.
	rows := New(1, WithWorkers(1), WithCache(cache), WithCacheVersion("t")).
		Sweep("late", 3, func(i int, env *Env) []Row { return One(i) })
	if len(rows) != 3 {
		t.Errorf("rerun produced %d rows, want 3", len(rows))
	}
}

// TestSweepProgressReachesTotal covers the per-sweep progress stream: with
// a warmed cache every point resolves at enqueue, and the callback still
// walks done monotonically to total with full cost accounting.
func TestSweepProgressReachesTotal(t *testing.T) {
	cache := simcache.New(simcache.Memory(), 0)
	costs := func(i int) float64 { return float64(i + 1) }
	var wantCost float64
	for i := 0; i < 8; i++ {
		wantCost += costs(i)
	}
	check := func(label string, runner *Runner) {
		var calls int
		var lastDone int
		var lastCost float64
		s := runner.Go("prog", 8, measurePoint,
			WithPointCost(costs),
			WithSweepProgress(func(done, total int, doneCost, totalCost float64) {
				calls++
				if done < lastDone || done > total || total != 8 {
					t.Errorf("%s: non-monotone progress %d/%d after %d", label, done, total, lastDone)
				}
				if totalCost != wantCost {
					t.Errorf("%s: totalCost = %v, want %v", label, totalCost, wantCost)
				}
				lastDone, lastCost = done, doneCost
			}))
		s.Rows()
		if calls != 8 || lastDone != 8 || lastCost != wantCost {
			t.Errorf("%s: %d calls, final %d done / %v cost; want 8 / 8 / %v", label, calls, lastDone, lastCost, wantCost)
		}
	}
	check("cold", New(5, WithWorkers(3), WithCache(cache), WithCacheVersion("t")))
	check("warm", New(5, WithWorkers(3), WithCache(cache), WithCacheVersion("t")))
}
