package harness

import (
	"fmt"
	"testing"

	"repro/internal/collectives"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simcache"
)

// BenchmarkSweepOverhead measures the harness's per-point cost (queueing,
// RNG seeding, machine lease/reset) with a near-empty point body.
func BenchmarkSweepOverhead(b *testing.B) {
	r := New(1, WithWorkers(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Sweep("overhead", 16, func(j int, env *Env) []Row {
			env.Machine().Set(machine.Coord{}, "v", 1.0)
			return One(j)
		})
	}
}

// scanPoint is a realistic mid-size measurement: place 4096 values and
// scan them, the workhorse of the Table I sweeps.
func scanPoint(i int, env *Env) []Row {
	const n = 4096
	vals := make([]float64, n)
	for k := range vals {
		vals[k] = env.Rng.Float64()
	}
	mm := env.Measure(func(m *machine.Machine) {
		r := grid.SquareFor(machine.Coord{}, n)
		tr := grid.ZOrder(r)
		for k := 0; k < tr.Len(); k++ {
			v := 0.0
			if k < len(vals) {
				v = vals[k]
			}
			m.Set(tr.At(k), "v", v)
		}
		collectives.Scan(m, r, "v", collectives.Add, 0.0)
	})
	return One(i, float64(mm.Energy))
}

// BenchmarkSweepScan runs a 16-point scan sweep at several worker counts;
// on a multi-core machine the wall-clock time per op drops with workers.
func BenchmarkSweepScan(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := New(1, WithWorkers(workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Sweep("scan", 16, scanPoint)
			}
		})
	}
}

// BenchmarkCacheHit measures the same 16-point scan sweep served entirely
// from a warmed result cache — the speedup spatiald and the -cache CLI
// modes deliver on repeat runs. The reported hit_rate metric (1.0 here)
// tells bench-compare the timing measured cache lookups, not simulation,
// so it is never compared against a cold baseline's number.
func BenchmarkCacheHit(b *testing.B) {
	cache := simcache.New(simcache.Memory(), 0)
	warm := New(1, WithWorkers(1), WithCache(cache), WithCacheVersion("bench"))
	warm.Sweep("scan", 16, scanPoint)
	before := cache.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := New(1, WithWorkers(1), WithCache(cache), WithCacheVersion("bench"))
		if s := r.Go("scan", 16, scanPoint); s.CacheHits() != 16 {
			s.Rows()
			b.Fatalf("cache hits = %d, want 16", s.CacheHits())
		}
	}
	b.StopTimer()
	st := cache.Stats()
	hits := st.Hits - before.Hits
	if lookups := hits + st.Misses - before.Misses; lookups > 0 {
		b.ReportMetric(float64(hits)/float64(lookups), "hit_rate")
	}
}
