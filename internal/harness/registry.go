package harness

import (
	"fmt"
	"sort"
	"time"
)

// SweepSpec is a named, registrable sweep definition: everything Runner.Go
// needs, bundled so sweeps can be invoked programmatically by name (the
// conformance checker and other drivers) instead of only through
// hand-written experiment code.
type SweepSpec struct {
	// Name keys both the registry lookup and the per-point RNG seeds.
	Name string
	// Points is the sweep's natural point count.
	Points int
	// Point computes one sweep point (see PointFunc).
	Point PointFunc
	// Cost, when non-nil, estimates point i's relative wall-clock (any
	// monotone proxy, e.g. the expected message count). It feeds
	// WithLargestFirst scheduling and weighted progress/ETA reporting;
	// it never affects measurements.
	Cost func(i int) float64
	// Opts are the sweep options applied on every run (e.g. WithCongestion).
	Opts []SweepOption
}

// Registry is a set of named sweeps. The zero value is ready to use.
// Register/lookup are not synchronized: populate the registry first, then
// share it read-only across goroutines.
type Registry struct {
	specs map[string]SweepSpec
}

// Register adds a spec; it fails on empty names, non-positive point
// counts, nil point funcs and duplicate names (re-registering under the
// same name is almost always a wiring bug worth surfacing).
func (g *Registry) Register(s SweepSpec) error {
	switch {
	case s.Name == "":
		return fmt.Errorf("harness: register: empty sweep name")
	case s.Points <= 0:
		return fmt.Errorf("harness: register %q: non-positive point count %d", s.Name, s.Points)
	case s.Point == nil:
		return fmt.Errorf("harness: register %q: nil point func", s.Name)
	}
	if _, dup := g.specs[s.Name]; dup {
		return fmt.Errorf("harness: register %q: duplicate sweep name", s.Name)
	}
	if g.specs == nil {
		g.specs = make(map[string]SweepSpec)
	}
	g.specs[s.Name] = s
	return nil
}

// MustRegister is Register for statically-known specs; it panics on error.
func (g *Registry) MustRegister(s SweepSpec) {
	if err := g.Register(s); err != nil {
		panic(err)
	}
}

// Names returns the registered sweep names, sorted.
func (g *Registry) Names() []string {
	names := make([]string, 0, len(g.specs))
	for n := range g.specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the spec registered under name.
func (g *Registry) Lookup(name string) (SweepSpec, bool) {
	s, ok := g.specs[name]
	return s, ok
}

// RunOption configures one registry invocation.
type RunOption func(*runCfg)

type runCfg struct {
	maxPoints int
	deadline  time.Duration
	progress  func(done, total int, doneCost, totalCost float64)
}

// MaxPoints caps the number of points run, keeping the first k (sweeps
// enumerate problem sizes in increasing order, so the cap drops the most
// expensive tail points). k <= 0 or k beyond the spec's count means "all".
func MaxPoints(k int) RunOption {
	return func(c *runCfg) { c.maxPoints = k }
}

// Deadline gives the invocation a per-sweep wall-clock budget (see
// WithDeadline): points not started when it expires are skipped. d <= 0
// means no budget.
func Deadline(d time.Duration) RunOption {
	return func(c *runCfg) { c.deadline = d }
}

// SweepProgress attaches a per-sweep progress callback to the invocation
// (see WithSweepProgress) — the signal a long-running service streams back
// to whoever submitted this sweep.
func SweepProgress(f func(done, total int, doneCost, totalCost float64)) RunOption {
	return func(c *runCfg) { c.progress = f }
}

// Go enqueues the named sweep on r and returns its handle, or an error for
// unknown names. The sweep seeds its points exactly as a hand-rolled
// Runner.Go with the same name would, so capping the point count does not
// change the workloads of the points that do run.
func (g *Registry) Go(r *Runner, name string, opts ...RunOption) (*Sweep, error) {
	spec, ok := g.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown sweep %q (have %v)", name, g.Names())
	}
	var cfg runCfg
	for _, o := range opts {
		o(&cfg)
	}
	n := spec.Points
	if cfg.maxPoints > 0 && cfg.maxPoints < n {
		n = cfg.maxPoints
	}
	sweepOpts := spec.Opts
	if spec.Cost != nil {
		sweepOpts = append(sweepOpts[:len(sweepOpts):len(sweepOpts)], WithPointCost(spec.Cost))
	}
	if cfg.deadline > 0 {
		sweepOpts = append(sweepOpts[:len(sweepOpts):len(sweepOpts)], WithDeadline(cfg.deadline))
	}
	if cfg.progress != nil {
		sweepOpts = append(sweepOpts[:len(sweepOpts):len(sweepOpts)], WithSweepProgress(cfg.progress))
	}
	return r.Go(spec.Name, n, spec.Point, sweepOpts...), nil
}

// Run is Go followed by Rows: it executes the named sweep to completion
// and returns its rows in point order.
func (g *Registry) Run(r *Runner, name string, opts ...RunOption) ([]Row, error) {
	s, err := g.Go(r, name, opts...)
	if err != nil {
		return nil, err
	}
	return s.Rows(), nil
}
