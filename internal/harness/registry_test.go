package harness

import (
	"strings"
	"testing"
)

func identityPoint(i int, env *Env) []Row {
	// Draw from the point RNG so runs are seed-sensitive like real sweeps.
	return One(i, env.Rng.Int63())
}

func TestRegistryRegisterValidation(t *testing.T) {
	var g Registry
	cases := []struct {
		name string
		spec SweepSpec
		want string
	}{
		{"empty-name", SweepSpec{Points: 1, Point: identityPoint}, "empty sweep name"},
		{"zero-points", SweepSpec{Name: "s", Point: identityPoint}, "non-positive point count"},
		{"nil-func", SweepSpec{Name: "s", Points: 1}, "nil point func"},
	}
	for _, c := range cases {
		if err := g.Register(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
	if err := g.Register(SweepSpec{Name: "s", Points: 2, Point: identityPoint}); err != nil {
		t.Fatalf("valid register failed: %v", err)
	}
	if err := g.Register(SweepSpec{Name: "s", Points: 2, Point: identityPoint}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate register err = %v", err)
	}
}

func TestRegistryRunByName(t *testing.T) {
	var g Registry
	g.MustRegister(SweepSpec{Name: "reg/a", Points: 4, Point: identityPoint})
	g.MustRegister(SweepSpec{Name: "reg/b", Points: 2, Point: identityPoint})

	if got := g.Names(); len(got) != 2 || got[0] != "reg/a" || got[1] != "reg/b" {
		t.Errorf("Names = %v", got)
	}

	r := New(1, WithWorkers(2))
	rows, err := g.Run(r, "reg/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for i, row := range rows {
		if row[0].(int) != i {
			t.Errorf("row %d out of order: %v", i, row)
		}
	}

	if _, err := g.Run(r, "no-such-sweep"); err == nil || !strings.Contains(err.Error(), "unknown sweep") {
		t.Errorf("unknown sweep err = %v", err)
	}
}

// TestRegistryMaxPoints: a capped run executes a prefix of the full run
// with byte-identical per-point results (the cap must not reseed points).
func TestRegistryMaxPoints(t *testing.T) {
	var g Registry
	g.MustRegister(SweepSpec{Name: "reg/capped", Points: 5, Point: identityPoint})

	r := New(7, WithWorkers(3))
	full, err := g.Run(r, "reg/capped")
	if err != nil {
		t.Fatal(err)
	}
	capped, err := g.Run(r, "reg/capped", MaxPoints(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 3 {
		t.Fatalf("capped run has %d rows, want 3", len(capped))
	}
	for i, row := range capped {
		if row[1] != full[i][1] {
			t.Errorf("point %d: capped RNG draw %v != full run's %v", i, row[1], full[i][1])
		}
	}
	// Out-of-range and non-positive caps mean "all points".
	for _, k := range []int{0, -1, 99} {
		rows, err := g.Run(r, "reg/capped", MaxPoints(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Errorf("MaxPoints(%d): %d rows, want 5", k, len(rows))
		}
	}
}
