// Package harness runs embarrassingly parallel measurement sweeps across a
// worker pool of recycled simulation machines.
//
// The paper's evaluation is a grid of independent measurement points —
// (experiment x problem size x algorithm variant), each a fresh run on its
// own simulated machine. The harness decomposes an experiment into point
// tasks, executes them on a fixed number of workers, leases machines from a
// sync.Pool (recycled in place with Machine.Reset) and collects the
// resulting rows back in point order.
//
// Determinism: every point draws its randomness from an RNG seeded by
// (base seed, sweep name, point index) — never from a stream shared across
// points — and results are indexed by point, so the emitted tables are
// byte-identical regardless of the worker count or completion order.
// Running with one worker reproduces a fully sequential sweep.
package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/mapping"
	"repro/internal/simcache"
	"repro/internal/trace"
)

// Row is one table row produced by a sweep point: cells in the column
// order of the experiment's output table.
type Row = []any

// One wraps a single row's cells, for the common one-row-per-point case.
func One(cells ...any) []Row { return []Row{cells} }

// PointFunc computes point i of a sweep and returns its rows. Points of a
// sweep must be mutually independent: all randomness must come from
// env.Rng and all simulation must go through env's machine.
type PointFunc func(i int, env *Env) []Row

// Env is the per-point execution environment.
type Env struct {
	// Rng is seeded deterministically from (runner base seed, sweep name,
	// point index), so a point draws the same workload no matter which
	// worker runs it or in what order.
	Rng *rand.Rand

	r    *Runner
	s    *Sweep
	cong bool
	m    *machine.Machine
	cp   *trace.CriticalPath
}

// Mapping returns the sweep's layout/schedule mapping (see WithMapping),
// or mapping.Default() for unmapped sweeps. Points that honor it measure
// the configuration the sweep was enqueued under.
func (e *Env) Mapping() mapping.Mapping {
	if e.s != nil && e.s.mapped {
		return e.s.mapp
	}
	return mapping.Default()
}

// Machine returns the point's simulation machine, reset to a blank grid.
// The machine is leased from the runner's pool on first use and returned
// when the point finishes; calling Machine again within a point resets the
// same machine for the next measurement.
func (e *Env) Machine() *machine.Machine {
	if e.m == nil {
		e.m = e.r.pool.Get().(*machine.Machine)
		if e.cong {
			e.m.EnableCongestionTracking()
		}
		var sinks []trace.Sink
		if e.r.cpCheck {
			e.cp = trace.NewCriticalPath()
			sinks = append(sinks, e.cp)
		}
		if e.r.sink != nil {
			sinks = append(sinks, e.r.sink)
		}
		e.m.SetSink(trace.Multi(sinks...))
		e.m.SetShards(e.r.shards)
		e.m.SetBatchSends(e.r.batchSends)
		e.m.SetBackend(e.r.backend)
	} else {
		// A re-lease within a point ends the previous measurement: verify
		// its critical paths before Reset discards the metrics.
		e.verify()
	}
	e.m.Reset()
	if e.cp != nil {
		e.cp.Reset()
	}
	return e.m
}

// verify cross-checks the recorded event stream against the machine's
// metrics when the runner runs WithCriticalPathCheck: the reconstructed
// depth path must have exactly Depth hops and the distance path must sum to
// Distance. A mismatch panics (surfaced by Rows as a *PointPanic) — it
// means the cost accounting and the event stream disagree.
func (e *Env) verify() {
	if e.cp == nil || e.m == nil {
		return
	}
	met := e.m.Metrics()
	if dp := e.cp.DepthPath(); int64(len(dp)) != met.Depth {
		panic(fmt.Sprintf("harness: critical-path check: depth path has %d hops, Depth = %d", len(dp), met.Depth))
	}
	var sum int64
	for _, ev := range e.cp.DistancePath() {
		sum += ev.Dist
	}
	if sum != met.Distance {
		panic(fmt.Sprintf("harness: critical-path check: distance path sums to %d, Distance = %d", sum, met.Distance))
	}
}

// Measure runs one computation on a freshly reset machine and returns its
// cost metrics.
func (e *Env) Measure(run func(m *machine.Machine)) machine.Metrics {
	m := e.Machine()
	run(m)
	return m.Metrics()
}

// release returns the leased machine (if any) to the pool, dropping
// payload references, the trace sink and any per-sweep congestion tracker
// first.
func (e *Env) release() {
	if e.m == nil {
		return
	}
	if e.cong {
		e.m.DisableCongestionTracking()
	}
	e.m.Reset()
	e.m.SetSink(nil)
	e.m.SetShards(1)
	e.m.SetBatchSends(false)
	e.m.SetBackend(machine.Ideal())
	e.r.pool.Put(e.m)
	e.m = nil
	e.cp = nil
}

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers sets the number of concurrent workers (default GOMAXPROCS).
// One worker executes points strictly one at a time.
func WithWorkers(n int) Option {
	return func(r *Runner) {
		if n > 0 {
			r.workers = n
		}
	}
}

// WithProgress installs a callback invoked after every completed point
// with the number of finished and enqueued points. Calls are serialized
// but arrive from worker goroutines.
func WithProgress(f func(done, total int)) Option {
	return func(r *Runner) { r.progress = f }
}

// Progress is a runner-level completion snapshot. Done/Total count every
// resolved point, whether simulated or served from the cache at enqueue
// time; DoneCost/TotalCost are the corresponding summed cost hints (see
// WithPointCost). HitCost is the portion of DoneCost that resolved as a
// cache hit — cost the run never spent wall-clock on. An ETA extrapolated
// from DoneCost alone would treat free hits as evidence of speed and
// predict near-zero remaining time on a warm cache; extrapolate from
// (DoneCost − HitCost) instead. On a fully cached run DoneCost − HitCost
// is zero: there is nothing to extrapolate from, and nothing left to
// predict.
type Progress struct {
	Done, Total         int
	DoneCost, TotalCost float64
	Hits                int
	HitCost             float64
}

// Fraction is the cost-weighted completion in [0, 1]. A run whose every
// point resolved at enqueue (TotalCost == 0 never happens once points
// exist, but a zero-cost hint sweep could produce it) counts as complete
// when all points are done.
func (p Progress) Fraction() float64 {
	if p.TotalCost <= 0 {
		if p.Total > 0 && p.Done >= p.Total {
			return 1
		}
		return 0
	}
	return p.DoneCost / p.TotalCost
}

// WithWeightedProgress is WithProgress with cost weighting: the callback
// receives the summed cost hints (see WithPointCost) of the finished and
// enqueued points. On sweeps whose point costs span orders of magnitude —
// the large-n conformance tail — the cost fraction is the honest
// completion estimate, where the raw point count would report a sweep
// "90% done" while the 2^20 point is still running. Points without a cost
// hint count as cost 1. Cache hits resolve at enqueue time and are
// reported immediately (a fully cached run still reaches Done == Total);
// use Progress.HitCost to keep them out of wall-clock extrapolations.
func WithWeightedProgress(f func(p Progress)) Option {
	return func(r *Runner) { r.weighted = f }
}

// WithLargestFirst makes the workers pick the pending point with the
// highest cost hint first (ties and unhinted points keep enqueue order).
// Sweeps enumerate problem sizes in increasing order, so under FIFO the
// most expensive points start *last* and the end of a run serializes on
// one worker grinding a multi-minute large-n point while the rest of the
// pool idles. Starting the heavy points first (longest-processing-time
// scheduling) overlaps them with the swarm of cheap points. Results are
// unaffected: rows are collected by point index and every point's RNG is
// derived from (seed, sweep, index), not from execution order.
func WithLargestFirst() Option {
	return func(r *Runner) { r.largestFirst = true }
}

// WithSink attaches a trace sink to every machine the runner leases out;
// the sink observes the messages of every point on every worker. With more
// than one worker the workers feed it concurrently, so pass a sink wrapped
// in trace.Synchronized (or run one worker). The runner does not close the
// sink.
func WithSink(s trace.Sink) Option {
	return func(r *Runner) { r.sink = s }
}

// WithShards executes every leased machine's parallel rounds across k
// shards (see machine.SetShards). Sharding changes wall-clock only: rows,
// metrics and trace streams are byte-identical for every k. k <= 1 keeps
// rounds sequential.
func WithShards(k int) Option {
	return func(r *Runner) { r.shards = k }
}

// WithBackend leases every machine with the given hardware backend applied
// (see machine.SetBackend): messages are costed on a finite W×H mesh or
// torus fabric instead of the ideal unbounded grid. Like WithMapping, the
// backend is deliberately NOT part of the per-point RNG seed — runs on
// different fabrics draw identical workloads, so backend comparisons
// measure the fabric, not a reshuffled input. It IS part of the simcache
// key (its canonical String form), so cached rows measured on different
// fabrics never alias. The backend is removed again (reset to Ideal) when
// a machine returns to the shared pool.
func WithBackend(b machine.Backend) Option {
	return func(r *Runner) { r.backend = b }
}

// WithBatchSends marks leased machines as driven through the batched send
// API, enabling the counting-only fast path for data-oblivious algorithms
// (see machine.CountingOnly). The fast path is automatically disabled on
// machines that get a trace sink (WithSink, WithCriticalPathCheck), so
// traced runs keep full register traffic.
func WithBatchSends() Option {
	return func(r *Runner) { r.batchSends = true }
}

// WithCriticalPathCheck makes every measurement self-verifying: each leased
// machine records its event stream into a per-point trace.CriticalPath, and
// at the end of every measurement the reconstructed depth and distance
// paths are checked against the machine's Depth and Distance metrics. A
// mismatch panics, which Sweep.Rows surfaces as a *PointPanic. Recording is
// O(messages) memory per in-flight point — a correctness harness, not a
// production mode.
func WithCriticalPathCheck() Option {
	return func(r *Runner) { r.cpCheck = true }
}

// WithCache consults a content-addressed result cache before running each
// sweep point. Hits are resolved at enqueue time: the point's rows come
// straight from the cache, it never enters the work queue, leases no
// machine, and skips critical-path verification (the rows were verified
// when first simulated and stored *after* that check passed — re-verifying
// would require re-simulating, which is the cost the cache exists to
// skip). Cost-weighted scheduling and deadlines therefore budget only the
// misses; progress callbacks still see the hits (resolved immediately,
// flagged via Progress.HitCost), so a warm run reports completion instead
// of silence. Misses run normally — WithCriticalPathCheck still fires on
// them — and their rows are stored once the point (and its verification)
// completes.
//
// Keys cover (sweep name, point index, runner seed, shards, batch,
// congestion, mapping, machine backend, code version), exactly the inputs
// that determine a point's rows; see simcache.Key. Every sweep is byte-deterministic in
// those inputs, so a hit is exact, not approximate.
func WithCache(c *simcache.Cache) Option {
	return func(r *Runner) { r.cache = c }
}

// WithCacheVersion overrides the code-version component of cache keys
// (default simcache.CodeVersion()). Tests use it to pin addresses;
// production runners should leave it alone.
func WithCacheVersion(v string) Option {
	return func(r *Runner) { r.cacheVersion = v }
}

// Runner executes sweeps on a bounded worker pool. Sweeps enqueued while
// others are still running share the same workers, so an experiment can
// overlap several sweeps by calling Go for each and collecting Rows in
// order — and Go may be called from several goroutines at once, which is
// how the simulation service multiplexes jobs onto one pooled engine.
// Points run on internal workers.
type Runner struct {
	workers      int
	seed         int64
	progress     func(done, total int)
	weighted     func(p Progress)
	sink         trace.Sink
	cpCheck      bool
	largestFirst bool
	shards       int
	batchSends   bool
	backend      machine.Backend
	backendStr   string
	cache        *simcache.Cache
	cacheVersion string

	pool sync.Pool // *machine.Machine, recycled via Reset

	mu        sync.Mutex
	queue     []task
	head      int
	running   int
	done      int
	total     int
	doneCost  float64
	totalCost float64
	hits      int
	hitCost   float64

	rowsSimulated atomic.Int64

	progressMu sync.Mutex
}

// New returns a runner whose point RNGs derive from seed.
func New(seed int64, opts ...Option) *Runner {
	r := &Runner{seed: seed, workers: runtime.GOMAXPROCS(0)}
	r.pool.New = func() any { return machine.New() }
	for _, o := range opts {
		o(r)
	}
	if r.workers < 1 {
		r.workers = 1
	}
	if r.cache != nil && r.cacheVersion == "" {
		r.cacheVersion = simcache.CodeVersion()
	}
	// Canonicalize once: cache keys always carry the String() form, so ""
	// and "ideal" (and any other spelling) address identically.
	r.backendStr = r.backend.String()
	return r
}

// Workers returns the configured worker count.
func (r *Runner) Workers() int { return r.workers }

// RowsSimulated reports how many rows the runner's points have actually
// produced by simulation — cache hits excluded. The service's /metrics
// endpoint exposes it next to the cache hit/miss counters.
func (r *Runner) RowsSimulated() int64 { return r.rowsSimulated.Load() }

// cacheKey builds the content address of one point of a sweep.
func (r *Runner) cacheKey(s *Sweep, idx int) simcache.Key {
	shards := r.shards
	if shards < 1 {
		shards = 1
	}
	return simcache.Key{
		Sweep:      s.name,
		Point:      idx,
		Seed:       r.seed,
		Shards:     shards,
		Batch:      r.batchSends,
		Congestion: s.cong,
		Mapping:    s.mapStr,
		Machine:    r.backendStr,
		Version:    r.cacheVersion,
	}
}

// Sweep is a handle to an in-flight sweep; Rows blocks for its results.
type Sweep struct {
	name     string
	point    PointFunc
	cong     bool
	cost     func(i int) float64
	deadline time.Time
	rows     [][]Row
	wg       sync.WaitGroup
	prog     func(done, total int, doneCost, totalCost float64)
	mapped   bool
	mapp     mapping.Mapping
	mapStr   string

	mu        sync.Mutex
	pan       *PointPanic
	skipped   int
	hits      int
	done      int
	total     int
	doneCost  float64
	totalCost float64

	progMu sync.Mutex
}

// SweepOption configures one sweep.
type SweepOption func(*Sweep)

// WithCongestion leases this sweep's machines with per-link congestion
// tracking enabled; tracking is removed again when a machine returns to
// the shared pool.
func WithCongestion() SweepOption {
	return func(s *Sweep) { s.cong = true }
}

// WithMapping attaches a layout/schedule mapping to the sweep, exposed to
// its points via Env.Mapping. The mapping is deliberately NOT part of the
// per-point RNG seed — that stays keyed on (runner seed, sweep name, point
// index) — so two sweeps sharing a name but differing in mapping draw
// identical workloads: candidate evaluations in a tuning run measure the
// same inputs, and only the configuration under test differs. The mapping
// IS part of the simcache key (its canonical string form), so cached rows
// of different candidates never alias.
func WithMapping(m mapping.Mapping) SweepOption {
	return func(s *Sweep) {
		s.mapped = true
		s.mapp = m
		s.mapStr = m.String()
	}
}

// WithPointCost attaches a relative cost hint to each point of the sweep
// (any monotone proxy for its expected wall-clock, e.g. n^1.5 for a
// sorting sweep). Costs drive WithLargestFirst scheduling and the
// doneCost/totalCost arguments of WithWeightedProgress; they never affect
// results. Without a hint every point costs 1.
func WithPointCost(f func(i int) float64) SweepOption {
	return func(s *Sweep) { s.cost = f }
}

// WithDeadline gives the sweep a wall-clock budget counted from enqueue.
// Points that have not *started* when the budget expires are skipped —
// they produce no rows and are counted by Skipped — so one oversized
// large-n tail cannot pin the whole run past its budget. Points already
// running are never interrupted (the simulator is not preemptible), so a
// run can overshoot the budget by at most its longest single point.
// Combine with WithLargestFirst so the heavy points start early rather
// than being the ones skipped. A truncated sweep is still deterministic
// in the rows it does produce (per-point RNGs), but *which* points run
// depends on machine speed — deadlines are a safety valve for scheduled
// runs, not for recorded-measurement reproduction.
func WithDeadline(d time.Duration) SweepOption {
	return func(s *Sweep) {
		if d > 0 {
			s.deadline = time.Now().Add(d)
		}
	}
}

// WithSweepProgress installs a per-sweep completion callback, invoked with
// this sweep's finished/enqueued point counts and summed cost hints every
// time one of its points resolves. Cache hits resolve at enqueue (so a
// fully cached sweep reports 100% immediately) and deadline-skipped points
// count as resolved — done always reaches total. Unlike the runner-level
// WithProgress, which aggregates every sweep on the pool, this is the
// honest per-job signal the simulation service streams to pollers. Calls
// arrive from worker goroutines (serialized per sweep).
func WithSweepProgress(f func(done, total int, doneCost, totalCost float64)) SweepOption {
	return func(s *Sweep) { s.prog = f }
}

// Skipped reports how many points were dropped by the sweep's deadline.
// Call it after Rows (it is racy while points are still in flight).
func (s *Sweep) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// CacheHits reports how many of the sweep's points were served from the
// runner's cache. Call it after Rows (it is racy while points are in
// flight).
func (s *Sweep) CacheHits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// finishPoint advances the sweep-local progress accounting and fires the
// sweep's progress callback. The callback runs under progMu (not the state
// mutex, so it may call Skipped/CacheHits), which serializes calls and
// keeps their arguments monotone.
func (s *Sweep) finishPoint(cost float64) {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	s.mu.Lock()
	s.done++
	s.doneCost += cost
	done, total := s.done, s.total
	doneCost, totalCost := s.doneCost, s.totalCost
	f := s.prog
	s.mu.Unlock()
	if f != nil {
		f(done, total, doneCost, totalCost)
	}
}

// PointPanic is the panic value re-raised by Rows when a point panicked on
// a worker. It carries the sweep name, point index, and the original panic
// value and stack.
type PointPanic struct {
	Sweep string
	Index int
	Value any
	Stack []byte
}

func (p *PointPanic) Error() string {
	return fmt.Sprintf("harness: sweep %q point %d panicked: %v\n%s", p.Sweep, p.Index, p.Value, p.Stack)
}

// Go enqueues a sweep of n points and returns immediately. The name keys
// the per-point RNG seeds, so renaming a sweep changes its workloads.
// With WithCache, points whose results are already stored resolve here —
// they never reach the queue, so scheduling and deadlines budget only the
// misses.
func (r *Runner) Go(name string, n int, point PointFunc, opts ...SweepOption) *Sweep {
	s := &Sweep{name: name, point: point, rows: make([][]Row, n)}
	for _, o := range opts {
		o(s)
	}
	costs := make([]float64, n)
	s.total = n
	for i := range costs {
		costs[i] = 1.0
		if s.cost != nil {
			costs[i] = s.cost(i)
		}
		s.totalCost += costs[i]
	}
	s.wg.Add(n)

	// Cache lookups happen before the queue lock: the disk backend may
	// touch files, and hits must not serialize the workers.
	hit := make([]bool, n)
	if r.cache != nil {
		for i := 0; i < n; i++ {
			if rows, ok := r.cache.Get(r.cacheKey(s, i)); ok {
				s.rows[i] = rows
				hit[i] = true
			}
		}
	}

	hitCount := 0
	r.mu.Lock()
	for i := 0; i < n; i++ {
		// Every point — hit or miss — counts toward runner-level progress;
		// hits resolve right here, so they advance done/doneCost too (and
		// are flagged in HitCost: zero wall-clock was spent on them, which
		// ETA extrapolation must know). Only misses enter the queue, so
		// scheduling and deadlines still budget just the real work.
		r.total++
		r.totalCost += costs[i]
		if hit[i] {
			hitCount++
			r.done++
			r.doneCost += costs[i]
			r.hits++
			r.hitCost += costs[i]
			continue
		}
		r.queue = append(r.queue, task{s: s, idx: i, cost: costs[i]})
	}
	p := r.snapshotLocked()
	f, w := r.progress, r.weighted
	// Workers park themselves when the queue drains; top the pool back up
	// to min(workers, pending).
	for r.running < r.workers && r.running < len(r.queue)-r.head {
		r.running++
		go r.work()
	}
	r.mu.Unlock()

	if hitCount > 0 {
		// One notification for the whole batch of enqueue-time hits: a
		// fully cached run reports Done == Total (and prints its final
		// progress line) instead of staying silent.
		r.notify(f, w, p)
	}

	for i := 0; i < n; i++ {
		if !hit[i] {
			continue
		}
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
		s.finishPoint(costs[i])
		s.wg.Done()
	}
	return s
}

// Sweep runs a sweep to completion: Go followed by Rows.
func (r *Runner) Sweep(name string, n int, point PointFunc, opts ...SweepOption) []Row {
	return r.Go(name, n, point, opts...).Rows()
}

// Rows waits until every point of the sweep has run and returns their rows
// flattened in point order. If a point panicked, Rows re-raises the first
// panic on the caller's goroutine as a *PointPanic.
func (s *Sweep) Rows() []Row {
	s.wg.Wait()
	if s.pan != nil {
		panic(s.pan)
	}
	rows := make([]Row, 0, len(s.rows))
	for _, rs := range s.rows {
		rows = append(rows, rs...)
	}
	return rows
}

type task struct {
	s    *Sweep
	idx  int
	cost float64
}

func (r *Runner) work() {
	for {
		r.mu.Lock()
		if r.head == len(r.queue) {
			r.queue = r.queue[:0]
			r.head = 0
			r.running--
			r.mu.Unlock()
			return
		}
		if r.largestFirst {
			// Longest-processing-time scheduling: swap the costliest pending
			// task to the head. O(pending) per pop against queues of at most
			// a few hundred points; ties keep enqueue (FIFO) order.
			best := r.head
			for i := r.head + 1; i < len(r.queue); i++ {
				if r.queue[i].cost > r.queue[best].cost {
					best = i
				}
			}
			r.queue[r.head], r.queue[best] = r.queue[best], r.queue[r.head]
		}
		t := r.queue[r.head]
		r.queue[r.head] = task{}
		r.head++
		r.mu.Unlock()
		t.run(r)
		r.tick(t.cost)
	}
}

func (t task) run(r *Runner) {
	s := t.s
	defer s.wg.Done()
	defer s.finishPoint(t.cost)
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.mu.Lock()
		s.skipped++
		s.mu.Unlock()
		return
	}
	env := &Env{Rng: rand.New(rand.NewSource(pointSeed(r.seed, s.name, t.idx))), r: r, s: s, cong: s.cong}
	defer env.release()
	defer func() {
		if v := recover(); v != nil {
			s.mu.Lock()
			if s.pan == nil {
				s.pan = &PointPanic{Sweep: s.name, Index: t.idx, Value: v, Stack: debug.Stack()}
			}
			s.mu.Unlock()
		}
	}()
	s.rows[t.idx] = s.point(t.idx, env)
	// The point's final measurement ends here; check it before release
	// resets the machine (the recover above turns a mismatch into the
	// sweep's PointPanic).
	env.verify()
	r.rowsSimulated.Add(int64(len(s.rows[t.idx])))
	// Store only rows that passed verification: a panic above skips both
	// this Put and the row assignment it would have cached. Encode errors
	// (exotic cell types) just leave the point uncached.
	if r.cache != nil {
		_ = r.cache.Put(r.cacheKey(s, t.idx), s.rows[t.idx])
	}
}

func (r *Runner) tick(cost float64) {
	r.mu.Lock()
	r.done++
	r.doneCost += cost
	p := r.snapshotLocked()
	f, w := r.progress, r.weighted
	r.mu.Unlock()
	r.notify(f, w, p)
}

// snapshotLocked captures runner-level progress; callers hold r.mu.
func (r *Runner) snapshotLocked() Progress {
	return Progress{
		Done: r.done, Total: r.total,
		DoneCost: r.doneCost, TotalCost: r.totalCost,
		Hits: r.hits, HitCost: r.hitCost,
	}
}

// notify delivers a progress snapshot to the installed callbacks,
// serialized under progressMu so their arguments stay monotone.
func (r *Runner) notify(f func(done, total int), w func(Progress), p Progress) {
	if f == nil && w == nil {
		return
	}
	r.progressMu.Lock()
	if f != nil {
		f(p.Done, p.Total)
	}
	if w != nil {
		w(p)
	}
	r.progressMu.Unlock()
}

// pointSeed derives a point's RNG seed from (base seed, sweep name, point
// index) with an FNV-1a mix. Stable across runs, platforms and worker
// counts.
func pointSeed(base int64, sweep string, idx int) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(sweep))
	binary.LittleEndian.PutUint64(b[:], uint64(idx))
	h.Write(b[:])
	return int64(h.Sum64())
}
