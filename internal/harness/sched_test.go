package harness

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/simcache"
)

func TestWithLargestFirstOrder(t *testing.T) {
	// One worker, costs increasing with index: LPT must pop the points in
	// strictly decreasing cost order, while the rows still come back in
	// point order.
	var mu sync.Mutex
	var order []int
	r := New(1, WithWorkers(1), WithLargestFirst())
	s := r.Go("sched/lpt", 4, func(i int, env *Env) []Row {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return One(i, env.Rng.Int63())
	}, WithPointCost(func(i int) float64 { return float64(i) }))
	rows := s.Rows()
	if want := []int{3, 2, 1, 0}; !reflect.DeepEqual(order, want) {
		t.Errorf("execution order = %v, want %v (largest cost first)", order, want)
	}
	for i, row := range rows {
		if row[0].(int) != i {
			t.Errorf("row %d out of order: %v (scheduling must not reorder results)", i, row)
		}
	}
}

func TestWithLargestFirstTiesKeepFIFO(t *testing.T) {
	// Unhinted points all cost 1: LPT degenerates to plain FIFO.
	var mu sync.Mutex
	var order []int
	r := New(1, WithWorkers(1), WithLargestFirst())
	r.Go("sched/ties", 4, func(i int, env *Env) []Row {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return One(i)
	}).Rows()
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Errorf("execution order = %v, want FIFO %v on tied costs", order, want)
	}
}

func TestWithDeadlineSkipsUnstartedPoints(t *testing.T) {
	// One worker, the first point overruns the sweep budget: every point
	// that has not started when it expires is skipped, not interrupted.
	r := New(1, WithWorkers(1))
	s := r.Go("sched/deadline", 5, func(i int, env *Env) []Row {
		time.Sleep(300 * time.Millisecond)
		return One(i)
	}, WithDeadline(100*time.Millisecond))
	rows := s.Rows()
	if got := s.Skipped(); got+len(rows) != 5 {
		t.Errorf("skipped %d + %d rows != 5 points", got, len(rows))
	}
	// The worker is busy for 300ms > 100ms budget, so at most the first
	// point (started before expiry) produced rows.
	if got := s.Skipped(); got < 4 {
		t.Errorf("skipped = %d, want >= 4", got)
	}
	for _, row := range rows {
		if row[0].(int) != 0 {
			t.Errorf("unexpected row from point %v after deadline", row[0])
		}
	}
}

func TestWithDeadlineZeroMeansNone(t *testing.T) {
	r := New(1, WithWorkers(2))
	s := r.Go("sched/nodeadline", 4, func(i int, env *Env) []Row {
		return One(i)
	}, WithDeadline(0))
	if rows := s.Rows(); len(rows) != 4 || s.Skipped() != 0 {
		t.Errorf("zero deadline skipped points: %d rows, %d skipped", len(rows), s.Skipped())
	}
}

func TestWithWeightedProgress(t *testing.T) {
	ch := make(chan Progress, 8)
	r := New(1, WithWorkers(2), WithWeightedProgress(func(p Progress) {
		ch <- p
	}))
	r.Go("sched/weighted", 3, func(i int, env *Env) []Row {
		return One(i)
	}, WithPointCost(func(i int) float64 { return float64(int(1) << uint(i)) })).Rows()
	// Rows can return before the final tick fires; drain all 3 callbacks.
	var last Progress
	for i := 0; i < 3; i++ {
		select {
		case last = <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("progress callback %d never arrived", i)
		}
	}
	if last.Done != 3 || last.Total != 3 {
		t.Errorf("final progress %d/%d, want 3/3", last.Done, last.Total)
	}
	if last.DoneCost != 7 || last.TotalCost != 7 {
		t.Errorf("final cost progress %v/%v, want 7/7 (1+2+4)", last.DoneCost, last.TotalCost)
	}
	if last.Hits != 0 || last.HitCost != 0 {
		t.Errorf("uncached run reported hits: %d (%v cost)", last.Hits, last.HitCost)
	}
	if last.Fraction() != 1 {
		t.Errorf("final Fraction() = %v, want 1", last.Fraction())
	}
}

// TestProgressCountsCacheHits: enqueue-time cache hits must still advance
// runner-level progress (Done, DoneCost) and be flagged via Hits/HitCost —
// a fully warm run previously produced no progress callbacks at all.
func TestProgressCountsCacheHits(t *testing.T) {
	cache := simcache.New(nil, 0)
	point := func(i int, env *Env) []Row { return One(i) }
	cost := WithPointCost(func(i int) float64 { return float64(i + 1) })

	cold := New(1, WithWorkers(2), WithCache(cache))
	cold.Go("sched/hits", 3, point, cost).Rows()

	ch := make(chan Progress, 8)
	warm := New(1, WithWorkers(2), WithCache(cache), WithWeightedProgress(func(p Progress) {
		ch <- p
	}))
	warm.Go("sched/hits", 3, point, cost).Rows()
	var last Progress
	select {
	case last = <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("warm all-hit run produced no progress callback")
	}
	for {
		select {
		case last = <-ch:
			continue
		default:
		}
		break
	}
	if last.Done != 3 || last.Total != 3 || last.Hits != 3 {
		t.Errorf("warm progress = %+v, want Done=Total=Hits=3", last)
	}
	if last.HitCost != 6 || last.DoneCost != 6 {
		t.Errorf("warm cost progress = %+v, want HitCost=DoneCost=6", last)
	}
	if last.Fraction() != 1 {
		t.Errorf("warm Fraction() = %v, want 1", last.Fraction())
	}
}

// TestRegistryMaxPointsPrefixProperty: for every cap k and any worker
// count or scheduling policy, the capped run's rows are byte-identical to
// the first k points of the uncapped run — the property the conformance
// checker's MaxPoints option and the nightly/quick split both lean on.
func TestRegistryMaxPointsPrefixProperty(t *testing.T) {
	const points = 6
	spec := SweepSpec{
		Name:   "reg/prefix-prop",
		Points: points,
		Cost:   func(i int) float64 { return float64(points - i) }, // reversed costs: LPT runs backwards
		Point: func(i int, env *Env) []Row {
			// Multi-cell rows drawn from the point RNG: any reseeding or
			// cross-point stream sharing shows up as a cell mismatch.
			return One(i, env.Rng.Int63(), env.Rng.Float64(), env.Rng.Int63())
		},
	}

	baseline := func() []Row {
		var g Registry
		g.MustRegister(spec)
		rows, err := g.Run(New(11, WithWorkers(1)), spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}()

	for _, workers := range []int{1, 3, 8} {
		for _, lpt := range []bool{false, true} {
			for k := 1; k <= points; k++ {
				var g Registry
				g.MustRegister(spec)
				opts := []Option{WithWorkers(workers)}
				if lpt {
					opts = append(opts, WithLargestFirst())
				}
				rows, err := g.Run(New(11, opts...), spec.Name, MaxPoints(k))
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) != k {
					t.Fatalf("workers=%d lpt=%v k=%d: got %d rows", workers, lpt, k, len(rows))
				}
				if !reflect.DeepEqual(rows, baseline[:k]) {
					t.Errorf("workers=%d lpt=%v k=%d: capped rows differ from uncapped prefix\n got %v\nwant %v",
						workers, lpt, k, rows, baseline[:k])
				}
			}
		}
	}
}
