package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/workload"
)

// Finite-hardware backend sweeps: the same Table I sort measured on the
// ideal unbounded grid and on a folded W×H fabric (internal/machine
// backends). The fabric side is fixed at backendFabricSide and the fold
// block scales with the layout side, so the whole layout occupies exactly
// one pane — the regime where the per-message fold bounds are provable:
//
//	d_mesh <= d_ideal <= block·(d_mesh + 2)
//
// summing to E_mesh <= E_ideal <= f·(E_mesh + 2·messages) with f = block.
// The torus variant takes the shorter ring direction per axis, so
// E_torus <= E_mesh unconditionally. Backends change costs, never
// results: the sorted outputs must be byte-identical on every fabric.
const backendFabricSide = 8

// backendSortRun measures one MergeSort of vals under the given backend
// and returns the metrics, the peak per-link load (0 unless the machine
// tracks congestion), and an FNV-1a hash of the sorted output — the
// cross-backend answer-invariance fingerprint.
func backendSortRun(bk machine.Backend, n int, vals []float64, env *harness.Env) (machine.Metrics, int64, uint64) {
	m := env.Machine()
	// Explicit on every run — the runner itself may carry a backend
	// (harness.WithBackend), and these measurements compare fixed fabrics.
	m.SetBackend(bk)
	r := grid.SquareFor(machine.Coord{}, n)
	tr := grid.RowMajor(r)
	placeFloats(m, tr, "v", vals, 0)
	core.MergeSort(m, r, "v", order.Float64)
	met := m.Metrics()
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(m.Get(tr.At(i), "v").(float64)))
		h.Write(b[:])
	}
	return met, m.MaxCongestion(), h.Sum64()
}

// backendFoldBlock returns the per-axis fold block that maps the layout
// square for n exactly onto the backendFabricSide² fabric.
func backendFoldBlock(n int) int {
	side := grid.SquareFor(machine.Coord{}, n).W
	return side / backendFabricSide
}

// registerBackendSweeps registers the bounds/backend-* sweeps.
//
// bounds/backend-sort rows: {n, idealE, meshE, torusE, inflation, match}
// where inflation = idealE / (f·(meshE + 2·messages)) — provably <= 1 when
// the layout fits one pane — and match is 1 when the sorted outputs agree
// bit-for-bit across all three backends.
//
// bounds/backend-congestion rows: {n, idealE, idealMaxLink, meshE,
// meshMaxLink, loadInflation}: the same sort on a congestion-tracking
// machine; folding onto a fixed fabric concentrates the same total load
// onto ever fewer physical links, so loadInflation = meshMaxLink /
// idealMaxLink grows with n.
func registerBackendSweeps(reg *harness.Registry, quick bool) {
	ns := pick(quick, []int{256, 1024, 4096}, []int{256, 1024, 4096, 16384, 65536})
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/backend-sort",
		Points: len(ns),
		Cost:   costOf(ns, costNSqrtN),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := ns[i]
			vals := workload.Array(workload.Random, n, env.Rng)
			block := backendFoldBlock(n)
			im, _, ih := backendSortRun(machine.Ideal(), n, vals, env)
			mm, _, mh := backendSortRun(machine.Mesh(backendFabricSide, backendFabricSide, block), n, vals, env)
			tm, _, th := backendSortRun(machine.Torus(backendFabricSide, backendFabricSide, block), n, vals, env)
			inflation := float64(im.Energy) / (float64(block) * float64(mm.Energy+2*mm.Messages))
			match := 0.0
			if ih == mh && mh == th {
				match = 1.0
			}
			return harness.One(n, float64(im.Energy), float64(mm.Energy), float64(tm.Energy), inflation, match)
		},
	})

	cgNs := pick(quick, []int{256, 1024, 4096}, []int{256, 1024, 4096, 16384})
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/backend-congestion",
		Points: len(cgNs),
		Cost:   costOf(cgNs, costNSqrtN),
		Opts:   []harness.SweepOption{harness.WithCongestion()},
		Point: func(i int, env *harness.Env) []harness.Row {
			n := cgNs[i]
			vals := workload.Array(workload.Random, n, env.Rng)
			block := backendFoldBlock(n)
			im, iLink, _ := backendSortRun(machine.Ideal(), n, vals, env)
			mm, mLink, _ := backendSortRun(machine.Mesh(backendFabricSide, backendFabricSide, block), n, vals, env)
			return harness.One(n, float64(im.Energy), float64(iLink), float64(mm.Energy), float64(mLink),
				float64(mLink)/float64(iLink))
		},
	})
}

// Column indices of the bounds/backend-sort row shape, exported for claim
// definitions.
const (
	BackendColN         = 0
	BackendColIdealE    = 1
	BackendColMeshE     = 2
	BackendColTorusE    = 3
	BackendColInflation = 4
	BackendColMatch     = 5
)

// runBackend renders the finite-hardware backend comparison for
// spatialbench: the Table I sort on the ideal grid vs a folded
// backendFabricSide² mesh and torus, with the provable fold-inflation
// bound and the answer-invariance check, plus the link-load concentration
// of the fixed fabric.
func runBackend(cfg Config) {
	ns := sizes(cfg.Quick, 256, 1024, 4096, 16384)
	rows := cfg.H.Sweep("backend", len(ns), func(i int, env *harness.Env) []harness.Row {
		n := ns[i]
		vals := workload.Array(workload.Random, n, env.Rng)
		block := backendFoldBlock(n)
		im, iLink, ih := backendSortRun(machine.Ideal(), n, vals, env)
		mm, mLink, mh := backendSortRun(machine.Mesh(backendFabricSide, backendFabricSide, block), n, vals, env)
		tm, _, th := backendSortRun(machine.Torus(backendFabricSide, backendFabricSide, block), n, vals, env)
		match := "DIVERGED"
		if ih == mh && mh == th {
			match = "ok"
		}
		inflation := float64(im.Energy) / (float64(block) * float64(mm.Energy+2*mm.Messages))
		return harness.One(n, block, float64(im.Energy), float64(mm.Energy), float64(tm.Energy),
			inflation, float64(mLink)/float64(iLink), match)
	}, harness.WithCongestion())
	t := analysis.NewTable("n", "fold block", "ideal energy", "mesh energy", "torus energy",
		"E_i/(f*(E_m+2M))", "link-load inflation", "answers")
	addRows(t, rows)
	emit(cfg, t)
	fmt.Fprintf(cfg.Out, "\nfabric: %dx%d physical PEs; fold block scales with the layout side so the layout fills exactly one pane\n",
		backendFabricSide, backendFabricSide)
	fmt.Fprintln(cfg.Out, "expected shape: E_torus <= E_mesh <= E_ideal <= f*(E_mesh + 2*messages); answers identical on every fabric;")
	fmt.Fprintln(cfg.Out, "link-load inflation grows with n (the same traffic squeezes through a fixed number of physical links)")
}
