// Package experiments defines the paper's evaluation experiments — Table I
// and the per-lemma/figure cost comparisons — as code shared by every
// driver: cmd/spatialbench renders them as tables, and internal/bounds
// replays the named measurement sweeps (see sweeps.go) to machine-check
// the claimed Θ/O bounds.
package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/analysis"
	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/pram"
	"repro/internal/sortnet"
	"repro/internal/spmv"
	"repro/internal/tree"
	"repro/internal/workload"
)

// Every experiment decomposes into independent measurement points —
// (sweep x problem size x algorithm variant) — executed through the
// config's harness.Runner: points fan out across workers, lease pooled
// machines (machine.Reset recycles the grid in place), and their rows are
// collected back in point order. Each point draws its workload from an RNG
// seeded by (base seed, sweep name, point index), so the emitted tables
// are byte-identical for any -parallel value.

// Config carries one driver invocation's settings: sweep sizes, output
// encoding and destination, and the harness runner the sweeps execute on.
type Config struct {
	Quick bool      // smaller problem sizes
	CSV   bool      // emit CSV instead of text tables
	JSON  bool      // emit JSON instead of text tables
	Out   io.Writer // experiment output
	H     *harness.Runner
}

// Experiment is one named evaluation artifact reproduction.
type Experiment struct {
	Name     string
	Artifact string // the paper artifact it reproduces
	Desc     string
	Run      func(cfg Config)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I", "energy/depth/distance scaling of scan, sort, selection, SpMV", runTable1},
		{"collectives", "Lemma IV.1, Cor. IV.2", "broadcast and reduce bounds on h x w subgrids", runCollectives},
		{"scan-ablation", "Fig. 1 / Sec. IV-C", "Z-order scan vs binary-tree scan vs sequential scan", runScanAblation},
		{"reduce-ablation", "Sec. IV-B", "multicast-free reduce vs binary-tree reduce (log-factor energy win)", runReduceAblation},
		{"sort-ablation", "Fig. 2, Lemmas V.3-V.4, Thm V.8", "2-D mergesort vs bitonic network vs mesh shearsort", runSortAblation},
		{"components", "Lemmas V.5-V.7", "all-pairs sort, rank selection in sorted arrays, 2-D merge bounds", runComponents},
		{"lowerbound", "Lemma V.1, Cor. V.2", "permutation energy lower bound and sorting optimality", runLowerBound},
		{"selection", "Thm VI.3", "randomized selection: linear energy, polylog depth, vs sorting", runSelection},
		{"pram", "Lemmas VII.1-VII.2", "EREW and CRCW simulation per-step costs", runPRAM},
		{"spmv-ablation", "Thm VIII.2 / Sec. VIII", "direct SpMV vs PRAM-simulated SpMV across matrix families", runSpMVAblation},
		{"treefix", "Sec. II-A vs [38]", "Euler-tour treefix sums at Theta(n) energy vs the tree-scan baseline", runTreefix},
		{"depth-scaling", "Table I depth column", "fitted polylog degrees of depth for all four primitives", runDepthScaling},
		{"congestion", "extension", "max per-link load (XY routing) of scans, sorts and broadcast", runCongestion},
		{"graph", "composed workloads", "BFS, connected components, PageRank, triangles on the primitives", runGraph},
		{"backend", "extension", "Table I sort folded onto finite mesh/torus fabrics: energy, inflation bound, link load", runBackend},
	}
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// placeFloats lays vals out on the given track, padding the remainder of
// the track with pad.
func placeFloats(m *machine.Machine, t grid.Track, reg machine.Reg, vals []float64, pad float64) {
	for i := 0; i < t.Len(); i++ {
		v := pad
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), reg, v)
	}
}

func sizes(quick bool, full ...int) []int {
	if quick && len(full) > 2 {
		return full[:len(full)-1]
	}
	return full
}

// squareFor returns a power-of-two square region holding at least n cells.
func squareFor(n int) grid.Rect {
	side := 1
	for side*side < n {
		side *= 2
	}
	return grid.Square(machine.Coord{}, side)
}

// tailExp is the scaling exponent between the last two sweep points. The
// distance metric converges slowly (additive O(sqrt n) terms with large
// constants dominate small sizes), so the tail is the honest estimate.
func tailExp(pts []analysis.Point) float64 { return analysis.TailExponent(pts) }

func emit(cfg Config, t *analysis.Table) {
	switch {
	case cfg.JSON:
		fmt.Fprint(cfg.Out, t.JSON())
	case cfg.CSV:
		fmt.Fprint(cfg.Out, t.CSV())
	default:
		fmt.Fprint(cfg.Out, t.String())
	}
}

// addRows copies harness rows into the table in sweep order.
func addRows(t *analysis.Table, rows []harness.Row) {
	for _, r := range rows {
		t.AddRow(r...)
	}
}

// cellF reads a numeric cell back out of a harness row (the fits reuse the
// same values the table prints).
func cellF(v any) float64 {
	switch x := v.(type) {
	case int:
		return float64(x)
	case int64:
		return float64(x)
	case float64:
		return x
	}
	panic(fmt.Sprintf("spatialbench: non-numeric cell %T", v))
}

// colPoints extracts (rows[i][nCol], rows[i][costCol]) as fit points.
func colPoints(rows []harness.Row, nCol, costCol int) []analysis.Point {
	pts := make([]analysis.Point, len(rows))
	for i, r := range rows {
		pts[i] = analysis.Point{N: cellF(r[nCol]), Cost: cellF(r[costCol])}
	}
	return pts
}

// ---------------------------------------------------------------- table1 --

// runTable1 reproduces Table I: for each primitive, sweep n, measure
// energy/depth/distance, fit the scaling exponents and compare them with
// the paper's Theta bounds. The four primitive sweeps run overlapped on
// the shared worker pool.
func runTable1(cfg Config) {
	type prim struct {
		name string
		ns   []int
		run  func(n int, env *harness.Env) machine.Metrics
	}
	prims := []prim{
		{"scan", sizes(cfg.Quick, 256, 1024, 4096, 16384, 65536), MeasureScan},
		{"sort", sizes(cfg.Quick, 256, 1024, 4096, 16384), MeasureSort},
		{"selection", sizes(cfg.Quick, 256, 1024, 4096, 16384), MeasureSelection},
		{"spmv", sizes(cfg.Quick, 256, 1024, 4096, 16384), MeasureSpMV},
	}

	sweeps := make([]*harness.Sweep, len(prims))
	for i, p := range prims {
		p := p
		sweeps[i] = cfg.H.Go("table1/"+p.name, len(p.ns), func(j int, env *harness.Env) []harness.Row {
			mm := p.run(p.ns[j], env)
			return harness.One(p.name, p.ns[j], float64(mm.Energy), float64(mm.Depth), float64(mm.Distance))
		})
	}

	t := analysis.NewTable("problem", "n", "energy", "depth", "distance")
	eFit := make([]float64, len(prims))
	dTail := make([]float64, len(prims))
	for i := range prims {
		rows := sweeps[i].Rows()
		addRows(t, rows)
		eFit[i] = analysis.FitExponent(colPoints(rows, 1, 2))
		dTail[i] = tailExp(colPoints(rows, 1, 4))
	}

	emit(cfg, t)
	fmt.Fprintln(cfg.Out)
	v := analysis.NewTable("problem", "paper energy", "measured exp", "verdict", "paper distance", "tail exp", "verdict")
	v.AddRow("scan", "Theta(n)", eFit[0], analysis.Verdict(eFit[0], 1.0, 0.15), "Theta(sqrt n)", dTail[0], analysis.Verdict(dTail[0], 0.5, 0.3))
	v.AddRow("sort", "Theta(n^1.5)", eFit[1], analysis.Verdict(eFit[1], 1.5, 0.25), "Theta(sqrt n)", dTail[1], analysis.Verdict(dTail[1], 0.5, 0.3))
	v.AddRow("selection", "Theta(n)", eFit[2], analysis.Verdict(eFit[2], 1.0, 0.2), "Theta(sqrt n)", dTail[2], analysis.Verdict(dTail[2], 0.5, 0.3))
	v.AddRow("spmv", "Theta(m^1.5)", eFit[3], analysis.Verdict(eFit[3], 1.5, 0.25), "Theta(sqrt m)", dTail[3], analysis.Verdict(dTail[3], 0.5, 0.3))
	fmt.Fprint(cfg.Out, v.String())
	fmt.Fprintln(cfg.Out, "\ndepth values above are O(log n), O(log^3 n), O(log^2 n), O(log^3 n) respectively (polylog; see the per-experiment sections);")
	fmt.Fprintln(cfg.Out, "distance uses the tail exponent — additive O(sqrt n) terms with large constants dominate the small end of the sweep")
}

// ----------------------------------------------------------- collectives --

// runCollectives validates Lemma IV.1 / Corollary IV.2 on square, column
// and general h x w subgrids: energy within a constant of hw + h log h,
// logarithmic depth, O(h + w) distance.
func runCollectives(cfg Config) {
	shapes := [][2]int{{32, 32}, {64, 64}, {128, 128}, {1024, 1}, {4096, 1}, {256, 16}, {16, 256}, {512, 8}}
	if cfg.Quick {
		shapes = shapes[:5]
	}
	rows := cfg.H.Sweep("collectives", len(shapes), func(i int, env *harness.Env) []harness.Row {
		h, w := shapes[i][0], shapes[i][1]
		r := grid.Rect{Origin: machine.Coord{}, H: h, W: w}
		bm := env.Measure(func(m *machine.Machine) {
			m.Set(r.Origin, "v", 1.0)
			collectives.Broadcast(m, r, "v")
		})
		rm := env.Measure(func(m *machine.Machine) {
			placeFloats(m, grid.RowMajor(r), "v", nil, 1)
			collectives.Reduce(m, r, "v", collectives.Add)
		})
		bound := float64(h*w) + float64(maxInt(h, w))*log2f(maxInt(h, w))
		return []harness.Row{
			{"broadcast", h, w, float64(bm.Energy), bound, float64(bm.Energy) / bound, bm.Depth, bm.Distance},
			{"reduce", h, w, float64(rm.Energy), bound, float64(rm.Energy) / bound, rm.Depth, rm.Distance},
		}
	})
	t := analysis.NewTable("op", "h", "w", "energy", "hw+h*log(h)", "ratio", "depth", "distance")
	addRows(t, rows)
	emit(cfg, t)
}

// ---------------------------------------------------------- scan ablation --

// runScanAblation compares the three scan designs of Section IV-C. The
// Z-order scan must match the sequential scan's Theta(n) energy while
// keeping the tree scan's O(log n) depth; the tree scan pays an extra
// Theta(log n) energy factor.
func runScanAblation(cfg Config) {
	ns := sizes(cfg.Quick, 256, 1024, 4096, 16384, 65536)
	rows := cfg.H.Sweep("scan-ablation", len(ns), func(i int, env *harness.Env) []harness.Row {
		n := ns[i]
		vals := workload.Array(workload.Random, n, env.Rng)
		z := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.ZOrder(r), "v", vals, 0)
			collectives.Scan(m, r, "v", collectives.Add, 0.0)
		})
		tr := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			collectives.ScanTrack(m, grid.RowMajor(r), "v", collectives.Add, 0.0)
		})
		sq := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.ZOrder(r), "v", vals, 0)
			collectives.ScanSequential(m, grid.ZOrder(r), "v", collectives.Add)
		})
		return harness.One(n, float64(z.Energy), float64(tr.Energy), float64(sq.Energy),
			float64(tr.Energy)/float64(z.Energy), z.Depth, tr.Depth, sq.Depth)
	})
	t := analysis.NewTable("n", "zorder energy", "tree energy", "seq energy", "tree/zorder", "zorder depth", "tree depth", "seq depth")
	addRows(t, rows)
	emit(cfg, t)
	fmt.Fprintln(cfg.Out, "\nexpected shape: tree/zorder ratio grows ~log n; zorder and seq energies stay within a constant; seq depth = n-1")
}

// -------------------------------------------------------- reduce ablation --

func runReduceAblation(cfg Config) {
	ss := sizes(cfg.Quick, 16, 32, 64, 128, 256)
	rows := cfg.H.Sweep("reduce-ablation", len(ss), func(i int, env *harness.Env) []harness.Row {
		side := ss[i]
		r := grid.Square(machine.Coord{}, side)
		two := env.Measure(func(m *machine.Machine) {
			placeFloats(m, grid.RowMajor(r), "v", nil, 1)
			collectives.Reduce(m, r, "v", collectives.Add)
		})
		tr := env.Measure(func(m *machine.Machine) {
			placeFloats(m, grid.RowMajor(r), "v", nil, 1)
			collectives.ReduceTrack(m, grid.RowMajor(r), "v", collectives.Add)
		})
		return harness.One(side*side, float64(two.Energy), float64(tr.Energy),
			float64(tr.Energy)/float64(two.Energy), two.Depth, tr.Depth)
	})
	t := analysis.NewTable("n", "2D reduce energy", "tree reduce energy", "ratio", "2D depth", "tree depth")
	addRows(t, rows)
	emit(cfg, t)
	fmt.Fprintln(cfg.Out, "\nexpected shape: ratio grows ~log n (Section IV-B's Theta(log n) energy improvement at equal O(log n) depth)")
}

// ---------------------------------------------------------- sort ablation --

// runSortAblation is the sorting comparison behind Figure 2 and Section
// V-C's discussion: bitonic pays a log-factor more energy than mergesort
// asymptotically (normalized energies diverge), and the mesh baseline pays
// polynomial depth.
func runSortAblation(cfg Config) {
	ns := sizes(cfg.Quick, 256, 1024, 4096, 16384)
	rows := cfg.H.Sweep("sort-ablation", len(ns), func(i int, env *harness.Env) []harness.Row {
		n := ns[i]
		vals := workload.Array(workload.Random, n, env.Rng)
		ms := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			core.MergeSort(m, r, "v", order.Float64)
		})
		bs := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			sortnet.Sort(m, grid.RowMajor(r), "v", n, order.Float64)
		})
		sh := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			sortnet.Shearsort(m, r, "v", order.Float64)
		})
		n15 := float64(n) * sqrtf(n)
		return harness.One(n, float64(ms.Energy), float64(bs.Energy), float64(sh.Energy),
			float64(ms.Energy)/n15, float64(bs.Energy)/n15, ms.Depth, bs.Depth, sh.Depth)
	})
	t := analysis.NewTable("n", "merge energy", "bitonic energy", "mesh energy",
		"merge E/n^1.5", "bitonic E/n^1.5", "merge depth", "bitonic depth", "mesh depth")
	addRows(t, rows)
	emit(cfg, t)
	fmt.Fprintf(cfg.Out, "\nmergesort energy exponent: %.3f (paper: 1.5)   bitonic energy exponent: %.3f (paper: 1.5 + log factor)\n",
		analysis.FitExponent(colPoints(rows, 0, 1)), analysis.FitExponent(colPoints(rows, 0, 2)))
	fmt.Fprintln(cfg.Out, "expected shape: bitonic E/n^1.5 grows with n while mergesort E/n^1.5 falls toward a constant; mesh depth ~ sqrt(n) log n vs polylog for the others")
}

// ------------------------------------------------------------- components --

func runComponents(cfg Config) {
	// All-Pairs Sort (Lemma V.5): O(n^{5/2}) energy, O(log n) depth.
	apNs := sizes(cfg.Quick, 16, 64, 256)
	apSweep := cfg.H.Go("components/all-pairs", len(apNs), func(i int, env *harness.Env) []harness.Row {
		n := apNs[i]
		vals := workload.Array(workload.Random, n, env.Rng)
		mm := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			tr := grid.RowMajor(r)
			placeFloats(m, tr, "v", vals, 0)
			scratch := r.RightOf(core.AllPairsScratchSide(n), core.AllPairsScratchSide(n))
			core.AllPairsSort(m, tr, "v", n, scratch, order.Float64)
		})
		return harness.One(n, float64(mm.Energy), mm.Depth, mm.Distance)
	})

	// Rank selection in two sorted arrays (Lemma V.6).
	rsNs := sizes(cfg.Quick, 1024, 4096, 16384)
	rsSweep := cfg.H.Go("components/rank-select", len(rsNs), func(i int, env *harness.Env) []harness.Row {
		n := rsNs[i]
		half := n / 2
		a := workload.Array(workload.Sorted, half, env.Rng)
		b := workload.Array(workload.Sorted, half, env.Rng)
		mm := env.Measure(func(m *machine.Machine) {
			ra := squareFor(half)
			rb := grid.Square(machine.Coord{Row: 0, Col: ra.W + 1}, ra.W)
			tA := grid.Slice(grid.RowMajor(ra), 0, half)
			tB := grid.Slice(grid.RowMajor(rb), 0, half)
			placeFloats(m, tA, "v", a, 0)
			placeFloats(m, tB, "v", b, 0)
			scratch := grid.Square(machine.Coord{Row: ra.H + 1, Col: 0}, core.SelectScratchSide(n))
			core.SelectInSorted(m, tA, tB, "v", n/2, scratch, order.Float64)
		})
		return harness.One(n, float64(mm.Energy), mm.Depth, mm.Distance)
	})

	// 2-D Merge (Lemma V.7): O(n^{3/2}) energy, O(log^2 n) depth.
	mgNs := sizes(cfg.Quick, 512, 2048, 8192)
	mgSweep := cfg.H.Go("components/merge", len(mgNs), func(i int, env *harness.Env) []harness.Row {
		n := mgNs[i]
		quarter := n / 2
		a := workload.Array(workload.Sorted, quarter, env.Rng)
		b := workload.Array(workload.Sorted, quarter, env.Rng)
		mm := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, 2*n)
			q := r.Quadrants()
			tA := grid.Slice(grid.RowMajor(q[0]), 0, quarter)
			tB := grid.Slice(grid.RowMajor(q[1]), 0, quarter)
			placeFloats(m, tA, "v", a, 0)
			placeFloats(m, tB, "v", b, 0)
			core.Merge(m, tA, tB, "v", r.TopHalf(), order.Float64)
		})
		return harness.One(n, float64(mm.Energy), mm.Depth, mm.Distance)
	})

	apRows := apSweep.Rows()
	ap := analysis.NewTable("all-pairs n", "energy", "depth", "distance")
	addRows(ap, apRows)
	emit(cfg, ap)
	fmt.Fprintf(cfg.Out, "all-pairs energy exponent: %.3f (paper: 2.5)\n\n", analysis.FitExponent(colPoints(apRows, 0, 1)))

	rsRows := rsSweep.Rows()
	rs := analysis.NewTable("rank-select n", "energy", "depth", "distance")
	addRows(rs, rsRows)
	emit(cfg, rs)
	fmt.Fprintf(cfg.Out, "rank-select energy exponent: %.3f (paper: <= 1.25)\n\n", analysis.FitExponent(colPoints(rsRows, 0, 1)))

	mgRows := mgSweep.Rows()
	mg := analysis.NewTable("merge n", "energy", "depth", "distance")
	addRows(mg, mgRows)
	emit(cfg, mg)
	fmt.Fprintf(cfg.Out, "merge energy exponent: %.3f (paper: 1.5)\n", analysis.FitExponent(colPoints(mgRows, 0, 1)))
}

// -------------------------------------------------------------- lowerbound --

func runLowerBound(cfg Config) {
	ns := sizes(cfg.Quick, 1024, 4096, 16384)
	kinds := workload.PermKinds()
	permSweep := cfg.H.Go("lowerbound/permutation", len(ns)*len(kinds), func(i int, env *harness.Env) []harness.Row {
		n := ns[i/len(kinds)]
		kind := kinds[i%len(kinds)]
		perm := workload.Permutation(kind, n, env.Rng)
		mm := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			tr := grid.RowMajor(r)
			placeFloats(m, tr, "v", nil, 1)
			core.Permute(m, tr, "v", tr, "v", perm)
		})
		return harness.One(n, string(kind), float64(mm.Energy), float64(mm.Energy)/(float64(n)*sqrtf(n)))
	})

	// Sorting a reversal-permuted input must cost within a constant of the
	// permutation itself (Corollary V.2: the mergesort is energy-optimal).
	sortNs := sizes(cfg.Quick, 1024, 4096)
	sortSweep := cfg.H.Go("lowerbound/sort-vs-perm", len(sortNs), func(i int, env *harness.Env) []harness.Row {
		n := sortNs[i]
		perm := workload.Permutation(workload.PermReversal, n, env.Rng)
		pe := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			tr := grid.RowMajor(r)
			placeFloats(m, tr, "v", nil, 1)
			core.Permute(m, tr, "v", tr, "v", perm)
		})
		vals := workload.Array(workload.Reversed, n, env.Rng)
		se := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			core.MergeSort(m, r, "v", order.Float64)
		})
		return harness.One(n, float64(pe.Energy), float64(se.Energy), float64(se.Energy)/float64(pe.Energy))
	})

	t := analysis.NewTable("n", "permutation", "energy", "energy/n^1.5")
	addRows(t, permSweep.Rows())
	emit(cfg, t)

	fmt.Fprintln(cfg.Out)
	c := analysis.NewTable("n", "reversal energy", "mergesort-on-reversed energy", "sort/permutation")
	addRows(c, sortSweep.Rows())
	emit(cfg, c)
	fmt.Fprintln(cfg.Out, "\nexpected shape: reversal ~ n^1.5/2; identity = 0; sort/permutation ratio bounded (sorting is energy-optimal up to constants)")
}

// --------------------------------------------------------------- selection --

func runSelection(cfg Config) {
	ns := sizes(cfg.Quick, 1024, 4096, 16384, 65536)
	rows := cfg.H.Sweep("selection", len(ns), func(i int, env *harness.Env) []harness.Row {
		n := ns[i]
		vals := workload.Array(workload.Random, n, env.Rng)
		sel := env.Measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			core.Select(m, r, "v", n/2, order.Float64, env.Rng)
		})
		var sortE int64
		if n <= 16384 {
			srt := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				core.MergeSort(m, r, "v", order.Float64)
			})
			sortE = srt.Energy
		}
		ratio := 0.0
		if sortE > 0 {
			ratio = float64(sortE) / float64(sel.Energy)
		}
		return harness.One(n, float64(sel.Energy), float64(sortE), ratio, sel.Depth, float64(sel.Energy)/float64(n))
	})
	t := analysis.NewTable("n", "select energy", "sort energy", "sort/select", "select depth", "select energy/n")
	addRows(t, rows)
	emit(cfg, t)
	fmt.Fprintf(cfg.Out, "\nselection energy exponent: %.3f (paper: 1.0) — the sort/select gap grows ~sqrt(n) (polynomial separation, Section VI)\n",
		analysis.FitExponent(colPoints(rows, 0, 1)))
}

// -------------------------------------------------------------------- pram --

func runPRAM(cfg Config) {
	ps := sizes(cfg.Quick, 64, 256, 1024)
	rows := cfg.H.Sweep("pram", len(ps), func(i int, env *harness.Env) []harness.Row {
		p := ps[i]
		bound := float64(p) * (sqrtf(p) + 1)
		em := env.Measure(func(m *machine.Machine) {
			sim := pram.New(m, pram.BroadcastWrite{P: p}, pram.CRCW, nil)
			if err := sim.Run(); err != nil {
				panic(err)
			}
		})
		cm := env.Measure(func(m *machine.Machine) {
			sim := pram.New(m, pram.ConcurrentRead{P: p}, pram.CRCW, []machine.Value{1.0})
			if err := sim.Run(); err != nil {
				panic(err)
			}
		})
		n := 2 * p
		treeProg := pram.TreeSum{N: n}
		steps := float64(treeProg.Steps())
		tm := env.Measure(func(m *machine.Machine) {
			init := make([]machine.Value, n)
			for i := range init {
				init[i] = 1.0
			}
			sim := pram.New(m, treeProg, pram.EREW, init)
			if err := sim.Run(); err != nil {
				panic(err)
			}
		})
		eBound := float64(p) * (sqrtf(p) + sqrtf(n)) * steps
		return []harness.Row{
			{"CRCW-write", p, float64(em.Energy), em.Depth, bound, float64(em.Energy) / bound},
			{"CRCW-read", p, float64(cm.Energy), cm.Depth, bound, float64(cm.Energy) / bound},
			{"EREW-treesum", p, float64(tm.Energy) / steps, float64(tm.Depth) / steps, eBound / steps, float64(tm.Energy) / eBound},
		}
	})
	t := analysis.NewTable("mode", "p", "energy/step", "depth/step", "p*(sqrt p + sqrt m)", "energy ratio")
	addRows(t, rows)
	emit(cfg, t)
	fmt.Fprintln(cfg.Out, "\nexpected shape: energy/step within a constant of p(sqrt p + sqrt m); EREW depth/step O(1); CRCW depth/step polylog(p)")
}

// ----------------------------------------------------------- spmv ablation --

func runSpMVAblation(cfg Config) {
	kinds := workload.MatrixKinds()
	ns := sizes(cfg.Quick, 64, 256, 1024)
	directSweep := cfg.H.Go("spmv-ablation/direct", len(kinds)*len(ns), func(i int, env *harness.Env) []harness.Row {
		kind := kinds[i/len(ns)]
		n := ns[i%len(ns)]
		a := workload.SparseMatrix(kind, n, 4*n, env.Rng)
		x := workload.Array(workload.Random, n, env.Rng)
		dm := env.Measure(func(m *machine.Machine) {
			if _, err := spmv.Multiply(m, a, x); err != nil {
				panic(err)
			}
		})
		return harness.One(string(kind), n, a.NNZ(), float64(dm.Energy), dm.Depth, dm.Distance)
	})

	// Direct vs PRAM-simulated (kept small: the CRCW simulation sorts per
	// step).
	vsNs := sizes(cfg.Quick, 16, 32, 64)
	vsSweep := cfg.H.Go("spmv-ablation/vs-pram", len(vsNs), func(i int, env *harness.Env) []harness.Row {
		n := vsNs[i]
		a := workload.SparseMatrix(workload.MatUniform, n, 4*n, env.Rng)
		x := workload.Array(workload.Random, n, env.Rng)
		dm := env.Measure(func(m *machine.Machine) {
			if _, err := spmv.Multiply(m, a, x); err != nil {
				panic(err)
			}
		})
		pm := env.Measure(func(m *machine.Machine) {
			if _, err := spmv.MultiplyPRAM(m, a, x); err != nil {
				panic(err)
			}
		})
		return harness.One(n, a.NNZ(), dm.Depth, pm.Depth, dm.Distance, pm.Distance, float64(dm.Energy), float64(pm.Energy))
	})

	rows := directSweep.Rows()
	t := analysis.NewTable("matrix", "n", "nnz", "direct energy", "direct depth", "direct distance")
	addRows(t, rows)
	var ePts []analysis.Point
	for _, r := range rows {
		if r[0] == string(workload.MatUniform) {
			ePts = append(ePts, analysis.Point{N: cellF(r[2]), Cost: cellF(r[3])})
		}
	}
	emit(cfg, t)
	fmt.Fprintf(cfg.Out, "\ndirect spmv energy exponent in nnz (uniform): %.3f (paper: 1.5)\n\n", analysis.FitExponent(ePts))

	c := analysis.NewTable("n", "nnz", "direct depth", "pram depth", "direct distance", "pram distance", "direct energy", "pram energy")
	addRows(c, vsSweep.Rows())
	emit(cfg, c)
	fmt.Fprintln(cfg.Out, "\nexpected shape: direct wins depth and distance by a growing (log) factor; energies within constants of each other")
}

// ---------------------------------------------------------------- treefix --

// runTreefix quantifies the Section II-A comparison against the spatial
// tree algorithms [38]: their treefix sums take Theta(n log n) energy even
// on a path; the Euler-tour + energy-optimal-scan route costs Theta(n) for
// any tree shape. The binary-tree scan stands in for the [38] path
// baseline.
func runTreefix(cfg Config) {
	ns := sizes(cfg.Quick, 1024, 4096, 16384, 65536)
	rows := cfg.H.Sweep("treefix", len(ns), func(i int, env *harness.Env) []harness.Row {
		n := ns[i]
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		run := func(tr tree.Tree) machine.Metrics {
			return env.Measure(func(m *machine.Machine) {
				if _, err := tree.RootfixSum(m, tr, ones); err != nil {
					panic(err)
				}
			})
		}
		pathM := run(tree.Path(n))
		balM := run(tree.Balanced(n))
		base := env.Measure(func(m *machine.Machine) {
			r := squareFor(n)
			placeFloats(m, grid.RowMajor(r), "v", ones, 0)
			collectives.ScanTrack(m, grid.RowMajor(r), "v", collectives.Add, 0.0)
		})
		return harness.One(n, float64(pathM.Energy), float64(balM.Energy), float64(base.Energy),
			float64(base.Energy)/float64(pathM.Energy), pathM.Depth)
	})
	t := analysis.NewTable("n", "treefix(path) E", "treefix(balanced) E", "tree-scan baseline E", "baseline/treefix", "treefix depth")
	addRows(t, rows)
	emit(cfg, t)
	fmt.Fprintln(cfg.Out, "\nexpected shape: treefix energy linear in n for both shapes; the baseline/treefix ratio grows ~log n")
	fmt.Fprintln(cfg.Out, "(the Euler tour doubles the scanned elements, so the ratio starts below 1 and crosses it near n ~ 2^20)")
}

// ---------------------------------------------------------- depth scaling --

// runDepthScaling fits the polylog degree c of depth ~ (log n)^c for each
// primitive — the depth column of Table I. Paper targets: scan 1, selection
// 2, sort 3, spmv 3 (upper bounds; measured degrees land at or below them).
func runDepthScaling(cfg Config) {
	type prim struct {
		name  string
		paper string
		ns    []int
		run   func(n int, env *harness.Env) machine.Metrics
	}
	prims := []prim{
		{"scan", "O(log n)", sizes(cfg.Quick, 256, 1024, 4096, 16384, 65536), MeasureScan},
		{"selection", "O(log^2 n)", sizes(cfg.Quick, 256, 1024, 4096, 16384, 65536), MeasureSelection},
		{"sort", "O(log^3 n)", sizes(cfg.Quick, 256, 1024, 4096, 16384), MeasureSort},
		{"spmv", "O(log^3 n)", sizes(cfg.Quick, 256, 1024, 4096), MeasureSpMV},
	}

	sweeps := make([]*harness.Sweep, len(prims))
	for i, p := range prims {
		p := p
		sweeps[i] = cfg.H.Go("depth-scaling/"+p.name, len(p.ns), func(j int, env *harness.Env) []harness.Row {
			mm := p.run(p.ns[j], env)
			return harness.One(p.ns[j], mm.Depth)
		})
	}

	t := analysis.NewTable("problem", "paper depth", "measured polylog degree", "depth series")
	for i, p := range prims {
		rows := sweeps[i].Rows()
		series := ""
		for _, r := range rows {
			if series != "" {
				series += " "
			}
			series += fmt.Sprint(r[1])
		}
		t.AddRow(p.name, p.paper, analysis.FitLogExponent(colPoints(rows, 0, 1)), series)
	}
	emit(cfg, t)
	fmt.Fprintln(cfg.Out, "\ndiscriminating check: a polylog depth has per-quadrupling growth ratios that *decline* toward 1")
	fmt.Fprintln(cfg.Out, "(scan 1.25->1.14, sort 2.8->2.3->1.8; selection's are noisy at these sizes but stay ~1.0-1.4),")
	fmt.Fprintln(cfg.Out, "whereas any polynomial n^c keeps a constant ratio 4^c (the mesh sort measures a steady ~2.3x).")
	fmt.Fprintln(cfg.Out, "Fitted degrees overshoot the paper's upper bounds on short sweeps because of additive")
	fmt.Fprintln(cfg.Out, "lower-order terms; the ratios are the evidence.")
}

// ------------------------------------------------------------ congestion --

// runCongestion is an extension experiment: energy is the *total* network
// load; this measures the *maximum* per-link load under dimension-ordered
// routing, comparing the scan designs and the two sorters. The locality
// of the Z-order scan shows up as near-flat link load, while the tree scan
// funnels traffic through the middle of the row-major layout. Each point
// leases a congestion-tracking machine (harness.WithCongestion) and runs
// all algorithms for its size on the same input array.
func runCongestion(cfg Config) {
	ns := sizes(cfg.Quick, 1024, 4096, 16384)
	rows := cfg.H.Sweep("congestion", len(ns), func(i int, env *harness.Env) []harness.Row {
		n := ns[i]
		vals := workload.Array(workload.Random, n, env.Rng)
		type algo struct {
			name string
			run  func(m *machine.Machine, r grid.Rect)
		}
		algos := []algo{
			{"zorder-scan", func(m *machine.Machine, r grid.Rect) {
				placeFloats(m, grid.ZOrder(r), "v", vals, 0)
				collectives.Scan(m, r, "v", collectives.Add, 0.0)
			}},
			{"tree-scan", func(m *machine.Machine, r grid.Rect) {
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				collectives.ScanTrack(m, grid.RowMajor(r), "v", collectives.Add, 0.0)
			}},
			{"broadcast", func(m *machine.Machine, r grid.Rect) {
				m.Set(r.Origin, "v", 1.0)
				collectives.Broadcast(m, r, "v")
			}},
		}
		if n <= 4096 {
			algos = append(algos,
				algo{"mergesort", func(m *machine.Machine, r grid.Rect) {
					placeFloats(m, grid.RowMajor(r), "v", vals, 0)
					core.MergeSort(m, r, "v", order.Float64)
				}},
				algo{"bitonic", func(m *machine.Machine, r grid.Rect) {
					placeFloats(m, grid.RowMajor(r), "v", vals, 0)
					sortnet.Sort(m, grid.RowMajor(r), "v", n, order.Float64)
				}})
		}
		out := make([]harness.Row, 0, len(algos))
		for _, a := range algos {
			m := env.Machine() // reset, congestion tracking enabled
			a.run(m, grid.SquareFor(machine.Coord{}, n))
			out = append(out, harness.Row{a.name, n, float64(m.Metrics().Energy), float64(m.MaxCongestion()),
				float64(m.MaxCongestion()) / sqrtf(n)})
		}
		return out
	}, harness.WithCongestion())
	t := analysis.NewTable("algorithm", "n", "energy", "max link load", "load/sqrt(n)")
	addRows(t, rows)
	emit(cfg, t)
	fmt.Fprintln(cfg.Out, "\nextension beyond the paper's metrics: max per-link load under XY routing (energy is the total load)")
}

func log2f(x int) float64 {
	l := 0.0
	for s := x; s > 1; s /= 2 {
		l++
	}
	return l
}

func sqrtf(n int) float64 { return math.Sqrt(float64(n)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
