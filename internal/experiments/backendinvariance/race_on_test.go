//go:build race

package backendinvariance

// raceEnabled lets the invariance test detect the race detector (roughly a
// 10x slowdown) and skip; the machine-level folded shard test in
// internal/machine runs under -race and covers the backend concurrency.
const raceEnabled = true
