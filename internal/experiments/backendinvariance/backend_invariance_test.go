// Package backendinvariance holds the finite-hardware invariance suite as
// a test-only package. It lives outside package experiments on purpose:
// each fabric replays every registered experiment end to end, and the
// parent package's own invariance tests (shards, batch, cache) already
// fill most of the default per-package test budget on a single core.
// Splitting the backend matrix into its own test binary gives both suites
// their full budget without trimming coverage. Only the exported
// experiments API is used, so this package also pins that the contract is
// checkable from outside.
package backendinvariance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/trace"
)

// Backend invariance is the finite-hardware contract: a backend changes
// what messages *cost*, never what the computation *does*. Every registered
// experiment, run under a folded mesh or torus fabric, must emit the exact
// same message stream — same sends, same order, same routing and depth —
// as under the ideal unbounded model. Only the cost fields (Dist,
// DistBefore/After, EnergyCum) may differ, so the stream hash below folds
// in everything except them.

// runAllExperiments executes every registered experiment in quick mode on a
// fresh runner built from opts and returns the concatenated CSV output.
func runAllExperiments(opts ...harness.Option) string {
	var buf bytes.Buffer
	cfg := experiments.Config{Quick: true, CSV: true, Out: &buf, H: harness.New(1, opts...)}
	for _, e := range experiments.All() {
		fmt.Fprintf(&buf, "== %s ==\n", e.Name)
		e.Run(cfg)
	}
	return buf.String()
}

// backendFabrics is the matrix the contract is checked over: a torus wide
// enough that quick-mode layouts fold only lightly (mostly coordinate
// remapping plus wraparound distances), and a small mesh that heavily
// co-locates virtual PEs (fold factor 8), where a bug in occupancy or
// congestion accounting would corrupt delivery order if the fold leaked
// into scheduling. One fabric per kind keeps the suite affordable; the
// cheaper machine-level tests cover the remaining (kind × fold) corners.
func backendFabrics() []machine.Backend {
	return []machine.Backend{
		machine.Torus(64, 64, 2),
		machine.Mesh(4, 4, 8),
	}
}

// TestBackendInvariance runs all registered experiments under every fabric
// and requires the cost-independent half of the trace stream (plus the
// event count) to match the ideal baseline exactly. A single worker keeps
// the global stream deterministic, as in the shard invariance suite. The
// ideal baseline's emitted tables double as the no-op check: an explicit
// WithBackend(Ideal()) run must report byte-identical numbers to a plain
// run (the shard suite already pins that attaching a sink never changes a
// reported number, so the plain run stays untraced).
func TestBackendInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("single-worker traced runs of every experiment per fabric; tens of seconds each")
	}
	if raceEnabled {
		t.Skip("race detector makes the sweeps ~10x slower; the machine-level -race folded shard test covers the concurrency")
	}
	stream := func(bk machine.Backend) (uint64, int64, string) {
		h := fnv.New64a()
		var n int64
		var buf [56]byte
		sink := trace.SinkFunc(func(e *trace.Event) {
			n++
			for i, v := range [...]int64{e.Seq, int64(e.From.Row), int64(e.From.Col),
				int64(e.To.Row), int64(e.To.Col), e.DepthBefore, e.DepthAfter} {
				binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
			}
			h.Write(buf[:])
			h.Write([]byte(e.Phase))
		})
		out := runAllExperiments(harness.WithWorkers(1), harness.WithSink(sink), harness.WithBackend(bk))
		return h.Sum64(), n, out
	}

	baseHash, baseN, baseOut := stream(machine.Ideal())
	if baseN == 0 {
		t.Fatal("baseline traced run emitted no events")
	}
	if plain := runAllExperiments(harness.WithWorkers(1)); plain != baseOut {
		t.Errorf("explicit ideal backend changed experiment output\n%s", firstDiff(plain, baseOut))
	}
	for _, bk := range backendFabrics() {
		gotHash, gotN, _ := stream(bk)
		if gotN != baseN || gotHash != baseHash {
			t.Errorf("backend %s: message stream differs from ideal baseline (%d events, hash %x; want %d events, hash %x)",
				bk, gotN, gotHash, baseN, baseHash)
		}
	}
}

// firstDiff renders the first line where two outputs diverge.
func firstDiff(want, got string) string {
	w, g := bytes.Split([]byte(want), []byte("\n")), bytes.Split([]byte(got), []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("first difference at line %d:\n  want: %s\n  got:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("outputs diverge in length: %d vs %d lines", len(w), len(g))
}
