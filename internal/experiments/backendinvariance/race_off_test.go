//go:build !race

package backendinvariance

const raceEnabled = false
