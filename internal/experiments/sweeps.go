package experiments

import (
	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/sortnet"
	"repro/internal/spmv"
	"repro/internal/tree"
	"repro/internal/tuner"
	"repro/internal/workload"
)

// Shared primitive measurements — the same code paths back both the
// table-rendering experiments (table1, depth-scaling) and the named bound
// sweeps the conformance checker replays. Each measures one primitive of
// Table I on a fresh machine leased from the point's env.

// MeasureScan runs the energy-optimal Z-order scan on n random values.
func MeasureScan(n int, env *harness.Env) machine.Metrics {
	vals := workload.Array(workload.Random, n, env.Rng)
	return env.Measure(func(m *machine.Machine) {
		r := grid.SquareFor(machine.Coord{}, n)
		placeFloats(m, grid.ZOrder(r), "v", vals, 0)
		collectives.Scan(m, r, "v", collectives.Add, 0.0)
	})
}

// MeasureSort runs the 2-D mergesort (Theorem V.8) on n random values.
func MeasureSort(n int, env *harness.Env) machine.Metrics {
	vals := workload.Array(workload.Random, n, env.Rng)
	return env.Measure(func(m *machine.Machine) {
		r := grid.SquareFor(machine.Coord{}, n)
		placeFloats(m, grid.RowMajor(r), "v", vals, 0)
		core.MergeSort(m, r, "v", order.Float64)
	})
}

// MeasureSelection runs randomized median selection (Theorem VI.3).
func MeasureSelection(n int, env *harness.Env) machine.Metrics {
	vals := workload.Array(workload.Random, n, env.Rng)
	return env.Measure(func(m *machine.Machine) {
		r := grid.SquareFor(machine.Coord{}, n)
		placeFloats(m, grid.RowMajor(r), "v", vals, 0)
		core.Select(m, r, "v", n/2, order.Float64, env.Rng)
	})
}

// MeasureSpMV runs the direct SpMV (Theorem VIII.2) on an nnz-entry
// uniform sparse matrix.
func MeasureSpMV(nnz int, env *harness.Env) machine.Metrics {
	a := workload.SparseMatrix(workload.MatUniform, nnz, nnz, env.Rng)
	x := workload.Array(workload.Random, nnz, env.Rng)
	return env.Measure(func(m *machine.Machine) {
		if _, err := spmv.Multiply(m, a, x); err != nil {
			panic(err)
		}
	})
}

// metricsRow is the canonical bound-sweep row: n, energy, depth, distance.
func metricsRow(n int, mm machine.Metrics) []harness.Row {
	return harness.One(n, float64(mm.Energy), float64(mm.Depth), float64(mm.Distance))
}

// Column indices of the metricsRow shape, exported for claim definitions.
const (
	ColN        = 0
	ColEnergy   = 1
	ColDepth    = 2
	ColDistance = 3
)

// pick selects the quick or full point list for sweeps whose two modes
// are maintained as explicit lists rather than via sizes()'s drop-last
// rule. Points are seeded per (sweep name, index), so the full list must
// extend the quick list — never reorder it — to keep quick-mode rows
// byte-identical between modes.
func pick(quick bool, quickNs, fullNs []int) []int {
	if quick {
		return quickNs
	}
	return fullNs
}

// Point-cost proxies for scheduler hints and weighted ETA: roughly the
// simulated message count of one point, which tracks wall-clock far
// better than "one point = one unit" once full sweeps span 256…2²⁰.
func costLinear(n int) float64    { return float64(n) }
func costNLogN(n int) float64     { return float64(n) * log2f(n) }
func costNSqrtN(n int) float64    { return float64(n) * sqrtf(n) }
func costQuadratic(n int) float64 { return float64(n) * float64(n) }

// costOf adapts an n-indexed cost proxy to a SweepSpec.Cost.
func costOf(ns []int, f func(n int) float64) func(i int) float64 {
	return func(i int) float64 { return f(ns[i]) }
}

// BoundSweeps builds the named-sweep registry the conformance checker
// runs. Every sweep emits rows whose first cell is the problem size n;
// the remaining columns are documented per sweep. Sweep names are stable
// identifiers — they key both claim definitions (internal/bounds) and the
// per-point workload RNGs, so renaming one changes its measured workloads.
func BoundSweeps(quick bool) *harness.Registry {
	reg := &harness.Registry{}

	metric := func(name string, ns []int, cost func(n int) float64, measure func(n int, env *harness.Env) machine.Metrics) {
		reg.MustRegister(harness.SweepSpec{
			Name:   name,
			Points: len(ns),
			Cost:   costOf(ns, cost),
			Point: func(i int, env *harness.Env) []harness.Row {
				return metricsRow(ns[i], measure(ns[i], env))
			},
		})
	}

	// Table I primitives: rows {n, energy, depth, distance}. The scan
	// family reaches n = 2²⁰ in full mode; the sort family stops at 2¹⁶
	// because its Θ(n^1.5) message volume makes 2²⁰ points hour-scale.
	metric("bounds/scan",
		pick(quick, []int{256, 1024, 4096, 16384}, []int{256, 1024, 4096, 16384, 65536, 262144, 1048576}),
		costNLogN, MeasureScan)
	metric("bounds/sort",
		pick(quick, []int{256, 1024, 4096}, []int{256, 1024, 4096, 16384, 65536}),
		costNSqrtN, MeasureSort)
	metric("bounds/selection", sizes(quick, 256, 1024, 4096, 16384, 65536), costNSqrtN, MeasureSelection)
	metric("bounds/spmv", sizes(quick, 256, 1024, 4096, 16384), costNSqrtN, MeasureSpMV)

	// Scan design space (Sec. IV-C): rows {n, zorderE, treeE, seqE}.
	scanNs := pick(quick, []int{256, 1024, 4096, 16384}, []int{256, 1024, 4096, 16384, 65536, 262144, 1048576})
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/scan-ablation",
		Points: len(scanNs),
		Cost:   costOf(scanNs, costNLogN),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := scanNs[i]
			vals := workload.Array(workload.Random, n, env.Rng)
			z := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.ZOrder(r), "v", vals, 0)
				collectives.Scan(m, r, "v", collectives.Add, 0.0)
			})
			tr := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				collectives.ScanTrack(m, grid.RowMajor(r), "v", collectives.Add, 0.0)
			})
			sq := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.ZOrder(r), "v", vals, 0)
				collectives.ScanSequential(m, grid.ZOrder(r), "v", collectives.Add)
			})
			return harness.One(n, float64(z.Energy), float64(tr.Energy), float64(sq.Energy))
		},
	})

	// Reduce ablation (Sec. IV-B): rows {n, twoDimE, treeE}.
	sides := sizes(quick, 16, 32, 64, 128, 256)
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/reduce-ablation",
		Points: len(sides),
		Cost:   func(i int) float64 { return costLinear(sides[i] * sides[i]) },
		Point: func(i int, env *harness.Env) []harness.Row {
			side := sides[i]
			r := grid.Square(machine.Coord{}, side)
			two := env.Measure(func(m *machine.Machine) {
				placeFloats(m, grid.RowMajor(r), "v", nil, 1)
				collectives.Reduce(m, r, "v", collectives.Add)
			})
			tr := env.Measure(func(m *machine.Machine) {
				placeFloats(m, grid.RowMajor(r), "v", nil, 1)
				collectives.ReduceTrack(m, grid.RowMajor(r), "v", collectives.Add)
			})
			return harness.One(side*side, float64(two.Energy), float64(tr.Energy))
		},
	})

	// Sorting comparison (Fig. 2): rows {n, mergeE, bitonicE, meshE,
	// mergeD, bitonicD, meshD}.
	sortNs := pick(quick, []int{256, 1024, 4096}, []int{256, 1024, 4096, 16384, 65536})
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/sort-ablation",
		Points: len(sortNs),
		Cost:   costOf(sortNs, costNSqrtN),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := sortNs[i]
			vals := workload.Array(workload.Random, n, env.Rng)
			ms := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				core.MergeSort(m, r, "v", order.Float64)
			})
			bs := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				sortnet.Sort(m, grid.RowMajor(r), "v", n, order.Float64)
			})
			sh := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				sortnet.Shearsort(m, r, "v", order.Float64)
			})
			return harness.One(n, float64(ms.Energy), float64(bs.Energy), float64(sh.Energy),
				float64(ms.Depth), float64(bs.Depth), float64(sh.Depth))
		},
	})

	// Large-n sorting-network tail (Lemma V.4 / Sec. II-B): rows {n,
	// bitonicE, meshE, bitonicD, meshD}. A separate sweep rather than an
	// extension of bounds/sort-ablation so the recorded small-n rows (and
	// the crossover claims calibrated on them) stay byte-identical. Both
	// sorters are data-oblivious, so under a batched-send runner
	// (harness.WithBatchSends) the whole sweep runs on the machine's
	// counting-only fast path — which is what makes the 2^20 points
	// affordable inside the nightly budget; the mesh point at 2^20 alone is
	// ~2.4*10^10 messages.
	snNs := pick(quick, []int{1024, 4096, 16384}, []int{1024, 4096, 16384, 65536, 262144, 1048576})
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/sortnet-large",
		Points: len(snNs),
		Cost:   costOf(snNs, func(n int) float64 { return costNSqrtN(n) * log2f(n) }),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := snNs[i]
			vals := workload.Array(workload.Random, n, env.Rng)
			bs := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				sortnet.Sort(m, grid.RowMajor(r), "v", n, order.Float64)
			})
			sh := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				sortnet.Shearsort(m, r, "v", order.Float64)
			})
			return harness.One(n, float64(bs.Energy), float64(sh.Energy),
				float64(bs.Depth), float64(sh.Depth))
		},
	})

	// Collectives bound ratios (Lemma IV.1): rows {h*w, bcastE/bound,
	// reduceE/bound} where bound = hw + max(h,w)·log(max(h,w)).
	shapes := [][2]int{{32, 32}, {64, 64}, {128, 128}, {1024, 1}, {4096, 1}, {256, 16}, {16, 256}, {512, 8}}
	if quick {
		shapes = shapes[:5]
	}
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/collectives",
		Points: len(shapes),
		Cost:   func(i int) float64 { return costLinear(shapes[i][0] * shapes[i][1]) },
		Point: func(i int, env *harness.Env) []harness.Row {
			h, w := shapes[i][0], shapes[i][1]
			r := grid.Rect{Origin: machine.Coord{}, H: h, W: w}
			bm := env.Measure(func(m *machine.Machine) {
				m.Set(r.Origin, "v", 1.0)
				collectives.Broadcast(m, r, "v")
			})
			rm := env.Measure(func(m *machine.Machine) {
				placeFloats(m, grid.RowMajor(r), "v", nil, 1)
				collectives.Reduce(m, r, "v", collectives.Add)
			})
			bound := float64(h*w) + float64(maxInt(h, w))*log2f(maxInt(h, w))
			return harness.One(h*w, float64(bm.Energy)/bound, float64(rm.Energy)/bound)
		},
	})

	// Permutation lower bound (Lemma V.1 / Cor. V.2): rows {n,
	// reversalE/n^1.5, mergesortOnReversedE/reversalE}.
	lbNs := sizes(quick, 1024, 4096, 16384)
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/lowerbound",
		Points: len(lbNs),
		Cost:   costOf(lbNs, costNSqrtN),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := lbNs[i]
			perm := workload.Permutation(workload.PermReversal, n, env.Rng)
			pe := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				tr := grid.RowMajor(r)
				placeFloats(m, tr, "v", nil, 1)
				core.Permute(m, tr, "v", tr, "v", perm)
			})
			vals := workload.Array(workload.Reversed, n, env.Rng)
			se := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				core.MergeSort(m, r, "v", order.Float64)
			})
			n15 := float64(n) * sqrtf(n)
			return harness.One(n, float64(pe.Energy)/n15, float64(se.Energy)/float64(pe.Energy))
		},
	})

	// Component lemmas (V.5–V.7): rows {n, energy}.
	apNs := sizes(quick, 16, 64, 256)
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/all-pairs",
		Points: len(apNs),
		Cost:   costOf(apNs, costQuadratic),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := apNs[i]
			vals := workload.Array(workload.Random, n, env.Rng)
			mm := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				tr := grid.RowMajor(r)
				placeFloats(m, tr, "v", vals, 0)
				scratch := r.RightOf(core.AllPairsScratchSide(n), core.AllPairsScratchSide(n))
				core.AllPairsSort(m, tr, "v", n, scratch, order.Float64)
			})
			return harness.One(n, float64(mm.Energy))
		},
	})
	rsNs := sizes(quick, 1024, 4096, 16384)
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/rank-select",
		Points: len(rsNs),
		Cost:   costOf(rsNs, costNSqrtN),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := rsNs[i]
			half := n / 2
			a := workload.Array(workload.Sorted, half, env.Rng)
			b := workload.Array(workload.Sorted, half, env.Rng)
			mm := env.Measure(func(m *machine.Machine) {
				ra := squareFor(half)
				rb := grid.Square(machine.Coord{Row: 0, Col: ra.W + 1}, ra.W)
				tA := grid.Slice(grid.RowMajor(ra), 0, half)
				tB := grid.Slice(grid.RowMajor(rb), 0, half)
				placeFloats(m, tA, "v", a, 0)
				placeFloats(m, tB, "v", b, 0)
				scratch := grid.Square(machine.Coord{Row: ra.H + 1, Col: 0}, core.SelectScratchSide(n))
				core.SelectInSorted(m, tA, tB, "v", n/2, scratch, order.Float64)
			})
			return harness.One(n, float64(mm.Energy))
		},
	})
	mgNs := sizes(quick, 512, 2048, 8192)
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/merge",
		Points: len(mgNs),
		Cost:   costOf(mgNs, costNSqrtN),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := mgNs[i]
			quarter := n / 2
			a := workload.Array(workload.Sorted, quarter, env.Rng)
			b := workload.Array(workload.Sorted, quarter, env.Rng)
			mm := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, 2*n)
				q := r.Quadrants()
				tA := grid.Slice(grid.RowMajor(q[0]), 0, quarter)
				tB := grid.Slice(grid.RowMajor(q[1]), 0, quarter)
				placeFloats(m, tA, "v", a, 0)
				placeFloats(m, tB, "v", b, 0)
				core.Merge(m, tA, tB, "v", r.TopHalf(), order.Float64)
			})
			return harness.One(n, float64(mm.Energy))
		},
	})

	// Selection vs sorting separation (Sec. VI): rows {n, selectE, sortE}.
	selNs := sizes(quick, 1024, 4096, 16384)
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/selection-vs-sort",
		Points: len(selNs),
		Cost:   costOf(selNs, costNSqrtN),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := selNs[i]
			sel := MeasureSelection(n, env)
			srt := MeasureSort(n, env)
			return harness.One(n, float64(sel.Energy), float64(srt.Energy))
		},
	})

	// Treefix sums (Sec. II-A): rows {n, pathE, balancedE, scanE} where
	// scanE is the flat tree-scan (ScanTrack) on the same n values — the
	// baseline the treefix crossover claim compares the worst-case path
	// tree against.
	tfNs := pick(quick, []int{1024, 4096, 16384}, []int{1024, 4096, 16384, 65536, 262144, 1048576})
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/treefix",
		Points: len(tfNs),
		Cost:   costOf(tfNs, costNSqrtN),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := tfNs[i]
			ones := make([]float64, n)
			for j := range ones {
				ones[j] = 1
			}
			run := func(tr tree.Tree) machine.Metrics {
				return env.Measure(func(m *machine.Machine) {
					if _, err := tree.RootfixSum(m, tr, ones); err != nil {
						panic(err)
					}
				})
			}
			pathM := run(tree.Path(n))
			balM := run(tree.Balanced(n))
			scanM := env.Measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.RowMajor(r), "v", ones, 0)
				collectives.ScanTrack(m, grid.RowMajor(r), "v", collectives.Add, 0.0)
			})
			return harness.One(n, float64(pathM.Energy), float64(balM.Energy), float64(scanM.Energy))
		},
	})

	// Direct vs PRAM-simulated SpMV (Sec. VIII): rows {n, directDepth,
	// pramDepth, directDist, pramDist}.
	vsNs := sizes(quick, 16, 32, 64)
	reg.MustRegister(harness.SweepSpec{
		Name:   "bounds/spmv-vs-pram",
		Points: len(vsNs),
		Cost:   costOf(vsNs, costQuadratic),
		Point: func(i int, env *harness.Env) []harness.Row {
			n := vsNs[i]
			a := workload.SparseMatrix(workload.MatUniform, n, 4*n, env.Rng)
			x := workload.Array(workload.Random, n, env.Rng)
			dm := env.Measure(func(m *machine.Machine) {
				if _, err := spmv.Multiply(m, a, x); err != nil {
					panic(err)
				}
			})
			pm := env.Measure(func(m *machine.Machine) {
				if _, err := spmv.MultiplyPRAM(m, a, x); err != nil {
					panic(err)
				}
			})
			return harness.One(n, float64(dm.Depth), float64(pm.Depth),
				float64(dm.Distance), float64(pm.Distance))
		},
	})

	// Tuned vs row-major-baseline mappings (internal/tuner): rows
	// {n, tunedEDP, baselineEDP}. Each point evaluates the workload's whole
	// candidate space on one shared input and reports the EDP-minimal
	// configuration next to mapping.Default()'s — the headline "the tuner
	// never loses to the naive mapping" claims read these. The candidates
	// run sequentially inside the point (a point cannot nest a runner), so
	// the per-point cost scales with the candidate count.
	for _, name := range []string{"scan", "reduce", "sort"} {
		w, ok := tuner.ByName(name)
		if !ok {
			panic("experiments: unknown tuner workload " + name)
		}
		ns := w.Sizes(quick)
		reg.MustRegister(harness.SweepSpec{
			Name:   "bounds/tuned-" + name,
			Points: len(ns),
			Cost: func(i int) float64 {
				return float64(len(w.Candidates)) * w.Cost(ns[i])
			},
			Point: func(i int, env *harness.Env) []harness.Row {
				cands := tuner.EvalPoint(w, ns[i], env)
				best := tuner.MinEDP(cands)
				base, ok := tuner.Baseline(cands)
				if !ok {
					panic("experiments: tuner workload " + w.Name + " has no baseline candidate")
				}
				return harness.One(ns[i], best.EDP(), base.EDP())
			},
		})
	}

	// Graph-analytics suite (composed workloads): bounds/graph-{bfs, cc,
	// pagerank, triangles}, rows {n, meshE, meshD, rmatE, rmatD}.
	registerGraphSweeps(reg, quick)

	// Finite-hardware backends: bounds/backend-{sort, congestion} — the
	// Table I sort refolded onto a fixed mesh/torus fabric (see backend.go).
	registerBackendSweeps(reg, quick)

	return reg
}
