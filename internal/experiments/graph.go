package experiments

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/graph"
	"repro/internal/grid"
	"repro/internal/harness"
	"repro/internal/machine"
)

// The graph-analytics suite: BFS, connected components, PageRank and
// triangle counting composed from the Table I primitives (segmented scan,
// merge sort, treefix, SpMV, sorting networks), measured over two
// synthetic families with opposite diameters — the 2D mesh (diameter
// Θ(√n)) and an RMAT-ish power-law graph (diameter O(log n) whp). The
// same generators back the bounds/graph-* sweeps and the spatialbench
// "graph" table; the power-law family draws from the point's FNV-seeded
// RNG, so rows stay byte-identical at any -parallel/-shards/-batch.

// graphPageRankIters fixes the power-iteration count: enough to damp the
// uniform start visibly, few enough that one point stays sweep-affordable.
const graphPageRankIters = 4

// meshGraph returns the √n x √n lattice (n must be a perfect square).
func meshGraph(n int) *graph.Graph {
	side := intSqrt(n)
	if side*side != n {
		panic(fmt.Sprintf("experiments: graph sweep size %d is not a perfect square", n))
	}
	return graph.Mesh2D(side)
}

// intSqrt returns ⌊√n⌋ exactly. The float64 round-trip it replaces is
// exact only up to 2^52; beyond that a sweep size one off a perfect
// square could round to a side whose square passes the check.
func intSqrt(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("experiments: intSqrt of negative %d", n))
	}
	// The float seed is within ±1 of the true root; correct it exactly in
	// uint64 so the squares can't overflow for any int input.
	un := uint64(n)
	r := uint64(math.Sqrt(float64(n)))
	for r > 0 && r*r > un {
		r--
	}
	for (r+1)*(r+1) <= un {
		r++
	}
	return int(r)
}

// graphAnswer sanity-checks an on-grid result against its host reference;
// a mismatch panics so every sweep run (conformance included) is also a
// correctness gate.
func graphAnswer(ok bool, algo, family string, n int) {
	if !ok {
		panic(fmt.Sprintf("experiments: graph/%s on-grid result diverges from host reference (%s, n=%d)", algo, family, n))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloatsTol(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// MeasureBFS runs the level-synchronous BFS from vertex 0 and verifies
// the levels against the host reference.
func MeasureBFS(g *graph.Graph, algoFamily string, n int, env *harness.Env) machine.Metrics {
	var levels []int
	mm := env.Measure(func(m *machine.Machine) {
		var err error
		levels, err = graph.BFS(m, g, 0)
		if err != nil {
			panic(err)
		}
	})
	graphAnswer(equalInts(levels, graph.HostBFS(g, 0)), "bfs", algoFamily, n)
	return mm
}

// MeasureCC runs min-label hooking with treefix contraction and verifies
// the labels against the union-find reference.
func MeasureCC(g *graph.Graph, algoFamily string, n int, env *harness.Env) (machine.Metrics, int) {
	var labels []int
	var rounds int
	mm := env.Measure(func(m *machine.Machine) {
		var err error
		labels, rounds, err = graph.Components(m, g)
		if err != nil {
			panic(err)
		}
	})
	graphAnswer(equalInts(labels, graph.HostComponents(g)), "cc", algoFamily, n)
	return mm, rounds
}

// MeasurePageRank runs iterated SpMV PageRank on the paper's Z-order
// track and verifies the ranks against the host power iteration (to float
// tolerance: the on-grid sums associate along the scan tree).
func MeasurePageRank(g *graph.Graph, algoFamily string, n int, env *harness.Env) machine.Metrics {
	var pr []float64
	mm := env.Measure(func(m *machine.Machine) {
		var err error
		pr, err = graph.PageRank(m, g, 0.85, graphPageRankIters, grid.TrackZOrder)
		if err != nil {
			panic(err)
		}
	})
	graphAnswer(equalFloatsTol(pr, graph.HostPageRank(g, 0.85, graphPageRankIters), 1e-9), "pagerank", algoFamily, n)
	return mm
}

// MeasureTriangles runs the sortnet-based edge/wedge intersection and
// verifies the count against the brute-force reference.
func MeasureTriangles(g *graph.Graph, algoFamily string, n int, env *harness.Env) (machine.Metrics, int64) {
	var count int64
	mm := env.Measure(func(m *machine.Machine) {
		var err error
		count, err = graph.Triangles(m, g)
		if err != nil {
			panic(err)
		}
	})
	graphAnswer(count == graph.HostTriangles(g), "triangles", algoFamily, n)
	return mm, count
}

// graphSweepSizes are the per-algorithm vertex counts (perfect squares, so
// the mesh family is exact). CC and PageRank re-sort the edge grid every
// round/iteration, so their full tails stop earlier than BFS's.
func graphSweepSizes(quick bool) map[string][]int {
	return map[string][]int{
		"bfs":       pick(quick, []int{64, 256, 1024}, []int{64, 256, 1024, 4096, 16384}),
		"cc":        pick(quick, []int{64, 256, 1024}, []int{64, 256, 1024, 4096}),
		"pagerank":  pick(quick, []int{64, 256, 1024}, []int{64, 256, 1024, 4096}),
		"triangles": pick(quick, []int{64, 256, 1024}, []int{64, 256, 1024, 4096, 16384}),
	}
}

// Column indices of the graph sweep row shape {n, meshE, meshD, rmatE,
// rmatD}, exported for claim definitions.
const (
	GraphColN     = 0
	GraphColMeshE = 1
	GraphColMeshD = 2
	GraphColRmatE = 3
	GraphColRmatD = 4
)

// graphPoint measures one algorithm at size n on both families and emits
// the canonical graph sweep row.
func graphPoint(algo string, n int, env *harness.Env) []harness.Row {
	mesh := meshGraph(n)
	rmat := graph.PowerLaw(n, env.Rng)
	run := func(g *graph.Graph, family string) machine.Metrics {
		switch algo {
		case "bfs":
			return MeasureBFS(g, family, n, env)
		case "cc":
			mm, _ := MeasureCC(g, family, n, env)
			return mm
		case "pagerank":
			return MeasurePageRank(g, family, n, env)
		case "triangles":
			mm, _ := MeasureTriangles(g, family, n, env)
			return mm
		}
		panic("experiments: unknown graph algorithm " + algo)
	}
	mm := run(mesh, "mesh")
	rm := run(rmat, "power-law")
	return harness.One(n, float64(mm.Energy), float64(mm.Depth), float64(rm.Energy), float64(rm.Depth))
}

// graphCost approximates a point's message volume for scheduler hints:
// all four algorithms are dominated by Θ(m^1.5)-class sorting over the
// edge grid, with CC and PageRank repeating it per round/iteration.
func graphCost(algo string) func(n int) float64 {
	switch algo {
	case "cc":
		return func(n int) float64 { return costNSqrtN(2*n) * log2f(n) }
	case "pagerank":
		return func(n int) float64 { return costNSqrtN(2*n) * graphPageRankIters }
	case "triangles":
		return func(n int) float64 { return costNSqrtN(4*n) * log2f(n) }
	}
	return costNSqrtN
}

// registerGraphSweeps adds the bounds/graph-* sweeps to the conformance
// registry. Row shape: {n, meshE, meshD, rmatE, rmatD} (see GraphCol*).
func registerGraphSweeps(reg *harness.Registry, quick bool) {
	sizesByAlgo := graphSweepSizes(quick)
	for _, algo := range []string{"bfs", "cc", "pagerank", "triangles"} {
		algo := algo
		ns := sizesByAlgo[algo]
		reg.MustRegister(harness.SweepSpec{
			Name:   "bounds/graph-" + algo,
			Points: len(ns),
			Cost:   costOf(ns, graphCost(algo)),
			Point: func(i int, env *harness.Env) []harness.Row {
				return graphPoint(algo, ns[i], env)
			},
		})
	}
}

// runGraph renders the graph-analytics suite: per-algorithm energy/depth
// on both families, the per-family answers (eccentricity, component
// count, top rank, triangles) and the fitted scaling exponents.
func runGraph(cfg Config) {
	algos := []string{"bfs", "cc", "pagerank", "triangles"}
	sizesByAlgo := graphSweepSizes(cfg.Quick)
	sweeps := make([]*harness.Sweep, len(algos))
	for i, algo := range algos {
		algo := algo
		ns := sizesByAlgo[algo]
		sweeps[i] = cfg.H.Go("graph/"+algo, len(ns), func(j int, env *harness.Env) []harness.Row {
			row := graphPoint(algo, ns[j], env)[0]
			return []harness.Row{append(harness.Row{algo}, row...)}
		})
	}

	t := analysis.NewTable("algorithm", "n", "mesh energy", "mesh depth", "power-law energy", "power-law depth")
	type fits struct{ meshE, rmatE float64 }
	f := make([]fits, len(algos))
	var depthRows [][]harness.Row
	for i := range algos {
		rows := sweeps[i].Rows()
		addRows(t, rows)
		f[i] = fits{
			meshE: analysis.FitExponent(colPoints(rows, 1, 2)),
			rmatE: analysis.FitExponent(colPoints(rows, 1, 4)),
		}
		depthRows = append(depthRows, rows)
	}
	emit(cfg, t)

	fmt.Fprintln(cfg.Out)
	v := analysis.NewTable("algorithm", "mesh E exp", "power-law E exp", "mesh depth growth", "power-law depth growth")
	for i, algo := range algos {
		rows := depthRows[i]
		v.AddRow(algo, f[i].meshE, f[i].rmatE,
			analysis.ClassifyGrowth(colPoints(rows, 1, 3)).String(),
			analysis.ClassifyGrowth(colPoints(rows, 1, 5)).String())
	}
	fmt.Fprint(cfg.Out, v.String())
	fmt.Fprintln(cfg.Out, "\ndepth provenance: BFS chains one segmented scan per level (mesh depth ~ sqrt(n) log n, power-law ~ log^2 n);")
	fmt.Fprintln(cfg.Out, "CC chains O(log n) rounds of sort+scan+treefix (polylog); PageRank chains SpMV iterations (polylog);")
	fmt.Fprintln(cfg.Out, "triangles is one bitonic pass over edges+wedges (log^2 of the record count). Every measurement is")
	fmt.Fprintln(cfg.Out, "verified against a host reference inside the sweep, and depth witnesses are re-derived per")
	fmt.Fprintln(cfg.Out, "measurement under -cpcheck (trace.CriticalPath).")
}
