//go:build race

package experiments

// raceEnabled lets the invariance tests detect the race detector (roughly a
// 10x slowdown) and skip; the machine-level shared-sink test in
// internal/machine runs under -race and covers the shard concurrency.
const raceEnabled = true
