package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"repro/internal/harness"
	"repro/internal/trace"
)

// These tests are the API-redesign contract: sharded round execution and the
// batched/counting send path are wall-clock optimizations only. Every
// registered experiment must emit byte-identical output, and the machine must
// emit an identical trace event stream, for any shard count and either batch
// setting.

// shardCounts is the matrix the contract is checked over: sequential, two
// and four shards (covering shard counts below, equal to and above the local
// core count on small machines), and whatever this host would use by default.
func shardCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// runAllExperiments executes every registered experiment in quick mode on a
// fresh runner built from opts and returns the concatenated CSV output.
func runAllExperiments(opts ...harness.Option) string {
	var buf bytes.Buffer
	cfg := Config{Quick: true, CSV: true, Out: &buf, H: harness.New(1, opts...)}
	for _, e := range All() {
		fmt.Fprintf(&buf, "== %s ==\n", e.Name)
		e.Run(cfg)
	}
	return buf.String()
}

// TestShardBatchOutputInvariance runs all registered experiments under every
// (shard count x batch mode) combination and requires the emitted tables to
// be byte-identical to the sequential, unbatched baseline. This is the
// user-visible half of the contract: WithShards / WithBatchSends may never
// change a number an experiment reports.
func TestShardBatchOutputInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment several times; seconds of simulation each")
	}
	if raceEnabled {
		t.Skip("race detector makes the sweeps ~10x slower; the machine-level -race shard test covers the concurrency")
	}
	workers := harness.WithWorkers(runtime.GOMAXPROCS(0))
	baseline := runAllExperiments(workers)
	if len(baseline) == 0 {
		t.Fatal("baseline run produced no output")
	}
	for _, shards := range shardCounts() {
		for _, batch := range []bool{false, true} {
			if shards == 1 && !batch {
				continue // that is the baseline
			}
			opts := []harness.Option{workers}
			if shards > 1 {
				opts = append(opts, harness.WithShards(shards))
			}
			if batch {
				opts = append(opts, harness.WithBatchSends())
			}
			got := runAllExperiments(opts...)
			if got != baseline {
				t.Errorf("shards=%d batch=%v: output differs from sequential baseline\n%s",
					shards, batch, firstDiff(baseline, got))
			}
		}
	}
}

// TestShardTraceStreamInvariance checks the other half of the contract: with
// a trace sink attached, the machine must emit the exact same event stream —
// same events, same order — regardless of the shard count. A single worker
// keeps the global stream deterministic; the stream itself is folded into an
// FNV hash so the comparison costs no memory. The sharded runs also enable
// WithBatchSends: a sink disables the counting-only path (see
// machine.CountingOnly), so traced streams must stay identical with it on —
// batch off under a sink is the same configuration, so it is not re-run.
func TestShardTraceStreamInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("single-worker traced runs of every experiment; seconds of simulation each")
	}
	if raceEnabled {
		t.Skip("race detector makes the sweeps ~10x slower; the machine-level -race shard test covers the concurrency")
	}
	stream := func(shards int, batch bool) (uint64, int64) {
		h := fnv.New64a()
		var n int64
		// The sink fires tens of millions of times per run, so the event is
		// folded in as fixed-width binary rather than formatted text.
		var buf [88]byte
		sink := trace.SinkFunc(func(e *trace.Event) {
			n++
			for i, v := range [...]int64{e.Seq, int64(e.From.Row), int64(e.From.Col),
				int64(e.To.Row), int64(e.To.Col), e.Dist, e.DepthBefore, e.DepthAfter,
				e.DistBefore, e.DistAfter, e.EnergyCum} {
				binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
			}
			h.Write(buf[:])
			h.Write([]byte(e.Phase))
		})
		opts := []harness.Option{harness.WithWorkers(1), harness.WithSink(sink)}
		if shards > 1 {
			opts = append(opts, harness.WithShards(shards))
		}
		if batch {
			opts = append(opts, harness.WithBatchSends())
		}
		runAllExperiments(opts...)
		return h.Sum64(), n
	}

	baseHash, baseN := stream(1, false)
	if baseN == 0 {
		t.Fatal("baseline traced run emitted no events")
	}
	for _, shards := range shardCounts() {
		if shards == 1 {
			continue
		}
		gotHash, gotN := stream(shards, true)
		if gotN != baseN || gotHash != baseHash {
			t.Errorf("shards=%d batch=true: trace stream differs from sequential baseline (%d events, hash %x; want %d events, hash %x)",
				shards, gotN, gotHash, baseN, baseHash)
		}
	}
}

// firstDiff renders the first line where two outputs diverge.
func firstDiff(want, got string) string {
	w, g := bytes.Split([]byte(want), []byte("\n")), bytes.Split([]byte(got), []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("first difference at line %d:\n  want: %s\n  got:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("outputs diverge in length: %d vs %d lines", len(w), len(g))
}
