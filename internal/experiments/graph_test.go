package experiments

import "testing"

func TestIntSqrtExact(t *testing.T) {
	// Exhaustive around small perfect squares plus the large values where
	// the float64 round-trip this replaced loses integer precision.
	for n := 0; n <= 1<<12; n++ {
		r := intSqrt(n)
		if r*r > n || (r+1)*(r+1) <= n {
			t.Fatalf("intSqrt(%d) = %d", n, r)
		}
	}
	for _, side := range []int{1 << 20, 1<<26 + 3, 1 << 30, 3037000499} {
		n := side * side
		if n/side != side {
			continue // overflowed int on this platform
		}
		if got := intSqrt(n); got != side {
			t.Errorf("intSqrt(%d) = %d, want %d", n, got, side)
		}
		if got := intSqrt(n - 1); got != side-1 {
			t.Errorf("intSqrt(%d) = %d, want %d", n-1, got, side-1)
		}
		if n+1 > 0 {
			if got := intSqrt(n + 1); got != side {
				t.Errorf("intSqrt(%d) = %d, want %d", n+1, got, side)
			}
		}
	}
}
