package experiments

import (
	"runtime"
	"testing"

	"repro/internal/harness"
	"repro/internal/simcache"
)

// TestCacheOutputIdentity is the cache contract at the experiment level:
// for every registered experiment, output served from a warmed
// content-addressed cache must be byte-identical to a cold sequential run
// — the cache may change wall-clock only, never a reported number. Three
// runs share one cache: an uncached sequential baseline, a cold cached run
// (misses populate the store), and a warm cached run (every point a hit).
func TestCacheOutputIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment three times; seconds of simulation each")
	}
	if raceEnabled {
		t.Skip("race detector makes the sweeps ~10x slower; harness cache tests cover the concurrency")
	}
	workers := harness.WithWorkers(runtime.GOMAXPROCS(0))
	baseline := runAllExperiments(workers)
	if len(baseline) == 0 {
		t.Fatal("baseline run produced no output")
	}

	cache := simcache.New(simcache.Memory(), 0)
	cached := []harness.Option{workers,
		harness.WithCache(cache), harness.WithCacheVersion("test")}

	cold := runAllExperiments(cached...)
	if cold != baseline {
		t.Errorf("cold cached run differs from uncached baseline\n%s", firstDiff(baseline, cold))
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses == 0 || st.Stores != st.Misses {
		t.Fatalf("cold run stats = %+v, want all misses stored", st)
	}

	warm := runAllExperiments(cached...)
	if warm != baseline {
		t.Errorf("warm cached run differs from uncached baseline\n%s", firstDiff(baseline, warm))
	}
	st2 := cache.Stats()
	if st2.Hits != st.Misses {
		t.Errorf("warm run scored %d hits over %d stored points — not fully served from cache",
			st2.Hits-st.Hits, st.Stores)
	}
	if st2.Misses != st.Misses {
		t.Errorf("warm run missed %d times, want 0", st2.Misses-st.Misses)
	}
}
