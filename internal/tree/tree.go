// Package tree implements treefix sums on the Spatial Computer Model —
// the tree-algorithm substrate of Baumann et al. [38], which the paper's
// Section II-A discusses and improves on: their treefix sums (a
// generalization of parallel scans) take Theta(n log n) energy, and the
// paper's scan "reduces the energy cost by a factor Theta(log n) for the
// case where the tree is a path".
//
// This package closes the loop in the other direction: it reduces treefix
// sums on arbitrary rooted trees to a single segmented-scan-style pass over
// the tree's Euler tour, laid out along the Z-order curve — so *every*
// treefix inherits the paper's Theta(n) energy and O(log n) depth scan
// bounds, not only paths.
//
//   - RootfixSum: each node receives the sum over its ancestors (root-to-
//     node path, inclusive).
//   - LeaffixSum: each node receives the sum over its subtree.
//
// The Euler tour itself is derived host-side from the parent array (input
// preprocessing, like the paper's assumption that inputs arrive in a
// "predefined format") and materialized on the grid: tour entry i occupies
// the i-th PE in Z-order.
package tree

import (
	"fmt"

	"repro/internal/collectives"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/zorder"
)

// Tree is a rooted tree given by a parent array: Parent[v] is v's parent,
// and Parent[root] == root. Values attach per node.
type Tree struct {
	Parent []int
}

// Nodes returns the node count.
func (t Tree) Nodes() int { return len(t.Parent) }

// Validate checks that the parent array encodes a single rooted tree.
func (t Tree) Validate() error {
	n := t.Nodes()
	root := -1
	for v, p := range t.Parent {
		if p < 0 || p >= n {
			return fmt.Errorf("tree: parent[%d] = %d out of range", v, p)
		}
		if p == v {
			if root >= 0 {
				return fmt.Errorf("tree: multiple roots (%d and %d)", root, v)
			}
			root = v
		}
	}
	if root < 0 {
		return fmt.Errorf("tree: no root")
	}
	// Every node must reach the root (no cycles). Walks stop at any node
	// already proven good, so the whole check is O(n) even on path-shaped
	// trees (a per-node walk to the root is quadratic there, which at the
	// large-n tail of the sweeps means 2^40 steps).
	const (
		unknown = iota
		onPath
		ok
	)
	state := make([]uint8, n)
	state[root] = ok
	var path []int
	for v := range t.Parent {
		path = path[:0]
		u := v
		for state[u] == unknown {
			state[u] = onPath
			path = append(path, u)
			u = t.Parent[u]
		}
		if state[u] == onPath {
			return fmt.Errorf("tree: cycle reachable from node %d", v)
		}
		for _, w := range path {
			state[w] = ok
		}
	}
	return nil
}

// Root returns the root node.
func (t Tree) Root() int {
	for v, p := range t.Parent {
		if p == v {
			return v
		}
	}
	return -1
}

// children builds adjacency lists (children in node-index order, so tours
// are deterministic).
func (t Tree) children() [][]int {
	ch := make([][]int, t.Nodes())
	for v, p := range t.Parent {
		if p != v {
			ch[p] = append(ch[p], v)
		}
	}
	return ch
}

// eulerTour returns the 2n-1 entry Euler tour as node ids. enter[i] is true
// when entry i is the first visit of its node; for return visits (enter[i]
// false, tour[i] = the parent re-entered), exitOf[i] is the child whose
// subtree just completed (-1 on enters).
func (t Tree) eulerTour() (tour []int, enter []bool, exitOf []int) {
	ch := t.children()
	// Iterative DFS to avoid recursion limits on path-shaped trees.
	type frame struct {
		node, next int
	}
	stack := []frame{{t.Root(), 0}}
	tour = append(tour, t.Root())
	enter = append(enter, true)
	exitOf = append(exitOf, -1)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(ch[f.node]) {
			c := ch[f.node][f.next]
			f.next++
			stack = append(stack, frame{c, 0})
			tour = append(tour, c)
			enter = append(enter, true)
			exitOf = append(exitOf, -1)
		} else {
			done := f.node
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				tour = append(tour, stack[len(stack)-1].node)
				enter = append(enter, false)
				exitOf = append(exitOf, done)
			}
		}
	}
	return tour, enter, exitOf
}

// Costs: the tour has 2n-1 entries on a Theta(sqrt n) side subgrid; the
// single Z-order scan over it costs Theta(n) energy, O(log n) depth,
// O(sqrt n) distance (Lemma IV.3) — for any tree shape.

// RootfixSum returns, for every node, the sum of values over the path from
// the root to the node (inclusive). It runs one Z-order scan over the
// Euler tour in which entering a node adds its value and each return to a
// parent subtracts the completed child's value, so the prefix at a node's
// enter position is exactly the sum over its currently open ancestors —
// its rootfix sum.
func RootfixSum(m *machine.Machine, t Tree, values []float64) ([]float64, error) {
	return t.tourScan(m, values, true)
}

// LeaffixSum returns, for every node, the sum of values over its subtree
// (inclusive). With +value on enter and no contribution on exit, a node's
// subtree sum is prefix(exit) - prefix(enter) + value(node); one scan
// suffices.
func LeaffixSum(m *machine.Machine, t Tree, values []float64) ([]float64, error) {
	return t.tourScan(m, values, false)
}

func (t Tree) tourScan(m *machine.Machine, values []float64, rootfix bool) ([]float64, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(values) != t.Nodes() {
		return nil, fmt.Errorf("tree: %d values for %d nodes", len(values), t.Nodes())
	}
	tour, enter, exitOf := t.eulerTour()
	side := zorder.NextPow2(isqrtCeil(len(tour)))
	r := grid.Square(machine.Coord{}, side)
	tr := grid.ZOrder(r)

	// Lay the signed tour contributions out along the Z-order curve.
	for i := 0; i < r.Size(); i++ {
		v := 0.0
		if i < len(tour) {
			if enter[i] {
				v = values[tour[i]]
			} else if rootfix {
				v = -values[exitOf[i]]
			}
		}
		m.Set(tr.At(i), "tree.v", v)
	}
	collectives.Scan(m, r, "tree.v", collectives.Add, 0.0)

	// Read out per-node results at the enter (and, for leaffix, exit)
	// positions.
	firstEnter := make([]int, t.Nodes())
	lastExit := make([]int, t.Nodes())
	for i := range firstEnter {
		firstEnter[i] = -1
	}
	for i, node := range tour {
		if enter[i] && firstEnter[node] < 0 {
			firstEnter[node] = i
		}
		lastExit[node] = i
	}
	out := make([]float64, t.Nodes())
	for v := range out {
		pe := m.Get(tr.At(firstEnter[v]), "tree.v").(float64)
		if rootfix {
			out[v] = pe
		} else {
			px := m.Get(tr.At(lastExit[v]), "tree.v").(float64)
			if firstEnter[v] == lastExit[v] { // leaf: enter == exit entry
				out[v] = values[v]
			} else {
				out[v] = px - pe + values[v]
			}
		}
	}
	grid.Clear(m, tr, "tree.v", r.Size())
	return out, nil
}

// Path returns the path tree 0 -> 1 -> ... -> n-1 rooted at 0: the shape on
// which the paper's scan improves the treefix energy by Theta(log n).
func Path(n int) Tree {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		p[i] = i - 1
	}
	return Tree{Parent: p}
}

// Balanced returns a complete binary tree with n nodes rooted at 0.
func Balanced(n int) Tree {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		p[i] = (i - 1) / 2
	}
	return Tree{Parent: p}
}

func isqrtCeil(n int) int {
	r := 0
	for r*r < n {
		r++
	}
	return r
}
