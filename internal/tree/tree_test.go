package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/collectives"
	"repro/internal/grid"
	"repro/internal/machine"
)

// hostRootfix and hostLeaffix are straightforward references.
func hostRootfix(t Tree, values []float64) []float64 {
	out := make([]float64, t.Nodes())
	var walk func(v int, acc float64)
	ch := t.children()
	walk = func(v int, acc float64) {
		acc += values[v]
		out[v] = acc
		for _, c := range ch[v] {
			walk(c, acc)
		}
	}
	walk(t.Root(), 0)
	return out
}

func hostLeaffix(t Tree, values []float64) []float64 {
	out := make([]float64, t.Nodes())
	ch := t.children()
	var walk func(v int) float64
	walk = func(v int) float64 {
		s := values[v]
		for _, c := range ch[v] {
			s += walk(c)
		}
		out[v] = s
		return s
	}
	walk(t.Root())
	return out
}

func randomTree(rng *rand.Rand, n int) Tree {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		p[i] = rng.Intn(i) // parent among earlier nodes: always a tree
	}
	return Tree{Parent: p}
}

func checkClose(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		d := got[i] - want[i]
		if d > 1e-9 || d < -1e-9 {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestTreefixOnShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := map[string]Tree{
		"path16":     Path(16),
		"balanced31": Balanced(31),
		"star": {Parent: func() []int {
			p := make([]int, 20)
			return p // all children of node 0; parent[0] = 0 = root
		}()},
		"random100": randomTree(rng, 100),
		"single":    {Parent: []int{0}},
	}
	for name, tr := range shapes {
		values := make([]float64, tr.Nodes())
		for i := range values {
			values[i] = rng.Float64()*10 - 5
		}
		m := machine.New()
		gotR, err := RootfixSum(m, tr, values)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkClose(t, name+"/rootfix", gotR, hostRootfix(tr, values))

		m = machine.New()
		gotL, err := LeaffixSum(m, tr, values)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkClose(t, name+"/leaffix", gotL, hostLeaffix(tr, values))
	}
}

func TestTreefixQuick(t *testing.T) {
	f := func(seed int64, raw []int8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := len(raw)
		if n == 0 {
			return true
		}
		if n > 50 {
			n = 50
		}
		tr := randomTree(rng, n)
		values := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = float64(raw[i])
		}
		m := machine.New()
		gotR, err := RootfixSum(m, tr, values)
		if err != nil {
			return false
		}
		wantR := hostRootfix(tr, values)
		for i := range wantR {
			if d := gotR[i] - wantR[i]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		m = machine.New()
		gotL, err := LeaffixSum(m, tr, values)
		if err != nil {
			return false
		}
		wantL := hostLeaffix(tr, values)
		for i := range wantL {
			if d := gotL[i] - wantL[i]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTreefixLinearEnergy(t *testing.T) {
	// Section II-A: the tree-algorithm treefix costs Theta(n log n) on a
	// path; the Euler-tour + optimal-scan route costs Theta(n) — check
	// linear growth and the log-factor gap against the tree-scan baseline.
	energyAt := func(n int) float64 {
		tr := Path(n)
		values := make([]float64, n)
		for i := range values {
			values[i] = 1
		}
		m := machine.New()
		if _, err := RootfixSum(m, tr, values); err != nil {
			t.Fatal(err)
		}
		return float64(m.Metrics().Energy)
	}
	if r := energyAt(16384) / energyAt(4096); r > 5 {
		t.Errorf("treefix energy quadrupling ratio %.2f not linear", r)
	}
	// Path rootfix via the binary-tree scan over the same length costs a
	// growing log factor more (the [38] baseline on a path).
	baseline := func(n int) float64 {
		m := machine.New()
		side := 1
		for side*side < n {
			side *= 2
		}
		r := grid.Square(machine.Coord{}, side)
		tk := grid.RowMajor(r)
		for i := 0; i < side*side; i++ {
			m.Set(tk.At(i), "v", 1.0)
		}
		collectives.ScanTrack(m, tk, "v", collectives.Add, 0.0)
		return float64(m.Metrics().Energy)
	}
	g1 := baseline(4096) / energyAt(4096)
	g2 := baseline(16384) / energyAt(16384)
	if g2 <= g1 {
		t.Errorf("treefix gap vs tree-scan baseline did not grow: %.2f -> %.2f", g1, g2)
	}
}

func TestTreefixDepthLogarithmic(t *testing.T) {
	depthAt := func(n int) int64 {
		tr := Balanced(n)
		values := make([]float64, n)
		m := machine.New()
		if _, err := LeaffixSum(m, tr, values); err != nil {
			t.Fatal(err)
		}
		return m.Metrics().Depth
	}
	if d := depthAt(4095); d > 40 {
		t.Errorf("leaffix depth %d not logarithmic", d)
	}
}

func TestTreeValidate(t *testing.T) {
	bad := []Tree{
		{Parent: []int{1, 0}},    // two-cycle, no root
		{Parent: []int{0, 1}},    // two roots
		{Parent: []int{0, 5}},    // out of range
		{Parent: []int{0, 2, 1}}, // cycle off the root
		{Parent: []int{}},        // empty
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid tree accepted", i)
		}
	}
	if err := Path(10).Validate(); err != nil {
		t.Errorf("path rejected: %v", err)
	}
	if err := Balanced(15).Validate(); err != nil {
		t.Errorf("balanced rejected: %v", err)
	}
}

func TestTreefixErrors(t *testing.T) {
	m := machine.New()
	if _, err := RootfixSum(m, Path(4), []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LeaffixSum(m, Tree{Parent: []int{1, 0}}, []float64{1, 2}); err == nil {
		t.Error("invalid tree accepted")
	}
}
