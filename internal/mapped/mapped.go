// Package mapped dispatches the library's primitives over a
// mapping.Mapping: one place that knows which algorithm variant and
// region geometry realize a given layout/schedule configuration. The
// spatialdf facade (WithMapping) and the tuner (internal/tuner) both
// route through it, so "the mapping track=zorder,arity=4,..." names the
// same simulated computation everywhere it appears — in a tuning
// verdict, a cached sweep row, or a facade call.
//
// Dispatch rules (the mapping fields each primitive honors):
//
//   - Scan honors Track: a Z-order track selects the paper's
//     energy-optimal quadtree scan (Lemma IV.3); row-major and Hilbert
//     tracks run the binary-tree ScanTrack along the curve.
//   - Reduce honors Track, Arity and Tile: a Z-order track with arity 4
//     is the paper's quadrant recursion (Corollary IV.2); every other
//     combination is an arity-way ReduceTree along the track. The tile
//     shape reshapes the processor region (the max(h,w) term of
//     Lemma IV.1) and applies only to the row-major track —
//     space-filling curves require a square power-of-two region.
//   - Sort honors Sort (the algorithm) and, for the network sorts, Track
//     (the wire layout). Merge (2-D mergesort) and shearsort are
//     region-structured and ignore the track.
//   - SpMV honors Track for the matrix subgrid (spmv.MultiplyMapped).
//
// Fields a primitive does not honor are ignored, never an error: the
// tuner's candidate lists canonicalize them away so equivalent mappings
// are enumerated once.
package mapped

import (
	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/mapping"
	"repro/internal/order"
	"repro/internal/sortnet"
	"repro/internal/zorder"
)

// ScanTrack returns the track scan order follows under mp: the caller
// lays input out along it and reads prefix sums back along it. r must be
// a square power-of-two region.
func ScanTrack(mp mapping.Mapping, r grid.Rect) grid.Track {
	return grid.TrackFor(mp.Track, r)
}

// Scan computes inclusive prefix sums of reg along ScanTrack(mp, r).
func Scan(m *machine.Machine, r grid.Rect, reg machine.Reg, op collectives.Op, identity machine.Value, mp mapping.Mapping) {
	if mp.Track == grid.TrackZOrder {
		collectives.Scan(m, r, reg, op, identity)
		return
	}
	collectives.ScanTrack(m, ScanTrack(mp, r), reg, op, identity)
}

// ReduceRegion returns the processor region holding n elements under
// mp's tile shape. n must be a square power-of-four count (the facade's
// padded sizes). The tile applies only to the row-major track: the
// curve tracks, and odd or unit sides, fall back to the square.
func ReduceRegion(n int, mp mapping.Mapping) grid.Rect {
	side := zorder.NextPow2(intSqrtCeil(n))
	if mp.Track == grid.TrackRowMajor && mp.Tile != mapping.TileSquare && side%2 == 0 {
		if r, ok := mapping.RegionFor(side*side, mp.Tile); ok {
			return r
		}
	}
	return grid.Square(machine.Coord{}, side)
}

// Reduce combines reg across r with op, leaving the result at r.Origin.
// r should come from ReduceRegion(n, mp).
func Reduce(m *machine.Machine, r grid.Rect, reg machine.Reg, op collectives.Op, mp mapping.Mapping) {
	if mp.Track == grid.TrackZOrder && mp.Arity == 4 {
		// The quadrant recursion *is* the 4-ary tree over the Z-order
		// curve, realized with the paper's multicast-free routing.
		collectives.Reduce(m, r, reg, op)
		return
	}
	collectives.ReduceTree(m, grid.TrackFor(mp.Track, r), reg, op, mp.Arity)
}

// SortTrack returns the track sorted output lands on under mp: the
// caller lays input out along it and reads the ascending order back
// along it. r must be a square power-of-two region.
func SortTrack(mp mapping.Mapping, r grid.Rect) grid.Track {
	switch mp.Sort {
	case mapping.SortMerge, mapping.SortShearsort:
		// Region-structured algorithms; output order is row-major.
		return grid.RowMajor(r)
	default:
		return grid.TrackFor(mp.Track, r)
	}
}

// Sort sorts reg ascending along SortTrack(mp, r) with mp's algorithm.
func Sort(m *machine.Machine, r grid.Rect, reg machine.Reg, less order.Less, mp mapping.Mapping) {
	switch mp.Sort {
	case mapping.SortMerge:
		core.MergeSort(m, r, reg, less)
	case mapping.SortShearsort:
		sortnet.Shearsort(m, r, reg, less)
	case mapping.SortOddEven:
		sortnet.Run(m, sortnet.OddEvenMergeSort(r.Size()), SortTrack(mp, r), reg, less)
	default: // mapping.SortBitonic
		sortnet.Sort(m, SortTrack(mp, r), reg, r.Size(), less)
	}
}

func intSqrtCeil(n int) int {
	side := 1
	for side*side < n {
		side++
	}
	return side
}
