package core

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
)

// MergeSort sorts the r.Size() elements stored in register reg on the square
// region r (any layout-independent placement; the result is sorted in
// row-major order of r). It is the energy-optimal 2-D Mergesort of Theorem
// V.8:
//
//  1. recursively sort the four quadrants;
//  2. merge the two top quadrants into the top half;
//  3. merge the two bottom quadrants into the bottom half;
//  4. merge the two halves into the full square.
//
// Costs: O(n^{3/2}) energy — matching the permutation lower bound of
// Corollary V.2 — O(log^3 n) depth, and O(sqrt n) distance. The side of r
// must be a power of two.
func MergeSort(m *machine.Machine, r grid.Rect, reg machine.Reg, less order.Less) {
	if !r.IsSquare() {
		panic(fmt.Sprintf("core: MergeSort requires a square region, got %v", r))
	}
	n := r.Size()
	if n <= 1 {
		return
	}
	if n <= 16 {
		// Base case: merge the row-major halves directly (the two halves
		// need not be sorted here, but routeMergedSmall computes exact
		// ranks over all elements, so the result is a full sort).
		t := grid.RowMajor(r)
		routeMergedSmall(m, grid.Slice(t, 0, n/2), grid.Slice(t, n/2, n-n/2), reg, t, less)
		return
	}
	q := r.Quadrants()
	// The quadrant sorts are data-independent, as are the two half
	// merges; only the final merge depends on both halves.
	m.Independent(
		func() { MergeSort(m, q[0], reg, less) },
		func() { MergeSort(m, q[1], reg, less) },
		func() { MergeSort(m, q[2], reg, less) },
		func() { MergeSort(m, q[3], reg, less) },
	)
	top, bottom := r.TopHalf(), r.BottomHalf()
	m.Independent(
		func() { Merge(m, grid.RowMajor(q[0]), grid.RowMajor(q[1]), reg, top, less) },
		func() { Merge(m, grid.RowMajor(q[2]), grid.RowMajor(q[3]), reg, bottom, less) },
	)
	Merge(m, grid.RowMajor(top), grid.RowMajor(bottom), reg, r, less)
}

// SortToTrack sorts the elements of square region r as MergeSort and then
// routes rank i to position i of the destination track (e.g. a Z-order
// track for a follow-up scan, as in the SpMV pipeline). The extra
// permutation costs O(n * diam) = O(n^{3/2}) energy and O(1) depth.
func SortToTrack(m *machine.Machine, r grid.Rect, reg machine.Reg, dst grid.Track, dstReg machine.Reg, less order.Less) {
	MergeSort(m, r, reg, less)
	grid.Route(m, grid.RowMajor(r), reg, dst, dstReg, grid.Identity(r.Size()))
}

// Permute routes element i of src to position perm[i] of dst, each element
// travelling directly. Sorting implements arbitrary permutations, so the
// permutation lower bound (Lemma V.1: Omega(max(w,h)^2 * min(w,h)) energy,
// i.e. Omega(n^{3/2}) on a square) transfers to sorting; this primitive is
// what the lower-bound experiments measure.
func Permute(m *machine.Machine, src grid.Track, reg machine.Reg, dst grid.Track, dstReg machine.Reg, perm []int) {
	grid.Route(m, src, reg, dst, dstReg, perm)
}
