package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/collectives"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/sortnet"
	"repro/internal/zorder"
)

// Select returns the rank-k element (1-indexed, k-th smallest under less) of
// the r.Size() elements stored in register reg on the square region r,
// using the randomized selection of Section VI: O(n) energy, O(log^2 n)
// depth and O(sqrt n) distance with high probability (Theorem VI.3). The
// input registers are left unchanged.
//
// Elements are iteratively narrowed down: each round samples every active
// element with probability c/sqrt(N), sorts the sample with a bitonic
// network, picks two pivots that bracket the target rank with high
// probability, and deactivates everything outside the bracket. When the
// target rank falls in the upper half, the comparator is flipped instead of
// moving data (step 7). If a round's pivots fail to bracket the target (low
// probability) the algorithm falls back to a full 2-D Mergesort, exactly as
// the paper prescribes.
func Select(m *machine.Machine, r grid.Rect, reg machine.Reg, k int, less order.Less, rng *rand.Rand) machine.Value {
	n := r.Size()
	if k < 1 || k > n {
		panic(fmt.Sprintf("core: Select rank %d out of range [1,%d]", k, n))
	}
	if !r.IsSquare() || !zorder.IsPow2(r.H) {
		panic(fmt.Sprintf("core: Select requires a square power-of-two region, got %v", r))
	}
	const c = 4.0
	t := grid.ZOrder(r)
	for i := 0; i < n; i++ {
		m.Set(t.At(i), "sel.active", true)
	}
	defer grid.Clear(m, t, "sel.active", n)

	curLess := less
	lnN := math.Log(float64(max(n, 3)))
	activeN := n
	stop := int(math.Ceil(c * math.Sqrt(float64(n))))

	for round := 0; activeN > stop; round++ {
		if round >= 48 {
			// Statistically unreachable; guarantees termination.
			return fallbackSort(m, r, t, reg, k, curLess)
		}
		// Step 7 (hoisted to the loop head): keep k in the lower half by
		// logically reversing the order.
		if k > (activeN+1)/2 {
			k = activeN - k + 1
			curLess = order.Reverse(curLess)
		}
		fN := float64(activeN)
		p := c / math.Sqrt(fN)

		// Steps 1-2: sample active elements, index the sample with a scan
		// and gather it into a square scratch subgrid.
		for i := 0; i < n; i++ {
			cnt := int64(0)
			if isActive(m, t.At(i)) && rng.Float64() < p {
				cnt = 1
			}
			m.Set(t.At(i), "sel.idx", cnt)
		}
		sizeV := collectives.Scan(m, r, "sel.idx", collectives.AddInt, int64(0))
		sampleN := int(sizeV.(int64))
		if sampleN < 2 {
			grid.Clear(m, t, "sel.idx", n)
			continue // degenerate sample; redraw
		}
		s2 := zorder.NextPow2(sampleN)
		sside := zorder.NextPow2(isqrt(s2-1) + 1)
		scratch := r.RightOf(sside, sside)
		sTrack := grid.RowMajor(scratch)
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for i := 0; i < n; i++ {
				pos := m.Get(t.At(i), "sel.idx").(int64)
				wasSampled := isActive(m, t.At(i)) && sampledHere(m, t, i)
				if wasSampled {
					send(t.At(i), sTrack.At(int(pos-1)), "sel.sq", padded{v: m.Get(t.At(i), reg)})
				}
			}
		})
		grid.Clear(m, t, "sel.idx", n)
		for i := sampleN; i < s2; i++ {
			m.Set(sTrack.At(i), "sel.sq", padded{inf: 1})
		}

		// Step 3: bitonic-sort the sample and choose the two pivots.
		sortnet.Sort(m, sTrack, "sel.sq", s2, paddedLess(curLess))
		dev := (c / 2) * math.Pow(fN, 0.25) * math.Sqrt(lnN)
		mid := c * float64(k) / math.Sqrt(fN)
		rIdx := clamp(int(math.Ceil(mid+dev)), 1, sampleN)
		lFrom := -1
		if float64(k) >= 0.5*math.Pow(fN, 0.75)*math.Sqrt(lnN) {
			lFrom = clamp(int(math.Floor(mid-dev)), 1, sampleN) - 1
		}

		// Step 4: broadcast the pivots across the original subgrid.
		m.Send(sTrack.At(rIdx-1), "sel.sq", r.Origin, "sel.hi")
		collectives.Broadcast(m, r, "sel.hi")
		if lFrom >= 0 {
			m.Send(sTrack.At(lFrom), "sel.sq", r.Origin, "sel.lo")
		} else {
			m.Set(r.Origin, "sel.lo", padded{inf: -1}) // dummy pivot s_l = -infinity
		}
		collectives.Broadcast(m, r, "sel.lo")
		grid.Clear(m, sTrack, "sel.sq", s2)

		// Step 5: count active elements outside the pivot bracket.
		plt := paddedLess(curLess)
		nLess := countActive(m, r, t, func(i int) bool {
			return plt(padded{v: m.Get(t.At(i), reg)}, m.Get(t.At(i), "sel.lo"))
		})
		nGreater := countActive(m, r, t, func(i int) bool {
			return plt(m.Get(t.At(i), "sel.hi"), padded{v: m.Get(t.At(i), reg)})
		})
		if nLess >= k || nGreater >= activeN-k {
			grid.Clear(m, t, "sel.lo", n)
			grid.Clear(m, t, "sel.hi", n)
			return fallbackSort(m, r, t, reg, k, curLess)
		}

		// Step 6: deactivate elements outside the bracket.
		for i := 0; i < n; i++ {
			cell := t.At(i)
			if isActive(m, cell) {
				v := padded{v: m.Get(cell, reg)}
				if plt(v, m.Get(cell, "sel.lo").(padded)) || plt(m.Get(cell, "sel.hi").(padded), v) {
					m.Set(cell, "sel.active", false)
				}
			}
			m.Del(cell, "sel.lo")
			m.Del(cell, "sel.hi")
		}
		k -= nLess
		activeN = countActive(m, r, t, func(i int) bool { return true })
	}

	// Termination: gather the few remaining active elements, sort them
	// with the bitonic network, and read off the rank-k element.
	for i := 0; i < n; i++ {
		cnt := int64(0)
		if isActive(m, t.At(i)) {
			cnt = 1
		}
		m.Set(t.At(i), "sel.idx", cnt)
	}
	totV := collectives.Scan(m, r, "sel.idx", collectives.AddInt, int64(0))
	rem := int(totV.(int64))
	if rem == 0 || k > rem {
		// Unreachable: the pivot validation in step 5 guarantees the
		// target element stays active and 1 <= k <= rem.
		panic(fmt.Sprintf("core: Select invariant violated: k=%d active=%d", k, rem))
	}
	s2 := zorder.NextPow2(rem)
	sside := zorder.NextPow2(isqrt(s2-1) + 1)
	scratch := r.RightOf(sside, sside)
	sTrack := grid.RowMajor(scratch)
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < n; i++ {
			if isActive(m, t.At(i)) {
				pos := m.Get(t.At(i), "sel.idx").(int64)
				send(t.At(i), sTrack.At(int(pos-1)), "sel.sq", padded{v: m.Get(t.At(i), reg)})
			}
		}
	})
	grid.Clear(m, t, "sel.idx", n)
	for i := rem; i < s2; i++ {
		m.Set(sTrack.At(i), "sel.sq", padded{inf: 1})
	}
	sortnet.Sort(m, sTrack, "sel.sq", s2, paddedLess(curLess))
	out := m.Get(sTrack.At(k-1), "sel.sq").(padded).v
	grid.Clear(m, sTrack, "sel.sq", s2)
	return out
}

// Median returns the lower median (rank ceil(n/2)) of the elements on r.
func Median(m *machine.Machine, r grid.Rect, reg machine.Reg, less order.Less, rng *rand.Rand) machine.Value {
	return Select(m, r, reg, (r.Size()+1)/2, less, rng)
}

// sampledHere reports whether track position i was sampled this round: its
// inclusive prefix count exceeds its predecessor's.
func sampledHere(m *machine.Machine, t grid.Track, i int) bool {
	cur := m.Get(t.At(i), "sel.idx").(int64)
	if i == 0 {
		return cur == 1
	}
	return cur > m.Get(t.At(i-1), "sel.idx").(int64)
}

// countActive counts active elements satisfying pred via a reduction.
func countActive(m *machine.Machine, r grid.Rect, t grid.Track, pred func(i int) bool) int {
	n := t.Len()
	for i := 0; i < n; i++ {
		cnt := int64(0)
		if isActive(m, t.At(i)) && pred(i) {
			cnt = 1
		}
		m.Set(t.At(i), "sel.cnt", cnt)
	}
	collectives.Reduce(m, r, "sel.cnt", collectives.AddInt)
	out := int(m.Get(r.Origin, "sel.cnt").(int64))
	grid.Clear(m, t, "sel.cnt", n)
	return out
}

func isActive(m *machine.Machine, c machine.Coord) bool {
	v, ok := m.Lookup(c, "sel.active")
	return ok && v.(bool)
}

// fallbackSort gathers the still-active elements into a scratch square,
// sorts them with the 2-D Mergesort and returns the rank-k element under the
// comparator in effect ("sort the input using 2D Mergesort and return the
// rank k element", Section VI step 5). k is a rank among active elements.
func fallbackSort(m *machine.Machine, r grid.Rect, t grid.Track, reg machine.Reg, k int, less order.Less) machine.Value {
	n := r.Size()
	for i := 0; i < n; i++ {
		cnt := int64(0)
		if isActive(m, t.At(i)) {
			cnt = 1
		}
		m.Set(t.At(i), "sel.idx", cnt)
	}
	totV := collectives.Scan(m, r, "sel.idx", collectives.AddInt, int64(0))
	active := int(totV.(int64))
	side := zorder.NextPow2(isqrt(max(active-1, 0)) + 1)
	scratch := r.Below(side, side)
	sTrack := grid.RowMajor(scratch)
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < n; i++ {
			if isActive(m, t.At(i)) {
				pos := m.Get(t.At(i), "sel.idx").(int64)
				send(t.At(i), sTrack.At(int(pos-1)), "sel.fb", padded{v: m.Get(t.At(i), reg)})
			}
		}
	})
	grid.Clear(m, t, "sel.idx", n)
	for i := active; i < scratch.Size(); i++ {
		m.Set(sTrack.At(i), "sel.fb", padded{inf: 1})
	}
	MergeSort(m, scratch, "sel.fb", paddedLess(less))
	out := m.Get(sTrack.At(k-1), "sel.fb").(padded).v
	grid.Clear(m, sTrack, "sel.fb", scratch.Size())
	return out
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
