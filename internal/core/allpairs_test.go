package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
)

// apSetup places vals on the row-major track of a region and returns the
// machine, track, and a scratch region to the right.
func apSetup(vals []float64) (*machine.Machine, grid.Track, grid.Rect) {
	m := machine.New()
	side := 1
	for side*side < len(vals) {
		side *= 2
	}
	r := grid.Square(machine.Coord{}, side)
	t := grid.Slice(grid.RowMajor(r), 0, len(vals))
	for i, v := range vals {
		m.Set(t.At(i), "v", v)
	}
	scratch := grid.Square(machine.Coord{Row: 0, Col: side + 1}, AllPairsScratchSide(len(vals)))
	return m, t, scratch
}

func TestAllPairsSortsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 25, 40} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		m, tr, scratch := apSetup(vals)
		AllPairsSort(m, tr, "v", n, scratch, order.Float64)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := 0; i < n; i++ {
			if got := m.Get(tr.At(i), "v").(float64); got != want[i] {
				t.Fatalf("n=%d: sorted[%d] = %v, want %v", n, i, got, want[i])
			}
		}
	}
}

func TestAllPairsHandlesDuplicates(t *testing.T) {
	vals := []float64{3, 1, 3, 3, 1, 2, 2, 3, 1}
	m, tr, scratch := apSetup(vals)
	AllPairsSort(m, tr, "v", len(vals), scratch, order.Float64)
	want := append([]float64(nil), vals...)
	sort.Float64s(want)
	for i := range vals {
		if got := m.Get(tr.At(i), "v").(float64); got != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestAllPairsQuickPermutation(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		m, tr, scratch := apSetup(vals)
		AllPairsSort(m, tr, "v", len(vals), scratch, order.Float64)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if m.Get(tr.At(i), "v").(float64) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAllPairsDepthLogarithmic(t *testing.T) {
	// Lemma V.5: O(log n) depth. Verify depth grows by at most a couple of
	// hops per quadrupling.
	var prev int64
	for _, n := range []int{16, 64, 256} {
		rng := rand.New(rand.NewSource(2))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		m, tr, scratch := apSetup(vals)
		AllPairsSort(m, tr, "v", n, scratch, order.Float64)
		d := m.Metrics().Depth
		if prev != 0 && d > prev+8 {
			t.Errorf("n=%d: all-pairs depth %d jumped from %d (not logarithmic)", n, d, prev)
		}
		prev = d
	}
}

func TestAllPairsEnergyExponent(t *testing.T) {
	// Lemma V.5: O(n^{5/2}) energy. Fit the growth between n and 4n:
	// energy ratio should be about 4^{2.5} = 32, certainly below 4^3.
	energyAt := func(n int) float64 {
		rng := rand.New(rand.NewSource(3))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		m, tr, scratch := apSetup(vals)
		AllPairsSort(m, tr, "v", n, scratch, order.Float64)
		return float64(m.Metrics().Energy)
	}
	r1 := energyAt(64) / energyAt(16)
	r2 := energyAt(256) / energyAt(64)
	for _, r := range []float64{r1, r2} {
		if r < 16 || r > 64 {
			t.Errorf("all-pairs energy quadrupling ratio %.1f outside [16,64] (want ~32 for n^2.5)", r)
		}
	}
}

func TestAllPairsCleansScratch(t *testing.T) {
	vals := []float64{5, 2, 9, 1}
	m, tr, scratch := apSetup(vals)
	AllPairsSort(m, tr, "v", len(vals), scratch, order.Float64)
	for row := 0; row < scratch.H; row++ {
		for col := 0; col < scratch.W; col++ {
			if regs := m.Registers(scratch.At(row, col)); len(regs) != 0 {
				t.Fatalf("scratch PE (%d,%d) left registers %v", row, col, regs)
			}
		}
	}
}

func TestAllPairsScratchSide(t *testing.T) {
	cases := [][2]int{{1, 1}, {2, 4}, {4, 4}, {5, 12}, {16, 16}, {17, 40}, {64, 64}}
	for _, c := range cases {
		if got := AllPairsScratchSide(c[0]); got != c[1] {
			t.Errorf("AllPairsScratchSide(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestAllPairsRejectsSmallScratch(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	m, tr, _ := apSetup(vals)
	defer func() {
		if recover() == nil {
			t.Error("undersized scratch did not panic")
		}
	}()
	AllPairsSort(m, tr, "v", 5, grid.Square(machine.Coord{Row: 0, Col: 100}, 2), order.Float64)
}
