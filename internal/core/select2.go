package core

import (
	"fmt"

	"repro/internal/collectives"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/sortnet"
	"repro/internal/zorder"
)

// SplitCounts is the result of SelectInSorted: among the k smallest elements
// of A || B (under the total order with ties broken towards A and lower
// indices), KA come from A and KB from B, with KA + KB = k.
type SplitCounts struct {
	KA, KB int
}

// SelectInSorted finds the rank-k element (1 <= k <= nA+nB) of two sorted
// arrays A and B stored in register reg on tracks tA and tB, and returns how
// the k smallest elements split between A and B. It implements the
// multiselection of Section V-C:
//
//  1. gather every step-th element of A and B into a sample S (step =
//     2*floor(sqrt n); see MultiSelect);
//  2. sort the sample with All-Pairs Sort;
//  3. pick the guide element x = S_{floor((k-1)/step)}, whose global rank
//     is guaranteed to be at most k-1;
//  4. locate the predecessor boundaries a = |{A < x}| and b = |{B < x}|
//     (broadcast + local test + reduction instead of the paper's binary
//     search — same energy budget, distance-optimal; DESIGN.md subst. 2);
//  5. narrow the search to windows of O(sqrt n) elements starting at a and
//     b, and
//  6. recurse on the two windows — which are again sorted arrays — for the
//     rank-(k-a-b) element, bottoming out in an All-Pairs Sort of O(1)
//     elements.
//
// Step 6 refines the paper's construction, which All-Pairs-Sorts the
// O(sqrt n)-element windows directly; recursing instead costs
// T(n) = O(n^{5/4}) + T(O(sqrt n)) = O(n^{5/4}) with O(log n) depth and
// O(sqrt n) distance — the same bounds with a much smaller constant (the
// window sort's Theta(w^{5/2}) term would otherwise dominate at practical
// sizes).
//
// scratch must be a square region of side at least SelectScratchSide(nA+nB).
// Costs (Lemma V.6): O(n^{5/4}) energy, O(log n) depth, O(sqrt n) distance.
func SelectInSorted(m *machine.Machine, tA, tB grid.Track, reg machine.Reg, k int, scratch grid.Rect, less order.Less) SplitCounts {
	return MultiSelect(m, tA, tB, reg, []int{k}, scratch, less)[0]
}

// MultiSelect answers several rank queries over the same pair of sorted
// arrays, sharing one sample gather and one sample sort across all ranks —
// the multiselection the merge needs for its n/4, n/2, 3n/4 splits. The
// per-rank work (predecessor counts and the window recursion) runs as
// independent branches. Same per-call bounds as SelectInSorted.
func MultiSelect(m *machine.Machine, tA, tB grid.Track, reg machine.Reg, ks []int, scratch grid.Rect, less order.Less) []SplitCounts {
	nA, nB := tA.Len(), tB.Len()
	n := nA + nB
	for _, k := range ks {
		if k < 1 || k > n {
			panic(fmt.Sprintf("core: MultiSelect rank %d out of range [1,%d]", k, n))
		}
	}
	lt := taggedLess(less)
	out := make([]SplitCounts, len(ks))

	// Small inputs: gather and sort everything once with a bitonic network
	// on a compact subgrid and read off every rank. (The cutoff also
	// guarantees the window recursion strictly shrinks: for n > 160,
	// 6*step+8 < n.)
	if n <= 160 {
		return selectSmall(m, tA, tB, reg, ks, scratch, lt)
	}

	// Sampling every 2*floor(sqrt n)-th element halves the sample (the
	// sample's All-Pairs Sort is the dominant cost) at the price of a
	// twice-wider window, which only feeds the cheap recursion.
	step := 2 * isqrt(n)
	// Step 1: gather the samples (indices 0, step, 2*step, ... of each
	// array) into the scratch row-major track, tagged with their source.
	sTrack := grid.RowMajor(scratch)
	var sample []tagged
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		emit := func(t grid.Track, src int8, idx int) {
			v := tagged{v: m.Get(t.At(idx), reg), src: src, idx: idx}
			send(t.At(idx), sTrack.At(len(sample)), "sel2.s", v)
			sample = append(sample, v)
		}
		for i := 0; i < nA; i += step {
			emit(tA, 0, i)
		}
		for i := 0; i < nB; i += step {
			emit(tB, 1, i)
		}
	})
	s := len(sample)

	// Step 2: All-Pairs Sort the sample within the scratch region, once
	// for all ranks.
	AllPairsSort(m, grid.Slice(sTrack, 0, s), "sel2.s", s, scratch, lt)

	// Steps 3-6 per rank, as independent branches (they read the shared
	// sample and arrays, and each cleans its scratch before the next runs).
	branches := make([]func(), len(ks))
	for i, k := range ks {
		i, k := i, k
		branches[i] = func() {
			out[i] = selectOneRank(m, tA, tB, reg, k, step, sTrack, s, scratch, less, lt)
		}
	}
	m.Independent(branches...)
	grid.Clear(m, sTrack, "sel2.s", s)
	return out
}

// selectOneRank runs steps 3-6 for one rank, given the sorted sample.
func selectOneRank(m *machine.Machine, tA, tB grid.Track, reg machine.Reg, k, step int, sTrack grid.Track, s int, scratch grid.Rect, less order.Less, lt order.Less) SplitCounts {
	nA, nB := tA.Len(), tB.Len()

	// Step 3: choose the guide element x = S_l with l = floor((k-1)/step).
	// With samples at indices 0, step, 2*step, ... of each array, S_l has
	// global rank in [(l-2)*step, l*step], so rank(x) <= k-1 (the target
	// is not below the window) and k-1-rank(x) <= 3*step (the window need
	// only extend O(step) beyond x).
	l := (k - 1) / step
	if l >= s {
		l = s - 1 // unreachable: |S| > (n-1)/step >= l; kept defensively
	}
	var a, b int
	if l >= 0 {
		x := m.Get(sTrack.At(l), "sel2.s").(tagged)
		// Step 4: predecessor boundaries by counting elements below x.
		a = countBelow(m, tA, reg, 0, x, sTrack.At(l), lt)
		b = countBelow(m, tB, reg, 1, x, sTrack.At(l), lt)
	}

	// Step 5: windows of W elements starting at a and b. W = 3*step + 4
	// slightly over-covers the paper's 2*floor(sqrt n)+1 bound (our guide
	// rank bracket is one sampling block coarser); same asymptotics.
	w := 3*step + 4
	wa := min(nA-a, w)
	wb := min(nB-b, w)
	if k-a-b < 1 || k-a-b > wa+wb {
		panic(fmt.Sprintf("core: selection window [a=%d,b=%d,w=%d] missed rank %d", a, b, w, k))
	}

	// Step 6: recurse on the windows, which are sorted subarrays of A and
	// B, translating the rank and the resulting split counts. The tagged
	// total order is translation-invariant in the indices, so the
	// recursion's tie-breaking is consistent with the outer call's. The
	// recursion stages its (much smaller) sample beyond the live one.
	subScratch := grid.Rect{Origin: scratch.Origin.Add(1, 0), H: scratch.H - 1, W: scratch.W}
	sub := SelectInSorted(m, grid.Slice(tA, a, wa), grid.Slice(tB, b, wb), reg, k-a-b, subScratch, less)
	return SplitCounts{KA: a + sub.KA, KB: b + sub.KB}
}

// SelectScratchSide returns the required scratch side for SelectInSorted on
// n total elements: enough for an All-Pairs Sort of the O(sqrt n)-sized
// sample, and at least the staging-track length of the small case.
func SelectScratchSide(n int) int {
	s := isqrt(n) + 3 // sample size upper bound at spacing 2*isqrt(n)
	need := max(AllPairsScratchSide(s), s)
	if n <= 160 {
		// selectSmall's compact bitonic square.
		need = max(need, zorder.NextPow2(isqrt(max(n-1, 0))+1))
	}
	// Recursive windows are smaller than n and reuse the same scratch, so
	// the small-case requirement applies to every call.
	return max(need, 16)
}

// selectSmall handles small inputs: gather A||B (tagged) onto a compact
// power-of-two square inside the scratch, pad to a power-of-two count,
// bitonic-sort once and read off every requested rank. O(n^{3/2} log n)
// energy on O(1)-bounded n, O(log^2 n) depth.
func selectSmall(m *machine.Machine, tA, tB grid.Track, reg machine.Reg, ks []int, scratch grid.Rect, lt order.Less) []SplitCounts {
	nA, nB := tA.Len(), tB.Len()
	n := nA + nB
	side := zorder.NextPow2(isqrt(max(n-1, 0)) + 1)
	sq := grid.Square(scratch.Origin, side)
	sTrack := grid.RowMajor(sq)
	s2 := zorder.NextPow2(n)
	plt := paddedLess(lt)
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < nA; i++ {
			send(tA.At(i), sTrack.At(i), "sel2.w", padded{v: tagged{v: m.Get(tA.At(i), reg), src: 0, idx: i}})
		}
		for i := 0; i < nB; i++ {
			send(tB.At(i), sTrack.At(nA+i), "sel2.w", padded{v: tagged{v: m.Get(tB.At(i), reg), src: 1, idx: i}})
		}
	})
	for i := n; i < s2; i++ {
		m.Set(sTrack.At(i), "sel2.w", padded{inf: 1})
	}
	sortnet.Sort(m, sTrack, "sel2.w", s2, plt)
	out := make([]SplitCounts, len(ks))
	for i, k := range ks {
		target := m.Get(sTrack.At(k-1), "sel2.w").(padded).v.(tagged)
		if target.src == 0 {
			out[i] = SplitCounts{KA: target.idx + 1, KB: k - target.idx - 1}
		} else {
			out[i] = SplitCounts{KA: k - target.idx - 1, KB: target.idx + 1}
		}
	}
	grid.Clear(m, sTrack, "sel2.w", s2)
	return out
}

// countBelow counts the elements of the sorted array on track t that are
// strictly below x in the tagged total order: send x from its location in
// the sorted sample to the track's bounding rectangle, 2-D broadcast it
// there, test locally, and 2-D reduce the indicator. For the contiguous
// row-major tracks the merge uses, the bounding rectangle has O(len) area,
// so this costs O(len) energy, O(log len) depth and O(diam) distance —
// replacing the paper's binary search as described in DESIGN.md (subst. 2).
func countBelow(m *machine.Machine, t grid.Track, reg machine.Reg, src int8, x tagged, from machine.Coord, lt order.Less) int {
	n := t.Len()
	if n == 0 {
		return 0
	}
	box := boundingRect(t)
	m.SendValue(from, box.Origin, "sel2.x", x)
	collectives.Broadcast(m, box, "sel2.x")
	// Indicator: 1 on track cells below the pivot, 0 elsewhere in the box.
	for row := 0; row < box.H; row++ {
		for col := 0; col < box.W; col++ {
			m.Set(box.At(row, col), "sel2.cnt", int64(0))
		}
	}
	for i := 0; i < n; i++ {
		c := t.At(i)
		if lt(tagged{v: m.Get(c, reg), src: src, idx: i}, m.Get(c, "sel2.x").(tagged)) {
			m.Set(c, "sel2.cnt", int64(1))
		}
	}
	collectives.Reduce(m, box, "sel2.cnt", collectives.AddInt)
	cnt := int(m.Get(box.Origin, "sel2.cnt").(int64))
	for row := 0; row < box.H; row++ {
		for col := 0; col < box.W; col++ {
			m.Del(box.At(row, col), "sel2.cnt")
			m.Del(box.At(row, col), "sel2.x")
		}
	}
	return cnt
}

// boundingRect returns the smallest rectangle covering all track cells.
func boundingRect(t grid.Track) grid.Rect {
	first := t.At(0)
	minR, maxR, minC, maxC := first.Row, first.Row, first.Col, first.Col
	for i := 1; i < t.Len(); i++ {
		c := t.At(i)
		if c.Row < minR {
			minR = c.Row
		}
		if c.Row > maxR {
			maxR = c.Row
		}
		if c.Col < minC {
			minC = c.Col
		}
		if c.Col > maxC {
			maxC = c.Col
		}
	}
	return grid.Rect{Origin: machine.Coord{Row: minR, Col: minC}, H: maxR - minR + 1, W: maxC - minC + 1}
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
