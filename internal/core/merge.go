package core

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
)

// Merge merges two sorted arrays stored in register reg on tracks tA and tB
// into sorted row-major order on the region dst (Lemma V.7). The tracks may
// lie inside dst (in-place merging) or adjacent to it; their total length
// must equal dst.Size(), and dst must be a square or a 2:1 rectangle with
// power-of-two sides.
//
// The recursion follows Section V-C: split A and B by the elements of rank
// n/4, n/2 and 3n/4 of A||B (SelectInSorted), reorganize the four subarray
// pairs into the four balanced subregions of dst, recurse, and finally
// permute the concatenated (sorted) subregions into dst's row-major order.
// Costs: O(n^{3/2}) energy, O(log^2 n) depth, O(sqrt n) distance.
//
// Layout note (DESIGN.md substitution 1): instead of the paper's square +
// "mirrored L" arrangement, each recursion node stores A_i || B_i
// contiguously in the row-major order of its subregion; the subregions come
// from grid.Rect.SplitFour, which preserves the balanced sizes and halving
// diameters that the paper's cost analysis relies on.
func Merge(m *machine.Machine, tA, tB grid.Track, reg machine.Reg, dst grid.Rect, less order.Less) {
	n := tA.Len() + tB.Len()
	if n != dst.Size() {
		panic(fmt.Sprintf("core: Merge size mismatch: %d + %d elements into %v", tA.Len(), tB.Len(), dst))
	}
	if n == 0 {
		return
	}
	mergeRec(m, tA, tB, reg, dst, less)
}

func mergeRec(m *machine.Machine, tA, tB grid.Track, reg machine.Reg, dst grid.Rect, less order.Less) {
	n := tA.Len() + tB.Len()
	out := grid.RowMajor(dst)

	// One-sided or tiny inputs: route straight into row-major order,
	// sorting tiny mixtures on the fly. Cost O(n * diam(dst)) — the same
	// O(n^{3/2}) term the recurrence charges per node.
	if tA.Len() == 0 || tB.Len() == 0 || n <= 16 {
		routeMergedSmall(m, tA, tB, reg, out, less)
		return
	}

	// Rank-split A and B at n/4, n/2, 3n/4 with one multiselection
	// (shared sample sort; per-rank work runs as independent branches).
	scratch := grid.Square(dst.Origin.Add(dst.H+1, 0), SelectScratchSide(n))
	q := n / 4
	splits := [5]SplitCounts{{0, 0}, {}, {}, {}, {tA.Len(), tB.Len()}}
	three := MultiSelect(m, tA, tB, reg, []int{q, 2 * q, 3 * q}, scratch, less)
	copy(splits[1:4], three)

	// Reorganize: subregion i receives A[aStart..aEnd) followed by
	// B[bStart..bEnd) in its own row-major order. Both arrays move in one
	// atomic parallel round — sources overlap destinations when merging in
	// place, so all reads and frees must precede all deliveries.
	children := dst.SplitFour()
	childTrack := [4]grid.Track{}
	childLenA := [4]int{}
	for i := 0; i < 4; i++ {
		childTrack[i] = grid.RowMajor(children[i])
		childLenA[i] = splits[i+1].KA - splits[i].KA
	}
	moveSplit(m, [2]grid.Track{tA, tB}, reg, func(arr, j int) machine.Coord {
		if arr == 0 {
			i := segmentOf(j, splits[:], true)
			return childTrack[i].At(j - splits[i].KA)
		}
		i := segmentOf(j, splits[:], false)
		return childTrack[i].At(childLenA[i] + j - splits[i].KB)
	})

	// Recurse on each subregion's (A_i, B_i) pair; the four children are
	// data-independent.
	var branches [4]func()
	for i := 0; i < 4; i++ {
		i := i
		branches[i] = func() {
			lenA := childLenA[i]
			lenB := splits[i+1].KB - splits[i].KB
			mergeRec(m,
				grid.Slice(childTrack[i], 0, lenA),
				grid.Slice(childTrack[i], lenA, lenB),
				reg, children[i], less)
		}
	}
	m.Independent(branches[:]...)

	// The concatenation of the children's row-major tracks is now fully
	// sorted; permute it into dst's row-major order (Figure 3d).
	sorted := grid.Concat(childTrack[0], childTrack[1], childTrack[2], childTrack[3])
	grid.Route(m, sorted, reg, out, reg, grid.Identity(n))
}

// segmentOf returns which of the four rank segments index j of array A
// (isA) or B falls into, given the cumulative split counts.
func segmentOf(j int, splits []SplitCounts, isA bool) int {
	for i := 3; i >= 0; i-- {
		lo := splits[i].KB
		if isA {
			lo = splits[i].KA
		}
		if j >= lo {
			return i
		}
	}
	panic("core: unreachable segment")
}

// moveSplit relocates every element of both tracks to the destination given
// by dest(array, index), in one parallel round, reading and freeing all
// sources before any delivery so that overlapping source/destination cells
// behave as a simultaneous permutation.
func moveSplit(m *machine.Machine, ts [2]grid.Track, reg machine.Reg, dest func(arr, j int) machine.Coord) {
	var vals [2][]machine.Value
	for a, t := range ts {
		vals[a] = make([]machine.Value, t.Len())
		for j := 0; j < t.Len(); j++ {
			vals[a][j] = m.Get(t.At(j), reg)
		}
	}
	for _, t := range ts {
		for j := 0; j < t.Len(); j++ {
			m.Del(t.At(j), reg)
		}
	}
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for a, t := range ts {
			for j := 0; j < t.Len(); j++ {
				send(t.At(j), dest(a, j), reg, vals[a][j])
			}
		}
	})
}

// routeMergedSmall merges at most 16 elements (or a single non-empty array)
// directly into out, computing destination ranks locally at a coordinator
// and routing each element with one message.
func routeMergedSmall(m *machine.Machine, tA, tB grid.Track, reg machine.Reg, out grid.Track, less order.Less) {
	type src struct {
		t   grid.Track
		i   int
		val tagged
	}
	var elems []src
	for i := 0; i < tA.Len(); i++ {
		elems = append(elems, src{tA, i, tagged{v: m.Get(tA.At(i), reg), src: 0, idx: i}})
	}
	for i := 0; i < tB.Len(); i++ {
		elems = append(elems, src{tB, i, tagged{v: m.Get(tB.At(i), reg), src: 1, idx: i}})
	}
	lt := taggedLess(less)
	// Stable two-array merge: count, for each element, how many others
	// precede it in the tagged total order.
	ranks := make([]int, len(elems))
	for i := range elems {
		for j := range elems {
			if j != i && lt(elems[j].val, elems[i].val) {
				ranks[i]++
			}
		}
	}
	for i := range elems {
		m.Del(elems[i].t.At(elems[i].i), reg)
	}
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i, e := range elems {
			send(e.t.At(e.i), out.At(ranks[i]), reg, e.val.v)
		}
	})
}

// moveSplit and the final permutation both move each element once per
// recursion level; with diameters halving per level the total energy is the
// geometric series of Lemma V.7.
