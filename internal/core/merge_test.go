package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
)

// mergeSetup places two sorted arrays in the top and bottom quadrant pair of
// a square region (as the mergesort does) and returns everything needed to
// merge them into the top half.
func mergeSetup(a, b []float64) (*machine.Machine, grid.Track, grid.Track, grid.Rect) {
	m := machine.New()
	side := 2
	for side*side/4 < len(a) || side*side/4 < len(b) {
		side *= 2
	}
	r := grid.Square(machine.Coord{}, side)
	q := r.Quadrants()
	tA := grid.Slice(grid.RowMajor(q[0]), 0, len(a))
	tB := grid.Slice(grid.RowMajor(q[1]), 0, len(b))
	for i, v := range a {
		m.Set(tA.At(i), "v", v)
	}
	for i, v := range b {
		m.Set(tB.At(i), "v", v)
	}
	return m, tA, tB, r.TopHalf()
}

func TestMergeTwoFullQuadrants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, quarter := range []int{1, 4, 16, 64, 256} {
		a := sortedRandom(rng, quarter, 100)
		b := sortedRandom(rng, quarter, 100)
		m, tA, tB, dst := mergeSetup(a, b)
		Merge(m, tA, tB, "v", dst, order.Float64)
		want := append(append([]float64(nil), a...), b...)
		sort.Float64s(want)
		out := grid.RowMajor(dst)
		for i := range want {
			if got := m.Get(out.At(i), "v").(float64); got != want[i] {
				t.Fatalf("quarter=%d: merged[%d] = %v, want %v", quarter, i, got, want[i])
			}
		}
	}
}

func TestMergeQuick(t *testing.T) {
	f := func(rawA, rawB []int8) bool {
		quarter := 16
		a := make([]float64, quarter)
		b := make([]float64, quarter)
		for i := 0; i < quarter; i++ {
			if i < len(rawA) {
				a[i] = float64(rawA[i])
			}
			if i < len(rawB) {
				b[i] = float64(rawB[i])
			}
		}
		sort.Float64s(a)
		sort.Float64s(b)
		m, tA, tB, dst := mergeSetup(a, b)
		Merge(m, tA, tB, "v", dst, order.Float64)
		want := append(append([]float64(nil), a...), b...)
		sort.Float64s(want)
		out := grid.RowMajor(dst)
		for i := range want {
			if m.Get(out.At(i), "v").(float64) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMergeInterleavedAndDisjoint(t *testing.T) {
	quarter := 64
	a := make([]float64, quarter)
	b := make([]float64, quarter)
	// Perfectly interleaved.
	for i := range a {
		a[i] = float64(2 * i)
		b[i] = float64(2*i + 1)
	}
	m, tA, tB, dst := mergeSetup(a, b)
	Merge(m, tA, tB, "v", dst, order.Float64)
	out := grid.RowMajor(dst)
	for i := 0; i < 2*quarter; i++ {
		if got := m.Get(out.At(i), "v").(float64); got != float64(i) {
			t.Fatalf("interleaved merged[%d] = %v", i, got)
		}
	}
	// Fully disjoint (all of B below all of A).
	for i := range a {
		a[i] = float64(i + quarter)
		b[i] = float64(i)
	}
	m, tA, tB, dst = mergeSetup(a, b)
	Merge(m, tA, tB, "v", dst, order.Float64)
	out = grid.RowMajor(dst)
	for i := 0; i < 2*quarter; i++ {
		if got := m.Get(out.At(i), "v").(float64); got != float64(i) {
			t.Fatalf("disjoint merged[%d] = %v", i, got)
		}
	}
}

func TestMergeAllEqual(t *testing.T) {
	quarter := 64
	a := make([]float64, quarter)
	b := make([]float64, quarter)
	for i := range a {
		a[i], b[i] = 7, 7
	}
	m, tA, tB, dst := mergeSetup(a, b)
	Merge(m, tA, tB, "v", dst, order.Float64)
	out := grid.RowMajor(dst)
	for i := 0; i < 2*quarter; i++ {
		if got := m.Get(out.At(i), "v").(float64); got != 7 {
			t.Fatalf("equal merged[%d] = %v", i, got)
		}
	}
}

func TestMergeDepthLogSquared(t *testing.T) {
	// Lemma V.7: O(log^2 n) depth. Depth growth per quadrupling must
	// shrink relative to total (sub-polynomial): check d(4n)/d(n) < 2.
	rng := rand.New(rand.NewSource(22))
	depthAt := func(quarter int) float64 {
		a := sortedRandom(rng, quarter, 100)
		b := sortedRandom(rng, quarter, 100)
		m, tA, tB, dst := mergeSetup(a, b)
		Merge(m, tA, tB, "v", dst, order.Float64)
		return float64(m.Metrics().Depth)
	}
	if r := depthAt(1024) / depthAt(256); r >= 2 {
		t.Errorf("merge depth quadrupling ratio %.2f not polylogarithmic", r)
	}
}

func TestMergeEnergyThreeHalves(t *testing.T) {
	// Lemma V.7: O(n^{3/2}) energy — quadrupling n should scale energy by
	// about 8, certainly below 16.
	rng := rand.New(rand.NewSource(23))
	energyAt := func(quarter int) float64 {
		a := sortedRandom(rng, quarter, 100)
		b := sortedRandom(rng, quarter, 100)
		m, tA, tB, dst := mergeSetup(a, b)
		Merge(m, tA, tB, "v", dst, order.Float64)
		return float64(m.Metrics().Energy)
	}
	r := energyAt(1024) / energyAt(256)
	if r > 14 {
		t.Errorf("merge energy quadrupling ratio %.1f too large for O(n^{3/2})", r)
	}
}

func TestMergeSortSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, side := range []int{1, 2, 4, 8, 16, 32} {
		n := side * side
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
		}
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.RowMajor(r)
		for i, v := range vals {
			m.Set(tr.At(i), "v", v)
		}
		MergeSort(m, r, "v", order.Float64)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if got := m.Get(tr.At(i), "v").(float64); got != want[i] {
				t.Fatalf("side %d: sorted[%d] = %v, want %v", side, i, got, want[i])
			}
		}
	}
}

func TestMergeSortQuickPermutation(t *testing.T) {
	f := func(raw []int16) bool {
		side := 8
		n := side * side
		vals := make([]float64, n)
		for i := range vals {
			if i < len(raw) {
				vals[i] = float64(raw[i])
			}
		}
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.RowMajor(r)
		for i, v := range vals {
			m.Set(tr.At(i), "v", v)
		}
		MergeSort(m, r, "v", order.Float64)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if m.Get(tr.At(i), "v").(float64) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortAdversarialInputs(t *testing.T) {
	side := 16
	n := side * side
	inputs := map[string]func(i int) float64{
		"sorted":    func(i int) float64 { return float64(i) },
		"reversed":  func(i int) float64 { return float64(n - i) },
		"constant":  func(i int) float64 { return 42 },
		"organpipe": func(i int) float64 { return float64(min(i, n-i)) },
		"alternate": func(i int) float64 { return float64(i % 2) },
	}
	for name, gen := range inputs {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.RowMajor(r)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = gen(i)
			m.Set(tr.At(i), "v", vals[i])
		}
		MergeSort(m, r, "v", order.Float64)
		sort.Float64s(vals)
		for i := range vals {
			if got := m.Get(tr.At(i), "v").(float64); got != vals[i] {
				t.Fatalf("%s: sorted[%d] = %v, want %v", name, i, got, vals[i])
			}
		}
	}
}

func TestMergeSortEnergyOptimal(t *testing.T) {
	// Theorem V.8: O(n^{3/2}) energy.
	rng := rand.New(rand.NewSource(25))
	energyAt := func(side int) float64 {
		n := side * side
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.RowMajor(r)
		for i := 0; i < n; i++ {
			m.Set(tr.At(i), "v", rng.Float64())
		}
		MergeSort(m, r, "v", order.Float64)
		return float64(m.Metrics().Energy)
	}
	if r := energyAt(32) / energyAt(16); r > 14 {
		t.Errorf("mergesort energy quadrupling ratio %.1f too large for O(n^{3/2})", r)
	}
}

func TestMergeSortDistanceSqrt(t *testing.T) {
	// Theorem V.8: O(sqrt n) distance — doubling the side should roughly
	// double the distance, not square it.
	rng := rand.New(rand.NewSource(26))
	distAt := func(side int) float64 {
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.RowMajor(r)
		for i := 0; i < side*side; i++ {
			m.Set(tr.At(i), "v", rng.Float64())
		}
		MergeSort(m, r, "v", order.Float64)
		return float64(m.Metrics().Distance)
	}
	// Ratios decline toward the asymptotic 2x per side-doubling (measured:
	// 4.45 at 16->32, 3.04 at 32->64, 2.49 at 64->128); test past the
	// smallest pre-asymptotic step.
	if r := distAt(64) / distAt(32); r > 3.5 {
		t.Errorf("mergesort distance doubling ratio %.1f too large for O(sqrt n)", r)
	}
}

func TestSortToTrackZOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	side := 8
	n := side * side
	m := machine.New()
	r := grid.Square(machine.Coord{}, side)
	tr := grid.RowMajor(r)
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
		m.Set(tr.At(i), "v", vals[i])
	}
	zt := grid.ZOrder(r)
	SortToTrack(m, r, "v", zt, "z", order.Float64)
	sort.Float64s(vals)
	for i := range vals {
		if got := m.Get(zt.At(i), "z").(float64); got != vals[i] {
			t.Fatalf("z-order sorted[%d] = %v, want %v", i, got, vals[i])
		}
	}
}

func TestPermuteReversalEnergy(t *testing.T) {
	// Lemma V.1: the row-reversal permutation forces Omega(n^{3/2})
	// energy. Check the measured energy of the direct routing against the
	// n^{3/2} scale from below and above.
	for _, side := range []int{8, 16, 32} {
		n := side * side
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.RowMajor(r)
		for i := 0; i < n; i++ {
			m.Set(tr.At(i), "v", i)
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = n - 1 - i
		}
		Permute(m, tr, "v", tr, "v", perm)
		e := float64(m.Metrics().Energy)
		scale := float64(n) * float64(side)
		if e < scale/4 || e > 4*scale {
			t.Errorf("side %d: reversal energy %.0f not Theta(n^{3/2}) = ~%.0f", side, e, scale)
		}
	}
}
