package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
)

func selSetup(vals []float64) (*machine.Machine, grid.Rect) {
	side := 1
	for side*side < len(vals) {
		side *= 2
	}
	if side*side != len(vals) {
		panic("selSetup requires a square count")
	}
	m := machine.New()
	r := grid.Square(machine.Coord{}, side)
	tr := grid.RowMajor(r)
	for i, v := range vals {
		m.Set(tr.At(i), "v", v)
	}
	return m, r
}

func TestSelectAllRanksSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 64
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for k := 1; k <= n; k += 3 {
		m, r := selSetup(vals)
		got := Select(m, r, "v", k, order.Float64, rand.New(rand.NewSource(int64(k)))).(float64)
		if got != sorted[k-1] {
			t.Fatalf("k=%d: Select = %v, want %v", k, got, sorted[k-1])
		}
	}
}

func TestSelectLargeVariousRanksAndSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 1024
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1000
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, k := range []int{1, 2, 100, n / 2, n - 100, n - 1, n} {
		for seed := int64(0); seed < 3; seed++ {
			m, r := selSetup(vals)
			got := Select(m, r, "v", k, order.Float64, rand.New(rand.NewSource(seed))).(float64)
			if got != sorted[k-1] {
				t.Fatalf("k=%d seed=%d: Select = %v, want %v", k, seed, got, sorted[k-1])
			}
		}
	}
}

func TestSelectWithDuplicates(t *testing.T) {
	n := 256
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i % 8)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, k := range []int{1, 32, 33, 128, 255, 256} {
		m, r := selSetup(vals)
		got := Select(m, r, "v", k, order.Float64, rand.New(rand.NewSource(int64(k)))).(float64)
		if got != sorted[k-1] {
			t.Fatalf("k=%d: Select = %v, want %v", k, got, sorted[k-1])
		}
	}
}

func TestMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 256
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	m, r := selSetup(vals)
	got := Median(m, r, "v", order.Float64, rand.New(rand.NewSource(1))).(float64)
	if got != sorted[(n+1)/2-1] {
		t.Fatalf("Median = %v, want %v", got, sorted[(n+1)/2-1])
	}
}

func TestSelectLeavesInputIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 256
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	m, r := selSetup(vals)
	Select(m, r, "v", n/3, order.Float64, rand.New(rand.NewSource(5)))
	tr := grid.RowMajor(r)
	for i, v := range vals {
		if got := m.Get(tr.At(i), "v").(float64); got != v {
			t.Fatalf("input[%d] mutated: %v != %v", i, got, v)
		}
	}
}

func TestSelectStatisticalOverSeeds(t *testing.T) {
	// The w.h.p. claim: across many seeds the answer must always be
	// correct (the fallback guarantees correctness even when pivots fail).
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(35))
	n := 1024
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	k := n / 2
	for seed := int64(0); seed < 40; seed++ {
		m, r := selSetup(vals)
		got := Select(m, r, "v", k, order.Float64, rand.New(rand.NewSource(seed))).(float64)
		if got != sorted[k-1] {
			t.Fatalf("seed %d: Select = %v, want %v", seed, got, sorted[k-1])
		}
	}
}

func TestSelectEnergyLinearVsSortEnergy(t *testing.T) {
	// Theorem VI.3 vs Theorem V.8: selection is a polynomial energy factor
	// cheaper than sorting. Verify selection energy grows roughly linearly
	// (quadrupling ratio < 8, vs sorting's ~8) and that the sort/select
	// energy ratio grows with n.
	energySelect := func(side int) float64 {
		rng := rand.New(rand.NewSource(36))
		n := side * side
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		m, r := selSetup(vals)
		Select(m, r, "v", n/2, order.Float64, rand.New(rand.NewSource(9)))
		return float64(m.Metrics().Energy)
	}
	energySort := func(side int) float64 {
		rng := rand.New(rand.NewSource(36))
		n := side * side
		m := machine.New()
		r := grid.Square(machine.Coord{}, side)
		tr := grid.RowMajor(r)
		for i := 0; i < n; i++ {
			m.Set(tr.At(i), "v", rng.Float64())
		}
		MergeSort(m, r, "v", order.Float64)
		return float64(m.Metrics().Energy)
	}
	selRatio := energySelect(64) / energySelect(16)
	if selRatio > 40 {
		t.Errorf("selection energy 16x ratio %.1f too large for near-linear growth", selRatio)
	}
	gap16 := energySort(16) / energySelect(16)
	gap64 := energySort(64) / energySelect(64)
	if gap64 <= gap16 {
		t.Errorf("sort/select energy gap did not grow: %.2f -> %.2f", gap16, gap64)
	}
}

func TestSelectDepthPolylog(t *testing.T) {
	depthAt := func(side int) float64 {
		rng := rand.New(rand.NewSource(37))
		n := side * side
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		m, r := selSetup(vals)
		Select(m, r, "v", n/2, order.Float64, rand.New(rand.NewSource(3)))
		return float64(m.Metrics().Depth)
	}
	// Quadrupling n must grow depth by far less than 2x (it is
	// O(log^2 n)); allow slack for iteration-count noise.
	if r := depthAt(64) / depthAt(16); r > 2.5 {
		t.Errorf("selection depth 16x ratio %.2f not polylogarithmic", r)
	}
}

func TestFallbackSortDirect(t *testing.T) {
	// The fallback path triggers with vanishing probability in normal
	// runs; exercise it directly: only the marked-active elements take
	// part, and k is a rank among them under the comparator in effect.
	vals := []float64{9, 2, 7, 4, 5, 0, 8, 1, 3, 6, 11, 10, 13, 12, 15, 14}
	m, r := selSetup(vals)
	tr := grid.ZOrder(r)
	activeVals := []float64{}
	for i := 0; i < r.Size(); i++ {
		active := i%2 == 0
		m.Set(tr.At(i), "sel.active", active)
		if active {
			activeVals = append(activeVals, m.Get(tr.At(i), "v").(float64))
		}
	}
	sort.Float64s(activeVals)
	for _, k := range []int{1, 3, len(activeVals)} {
		got := fallbackSort(m, r, tr, "v", k, order.Float64).(float64)
		if got != activeVals[k-1] {
			t.Fatalf("fallbackSort(k=%d) = %v, want %v", k, got, activeVals[k-1])
		}
	}
	// Reversed comparator selects from the descending order.
	got := fallbackSort(m, r, tr, "v", 1, order.Reverse(order.Float64)).(float64)
	if got != activeVals[len(activeVals)-1] {
		t.Errorf("fallbackSort reversed = %v, want %v", got, activeVals[len(activeVals)-1])
	}
}
