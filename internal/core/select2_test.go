package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
)

// sel2Setup lays out two sorted arrays on adjacent square regions and
// returns the machine, tracks, scratch, and the merged reference array.
func sel2Setup(t *testing.T, a, b []float64) (*machine.Machine, grid.Track, grid.Track, grid.Rect) {
	t.Helper()
	m := machine.New()
	sideFor := func(n int) int {
		s := 1
		for s*s < n {
			s *= 2
		}
		return s
	}
	ra := grid.Square(machine.Coord{}, sideFor(len(a)))
	rb := grid.Square(machine.Coord{Row: 0, Col: ra.W + 1}, sideFor(len(b)))
	tA := grid.Slice(grid.RowMajor(ra), 0, len(a))
	tB := grid.Slice(grid.RowMajor(rb), 0, len(b))
	for i, v := range a {
		m.Set(tA.At(i), "v", v)
	}
	for i, v := range b {
		m.Set(tB.At(i), "v", v)
	}
	scratch := grid.Square(machine.Coord{Row: 40, Col: 0}, SelectScratchSide(len(a)+len(b)))
	return m, tA, tB, scratch
}

// checkSplit verifies that (KA, KB) is a consistent k-split: KA+KB == k,
// max(A[:KA], B[:KB]) <= min(A[KA:], B[KB:]) under the tagged total order
// (values with ties resolved towards A / lower index).
func checkSplit(t *testing.T, a, b []float64, k int, sc SplitCounts) {
	t.Helper()
	if sc.KA+sc.KB != k {
		t.Fatalf("k=%d: split %v does not sum to k", k, sc)
	}
	if sc.KA < 0 || sc.KA > len(a) || sc.KB < 0 || sc.KB > len(b) {
		t.Fatalf("k=%d: split %v out of range", k, sc)
	}
	// All taken elements must be <= all untaken elements, with the A-side
	// winning ties (src order).
	type te struct {
		v   float64
		src int
		idx int
	}
	less := func(x, y te) bool {
		if x.v != y.v {
			return x.v < y.v
		}
		if x.src != y.src {
			return x.src < y.src
		}
		return x.idx < y.idx
	}
	var taken, rest []te
	for i, v := range a {
		e := te{v, 0, i}
		if i < sc.KA {
			taken = append(taken, e)
		} else {
			rest = append(rest, e)
		}
	}
	for i, v := range b {
		e := te{v, 1, i}
		if i < sc.KB {
			taken = append(taken, e)
		} else {
			rest = append(rest, e)
		}
	}
	for _, x := range taken {
		for _, y := range rest {
			if less(y, x) {
				t.Fatalf("k=%d split %v: untaken %v precedes taken %v", k, sc, y, x)
			}
		}
	}
}

func sortedRandom(rng *rand.Rand, n int, scale float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() * scale
	}
	sort.Float64s(v)
	return v
}

func TestSelectInSortedExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sizes := range [][2]int{{1, 1}, {3, 2}, {4, 4}, {7, 9}, {16, 16}, {5, 0}, {0, 5}} {
		a := sortedRandom(rng, sizes[0], 10)
		b := sortedRandom(rng, sizes[1], 10)
		for k := 1; k <= len(a)+len(b); k++ {
			m, tA, tB, scratch := sel2Setup(t, a, b)
			sc := SelectInSorted(m, tA, tB, "v", k, scratch, order.Float64)
			checkSplit(t, a, b, k, sc)
		}
	}
}

func TestSelectInSortedLargeAllRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := sortedRandom(rng, 100, 50)
	b := sortedRandom(rng, 156, 50)
	n := len(a) + len(b)
	for k := 1; k <= n; k += 7 {
		m, tA, tB, scratch := sel2Setup(t, a, b)
		sc := SelectInSorted(m, tA, tB, "v", k, scratch, order.Float64)
		checkSplit(t, a, b, k, sc)
	}
	// Also the extremes.
	for _, k := range []int{1, 2, n - 1, n} {
		m, tA, tB, scratch := sel2Setup(t, a, b)
		sc := SelectInSorted(m, tA, tB, "v", k, scratch, order.Float64)
		checkSplit(t, a, b, k, sc)
	}
}

func TestSelectInSortedManyDuplicates(t *testing.T) {
	// Heavy ties stress the tagged total order.
	a := make([]float64, 64)
	b := make([]float64, 64)
	for i := range a {
		a[i] = float64(i / 16)
		b[i] = float64(i / 16)
	}
	for k := 1; k <= 128; k += 5 {
		m, tA, tB, scratch := sel2Setup(t, a, b)
		sc := SelectInSorted(m, tA, tB, "v", k, scratch, order.Float64)
		checkSplit(t, a, b, k, sc)
	}
}

func TestSelectInSortedSkewedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := sortedRandom(rng, 250, 10)
	b := sortedRandom(rng, 6, 10)
	for k := 1; k <= 256; k += 11 {
		m, tA, tB, scratch := sel2Setup(t, a, b)
		sc := SelectInSorted(m, tA, tB, "v", k, scratch, order.Float64)
		checkSplit(t, a, b, k, sc)
	}
}

func TestSelectInSortedDisjointRanges(t *testing.T) {
	// All of A below all of B and vice versa.
	rng := rand.New(rand.NewSource(14))
	lo := sortedRandom(rng, 60, 1)
	hi := sortedRandom(rng, 70, 1)
	for i := range hi {
		hi[i] += 10
	}
	for k := 1; k <= 130; k += 13 {
		m, tA, tB, scratch := sel2Setup(t, lo, hi)
		checkSplit(t, lo, hi, k, SelectInSorted(m, tA, tB, "v", k, scratch, order.Float64))
		m2, tA2, tB2, scratch2 := sel2Setup(t, hi, lo)
		checkSplit(t, hi, lo, k, SelectInSorted(m2, tA2, tB2, "v", k, scratch2, order.Float64))
	}
}

func TestSelectInSortedDepthLogarithmic(t *testing.T) {
	// Lemma V.6: O(log n) depth.
	var prev int64
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{64, 256, 1024} {
		a := sortedRandom(rng, n/2, 100)
		b := sortedRandom(rng, n/2, 100)
		m, tA, tB, scratch := sel2Setup(t, a, b)
		SelectInSorted(m, tA, tB, "v", n/2, scratch, order.Float64)
		d := m.Metrics().Depth
		// O(log n) depth: each quadrupling may add only a bounded number
		// of hops (extra log-levels, the sqrt-window recursion cascade and
		// the constant-size bitonic base case).
		if prev != 0 && d > prev+64 {
			t.Errorf("n=%d: depth %d jumped from %d (not logarithmic)", n, d, prev)
		}
		prev = d
	}
}

func TestSelectInSortedEnergySubQuadratic(t *testing.T) {
	// Lemma V.6: O(n^{5/4}) energy. Quadrupling n should multiply energy
	// by roughly 4^{5/4} ~ 5.7 — certainly under 4^2 = 16.
	energyAt := func(n int) float64 {
		rng := rand.New(rand.NewSource(16))
		a := sortedRandom(rng, n/2, 100)
		b := sortedRandom(rng, n/2, 100)
		m, tA, tB, scratch := sel2Setup(t, a, b)
		SelectInSorted(m, tA, tB, "v", n/2, scratch, order.Float64)
		return float64(m.Metrics().Energy)
	}
	// Per-quadrupling geometric-mean ratio across two size steps: exact
	// n^{5/4} gives 4^{1.25} ~ 5.7; allow slack for power-of-two rounding
	// in the all-pairs block geometry but stay well under quadratic (16).
	perStep := math.Sqrt(energyAt(4096) / energyAt(256))
	if perStep > 11 {
		t.Errorf("select-in-sorted energy per-quadrupling ratio %.1f too large for O(n^{5/4})", perStep)
	}
}

func TestSelectInSortedLeavesInputsIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := sortedRandom(rng, 32, 10)
	b := sortedRandom(rng, 32, 10)
	m, tA, tB, scratch := sel2Setup(t, a, b)
	SelectInSorted(m, tA, tB, "v", 20, scratch, order.Float64)
	for i, v := range a {
		if got := m.Get(tA.At(i), "v").(float64); got != v {
			t.Fatalf("A[%d] mutated: %v != %v", i, got, v)
		}
	}
	for i, v := range b {
		if got := m.Get(tB.At(i), "v").(float64); got != v {
			t.Fatalf("B[%d] mutated: %v != %v", i, got, v)
		}
	}
}
