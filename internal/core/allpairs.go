package core

import (
	"fmt"

	"repro/internal/collectives"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
)

// apGeometry returns the block side bs (blocks are bs x bs cells, bs^2 >= n
// so a block can hold the whole array row-major) and the block-grid side bg
// (bg x bg blocks, bg a power of two >= bs so there are >= n blocks and the
// replication recursion stays balanced).
func apGeometry(n int) (bs, bg int) {
	bs = isqrt(n)
	if bs*bs < n {
		bs++
	}
	bg = 1
	for bg < bs {
		bg *= 2
	}
	return bs, bg
}

// AllPairsScratchSide returns the side of the square scratch region needed
// by AllPairsSort for n elements: bg*bs cells per side — O(n) x O(n) as in
// Lemma V.5.
func AllPairsScratchSide(n int) int {
	if n <= 1 {
		return 1
	}
	bs, bg := apGeometry(n)
	return bs * bg
}

// AllPairsSort sorts the n elements stored in register reg at the positions
// of track t, in place, by comparing every element with every other element
// (Lemma V.5):
//
//  1. scatter element A_i to the first processor of block Gamma_i of the
//     scratch region (the scratch is subdivided into >= n blocks of side B
//     with B^2 >= n);
//  2. broadcast A_i within block Gamma_i;
//  3. replicate the whole array to every block using the 2-D broadcast
//     communication pattern with blocks as units;
//  4. compare the two elements at every processor;
//  5. reduce within each block to obtain the rank of A_i, then route A_i
//     directly to position rank_i of the track.
//
// Ranks are made distinct by breaking value ties with the input index, so
// the sort is stable. Costs: O(n^{5/2}) energy, O(log n) depth, O(n)
// distance (plus the track-to-scratch distance). The scratch must have side
// AllPairsScratchSide(n); all its scratch registers are freed on return.
func AllPairsSort(m *machine.Machine, t grid.Track, reg machine.Reg, n int, scratch grid.Rect, less order.Less) {
	if n <= 1 {
		return
	}
	side := AllPairsScratchSide(n)
	if scratch.H < side || scratch.W < side {
		panic(fmt.Sprintf("core: all-pairs scratch %v smaller than required side %d", scratch, side))
	}
	bs, bg := apGeometry(n)

	blockRect := func(i int) grid.Rect {
		return grid.Rect{Origin: scratch.At(i/bg*bs, i%bg*bs), H: bs, W: bs}
	}

	// Step 1: scatter element i (tagged with its index for stable ranking)
	// to the origin of block i.
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < n; i++ {
			v := tagged{v: m.Get(t.At(i), reg), idx: i}
			send(t.At(i), blockRect(i).Origin, "ap.own", v)
		}
	})

	// Step 2: broadcast A_i within its block.
	for i := 0; i < n; i++ {
		collectives.Broadcast(m, blockRect(i), "ap.own")
	}

	// Step 3: replicate the array to every block. First lay the array out
	// row-major inside block 0, then copy blocks recursively in the 2-D
	// broadcast pattern (quadrants of the b x b block grid).
	b0 := grid.RowMajor(blockRect(0))
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < n; i++ {
			v := tagged{v: m.Get(t.At(i), reg), idx: i}
			send(t.At(i), b0.At(i), "ap.arr", v)
		}
	})
	replicateBlocks(m, scratch, bs, bg, 0, 0, bg, n)

	// Step 4 + 5: every cell j of block i compares A_j with A_i; a
	// reduction per block counts how many elements precede A_i.
	lt := taggedLess(less)
	for i := 0; i < n; i++ {
		blk := blockRect(i)
		own := m.Get(blk.Origin, "ap.own").(tagged)
		tr := grid.RowMajor(blk)
		for j := 0; j < blk.Size(); j++ {
			cnt := int64(0)
			if j < n && lt(m.Get(tr.At(j), "ap.arr").(tagged), own) {
				cnt = 1
			}
			m.Set(tr.At(j), "ap.cnt", cnt)
		}
		collectives.Reduce(m, blk, "ap.cnt", collectives.AddInt)
	}

	// Route each element from its block origin straight to its sorted
	// position on the track, then free all scratch registers.
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i := 0; i < n; i++ {
			blk := blockRect(i)
			rank := int(m.Get(blk.Origin, "ap.cnt").(int64))
			send(blk.Origin, t.At(rank), reg, m.Get(blk.Origin, "ap.own").(tagged).v)
		}
	})
	for i := 0; i < n; i++ {
		blk := blockRect(i)
		tr := grid.RowMajor(blk)
		for j := 0; j < blk.Size(); j++ {
			m.Del(tr.At(j), "ap.own")
			m.Del(tr.At(j), "ap.arr")
			m.Del(tr.At(j), "ap.cnt")
		}
	}
}

// replicateBlocks copies the "ap.arr" contents of the block at block-coords
// (br, bc) to all *needed* blocks of the s x s block-quadrant anchored
// there, following the recursive 2-D broadcast pattern with blocks as
// units. Only blocks with row-major index below n hold an element, so
// quadrants whose smallest block index is already >= n are pruned — they
// would only replicate into unused scratch. Only the first n cells
// (row-major) of each block carry data.
func replicateBlocks(m *machine.Machine, scratch grid.Rect, bs, bg, br, bc, s, n int) {
	if s == 1 || br*bg+bc >= n {
		return
	}
	h := s / 2
	targets := [3][2]int{{br, bc + h}, {br + h, bc}, {br + h, bc + h}}
	src := grid.RowMajor(grid.Rect{Origin: scratch.At(br*bs, bc*bs), H: bs, W: bs})
	for _, tg := range targets {
		if tg[0]*bg+tg[1] >= n {
			continue // no element lives in this quadrant
		}
		dst := grid.RowMajor(grid.Rect{Origin: scratch.At(tg[0]*bs, tg[1]*bs), H: bs, W: bs})
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for i := 0; i < n; i++ {
				send(src.At(i), dst.At(i), "ap.arr", m.Get(src.At(i), "ap.arr"))
			}
		})
	}
	replicateBlocks(m, scratch, bs, bg, br, bc, h, n)
	replicateBlocks(m, scratch, bs, bg, br, bc+h, h, n)
	replicateBlocks(m, scratch, bs, bg, br+h, bc, h, n)
	replicateBlocks(m, scratch, bs, bg, br+h, bc+h, h, n)
}
