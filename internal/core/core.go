// Package core implements the paper's primary contribution: the first
// energy- and distance-optimal algorithms with poly-logarithmic depth for
// sorting and rank selection in the Spatial Computer Model.
//
//   - AllPairsSort (Lemma V.5): a naive O(log n)-depth sort used on small
//     samples, with O(n^{5/2}) energy.
//   - SelectInSorted (Lemma V.6): deterministic rank selection in two sorted
//     arrays in O(n^{5/4}) energy, O(log n) depth and O(sqrt n) distance.
//   - Merge (Lemma V.7): merging two sorted arrays on adjacent subgrids in
//     O(n^{3/2}) energy and O(log^2 n) depth.
//   - MergeSort (Theorem V.8): the energy-optimal 2-D mergesort with
//     O(n^{3/2}) energy, O(log^3 n) depth and O(sqrt n) distance, matching
//     the permutation lower bound (Lemma V.1 / Corollary V.2).
//   - Select (Theorem VI.3): randomized rank selection with O(n) energy and
//     O(log^2 n) depth with high probability.
package core

import (
	"repro/internal/machine"
	"repro/internal/order"
)

// tagged lifts an element to a totally ordered tuple (value, source array,
// index) so that rank arithmetic in the deterministic selection is exact
// even with duplicate values.
type tagged struct {
	v   machine.Value
	src int8 // 0 = array A, 1 = array B
	idx int  // index within the source array
}

// taggedLess orders tagged elements by value, breaking ties by (src, idx).
func taggedLess(less order.Less) order.Less {
	return func(a, b machine.Value) bool {
		x, y := a.(tagged), b.(tagged)
		if less(x.v, y.v) {
			return true
		}
		if less(y.v, x.v) {
			return false
		}
		if x.src != y.src {
			return x.src < y.src
		}
		return x.idx < y.idx
	}
}

// padded wraps an element or a +/- infinity sentinel, used to pad arrays to
// power-of-two sizes for the bitonic network and to represent the dummy
// pivot s_l = -infinity of the randomized selection (Section VI, step 3).
type padded struct {
	v   machine.Value
	inf int8 // -1: below everything, 0: ordinary value, +1: above everything
}

// paddedLess lifts less to padded values.
func paddedLess(less order.Less) order.Less {
	return func(a, b machine.Value) bool {
		x, y := a.(padded), b.(padded)
		if x.inf != y.inf {
			return x.inf < y.inf
		}
		if x.inf != 0 {
			return false
		}
		return less(x.v, y.v)
	}
}
