// Package workload generates the inputs used by the test suite, the
// examples and the benchmark harness: arrays with various orderings,
// adversarial permutations (including the reversal family behind the
// permutation lower bound of Lemma V.1), and sparse matrices modeling the
// scientific-computing and graph workloads that motivate the paper
// (stencils, banded systems, power-law graphs).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/spmv"
)

// ArrayKind names an input ordering for sorting/scan/selection workloads.
type ArrayKind string

const (
	Random    ArrayKind = "random"    // i.i.d. uniform values
	Sorted    ArrayKind = "sorted"    // already in order
	Reversed  ArrayKind = "reversed"  // worst case for naive movement
	FewValues ArrayKind = "fewvalues" // heavy duplication (8 distinct values)
	OrganPipe ArrayKind = "organpipe" // ascending then descending
	Gaussian  ArrayKind = "gaussian"  // normal values, clustered around 0
)

// ArrayKinds lists all array generators.
func ArrayKinds() []ArrayKind {
	return []ArrayKind{Random, Sorted, Reversed, FewValues, OrganPipe, Gaussian}
}

// Array returns n float64 values of the given kind.
func Array(kind ArrayKind, n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	switch kind {
	case Random:
		for i := range out {
			out[i] = rng.Float64()
		}
	case Sorted:
		for i := range out {
			out[i] = float64(i)
		}
	case Reversed:
		for i := range out {
			out[i] = float64(n - i)
		}
	case FewValues:
		for i := range out {
			out[i] = float64(rng.Intn(8))
		}
	case OrganPipe:
		for i := range out {
			out[i] = float64(min(i, n-i))
		}
	case Gaussian:
		for i := range out {
			out[i] = rng.NormFloat64()
		}
	default:
		panic(fmt.Sprintf("workload: unknown array kind %q", kind))
	}
	return out
}

// PermKind names a permutation family for the routing experiments.
type PermKind string

const (
	PermIdentity PermKind = "identity" // zero-energy baseline
	// PermReversal reverses row-major order: the adversarial permutation of
	// Lemma V.1 that forces Omega(n^{3/2}) energy on a square grid.
	PermReversal  PermKind = "reversal"
	PermTranspose PermKind = "transpose" // (r,c) -> (c,r) on a square grid
	PermRandom    PermKind = "random"    // uniformly random permutation
	PermShiftHalf PermKind = "shifthalf" // cyclic shift by n/2
)

// PermKinds lists all permutation generators.
func PermKinds() []PermKind {
	return []PermKind{PermIdentity, PermReversal, PermTranspose, PermRandom, PermShiftHalf}
}

// Permutation returns a permutation of [0, n). For PermTranspose n must be
// a perfect square.
func Permutation(kind PermKind, n int, rng *rand.Rand) []int {
	p := make([]int, n)
	switch kind {
	case PermIdentity:
		for i := range p {
			p[i] = i
		}
	case PermReversal:
		for i := range p {
			p[i] = n - 1 - i
		}
	case PermTranspose:
		side := int(math.Sqrt(float64(n)))
		if side*side != n {
			panic("workload: transpose permutation requires a square size")
		}
		for i := range p {
			r, c := i/side, i%side
			p[i] = c*side + r
		}
	case PermRandom:
		copy(p, rng.Perm(n))
	case PermShiftHalf:
		for i := range p {
			p[i] = (i + n/2) % n
		}
	default:
		panic(fmt.Sprintf("workload: unknown permutation kind %q", kind))
	}
	return p
}

// MatrixKind names a sparse-matrix family.
type MatrixKind string

const (
	// MatUniform scatters nnz entries uniformly: the unstructured case.
	MatUniform MatrixKind = "uniform"
	// MatStencil is the 5-point Laplacian of a 2-D grid: the canonical
	// scientific-computing matrix (conjugate-gradient workloads, [14]).
	MatStencil MatrixKind = "stencil"
	// MatTridiagonal is a banded system.
	MatTridiagonal MatrixKind = "tridiagonal"
	// MatPowerLaw draws row degrees from a Zipf distribution: a proxy for
	// graph adjacency structure in GNN workloads [15], [16].
	MatPowerLaw MatrixKind = "powerlaw"
)

// MatrixKinds lists all matrix generators.
func MatrixKinds() []MatrixKind {
	return []MatrixKind{MatUniform, MatStencil, MatTridiagonal, MatPowerLaw}
}

// SparseMatrix generates an n x n matrix of the given family. nnzHint
// bounds the entry count for the unstructured families and is ignored by
// the structured ones (whose nnz is determined by n).
func SparseMatrix(kind MatrixKind, n, nnzHint int, rng *rand.Rand) spmv.Matrix {
	a := spmv.Matrix{N: n}
	switch kind {
	case MatUniform:
		for i := 0; i < nnzHint; i++ {
			a.Entries = append(a.Entries, spmv.Entry{
				Row: rng.Intn(n), Col: rng.Intn(n), Val: rng.Float64()*2 - 1,
			})
		}
	case MatStencil:
		side := int(math.Sqrt(float64(n)))
		if side*side != n {
			panic("workload: stencil matrix requires a square n")
		}
		idx := func(r, c int) int { return r*side + c }
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				i := idx(r, c)
				a.Entries = append(a.Entries, spmv.Entry{Row: i, Col: i, Val: 4})
				for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					nr, nc := r+d[0], c+d[1]
					if nr >= 0 && nr < side && nc >= 0 && nc < side {
						a.Entries = append(a.Entries, spmv.Entry{Row: i, Col: idx(nr, nc), Val: -1})
					}
				}
			}
		}
	case MatTridiagonal:
		for i := 0; i < n; i++ {
			a.Entries = append(a.Entries, spmv.Entry{Row: i, Col: i, Val: 2})
			if i > 0 {
				a.Entries = append(a.Entries, spmv.Entry{Row: i, Col: i - 1, Val: -1})
			}
			if i < n-1 {
				a.Entries = append(a.Entries, spmv.Entry{Row: i, Col: i + 1, Val: -1})
			}
		}
	case MatPowerLaw:
		zipf := rand.NewZipf(rng, 1.5, 1, uint64(max(n/4, 1)))
		total := 0
		for r := 0; r < n && total < nnzHint; r++ {
			deg := int(zipf.Uint64()) + 1
			for d := 0; d < deg && total < nnzHint; d++ {
				a.Entries = append(a.Entries, spmv.Entry{
					Row: r, Col: rng.Intn(n), Val: rng.Float64()*2 - 1,
				})
				total++
			}
		}
	default:
		panic(fmt.Sprintf("workload: unknown matrix kind %q", kind))
	}
	return a
}
