package workload

import (
	"math/rand"
	"sort"
	"testing"
)

func TestArrayKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range ArrayKinds() {
		a := Array(kind, 64, rng)
		if len(a) != 64 {
			t.Fatalf("%s: length %d", kind, len(a))
		}
	}
	if !sort.Float64sAreSorted(Array(Sorted, 100, rng)) {
		t.Error("Sorted array not sorted")
	}
	rev := Array(Reversed, 100, rng)
	for i := 1; i < len(rev); i++ {
		if rev[i] > rev[i-1] {
			t.Fatal("Reversed array not descending")
		}
	}
	few := Array(FewValues, 1000, rng)
	distinct := map[float64]bool{}
	for _, v := range few {
		distinct[v] = true
	}
	if len(distinct) > 8 {
		t.Errorf("FewValues produced %d distinct values", len(distinct))
	}
}

func TestPermutationsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range PermKinds() {
		p := Permutation(kind, 64, rng)
		seen := make([]bool, 64)
		for _, v := range p {
			if v < 0 || v >= 64 || seen[v] {
				t.Fatalf("%s: invalid permutation", kind)
			}
			seen[v] = true
		}
	}
}

func TestPermutationShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	id := Permutation(PermIdentity, 10, rng)
	for i, v := range id {
		if v != i {
			t.Fatal("identity wrong")
		}
	}
	rev := Permutation(PermReversal, 10, rng)
	for i, v := range rev {
		if v != 9-i {
			t.Fatal("reversal wrong")
		}
	}
	tr := Permutation(PermTranspose, 16, rng)
	if tr[1] != 4 || tr[4] != 1 || tr[5] != 5 {
		t.Fatalf("transpose wrong: %v", tr)
	}
}

func TestSparseMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, kind := range MatrixKinds() {
		a := SparseMatrix(kind, 16, 48, rng)
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if a.NNZ() == 0 {
			t.Fatalf("%s: empty matrix", kind)
		}
	}
}

func TestStencilStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := SparseMatrix(MatStencil, 16, 0, rng)
	// 4x4 grid Laplacian: 16 diagonal entries + 2*2*(4*3) neighbor links.
	if a.NNZ() != 16+48 {
		t.Errorf("stencil nnz = %d, want 64", a.NNZ())
	}
	// Row sums of an interior point are zero (4 - 1 - 1 - 1 - 1).
	x := make([]float64, 16)
	for i := range x {
		x[i] = 1
	}
	y := a.MultiplyDense(x)
	if y[5] != 0 || y[6] != 0 {
		t.Errorf("interior Laplacian row sums: %v %v, want 0", y[5], y[6])
	}
}

func TestTridiagonalStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := SparseMatrix(MatTridiagonal, 8, 0, rng)
	if a.NNZ() != 3*8-2 {
		t.Errorf("tridiagonal nnz = %d, want 22", a.NNZ())
	}
	for _, e := range a.Entries {
		d := e.Row - e.Col
		if d < -1 || d > 1 {
			t.Fatalf("entry (%d,%d) outside the band", e.Row, e.Col)
		}
	}
}

func TestPowerLawBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := SparseMatrix(MatPowerLaw, 64, 100, rng)
	if a.NNZ() > 100 {
		t.Errorf("power-law nnz %d exceeds hint", a.NNZ())
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a1 := Array(Random, 32, rand.New(rand.NewSource(9)))
	a2 := Array(Random, 32, rand.New(rand.NewSource(9)))
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("generators not deterministic per seed")
		}
	}
}
