// Package grid provides rectangular processor regions and array layouts
// ("tracks") on the Spatial Computer Model grid.
//
// Algorithms in the paper operate on h x w subgrids of processors and store
// arrays on them in a specific traversal order: row-major or Z-order. A
// Track captures such a layout as an ordered sequence of coordinates; all
// algorithm packages address array element i through its track rather than
// hard-coding a layout.
package grid

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/zorder"
)

// Rect is an axis-aligned rectangle of PEs: H rows by W cols starting at
// Origin (inclusive).
type Rect struct {
	Origin machine.Coord
	H, W   int
}

// Square returns the square region of the given side at origin.
func Square(origin machine.Coord, side int) Rect {
	return Rect{Origin: origin, H: side, W: side}
}

// SquareFor returns a square region at origin large enough for n elements,
// where n must be a power of four (the paper's standing assumption).
func SquareFor(origin machine.Coord, n int) Rect {
	if !zorder.IsPow4(n) {
		panic(fmt.Sprintf("grid: SquareFor requires power-of-4 size, got %d", n))
	}
	return Square(origin, zorder.Sqrt(n))
}

// Size returns the number of PEs in the region.
func (r Rect) Size() int { return r.H * r.W }

// Diameter returns the largest Manhattan distance between two PEs of the
// region. Empty or degenerate regions (no PEs, or a single PE) have
// diameter 0 — without the clamp an H=0,W=0 rect would report −2.
func (r Rect) Diameter() int64 {
	if r.H <= 0 || r.W <= 0 {
		return 0
	}
	return int64(r.H - 1 + r.W - 1)
}

// Contains reports whether c lies inside the region.
func (r Rect) Contains(c machine.Coord) bool {
	return c.Row >= r.Origin.Row && c.Row < r.Origin.Row+r.H &&
		c.Col >= r.Origin.Col && c.Col < r.Origin.Col+r.W
}

// At returns the PE at relative position (row, col) inside the region.
func (r Rect) At(row, col int) machine.Coord {
	return machine.Coord{Row: r.Origin.Row + row, Col: r.Origin.Col + col}
}

// IsSquare reports whether the region is square.
func (r Rect) IsSquare() bool { return r.H == r.W }

func (r Rect) String() string {
	return fmt.Sprintf("[%dx%d @ %v]", r.H, r.W, r.Origin)
}

// Quadrants splits a square region of even side into its four quadrants in
// the paper's Z-order: top-left, top-right, bottom-left, bottom-right.
func (r Rect) Quadrants() [4]Rect {
	if !r.IsSquare() || r.H%2 != 0 {
		panic(fmt.Sprintf("grid: Quadrants of non-square or odd region %v", r))
	}
	s := r.H / 2
	return [4]Rect{
		Square(r.Origin, s),
		Square(r.Origin.Add(0, s), s),
		Square(r.Origin.Add(s, 0), s),
		Square(r.Origin.Add(s, s), s),
	}
}

// SplitFour splits a region of aspect ratio 1 or 2 (sides powers of two)
// into four congruent children of half the diameter, ordered so that
// concatenating the children's row-major tracks yields a locality-preserving
// curve over the region:
//
//   - a square splits into its quadrants (Z-order);
//   - a wide rectangle h x 2h splits into four vertical strips left to
//     right (each h x h/2);
//   - a tall rectangle 2h x h splits into four horizontal strips top to
//     bottom (each h/2 x h).
//
// This is the balanced quadrant decomposition used by the 2-D merge
// (DESIGN.md substitution 1): each child holds exactly Size()/4 cells and
// has at most half the parent's diameter.
func (r Rect) SplitFour() [4]Rect {
	switch {
	case r.IsSquare():
		return r.Quadrants()
	case r.W == 2*r.H:
		s := r.H / 2
		if s == 0 {
			panic(fmt.Sprintf("grid: SplitFour of too-small region %v", r))
		}
		return [4]Rect{
			{Origin: r.Origin, H: r.H, W: s},
			{Origin: r.Origin.Add(0, s), H: r.H, W: s},
			{Origin: r.Origin.Add(0, 2*s), H: r.H, W: s},
			{Origin: r.Origin.Add(0, 3*s), H: r.H, W: s},
		}
	case r.H == 2*r.W:
		s := r.W / 2
		if s == 0 {
			panic(fmt.Sprintf("grid: SplitFour of too-small region %v", r))
		}
		return [4]Rect{
			{Origin: r.Origin, H: s, W: r.W},
			{Origin: r.Origin.Add(s, 0), H: s, W: r.W},
			{Origin: r.Origin.Add(2*s, 0), H: s, W: r.W},
			{Origin: r.Origin.Add(3*s, 0), H: s, W: r.W},
		}
	default:
		panic(fmt.Sprintf("grid: SplitFour requires aspect ratio 1 or 2, got %v", r))
	}
}

// TopHalf and BottomHalf return the upper and lower h/2 x w halves.
func (r Rect) TopHalf() Rect    { return Rect{Origin: r.Origin, H: r.H / 2, W: r.W} }
func (r Rect) BottomHalf() Rect { return Rect{Origin: r.Origin.Add(r.H/2, 0), H: r.H - r.H/2, W: r.W} }

// RightOf returns a region of the given dimensions placed immediately to the
// right of r with a one-column gap, aligned to r's top row. Algorithms use
// it to allocate scratch subgrids (the machine's grid is unbounded).
func (r Rect) RightOf(h, w int) Rect {
	return Rect{Origin: r.Origin.Add(0, r.W+1), H: h, W: w}
}

// Below returns a region of the given dimensions placed immediately below r
// with a one-row gap, aligned to r's left column.
func (r Rect) Below(h, w int) Rect {
	return Rect{Origin: r.Origin.Add(r.H+1, 0), H: h, W: w}
}

// A Track is an ordered sequence of PE coordinates holding an array: element
// i of the array lives on PE At(i).
type Track interface {
	Len() int
	At(i int) machine.Coord
}

type rowMajorTrack struct{ r Rect }

func (t rowMajorTrack) Len() int { return t.r.Size() }
func (t rowMajorTrack) At(i int) machine.Coord {
	if i < 0 || i >= t.r.Size() {
		panic(fmt.Sprintf("grid: track index %d out of range [0,%d)", i, t.r.Size()))
	}
	return t.r.At(i/t.r.W, i%t.r.W)
}

// RowMajor returns the row-major track of a region.
func RowMajor(r Rect) Track { return rowMajorTrack{r} }

// TrackKind names a track constructor, so a layout choice can travel as
// data (mapping configs, cache keys, CLI flags) and be instantiated on a
// region only where the machine is at hand.
type TrackKind string

const (
	TrackRowMajor TrackKind = "rowmajor"
	TrackZOrder   TrackKind = "zorder"
	TrackHilbert  TrackKind = "hilbert"
)

// TrackKinds lists every kind TrackFor accepts, in canonical order.
func TrackKinds() []TrackKind {
	return []TrackKind{TrackRowMajor, TrackZOrder, TrackHilbert}
}

// Valid reports whether the kind names a known track constructor.
func (k TrackKind) Valid() bool {
	switch k {
	case TrackRowMajor, TrackZOrder, TrackHilbert:
		return true
	}
	return false
}

// SquareOnly reports whether the kind's constructor requires a square
// power-of-two region (the space-filling curves do; row-major does not).
func (k TrackKind) SquareOnly() bool { return k != TrackRowMajor }

// TrackFor instantiates the named track on r. It panics on an unknown kind
// or on a region the kind cannot serve (ZOrder and Hilbert require square
// power-of-two regions); callers enumerating layouts prune with Valid and
// SquareOnly first.
func TrackFor(k TrackKind, r Rect) Track {
	switch k {
	case TrackRowMajor:
		return RowMajor(r)
	case TrackZOrder:
		return ZOrder(r)
	case TrackHilbert:
		return Hilbert(r)
	}
	panic(fmt.Sprintf("grid: unknown track kind %q", k))
}

type zOrderTrack struct{ r Rect }

func (t zOrderTrack) Len() int { return t.r.Size() }
func (t zOrderTrack) At(i int) machine.Coord {
	if i < 0 || i >= t.r.Size() {
		panic(fmt.Sprintf("grid: track index %d out of range [0,%d)", i, t.r.Size()))
	}
	row, col := zorder.Decode(uint64(i))
	return t.r.At(row, col)
}

// ZOrder returns the Z-order (Morton) track of a square region whose side is
// a power of two.
func ZOrder(r Rect) Track {
	if !r.IsSquare() || !zorder.IsPow2(r.H) {
		panic(fmt.Sprintf("grid: ZOrder requires square power-of-two region, got %v", r))
	}
	return zOrderTrack{r}
}

type hilbertTrack struct{ r Rect }

func (t hilbertTrack) Len() int { return t.r.Size() }
func (t hilbertTrack) At(i int) machine.Coord {
	if i < 0 || i >= t.r.Size() {
		panic(fmt.Sprintf("grid: track index %d out of range [0,%d)", i, t.r.Size()))
	}
	row, col := zorder.HilbertDecode(t.r.H, uint64(i))
	return t.r.At(row, col)
}

// Hilbert returns the Hilbert-curve track of a square region whose side is
// a power of two — the layout ablation against ZOrder (unit-distance
// steps; no quadrant arithmetic).
func Hilbert(r Rect) Track {
	if !r.IsSquare() || !zorder.IsPow2(r.H) {
		panic(fmt.Sprintf("grid: Hilbert requires square power-of-two region, got %v", r))
	}
	return hilbertTrack{r}
}

type sliceTrack struct {
	t      Track
	off, n int
}

func (t sliceTrack) Len() int { return t.n }
func (t sliceTrack) At(i int) machine.Coord {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("grid: track index %d out of range [0,%d)", i, t.n))
	}
	return t.t.At(t.off + i)
}

// Slice returns the sub-track [off, off+n) of t.
func Slice(t Track, off, n int) Track {
	if off < 0 || n < 0 || off+n > t.Len() {
		panic(fmt.Sprintf("grid: Slice [%d,%d) out of range of track of length %d", off, off+n, t.Len()))
	}
	if off == 0 && n == t.Len() {
		return t
	}
	if s, ok := t.(sliceTrack); ok {
		return sliceTrack{s.t, s.off + off, n}
	}
	return sliceTrack{t, off, n}
}

type concatTrack struct {
	parts []Track
	total int
}

func (t concatTrack) Len() int { return t.total }
func (t concatTrack) At(i int) machine.Coord {
	if i < 0 || i >= t.total {
		panic(fmt.Sprintf("grid: track index %d out of range [0,%d)", i, t.total))
	}
	for _, p := range t.parts {
		if i < p.Len() {
			return p.At(i)
		}
		i -= p.Len()
	}
	panic("grid: unreachable")
}

// Concat returns the concatenation of the given tracks.
func Concat(parts ...Track) Track {
	total := 0
	flat := make([]Track, 0, len(parts))
	for _, p := range parts {
		if p.Len() == 0 {
			continue
		}
		total += p.Len()
		if c, ok := p.(concatTrack); ok {
			flat = append(flat, c.parts...)
		} else {
			flat = append(flat, p)
		}
	}
	return concatTrack{parts: flat, total: total}
}

type coordTrack []machine.Coord

func (t coordTrack) Len() int               { return len(t) }
func (t coordTrack) At(i int) machine.Coord { return t[i] }

// Coords returns a track over an explicit coordinate list.
func Coords(cs ...machine.Coord) Track { return coordTrack(cs) }

// Place stores vals[i] into register reg of track PE i. It models initial
// input placement and is free (no messages).
func Place(m *machine.Machine, t Track, reg machine.Reg, vals []machine.Value) {
	if len(vals) > t.Len() {
		panic(fmt.Sprintf("grid: placing %d values on track of length %d", len(vals), t.Len()))
	}
	for i, v := range vals {
		m.Set(t.At(i), reg, v)
	}
}

// Extract reads register reg of the first n track PEs. It models reading the
// output and is free.
func Extract(m *machine.Machine, t Track, reg machine.Reg, n int) []machine.Value {
	out := make([]machine.Value, n)
	for i := 0; i < n; i++ {
		out[i] = m.Get(t.At(i), reg)
	}
	return out
}

// Clear frees register reg on the first n track PEs.
func Clear(m *machine.Machine, t Track, reg machine.Reg, n int) {
	for i := 0; i < n; i++ {
		m.Del(t.At(i), reg)
	}
}

// Route sends the value in register srcReg of src.At(i) to register dstReg
// of dst.At(perm[i]) for every i, freeing the source registers. perm must be
// a permutation of [0, src.Len()) when src and dst overlap; with disjoint
// tracks any mapping is allowed. Each element travels directly (one
// message), so the energy is the sum of Manhattan source-destination
// distances — the primitive underlying Lemma V.1's permutation bound.
func Route(m *machine.Machine, src Track, srcReg machine.Reg, dst Track, dstReg machine.Reg, perm []int) {
	vals := make([]machine.Value, len(perm))
	for i := range perm {
		vals[i] = m.Get(src.At(i), srcReg)
	}
	// Read everything before writing so overlapping src/dst tracks with
	// srcReg == dstReg behave as a simultaneous permutation, and issue all
	// messages in one parallel round so they are mutually independent.
	for i := range perm {
		m.Del(src.At(i), srcReg)
	}
	m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
		for i, j := range perm {
			send(src.At(i), dst.At(j), dstReg, vals[i])
		}
	})
}

// Identity returns the identity permutation of length n.
func Identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}
