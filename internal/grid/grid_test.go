package grid

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
)

func TestRectBasics(t *testing.T) {
	r := Rect{Origin: machine.Coord{Row: 2, Col: 3}, H: 4, W: 8}
	if r.Size() != 32 {
		t.Errorf("Size = %d", r.Size())
	}
	if r.Diameter() != 10 {
		t.Errorf("Diameter = %d", r.Diameter())
	}
	if !r.Contains(machine.Coord{Row: 5, Col: 10}) {
		t.Error("Contains missed interior cell")
	}
	if r.Contains(machine.Coord{Row: 6, Col: 3}) {
		t.Error("Contains accepted exterior cell")
	}
	if got := r.At(1, 2); got != (machine.Coord{Row: 3, Col: 5}) {
		t.Errorf("At(1,2) = %v", got)
	}
}

func TestRectEmpty(t *testing.T) {
	// Regression: Diameter() of an empty rect used to return −2.
	cases := []Rect{
		{},                         // H=0, W=0
		{H: 0, W: 5},               // empty row band
		{H: 3, W: 0},               // empty column band
		{H: 1, W: 1},               // single PE: degenerate but non-empty
		{H: -1, W: 4},              // negative extents are empty too
		{Origin: machine.Coord{Row: 7, Col: -3}, H: 0, W: 0},
	}
	for _, r := range cases {
		if d := r.Diameter(); (r.H <= 0 || r.W <= 0) && d != 0 {
			t.Errorf("Diameter(%v) = %d, want 0 for empty rect", r, d)
		} else if d < 0 {
			t.Errorf("Diameter(%v) = %d is negative", r, d)
		}
		if r.H <= 0 || r.W <= 0 {
			if s := r.Size(); s > 0 {
				t.Errorf("Size(%v) = %d, want <= 0 for empty rect", r, s)
			}
			if r.Contains(r.Origin) {
				t.Errorf("Contains(%v) accepted origin of empty rect", r)
			}
		}
	}
	if d := (Rect{H: 1, W: 1}).Diameter(); d != 0 {
		t.Errorf("Diameter of 1x1 = %d, want 0", d)
	}
}

func TestSquareFor(t *testing.T) {
	r := SquareFor(machine.Coord{}, 64)
	if r.H != 8 || r.W != 8 {
		t.Errorf("SquareFor(64) = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("SquareFor(8) should panic (not a power of 4)")
		}
	}()
	SquareFor(machine.Coord{}, 8)
}

func TestQuadrantsZOrder(t *testing.T) {
	r := Square(machine.Coord{}, 4)
	q := r.Quadrants()
	wantOrigins := []machine.Coord{{Row: 0, Col: 0}, {Row: 0, Col: 2}, {Row: 2, Col: 0}, {Row: 2, Col: 2}}
	for i, w := range wantOrigins {
		if q[i].Origin != w || q[i].H != 2 || q[i].W != 2 {
			t.Errorf("quadrant %d = %v, want origin %v", i, q[i], w)
		}
	}
}

func TestSplitFourProperties(t *testing.T) {
	cases := []Rect{
		Square(machine.Coord{}, 8),
		{Origin: machine.Coord{Row: 1, Col: 1}, H: 4, W: 8},
		{Origin: machine.Coord{}, H: 8, W: 4},
	}
	for _, r := range cases {
		children := r.SplitFour()
		seen := make(map[machine.Coord]bool)
		for _, ch := range children {
			if ch.Size() != r.Size()/4 {
				t.Errorf("%v child %v: size %d != parent/4", r, ch, ch.Size())
			}
			if 2*ch.Diameter() > r.Diameter()+2 {
				t.Errorf("%v child %v: diameter %d not halved from %d", r, ch, ch.Diameter(), r.Diameter())
			}
			ar := ch.H / ch.W
			if ch.W > ch.H {
				ar = ch.W / ch.H
			}
			if ar != 1 && ar != 2 {
				t.Errorf("%v child %v: aspect ratio %d", r, ch, ar)
			}
			for row := 0; row < ch.H; row++ {
				for col := 0; col < ch.W; col++ {
					c := ch.At(row, col)
					if seen[c] {
						t.Fatalf("%v: cell %v covered twice", r, c)
					}
					if !r.Contains(c) {
						t.Fatalf("%v: child cell %v outside parent", r, c)
					}
					seen[c] = true
				}
			}
		}
		if len(seen) != r.Size() {
			t.Errorf("%v: children cover %d of %d cells", r, len(seen), r.Size())
		}
	}
}

func TestSplitFourRejectsBadAspect(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SplitFour on 2x8 should panic")
		}
	}()
	(Rect{H: 2, W: 8}).SplitFour()
}

func TestHalves(t *testing.T) {
	r := Square(machine.Coord{}, 8)
	top, bot := r.TopHalf(), r.BottomHalf()
	if top.H != 4 || top.W != 8 || bot.H != 4 || bot.W != 8 {
		t.Errorf("halves %v %v", top, bot)
	}
	if bot.Origin.Row != 4 {
		t.Errorf("bottom origin %v", bot.Origin)
	}
}

func TestScratchPlacement(t *testing.T) {
	r := Square(machine.Coord{Row: 5, Col: 5}, 4)
	right := r.RightOf(2, 2)
	if right.Origin != (machine.Coord{Row: 5, Col: 10}) {
		t.Errorf("RightOf origin %v", right.Origin)
	}
	below := r.Below(3, 3)
	if below.Origin != (machine.Coord{Row: 10, Col: 5}) {
		t.Errorf("Below origin %v", below.Origin)
	}
}

func TestRowMajorTrack(t *testing.T) {
	r := Rect{Origin: machine.Coord{Row: 1, Col: 1}, H: 2, W: 3}
	tr := RowMajor(r)
	want := []machine.Coord{
		{Row: 1, Col: 1}, {Row: 1, Col: 2}, {Row: 1, Col: 3},
		{Row: 2, Col: 1}, {Row: 2, Col: 2}, {Row: 2, Col: 3},
	}
	if tr.Len() != len(want) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i, w := range want {
		if got := tr.At(i); got != w {
			t.Errorf("At(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestZOrderTrack(t *testing.T) {
	r := Square(machine.Coord{Row: 10, Col: 20}, 2)
	tr := ZOrder(r)
	want := []machine.Coord{
		{Row: 10, Col: 20}, {Row: 10, Col: 21}, {Row: 11, Col: 20}, {Row: 11, Col: 21},
	}
	for i, w := range want {
		if got := tr.At(i); got != w {
			t.Errorf("At(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestTrackCoverage(t *testing.T) {
	// Every track visits each region cell exactly once.
	r := Square(machine.Coord{Row: -3, Col: 7}, 8)
	for name, tr := range map[string]Track{"rowmajor": RowMajor(r), "zorder": ZOrder(r)} {
		seen := make(map[machine.Coord]bool)
		for i := 0; i < tr.Len(); i++ {
			c := tr.At(i)
			if seen[c] || !r.Contains(c) {
				t.Fatalf("%s: bad cell %v at index %d", name, c, i)
			}
			seen[c] = true
		}
		if len(seen) != r.Size() {
			t.Errorf("%s: covered %d cells", name, len(seen))
		}
	}
}

func TestSliceAndConcat(t *testing.T) {
	r := Square(machine.Coord{}, 4)
	tr := RowMajor(r)
	s1 := Slice(tr, 2, 5)
	if s1.Len() != 5 || s1.At(0) != tr.At(2) || s1.At(4) != tr.At(6) {
		t.Error("Slice misbehaves")
	}
	s2 := Slice(s1, 1, 3) // nested slices compose
	if s2.At(0) != tr.At(3) {
		t.Error("nested Slice misbehaves")
	}
	c := Concat(Slice(tr, 0, 2), Slice(tr, 8, 2))
	if c.Len() != 4 || c.At(1) != tr.At(1) || c.At(2) != tr.At(8) || c.At(3) != tr.At(9) {
		t.Error("Concat misbehaves")
	}
}

func TestSliceBounds(t *testing.T) {
	tr := RowMajor(Square(machine.Coord{}, 2))
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Slice should panic")
		}
	}()
	Slice(tr, 2, 3)
}

func TestPlaceExtract(t *testing.T) {
	m := machine.New()
	tr := RowMajor(Square(machine.Coord{}, 4))
	vals := make([]machine.Value, 16)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	Place(m, tr, "v", vals)
	got := Extract(m, tr, "v", 16)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("Extract[%d] = %v", i, got[i])
		}
	}
	if m.Metrics().Energy != 0 {
		t.Error("Place/Extract must be free")
	}
	Clear(m, tr, "v", 16)
	if m.Has(tr.At(0), "v") {
		t.Error("Clear left registers live")
	}
}

func TestRoutePermutesInPlace(t *testing.T) {
	m := machine.New()
	tr := RowMajor(Square(machine.Coord{}, 4))
	n := 16
	vals := make([]machine.Value, n)
	for i := range vals {
		vals[i] = i
	}
	Place(m, tr, "v", vals)
	perm := rand.New(rand.NewSource(1)).Perm(n)
	Route(m, tr, "v", tr, "v", perm)
	got := Extract(m, tr, "v", n)
	for i, j := range perm {
		if got[j] != i {
			t.Fatalf("element %d did not arrive at %d: got %v", i, j, got[j])
		}
	}
	if d := m.Metrics().Depth; d != 1 {
		t.Errorf("route depth = %d, want 1 (all messages independent)", d)
	}
}

func TestRouteEnergyIsSumOfDistances(t *testing.T) {
	m := machine.New()
	r := Square(machine.Coord{}, 2)
	tr := RowMajor(r)
	Place(m, tr, "v", []machine.Value{0, 1, 2, 3})
	// Reversal permutation: 0<->3 distance 2, 1<->2 distance 2.
	Route(m, tr, "v", tr, "v", []int{3, 2, 1, 0})
	if e := m.Metrics().Energy; e != 8 {
		t.Errorf("reversal energy = %d, want 8", e)
	}
}

func TestIdentity(t *testing.T) {
	p := Identity(4)
	for i, v := range p {
		if v != i {
			t.Fatalf("Identity[%d] = %d", i, v)
		}
	}
}

func TestHilbertTrackCoverage(t *testing.T) {
	r := Square(machine.Coord{Row: 3, Col: -2}, 8)
	tr := Hilbert(r)
	seen := make(map[machine.Coord]bool)
	prev := tr.At(0)
	for i := 0; i < tr.Len(); i++ {
		c := tr.At(i)
		if seen[c] || !r.Contains(c) {
			t.Fatalf("hilbert: bad cell %v at %d", c, i)
		}
		seen[c] = true
		if i > 0 && machine.Dist(prev, c) != 1 {
			t.Fatalf("hilbert: non-unit step at %d", i)
		}
		prev = c
	}
	if len(seen) != r.Size() {
		t.Errorf("hilbert covered %d cells", len(seen))
	}
}

func TestHilbertRejectsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Hilbert on non-square should panic")
		}
	}()
	Hilbert(Rect{H: 2, W: 4})
}
