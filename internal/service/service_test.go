package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/bounds"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/simcache"
)

// synthSweeps builds a registry of fast closed-form sweeps, so service
// tests (and the spatiald -race smoke test) exercise the full pipeline
// without minutes of simulation. perPoint > 0 adds a delay to every
// point, for tests that need sweeps to overlap in time.
func synthSweeps(perPoint time.Duration) func(quick bool) *harness.Registry {
	return func(quick bool) *harness.Registry {
		points := 6
		if quick {
			points = 3
		}
		reg := &harness.Registry{}
		reg.MustRegister(harness.SweepSpec{Name: "syn/quadratic", Points: points,
			Point: func(i int, env *harness.Env) []harness.Row {
				if perPoint > 0 {
					time.Sleep(perPoint)
				}
				n := float64(int(64) << uint(2*i))
				return harness.One(n, n*n)
			},
			Cost: func(i int) float64 { return float64(int(1) << uint(2*i)) }})
		reg.MustRegister(harness.SweepSpec{Name: "syn/linear", Points: points,
			Point: func(i int, env *harness.Env) []harness.Row {
				if perPoint > 0 {
					time.Sleep(perPoint)
				}
				n := float64(int(64) << uint(2*i))
				return harness.One(n, 3*n+env.Rng.Float64())
			}})
		return reg
	}
}

func synthClaims() []bounds.Claim {
	return []bounds.Claim{
		{ID: "syn/quadratic/exp", Source: "test", Stated: "Θ(n²)",
			Kind: bounds.Exponent, Sweep: "syn/quadratic", Col: 1, Want: 2.0, Tol: 0.1},
		{ID: "syn/linear/exp", Source: "test", Stated: "Θ(n)",
			Kind: bounds.Exponent, Sweep: "syn/linear", Col: 1, Want: 1.0, Tol: 0.1},
	}
}

func testEngine(t *testing.T, mutate func(*Config)) (*Engine, *Client) {
	t.Helper()
	cfg := Config{
		Workers:      2,
		Cache:        simcache.New(simcache.Memory(), 0),
		CacheVersion: "test",
		Sweeps:       synthSweeps(0),
		Claims:       synthClaims,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	eng := New(cfg)
	srv := httptest.NewServer(eng.Handler())
	t.Cleanup(srv.Close)
	return eng, &Client{Base: srv.URL}
}

func waitDone(t *testing.T, c *Client, id string) JobInfo {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := c.Wait(ctx, id, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return info
}

func TestSweepJobLifecycle(t *testing.T) {
	_, c := testEngine(t, nil)
	id, err := c.SubmitSweep(SweepRequest{Name: "syn/quadratic", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, c, id)
	if info.Status != StatusDone {
		t.Fatalf("job = %+v", info)
	}
	if info.Progress.Done != 3 || info.Progress.Total != 3 {
		t.Errorf("progress = %+v, want 3/3", info.Progress)
	}
	data, err := c.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	var res SweepResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Name != "syn/quadratic" || res.Seed != 1 || len(res.Rows) != 3 {
		t.Errorf("result = %+v", res)
	}
	// The rows must equal a direct harness run of the same spec.
	reg := synthSweeps(0)(true)
	direct, err := reg.Run(harness.New(1, harness.WithWorkers(1)), "syn/quadratic")
	if err != nil {
		t.Fatal(err)
	}
	directJSON, _ := json.Marshal(direct)
	gotJSON, _ := json.Marshal(res.Rows)
	if !bytes.Equal(directJSON, gotJSON) {
		t.Errorf("served rows diverge from a direct run:\n got  %s\n want %s", gotJSON, directJSON)
	}
}

func TestSweepJobErrors(t *testing.T) {
	_, c := testEngine(t, nil)
	if _, err := c.SubmitSweep(SweepRequest{Name: "syn/nope"}); err == nil {
		t.Error("unknown sweep accepted")
	}
	if _, err := c.SubmitSweep(SweepRequest{}); err == nil {
		t.Error("nameless sweep accepted")
	}
	if _, err := c.Job("j999"); err == nil {
		t.Error("unknown job did not 404")
	}
	if _, err := c.SubmitBoundcheck(BoundcheckRequest{Run: "zzz/"}); err == nil {
		t.Error("empty claim filter accepted")
	}
}

// TestBoundcheckJobMatchesDirectCheck: the daemon's conformance document
// must be byte-identical to bounds.Check + MarshalReportJSON run in
// process with the same parameters — the property that lets a client
// treat server verdicts and local verdicts interchangeably.
func TestBoundcheckJobMatchesDirectCheck(t *testing.T) {
	_, c := testEngine(t, nil)
	id, err := c.SubmitBoundcheck(BoundcheckRequest{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitDone(t, c, id); info.Status != StatusDone {
		t.Fatalf("job = %+v", info)
	}
	got, err := c.Result(id)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := bounds.Check(harness.New(7, harness.WithWorkers(2)),
		synthSweeps(0)(true), synthClaims(), bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := bounds.MarshalReportJSON(rep, bounds.RunMeta{Quick: true, Seed: 7, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("server document diverges from direct check:\n got  %s\n want %s", got, want)
	}
}

// TestWarmRepeatIsAllCacheHits: the second identical submission must be
// answered entirely from the cache — same bytes, zero extra simulation.
func TestWarmRepeatIsAllCacheHits(t *testing.T) {
	eng, c := testEngine(t, nil)
	first, err := c.SubmitBoundcheck(BoundcheckRequest{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if info := waitDone(t, c, first); info.CacheHits != 0 {
		t.Errorf("cold job reported %d hits", info.CacheHits)
	}
	cold, _ := c.Result(first)
	simulated := eng.Snapshot().RowsSimulated

	second, err := c.SubmitBoundcheck(BoundcheckRequest{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, c, second)
	warm, _ := c.Result(second)
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm verdicts differ from cold:\n cold %s\n warm %s", cold, warm)
	}
	if info.CacheHits != 6 { // 3 points × 2 sweeps, quick
		t.Errorf("warm job reported %d cache hits, want 6", info.CacheHits)
	}
	m := eng.Snapshot()
	if m.RowsSimulated != simulated {
		t.Errorf("warm job simulated %d extra rows", m.RowsSimulated-simulated)
	}
	if m.Cache.HitRate <= 0 {
		t.Errorf("metrics hit rate = %v, want > 0", m.Cache.HitRate)
	}
}

// TestOverlappingJobsCoalesce: two concurrent identical submissions share
// one execution per sweep (the request batcher), and still both get full
// results.
func TestOverlappingJobsCoalesce(t *testing.T) {
	eng, c := testEngine(t, func(cfg *Config) {
		cfg.Sweeps = synthSweeps(30 * time.Millisecond)
		cfg.Workers = 1
	})
	var ids [2]string
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := c.SubmitBoundcheck(BoundcheckRequest{Quick: true})
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	var docs [2][]byte
	for i, id := range ids {
		if info := waitDone(t, c, id); info.Status != StatusDone {
			t.Fatalf("job %s = %+v", id, info)
		}
		docs[i], _ = c.Result(id)
	}
	if !bytes.Equal(docs[0], docs[1]) {
		t.Error("coalesced jobs returned different documents")
	}
	m := eng.Snapshot()
	if m.SweepsCoalesced == 0 {
		t.Error("no sweep executions were coalesced across the two jobs")
	}
	// 2 sweeps × 3 quick points, once despite two jobs.
	if m.RowsSimulated != 6 {
		t.Errorf("simulated %d rows, want 6 (each sweep once)", m.RowsSimulated)
	}
}

func TestRateLimitRejects(t *testing.T) {
	_, c := testEngine(t, func(cfg *Config) {
		cfg.RatePerSec = 0.001
		cfg.Burst = 1
	})
	if _, err := c.SubmitSweep(SweepRequest{Name: "syn/linear", Quick: true}); err != nil {
		t.Fatalf("first submission rejected: %v", err)
	}
	if _, err := c.SubmitSweep(SweepRequest{Name: "syn/linear", Quick: true}); err == nil {
		t.Error("second submission not rate limited")
	}
}

// TestShutdownDrainsInFlightJobs: Shutdown must reject new work
// immediately but wait for running jobs, which still finish successfully.
func TestShutdownDrainsInFlightJobs(t *testing.T) {
	eng, c := testEngine(t, func(cfg *Config) {
		cfg.Sweeps = synthSweeps(20 * time.Millisecond)
		cfg.Workers = 1
	})
	id, err := c.SubmitSweep(SweepRequest{Name: "syn/quadratic", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := c.SubmitSweep(SweepRequest{Name: "syn/linear", Quick: true}); err == nil {
		t.Error("submission accepted while draining")
	}
	info, err := c.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusDone {
		t.Errorf("in-flight job after drain = %+v, want done", info)
	}
}

// TestDeadlineTruncatesJob: a tiny per-job timeout skips unstarted points
// (harness.WithDeadline semantics) instead of hanging the job.
func TestDeadlineTruncatesJob(t *testing.T) {
	_, c := testEngine(t, func(cfg *Config) {
		cfg.Sweeps = synthSweeps(20 * time.Millisecond)
		cfg.Workers = 1
		cfg.Cache = nil
	})
	id, err := c.SubmitSweep(SweepRequest{Name: "syn/quadratic", TimeoutMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, c, id)
	if info.Status != StatusDone || info.Skipped == 0 {
		t.Errorf("job = %+v, want done with skipped points", info)
	}
}

func TestResultBeforeDoneConflicts(t *testing.T) {
	_, c := testEngine(t, func(cfg *Config) {
		cfg.Sweeps = synthSweeps(50 * time.Millisecond)
		cfg.Workers = 1
	})
	id, err := c.SubmitSweep(SweepRequest{Name: "syn/quadratic", Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(id); err == nil {
		t.Error("result of a running job did not conflict")
	}
	waitDone(t, c, id)
}

// machineSweeps is a registry whose one sweep actually simulates (long
// east-west messages), so its rows depend on the machine backend — the
// probe for per-request backend plumbing.
func machineSweeps(quick bool) *harness.Registry {
	reg := &harness.Registry{}
	reg.MustRegister(harness.SweepSpec{Name: "syn/wire", Points: 2,
		Point: func(i int, env *harness.Env) []harness.Row {
			m := env.Machine()
			m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
				for j := 0; j < 16; j++ {
					send(machine.Coord{Row: j, Col: 0}, machine.Coord{Row: j, Col: 63}, "v", int64(j))
				}
			})
			return harness.One(float64(i), float64(m.Metrics().Energy))
		}})
	return reg
}

// TestSweepJobBackendKeyed: a request naming a finite backend runs on a
// runner folding onto that fabric — its energies contract versus the
// default ideal run — and the two parameterizations never share a flight
// or a cache row. Bad specs are rejected at submission.
func TestSweepJobBackendKeyed(t *testing.T) {
	_, c := testEngine(t, func(cfg *Config) { cfg.Sweeps = machineSweeps })

	energy := func(backend string) float64 {
		t.Helper()
		id, err := c.SubmitSweep(SweepRequest{Name: "syn/wire", Backend: backend})
		if err != nil {
			t.Fatalf("submit (backend %q): %v", backend, err)
		}
		info := waitDone(t, c, id)
		if info.Status != StatusDone {
			t.Fatalf("job = %+v", info)
		}
		data, err := c.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		var res SweepResult
		if err := json.Unmarshal(data, &res); err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][1].(float64)
	}

	ideal := energy("")
	mesh := energy("mesh:4x4:16")
	if ideal <= 0 || mesh <= 0 {
		t.Fatalf("energies = %v (ideal), %v (mesh); want both positive", ideal, mesh)
	}
	if mesh >= ideal {
		t.Errorf("mesh energy %v did not contract below ideal %v", mesh, ideal)
	}
	if again := energy("mesh:4x4:16"); again != mesh {
		t.Errorf("repeat mesh run = %v, want cached %v", again, mesh)
	}

	if _, err := c.SubmitSweep(SweepRequest{Name: "syn/wire", Backend: "mesh:0x4"}); err == nil {
		t.Error("bad backend spec accepted by sweep submission")
	}
	if _, err := c.SubmitBoundcheck(BoundcheckRequest{Backend: "grid:banana"}); err == nil {
		t.Error("bad backend spec accepted by boundcheck submission")
	}
	// Overflow regressions: these specs once passed validation (W*H and
	// span=size*block wrap int) and crashed the job goroutine; they must be
	// rejected at submission.
	for _, spec := range []string{"mesh:3037000500x3037000500", "mesh:4x4:4611686018427387904"} {
		if _, err := c.SubmitSweep(SweepRequest{Name: "syn/wire", Backend: spec}); err == nil {
			t.Errorf("overflowing backend spec %q accepted by sweep submission", spec)
		}
	}
}
