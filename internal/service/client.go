package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a spatiald daemon. The zero HTTPClient means
// http.DefaultClient.
type Client struct {
	// Base is the server address, e.g. "http://127.0.0.1:8053".
	Base       string
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	base := strings.TrimSuffix(c.Base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base + path
}

// errorOf decodes the server's {"error": ...} body into a Go error.
func errorOf(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		return fmt.Errorf("spatiald: %s (HTTP %d)", doc.Error, resp.StatusCode)
	}
	return fmt.Errorf("spatiald: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) postJSON(path string, req any, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Post(c.url(path), "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return errorOf(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.httpClient().Get(c.url(path))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorOf(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// SubmitSweep submits a sweep job and returns its ID.
func (c *Client) SubmitSweep(req SweepRequest) (string, error) {
	var doc struct {
		ID string `json:"id"`
	}
	if err := c.postJSON("/v1/jobs/sweep", req, &doc); err != nil {
		return "", err
	}
	return doc.ID, nil
}

// SubmitBoundcheck submits a conformance job and returns its ID.
func (c *Client) SubmitBoundcheck(req BoundcheckRequest) (string, error) {
	var doc struct {
		ID string `json:"id"`
	}
	if err := c.postJSON("/v1/jobs/boundcheck", req, &doc); err != nil {
		return "", err
	}
	return doc.ID, nil
}

// Job fetches a job's status document.
func (c *Client) Job(id string) (JobInfo, error) {
	var info JobInfo
	err := c.getJSON("/v1/jobs/"+id, &info)
	return info, err
}

// Result fetches a finished job's raw result document.
func (c *Client) Result(id string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.url("/v1/jobs/" + id + "/result"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorOf(resp)
	}
	return io.ReadAll(resp.Body)
}

// Metrics fetches the daemon's metrics document.
func (c *Client) Metrics() (Metrics, error) {
	var m Metrics
	err := c.getJSON("/metrics", &m)
	return m, err
}

// Wait polls a job until it finishes (or ctx ends), invoking onProgress
// (optional) after each poll. It returns the final status document; a
// failed job is returned with a nil error — check info.Status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration, onProgress func(JobInfo)) (JobInfo, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		info, err := c.Job(id)
		if err != nil {
			return info, err
		}
		if onProgress != nil {
			onProgress(info)
		}
		if info.Status != StatusRunning {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-t.C:
		}
	}
}
