// Package service is the pooled simulation engine behind cmd/spatiald: a
// long-running daemon that accepts sweep and bound-conformance jobs over
// HTTP/JSON, multiplexes them onto one shared harness worker pool, and
// answers every repeated request out of a content-addressed result cache.
//
// Three mechanisms make the pool cheap to share:
//
//   - A request batcher coalesces overlapping sweeps: two in-flight jobs
//     that need the same (sweep, quick, seed, maxpoints, timeout, backend)
//     attach to one harness execution — the generalization of bounds.Check's
//     per-run sweep dedup across concurrent requests.
//   - The runner's simcache resolves previously computed points at enqueue
//     time, so a warmed daemon answers repeat sweeps without simulating
//     (sweep rows are byte-deterministic in the cache key; see simcache).
//   - Jobs are asynchronous: submission returns an ID immediately, status
//     polls report cost-weighted progress (harness.WithSweepProgress), and
//     results are fetched when done. Per-job deadlines reuse
//     harness.WithDeadline, so a slow sweep truncates instead of pinning
//     the pool.
//
// Endpoints (all JSON):
//
//	POST /v1/jobs/sweep       {"name","quick","seed","maxpoints","timeout_ms","backend"} → {"id"}
//	POST /v1/jobs/boundcheck  {"quick","seed","maxpoints","timeout_ms","run","backend"}  → {"id"}
//	GET  /v1/jobs/{id}         job status + weighted progress
//	GET  /v1/jobs/{id}/result  the job's result document (409 while running)
//	GET  /metrics              jobs, cache hit/miss, rows simulated/served
//	GET  /healthz              "ok"
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bounds"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/simcache"
)

// Config assembles an Engine. Sweeps is required; Claims only for
// boundcheck jobs.
type Config struct {
	// Workers, Shards, Batch configure every harness runner the engine
	// creates (one per distinct request seed; runner workers park between
	// jobs, so idle runners cost nothing).
	Workers int
	Shards  int
	Batch   bool
	// Cache, when non-nil, backs every runner. CacheVersion overrides the
	// key's code-version component (tests pin it; production leaves it "").
	Cache        *simcache.Cache
	CacheVersion string
	// Backend is the machine backend jobs run under when a request does
	// not name one (requests with a non-empty "backend" field override
	// it). The zero value is the ideal unbounded model.
	Backend machine.Backend
	// Sweeps yields the sweep registry for quick/full runs. Claims yields
	// the conformance claim set. Both are called lazily and memoized.
	Sweeps func(quick bool) *harness.Registry
	Claims func() []bounds.Claim
	// RatePerSec limits job submissions (token bucket, 0 = unlimited);
	// Burst is the bucket depth (default: ceil(RatePerSec), at least 1).
	RatePerSec float64
	Burst      int
	// MaxFinishedJobs caps retained finished jobs (oldest evicted; default
	// 256) so a long-lived daemon does not accumulate results forever.
	MaxFinishedJobs int
}

// Engine owns the worker pool, the job table and the sweep batcher.
type Engine struct {
	cfg   Config
	start time.Time

	mu      sync.Mutex
	runners map[string]*harness.Runner // keyed by (seed, backend)
	regs    map[bool]*harness.Registry
	claims  []bounds.Claim
	jobs    map[string]*Job
	doneIDs []string // finished jobs, oldest first, for eviction
	flights map[string]*flight
	nextID  int64
	closed  bool

	jobsWG sync.WaitGroup

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	coalesced atomic.Int64
	served    atomic.Int64 // rows returned to jobs (cached or fresh)

	limiter *bucket
}

// New builds an engine; it does not listen (use Handler with an
// http.Server).
func New(cfg Config) *Engine {
	if cfg.Sweeps == nil {
		panic("service: Config.Sweeps is required")
	}
	if cfg.MaxFinishedJobs <= 0 {
		cfg.MaxFinishedJobs = 256
	}
	e := &Engine{
		cfg:     cfg,
		start:   time.Now(),
		runners: make(map[string]*harness.Runner),
		regs:    make(map[bool]*harness.Registry),
		jobs:    make(map[string]*Job),
		flights: make(map[string]*flight),
	}
	if cfg.RatePerSec > 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = int(cfg.RatePerSec + 0.999)
			if burst < 1 {
				burst = 1
			}
		}
		e.limiter = newBucket(cfg.RatePerSec, float64(burst))
	}
	return e
}

// resolveBackend canonicalizes a request's backend spec, falling back to
// the engine-wide default for the empty string.
func (e *Engine) resolveBackend(spec string) (machine.Backend, error) {
	if spec == "" {
		return e.cfg.Backend, nil
	}
	return machine.ParseBackend(spec)
}

func (e *Engine) runner(seed int64, bk machine.Backend) *harness.Runner {
	key := fmt.Sprintf("%d|%s", seed, bk)
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.runners[key]; ok {
		return r
	}
	opts := []harness.Option{harness.WithLargestFirst(), harness.WithBackend(bk)}
	if e.cfg.Workers > 0 {
		opts = append(opts, harness.WithWorkers(e.cfg.Workers))
	}
	if e.cfg.Shards > 1 {
		opts = append(opts, harness.WithShards(e.cfg.Shards))
	}
	if e.cfg.Batch {
		opts = append(opts, harness.WithBatchSends())
	}
	if e.cfg.Cache != nil {
		opts = append(opts, harness.WithCache(e.cfg.Cache))
		if e.cfg.CacheVersion != "" {
			opts = append(opts, harness.WithCacheVersion(e.cfg.CacheVersion))
		}
	}
	r := harness.New(seed, opts...)
	e.runners[key] = r
	return r
}

func (e *Engine) registry(quick bool) *harness.Registry {
	e.mu.Lock()
	defer e.mu.Unlock()
	if reg, ok := e.regs[quick]; ok {
		return reg
	}
	reg := e.cfg.Sweeps(quick)
	e.regs[quick] = reg
	return reg
}

func (e *Engine) claimSet() []bounds.Claim {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.claims == nil && e.cfg.Claims != nil {
		e.claims = e.cfg.Claims()
	}
	return e.claims
}

// ---- jobs ----

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// Progress is a job's cost-weighted completion: Done/Total count sweep
// points; DoneCost/TotalCost sum the points' cost hints, the honest
// fraction when point costs span orders of magnitude.
type Progress struct {
	Done      int     `json:"done"`
	Total     int     `json:"total"`
	DoneCost  float64 `json:"done_cost"`
	TotalCost float64 `json:"total_cost"`
}

// Fraction is the cost-weighted completion in [0, 1]. A job whose every
// point resolved from cache carries zero cost weight; it still reports 1
// once all points are done rather than sitting at 0 forever.
func (p Progress) Fraction() float64 {
	if p.TotalCost <= 0 {
		if p.Total > 0 && p.Done >= p.Total {
			return 1
		}
		return 0
	}
	return p.DoneCost / p.TotalCost
}

// JobInfo is the status document for one job.
type JobInfo struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	Status    JobStatus `json:"status"`
	Progress  Progress  `json:"progress"`
	Fraction  float64   `json:"fraction"`
	CacheHits int       `json:"cache_hits"`
	Skipped   int       `json:"skipped"`
	ElapsedMS int64     `json:"elapsed_ms"`
	Error     string    `json:"error,omitempty"`
}

// Job is one asynchronous unit of work.
type Job struct {
	id      string
	kind    string
	created time.Time

	mu       sync.Mutex
	status   JobStatus
	finished time.Time
	sweeps   map[string]Progress // per-sweep progress, summed for the job
	hits     int
	skipped  int
	result   []byte
	errMsg   string
	done     chan struct{}
}

func (j *Job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	var p Progress
	for _, sp := range j.sweeps {
		p.Done += sp.Done
		p.Total += sp.Total
		p.DoneCost += sp.DoneCost
		p.TotalCost += sp.TotalCost
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	return JobInfo{
		ID: j.id, Kind: j.kind, Status: j.status,
		Progress: p, Fraction: p.Fraction(),
		CacheHits: j.hits, Skipped: j.skipped,
		ElapsedMS: end.Sub(j.created).Milliseconds(),
		Error:     j.errMsg,
	}
}

func (j *Job) updateSweep(name string, p Progress) {
	j.mu.Lock()
	j.sweeps[name] = p
	j.mu.Unlock()
}

func (j *Job) finish(result []byte, hits, skipped int, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	j.hits, j.skipped = hits, skipped
	if err != nil {
		j.status = StatusFailed
		j.errMsg = err.Error()
	} else {
		j.status = StatusDone
		j.result = result
	}
	j.mu.Unlock()
	close(j.done)
}

// newJob registers a job and schedules run on its own goroutine; it fails
// when the engine is draining.
func (e *Engine) newJob(kind string, run func(*Job)) (*Job, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errDraining
	}
	e.nextID++
	j := &Job{
		id: fmt.Sprintf("j%d", e.nextID), kind: kind, created: time.Now(),
		status: StatusRunning, sweeps: make(map[string]Progress),
		done: make(chan struct{}),
	}
	e.jobs[j.id] = j
	e.jobsWG.Add(1)
	e.mu.Unlock()

	e.submitted.Add(1)
	go func() {
		defer e.jobsWG.Done()
		run(j)
		if j.info().Status == StatusFailed {
			e.failed.Add(1)
		} else {
			e.completed.Add(1)
		}
		e.retire(j.id)
	}()
	return j, nil
}

// retire records a finished job for bounded retention.
func (e *Engine) retire(id string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.doneIDs = append(e.doneIDs, id)
	for len(e.doneIDs) > e.cfg.MaxFinishedJobs {
		delete(e.jobs, e.doneIDs[0])
		e.doneIDs = e.doneIDs[1:]
	}
}

func (e *Engine) job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

var errDraining = fmt.Errorf("service: draining, not accepting jobs")

// ---- the sweep batcher ----

// flight is one in-flight execution of a (sweep, parameters) pair. Every
// job needing that exact pair subscribes to the same flight; the first one
// starts it. This generalizes bounds.Check's same-run sweep dedup across
// concurrent jobs: N overlapping boundcheck submissions simulate each
// sweep once.
type flight struct {
	mu   sync.Mutex
	subs []func(Progress)
	last Progress

	done    chan struct{}
	rows    []harness.Row
	skipped int
	hits    int
	err     error
}

func (f *flight) subscribe(fn func(Progress)) {
	if fn == nil {
		return
	}
	f.mu.Lock()
	f.subs = append(f.subs, fn)
	snap := f.last
	f.mu.Unlock()
	if snap.Total > 0 {
		fn(snap)
	}
}

func (f *flight) broadcast(done, total int, doneCost, totalCost float64) {
	p := Progress{Done: done, Total: total, DoneCost: doneCost, TotalCost: totalCost}
	f.mu.Lock()
	f.last = p
	subs := f.subs
	f.mu.Unlock()
	for _, fn := range subs {
		fn(p)
	}
}

type sweepParams struct {
	Name      string
	Quick     bool
	Seed      int64
	MaxPoints int
	Timeout   time.Duration
	Backend   machine.Backend
}

func (p sweepParams) key() string {
	return fmt.Sprintf("%s|q=%t|s=%d|k=%d|t=%d|b=%s", p.Name, p.Quick, p.Seed, p.MaxPoints, p.Timeout, p.Backend)
}

// runSweep returns the rows of one parameterized sweep, joining an
// in-flight identical execution when there is one. progress (optional)
// receives cost-weighted updates, including an immediate snapshot when
// joining late.
func (e *Engine) runSweep(p sweepParams, progress func(Progress)) ([]harness.Row, int, int, error) {
	key := p.key()
	e.mu.Lock()
	f, joined := e.flights[key]
	if !joined {
		f = &flight{done: make(chan struct{})}
		e.flights[key] = f
	}
	e.mu.Unlock()

	if joined {
		e.coalesced.Add(1)
		f.subscribe(progress)
	} else {
		f.subscribe(progress)
		e.lead(key, p, f)
	}
	<-f.done
	if f.err == nil {
		e.served.Add(int64(len(f.rows)))
	}
	return f.rows, f.skipped, f.hits, f.err
}

// lead executes the flight's sweep and publishes the outcome. A panicking
// point (harness.PointPanic) fails the flight instead of crashing the
// daemon.
func (e *Engine) lead(key string, p sweepParams, f *flight) {
	defer func() {
		if v := recover(); v != nil {
			f.err = fmt.Errorf("sweep %s: %v", p.Name, v)
		}
		// Drop the flight before waking subscribers: a request arriving
		// after completion starts fresh (and is answered by the cache).
		e.mu.Lock()
		delete(e.flights, key)
		e.mu.Unlock()
		close(f.done)
	}()

	opts := []harness.RunOption{harness.SweepProgress(f.broadcast)}
	if p.MaxPoints > 0 {
		opts = append(opts, harness.MaxPoints(p.MaxPoints))
	}
	if p.Timeout > 0 {
		opts = append(opts, harness.Deadline(p.Timeout))
	}
	s, err := e.registry(p.Quick).Go(e.runner(p.Seed, p.Backend), p.Name, opts...)
	if err != nil {
		f.err = err
		return
	}
	f.rows = s.Rows() // panics on PointPanic; recovered above
	f.skipped = s.Skipped()
	f.hits = s.CacheHits()
}

// ---- request execution ----

// SweepRequest submits one registered sweep.
type SweepRequest struct {
	Name      string `json:"name"`
	Quick     bool   `json:"quick"`
	Seed      int64  `json:"seed"`
	MaxPoints int    `json:"maxpoints"`
	TimeoutMS int64  `json:"timeout_ms"`
	// Backend is a machine-backend spec ("mesh:8x8:4"); empty uses the
	// daemon's configured default (normally the ideal unbounded model).
	Backend string `json:"backend,omitempty"`
}

// BoundcheckRequest submits a conformance run over the claim registry.
type BoundcheckRequest struct {
	Quick     bool  `json:"quick"`
	Seed      int64 `json:"seed"`
	MaxPoints int   `json:"maxpoints"`
	TimeoutMS int64 `json:"timeout_ms"`
	// Run keeps only claims whose ID starts with this prefix ("" = all).
	Run string `json:"run,omitempty"`
	// Backend is a machine-backend spec ("mesh:8x8:4"); empty uses the
	// daemon's configured default (normally the ideal unbounded model).
	Backend string `json:"backend,omitempty"`
}

// SweepResult is the result document of a sweep job.
type SweepResult struct {
	Name      string        `json:"name"`
	Seed      int64         `json:"seed"`
	Rows      []harness.Row `json:"rows"`
	Skipped   int           `json:"skipped"`
	CacheHits int           `json:"cache_hits"`
}

func defaultSeed(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}

// SubmitSweep starts a sweep job and returns it.
func (e *Engine) SubmitSweep(req SweepRequest) (*Job, error) {
	if req.Name == "" {
		return nil, fmt.Errorf("service: sweep request needs a name")
	}
	if _, ok := e.registry(req.Quick).Lookup(req.Name); !ok {
		return nil, fmt.Errorf("service: unknown sweep %q (have %v)",
			req.Name, e.registry(req.Quick).Names())
	}
	bk, err := e.resolveBackend(req.Backend)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	p := sweepParams{Name: req.Name, Quick: req.Quick, Seed: defaultSeed(req.Seed),
		MaxPoints: req.MaxPoints, Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Backend: bk}
	return e.newJob("sweep", func(j *Job) {
		rows, skipped, hits, err := e.runSweep(p, func(pr Progress) { j.updateSweep(p.Name, pr) })
		if err != nil {
			j.finish(nil, hits, skipped, err)
			return
		}
		result, err := json.Marshal(SweepResult{
			Name: p.Name, Seed: p.Seed, Rows: rows, Skipped: skipped, CacheHits: hits})
		j.finish(result, hits, skipped, err)
	})
}

// SubmitBoundcheck starts a conformance job. Its result document is
// byte-identical to `boundcheck -json` run locally with the engine's
// shards/batch configuration — the sweeps execute through the same
// registry and seeding, and the document comes from the same
// bounds.MarshalReportJSON. Overlapping jobs coalesce per sweep.
func (e *Engine) SubmitBoundcheck(req BoundcheckRequest) (*Job, error) {
	claims := e.claimSet()
	if len(claims) == 0 {
		return nil, fmt.Errorf("service: no claim registry configured")
	}
	if req.Run != "" {
		var kept []bounds.Claim
		for _, c := range claims {
			if strings.HasPrefix(c.ID, req.Run) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("service: no claims match run prefix %q", req.Run)
		}
		claims = kept
	}
	seed := defaultSeed(req.Seed)
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	bk, err := e.resolveBackend(req.Backend)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	machineMeta := ""
	if bk.Finite() {
		machineMeta = bk.String()
	}
	return e.newJob("boundcheck", func(j *Job) {
		// Distinct sweeps in claim order, exactly like bounds.Check — but
		// each through the batcher, so concurrent jobs share executions.
		var names []string
		seen := make(map[string]bool)
		for _, c := range claims {
			if !seen[c.Sweep] {
				seen[c.Sweep] = true
				names = append(names, c.Sweep)
			}
		}
		type outcome struct {
			rows    []harness.Row
			skipped int
			hits    int
			err     error
		}
		outs := make([]outcome, len(names))
		var wg sync.WaitGroup
		for i, name := range names {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				p := sweepParams{Name: name, Quick: req.Quick, Seed: seed,
					MaxPoints: req.MaxPoints, Timeout: timeout, Backend: bk}
				rows, skipped, hits, err := e.runSweep(p, func(pr Progress) { j.updateSweep(name, pr) })
				outs[i] = outcome{rows, skipped, hits, err}
			}(i, name)
		}
		wg.Wait()

		rep := bounds.Report{Sweeps: make([]bounds.SweepStat, 0, len(names))}
		rowsBySweep := make(map[string][]harness.Row, len(names))
		var hits, skipped int
		for i, name := range names {
			if outs[i].err != nil {
				j.finish(nil, hits, skipped, outs[i].err)
				return
			}
			rowsBySweep[name] = outs[i].rows
			hits += outs[i].hits
			skipped += outs[i].skipped
			rep.Sweeps = append(rep.Sweeps, bounds.SweepStat{
				Name: name, Rows: len(outs[i].rows), Skipped: outs[i].skipped})
		}
		sort.Slice(rep.Sweeps, func(a, b int) bool { return rep.Sweeps[a].Name < rep.Sweeps[b].Name })
		for _, c := range claims {
			rep.Verdicts = append(rep.Verdicts, c.Eval(rowsBySweep[c.Sweep]))
		}
		result, err := bounds.MarshalReportJSON(rep, bounds.RunMeta{
			Quick: req.Quick, Seed: seed, MaxPoints: req.MaxPoints,
			Shards: e.effectiveShards(), Batch: e.cfg.Batch, Machine: machineMeta})
		j.finish(result, hits, skipped, err)
	})
}

func (e *Engine) effectiveShards() int {
	if e.cfg.Shards > 1 {
		return e.cfg.Shards
	}
	return 1
}

// ---- metrics & lifecycle ----

// Metrics is the /metrics document.
type Metrics struct {
	UptimeMS int64 `json:"uptime_ms"`
	Jobs     struct {
		Submitted int64 `json:"submitted"`
		Running   int64 `json:"running"`
		Done      int64 `json:"done"`
		Failed    int64 `json:"failed"`
		Rejected  int64 `json:"rejected"`
	} `json:"jobs"`
	SweepsCoalesced int64 `json:"sweeps_coalesced"`
	RowsSimulated   int64 `json:"rows_simulated"`
	RowsServed      int64 `json:"rows_served"`
	Cache           struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		Stores  int64   `json:"stores"`
		Errors  int64   `json:"errors"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
}

// Snapshot assembles the current metrics.
func (e *Engine) Snapshot() Metrics {
	var m Metrics
	m.UptimeMS = time.Since(e.start).Milliseconds()
	m.Jobs.Submitted = e.submitted.Load()
	m.Jobs.Done = e.completed.Load()
	m.Jobs.Failed = e.failed.Load()
	m.Jobs.Running = m.Jobs.Submitted - m.Jobs.Done - m.Jobs.Failed
	m.Jobs.Rejected = e.rejected.Load()
	m.SweepsCoalesced = e.coalesced.Load()
	m.RowsServed = e.served.Load()
	e.mu.Lock()
	for _, r := range e.runners {
		m.RowsSimulated += r.RowsSimulated()
	}
	e.mu.Unlock()
	if e.cfg.Cache != nil {
		st := e.cfg.Cache.Stats()
		m.Cache.Hits, m.Cache.Misses = st.Hits, st.Misses
		m.Cache.Stores, m.Cache.Errors = st.Stores, st.Errors
		if lookups := st.Hits + st.Misses; lookups > 0 {
			m.Cache.HitRate = float64(st.Hits) / float64(lookups)
		}
	}
	return m
}

// Shutdown stops accepting jobs and waits for in-flight ones to drain, or
// for ctx. Safe to call more than once.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		e.jobsWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted with jobs in flight: %w", ctx.Err())
	}
}

// ---- HTTP ----

// Handler returns the engine's HTTP API.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs/sweep", func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		e.submit(w, r, &req, func() (*Job, error) { return e.SubmitSweep(req) })
	})
	mux.HandleFunc("POST /v1/jobs/boundcheck", func(w http.ResponseWriter, r *http.Request) {
		var req BoundcheckRequest
		e.submit(w, r, &req, func() (*Job, error) { return e.SubmitBoundcheck(req) })
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeDoc(w, http.StatusOK, j.info())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		j.mu.Lock()
		status, result, errMsg := j.status, j.result, j.errMsg
		j.mu.Unlock()
		switch status {
		case StatusRunning:
			httpError(w, http.StatusConflict, "job still running")
		case StatusFailed:
			httpError(w, http.StatusInternalServerError, errMsg)
		default:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(result)
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeDoc(w, http.StatusOK, e.Snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// submit is the shared submission path: rate limit, decode, dispatch.
func (e *Engine) submit(w http.ResponseWriter, r *http.Request, req any, start func() (*Job, error)) {
	if e.limiter != nil && !e.limiter.allow() {
		e.rejected.Add(1)
		httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, err := start()
	switch {
	case err == errDraining:
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		writeDoc(w, http.StatusAccepted, map[string]string{"id": j.id})
	}
}

func writeDoc(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(doc)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeDoc(w, code, map[string]string{"error": msg})
}

// bucket is a minimal token-bucket rate limiter (stdlib only).
type bucket struct {
	mu     sync.Mutex
	tokens float64
	rate   float64
	burst  float64
	last   time.Time
}

func newBucket(rate, burst float64) *bucket {
	return &bucket{tokens: burst, rate: rate, burst: burst, last: time.Now()}
}

func (b *bucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
