package bounds

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/harness"
)

// TestRegistryCoversTableI pins the headline result: every Table I row
// (primitive × metric) must have a registered claim with the canonical ID.
// Adding a primitive to Table I without a conformance claim fails here.
func TestRegistryCoversTableI(t *testing.T) {
	for _, prim := range TableIPrimitives {
		for _, m := range TableIMetrics {
			id := "table1/" + prim + "/" + string(m)
			c, ok := ByID(id)
			if !ok {
				t.Errorf("Table I row %s/%s has no claim %q", prim, m, id)
				continue
			}
			if c.Primitive != prim || c.Metric != m {
				t.Errorf("claim %s: Primitive/Metric = %s/%s, want %s/%s",
					id, c.Primitive, c.Metric, prim, m)
			}
			if c.Source == "" || c.Stated == "" {
				t.Errorf("claim %s: missing Source or Stated", id)
			}
		}
	}
}

func TestRegistryClaimsWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range Registry() {
		if c.ID == "" {
			t.Fatalf("claim with empty ID: %+v", c)
		}
		if seen[c.ID] {
			t.Errorf("duplicate claim ID %q", c.ID)
		}
		seen[c.ID] = true
		if c.Sweep == "" || !strings.HasPrefix(c.Sweep, "bounds/") {
			t.Errorf("claim %s: sweep %q not under bounds/", c.ID, c.Sweep)
		}
		if c.Col <= 0 {
			t.Errorf("claim %s: Col %d must reference a value column (column 0 is n)", c.ID, c.Col)
		}
		switch c.Kind {
		case Exponent, TailExponent, ExponentAtMost:
			if c.Tol <= 0 {
				t.Errorf("claim %s: exponent kind needs Tol > 0", c.ID)
			}
		case ValueBounded:
			if c.Lo >= c.Hi {
				t.Errorf("claim %s: ValueBounded needs Lo < Hi (got [%v, %v])", c.ID, c.Lo, c.Hi)
			}
		case RatioGrows:
			if c.MinGain <= 0 {
				t.Errorf("claim %s: RatioGrows needs MinGain > 0", c.ID)
			}
		case Dominates, CrossoverBeyond:
			if c.Den <= 0 {
				t.Errorf("claim %s: %s needs a baseline Den column", c.ID, c.Kind)
			}
		case Polylog, Polynomial:
			// no numeric parameters
		default:
			t.Errorf("claim %s: unknown kind %q", c.ID, c.Kind)
		}
	}
}

// TestRegistrySweepsResolve checks every claim's sweep exists in the
// experiment sweep registry — in both quick and full variants — and that
// the referenced columns are inside the rows the sweep's first point
// produces. This is the wiring test between internal/bounds and
// internal/experiments; a renamed sweep or reordered column fails here,
// not at 2am in CI.
func TestRegistrySweepsResolve(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one simulator point per sweep")
	}
	for _, quick := range []bool{true, false} {
		reg := experiments.BoundSweeps(quick)
		for _, c := range Registry() {
			if _, ok := reg.Lookup(c.Sweep); !ok {
				t.Errorf("quick=%v: claim %s references unknown sweep %q", quick, c.ID, c.Sweep)
			}
		}
	}
	// Row width is invariant across points; probe each sweep's smallest
	// point once (quick registry — full points are minutes each).
	r := harness.New(1)
	reg := experiments.BoundSweeps(true)
	width := make(map[string]int)
	for _, c := range Registry() {
		w, probed := width[c.Sweep]
		if !probed {
			rows, err := reg.Run(r, c.Sweep, harness.MaxPoints(1))
			if err != nil || len(rows) == 0 {
				t.Fatalf("probing sweep %s: rows=%d err=%v", c.Sweep, len(rows), err)
			}
			w = len(rows[0])
			width[c.Sweep] = w
		}
		if c.Col >= w || c.Den >= w {
			t.Errorf("claim %s: Col=%d Den=%d out of range for %s rows (width %d)",
				c.ID, c.Col, c.Den, c.Sweep, w)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("no/such/claim"); ok {
		t.Error("ByID returned a claim for an unknown ID")
	}
	c, ok := ByID("table1/scan/energy")
	if !ok || c.Kind != Exponent {
		t.Errorf("ByID(table1/scan/energy) = %+v, %v", c, ok)
	}
}
