package bounds

// TableIPrimitives and TableIMetrics enumerate the headline result's rows
// and columns; the registry must cover their full cross product (pinned by
// TestRegistryCoversTableI).
var (
	TableIPrimitives = []string{"scan", "sort", "selection", "spmv"}
	TableIMetrics    = []Metric{Energy, Depth, Distance}
)

// Registry returns every machine-checked claim, in report order. IDs are
// stable: "table1/<primitive>/<metric>" for the headline rows,
// "<artifact>/<claim>" for the lemma- and section-level statements.
//
// Tolerances are calibrated against the recorded full-sweep measurements
// in EXPERIMENTS.md *and* the smaller -quick sweeps (CI runs quick): wide
// enough to absorb finite-size effects that are documented there (energy
// fits approach 1.5 from below, distance converges from above), tight
// enough that a broken algorithm or cost model trips them.
func Registry() []Claim {
	var claims []Claim

	// --- Table I: energy exponents (least-squares over the full sweep).
	claims = append(claims,
		Claim{ID: "table1/scan/energy", Source: "Table I / Lemma IV.3", Primitive: "scan", Metric: Energy,
			Stated: "Theta(n)", Kind: Exponent, Sweep: "bounds/scan", Col: 1, Want: 1.0, Tol: 0.15},
		Claim{ID: "table1/sort/energy", Source: "Table I / Theorem V.8", Primitive: "sort", Metric: Energy,
			Stated: "Theta(n^1.5)", Kind: Exponent, Sweep: "bounds/sort", Col: 1, Want: 1.5, Tol: 0.25},
		Claim{ID: "table1/selection/energy", Source: "Table I / Theorem VI.3", Primitive: "selection", Metric: Energy,
			Stated: "Theta(n)", Kind: Exponent, Sweep: "bounds/selection", Col: 1, Want: 1.0, Tol: 0.2},
		Claim{ID: "table1/spmv/energy", Source: "Table I / Theorem VIII.2", Primitive: "spmv", Metric: Energy,
			Stated: "Theta(m^1.5)", Kind: Exponent, Sweep: "bounds/spmv", Col: 1, Want: 1.5, Tol: 0.25},
	)

	// --- Table I: depth is polylogarithmic. Degree fits overshoot the
	// paper's upper bounds on short sweeps (additive lower-order terms), so
	// the gate is the polylog-vs-polynomial growth discriminator.
	for _, p := range []struct{ prim, sweep, stated, src string }{
		{"scan", "bounds/scan", "O(log n)", "Table I / Lemma IV.3"},
		{"sort", "bounds/sort", "O(log^3 n)", "Table I / Theorem V.8"},
		{"selection", "bounds/selection", "O(log^2 n)", "Table I / Theorem VI.3"},
		{"spmv", "bounds/spmv", "O(log^3 n)", "Table I / Theorem VIII.2"},
	} {
		claims = append(claims, Claim{
			ID: "table1/" + p.prim + "/depth", Source: p.src, Primitive: p.prim, Metric: Depth,
			Stated: p.stated, Kind: Polylog, Sweep: p.sweep, Col: 2,
		})
	}

	// --- Table I: distance tail exponents. The additive O(√n)-per-level
	// terms decay slowly, so the tail slope is the estimator (EXPERIMENTS.md
	// records tails 0.47–0.65 falling toward 0.5).
	for _, p := range []struct{ prim, sweep, src string }{
		{"scan", "bounds/scan", "Table I / Lemma IV.3"},
		{"sort", "bounds/sort", "Table I / Theorem V.8"},
		{"selection", "bounds/selection", "Table I / Theorem VI.3"},
		{"spmv", "bounds/spmv", "Table I / Theorem VIII.2"},
	} {
		claims = append(claims, Claim{
			ID: "table1/" + p.prim + "/distance", Source: p.src, Primitive: p.prim, Metric: Distance,
			Stated: "Theta(sqrt n)", Kind: TailExponent, Sweep: p.sweep, Col: 3, Want: 0.5, Tol: 0.35,
		})
	}

	// --- Lemma IV.1 / Cor. IV.2: broadcast and reduce energy within a
	// constant of hw + h·log h on every tested subgrid shape.
	claims = append(claims,
		Claim{ID: "lemma-iv1/broadcast-within-constant", Source: "Lemma IV.1", Primitive: "broadcast", Metric: Energy,
			Stated: "O(hw + h log h)", Kind: ValueBounded, Sweep: "bounds/collectives", Col: 1, Lo: 0.3, Hi: 2.5},
		Claim{ID: "lemma-iv1/reduce-within-constant", Source: "Cor. IV.2", Primitive: "reduce", Metric: Energy,
			Stated: "O(hw + h log h)", Kind: ValueBounded, Sweep: "bounds/collectives", Col: 2, Lo: 0.3, Hi: 2.5},
	)

	// --- Sec. IV-B: the binary-tree reduce pays a growing Θ(log n) energy
	// factor over the multicast-free 2-D reduce.
	claims = append(claims, Claim{
		ID: "sec-iv-b/tree-reduce-log-penalty", Source: "Sec. IV-B", Primitive: "reduce", Metric: Derived,
		Stated: "Theta(log n) energy separation", Kind: RatioGrows, Sweep: "bounds/reduce-ablation",
		Col: 2, Den: 1, MinGain: 0.3,
	})

	// --- Sec. IV-C (Fig. 1): the scan design-space triangle.
	claims = append(claims,
		Claim{ID: "sec-iv-c/tree-scan-log-penalty", Source: "Sec. IV-C / Fig. 1", Primitive: "scan", Metric: Derived,
			Stated: "Theta(log n) energy separation", Kind: RatioGrows, Sweep: "bounds/scan-ablation",
			Col: 2, Den: 1, MinGain: 0.3},
		Claim{ID: "sec-iv-c/zorder-scan-energy-optimal", Source: "Sec. IV-C / Lemma IV.3", Primitive: "scan", Metric: Derived,
			Stated: "Theta(n): within a constant of the sequential scan", Kind: ValueBounded, Sweep: "bounds/scan-ablation",
			Col: 1, Den: 3, Lo: 1.0, Hi: 3.5},
		// Large-n tail: unlike the sorting comparison there is no
		// constants-vs-asymptotics tension here — the Z-order scan beats
		// the [38]-style binary-tree scan outright at every size, and the
		// full sweeps now pin that ordering beyond n = 65 536 up to 2^20.
		Claim{ID: "sec-iv-c/zorder-dominates-tree-scan", Source: "Sec. IV-C / Fig. 1", Primitive: "scan", Metric: Derived,
			Stated: "Theta(n) < tree scan's Theta(n log n) at every measured size", Kind: Dominates, Sweep: "bounds/scan-ablation",
			Col: 1, Den: 2},
	)

	// --- Sorting comparison (Fig. 2, Lemmas V.3/V.4, Thm V.8).
	claims = append(claims,
		Claim{ID: "lemma-v4/bitonic-log-penalty", Source: "Lemma V.4 / Fig. 2", Primitive: "sort-bitonic", Metric: Derived,
			Stated: "Theta(n^1.5 log n): E/n^1.5 grows", Kind: RatioGrows, Sweep: "bounds/sort-ablation",
			Col: 2, DivPow: 1.5, MinGain: 1.0},
		Claim{ID: "thm-v8/mergesort-normalized-bounded", Source: "Theorem V.8", Primitive: "sort", Metric: Derived,
			Stated: "Theta(n^1.5): E/n^1.5 bounded", Kind: ValueBounded, Sweep: "bounds/sort-ablation",
			Col: 1, DivPow: 1.5, Lo: 10, Hi: 80},
		Claim{ID: "fig2/bitonic-wins-depth", Source: "Fig. 2 / Lemma V.4", Primitive: "sort-bitonic", Metric: Depth,
			Stated: "O(log^2 n) < mergesort's O(log^3 n) at measured sizes", Kind: Dominates, Sweep: "bounds/sort-ablation",
			Col: 5, Den: 4},
		Claim{ID: "fig2/sort-energy-crossover", Source: "Fig. 2 / Sec. V-C", Primitive: "sort", Metric: Derived,
			Stated: "mergesort overtakes bitonic only beyond the measured range", Kind: CrossoverBeyond, Sweep: "bounds/sort-ablation",
			Col: 1, Den: 2},
		Claim{ID: "sec-ii-b/mesh-depth-polynomial", Source: "Sec. II-B", Primitive: "sort-mesh", Metric: Depth,
			Stated: "Theta(sqrt n log n): polynomial, not polylog", Kind: Polynomial, Sweep: "bounds/sort-ablation",
			Col: 6},
		// Large-n tail: the mesh sort's smaller constants keep it ahead of
		// the energy-optimal mergesort through the measured range (now up
		// to n = 65 536); the mergesort's slower Theta(n^1.5) growth wins
		// beyond the fitted crossover (~2^19 by the full-sweep fits).
		Claim{ID: "fig2/mesh-vs-mergesort-crossover", Source: "Fig. 2 / Sec. II-B", Primitive: "sort", Metric: Derived,
			Stated: "mergesort overtakes the mesh sort only beyond the measured range", Kind: CrossoverBeyond, Sweep: "bounds/sort-ablation",
			Col: 1, Den: 3},
	)

	// --- Large-n sorting-network tail (bounds/sortnet-large): the same
	// Lemma V.4 / Sec. II-B statements re-checked where they bite hardest,
	// on the dedicated sweep that reaches n = 2^20 (the counting-only fast
	// path makes those points affordable; see the sweep's comment). Kept
	// separate from the bounds/sort-ablation claims so the small-n rows the
	// crossover claims were calibrated on stay untouched.
	claims = append(claims,
		Claim{ID: "lemma-v4/bitonic-log-penalty-large", Source: "Lemma V.4 / Fig. 2", Primitive: "sort-bitonic", Metric: Derived,
			Stated: "Theta(n^1.5 log n): E/n^1.5 still growing at n=2^20", Kind: RatioGrows, Sweep: "bounds/sortnet-large",
			Col: 1, DivPow: 1.5, MinGain: 0.5},
		Claim{ID: "sec-ii-b/mesh-energy-log-large", Source: "Sec. II-B", Primitive: "sort-mesh", Metric: Derived,
			Stated: "Theta(n^1.5 log n): E/n^1.5 still growing at n=2^20", Kind: RatioGrows, Sweep: "bounds/sortnet-large",
			Col: 2, DivPow: 1.5, MinGain: 0.5},
		Claim{ID: "lemma-v4/bitonic-depth-polylog-large", Source: "Lemma V.4", Primitive: "sort-bitonic", Metric: Depth,
			Stated: "O(log^2 n): polylog through n=2^20", Kind: Polylog, Sweep: "bounds/sortnet-large",
			Col: 3},
		Claim{ID: "sec-ii-b/mesh-depth-polynomial-large", Source: "Sec. II-B", Primitive: "sort-mesh", Metric: Depth,
			Stated: "Theta(sqrt n log n): polynomial through n=2^20", Kind: Polynomial, Sweep: "bounds/sortnet-large",
			Col: 4},
		Claim{ID: "fig2/bitonic-wins-depth-large", Source: "Fig. 2 / Lemma V.4", Primitive: "sort-bitonic", Metric: Depth,
			Stated: "O(log^2 n) beats the mesh's polynomial depth at n=2^20", Kind: Dominates, Sweep: "bounds/sortnet-large",
			Col: 3, Den: 4},
	)

	// --- Lemma V.1 / Cor. V.2: the permutation lower bound and sorting's
	// energy-optimality.
	claims = append(claims,
		Claim{ID: "lemma-v1/reversal-energy-floor", Source: "Lemma V.1", Primitive: "permute", Metric: Energy,
			Stated: "Omega(n^1.5): reversal costs ~1.0·n^1.5", Kind: ValueBounded, Sweep: "bounds/lowerbound",
			Col: 1, Lo: 0.9, Hi: 1.1},
		Claim{ID: "cor-v2/sort-within-constant-of-permute", Source: "Cor. V.2", Primitive: "sort", Metric: Derived,
			Stated: "sorting energy-optimal up to constants", Kind: ValueBounded, Sweep: "bounds/lowerbound",
			Col: 2, Lo: 5, Hi: 60},
	)

	// --- Component lemmas V.5–V.7 (energy upper bounds).
	claims = append(claims,
		Claim{ID: "lemma-v5/all-pairs-energy", Source: "Lemma V.5", Primitive: "all-pairs-sort", Metric: Energy,
			Stated: "O(n^2.5)", Kind: ExponentAtMost, Sweep: "bounds/all-pairs", Col: 1, Want: 2.5, Tol: 0.1},
		Claim{ID: "lemma-v6/rank-select-energy", Source: "Lemma V.6", Primitive: "rank-select", Metric: Energy,
			Stated: "O(n^1.25)", Kind: ExponentAtMost, Sweep: "bounds/rank-select", Col: 1, Want: 1.25, Tol: 0.1},
		Claim{ID: "lemma-v7/merge-energy", Source: "Lemma V.7", Primitive: "merge", Metric: Energy,
			Stated: "O(n^1.5)", Kind: ExponentAtMost, Sweep: "bounds/merge", Col: 1, Want: 1.5, Tol: 0.1},
	)

	// --- Theorem VI.3: selection beats sorting by a growing polynomial gap.
	claims = append(claims,
		Claim{ID: "thm-vi3/select-wins-energy", Source: "Theorem VI.3 / Sec. VI", Primitive: "selection", Metric: Energy,
			Stated: "Theta(n) < sorting's Theta(n^1.5)", Kind: Dominates, Sweep: "bounds/selection-vs-sort",
			Col: 1, Den: 2},
		Claim{ID: "thm-vi3/sort-select-gap-grows", Source: "Sec. VI", Primitive: "selection", Metric: Derived,
			Stated: "~sqrt(n) separation grows", Kind: RatioGrows, Sweep: "bounds/selection-vs-sort",
			Col: 2, Den: 1, MinGain: 3},
	)

	// --- Sec. II-A: treefix sums at Θ(n) energy on any tree shape.
	claims = append(claims,
		Claim{ID: "sec-ii-a/treefix-path-linear", Source: "Sec. II-A vs [38]", Primitive: "treefix", Metric: Energy,
			Stated: "Theta(n) on a path", Kind: Exponent, Sweep: "bounds/treefix", Col: 1, Want: 1.0, Tol: 0.15},
		Claim{ID: "sec-ii-a/treefix-balanced-linear", Source: "Sec. II-A vs [38]", Primitive: "treefix", Metric: Energy,
			Stated: "Theta(n) on a balanced tree", Kind: Exponent, Sweep: "bounds/treefix", Col: 2, Want: 1.0, Tol: 0.15},
		// Large-n tail: the Euler tour doubles the scanned elements, so the
		// [38]-style binary-tree scan baseline stays ahead on constants
		// through the measured range (up to 2^20) while the treefix's
		// Theta(n) growth closes the Theta(log n) gap; the fitted power
		// laws cross only beyond the sweep (~2^24-2^25 by the full fits;
		// EXPERIMENTS.md tracks the measured ratio).
		Claim{ID: "sec-ii-a/treefix-vs-tree-scan-crossover", Source: "Sec. II-A vs [38]", Primitive: "treefix", Metric: Derived,
			Stated: "treefix overtakes the tree-scan baseline only beyond the measured range", Kind: CrossoverBeyond, Sweep: "bounds/treefix",
			Col: 1, Den: 3},
	)

	// --- Theorem VIII.2: the direct SpMV beats the PRAM simulation on
	// depth and distance at every measured size.
	claims = append(claims,
		Claim{ID: "thm-viii2/direct-spmv-wins-depth", Source: "Theorem VIII.2", Primitive: "spmv", Metric: Depth,
			Stated: "log-factor depth win over PRAM route", Kind: Dominates, Sweep: "bounds/spmv-vs-pram",
			Col: 1, Den: 2},
		Claim{ID: "thm-viii2/direct-spmv-wins-distance", Source: "Theorem VIII.2", Primitive: "spmv", Metric: Distance,
			Stated: "log-factor distance win over PRAM route", Kind: Dominates, Sweep: "bounds/spmv-vs-pram",
			Col: 3, Den: 4},
	)

	// --- Auto-tuner headline (internal/tuner, bounds/tuned-*): the
	// EDP-minimal mapping found by exhaustive search over the discrete
	// layout/schedule space strictly beats the row-major default
	// (mapping.Default()) at every measured size, and the fitted trends
	// keep it ahead. SpMV is deliberately absent: there the row-major
	// track *is* EDP-minimal at measured sizes (spatialtune shows a 1.00x
	// gain), so no dominance claim would hold.
	claims = append(claims,
		Claim{ID: "tuner/scan-tuned-dominates-baseline", Source: "internal/tuner / Sec. IV-C", Primitive: "scan", Metric: Derived,
			Stated: "tuned mapping (Z-order quadtree) beats the row-major default's EDP everywhere", Kind: Dominates, Sweep: "bounds/tuned-scan",
			Col: 1, Den: 2},
		Claim{ID: "tuner/reduce-tuned-dominates-baseline", Source: "internal/tuner / Lemma IV.1", Primitive: "reduce", Metric: Derived,
			Stated: "tuned mapping (curve track, wide arity) beats the row-major binary tree's EDP everywhere", Kind: Dominates, Sweep: "bounds/tuned-reduce",
			Col: 1, Den: 2},
		Claim{ID: "tuner/sort-tuned-dominates-baseline", Source: "internal/tuner / Lemma V.4", Primitive: "sort", Metric: Derived,
			Stated: "tuned mapping (Z-order bitonic wiring) beats the row-major default's EDP everywhere", Kind: Dominates, Sweep: "bounds/tuned-sort",
			Col: 1, Den: 2},
	)

	// --- Graph-analytics suite (internal/graph, bounds/graph-*): composed
	// bounds. Row shape {n, meshE, meshD, rmatE, rmatD}; the mesh family
	// has diameter Θ(√n), the power-law family O(log n) whp. Energy fits
	// approach their exponents from below (additive Θ(m)-class scan terms),
	// so the O(·) compositions use ExponentAtMost; BFS's mesh energy is a
	// genuine Θ(n^1.5) — both the per-level scans (Θ(m·D)) and the one-shot
	// scatter (Θ(m^1.5)) land on the same exponent there.
	claims = append(claims,
		Claim{ID: "graph/bfs/energy-mesh", Source: "internal/graph / Lemma IV.3 composed", Primitive: "bfs", Metric: Energy,
			Stated: "Theta(n^1.5) on the mesh (Θ(m·D + m^1.5), D = Θ(√n))", Kind: Exponent, Sweep: "bounds/graph-bfs",
			Col: 1, Want: 1.5, Tol: 0.2},
		Claim{ID: "graph/bfs/energy-powerlaw", Source: "internal/graph / Lemma IV.3 composed", Primitive: "bfs", Metric: Energy,
			Stated: "O(m^1.5) on the power-law family (D = O(log n))", Kind: ExponentAtMost, Sweep: "bounds/graph-bfs",
			Col: 3, Want: 1.5, Tol: 0.1},
		Claim{ID: "graph/bfs/depth-mesh-polynomial", Source: "internal/graph", Primitive: "bfs", Metric: Depth,
			Stated: "Theta(D log m) = Θ(√n log n) on the mesh: level-synchrony pays the diameter", Kind: Polynomial,
			Sweep: "bounds/graph-bfs", Col: 2},
		Claim{ID: "graph/bfs/depth-powerlaw-polylog", Source: "internal/graph", Primitive: "bfs", Metric: Depth,
			Stated: "O(log^2 n) on the power-law family: O(log n) levels of O(log m)-depth scans", Kind: Polylog,
			Sweep: "bounds/graph-bfs", Col: 4},
		Claim{ID: "graph/bfs/depth-diameter-separation", Source: "internal/graph", Primitive: "bfs", Metric: Derived,
			Stated: "mesh/power-law depth ratio grows ~√n/log n: diameter dominates BFS depth", Kind: RatioGrows,
			Sweep: "bounds/graph-bfs", Col: 2, Den: 4, MinGain: 2},
		Claim{ID: "graph/cc/energy-mesh", Source: "internal/graph / Thm V.8 + Sec. II-A composed", Primitive: "cc", Metric: Energy,
			Stated: "O(m^1.5 log n): O(log n) hooking rounds of sort + scan + treefix", Kind: ExponentAtMost,
			Sweep: "bounds/graph-cc", Col: 1, Want: 1.75, Tol: 0.1},
		Claim{ID: "graph/cc/energy-powerlaw", Source: "internal/graph / Thm V.8 + Sec. II-A composed", Primitive: "cc", Metric: Energy,
			Stated: "O(m^1.5 log n): O(log n) hooking rounds of sort + scan + treefix", Kind: ExponentAtMost,
			Sweep: "bounds/graph-cc", Col: 3, Want: 1.75, Tol: 0.1},
		Claim{ID: "graph/cc/depth-polylog", Source: "internal/graph", Primitive: "cc", Metric: Depth,
			Stated: "O(log^3 n) even at Θ(√n) diameter: min-hooking + treefix contraction beat level-synchrony", Kind: Polylog,
			Sweep: "bounds/graph-cc", Col: 2},
		Claim{ID: "graph/pagerank/energy", Source: "internal/graph / Thm VIII.2 composed", Primitive: "pagerank", Metric: Energy,
			Stated: "O(K·m^1.5) for K power iterations of the direct SpMV", Kind: ExponentAtMost,
			Sweep: "bounds/graph-pagerank", Col: 3, Want: 1.5, Tol: 0.1},
		Claim{ID: "graph/pagerank/depth-polylog", Source: "internal/graph / Thm VIII.2 composed", Primitive: "pagerank", Metric: Depth,
			Stated: "O(K·log^3 n): iterations chain, each SpMV is polylog", Kind: Polylog,
			Sweep: "bounds/graph-pagerank", Col: 4},
		Claim{ID: "graph/triangles/energy", Source: "internal/graph / Lemma V.4 composed", Primitive: "triangles", Metric: Energy,
			Stated: "O(S^1.5 log S) for S = edges + wedges (Θ(m) on the bounded-degree mesh)", Kind: ExponentAtMost,
			Sweep: "bounds/graph-triangles", Col: 1, Want: 1.6, Tol: 0.15},
		Claim{ID: "graph/triangles/depth-polylog", Source: "internal/graph / Lemma V.4 composed", Primitive: "triangles", Metric: Depth,
			Stated: "O(log^2 S): one bitonic pass over the edge+wedge records", Kind: Polylog,
			Sweep: "bounds/graph-triangles", Col: 2},
	)

	// --- Finite-hardware backends (internal/machine backends,
	// bounds/backend-*): the Table I sort refolded onto a fixed 8×8 fabric
	// whose fold block scales with the layout side (the layout fills exactly
	// one pane; see internal/experiments/backend.go for the row shape and
	// the per-message bounds d_mesh <= d_ideal <= block·(d_mesh + 2)).
	claims = append(claims,
		Claim{ID: "backend/mesh-energy-contracts", Source: "internal/machine backends", Primitive: "sort", Metric: Energy,
			Stated: "folding only contracts distances: E_mesh < E_ideal at every n", Kind: Dominates, Sweep: "bounds/backend-sort",
			Col: 2, Den: 1},
		Claim{ID: "backend/fold-inflation-bounded", Source: "internal/machine backends", Primitive: "sort", Metric: Derived,
			Stated: "E_ideal <= f·(E_mesh + 2·messages) when the layout fits one pane (f = fold block)", Kind: ValueBounded, Sweep: "bounds/backend-sort",
			Col: 4, Lo: 0.01, Hi: 1.0},
		Claim{ID: "backend/torus-beats-mesh", Source: "internal/machine backends", Primitive: "sort", Metric: Energy,
			Stated: "wraparound never lengthens a route: the torus wins at every measured n", Kind: Dominates, Sweep: "bounds/backend-sort",
			Col: 3, Den: 2},
		Claim{ID: "backend/answers-invariant", Source: "internal/machine backends", Primitive: "sort", Metric: Derived,
			// The match column is exactly 1.0 when the FNV hashes of all
			// three fabrics' outputs agree and 0.0 otherwise; the band is
			// only open because ValueBounded requires Lo < Hi.
			Stated: "backends change costs, never results: sorted outputs bit-identical on every fabric", Kind: ValueBounded, Sweep: "bounds/backend-sort",
			Col: 5, Lo: 0.999, Hi: 1.001},
		Claim{ID: "backend/folding-concentrates-load", Source: "internal/machine backends", Primitive: "sort", Metric: Derived,
			Stated: "a fixed fabric concentrates load: max-link inflation grows with n", Kind: RatioGrows, Sweep: "bounds/backend-congestion",
			Col: 5, MinGain: 2},
	)

	return claims
}

// ByID returns the registered claim with the given ID.
func ByID(id string) (Claim, bool) {
	for _, c := range Registry() {
		if c.ID == id {
			return c, true
		}
	}
	return Claim{}, false
}
