package bounds

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// syntheticRegistry registers closed-form sweeps (no simulation) so the
// engine's plumbing — sweep dedup, row routing, verdict ordering, failure
// propagation — is testable in microseconds.
func syntheticRegistry() *harness.Registry {
	reg := &harness.Registry{}
	series := func(f func(n float64) float64) harness.PointFunc {
		return func(i int, env *harness.Env) []harness.Row {
			n := float64(int(256) << uint(2*i))
			return harness.One(n, f(n))
		}
	}
	reg.MustRegister(harness.SweepSpec{Name: "syn/linear", Points: 4,
		Point: series(func(n float64) float64 { return 7 * n })})
	reg.MustRegister(harness.SweepSpec{Name: "syn/quadratic", Points: 4,
		Point: series(func(n float64) float64 { return n * n })})
	return reg
}

func TestCheckPassAndFail(t *testing.T) {
	claims := []Claim{
		{ID: "syn/linear-is-linear", Kind: Exponent, Sweep: "syn/linear", Col: 1, Want: 1.0, Tol: 0.1},
		// The synthetic bad sweep: n^2 data against a Θ(n) claim must fail.
		{ID: "syn/quadratic-is-not-linear", Kind: Exponent, Sweep: "syn/quadratic", Col: 1, Want: 1.0, Tol: 0.1},
		// Same sweep referenced twice: runs once, evaluated per claim.
		{ID: "syn/linear-again", Kind: ExponentAtMost, Sweep: "syn/linear", Col: 1, Want: 1.0, Tol: 0.1},
	}
	rep, err := Check(harness.New(1), syntheticRegistry(), claims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdicts) != len(claims) {
		t.Fatalf("got %d verdicts, want %d", len(rep.Verdicts), len(claims))
	}
	for i, c := range claims {
		if rep.Verdicts[i].ID != c.ID {
			t.Errorf("verdict %d is %s, want claim order preserved (%s)", i, rep.Verdicts[i].ID, c.ID)
		}
	}
	if rep.Passed() || rep.Failures() != 1 {
		t.Errorf("Failures() = %d, want exactly the quadratic claim to fail", rep.Failures())
	}
	if v := rep.Verdicts[1]; v.Pass || math.Abs(v.Measured-2.0) > 1e-9 {
		t.Errorf("quadratic claim verdict: %+v", v)
	}
	if !rep.Verdicts[0].Pass || !rep.Verdicts[2].Pass {
		t.Errorf("linear claims failed: %+v, %+v", rep.Verdicts[0], rep.Verdicts[2])
	}
}

func TestCheckUnknownSweepIsError(t *testing.T) {
	claims := []Claim{{ID: "syn/ghost", Kind: Exponent, Sweep: "syn/no-such", Col: 1, Want: 1, Tol: 0.1}}
	_, err := Check(harness.New(1), syntheticRegistry(), claims, Options{})
	if err == nil || !strings.Contains(err.Error(), "syn/no-such") {
		t.Fatalf("unknown sweep: err = %v, want wiring error naming the sweep", err)
	}
}

func TestCheckReportsSweepStats(t *testing.T) {
	claims := []Claim{
		{ID: "syn/b", Kind: Exponent, Sweep: "syn/quadratic", Col: 1, Want: 2.0, Tol: 0.1},
		{ID: "syn/a", Kind: Exponent, Sweep: "syn/linear", Col: 1, Want: 1.0, Tol: 0.1},
		{ID: "syn/a2", Kind: ExponentAtMost, Sweep: "syn/linear", Col: 1, Want: 1.0, Tol: 0.1},
	}
	rep, err := Check(harness.New(1), syntheticRegistry(), claims, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One stat per distinct sweep, sorted by name regardless of claim order.
	if len(rep.Sweeps) != 2 {
		t.Fatalf("got %d sweep stats, want 2: %+v", len(rep.Sweeps), rep.Sweeps)
	}
	if rep.Sweeps[0].Name != "syn/linear" || rep.Sweeps[1].Name != "syn/quadratic" {
		t.Errorf("sweep stats not sorted by name: %+v", rep.Sweeps)
	}
	for _, s := range rep.Sweeps {
		if s.Rows != 4 || s.Skipped != 0 {
			t.Errorf("sweep %s: rows=%d skipped=%d, want 4/0", s.Name, s.Rows, s.Skipped)
		}
	}
	if rep.Skipped() != 0 {
		t.Errorf("Skipped() = %d, want 0", rep.Skipped())
	}
}

func TestCheckDeadlineTruncatesHonestly(t *testing.T) {
	// A sweep whose first point exhausts the budget: the report must show
	// the skipped points and the claim must judge only the produced rows
	// (here: too few to fit, so it fails rather than passing on garbage).
	reg := &harness.Registry{}
	reg.MustRegister(harness.SweepSpec{Name: "syn/slow", Points: 4,
		Point: func(i int, env *harness.Env) []harness.Row {
			time.Sleep(80 * time.Millisecond)
			n := float64(int(256) << uint(2*i))
			return harness.One(n, 7*n)
		}})
	claims := []Claim{{ID: "syn/slow-linear", Kind: Exponent, Sweep: "syn/slow", Col: 1, Want: 1.0, Tol: 0.1}}
	rep, err := Check(harness.New(1, harness.WithWorkers(1)), reg, claims, Options{Deadline: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped() == 0 {
		t.Fatalf("deadline skipped nothing: %+v", rep.Sweeps)
	}
	if got := rep.Sweeps[0].Rows + rep.Sweeps[0].Skipped; got != 4 {
		t.Errorf("rows+skipped = %d, want 4", got)
	}
	if v := rep.Verdicts[0]; v.Points != rep.Sweeps[0].Rows {
		t.Errorf("verdict evaluated %d points, sweep produced %d rows", v.Points, rep.Sweeps[0].Rows)
	}
}

func TestCheckMaxPoints(t *testing.T) {
	claims := []Claim{{ID: "syn/linear-capped", Kind: Exponent, Sweep: "syn/linear", Col: 1, Want: 1.0, Tol: 0.1}}
	rep, err := Check(harness.New(1), syntheticRegistry(), claims, Options{MaxPoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Verdicts[0].Points; got != 2 {
		t.Errorf("capped run evaluated %d points, want 2", got)
	}
	if !rep.Verdicts[0].Pass {
		t.Errorf("capped linear claim failed: %+v", rep.Verdicts[0])
	}
}
