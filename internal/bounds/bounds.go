// Package bounds turns the paper's Θ/O bounds into an executable,
// machine-checked registry. Each Claim pins one quantitative statement —
// a Table I scaling exponent, a lemma's bounded constant, a growing
// log-factor separation, or a who-wins ordering against a baseline — to a
// named measurement sweep (internal/experiments.BoundSweeps) and a
// tolerance. The conformance engine (Check) runs the sweeps through
// internal/harness, fits the measurements with internal/analysis, and
// produces structured pass/fail verdicts, so "the reproduction still
// matches the paper" is a single exit code instead of prose.
package bounds

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/harness"
)

// Metric names the Spatial Computer Model cost a claim constrains.
type Metric string

const (
	Energy   Metric = "energy"
	Depth    Metric = "depth"
	Distance Metric = "distance"
	// Derived marks claims about ratios, separations or orderings rather
	// than a single raw metric column.
	Derived Metric = "derived"
)

// Kind selects how a claim is evaluated against its sweep.
type Kind string

const (
	// Exponent fits a power law over the full sweep and requires the slope
	// to be within Tol of Want.
	Exponent Kind = "exponent"
	// TailExponent uses the slope between the last two points — the honest
	// estimator for metrics with large additive lower-order terms (the
	// paper's distance bounds).
	TailExponent Kind = "tail-exponent"
	// ExponentAtMost requires the fitted slope to be at most Want+Tol; the
	// evaluation of an O(·) upper bound.
	ExponentAtMost Kind = "exponent-at-most"
	// Polylog requires the series to classify as polylogarithmic growth
	// (declining local exponents), the discriminator between Θ(log^c n)
	// and Θ(n^ε) that naive degree fits get wrong on short sweeps.
	Polylog Kind = "polylog"
	// Polynomial requires the series to classify as polynomial growth —
	// used to pin baselines the paper proves are *not* polylog.
	Polynomial Kind = "polynomial"
	// ValueBounded requires the claim's value (see Claim.Col/Den/DivPow)
	// to lie in [Lo, Hi] at every sweep point — "within a constant of the
	// bound".
	ValueBounded Kind = "value-bounded"
	// RatioGrows requires the value to increase from the first to the last
	// point by at least MinGain — the signature of a Θ(log n) separation.
	RatioGrows Kind = "ratio-grows"
	// Dominates requires Col < Den at every sweep point — a who-wins
	// ordering against a baseline — and, when the fitted power laws
	// identify a crossover, that the asymptotic winner is also Col: a
	// measured-range lead the fits say the baseline reclaims is transient,
	// not the claimed ordering.
	Dominates Kind = "dominates"
	// CrossoverBeyond requires the Col series to stay above the Den series
	// in the measured range while the fitted power laws name Col the
	// winning side beyond their crossover, and that crossover to lie
	// beyond the largest measured n — the paper's "asymptotic win,
	// constants favor the baseline at small n" shape. The winner check
	// means a claim wired with the two series swapped fails loudly
	// instead of passing on a mirrored crossover.
	CrossoverBeyond Kind = "crossover-beyond"
)

// Claim is one machine-checkable bound. Col (and Den, when used) index
// the sweep's row cells; column 0 is always the problem size n.
type Claim struct {
	// ID is the stable identifier, e.g. "table1/scan/energy".
	ID string
	// Source cites the paper artifact: "Table I", "Lemma V.4", …
	Source string
	// Primitive is the algorithm under test ("scan", "sort", …).
	Primitive string
	// Metric is the cost dimension the claim constrains.
	Metric Metric
	// Stated is the paper's growth form as prose: "Θ(n)", "O(log³ n)".
	Stated string
	// Kind selects the evaluation.
	Kind Kind
	// Sweep names the registered measurement sweep the claim replays.
	Sweep string
	// Col is the value column. Den, when non-zero, divides it (ratios and
	// dominance orderings). DivPow, when non-zero, additionally divides by
	// n^DivPow (normalized energies such as E/n^1.5).
	Col    int
	Den    int
	DivPow float64
	// Want/Tol parameterize the exponent kinds; Lo/Hi bound ValueBounded;
	// MinGain is RatioGrows' required first-to-last increase.
	Want    float64
	Tol     float64
	Lo, Hi  float64
	MinGain float64
}

// Verdict is the structured outcome of evaluating one claim.
type Verdict struct {
	ID        string  `json:"id"`
	Source    string  `json:"source"`
	Primitive string  `json:"primitive"`
	Metric    Metric  `json:"metric"`
	Stated    string  `json:"stated"`
	Kind      Kind    `json:"kind"`
	Sweep     string  `json:"sweep"`
	Points    int     `json:"points"`
	Measured  float64 `json:"-"` // primary measured quantity (kind-dependent)
	R2        float64 `json:"-"` // log-log fit quality where a fit was made
	Pass      bool    `json:"pass"`
	Detail    string  `json:"detail"`
}

// value extracts the claim's per-point value series from sweep rows.
func (c Claim) value(rows []harness.Row) []analysis.Point {
	pts := make([]analysis.Point, 0, len(rows))
	for _, r := range rows {
		n := cellFloat(r[0])
		v := cellFloat(r[c.Col])
		if c.Den != 0 {
			d := cellFloat(r[c.Den])
			if d == 0 {
				v = math.NaN()
			} else {
				v /= d
			}
		}
		if c.DivPow != 0 {
			v /= math.Pow(n, c.DivPow)
		}
		pts = append(pts, analysis.Point{N: n, Cost: v})
	}
	return pts
}

// Eval judges the claim against its sweep's rows.
func (c Claim) Eval(rows []harness.Row) Verdict {
	v := Verdict{
		ID: c.ID, Source: c.Source, Primitive: c.Primitive, Metric: c.Metric,
		Stated: c.Stated, Kind: c.Kind, Sweep: c.Sweep, Points: len(rows),
		Measured: math.NaN(), R2: math.NaN(),
	}
	if len(rows) == 0 {
		v.Detail = "no sweep rows"
		return v
	}
	pts := c.value(rows)
	switch c.Kind {
	case Exponent, ExponentAtMost:
		fit := analysis.FitPowerLaw(pts)
		v.Measured, v.R2 = fit.Exponent, fit.R2
		if !fit.Valid() {
			v.Detail = fmt.Sprintf("no valid fit (%d usable points)", fit.Points)
			return v
		}
		if c.Kind == Exponent {
			v.Pass = math.Abs(fit.Exponent-c.Want) <= c.Tol
			v.Detail = fmt.Sprintf("fitted exponent %.3f vs %s (want %.2f±%.2f, R²=%.4f)",
				fit.Exponent, c.Stated, c.Want, c.Tol, fit.R2)
		} else {
			v.Pass = fit.Exponent <= c.Want+c.Tol
			v.Detail = fmt.Sprintf("fitted exponent %.3f vs %s (want ≤%.2f+%.2f, R²=%.4f)",
				fit.Exponent, c.Stated, c.Want, c.Tol, fit.R2)
		}
	case TailExponent:
		v.Measured = analysis.TailExponent(pts)
		if math.IsNaN(v.Measured) {
			v.Detail = "tail exponent undefined"
			return v
		}
		v.Pass = math.Abs(v.Measured-c.Want) <= c.Tol
		v.Detail = fmt.Sprintf("tail exponent %.3f vs %s (want %.2f±%.2f)",
			v.Measured, c.Stated, c.Want, c.Tol)
	case Polylog, Polynomial:
		class := analysis.ClassifyGrowth(pts)
		want := analysis.GrowthPolylog
		if c.Kind == Polynomial {
			want = analysis.GrowthPolynomial
		}
		v.Measured = analysis.FitLogExponent(pts) // reported, not gated: degree fits overshoot on short sweeps
		v.Pass = class == want
		v.Detail = fmt.Sprintf("growth classified %s, want %s (local exponents %s; fitted log-degree %.2f)",
			class, want, fmtSeries(analysis.LocalExponents(pts)), v.Measured)
	case ValueBounded:
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range pts {
			lo, hi = math.Min(lo, p.Cost), math.Max(hi, p.Cost)
		}
		v.Measured = hi
		v.Pass = !math.IsNaN(lo) && !math.IsNaN(hi) && lo >= c.Lo && hi <= c.Hi
		v.Detail = fmt.Sprintf("values in [%.3f, %.3f], want within [%.2f, %.2f]", lo, hi, c.Lo, c.Hi)
	case RatioGrows:
		first, last := pts[0].Cost, pts[len(pts)-1].Cost
		v.Measured = last - first
		v.Pass = !math.IsNaN(v.Measured) && v.Measured >= c.MinGain
		v.Detail = fmt.Sprintf("ratio grew %.3f → %.3f (gain %.3f, want ≥%.2f)", first, last, v.Measured, c.MinGain)
	case Dominates:
		worst := math.Inf(-1)
		for _, p := range pts {
			worst = math.Max(worst, p.Cost) // Cost = Col/Den; dominance means every ratio < 1
		}
		v.Measured = worst
		// Durability: when the fits identify a crossover, its winning side
		// must be the dominating series, not the baseline — a measured lead
		// the trends reverse is not the claimed ordering.
		cross, winner, ok := analysis.Crossover(columnPoints(rows, c.Col), columnPoints(rows, c.Den))
		durable := !ok || winner == analysis.SideA
		v.Pass = !math.IsNaN(worst) && worst < 1 && durable
		v.Detail = fmt.Sprintf("max ratio vs baseline %.3f, want <1 at every point", worst)
		if ok && winner == analysis.SideB {
			v.Detail += fmt.Sprintf("; fitted trends favor the baseline beyond n≈%.3g (dominance transient)", cross)
		}
	case CrossoverBeyond:
		a := columnPoints(rows, c.Col)
		b := columnPoints(rows, c.Den)
		nMax := 0.0
		above := true
		for i := range a {
			nMax = math.Max(nMax, a[i].N)
			if a[i].Cost <= b[i].Cost {
				above = false
			}
		}
		fa, fb := analysis.FitPowerLaw(a), analysis.FitPowerLaw(b)
		cross, winner, ok := analysis.Crossover(a, b)
		v.Measured = cross
		v.Pass = above && ok && winner == analysis.SideA && cross > nMax
		v.Detail = fmt.Sprintf("slopes %.3f vs %.3f, baseline ahead through n=%.0f, fitted crossover n≈%.3g won by %s (want beyond sweep, won by the claimed side)",
			fa.Exponent, fb.Exponent, nMax, cross, crossWinnerName(winner))
	default:
		v.Detail = fmt.Sprintf("unknown claim kind %q", c.Kind)
	}
	return v
}

// crossWinnerName renders a Crossover side in claim terms: the claim's
// own column vs its baseline column.
func crossWinnerName(s analysis.Side) string {
	switch s {
	case analysis.SideA:
		return "claimed side"
	case analysis.SideB:
		return "baseline"
	}
	return "neither (parallel fits)"
}

func columnPoints(rows []harness.Row, col int) []analysis.Point {
	pts := make([]analysis.Point, len(rows))
	for i, r := range rows {
		pts[i] = analysis.Point{N: cellFloat(r[0]), Cost: cellFloat(r[col])}
	}
	return pts
}

func cellFloat(v any) float64 {
	switch x := v.(type) {
	case int:
		return float64(x)
	case int64:
		return float64(x)
	case float64:
		return x
	}
	panic(fmt.Sprintf("bounds: non-numeric sweep cell %T", v))
}

func fmtSeries(vals []float64) string {
	s := "["
	for i, x := range vals {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", x)
	}
	return s + "]"
}
