package bounds

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/harness"
)

// Options configures a conformance run.
type Options struct {
	// MaxPoints caps every sweep's point count (0 = no cap). The quick/full
	// split is chosen when building the sweep registry
	// (experiments.BoundSweeps); this cap composes with it. Per-point
	// progress reporting comes from harness.WithProgress on the runner.
	MaxPoints int
	// Deadline is a per-sweep wall-clock budget (0 = none): points of a
	// sweep that have not started when its budget expires are skipped and
	// reported in the sweep's stats (see harness.WithDeadline for the
	// exact semantics). Claims then evaluate on the points that did run —
	// a safety valve for scheduled full runs, where a too-slow machine
	// should produce a truncated-but-honest report instead of hanging.
	Deadline time.Duration
}

// SweepStat records how one named sweep ran: how many rows it produced
// and how many points its deadline skipped. Emitted into the JSON report
// so scheduled-run artifacts are self-describing about their coverage.
type SweepStat struct {
	Name    string `json:"name"`
	Rows    int    `json:"rows"`
	Skipped int    `json:"skipped,omitempty"`
}

// Report is the structured outcome of one conformance run.
type Report struct {
	Verdicts []Verdict   `json:"verdicts"`
	Sweeps   []SweepStat `json:"sweeps"`
}

// Failures counts failed claims.
func (r Report) Failures() int {
	n := 0
	for _, v := range r.Verdicts {
		if !v.Pass {
			n++
		}
	}
	return n
}

// Passed reports whether every claim held.
func (r Report) Passed() bool { return r.Failures() == 0 }

// Skipped counts sweep points dropped by the per-sweep deadline across
// the whole run.
func (r Report) Skipped() int {
	n := 0
	for _, s := range r.Sweeps {
		n += s.Skipped
	}
	return n
}

// Check runs every claim's sweep through the runner and evaluates the
// claims against the measurements. Distinct sweeps are enqueued up front
// so they overlap across the runner's workers; each sweep runs once no
// matter how many claims read it. An unknown sweep name is a wiring error,
// not a failed claim.
func Check(r *harness.Runner, reg *harness.Registry, claims []Claim, opt Options) (Report, error) {
	var runOpts []harness.RunOption
	if opt.MaxPoints > 0 {
		runOpts = append(runOpts, harness.MaxPoints(opt.MaxPoints))
	}
	if opt.Deadline > 0 {
		runOpts = append(runOpts, harness.Deadline(opt.Deadline))
	}

	// Enqueue each distinct sweep once, in claim order.
	handles := make(map[string]*harness.Sweep)
	for _, c := range claims {
		if _, seen := handles[c.Sweep]; seen {
			continue
		}
		s, err := reg.Go(r, c.Sweep, runOpts...)
		if err != nil {
			return Report{}, fmt.Errorf("bounds: claim %s: %w", c.ID, err)
		}
		handles[c.Sweep] = s
	}

	rowsBySweep := make(map[string][]harness.Row, len(handles))
	rep := Report{Sweeps: make([]SweepStat, 0, len(handles))}
	for name, s := range handles {
		rows := s.Rows()
		rowsBySweep[name] = rows
		rep.Sweeps = append(rep.Sweeps, SweepStat{Name: name, Rows: len(rows), Skipped: s.Skipped()})
	}
	sort.Slice(rep.Sweeps, func(i, j int) bool { return rep.Sweeps[i].Name < rep.Sweeps[j].Name })

	rep.Verdicts = make([]Verdict, 0, len(claims))
	for _, c := range claims {
		rep.Verdicts = append(rep.Verdicts, c.Eval(rowsBySweep[c.Sweep]))
	}
	return rep, nil
}
