package bounds

import (
	"fmt"

	"repro/internal/harness"
)

// Options configures a conformance run.
type Options struct {
	// MaxPoints caps every sweep's point count (0 = no cap). The quick/full
	// split is chosen when building the sweep registry
	// (experiments.BoundSweeps); this cap composes with it. Per-point
	// progress reporting comes from harness.WithProgress on the runner.
	MaxPoints int
}

// Report is the structured outcome of one conformance run.
type Report struct {
	Verdicts []Verdict `json:"verdicts"`
}

// Failures counts failed claims.
func (r Report) Failures() int {
	n := 0
	for _, v := range r.Verdicts {
		if !v.Pass {
			n++
		}
	}
	return n
}

// Passed reports whether every claim held.
func (r Report) Passed() bool { return r.Failures() == 0 }

// Check runs every claim's sweep through the runner and evaluates the
// claims against the measurements. Distinct sweeps are enqueued up front
// so they overlap across the runner's workers; each sweep runs once no
// matter how many claims read it. An unknown sweep name is a wiring error,
// not a failed claim.
func Check(r *harness.Runner, reg *harness.Registry, claims []Claim, opt Options) (Report, error) {
	var runOpts []harness.RunOption
	if opt.MaxPoints > 0 {
		runOpts = append(runOpts, harness.MaxPoints(opt.MaxPoints))
	}

	// Enqueue each distinct sweep once, in claim order.
	handles := make(map[string]*harness.Sweep)
	for _, c := range claims {
		if _, seen := handles[c.Sweep]; seen {
			continue
		}
		s, err := reg.Go(r, c.Sweep, runOpts...)
		if err != nil {
			return Report{}, fmt.Errorf("bounds: claim %s: %w", c.ID, err)
		}
		handles[c.Sweep] = s
	}

	rowsBySweep := make(map[string][]harness.Row, len(handles))
	for name, s := range handles {
		rowsBySweep[name] = s.Rows()
	}

	rep := Report{Verdicts: make([]Verdict, 0, len(claims))}
	for _, c := range claims {
		rep.Verdicts = append(rep.Verdicts, c.Eval(rowsBySweep[c.Sweep]))
	}
	return rep, nil
}
