//go:build race

package bounds

// raceEnabled lets the conformance gate detect the race detector (roughly a
// 10x slowdown) and skip; CI runs conformance through `make conformance`
// separately from `go test -race`.
const raceEnabled = true
