package bounds

import (
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/harness"
)

// TestConformanceQuick is the in-tree conformance gate: the full claim
// registry evaluated against the quick sweeps, exactly what
// `boundcheck -quick` and `make conformance QUICK=1` run. It takes a few
// seconds of simulation, so it skips under -short and under the race
// detector (CI gates conformance in its own job).
func TestConformanceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick conformance still runs seconds of simulation")
	}
	if raceEnabled {
		t.Skip("race detector makes the sweeps ~10x slower; CI runs make conformance separately")
	}
	// Mirror boundcheck's defaults: shard-parallel rounds and the batched
	// counting fast path. Rows are byte-identical either way (see
	// internal/machine); the settings only buy wall-clock.
	r := harness.New(1, harness.WithWorkers(runtime.GOMAXPROCS(0)),
		harness.WithShards(runtime.GOMAXPROCS(0)), harness.WithBatchSends())
	rep, err := Check(r, experiments.BoundSweeps(true), Registry(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdicts) == 0 {
		t.Fatal("no verdicts produced")
	}
	for _, v := range rep.Verdicts {
		if !v.Pass {
			t.Errorf("claim %s (%s, %s) failed: %s", v.ID, v.Source, v.Stated, v.Detail)
		}
	}
}
