package bounds

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// RunMeta records the knobs of a conformance run inside its JSON document,
// so artifacts are self-describing: a verdict file always says which sweep
// size, seed and machine configuration produced it.
type RunMeta struct {
	Quick     bool  `json:"quick"`
	Seed      int64 `json:"seed"`
	MaxPoints int   `json:"maxpoints"`
	Shards    int   `json:"shards"`
	Batch     bool  `json:"batch"`
	// Machine is the canonical finite-backend spec ("mesh:8x8:4"), empty
	// for the ideal unbounded model — omitted from the document then, so
	// pre-backend verdict files and default runs stay byte-identical.
	Machine string `json:"machine,omitempty"`
}

// jsonVerdict fixes the float formatting (%.4g strings) so the output is
// byte-deterministic for a given seed — NaN-safe and golden-testable.
type jsonVerdict struct {
	Verdict
	Measured string `json:"measured"`
	R2       string `json:"r2,omitempty"`
}

func fmtMeasure(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	return fmt.Sprintf("%.4g", f)
}

// reportDoc is the on-the-wire conformance document. The field order is a
// compatibility contract: cmd/boundcheck's golden test pins the exact
// bytes, and both the CLI's -json mode and the spatiald result endpoint
// emit it, which is what makes "the server's verdicts match a local run"
// checkable with bytes.Equal.
type reportDoc struct {
	Quick     bool          `json:"quick"`
	Seed      int64         `json:"seed"`
	MaxPoints int           `json:"maxpoints"`
	Shards    int           `json:"shards"`
	Batch     bool          `json:"batch"`
	Machine   string        `json:"machine,omitempty"`
	Claims    int           `json:"claims"`
	Failures  int           `json:"failures"`
	Sweeps    []SweepStat   `json:"sweeps"`
	Verdicts  []jsonVerdict `json:"verdicts"`
}

// MarshalReportJSON renders a conformance report and its run metadata as
// the canonical indented JSON document (trailing newline included).
func MarshalReportJSON(rep Report, meta RunMeta) ([]byte, error) {
	doc := reportDoc{Quick: meta.Quick, Seed: meta.Seed, MaxPoints: meta.MaxPoints,
		Shards: meta.Shards, Batch: meta.Batch, Machine: meta.Machine,
		Claims: len(rep.Verdicts), Failures: rep.Failures(), Sweeps: rep.Sweeps}
	for _, v := range rep.Verdicts {
		jv := jsonVerdict{Verdict: v, Measured: fmtMeasure(v.Measured)}
		if !math.IsNaN(v.R2) {
			jv.R2 = fmtMeasure(v.R2)
		}
		doc.Verdicts = append(doc.Verdicts, jv)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteReportJSON writes the canonical document to w.
func WriteReportJSON(w io.Writer, rep Report, meta RunMeta) error {
	data, err := MarshalReportJSON(rep, meta)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadReportJSON parses a canonical conformance document back into a
// Report and its RunMeta. Verdict.Measured/R2 are rendered as rounded
// strings in the document and are not recovered (they stay NaN-free
// zeros); everything a table renderer or an exit-code gate needs —
// pass/fail, detail, sweep stats — round-trips.
func ReadReportJSON(data []byte) (Report, RunMeta, error) {
	var doc reportDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return Report{}, RunMeta{}, err
	}
	rep := Report{Sweeps: doc.Sweeps, Verdicts: make([]Verdict, len(doc.Verdicts))}
	for i, jv := range doc.Verdicts {
		rep.Verdicts[i] = jv.Verdict
	}
	meta := RunMeta{Quick: doc.Quick, Seed: doc.Seed, MaxPoints: doc.MaxPoints,
		Shards: doc.Shards, Batch: doc.Batch, Machine: doc.Machine}
	return rep, meta, nil
}
