//go:build !race

package bounds

const raceEnabled = false
