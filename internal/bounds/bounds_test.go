package bounds

import (
	"math"
	"strings"
	"testing"

	"repro/internal/harness"
)

// rowsFor builds synthetic sweep rows {n, f1(n), f2(n), ...}.
func rowsFor(ns []float64, fs ...func(n float64) float64) []harness.Row {
	rows := make([]harness.Row, len(ns))
	for i, n := range ns {
		row := harness.Row{n}
		for _, f := range fs {
			row = append(row, f(n))
		}
		rows[i] = row
	}
	return rows
}

var sweepNs = []float64{256, 1024, 4096, 16384}

func TestEvalExponent(t *testing.T) {
	rows := rowsFor(sweepNs, func(n float64) float64 { return 3 * math.Pow(n, 1.5) })
	c := Claim{ID: "t", Kind: Exponent, Col: 1, Want: 1.5, Tol: 0.1}
	if v := c.Eval(rows); !v.Pass || math.Abs(v.Measured-1.5) > 1e-9 || math.Abs(v.R2-1) > 1e-9 {
		t.Errorf("exact power law: %+v", v)
	}
	// A sweep growing as n^2 must fail a Theta(n^1.5) claim: the synthetic
	// bad sweep behind boundcheck's non-zero exit.
	bad := rowsFor(sweepNs, func(n float64) float64 { return n * n })
	if v := c.Eval(bad); v.Pass {
		t.Errorf("n^2 sweep passed a 1.5±0.1 exponent claim: %+v", v)
	}
}

func TestEvalExponentAtMost(t *testing.T) {
	c := Claim{ID: "t", Kind: ExponentAtMost, Col: 1, Want: 1.25, Tol: 0.1}
	under := rowsFor(sweepNs, func(n float64) float64 { return math.Pow(n, 0.6) })
	if v := c.Eval(under); !v.Pass {
		t.Errorf("n^0.6 failed an O(n^1.25) claim: %+v", v)
	}
	over := rowsFor(sweepNs, func(n float64) float64 { return math.Pow(n, 1.5) })
	if v := c.Eval(over); v.Pass {
		t.Errorf("n^1.5 passed an O(n^1.25) claim: %+v", v)
	}
}

func TestEvalTailExponent(t *testing.T) {
	// Additive constant pollutes the head; the tail estimator sees ~0.5.
	rows := rowsFor(sweepNs, func(n float64) float64 { return 5 + math.Sqrt(n) })
	c := Claim{ID: "t", Kind: TailExponent, Col: 1, Want: 0.5, Tol: 0.1}
	if v := c.Eval(rows); !v.Pass {
		t.Errorf("sqrt tail failed: %+v", v)
	}
	lin := rowsFor(sweepNs, func(n float64) float64 { return n })
	if v := c.Eval(lin); v.Pass {
		t.Errorf("linear tail passed a sqrt claim: %+v", v)
	}
}

func TestEvalPolylogAndPolynomial(t *testing.T) {
	logCube := rowsFor(sweepNs, func(n float64) float64 { return math.Pow(math.Log(n), 3) })
	sqrtLog := rowsFor(sweepNs, func(n float64) float64 { return math.Sqrt(n) * math.Log(n) })
	pl := Claim{ID: "t", Kind: Polylog, Col: 1}
	pn := Claim{ID: "t", Kind: Polynomial, Col: 1}
	if v := pl.Eval(logCube); !v.Pass {
		t.Errorf("log^3 not classified polylog: %+v", v)
	}
	if v := pl.Eval(sqrtLog); v.Pass {
		t.Errorf("sqrt(n)log(n) classified polylog: %+v", v)
	}
	if v := pn.Eval(sqrtLog); !v.Pass {
		t.Errorf("sqrt(n)log(n) not classified polynomial: %+v", v)
	}
	if v := pn.Eval(logCube); v.Pass {
		t.Errorf("log^3 classified polynomial: %+v", v)
	}
}

func TestEvalValueBounded(t *testing.T) {
	// Ratio col1/col2 sits at exactly 2.
	rows := rowsFor(sweepNs, func(n float64) float64 { return 2 * n }, func(n float64) float64 { return n })
	in := Claim{ID: "t", Kind: ValueBounded, Col: 1, Den: 2, Lo: 1.5, Hi: 2.5}
	if v := in.Eval(rows); !v.Pass {
		t.Errorf("in-range ratio failed: %+v", v)
	}
	out := Claim{ID: "t", Kind: ValueBounded, Col: 1, Den: 2, Lo: 0.5, Hi: 1.5}
	if v := out.Eval(rows); v.Pass {
		t.Errorf("out-of-range ratio passed: %+v", v)
	}
	// DivPow normalization: n^1.5/n^1.5 = 1.
	norm := Claim{ID: "t", Kind: ValueBounded, Col: 1, DivPow: 1.0, Lo: 1.9, Hi: 2.1}
	if v := norm.Eval(rows); !v.Pass {
		t.Errorf("DivPow-normalized value failed: %+v", v)
	}
	// A zero denominator poisons the point rather than passing silently.
	zeroDen := rowsFor(sweepNs, func(n float64) float64 { return n }, func(n float64) float64 { return 0 })
	if v := in.Eval(zeroDen); v.Pass {
		t.Errorf("zero denominator passed: %+v", v)
	}
}

func TestEvalRatioGrows(t *testing.T) {
	grow := rowsFor(sweepNs, func(n float64) float64 { return n * math.Log(n) }, func(n float64) float64 { return n })
	c := Claim{ID: "t", Kind: RatioGrows, Col: 1, Den: 2, MinGain: 2}
	if v := c.Eval(grow); !v.Pass {
		t.Errorf("log-growing ratio failed: %+v", v)
	}
	flat := rowsFor(sweepNs, func(n float64) float64 { return 3 * n }, func(n float64) float64 { return n })
	if v := c.Eval(flat); v.Pass {
		t.Errorf("flat ratio passed: %+v", v)
	}
}

func TestEvalDominates(t *testing.T) {
	c := Claim{ID: "t", Kind: Dominates, Col: 1, Den: 2}
	wins := rowsFor(sweepNs, func(n float64) float64 { return n }, func(n float64) float64 { return n * n })
	if v := c.Eval(wins); !v.Pass {
		t.Errorf("dominating series failed: %+v", v)
	}
	// Loses at one point: the ordering claim must fail.
	mixed := rowsFor(sweepNs, func(n float64) float64 { return n }, func(n float64) float64 { return n })
	mixed[0][2] = 0.5
	if v := c.Eval(mixed); v.Pass {
		t.Errorf("non-dominating series passed: %+v", v)
	}
}

func TestEvalDominatesTransientLead(t *testing.T) {
	// col1 = 0.001·n^1.5 sits below col2 = n at every measured point
	// (ratio 0.001·√n ≤ 0.128 through 16384), but grows strictly faster:
	// the fits name the baseline the asymptotic winner, so the measured
	// lead is transient and the durability check must fail the claim.
	c := Claim{ID: "t", Kind: Dominates, Col: 1, Den: 2}
	rows := rowsFor(sweepNs,
		func(n float64) float64 { return 0.001 * math.Pow(n, 1.5) },
		func(n float64) float64 { return n })
	v := c.Eval(rows)
	if v.Pass {
		t.Errorf("transient lead passed a dominance claim: %+v", v)
	}
	if !strings.Contains(v.Detail, "transient") {
		t.Errorf("detail does not flag the transient lead: %q", v.Detail)
	}
	// The max-ratio part of the check still held — only durability failed.
	if v.Measured >= 1 {
		t.Errorf("max ratio = %v, expected <1 (the failure is the trend, not the range)", v.Measured)
	}
	// A durable win: smaller values AND the smaller slope.
	durable := rowsFor(sweepNs,
		func(n float64) float64 { return 0.5 * n },
		func(n float64) float64 { return n * math.Log(n) })
	if v := c.Eval(durable); !v.Pass {
		t.Errorf("durable dominance failed: %+v", v)
	}
}

func TestEvalCrossoverBeyond(t *testing.T) {
	// col1 = 100·n^1.4 stays above col2 = n^1.6 through n=16384
	// (equal at n = 100^5 = 1e10), and grows strictly slower.
	rows := rowsFor(sweepNs,
		func(n float64) float64 { return 100 * math.Pow(n, 1.4) },
		func(n float64) float64 { return math.Pow(n, 1.6) })
	c := Claim{ID: "t", Kind: CrossoverBeyond, Col: 1, Den: 2}
	v := c.Eval(rows)
	if !v.Pass {
		t.Errorf("beyond-range crossover failed: %+v", v)
	}
	if math.Abs(v.Measured-1e10)/1e10 > 1e-6 {
		t.Errorf("crossover n = %v, want 1e10", v.Measured)
	}
	// Crossover inside the measured range: claim fails (col1 dips below).
	inside := rowsFor(sweepNs,
		func(n float64) float64 { return 2 * math.Pow(n, 1.4) },
		func(n float64) float64 { return math.Pow(n, 1.6) })
	if v := c.Eval(inside); v.Pass {
		t.Errorf("in-range crossover passed: %+v", v)
	}
	// Diverging series (col1 grows faster): never overtaken, claim fails.
	diverge := rowsFor(sweepNs,
		func(n float64) float64 { return 100 * math.Pow(n, 1.6) },
		func(n float64) float64 { return math.Pow(n, 1.4) })
	if v := c.Eval(diverge); v.Pass {
		t.Errorf("diverging series passed: %+v", v)
	}
	// Parallel slopes: col1 is above at every point but the fits name no
	// winner, so there is no crossover to be beyond — the claim fails
	// loudly instead of passing on the raw ordering alone.
	parallel := rowsFor(sweepNs,
		func(n float64) float64 { return 100 * math.Pow(n, 1.5) },
		func(n float64) float64 { return math.Pow(n, 1.5) })
	v = c.Eval(parallel)
	if v.Pass {
		t.Errorf("parallel series passed a crossover claim: %+v", v)
	}
	if !strings.Contains(v.Detail, "neither") {
		t.Errorf("detail does not name the missing winner: %q", v.Detail)
	}
	// The passing verdict names the winning side explicitly.
	if v := c.Eval(rows); !strings.Contains(v.Detail, "won by claimed side") {
		t.Errorf("passing detail does not name the winner: %q", v.Detail)
	}
}

func TestEvalDegenerateInputs(t *testing.T) {
	c := Claim{ID: "t", Kind: Exponent, Col: 1, Want: 1, Tol: 0.1}
	if v := c.Eval(nil); v.Pass || !strings.Contains(v.Detail, "no sweep rows") {
		t.Errorf("empty rows: %+v", v)
	}
	// All-zero costs: no usable fit points, must fail not panic.
	zeros := rowsFor(sweepNs, func(n float64) float64 { return 0 })
	if v := c.Eval(zeros); v.Pass {
		t.Errorf("zero-cost sweep passed: %+v", v)
	}
	short := rowsFor(sweepNs[:1], func(n float64) float64 { return n })
	if v := c.Eval(short); v.Pass {
		t.Errorf("single-point sweep passed: %+v", v)
	}
	unknown := Claim{ID: "t", Kind: Kind("nope"), Col: 1}
	if v := unknown.Eval(rowsFor(sweepNs, func(n float64) float64 { return n })); v.Pass {
		t.Errorf("unknown kind passed: %+v", v)
	}
}
