// Package tuner searches the discrete layout/schedule space of the
// library's primitives — grid track, collective-tree arity, tile aspect
// ratio, sort-algorithm choice (internal/mapping) — and returns the
// energy-, depth- and energy-delay-product-minimal configuration per
// workload and problem size, in the style of dataflow mapping optimizers
// (dMazeRunner's get_min_energy/get_min_edp over a pruned discrete
// space).
//
// The search is exhaustive over each workload's pruned candidate list:
// the space is small (a few to ~15 candidates per workload once invalid
// and redundant points are canonicalized away), and exhaustive
// enumeration keeps the verdict reproducible — the tuner's output is a
// pure function of (workload, sizes, seed), byte-identical for any
// worker count and for cold vs warm result caches.
//
// Fairness: every candidate of a workload is measured on the *identical*
// input. Candidate sweeps share one harness sweep name ("tune/<name>"),
// so the per-point RNG — seeded by (base seed, sweep name, point index)
// — draws the same workload for each; the mapping travels in the sweep's
// cache key (harness.WithMapping), never in its RNG seed, so cached rows
// never alias across candidates.
package tuner

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/collectives"
	"repro/internal/grid"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/mapped"
	"repro/internal/mapping"
	"repro/internal/order"
	"repro/internal/spmv"
	"repro/internal/workload"
)

// Workload is one tunable primitive family: a pruned candidate list plus
// the code that generates an input and runs it under a mapping.
type Workload struct {
	// Name keys the tuning sweep ("tune/<Name>") and the CLI's -workload
	// flag.
	Name string
	// Desc is the one-line description the CLI lists.
	Desc string
	// Candidates is the pruned mapping space in canonical (string) order.
	// The naive baseline mapping.Default() is always among them.
	Candidates []mapping.Mapping
	// Cost is the scheduling/ETA cost proxy for one candidate at size n.
	Cost func(n int) float64

	// Gen draws the size-n input from rng. Run executes it on m under mp;
	// every candidate of one point receives the same input value.
	Gen func(rng *rand.Rand, n int) any
	Run func(m *machine.Machine, n int, input any, mp mapping.Mapping)

	quickNs, fullNs []int
}

// Sizes returns the workload's problem sizes (powers of four, so padded
// layouts are exact). The full list extends the quick list — never
// reorders it — so quick-mode rows stay byte-identical between modes.
func (w Workload) Sizes(quick bool) []int {
	if quick {
		return w.quickNs
	}
	return w.fullNs
}

// Workloads returns every tunable workload in CLI order.
func Workloads() []Workload {
	return []Workload{scanWorkload(), reduceWorkload(), sortWorkload(), spmvWorkload()}
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Candidate is one evaluated mapping: the configuration plus its
// measured model costs at a single problem size.
type Candidate struct {
	Mapping mapping.Mapping `json:"mapping"`
	Energy  int64           `json:"energy"`
	Depth   int64           `json:"depth"`
}

// EDP is the energy-delay product (energy x depth), the tuner's default
// objective.
func (c Candidate) EDP() float64 { return float64(c.Energy) * float64(c.Depth) }

// dominates reports whether a is at least as good as b on both axes and
// strictly better on one.
func dominates(a, b Candidate) bool {
	return a.Energy <= b.Energy && a.Depth <= b.Depth &&
		(a.Energy < b.Energy || a.Depth < b.Depth)
}

// Pareto returns the candidates not dominated on (Energy, Depth), in the
// input's order. Ties (equal on both axes) all survive: they are
// distinct configurations with identical costs, and the Min selectors
// break the tie deterministically.
func Pareto(cands []Candidate) []Candidate {
	var front []Candidate
	for i, c := range cands {
		dominated := false
		for j, o := range cands {
			if i != j && dominates(o, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	return front
}

// MinEnergy returns the energy-minimal candidate; ties break to the
// earliest in the (canonically ordered) input, so the verdict is
// deterministic. Panics on an empty slice.
func MinEnergy(cands []Candidate) Candidate {
	return minBy(cands, func(c Candidate) float64 { return float64(c.Energy) })
}

// MinDepth returns the depth-minimal candidate (ties as in MinEnergy).
func MinDepth(cands []Candidate) Candidate {
	return minBy(cands, func(c Candidate) float64 { return float64(c.Depth) })
}

// MinEDP returns the EDP-minimal candidate (ties as in MinEnergy). For
// positive costs it always lies on the Pareto front.
func MinEDP(cands []Candidate) Candidate {
	return minBy(cands, func(c Candidate) float64 { return c.EDP() })
}

func minBy(cands []Candidate, key func(Candidate) float64) Candidate {
	if len(cands) == 0 {
		panic("tuner: min over no candidates")
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if key(c) < key(best) {
			best = c
		}
	}
	return best
}

// Baseline returns the candidate measured under mapping.Default() — the
// naive configuration every verdict is compared against.
func Baseline(cands []Candidate) (Candidate, bool) {
	def := mapping.Default()
	for _, c := range cands {
		if c.Mapping == def {
			return c, true
		}
	}
	return Candidate{}, false
}

// Objective selects which cost a verdict minimizes.
type Objective string

const (
	ObjEnergy Objective = "energy"
	ObjDepth  Objective = "depth"
	ObjEDP    Objective = "edp"
)

// ParseObjective validates an -objective flag value.
func ParseObjective(s string) (Objective, error) {
	switch Objective(s) {
	case ObjEnergy, ObjDepth, ObjEDP:
		return Objective(s), nil
	}
	return "", fmt.Errorf("tuner: unknown objective %q (want energy, depth or edp)", s)
}

// SizeResult is the verdict for one workload at one problem size.
type SizeResult struct {
	N          int         `json:"n"`
	Candidates []Candidate `json:"candidates"` // all, canonical mapping order
	Pareto     []Candidate `json:"pareto"`     // non-dominated on (energy, depth)
	MinEnergy  Candidate   `json:"min_energy"`
	MinDepth   Candidate   `json:"min_depth"`
	MinEDP     Candidate   `json:"min_edp"`
}

// Best returns the objective-minimal candidate of the size.
func (s SizeResult) Best(obj Objective) Candidate {
	switch obj {
	case ObjEnergy:
		return s.MinEnergy
	case ObjDepth:
		return s.MinDepth
	default:
		return s.MinEDP
	}
}

// Result is the full verdict for one workload.
type Result struct {
	Workload string       `json:"workload"`
	Sizes    []SizeResult `json:"sizes"`
}

// Tune evaluates every candidate of w at every size through runner r and
// returns the per-size verdicts. One sweep per candidate is enqueued up
// front (all named "tune/<workload>", distinguished by their mapping in
// the cache key), so the runner's pool interleaves candidates freely;
// rows are collected in candidate order, keeping the result a pure
// function of (workload, sizes, seed).
func Tune(r *harness.Runner, w Workload, quick bool) Result {
	sizes := w.Sizes(quick)
	sweeps := make([]*harness.Sweep, len(w.Candidates))
	for ci, mp := range w.Candidates {
		sweeps[ci] = r.Go("tune/"+w.Name, len(sizes), func(i int, env *harness.Env) []harness.Row {
			n := sizes[i]
			input := w.Gen(env.Rng, n)
			cur := env.Mapping()
			mm := env.Measure(func(m *machine.Machine) { w.Run(m, n, input, cur) })
			return harness.One(n, float64(mm.Energy), float64(mm.Depth))
		}, harness.WithMapping(mp), harness.WithPointCost(func(i int) float64 { return w.Cost(sizes[i]) }))
	}
	perSize := make([][]Candidate, len(sizes))
	for ci, s := range sweeps {
		for i, row := range s.Rows() {
			perSize[i] = append(perSize[i], Candidate{
				Mapping: w.Candidates[ci],
				Energy:  int64(row[1].(float64)),
				Depth:   int64(row[2].(float64)),
			})
		}
	}
	res := Result{Workload: w.Name}
	for i, cands := range perSize {
		res.Sizes = append(res.Sizes, SizeResult{
			N:          sizes[i],
			Candidates: cands,
			Pareto:     Pareto(cands),
			MinEnergy:  MinEnergy(cands),
			MinDepth:   MinDepth(cands),
			MinEDP:     MinEDP(cands),
		})
	}
	return res
}

// EvalPoint measures every candidate of w at size n sequentially inside
// one sweep point, on one input drawn from env.Rng — the form the bound
// sweeps use (a harness point cannot nest another runner). Within the
// point every candidate sees the identical input, so the returned
// Candidates compare configurations, not workloads.
func EvalPoint(w Workload, n int, env *harness.Env) []Candidate {
	input := w.Gen(env.Rng, n)
	cands := make([]Candidate, 0, len(w.Candidates))
	for _, mp := range w.Candidates {
		cur := mp
		mm := env.Measure(func(m *machine.Machine) { w.Run(m, n, input, cur) })
		cands = append(cands, Candidate{Mapping: mp, Energy: mm.Energy, Depth: mm.Depth})
	}
	return cands
}

// --- Workload definitions -------------------------------------------------

// scanWorkload: inclusive prefix sums. The track is the knob — a Z-order
// track selects the paper's quadtree scan (Lemma IV.3), the others the
// binary-tree scan along the curve.
func scanWorkload() Workload {
	var cands []mapping.Mapping
	for _, tr := range grid.TrackKinds() {
		mp := mapping.Default()
		mp.Track = tr
		cands = append(cands, mp)
	}
	mapping.SortMappings(cands)
	return Workload{
		Name:       "scan",
		Desc:       "inclusive prefix sums (track: quadtree vs tree scan)",
		Candidates: cands,
		Cost:       func(n int) float64 { return float64(n) * log2f(n) },
		quickNs:    []int{64, 256, 1024},
		fullNs:     []int{64, 256, 1024, 4096, 16384, 65536},
		Gen: func(rng *rand.Rand, n int) any { return workload.Array(workload.Random, n, rng) },
		Run: func(m *machine.Machine, n int, input any, mp mapping.Mapping) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, mapped.ScanTrack(mp, r), input.([]float64), 0)
			mapped.Scan(m, r, "v", collectives.Add, 0.0, mp)
		},
	}
}

// reduceWorkload: global sum. Track, arity and (for row-major) tile are
// the knobs; zorder/arity-4 is the paper's quadrant recursion.
func reduceWorkload() Workload {
	var cands []mapping.Mapping
	for _, tr := range grid.TrackKinds() {
		tiles := []mapping.Tile{mapping.TileSquare}
		if tr == grid.TrackRowMajor {
			tiles = mapping.Tiles() // curves need a square region
		}
		for _, a := range mapping.Arities() {
			for _, ti := range tiles {
				cands = append(cands, mapping.Mapping{Track: tr, Arity: a, Tile: ti, Sort: mapping.SortBitonic})
			}
		}
	}
	mapping.SortMappings(cands)
	return Workload{
		Name:       "reduce",
		Desc:       "global sum (track x tree arity x tile shape)",
		Candidates: cands,
		Cost:       func(n int) float64 { return float64(n) },
		quickNs:    []int{64, 256, 1024},
		fullNs:     []int{64, 256, 1024, 4096, 16384, 65536},
		Gen: func(rng *rand.Rand, n int) any { return workload.Array(workload.Random, n, rng) },
		Run: func(m *machine.Machine, n int, input any, mp mapping.Mapping) {
			r := mapped.ReduceRegion(n, mp)
			placeFloats(m, grid.RowMajor(r), input.([]float64), 0)
			mapped.Reduce(m, r, "v", collectives.Add, mp)
		},
	}
}

// sortWorkload: ascending sort. The algorithm is the main knob; the
// network sorts additionally expose their wire layout (track). The
// region-structured algorithms (merge, shearsort) and the odd-even
// network are enumerated once, on the canonical row-major track.
func sortWorkload() Workload {
	cands := []mapping.Mapping{
		{Track: grid.TrackRowMajor, Arity: 2, Tile: mapping.TileSquare, Sort: mapping.SortMerge},
		{Track: grid.TrackRowMajor, Arity: 2, Tile: mapping.TileSquare, Sort: mapping.SortShearsort},
		{Track: grid.TrackRowMajor, Arity: 2, Tile: mapping.TileSquare, Sort: mapping.SortOddEven},
	}
	for _, tr := range grid.TrackKinds() {
		cands = append(cands, mapping.Mapping{Track: tr, Arity: 2, Tile: mapping.TileSquare, Sort: mapping.SortBitonic})
	}
	mapping.SortMappings(cands)
	return Workload{
		Name:       "sort",
		Desc:       "ascending sort (algorithm x network wire layout)",
		Candidates: cands,
		Cost:       func(n int) float64 { return float64(n) * math.Sqrt(float64(n)) },
		quickNs:    []int{64, 256, 1024},
		fullNs:     []int{64, 256, 1024, 4096, 16384},
		Gen: func(rng *rand.Rand, n int) any { return workload.Array(workload.Random, n, rng) },
		Run: func(m *machine.Machine, n int, input any, mp mapping.Mapping) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, mapped.SortTrack(mp, r), input.([]float64), math.Inf(1))
			mapped.Sort(m, r, "v", order.Float64, mp)
		},
	}
}

// spmvInput is one SpMV workload instance: a uniform sparse matrix with
// 4n non-zeros and a dense vector.
type spmvInput struct {
	a spmv.Matrix
	x []float64
}

// spmvWorkload: sparse matrix-vector product. The matrix-subgrid track
// is the knob (spmv.MultiplyMapped); Z-order is the paper's choice.
func spmvWorkload() Workload {
	var cands []mapping.Mapping
	for _, tr := range grid.TrackKinds() {
		mp := mapping.Default()
		mp.Track = tr
		cands = append(cands, mp)
	}
	mapping.SortMappings(cands)
	return Workload{
		Name:       "spmv",
		Desc:       "sparse matrix-vector product (matrix-subgrid track)",
		Candidates: cands,
		Cost:       func(n int) float64 { m := float64(4 * n); return m * math.Sqrt(m) },
		quickNs:    []int{16, 64, 256},
		fullNs:     []int{16, 64, 256, 1024},
		Gen: func(rng *rand.Rand, n int) any {
			return spmvInput{
				a: workload.SparseMatrix(workload.MatUniform, n, 4*n, rng),
				x: workload.Array(workload.Random, n, rng),
			}
		},
		Run: func(m *machine.Machine, n int, input any, mp mapping.Mapping) {
			in := input.(spmvInput)
			if _, err := spmv.MultiplyMapped(m, in.a, in.x, mp.Track); err != nil {
				panic(err)
			}
		},
	}
}

// placeFloats lays vals out along t, padding the tail with pad.
func placeFloats(m *machine.Machine, t grid.Track, vals []float64, pad float64) {
	for i := 0; i < t.Len(); i++ {
		v := pad
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), "v", v)
	}
}

func log2f(n int) float64 { return math.Log2(float64(max(n, 2))) }
