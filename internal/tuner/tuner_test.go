package tuner

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/harness"
	"repro/internal/mapping"
	"repro/internal/simcache"
)

func mp(track grid.TrackKind, arity int) mapping.Mapping {
	return mapping.Mapping{Track: track, Arity: arity, Tile: mapping.TileSquare, Sort: mapping.SortBitonic}
}

// TestParetoPruning: dominated candidates drop, incomparable ones stay,
// exact cost ties all survive.
func TestParetoPruning(t *testing.T) {
	a := Candidate{Mapping: mp(grid.TrackRowMajor, 2), Energy: 100, Depth: 10}
	b := Candidate{Mapping: mp(grid.TrackZOrder, 2), Energy: 50, Depth: 20}   // incomparable with a
	c := Candidate{Mapping: mp(grid.TrackHilbert, 2), Energy: 100, Depth: 20} // dominated by both
	d := Candidate{Mapping: mp(grid.TrackRowMajor, 4), Energy: 100, Depth: 10} // ties a exactly

	front := Pareto([]Candidate{a, b, c, d})
	want := []Candidate{a, b, d}
	if !reflect.DeepEqual(front, want) {
		t.Errorf("Pareto = %+v, want %+v", front, want)
	}

	// A single candidate is its own front.
	if got := Pareto([]Candidate{c}); !reflect.DeepEqual(got, []Candidate{c}) {
		t.Errorf("singleton Pareto = %+v", got)
	}

	// Strict domination on one axis with equality on the other prunes.
	e := Candidate{Mapping: mp(grid.TrackZOrder, 4), Energy: 50, Depth: 10}
	if got := Pareto([]Candidate{a, e}); !reflect.DeepEqual(got, []Candidate{e}) {
		t.Errorf("Pareto kept a candidate dominated via one-axis tie: %+v", got)
	}
}

// TestMinSelectorsTieBreak: equal costs resolve to the earliest
// candidate, so verdicts are deterministic given the canonical
// candidate order.
func TestMinSelectorsTieBreak(t *testing.T) {
	first := Candidate{Mapping: mp(grid.TrackHilbert, 2), Energy: 10, Depth: 10}
	second := Candidate{Mapping: mp(grid.TrackRowMajor, 2), Energy: 10, Depth: 10}
	cands := []Candidate{first, second}
	for name, got := range map[string]Candidate{
		"MinEnergy": MinEnergy(cands),
		"MinDepth":  MinDepth(cands),
		"MinEDP":    MinEDP(cands),
	} {
		if got.Mapping != first.Mapping {
			t.Errorf("%s tie broke to %v, want first candidate %v", name, got.Mapping, first.Mapping)
		}
	}
}

// TestMinEDPOnParetoFront: for positive costs the EDP winner survives
// Pareto pruning.
func TestMinEDPOnParetoFront(t *testing.T) {
	cands := []Candidate{
		{Mapping: mp(grid.TrackRowMajor, 2), Energy: 100, Depth: 4},
		{Mapping: mp(grid.TrackZOrder, 2), Energy: 40, Depth: 8},
		{Mapping: mp(grid.TrackHilbert, 2), Energy: 200, Depth: 9},
	}
	best := MinEDP(cands)
	for _, p := range Pareto(cands) {
		if p.Mapping == best.Mapping {
			return
		}
	}
	t.Errorf("MinEDP winner %v not on the Pareto front", best.Mapping)
}

// TestWorkloadsWellFormed: every workload carries the baseline mapping,
// canonically ordered valid candidates, and quick sizes that prefix the
// full sizes (so quick rows are a subset of full rows).
func TestWorkloadsWellFormed(t *testing.T) {
	if len(Workloads()) < 3 {
		t.Fatalf("want >=3 tunable workloads, got %d", len(Workloads()))
	}
	for _, w := range Workloads() {
		sorted := append([]mapping.Mapping(nil), w.Candidates...)
		mapping.SortMappings(sorted)
		if !reflect.DeepEqual(sorted, w.Candidates) {
			t.Errorf("%s: candidates not in canonical order", w.Name)
		}
		hasBase := false
		seen := map[mapping.Mapping]bool{}
		for _, mpp := range w.Candidates {
			if err := mpp.Validate(); err != nil {
				t.Errorf("%s: invalid candidate %v: %v", w.Name, mpp, err)
			}
			if seen[mpp] {
				t.Errorf("%s: duplicate candidate %v", w.Name, mpp)
			}
			seen[mpp] = true
			if mpp == mapping.Default() {
				hasBase = true
			}
		}
		if !hasBase {
			t.Errorf("%s: baseline mapping.Default() not a candidate", w.Name)
		}
		quick, full := w.Sizes(true), w.Sizes(false)
		if len(full) < len(quick) || !reflect.DeepEqual(full[:len(quick)], quick) {
			t.Errorf("%s: quick sizes %v not a prefix of full sizes %v", w.Name, quick, full)
		}
	}
	if _, ok := ByName("scan"); !ok {
		t.Error("ByName(scan) missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) resolved")
	}
}

func tuneJSON(t *testing.T, r *harness.Runner, name string) []byte {
	t.Helper()
	w, ok := ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	b, err := json.Marshal(Tune(r, w, true))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTuneDeterministicAcrossWorkers: the tuner verdict is byte-identical
// for any worker count.
func TestTuneDeterministicAcrossWorkers(t *testing.T) {
	seq := tuneJSON(t, harness.New(1, harness.WithWorkers(1)), "scan")
	par := tuneJSON(t, harness.New(1, harness.WithWorkers(8), harness.WithLargestFirst()), "scan")
	if string(seq) != string(par) {
		t.Errorf("verdict differs across worker counts:\n1: %s\n8: %s", seq, par)
	}
}

// TestTuneDeterministicAcrossCache: a warm rerun serves every point from
// the cache and returns the byte-identical verdict.
func TestTuneDeterministicAcrossCache(t *testing.T) {
	cache := simcache.New(nil, 0)
	cold := tuneJSON(t, harness.New(1, harness.WithWorkers(4), harness.WithCache(cache)), "scan")
	st := cache.Stats()
	if st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("cold run: %d hits, %d misses", st.Hits, st.Misses)
	}
	warm := tuneJSON(t, harness.New(1, harness.WithWorkers(4), harness.WithCache(cache)), "scan")
	if string(cold) != string(warm) {
		t.Errorf("verdict differs cold vs warm:\ncold: %s\nwarm: %s", cold, warm)
	}
	st = cache.Stats()
	if st.Hits != st.Misses {
		t.Errorf("warm run not fully cached: %d hits, want %d", st.Hits, st.Misses)
	}
}

// TestTuneFindsPaperScanMapping: the quick scan verdict picks the
// Z-order (quadtree) scan — the paper's energy-optimal layout — over the
// row-major baseline at every size, with the baseline present for the
// comparison.
func TestTuneFindsPaperScanMapping(t *testing.T) {
	w, _ := ByName("scan")
	res := Tune(harness.New(1, harness.WithWorkers(4)), w, true)
	if len(res.Sizes) != len(w.Sizes(true)) {
		t.Fatalf("got %d sizes, want %d", len(res.Sizes), len(w.Sizes(true)))
	}
	for _, sz := range res.Sizes {
		if got := sz.MinEDP.Mapping.Track; got != grid.TrackZOrder {
			t.Errorf("n=%d: EDP-minimal track %v, want zorder", sz.N, got)
		}
		base, ok := Baseline(sz.Candidates)
		if !ok {
			t.Fatalf("n=%d: no baseline candidate", sz.N)
		}
		if sz.MinEDP.EDP() >= base.EDP() {
			t.Errorf("n=%d: tuned EDP %.0f not below baseline %.0f", sz.N, sz.MinEDP.EDP(), base.EDP())
		}
		if sz.Best(ObjEnergy) != sz.MinEnergy || sz.Best(ObjDepth) != sz.MinDepth || sz.Best(ObjEDP) != sz.MinEDP {
			t.Errorf("n=%d: Best dispatch inconsistent", sz.N)
		}
	}
}

func TestParseObjective(t *testing.T) {
	for _, s := range []string{"energy", "depth", "edp"} {
		if _, err := ParseObjective(s); err != nil {
			t.Errorf("ParseObjective(%s): %v", s, err)
		}
	}
	if _, err := ParseObjective("joules"); err == nil {
		t.Error("ParseObjective accepted joules")
	}
}
