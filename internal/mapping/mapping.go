// Package mapping defines the layout/schedule vocabulary shared by the
// algorithm packages, the sweep harness, the result cache and the tuner.
//
// A Mapping is the discrete configuration a spatial-dataflow primitive can
// be instantiated under: which grid track arrays live on, what arity the
// broadcast/reduce trees use, what aspect ratio the processor tile has,
// and which sorting algorithm runs. The paper fixes one point of this
// space per primitive (Z-order layouts, quadrant-recursion collectives,
// 2-D mergesort); the tuner (internal/tuner) searches the rest of it.
// Mappings are serializable — String/Parse round-trip, and the canonical
// string form is what the simcache key and sweep registries embed — so a
// tuning verdict names a reproducible configuration, not an in-memory
// object.
package mapping

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/grid"
)

// Tile is the aspect ratio of the processor region an operation lays its
// data out on. The collectives' costs depend on it (Lemma IV.1's
// max(h,w) log max(h,w) term); the space-filling-curve tracks require
// TileSquare.
type Tile string

const (
	TileSquare Tile = "square" // side x side
	TileWide   Tile = "wide"   // side/2 x 2*side
	TileTall   Tile = "tall"   // 2*side x side/2
)

// Tiles lists every tile shape in canonical order.
func Tiles() []Tile { return []Tile{TileSquare, TileWide, TileTall} }

// SortAlgo selects the sorting algorithm for sort-family workloads.
type SortAlgo string

const (
	// SortBitonic is the bitonic network run over the mapping's track —
	// the Theta(n^{3/2} log n)-energy baseline of Lemma V.4 on row-major.
	SortBitonic SortAlgo = "bitonic"
	// SortOddEven is Batcher's odd-even mergesort network over the track.
	SortOddEven SortAlgo = "oddeven"
	// SortShearsort is the classic mesh algorithm (square row-major mesh,
	// polynomial depth).
	SortShearsort SortAlgo = "shearsort"
	// SortMerge is the paper's energy-optimal 2-D mergesort (Theorem V.8).
	SortMerge SortAlgo = "merge"
)

// SortAlgos lists every sort algorithm in canonical order.
func SortAlgos() []SortAlgo {
	return []SortAlgo{SortBitonic, SortOddEven, SortShearsort, SortMerge}
}

// Arities lists the broadcast/reduce tree fan-outs the space enumerates.
func Arities() []int { return []int{2, 4, 8} }

// Mapping is one point of the layout/schedule design space.
type Mapping struct {
	// Track is the array layout (and, for primitives with a
	// layout-specialized algorithm, the algorithm choice: a Z-order track
	// selects the paper's quadrant-recursive collectives).
	Track grid.TrackKind `json:"track"`
	// Arity is the fan-out of tree-shaped collectives (2 = the binary
	// baseline).
	Arity int `json:"arity"`
	// Tile is the aspect ratio of the data's processor region.
	Tile Tile `json:"tile"`
	// Sort is the sorting algorithm for sort-family workloads.
	Sort SortAlgo `json:"sort"`
}

// Default is the naive row-major baseline every tuning verdict is measured
// against: row-major layout, binary trees, square tile, bitonic sort.
func Default() Mapping {
	return Mapping{Track: grid.TrackRowMajor, Arity: 2, Tile: TileSquare, Sort: SortBitonic}
}

// String renders the canonical, Parse-able form:
// "track=rowmajor,arity=2,tile=square,sort=bitonic". Field order is fixed,
// so equal mappings always render equal strings (cache keys and sweep
// names depend on this).
func (m Mapping) String() string {
	return fmt.Sprintf("track=%s,arity=%d,tile=%s,sort=%s", m.Track, m.Arity, m.Tile, m.Sort)
}

// Validate reports the first unknown field value, if any.
func (m Mapping) Validate() error {
	if !m.Track.Valid() {
		return fmt.Errorf("mapping: unknown track %q", m.Track)
	}
	ok := false
	for _, a := range Arities() {
		if m.Arity == a {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("mapping: arity %d not in %v", m.Arity, Arities())
	}
	switch m.Tile {
	case TileSquare, TileWide, TileTall:
	default:
		return fmt.Errorf("mapping: unknown tile %q", m.Tile)
	}
	switch m.Sort {
	case SortBitonic, SortOddEven, SortShearsort, SortMerge:
	default:
		return fmt.Errorf("mapping: unknown sort %q", m.Sort)
	}
	return nil
}

// Parse reads the String form. Omitted fields keep their Default value, so
// "track=zorder" and "sort=merge,arity=4" are valid partial overrides
// (the CLI's -mapping flag leans on this).
func Parse(s string) (Mapping, error) {
	m := Default()
	if strings.TrimSpace(s) == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return m, fmt.Errorf("mapping: %q is not key=value", part)
		}
		switch key {
		case "track":
			m.Track = grid.TrackKind(val)
		case "arity":
			a, err := strconv.Atoi(val)
			if err != nil {
				return m, fmt.Errorf("mapping: arity %q: %v", val, err)
			}
			m.Arity = a
		case "tile":
			m.Tile = Tile(val)
		case "sort":
			m.Sort = SortAlgo(val)
		default:
			return m, fmt.Errorf("mapping: unknown field %q", key)
		}
	}
	return m, m.Validate()
}

// MarshalJSON/UnmarshalJSON use the struct form; a Mapping in a JSON
// document is {"track":...,"arity":...,"tile":...,"sort":...}.
var _ json.Marshaler = Mapping{}

// MarshalJSON emits the struct fields (deterministic field order).
func (m Mapping) MarshalJSON() ([]byte, error) {
	type plain Mapping // strip the method set to avoid recursion
	return json.Marshal(plain(m))
}

// Space enumerates the full cross product of the mapping space in a fixed
// canonical order (track-major, then arity, tile, sort). Workloads prune
// it with their own validity and canonicalization rules; see
// internal/tuner.
func Space() []Mapping {
	var out []Mapping
	for _, tr := range grid.TrackKinds() {
		for _, a := range Arities() {
			for _, ti := range Tiles() {
				for _, so := range SortAlgos() {
					out = append(out, Mapping{Track: tr, Arity: a, Tile: ti, Sort: so})
				}
			}
		}
	}
	return out
}

// SortMappings orders mappings by their canonical string — the
// deterministic tie-break and table order used everywhere mappings are
// listed.
func SortMappings(ms []Mapping) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].String() < ms[j].String() })
}

// RegionFor returns the processor region of shape t that holds exactly n
// elements, anchored at the origin. ok is false when n does not factor
// into the shape (n must be a perfect square for TileSquare, and its side
// must additionally be even for TileWide/TileTall).
func RegionFor(n int, t Tile) (grid.Rect, bool) {
	side := 1
	for side*side < n {
		side++
	}
	if side*side != n {
		return grid.Rect{}, false
	}
	switch t {
	case TileSquare:
		return grid.Square(machineOrigin, side), true
	case TileWide:
		if side%2 != 0 {
			return grid.Rect{}, false
		}
		return grid.Rect{H: side / 2, W: side * 2}, true
	case TileTall:
		if side%2 != 0 {
			return grid.Rect{}, false
		}
		return grid.Rect{H: side * 2, W: side / 2}, true
	}
	return grid.Rect{}, false
}

var machineOrigin = grid.Rect{}.Origin
