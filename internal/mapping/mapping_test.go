package mapping

import (
	"encoding/json"
	"testing"

	"repro/internal/grid"
)

func TestStringParseRoundTrip(t *testing.T) {
	for _, m := range Space() {
		got, err := Parse(m.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("round trip: %v -> %q -> %v", m, m.String(), got)
		}
	}
}

func TestParsePartialOverride(t *testing.T) {
	m, err := Parse("track=zorder,sort=merge")
	if err != nil {
		t.Fatal(err)
	}
	want := Default()
	want.Track = grid.TrackZOrder
	want.Sort = SortMerge
	if m != want {
		t.Fatalf("got %v, want %v", m, want)
	}
	if m, err := Parse(""); err != nil || m != Default() {
		t.Fatalf("Parse(\"\") = %v, %v; want Default", m, err)
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	for _, s := range []string{"track=diagonal", "arity=3", "tile=round", "sort=bogo", "nonsense", "color=red"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceIsUniqueAndValid(t *testing.T) {
	space := Space()
	want := len(grid.TrackKinds()) * len(Arities()) * len(Tiles()) * len(SortAlgos())
	if len(space) != want {
		t.Fatalf("Space has %d points, want %d", len(space), want)
	}
	seen := map[string]bool{}
	for _, m := range space {
		if err := m.Validate(); err != nil {
			t.Errorf("%v: %v", m, err)
		}
		if seen[m.String()] {
			t.Errorf("duplicate %v", m)
		}
		seen[m.String()] = true
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := Mapping{Track: grid.TrackHilbert, Arity: 4, Tile: TileWide, Sort: SortShearsort}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var got Mapping
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("got %v, want %v", got, m)
	}
}

func TestRegionFor(t *testing.T) {
	cases := []struct {
		n    int
		tile Tile
		h, w int
		ok   bool
	}{
		{16, TileSquare, 4, 4, true},
		{16, TileWide, 2, 8, true},
		{16, TileTall, 8, 2, true},
		{64, TileWide, 4, 16, true},
		{9, TileSquare, 3, 3, true},
		{9, TileWide, 0, 0, false},  // odd side
		{12, TileSquare, 0, 0, false}, // not a perfect square
	}
	for _, c := range cases {
		r, ok := RegionFor(c.n, c.tile)
		if ok != c.ok {
			t.Errorf("RegionFor(%d, %s): ok=%v, want %v", c.n, c.tile, ok, c.ok)
			continue
		}
		if ok && (r.H != c.h || r.W != c.w || r.Size() != c.n) {
			t.Errorf("RegionFor(%d, %s) = %dx%d", c.n, c.tile, r.H, r.W)
		}
	}
}
