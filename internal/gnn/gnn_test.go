package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

func randomGraph(rng *rand.Rand, nodes, edges int) Graph {
	g := Graph{Nodes: nodes}
	for i := 0; i < edges; i++ {
		g.Edges = append(g.Edges, Edge{
			U: rng.Intn(nodes), V: rng.Intn(nodes), W: rng.Float64() + 0.1,
		})
	}
	return g
}

func randomFeatures(rng *rand.Rand, channels, nodes int) Features {
	f := make(Features, channels)
	for c := range f {
		f[c] = make([]float64, nodes)
		for v := range f[c] {
			f[c][v] = rng.NormFloat64()
		}
	}
	return f
}

func TestForwardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ nodes, edges, channels, layers, topk int }{
		{16, 48, 2, 1, 4},
		{32, 128, 3, 2, 8},
		{64, 200, 2, 3, 16},
	} {
		g := randomGraph(rng, tc.nodes, tc.edges)
		feats := randomFeatures(rng, tc.channels, tc.nodes)
		md := Model{Layers: tc.layers, TopK: tc.topk}

		m := machine.New()
		pooled, picked, err := md.Forward(m, g, feats)
		if err != nil {
			t.Fatal(err)
		}
		wantPooled, wantPicked, err := md.Reference(g, feats)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantPicked {
			if picked[i] != wantPicked[i] {
				t.Fatalf("%+v: picked[%d] = %d, want %d", tc, i, picked[i], wantPicked[i])
			}
		}
		for r := range wantPooled {
			for c := range wantPooled[r] {
				if math.Abs(pooled[r][c]-wantPooled[r][c]) > 1e-9 {
					t.Fatalf("%+v: pooled[%d][%d] = %v, want %v", tc, r, c, pooled[r][c], wantPooled[r][c])
				}
			}
		}
		if m.Metrics().Energy == 0 {
			t.Error("forward pass reported zero energy")
		}
	}
}

func TestForwardCostDominatedByAggregation(t *testing.T) {
	// Layers multiply the SpMV cost; check energy grows roughly linearly
	// with layer count.
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 32, 128)
	feats := randomFeatures(rng, 2, 32)
	energy := func(layers int) int64 {
		m := machine.New()
		if _, _, err := (Model{Layers: layers, TopK: 8}).Forward(m, g, feats); err != nil {
			t.Fatal(err)
		}
		return m.Metrics().Energy
	}
	e1, e3 := energy(1), energy(3)
	if e3 < 2*e1 || e3 > 4*e1 {
		t.Errorf("3-layer energy %d not ~3x the 1-layer %d", e3, e1)
	}
}

func TestForwardValidation(t *testing.T) {
	g := Graph{Nodes: 4, Edges: []Edge{{U: 0, V: 9, W: 1}}}
	m := machine.New()
	if _, _, err := (Model{Layers: 1, TopK: 2}).Forward(m, g, randomFeatures(rand.New(rand.NewSource(3)), 1, 4)); err == nil {
		t.Error("invalid edge accepted")
	}
	g = Graph{Nodes: 4}
	if _, _, err := (Model{Layers: 1, TopK: 9}).Forward(m, g, randomFeatures(rand.New(rand.NewSource(3)), 1, 4)); err == nil {
		t.Error("TopK > nodes accepted")
	}
	if _, _, err := (Model{Layers: 1, TopK: 2}).Forward(m, g, nil); err == nil {
		t.Error("empty features accepted")
	}
	if _, _, err := (Model{Layers: 1, TopK: 2}).Forward(m, g, Features{{1, 2}}); err == nil {
		t.Error("short channel accepted")
	}
}

func TestIsolatedNodesAndSinks(t *testing.T) {
	// Nodes with no out-edges must not produce NaNs; nodes with no
	// in-edges aggregate to zero.
	g := Graph{Nodes: 4, Edges: []Edge{{U: 0, V: 1, W: 1}}}
	feats := Features{{1, 2, 3, 4}}
	md := Model{Layers: 1, TopK: 4}
	m := machine.New()
	pooled, picked, err := md.Forward(m, g, feats)
	if err != nil {
		t.Fatal(err)
	}
	wantPooled, wantPicked, _ := md.Reference(g, feats)
	for i := range wantPicked {
		if picked[i] != wantPicked[i] || pooled[i][0] != wantPooled[i][0] {
			t.Fatalf("picked %v pooled %v, want %v %v", picked, pooled, wantPicked, wantPooled)
		}
	}
}

func TestSortPoolOrderDeterministicTies(t *testing.T) {
	m := machine.New()
	order := sortPoolOrder(m, []float64{5, 7, 5, 7, 5})
	want := []int{1, 3, 0, 2, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
