// Package gnn implements a graph neural network forward pass on the
// Spatial Computer Model, the application the paper's introduction
// motivates: "graph neural networks with sort pooling layers [16], which
// rely on sorting as a critical operation for feature extraction."
//
// A model is a stack of mean-aggregation layers (each channel of the
// feature matrix is one SpMV against the degree-normalized adjacency —
// Section VIII's kernel), a ReLU (local computation, free in the model),
// and a SortPooling layer (Zhang et al., AAAI'18) that orders nodes by
// their last feature channel with the energy-optimal 2-D mergesort and
// keeps the top K rows. All communication runs on a machine.Machine, so a
// forward pass carries exact Spatial Computer Model costs.
package gnn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/spmv"
)

// Graph is a directed graph with weighted edges; node features attach at
// the model level.
type Graph struct {
	Nodes int
	Edges []Edge
}

// Edge is one directed edge u -> v with weight W.
type Edge struct {
	U, V int
	W    float64
}

// Validate checks node indices.
func (g Graph) Validate() error {
	for _, e := range g.Edges {
		if e.U < 0 || e.U >= g.Nodes || e.V < 0 || e.V >= g.Nodes {
			return fmt.Errorf("gnn: edge (%d,%d) outside %d nodes", e.U, e.V, g.Nodes)
		}
	}
	return nil
}

// normalizedAdjacency returns the mean-aggregation operator: entry (v, u) =
// w(u,v) / outdeg(u), so that multiplying a feature channel by it averages
// each node's incoming messages.
func (g Graph) normalizedAdjacency() spmv.Matrix {
	deg := make([]float64, g.Nodes)
	for _, e := range g.Edges {
		deg[e.U] += e.W
	}
	a := spmv.Matrix{N: g.Nodes}
	for _, e := range g.Edges {
		if deg[e.U] == 0 {
			continue
		}
		a.Entries = append(a.Entries, spmv.Entry{Row: e.V, Col: e.U, Val: e.W / deg[e.U]})
	}
	return a
}

// Model is a sort-pooling GNN: Layers rounds of aggregate+ReLU, then
// SortPooling keeping TopK nodes ordered by the last feature channel.
type Model struct {
	Layers int
	TopK   int
}

// Features is a channel-major feature matrix: Features[c][v] is channel c
// of node v.
type Features [][]float64

// Clone deep-copies a feature matrix.
func (f Features) Clone() Features {
	out := make(Features, len(f))
	for c := range f {
		out[c] = append([]float64(nil), f[c]...)
	}
	return out
}

// Forward runs the model on machine m and returns the pooled TopK x C
// feature block (row r = the node with the r-th highest score) and the
// indices of the selected nodes, highest score first. Aggregations and the
// pooling sort are spatial; ReLU and the final gather are local
// computation.
func (md Model) Forward(m *machine.Machine, g Graph, feats Features) ([][]float64, []int, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if len(feats) == 0 {
		return nil, nil, fmt.Errorf("gnn: no feature channels")
	}
	for c := range feats {
		if len(feats[c]) != g.Nodes {
			return nil, nil, fmt.Errorf("gnn: channel %d has %d values for %d nodes", c, len(feats[c]), g.Nodes)
		}
	}
	if md.TopK < 1 || md.TopK > g.Nodes {
		return nil, nil, fmt.Errorf("gnn: TopK %d out of range [1,%d]", md.TopK, g.Nodes)
	}

	adj := g.normalizedAdjacency()
	h := feats.Clone()
	for l := 0; l < md.Layers; l++ {
		for c := range h {
			out, err := spmv.Multiply(m, adj, h[c])
			if err != nil {
				return nil, nil, err
			}
			// ReLU: local computation at the node PEs (free in the model).
			for v := range out {
				if out[v] < 0 {
					out[v] = 0
				}
			}
			h[c] = out
		}
	}

	// SortPooling: order nodes by the last channel (ties by node id) and
	// keep the TopK highest-scoring nodes.
	nodeOrder := sortPoolOrder(m, h[len(h)-1])
	picked := nodeOrder[:md.TopK]
	pooled := make([][]float64, md.TopK)
	for r, v := range picked {
		pooled[r] = make([]float64, len(h))
		for c := range h {
			pooled[r][c] = h[c][v]
		}
	}
	return pooled, picked, nil
}

// Reference computes the same forward pass entirely on the host, for
// verification.
func (md Model) Reference(g Graph, feats Features) ([][]float64, []int, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	adj := g.normalizedAdjacency()
	h := feats.Clone()
	for l := 0; l < md.Layers; l++ {
		for c := range h {
			out := adj.MultiplyDense(h[c])
			for v := range out {
				if out[v] < 0 {
					out[v] = 0
				}
			}
			h[c] = out
		}
	}
	score := h[len(h)-1]
	idx := make([]int, g.Nodes)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if score[idx[a]] != score[idx[b]] {
			return score[idx[a]] > score[idx[b]]
		}
		return idx[a] < idx[b]
	})
	picked := idx[:md.TopK]
	pooled := make([][]float64, md.TopK)
	for r, v := range picked {
		pooled[r] = make([]float64, len(h))
		for c := range h {
			pooled[r][c] = h[c][v]
		}
	}
	return pooled, picked, nil
}

// sortPoolOrder sorts node ids by descending score (ties by id) with the
// energy-optimal 2-D mergesort and returns the order.
func sortPoolOrder(m *machine.Machine, score []float64) []int {
	n := len(score)
	side := 1
	for side*side < n {
		side *= 2
	}
	type kv struct {
		s float64
		v int
	}
	r := grid.Square(machine.Coord{}, side)
	t := grid.RowMajor(r)
	for i := 0; i < side*side; i++ {
		e := kv{s: math.Inf(-1), v: i}
		if i < n {
			e = kv{s: score[i], v: i}
		}
		m.Set(t.At(i), "gnn.s", e)
	}
	desc := func(a, b machine.Value) bool {
		x, y := a.(kv), b.(kv)
		if x.s != y.s {
			return x.s > y.s
		}
		return x.v < y.v
	}
	core.MergeSort(m, r, "gnn.s", desc)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = m.Get(t.At(i), "gnn.s").(kv).v
		m.Del(t.At(i), "gnn.s")
	}
	for i := n; i < side*side; i++ {
		m.Del(t.At(i), "gnn.s")
	}
	return out
}
