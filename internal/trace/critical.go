package trace

import "sort"

// CriticalPath records the full event stream of a run and reconstructs,
// on demand, the dependent-message chains that realize the machine's Depth
// and Distance metrics.
//
// Reconstruction walks causality witnesses backwards: a message sent from
// PE x with DepthBefore = k was enabled by an earlier delivery to x whose
// chain depth was exactly k (the sender's clock is the running maximum of
// its deliveries, and parallel-round snapshots and independent-branch
// rollbacks only ever restore values previous deliveries established), so
// an exact-match predecessor always exists while k > 0. Each backward step
// decrements the chain depth by exactly one, which makes the returned
// depth path's length equal the final Depth metric and, symmetrically, the
// distance path's summed Dist equal the final Distance metric.
//
// The sink must observe the run from the start (a fresh or Reset machine);
// memory is O(messages). It is not safe for concurrent use — give each
// machine its own instance, or wrap in Synchronized.
type CriticalPath struct {
	events []Event
}

// NewCriticalPath returns an empty critical-path recorder.
func NewCriticalPath() *CriticalPath { return &CriticalPath{} }

// Event records a copy of e.
func (c *CriticalPath) Event(e *Event) { c.events = append(c.events, *e) }

// Close is a no-op; the recorded events stay available.
func (c *CriticalPath) Close() error { return nil }

// Reset discards the recorded events, keeping the backing buffer, so one
// recorder can observe a sequence of runs on a Reset machine.
func (c *CriticalPath) Reset() {
	for i := range c.events {
		c.events[i].Value = nil // release payload references
	}
	c.events = c.events[:0]
}

// Events returns the recorded events in send order. The slice aliases the
// recorder's buffer; it is invalidated by Reset.
func (c *CriticalPath) Events() []Event { return c.events }

// pathKey identifies "a delivery to pe whose chain value was exactly v" —
// the causality witness a backward step looks up.
type pathKey struct {
	pe Coord
	v  int64
}

// DepthPath returns the chain of dependent messages realizing the depth
// metric: an ordered event slice whose length equals the machine's Depth
// and in which every event departs from the PE the previous one reached.
// It returns nil if no events were recorded.
func (c *CriticalPath) DepthPath() []Event {
	return c.path(
		func(e *Event) (before, after int64) { return e.DepthBefore, e.DepthAfter },
	)
}

// DistancePath returns the chain of dependent messages realizing the
// distance metric: an ordered event slice whose Dist fields sum to the
// machine's Distance. It returns nil if no events were recorded.
func (c *CriticalPath) DistancePath() []Event {
	return c.path(
		func(e *Event) (before, after int64) { return e.DistBefore, e.DistAfter },
	)
}

// path walks back from the event with the maximal after-value through
// exact-match predecessors (latest earlier delivery to the sender with the
// required chain value) until the chain value reaches zero, then reverses.
func (c *CriticalPath) path(chain func(*Event) (before, after int64)) []Event {
	if len(c.events) == 0 {
		return nil
	}
	// Index: (receiver, chain value after delivery) -> event positions in
	// ascending order.
	idx := make(map[pathKey][]int, len(c.events))
	end := 0
	var endAfter int64
	for i := range c.events {
		e := &c.events[i]
		_, after := chain(e)
		k := pathKey{e.To, after}
		idx[k] = append(idx[k], i)
		if after > endAfter {
			endAfter, end = after, i
		}
	}

	var rev []Event
	pos := end
	for {
		e := &c.events[pos]
		rev = append(rev, *e)
		before, _ := chain(e)
		if before == 0 {
			break
		}
		ps := idx[pathKey{e.From, before}]
		// Largest recorded position strictly before pos; a witness always
		// exists (see the type comment), so a miss means the sink did not
		// observe the run from the start.
		j := sort.SearchInts(ps, pos)
		if j == 0 {
			break
		}
		pos = ps[j-1]
	}

	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
