package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ChromeSink streams the event stream as trace_event JSON — the format
// chrome://tracing and Perfetto (https://ui.perfetto.dev) load directly.
//
// Layout: process 0 ("grid") holds one track per grid row, and every
// message is a complete ("X") slice on its sender's row track, one
// sequence tick wide (ts is the message sequence number: the model has no
// wall clock, so trace time is message order). Process 1 ("phases") holds
// the machine's Phase annotations as begin/end scopes — slash-separated
// phase names ("spmv/sort-cols") open nested scopes — plus running energy
// and chain-depth counter tracks.
//
// Events are written as they arrive; Close terminates open scopes and the
// JSON document. The sink owns neither the writer nor its closing. Not
// safe for concurrent use unless wrapped in Synchronized (and with
// several machines feeding one file, ts order interleaves — trace one
// machine, or one worker, per file for readable scopes).
type ChromeSink struct {
	bw      *bufio.Writer
	err     error
	started bool
	first   bool
	rows    map[int]bool
	stack   []string
	lastSeq int64
	count   int64
}

const (
	chromePidGrid   = 0
	chromePidPhases = 1
	// chromeCounterEvery spaces the running energy/depth counter samples;
	// every message would double the file size.
	chromeCounterEvery = 64
)

// NewChromeSink returns a sink streaming trace_event JSON to w.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{bw: bufio.NewWriter(w), rows: make(map[int]bool)}
}

// raw writes one pre-rendered event object, managing commas.
func (s *ChromeSink) raw(line string) {
	if s.err != nil {
		return
	}
	if !s.first {
		_, s.err = s.bw.WriteString(",\n")
		if s.err != nil {
			return
		}
	}
	s.first = false
	_, s.err = s.bw.WriteString(line)
}

func jstr(v string) string {
	b, err := json.Marshal(v)
	if err != nil {
		return `"?"`
	}
	return string(b)
}

func (s *ChromeSink) header() {
	if s.started || s.err != nil {
		return
	}
	s.started = true
	s.first = true
	_, s.err = s.bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	s.raw(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"grid"}}`, chromePidGrid))
	s.raw(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"phases"}}`, chromePidPhases))
}

// rowTrack lazily names the sender-row track.
func (s *ChromeSink) rowTrack(row int) {
	if s.rows[row] {
		return
	}
	s.rows[row] = true
	s.raw(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
		chromePidGrid, row, jstr(fmt.Sprintf("row %d", row))))
	s.raw(fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
		chromePidGrid, row, row))
}

// syncPhases diffs the slash-separated phase path against the open scope
// stack, closing and opening scopes so nesting follows the annotation.
func (s *ChromeSink) syncPhases(phase string, ts int64) {
	var want []string
	if phase != "" {
		want = strings.Split(phase, "/")
	}
	common := 0
	for common < len(want) && common < len(s.stack) && want[common] == s.stack[common] {
		common++
	}
	for i := len(s.stack); i > common; i-- {
		s.raw(fmt.Sprintf(`{"name":%s,"ph":"E","ts":%d,"pid":%d,"tid":0}`,
			jstr(s.stack[i-1]), ts, chromePidPhases))
	}
	s.stack = s.stack[:common]
	for _, name := range want[common:] {
		s.raw(fmt.Sprintf(`{"name":%s,"ph":"B","ts":%d,"pid":%d,"tid":0}`,
			jstr(name), ts, chromePidPhases))
		s.stack = append(s.stack, name)
	}
}

// Event streams one message.
func (s *ChromeSink) Event(e *Event) {
	if s.err != nil {
		return
	}
	s.header()
	s.rowTrack(e.From.Row)
	s.syncPhases(e.Phase, e.Seq)
	s.lastSeq = e.Seq
	s.raw(fmt.Sprintf(`{"name":%s,"cat":"send","ph":"X","ts":%d,"dur":1,"pid":%d,"tid":%d,`+
		`"args":{"seq":%d,"from":"(%d,%d)","to":"(%d,%d)","dist":%d,"value":%s,"depth":%d,"chain_dist":%d,"energy":%d}}`,
		jstr(fmt.Sprintf("send d=%d", e.Dist)), e.Seq, chromePidGrid, e.From.Row,
		e.Seq, e.From.Row, e.From.Col, e.To.Row, e.To.Col, e.Dist,
		jstr(fmt.Sprint(e.Value)), e.DepthAfter, e.DistAfter, e.EnergyCum))
	s.count++
	if s.count%chromeCounterEvery == 1 {
		s.raw(fmt.Sprintf(`{"name":"energy","ph":"C","ts":%d,"pid":%d,"args":{"energy":%d}}`,
			e.Seq, chromePidPhases, e.EnergyCum))
		s.raw(fmt.Sprintf(`{"name":"chain depth","ph":"C","ts":%d,"pid":%d,"args":{"depth":%d}}`,
			e.Seq, chromePidPhases, e.DepthAfter))
	}
}

// Close ends open phase scopes, terminates the JSON document and flushes.
// A sink that saw no events still writes a valid empty trace.
func (s *ChromeSink) Close() error {
	s.header()
	s.syncPhases("", s.lastSeq+1)
	if s.err == nil {
		_, s.err = s.bw.WriteString("\n]}\n")
	}
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}
