// Package trace is the structured observability layer of the Spatial
// Computer Model simulator: every message the machine sends becomes one
// typed Event that flows through a pluggable Sink.
//
// The paper's three cost metrics — energy, depth, distance (Section III) —
// are end-of-run totals; the event stream is the evidence behind them.
// Composable built-in sinks answer the questions the totals cannot:
//
//   - CriticalPath reconstructs the dependent-message chain that realizes
//     the Depth bound (and the chain realizing the Distance bound), so the
//     longest chain can be inspected message by message.
//   - Heatmap aggregates per-PE send/receive counts, traffic and per-link
//     load under XY routing into a dense grid for rendering.
//   - Counters buckets energy, depth, messages and a distance histogram by
//     phase for harness tables.
//   - ChromeSink streams trace_event JSON loadable in chrome://tracing and
//     Perfetto, one track per grid row, phases as nested scopes.
//
// The package is deliberately dependency-free so that internal/machine,
// spatialdf and the cmd/ tools can all import it without reaching into one
// another.
package trace

import "sync"

// Coord identifies the processing element p_{Row,Col} on the simulated
// grid. It mirrors the machine's coordinate type (the grid is unbounded;
// negative coordinates are valid) without importing it.
type Coord struct {
	Row, Col int
}

// Event describes one message send. DepthBefore/DistBefore are the
// sender's causality clock when the message left (for sends inside a
// parallel round: the clock at the start of the round), so
//
//	DepthAfter = DepthBefore + 1    and    DistAfter = DistBefore + Dist
//
// always hold — DepthAfter is the length in messages, and DistAfter the
// summed distance, of the longest dependent-message chain ending with this
// message. EnergyCum is the machine's total energy including this message.
type Event struct {
	// Seq is the 1-based message sequence number (the machine's message
	// counter after this send).
	Seq      int64
	From, To Coord
	// Dist is the Manhattan distance from From to To — the energy this
	// message costs.
	Dist  int64
	Value any
	// DepthBefore/DepthAfter are the sender's chain depth before the send
	// and the resulting chain depth of this message.
	DepthBefore, DepthAfter int64
	// DistBefore/DistAfter are the corresponding summed chain distances.
	DistBefore, DistAfter int64
	// EnergyCum is the machine's cumulative energy after this message.
	EnergyCum int64
	// Phase is the machine's current Phase annotation ("" if none). Slash
	// separators ("spmv/sort-cols") render as nested scopes in ChromeSink.
	Phase string
}

// Sink consumes the event stream. The *Event passed to Event is only valid
// for the duration of the call — implementations that retain it must copy.
// Close flushes any buffered output; the machine never calls it, the owner
// of the sink does.
//
// A sink attached to a machine is invoked synchronously on the send path,
// so it must not call back into the machine. Sinks are not safe for
// concurrent use unless wrapped in Synchronized.
type Sink interface {
	Event(e *Event)
	Close() error
}

// SinkFunc adapts a function to the Sink interface (Close is a no-op).
type SinkFunc func(e *Event)

// Event calls f.
func (f SinkFunc) Event(e *Event) { f(e) }

// Close is a no-op.
func (SinkFunc) Close() error { return nil }

// multi fans one event stream out to several sinks in order.
type multi struct {
	sinks []Sink
}

// Multi returns a sink forwarding every event to each of sinks in order.
// Close closes them all and returns the first error. Nil sinks are
// skipped; Multi() of zero or one sink returns the trivial equivalent.
func Multi(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multi{sinks: kept}
}

func (m *multi) Event(e *Event) {
	for _, s := range m.sinks {
		s.Event(e)
	}
}

func (m *multi) Close() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// synchronized serializes access to a sink shared across goroutines.
type synchronized struct {
	mu sync.Mutex
	s  Sink
}

// Synchronized wraps s so that Event and Close may be called from multiple
// goroutines — e.g. one aggregating Heatmap shared by all workers of a
// parallel sweep. Events from different goroutines interleave in lock
// order.
func Synchronized(s Sink) Sink {
	if s == nil {
		return nil
	}
	return &synchronized{s: s}
}

func (y *synchronized) Event(e *Event) {
	y.mu.Lock()
	y.s.Event(e)
	y.mu.Unlock()
}

func (y *synchronized) Close() error {
	y.mu.Lock()
	defer y.mu.Unlock()
	return y.s.Close()
}

// Walk calls fn for s and, recursively, for every sink wrapped inside the
// package's combinators (Multi fan-outs and Synchronized wrappers). Use it
// to locate a concrete sink — e.g. the CriticalPath inside a composed
// pipeline — after a run.
func Walk(s Sink, fn func(Sink)) {
	if s == nil {
		return
	}
	fn(s)
	switch t := s.(type) {
	case *multi:
		for _, inner := range t.sinks {
			Walk(inner, fn)
		}
	case *synchronized:
		Walk(t.s, fn)
	}
}
