package trace

import "math/bits"

// DistBuckets is the number of log2 buckets of the per-phase message
// distance histogram: bucket i counts messages with distance in
// [2^(i-1)+1, 2^i] (bucket 0 counts distance-1 messages). The last bucket
// absorbs everything longer.
const DistBuckets = 24

// PhaseCounters aggregates the messages of one phase.
type PhaseCounters struct {
	// Phase is the machine Phase annotation ("" for unannotated traffic).
	Phase string
	// Messages and Energy are the phase's message count and summed
	// message distance.
	Messages, Energy int64
	// MaxDepth/MaxDistance are the largest chain depth / chain distance
	// reached by any message of the phase (chains may have started in
	// earlier phases; these are the running DepthAfter/DistAfter maxima).
	MaxDepth, MaxDistance int64
	// FirstSeq/LastSeq delimit the phase's span of the message sequence.
	FirstSeq, LastSeq int64
	// DistHist is a log2 histogram of message distances: short-range
	// neighbor traffic lands in the low buckets, long-haul routing in the
	// high ones.
	DistHist [DistBuckets]int64
}

func distBucket(d int64) int {
	if d <= 1 {
		return 0
	}
	b := bits.Len64(uint64(d - 1)) // smallest b with 2^b >= d
	if b >= DistBuckets {
		return DistBuckets - 1
	}
	return b
}

// Counters buckets the event stream by phase, in first-seen order —
// the phase-level summary the sweep harness and tests consume. Not safe
// for concurrent use unless wrapped in Synchronized.
type Counters struct {
	order   []string
	byPhase map[string]*PhaseCounters
	total   PhaseCounters
}

// NewCounters returns an empty phase-bucketed counter sink.
func NewCounters() *Counters {
	return &Counters{byPhase: make(map[string]*PhaseCounters)}
}

// Event accumulates one message into its phase bucket and the total.
func (c *Counters) Event(e *Event) {
	pc := c.byPhase[e.Phase]
	if pc == nil {
		pc = &PhaseCounters{Phase: e.Phase, FirstSeq: e.Seq}
		c.byPhase[e.Phase] = pc
		c.order = append(c.order, e.Phase)
	}
	for _, p := range [2]*PhaseCounters{pc, &c.total} {
		if p.Messages == 0 {
			p.FirstSeq = e.Seq
		}
		p.Messages++
		p.Energy += e.Dist
		if e.DepthAfter > p.MaxDepth {
			p.MaxDepth = e.DepthAfter
		}
		if e.DistAfter > p.MaxDistance {
			p.MaxDistance = e.DistAfter
		}
		p.LastSeq = e.Seq
		p.DistHist[distBucket(e.Dist)]++
	}
}

// Close is a no-op; the aggregated counters stay available.
func (c *Counters) Close() error { return nil }

// Phases returns per-phase aggregates in first-seen order.
func (c *Counters) Phases() []PhaseCounters {
	out := make([]PhaseCounters, len(c.order))
	for i, name := range c.order {
		out[i] = *c.byPhase[name]
	}
	return out
}

// Total returns the aggregate over all phases (Phase is "").
func (c *Counters) Total() PhaseCounters {
	t := c.total
	t.Phase = ""
	return t
}
