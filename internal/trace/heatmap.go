package trace

import (
	"fmt"
	"io"
)

// LinkDir identifies the four outgoing directed mesh links of a PE.
type LinkDir int

const (
	LinkEast LinkDir = iota
	LinkWest
	LinkSouth
	LinkNorth
)

func (d LinkDir) String() string {
	switch d {
	case LinkEast:
		return "east"
	case LinkWest:
		return "west"
	case LinkSouth:
		return "south"
	case LinkNorth:
		return "north"
	}
	return fmt.Sprintf("LinkDir(%d)", int(d))
}

// HeatCell aggregates the traffic of one PE.
type HeatCell struct {
	// Sends/Recvs count messages originating at / delivered to the PE.
	Sends, Recvs int64
	// SendTraffic/RecvTraffic sum the Manhattan distances of those
	// messages — the PE's contribution to the energy metric, split by
	// endpoint.
	SendTraffic, RecvTraffic int64
	// Link counts traversals of the PE's four outgoing directed mesh
	// links under dimension-ordered (X-then-Y) routing, indexed by
	// LinkDir.
	Link [4]int64
}

// Traffic is the PE's total traffic (send + receive distance sums), the
// intensity the heatmap renderers use.
func (c HeatCell) Traffic() int64 { return c.SendTraffic + c.RecvTraffic }

// Heatmap aggregates per-PE message counts and per-link load over a run
// (or over many runs — cells accumulate across machine Resets, which is
// what a sweep-wide heatmap wants). Messages are routed hop by hop along
// the dimension-ordered (X-then-Y) path a mesh NoC would use, the same
// discipline as the machine's congestion tracker, so per-event cost is
// O(distance). Not safe for concurrent use unless wrapped in Synchronized.
type Heatmap struct {
	cells   map[Coord]*HeatCell
	maxLink int64
	events  int64

	// Fabric mapping (SetFabric): when fabW > 0, event endpoints fold onto
	// a fabW×fabH physical fabric (fabBlock consecutive virtual cells per
	// physical PE per axis, panes repeating periodically) and links are
	// walked on the fabric — wrap-aware when fabTorus — so the heatmap
	// shows load on physical links, mirroring the machine's finite
	// backends.
	fabW, fabH, fabBlock int
	fabTorus             bool
}

// NewHeatmap returns an empty heatmap.
func NewHeatmap() *Heatmap {
	return &Heatmap{cells: make(map[Coord]*HeatCell)}
}

// SetFabric folds all subsequent events onto a w×h physical fabric with the
// given per-axis fold block before aggregating, and routes their links on
// that fabric (with wraparound links when torus is true). Call it before
// the first event; coordinates in the aggregated cells are then physical
// fabric coordinates in [0,h)×[0,w). Matches the folding of the machine's
// mesh/torus backends, so a heatmap fed by a machine running the same
// backend shows the same per-link loads as its congestion tracker.
func (h *Heatmap) SetFabric(w, hgt, block int, torus bool) {
	if w < 1 || hgt < 1 {
		panic(fmt.Sprintf("trace: SetFabric with non-positive fabric %dx%d", w, hgt))
	}
	if block < 1 {
		block = 1
	}
	// Mirror machine.Backend's pane-span cap: foldAxis computes size*block,
	// which wraps for adversarial blocks and then divides by zero. Callers
	// pass validated backends, so this is a programmer-error guard.
	if block > maxFoldSpan/max(w, hgt) {
		panic(fmt.Sprintf("trace: SetFabric fold block %d exceeds pane span cap %d", block, maxFoldSpan))
	}
	h.fabW, h.fabH, h.fabBlock, h.fabTorus = w, hgt, block, torus
}

// maxFoldSpan bounds size*block in foldAxis, matching
// machine.Backend.validate's cap so validated backends always pass
// SetFabric.
const maxFoldSpan = 1 << 30

// foldAxis maps a virtual axis coordinate onto its physical home: the pane
// of size·block cells repeats periodically (Euclidean modulo handles
// negative scratch coordinates), block consecutive cells per physical PE.
func foldAxis(v, size, block int) int {
	span := size * block
	u := v % span
	if u < 0 {
		u += span
	}
	return u / block
}

func (h *Heatmap) fold(c Coord) Coord {
	if h.fabW == 0 {
		return c
	}
	return Coord{Row: foldAxis(c.Row, h.fabH, h.fabBlock), Col: foldAxis(c.Col, h.fabW, h.fabBlock)}
}

func (h *Heatmap) cell(c Coord) *HeatCell {
	hc := h.cells[c]
	if hc == nil {
		hc = &HeatCell{}
		h.cells[c] = hc
	}
	return hc
}

// Event accumulates one message.
func (h *Heatmap) Event(e *Event) {
	h.events++
	from, to := h.fold(e.From), h.fold(e.To)
	src := h.cell(from)
	src.Sends++
	src.SendTraffic += e.Dist
	dst := h.cell(to)
	dst.Recvs++
	dst.RecvTraffic += e.Dist

	// XY walk: column-first, then row, bumping the outgoing link of every
	// intermediate PE.
	cur := from
	bump := func(d LinkDir) {
		l := &h.cell(cur).Link[d]
		*l++
		if *l > h.maxLink {
			h.maxLink = *l
		}
	}
	if h.fabTorus {
		// Shorter way around each ring (east/south on a tie), wrapping at
		// the fabric edges — the same discipline as the machine's torus
		// congestion router.
		east := (to.Col - cur.Col) % h.fabW
		if east < 0 {
			east += h.fabW
		}
		if east <= h.fabW-east {
			for i := 0; i < east; i++ {
				bump(LinkEast)
				cur.Col = (cur.Col + 1) % h.fabW
			}
		} else {
			for i := 0; i < h.fabW-east; i++ {
				bump(LinkWest)
				cur.Col = (cur.Col - 1 + h.fabW) % h.fabW
			}
		}
		south := (to.Row - cur.Row) % h.fabH
		if south < 0 {
			south += h.fabH
		}
		if south <= h.fabH-south {
			for i := 0; i < south; i++ {
				bump(LinkSouth)
				cur.Row = (cur.Row + 1) % h.fabH
			}
		} else {
			for i := 0; i < h.fabH-south; i++ {
				bump(LinkNorth)
				cur.Row = (cur.Row - 1 + h.fabH) % h.fabH
			}
		}
		return
	}
	for cur.Col < to.Col {
		bump(LinkEast)
		cur.Col++
	}
	for cur.Col > to.Col {
		bump(LinkWest)
		cur.Col--
	}
	for cur.Row < to.Row {
		bump(LinkSouth)
		cur.Row++
	}
	for cur.Row > to.Row {
		bump(LinkNorth)
		cur.Row--
	}
}

// Close is a no-op; the aggregated cells stay available.
func (h *Heatmap) Close() error { return nil }

// Events returns the number of messages aggregated.
func (h *Heatmap) Events() int64 { return h.events }

// MaxLinkLoad returns the highest traversal count over any directed link —
// under XY routing this matches the machine's MaxCongestion.
func (h *Heatmap) MaxLinkLoad() int64 { return h.maxLink }

// Cell returns the aggregate for PE c (the zero cell if untouched).
func (h *Heatmap) Cell(c Coord) HeatCell {
	if hc := h.cells[c]; hc != nil {
		return *hc
	}
	return HeatCell{}
}

// Bounds returns the bounding box of all touched cells; ok is false when
// the heatmap is empty.
func (h *Heatmap) Bounds() (min, max Coord, ok bool) {
	for c := range h.cells {
		if !ok {
			min, max, ok = c, c, true
			continue
		}
		if c.Row < min.Row {
			min.Row = c.Row
		}
		if c.Row > max.Row {
			max.Row = c.Row
		}
		if c.Col < min.Col {
			min.Col = c.Col
		}
		if c.Col > max.Col {
			max.Col = c.Col
		}
	}
	return min, max, ok
}

// Grid returns the aggregates as a dense row-major grid covering the
// bounding box, with origin its top-left coordinate. An empty heatmap
// returns a nil grid.
func (h *Heatmap) Grid() (origin Coord, cells [][]HeatCell) {
	min, max, ok := h.Bounds()
	if !ok {
		return Coord{}, nil
	}
	rows := max.Row - min.Row + 1
	cols := max.Col - min.Col + 1
	cells = make([][]HeatCell, rows)
	for r := range cells {
		cells[r] = make([]HeatCell, cols)
	}
	for c, hc := range h.cells {
		cells[c.Row-min.Row][c.Col-min.Col] = *hc
	}
	return min, cells
}

// WriteCSV emits one line per touched PE, sorted row-major, with the
// header row,col,sends,recvs,send_traffic,recv_traffic,east,west,south,north.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "row,col,sends,recvs,send_traffic,recv_traffic,east,west,south,north"); err != nil {
		return err
	}
	origin, grid := h.Grid()
	for r, rowCells := range grid {
		for c := range rowCells {
			hc := &rowCells[c]
			if *hc == (HeatCell{}) {
				continue
			}
			if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
				origin.Row+r, origin.Col+c, hc.Sends, hc.Recvs, hc.SendTraffic, hc.RecvTraffic,
				hc.Link[LinkEast], hc.Link[LinkWest], hc.Link[LinkSouth], hc.Link[LinkNorth]); err != nil {
				return err
			}
		}
	}
	return nil
}
