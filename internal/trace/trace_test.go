package trace_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

// checkChain verifies that path is a well-formed dependent-message chain:
// consecutive events share a PE and their chain values telescope.
func checkChain(t *testing.T, path []trace.Event) {
	t.Helper()
	for i := 1; i < len(path); i++ {
		if path[i].From != path[i-1].To {
			t.Fatalf("path step %d departs from %v but step %d arrived at %v",
				i, path[i].From, i-1, path[i-1].To)
		}
		if path[i].Seq <= path[i-1].Seq {
			t.Fatalf("path step %d seq %d not after step %d seq %d", i, path[i].Seq, i-1, path[i-1].Seq)
		}
	}
	for i, e := range path {
		if e.DepthAfter != e.DepthBefore+1 {
			t.Fatalf("step %d depth %d -> %d not one message", i, e.DepthBefore, e.DepthAfter)
		}
		if e.DistAfter != e.DistBefore+e.Dist {
			t.Fatalf("step %d dist %d -> %d with message dist %d", i, e.DistBefore, e.DistAfter, e.Dist)
		}
	}
}

// checkCriticalPath verifies the two reconstructed chains against the
// machine's metrics: depth path length == Depth, distance path sum ==
// Distance.
func checkCriticalPath(t *testing.T, cp *trace.CriticalPath, mm machine.Metrics) {
	t.Helper()
	dp := cp.DepthPath()
	checkChain(t, dp)
	if int64(len(dp)) != mm.Depth {
		t.Errorf("depth path has %d messages, Depth = %d", len(dp), mm.Depth)
	}
	if n := len(dp); n > 0 {
		if dp[0].DepthBefore != 0 || dp[n-1].DepthAfter != mm.Depth {
			t.Errorf("depth path spans %d..%d, want 0..%d", dp[0].DepthBefore, dp[n-1].DepthAfter, mm.Depth)
		}
	}
	sp := cp.DistancePath()
	checkChain(t, sp)
	var sum int64
	for _, e := range sp {
		sum += e.Dist
	}
	if sum != mm.Distance {
		t.Errorf("distance path sums to %d, Distance = %d", sum, mm.Distance)
	}
	if n := len(sp); n > 0 {
		if sp[0].DistBefore != 0 || sp[n-1].DistAfter != mm.Distance {
			t.Errorf("distance path spans %d..%d, want 0..%d", sp[0].DistBefore, sp[n-1].DistAfter, mm.Distance)
		}
	}
}

func TestCriticalPathRelayChain(t *testing.T) {
	m := machine.New()
	cp := trace.NewCriticalPath()
	m.SetSink(cp)
	m.Set(machine.Coord{Row: 0, Col: 0}, "v", 1.0)
	for i := 0; i < 20; i++ {
		m.Send(machine.Coord{Row: 0, Col: i}, "v", machine.Coord{Row: 0, Col: i + 1}, "v")
	}
	// A short independent detour that must not appear in the chain.
	m.SendValue(machine.Coord{Row: 5, Col: 5}, machine.Coord{Row: 5, Col: 6}, "w", 2.0)
	checkCriticalPath(t, cp, m.Metrics())
	if dp := cp.DepthPath(); len(dp) != 20 {
		t.Fatalf("depth path %d messages, want 20", len(dp))
	}
}

func TestCriticalPathParAndIndependent(t *testing.T) {
	m := machine.New()
	cp := trace.NewCriticalPath()
	m.SetSink(cp)
	for i := 0; i < 8; i++ {
		m.Set(machine.Coord{Row: 0, Col: i}, "v", float64(i))
	}
	// Parallel rounds: tree reduction to column 0.
	for stride := 1; stride < 8; stride *= 2 {
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for i := 0; i+stride < 8; i += 2 * stride {
				send(machine.Coord{Row: 0, Col: i + stride}, machine.Coord{Row: 0, Col: i}, "w", 1.0)
			}
		})
	}
	// Independent branches relaying through a shared PE must not chain.
	shared := machine.Coord{Row: 3, Col: 3}
	m.Independent(
		func() {
			m.SendValue(machine.Coord{Row: 0, Col: 0}, shared, "a", 1.0)
			m.SendValue(shared, machine.Coord{Row: 6, Col: 6}, "a", 1.0)
		},
		func() {
			m.SendValue(machine.Coord{Row: 0, Col: 7}, shared, "b", 2.0)
			m.SendValue(shared, machine.Coord{Row: 6, Col: 0}, "b", 2.0)
		},
	)
	checkCriticalPath(t, cp, m.Metrics())
}

func TestCriticalPathRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		m := machine.New()
		cp := trace.NewCriticalPath()
		m.SetSink(cp)
		const side = 5
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				m.Set(machine.Coord{Row: r, Col: c}, "v", 1.0)
			}
		}
		at := func() machine.Coord { return machine.Coord{Row: rng.Intn(side), Col: rng.Intn(side)} }
		for step := 0; step < 40; step++ {
			switch rng.Intn(3) {
			case 0:
				m.SendValue(at(), at(), "v", 1.0)
			case 1:
				m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
					for k := rng.Intn(6); k >= 0; k-- {
						send(at(), at(), "v", 1.0)
					}
				})
			case 2:
				m.Independent(
					func() { m.SendValue(at(), at(), "v", 1.0) },
					func() {
						m.SendValue(at(), at(), "v", 1.0)
						m.SendValue(at(), at(), "v", 1.0)
					},
				)
			}
		}
		checkCriticalPath(t, cp, m.Metrics())
	}
}

func TestCriticalPathReset(t *testing.T) {
	m := machine.New()
	cp := trace.NewCriticalPath()
	m.SetSink(cp)
	m.Set(machine.Coord{Row: 0, Col: 0}, "v", 1.0)
	m.Send(machine.Coord{Row: 0, Col: 0}, "v", machine.Coord{Row: 0, Col: 9}, "v")
	m.Reset()
	cp.Reset()
	m.Set(machine.Coord{Row: 0, Col: 0}, "v", 1.0)
	m.Send(machine.Coord{Row: 0, Col: 0}, "v", machine.Coord{Row: 0, Col: 2}, "v")
	m.Send(machine.Coord{Row: 0, Col: 2}, "v", machine.Coord{Row: 0, Col: 4}, "v")
	checkCriticalPath(t, cp, m.Metrics())
	if len(cp.Events()) != 2 {
		t.Errorf("recorded %d events after Reset, want 2", len(cp.Events()))
	}
}

func TestHeatmapAgainstMachineAccounting(t *testing.T) {
	m := machine.New()
	h := trace.NewHeatmap()
	m.SetSink(h)
	m.EnableCongestionTracking()
	rng := rand.New(rand.NewSource(3))
	m.Set(machine.Coord{Row: 0, Col: 0}, "v", 1.0)
	var sends int64
	for i := 0; i < 50; i++ {
		from := machine.Coord{Row: rng.Intn(8), Col: rng.Intn(8)}
		to := machine.Coord{Row: rng.Intn(8), Col: rng.Intn(8)}
		if from == to {
			continue
		}
		m.SendValue(from, to, "v", 1.0)
		sends++
	}
	if h.Events() != sends {
		t.Errorf("heatmap saw %d events, want %d", h.Events(), sends)
	}
	mm := m.Metrics()
	var sendSum, recvSum, sendN, recvN, linkSum int64
	_, grid := h.Grid()
	for _, row := range grid {
		for _, cell := range row {
			sendSum += cell.SendTraffic
			recvSum += cell.RecvTraffic
			sendN += cell.Sends
			recvN += cell.Recvs
			for _, l := range cell.Link {
				linkSum += l
			}
		}
	}
	if sendSum != mm.Energy || recvSum != mm.Energy {
		t.Errorf("traffic sums (%d,%d) != energy %d", sendSum, recvSum, mm.Energy)
	}
	if sendN != mm.Messages || recvN != mm.Messages {
		t.Errorf("counts (%d,%d) != messages %d", sendN, recvN, mm.Messages)
	}
	// XY routing: total link traversals equal energy, and the peak matches
	// the machine's own congestion tracker.
	if linkSum != mm.Energy {
		t.Errorf("link traversals %d != energy %d", linkSum, mm.Energy)
	}
	if h.MaxLinkLoad() != m.MaxCongestion() {
		t.Errorf("heatmap max link %d != machine congestion %d", h.MaxLinkLoad(), m.MaxCongestion())
	}
}

// TestHeatmapFabricMatchesBackendCongestion: a heatmap folded onto the
// same fabric as the machine's finite backend reproduces the machine's
// per-link accounting — peak link load and total traversals (== energy).
func TestHeatmapFabricMatchesBackendCongestion(t *testing.T) {
	for _, tc := range []struct {
		spec  string
		torus bool
	}{
		{"mesh:6x6:2", false},
		{"torus:6x6:2", true},
	} {
		b, err := machine.ParseBackend(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.New()
		m.SetBackend(b)
		m.EnableCongestionTracking()
		h := trace.NewHeatmap()
		h.SetFabric(b.W, b.H, b.Block, tc.torus)
		m.SetSink(h)
		m.Par(func(send func(from, to machine.Coord, dstReg machine.Reg, v machine.Value)) {
			for i := 0; i < 12; i++ {
				send(machine.Coord{Row: i, Col: 0}, machine.Coord{Row: (i * 5) % 12, Col: 11 - i}, "v", i)
			}
		})
		mm := m.Metrics()
		if h.MaxLinkLoad() != m.MaxCongestion() {
			t.Errorf("%s: heatmap max link %d != machine congestion %d", tc.spec, h.MaxLinkLoad(), m.MaxCongestion())
		}
		var linkSum int64
		origin, grid := h.Grid()
		for _, row := range grid {
			for _, cell := range row {
				for _, l := range cell.Link {
					linkSum += l
				}
			}
		}
		if linkSum != mm.Energy {
			t.Errorf("%s: link traversals %d != energy %d", tc.spec, linkSum, mm.Energy)
		}
		// All cells live on the physical fabric.
		if origin.Row < 0 || origin.Col < 0 {
			t.Errorf("%s: heatmap origin %v outside the fabric", tc.spec, origin)
		}
		if len(grid) > b.H || (len(grid) > 0 && len(grid[0]) > b.W) {
			t.Errorf("%s: heatmap %dx%d exceeds fabric %dx%d", tc.spec, len(grid), len(grid[0]), b.H, b.W)
		}
	}
}

// TestHeatmapSetFabricOverflowPanics: a fold block large enough to wrap
// size*block in foldAxis must be refused up front (programmer-error panic)
// instead of dividing by zero on the first event.
func TestHeatmapSetFabricOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetFabric with overflowing fold block did not panic")
		}
	}()
	trace.NewHeatmap().SetFabric(4, 4, 4611686018427387904, false)
}

func TestHeatmapCSV(t *testing.T) {
	h := trace.NewHeatmap()
	e := trace.Event{From: trace.Coord{Row: 0, Col: 0}, To: trace.Coord{Row: 0, Col: 2}, Dist: 2}
	h.Event(&e)
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + (0,0) + (0,1) + (0,2)
		t.Fatalf("CSV = %q, want header + 3 cells", buf.String())
	}
	if lines[1] != "0,0,1,0,2,0,1,0,0,0" {
		t.Errorf("sender cell line = %q", lines[1])
	}
	if lines[2] != "0,1,0,0,0,0,1,0,0,0" {
		t.Errorf("relay cell line = %q", lines[2])
	}
	if lines[3] != "0,2,0,1,0,2,0,0,0,0" {
		t.Errorf("receiver cell line = %q", lines[3])
	}
}

func TestCountersPhases(t *testing.T) {
	m := machine.New()
	c := trace.NewCounters()
	m.SetSink(c)
	m.Set(machine.Coord{Row: 0, Col: 0}, "v", 1.0)
	m.Phase("up")
	m.Send(machine.Coord{Row: 0, Col: 0}, "v", machine.Coord{Row: 0, Col: 1}, "v")
	m.Send(machine.Coord{Row: 0, Col: 1}, "v", machine.Coord{Row: 0, Col: 3}, "v")
	m.Phase("down")
	m.Send(machine.Coord{Row: 0, Col: 3}, "v", machine.Coord{Row: 0, Col: 7}, "v")
	phases := c.Phases()
	if len(phases) != 2 || phases[0].Phase != "up" || phases[1].Phase != "down" {
		t.Fatalf("phases = %+v", phases)
	}
	up, down := phases[0], phases[1]
	if up.Messages != 2 || up.Energy != 3 || up.MaxDepth != 2 {
		t.Errorf("up = %+v", up)
	}
	if down.Messages != 1 || down.Energy != 4 || down.MaxDepth != 3 || down.MaxDistance != 7 {
		t.Errorf("down = %+v", down)
	}
	if up.FirstSeq != 1 || up.LastSeq != 2 || down.FirstSeq != 3 {
		t.Errorf("seq spans: up %d..%d down %d..%d", up.FirstSeq, up.LastSeq, down.FirstSeq, down.LastSeq)
	}
	mm := m.Metrics()
	total := c.Total()
	if total.Messages != mm.Messages || total.Energy != mm.Energy ||
		total.MaxDepth != mm.Depth || total.MaxDistance != mm.Distance {
		t.Errorf("total %+v disagrees with metrics %v", total, mm)
	}
	// Histogram: distances 1, 2, 4 land in buckets 0, 1, 2.
	var histSum int64
	for _, n := range total.DistHist {
		histSum += n
	}
	if histSum != total.Messages {
		t.Errorf("histogram sums to %d, want %d", histSum, total.Messages)
	}
	if total.DistHist[0] != 1 || total.DistHist[1] != 1 || total.DistHist[2] != 1 {
		t.Errorf("histogram = %v", total.DistHist[:4])
	}
}

// chromeDoc mirrors the trace_event JSON object format.
type chromeDoc struct {
	TraceEvents []map[string]any `json:"traceEvents"`
}

func TestChromeSinkValidJSON(t *testing.T) {
	m := machine.New()
	var buf bytes.Buffer
	cs := trace.NewChromeSink(&buf)
	m.SetSink(cs)
	m.Set(machine.Coord{Row: 0, Col: 0}, "v", 1.0)
	m.Phase("spmv/sort")
	m.Send(machine.Coord{Row: 0, Col: 0}, "v", machine.Coord{Row: 1, Col: 1}, "v")
	m.Phase("spmv/scan")
	m.Send(machine.Coord{Row: 1, Col: 1}, "v", machine.Coord{Row: 2, Col: 0}, "v")
	m.Phase("")
	m.Send(machine.Coord{Row: 2, Col: 0}, "v", machine.Coord{Row: 0, Col: 0}, "w")
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var sends int
	depth := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event without name: %v", ev)
		}
		switch ph {
		case "X":
			sends++
			if ev["dur"] == nil || ev["ts"] == nil {
				t.Fatalf("X event missing ts/dur: %v", ev)
			}
		case "B":
			depth["scope"]++
		case "E":
			depth["scope"]--
			if depth["scope"] < 0 {
				t.Fatal("scope end without begin")
			}
		case "M", "C":
		default:
			t.Fatalf("unexpected ph %q", ph)
		}
	}
	if sends != 3 {
		t.Errorf("trace holds %d X events, want 3", sends)
	}
	if depth["scope"] != 0 {
		t.Errorf("unbalanced phase scopes: %d left open", depth["scope"])
	}
}

func TestChromeSinkEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	cs := trace.NewChromeSink(&buf)
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
}

type errSink struct{ err error }

func (s errSink) Event(*trace.Event) {}
func (s errSink) Close() error       { return s.err }

func TestMultiSynchronizedWalk(t *testing.T) {
	var a, b int
	sa := trace.SinkFunc(func(*trace.Event) { a++ })
	sb := trace.SinkFunc(func(*trace.Event) { b++ })
	cp := trace.NewCriticalPath()
	boom := errors.New("boom")
	s := trace.Multi(trace.Synchronized(sa), nil, trace.Multi(sb, cp), errSink{boom})
	e := trace.Event{Seq: 1, From: trace.Coord{Row: 0, Col: 0}, To: trace.Coord{Row: 0, Col: 1}, Dist: 1, DepthAfter: 1, DistAfter: 1}
	s.Event(&e)
	if a != 1 || b != 1 || len(cp.Events()) != 1 {
		t.Errorf("fan-out reached (%d,%d,%d) sinks", a, b, len(cp.Events()))
	}
	if err := s.Close(); err != boom {
		t.Errorf("Close = %v, want boom", err)
	}
	var found *trace.CriticalPath
	trace.Walk(s, func(inner trace.Sink) {
		if c, ok := inner.(*trace.CriticalPath); ok {
			found = c
		}
	})
	if found != cp {
		t.Error("Walk did not find the nested CriticalPath")
	}
	if trace.Multi() != nil || trace.Multi(nil) != nil || trace.Synchronized(nil) != nil {
		t.Error("empty combinators should collapse to nil")
	}
	if one := trace.Multi(cp); one != trace.Sink(cp) {
		t.Error("Multi of one sink should return it unwrapped")
	}
}
