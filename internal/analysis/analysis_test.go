package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFitExponentExact(t *testing.T) {
	cases := []struct {
		exp  float64
		want float64
	}{{1, 1}, {1.5, 1.5}, {2.5, 2.5}, {0.5, 0.5}}
	for _, c := range cases {
		var pts []Point
		for _, n := range []float64{64, 256, 1024, 4096} {
			pts = append(pts, Point{N: n, Cost: 3 * math.Pow(n, c.exp)})
		}
		got := FitExponent(pts)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("exponent %v: fit %v", c.exp, got)
		}
	}
}

func TestFitExponentQuick(t *testing.T) {
	// Property: the fit recovers arbitrary power laws exactly.
	f := func(e8 uint8, c8 uint8) bool {
		exp := float64(e8%40)/10 + 0.1
		coef := float64(c8%50) + 1
		var pts []Point
		for _, n := range []float64{16, 64, 256} {
			pts = append(pts, Point{N: n, Cost: coef * math.Pow(n, exp)})
		}
		return math.Abs(FitExponent(pts)-exp) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitExponentIgnoresInvalid(t *testing.T) {
	pts := []Point{{N: -1, Cost: 10}, {N: 10, Cost: 0}, {N: 4, Cost: 16}, {N: 8, Cost: 64}}
	if got := FitExponent(pts); math.Abs(got-2) > 1e-9 {
		t.Errorf("fit %v, want 2", got)
	}
	if !math.IsNaN(FitExponent(nil)) {
		t.Error("empty fit should be NaN")
	}
	if !math.IsNaN(FitExponent([]Point{{N: 4, Cost: 2}})) {
		t.Error("single-point fit should be NaN")
	}
}

func TestFitLogExponent(t *testing.T) {
	var pts []Point
	for _, n := range []float64{256, 1024, 4096, 16384, 65536} {
		l := math.Log(n)
		pts = append(pts, Point{N: n, Cost: 7 * l * l * l})
	}
	got := FitLogExponent(pts)
	if math.Abs(got-3) > 1e-6 {
		t.Errorf("log exponent fit %v, want 3", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "n", "energy")
	tb.AddRow("scan", 1024, 4096.0)
	tb.AddRow("sort", 64, 1.23456e9)
	s := tb.String()
	if !strings.Contains(s, "scan") || !strings.Contains(s, "energy") {
		t.Errorf("table output missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,n,energy\n") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("name", "n")
	tb.AddRow("scan", 1024)
	got := tb.JSON()
	want := `{"header":["name","n"],"rows":[["scan","1024"]]}` + "\n"
	if got != want {
		t.Errorf("JSON = %q, want %q", got, want)
	}
	empty := NewTable("a").JSON()
	if empty != `{"header":["a"],"rows":[]}`+"\n" {
		t.Errorf("empty JSON = %q", empty)
	}
}

func TestVerdict(t *testing.T) {
	if v := Verdict(1.52, 1.5, 0.15); !strings.HasPrefix(v, "PASS") {
		t.Errorf("verdict %q", v)
	}
	if v := Verdict(2.2, 1.5, 0.15); !strings.HasPrefix(v, "FAIL") {
		t.Errorf("verdict %q", v)
	}
	if v := Verdict(math.NaN(), 1.5, 0.15); !strings.HasPrefix(v, "FAIL") {
		t.Errorf("verdict %q", v)
	}
}
