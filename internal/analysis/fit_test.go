package analysis

import (
	"math"
	"testing"
)

func powerSeries(coef, exp float64, ns ...float64) []Point {
	pts := make([]Point, len(ns))
	for i, n := range ns {
		pts[i] = Point{N: n, Cost: coef * math.Pow(n, exp)}
	}
	return pts
}

func polylogSeries(coef, deg float64, ns ...float64) []Point {
	pts := make([]Point, len(ns))
	for i, n := range ns {
		pts[i] = Point{N: n, Cost: coef * math.Pow(math.Log(n), deg)}
	}
	return pts
}

func TestFitPowerLawExact(t *testing.T) {
	f := FitPowerLaw(powerSeries(3, 1.5, 64, 256, 1024, 4096))
	if !f.Valid() {
		t.Fatalf("fit invalid: %+v", f)
	}
	if math.Abs(f.Exponent-1.5) > 1e-9 {
		t.Errorf("exponent = %v, want 1.5", f.Exponent)
	}
	if math.Abs(f.Intercept-math.Log(3)) > 1e-9 {
		t.Errorf("intercept = %v, want ln 3", f.Intercept)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1 for exact data", f.R2)
	}
	if f.Points != 4 {
		t.Errorf("Points = %d, want 4", f.Points)
	}
	if got := f.Eval(1024); math.Abs(got-3*math.Pow(1024, 1.5)) > 1e-6 {
		t.Errorf("Eval(1024) = %v", got)
	}
}

func TestFitPowerLawNoisyR2(t *testing.T) {
	// Perturb one point: R² must drop below 1 but stay high, and the fit
	// must still land near the true slope.
	pts := powerSeries(2, 1, 64, 256, 1024, 4096)
	pts[2].Cost *= 1.4
	f := FitPowerLaw(pts)
	if f.R2 >= 1 || f.R2 < 0.9 {
		t.Errorf("R2 = %v, want in [0.9, 1)", f.R2)
	}
	if math.Abs(f.Exponent-1) > 0.15 {
		t.Errorf("exponent = %v, want ≈1", f.Exponent)
	}
}

func TestFitPowerLawEdgeCases(t *testing.T) {
	// Short sweeps: zero or one usable point is not a fit.
	if f := FitPowerLaw(nil); f.Valid() || f.Points != 0 {
		t.Errorf("nil fit = %+v, want invalid/0 points", f)
	}
	if f := FitPowerLaw([]Point{{N: 4, Cost: 2}}); f.Valid() {
		t.Errorf("single-point fit = %+v, want invalid", f)
	}
	// Zero and negative values are dropped, not propagated into logs.
	f := FitPowerLaw([]Point{{N: 0, Cost: 5}, {N: 16, Cost: 0}, {N: -2, Cost: -2}, {N: 4, Cost: 16}, {N: 8, Cost: 64}})
	if !f.Valid() || f.Points != 2 {
		t.Fatalf("fit = %+v, want valid with 2 usable points", f)
	}
	if math.Abs(f.Exponent-2) > 1e-9 {
		t.Errorf("exponent = %v, want 2", f.Exponent)
	}
	// Two points always fit exactly.
	if math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("two-point R2 = %v, want 1", f.R2)
	}
	// All points at the same N: degenerate, no slope.
	if f := FitPowerLaw([]Point{{N: 8, Cost: 2}, {N: 8, Cost: 4}}); f.Valid() {
		t.Errorf("same-N fit = %+v, want invalid", f)
	}
	// Flat series: slope 0 is a legitimate, perfect fit.
	f = FitPowerLaw([]Point{{N: 4, Cost: 7}, {N: 16, Cost: 7}, {N: 64, Cost: 7}})
	if !f.Valid() || math.Abs(f.Exponent) > 1e-12 || math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("flat fit = %+v, want slope 0 with R2 1", f)
	}
}

func TestTailExponent(t *testing.T) {
	pts := powerSeries(1, 0.5, 256, 1024, 4096)
	// Additive constant term pollutes the head but not the tail estimate.
	for i := range pts {
		pts[i].Cost += 10
	}
	got := TailExponent(pts)
	if got <= 0.4 || got >= 0.55 {
		t.Errorf("tail exponent = %v, want near 0.5", got)
	}
	if !math.IsNaN(TailExponent(pts[:1])) {
		t.Error("one-point tail should be NaN")
	}
	if !math.IsNaN(TailExponent([]Point{{N: 8, Cost: 1}, {N: 8, Cost: 2}})) {
		t.Error("same-N tail should be NaN")
	}
	// Zero-cost points are dropped before taking the tail.
	withZero := append(powerSeries(1, 1, 64, 256, 1024), Point{N: 4096, Cost: 0})
	if got := TailExponent(withZero); math.Abs(got-1) > 1e-9 {
		t.Errorf("tail with trailing zero = %v, want 1", got)
	}
}

func TestLocalExponents(t *testing.T) {
	es := LocalExponents(powerSeries(5, 2, 16, 64, 256))
	if len(es) != 2 {
		t.Fatalf("got %d local exponents, want 2", len(es))
	}
	for _, e := range es {
		if math.Abs(e-2) > 1e-9 {
			t.Errorf("local exponent = %v, want 2", e)
		}
	}
	if LocalExponents(powerSeries(1, 1, 16)) != nil {
		t.Error("single point should yield no local exponents")
	}
}

func TestClassifyGrowth(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
		want GrowthClass
	}{
		{"log^1", polylogSeries(2, 1, 256, 1024, 4096, 16384, 65536), GrowthPolylog},
		{"log^3", polylogSeries(7, 3, 256, 1024, 4096, 16384), GrowthPolylog},
		{"n^0.5", powerSeries(3, 0.5, 256, 1024, 4096, 16384), GrowthPolynomial},
		{"n^1", powerSeries(1, 1, 64, 256, 1024, 4096), GrowthPolynomial},
		{"n^1.5", powerSeries(1, 1.5, 64, 256, 1024), GrowthPolynomial},
		{"too-short", powerSeries(1, 1, 64, 256), GrowthUnknown},
		{"empty", nil, GrowthUnknown},
		// sqrt(n)*log(n): polynomial at heart; the log factor nudges the
		// local exponents but they stay flat and well above the polylog band.
		{"sqrt-n-log-n", func() []Point {
			var pts []Point
			for _, n := range []float64{256, 1024, 4096, 16384} {
				pts = append(pts, Point{N: n, Cost: math.Sqrt(n) * math.Log(n)})
			}
			return pts
		}(), GrowthPolynomial},
	}
	for _, c := range cases {
		if got := ClassifyGrowth(c.pts); got != c.want {
			t.Errorf("%s: ClassifyGrowth = %v, want %v (local exps %v)",
				c.name, got, c.want, LocalExponents(c.pts))
		}
	}
}

func TestCrossover(t *testing.T) {
	// a = n^1.5, b = 100*n: lines cross at n^0.5 = 100, i.e. n = 10^4.
	// b has the smaller slope, so b wins beyond the crossing.
	a := powerSeries(1, 1.5, 64, 256, 1024)
	b := powerSeries(100, 1, 64, 256, 1024)
	n, winner, ok := Crossover(a, b)
	if !ok {
		t.Fatal("crossover not found")
	}
	if math.Abs(n-1e4)/1e4 > 1e-6 {
		t.Errorf("crossover n = %v, want 1e4", n)
	}
	if winner != SideB {
		t.Errorf("winner = %v, want b (smaller slope)", winner)
	}
	// Swapping the arguments mirrors the winner but not the location.
	n2, winner2, ok2 := Crossover(b, a)
	if !ok2 || winner2 != SideA || math.Abs(n2-n) > 1e-6*n {
		t.Errorf("swapped crossover = (%v, %v, %v), want (%v, a, true)", n2, winner2, ok2, n)
	}
	// Parallel lines never cross.
	if _, winner, ok := Crossover(a, powerSeries(5, 1.5, 64, 256, 1024)); ok || winner != SideNone {
		t.Error("parallel series should report no crossover and no winner")
	}
	// Invalid inputs.
	if _, winner, ok := Crossover(nil, b); ok || winner != SideNone {
		t.Error("invalid fit should report no crossover and no winner")
	}
}

func TestCrossoverOverflowGuard(t *testing.T) {
	// Slopes differ by a hair while the intercepts differ hugely: the
	// fitted lines cross at exp(huge), far beyond float range. The guard
	// must report "effectively never" as +Inf, not overflow garbage.
	a := powerSeries(1, 1.0+2e-9, 64, 256, 1024)
	b := powerSeries(1e300, 1, 64, 256, 1024)
	n, winner, ok := Crossover(a, b)
	if !ok || !math.IsInf(n, 1) {
		t.Fatalf("Crossover = (%v, %v, %v), want (+Inf, b, true)", n, winner, ok)
	}
	if winner != SideB {
		t.Errorf("winner = %v, want b", winner)
	}
}

func TestCrossoverUnderflowGuard(t *testing.T) {
	// Regression: the mirrored case of the overflow guard. Here the
	// steeper series starts e^373 above the flatter one, so
	// logN = (ib-ia)/(ea-eb) = -373/0.5 = -746 — below exp()'s subnormal
	// range. Before the symmetric guard, Crossover evaluated
	// math.Exp(-746) and returned exactly 0 (or, for slightly less
	// extreme inputs, 5e-324-style subnormal dust) with ok = true, which
	// callers comparing "crossover > nMax" silently treated as a real
	// location near n = 0. The guard pins the result to exactly
	// (0, winner, true): the winner leads at every measurable size.
	a := powerSeries(1, 1.5, 64, 256, 1024)
	b := powerSeries(1, 1, 64, 256, 1024)
	for i := range a {
		a[i].Cost *= math.Exp(373)
	}
	n, winner, ok := Crossover(a, b)
	if !ok {
		t.Fatal("crossover not found")
	}
	if n != 0 {
		t.Errorf("crossover n = %g, want exactly 0 (guarded underflow)", n)
	}
	if winner != SideB {
		t.Errorf("winner = %v, want b (smaller slope wins beyond the crossing)", winner)
	}
	// Just inside the guard the closed form still evaluates normally:
	// intercept gap e^100 with the same slope gap crosses at e^-200.
	c := powerSeries(1, 1.5, 64, 256, 1024)
	for i := range c {
		c[i].Cost *= math.Exp(100)
	}
	n, _, ok = Crossover(c, b)
	if !ok || n <= 0 || math.IsInf(n, 0) {
		t.Errorf("in-range crossover = (%v, %v), want finite positive", n, ok)
	}
	if want := math.Exp(-200); math.Abs(n-want)/want > 1e-6 {
		t.Errorf("in-range crossover n = %g, want e^-200", n)
	}
}
