package analysis

import "math"

// Fit is a least-squares power-law fit on log-log data with its quality
// statistics: cost ≈ exp(Intercept) * n^Exponent over the Points used.
type Fit struct {
	Exponent  float64 // slope of log(cost) vs log(n)
	Intercept float64 // intercept of the same line (natural log)
	R2        float64 // coefficient of determination on the log-log data
	Points    int     // points with positive coordinates that entered the fit
}

// Valid reports whether the fit had enough usable points.
func (f Fit) Valid() bool { return f.Points >= 2 && !math.IsNaN(f.Exponent) }

// Eval returns the fitted cost at size n.
func (f Fit) Eval(n float64) float64 {
	return math.Exp(f.Intercept) * math.Pow(n, f.Exponent)
}

// FitPowerLaw is FitExponent with the full regression statistics: intercept
// and R² alongside the slope. Points with non-positive N or Cost are
// dropped (log is undefined there); fewer than two usable points yields
// NaN fields with Points reflecting how many survived. A perfectly flat
// cost series is a valid fit with slope 0 and R² = 1 (the line explains
// everything there is to explain).
func FitPowerLaw(pts []Point) Fit {
	var xs, ys []float64
	for _, p := range pts {
		if p.N > 0 && p.Cost > 0 {
			xs = append(xs, math.Log(p.N))
			ys = append(ys, math.Log(p.Cost))
		}
	}
	f := Fit{Exponent: math.NaN(), Intercept: math.NaN(), R2: math.NaN(), Points: len(xs)}
	if len(xs) < 2 {
		return f
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return f
	}
	f.Exponent = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Exponent*sx) / n
	var ssRes, ssTot float64
	my := sy / n
	for i := range xs {
		r := ys[i] - (f.Intercept + f.Exponent*xs[i])
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	// A (numerically) constant series has no variance to explain; the flat
	// line fits it perfectly. Compare against rounding dust, not exact zero.
	if eps := 1e-12 * (1 + my*my) * n; ssTot <= eps {
		f.R2 = 1
	} else {
		f.R2 = 1 - ssRes/ssTot
	}
	return f
}

// TailExponent is the scaling exponent between the last two points of the
// sweep. Metrics with large additive lower-order terms (the paper's
// distance bounds contribute O(√n) per recursion level) converge slowly;
// the tail slope is the honest estimator for them.
func TailExponent(pts []Point) float64 {
	var usable []Point
	for _, p := range pts {
		if p.N > 0 && p.Cost > 0 {
			usable = append(usable, p)
		}
	}
	if len(usable) < 2 {
		return math.NaN()
	}
	a, b := usable[len(usable)-2], usable[len(usable)-1]
	if a.N == b.N {
		return math.NaN()
	}
	return math.Log(b.Cost/a.Cost) / math.Log(b.N/a.N)
}

// LocalExponents returns the point-to-point scaling exponents
// log(c_{i+1}/c_i) / log(n_{i+1}/n_i) of consecutive usable points — the
// series whose *trend* discriminates polylogarithmic from polynomial
// growth: a polylog cost has local exponents that decline toward 0 as n
// grows, while any n^c holds a constant local exponent c.
func LocalExponents(pts []Point) []float64 {
	var usable []Point
	for _, p := range pts {
		if p.N > 0 && p.Cost > 0 {
			usable = append(usable, p)
		}
	}
	if len(usable) < 2 {
		return nil
	}
	out := make([]float64, 0, len(usable)-1)
	for i := 1; i < len(usable); i++ {
		a, b := usable[i-1], usable[i]
		if a.N == b.N {
			continue
		}
		out = append(out, math.Log(b.Cost/a.Cost)/math.Log(b.N/a.N))
	}
	return out
}

// GrowthClass is the verdict of ClassifyGrowth.
type GrowthClass int

const (
	// GrowthUnknown means the series is too short or too flat to classify.
	GrowthUnknown GrowthClass = iota
	// GrowthPolylog means the cost grows like a power of log n: the local
	// exponents decline as n grows (or sit uniformly near zero).
	GrowthPolylog
	// GrowthPolynomial means the cost grows like n^ε for some ε > 0: the
	// local exponents hold roughly constant and bounded away from zero.
	GrowthPolynomial
)

func (g GrowthClass) String() string {
	switch g {
	case GrowthPolylog:
		return "polylog"
	case GrowthPolynomial:
		return "polynomial"
	}
	return "unknown"
}

// Growth-discrimination thresholds, shared so tests and callers agree on
// the boundary. A polylog series' local exponents must fall by at least
// growthDeclineMin from first to last, or sit uniformly below
// growthFlatMax; a polynomial series holds them steady (within
// growthDeclineMin) at or above growthFlatMax.
const (
	growthDeclineMin = 0.08
	growthFlatMax    = 0.35
)

// ClassifyGrowth discriminates Θ(log^c n) from Θ(n^ε) growth. On a log-log
// plot both look like "slowly growing", and naive degree fits on short
// sweeps overshoot badly (additive lower-order terms); the robust
// discriminator is the trend of the local exponents — declining toward 0
// for polylog, constant 4^ε-per-quadrupling for a polynomial. Series with
// fewer than three usable points (two local exponents) are GrowthUnknown.
func ClassifyGrowth(pts []Point) GrowthClass {
	es := LocalExponents(pts)
	if len(es) < 2 {
		return GrowthUnknown
	}
	first, last := es[0], es[len(es)-1]
	maxE := es[0]
	for _, e := range es {
		if e > maxE {
			maxE = e
		}
	}
	switch {
	case maxE <= growthFlatMax:
		// Uniformly tiny growth: any n^ε with meaningful ε is excluded.
		return GrowthPolylog
	case first-last >= growthDeclineMin:
		return GrowthPolylog
	case math.Abs(first-last) < growthDeclineMin && last >= growthFlatMax:
		return GrowthPolynomial
	}
	return GrowthUnknown
}

// Side identifies which of Crossover's two series wins (is cheaper)
// beyond the crossover point.
type Side int

const (
	// SideNone means no winner could be determined (invalid fits or
	// numerically parallel slopes).
	SideNone Side = iota
	// SideA means the first series grows strictly slower and is the
	// cheaper one beyond the crossover.
	SideA
	// SideB means the second series wins beyond the crossover.
	SideB
)

func (s Side) String() string {
	switch s {
	case SideA:
		return "a"
	case SideB:
		return "b"
	}
	return "none"
}

// Crossover fits power laws to two cost series and returns the problem
// size at which the fitted lines intersect — the estimated n beyond which
// the slower-growing series wins — plus that winning side (the series
// with the smaller fitted slope). ok is false when either fit is invalid
// or the slopes are (numerically) parallel; winner is SideNone then.
//
// Both ends of exp's range are guarded symmetrically: a crossover beyond
// e^700 reports (+Inf, winner, true) — the lines effectively never cross
// at representable sizes — and one below e^-700 reports exactly (0,
// winner, true): the winner is already ahead at every measurable size.
// Without the lower guard, exp underflows through subnormal garbage
// (e.g. 5e-313) to 0, which callers comparing against a size threshold
// would silently mistake for a real crossover location. The returned
// size may lie far outside the measured range; callers decide whether
// extrapolation is meaningful.
func Crossover(a, b []Point) (n float64, winner Side, ok bool) {
	fa, fb := FitPowerLaw(a), FitPowerLaw(b)
	if !fa.Valid() || !fb.Valid() {
		return 0, SideNone, false
	}
	dSlope := fa.Exponent - fb.Exponent
	if math.Abs(dSlope) < 1e-9 {
		return 0, SideNone, false
	}
	winner = SideA // beyond the crossing, the smaller slope lies below
	if dSlope > 0 {
		winner = SideB
	}
	// exp(ia) * n^ea = exp(ib) * n^eb  =>  n = exp((ib-ia)/(ea-eb))
	logN := (fb.Intercept - fa.Intercept) / dSlope
	switch {
	case logN > 700: // exp overflow; effectively "never crosses"
		return math.Inf(1), winner, true
	case logN < -700: // exp underflow; crossed before any measurable size
		return 0, winner, true
	}
	return math.Exp(logN), winner, true
}
