// Package analysis provides the statistical and formatting helpers used by
// the benchmark harness: least-squares scaling-exponent fits on log-log
// data (to compare measured energy/depth/distance growth against the
// paper's Theta bounds) and plain-text table rendering.
package analysis

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Point is one measurement: a problem size and a cost.
type Point struct {
	N    float64
	Cost float64
}

// FitExponent returns the least-squares slope b of log(cost) = a + b*log(n),
// i.e. the empirical scaling exponent of the measurements. It requires at
// least two points with positive coordinates.
func FitExponent(pts []Point) float64 {
	return FitPowerLaw(pts).Exponent
}

// FitLogExponent returns the least-squares slope c of
// log(cost) = a + c*log(log n), the empirical polylog degree. Useful for
// depth measurements expected to be Theta(log^c n).
func FitLogExponent(pts []Point) float64 {
	loglog := make([]Point, 0, len(pts))
	for _, p := range pts {
		if p.N > math.E {
			loglog = append(loglog, Point{N: math.Log(p.N), Cost: p.Cost})
		}
	}
	return FitExponent(loglog)
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && (math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (for plotting figures).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the table as a single-line JSON object
// {"header": [...], "rows": [[...]]} followed by a newline. Cells are the
// same rendered strings the text and CSV forms use, so all three encodings
// of a deterministic sweep are deterministic.
func (t *Table) JSON() string {
	doc := struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{Header: t.header, Rows: t.rows}
	if doc.Rows == nil {
		doc.Rows = [][]string{}
	}
	b, err := json.Marshal(doc)
	if err != nil {
		// header/rows are plain strings; Marshal cannot fail on them.
		panic(err)
	}
	return string(b) + "\n"
}

// Verdict compares a measured exponent against a target with tolerance and
// returns "PASS exp=..." or "FAIL ...", for the experiment reports.
func Verdict(measured, want, tol float64) string {
	if math.IsNaN(measured) {
		return "FAIL (no fit)"
	}
	if math.Abs(measured-want) <= tol {
		return fmt.Sprintf("PASS (%.2f ~ %.2f)", measured, want)
	}
	return fmt.Sprintf("FAIL (%.2f vs %.2f)", measured, want)
}
