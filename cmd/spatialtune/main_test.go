package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestListWorkloads: -list names every tunable workload.
func TestListWorkloads(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, w := range []string{"scan", "reduce", "sort", "spmv"} {
		if !strings.Contains(out.String(), w) {
			t.Errorf("-list missing workload %s:\n%s", w, out.String())
		}
	}
}

// TestJSONDeterministic: two identical invocations produce byte-identical
// verdict documents, and the document carries the request parameters.
func TestJSONDeterministic(t *testing.T) {
	args := []string{"-quick", "-workload", "scan", "-objective", "edp", "-json", "-seed", "7"}
	var a, b, errb bytes.Buffer
	if code := run(args, &a, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if code := run(args, &b, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("repeat -json runs differ")
	}
	var rep report
	if err := json.Unmarshal(a.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.Seed != 7 || !rep.Quick || rep.Objective != "edp" || len(rep.Workloads) != 1 {
		t.Errorf("report meta wrong: %+v", rep)
	}
	if len(rep.Workloads[0].Sizes) == 0 || len(rep.Workloads[0].Sizes[0].Pareto) == 0 {
		t.Errorf("report carries no verdicts: %+v", rep.Workloads[0])
	}
}

// TestTableOutput: the default table renders one row per (workload, n)
// with a baseline comparison.
func TestTableOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-workload", "reduce"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "reduce") || !strings.Contains(out.String(), "baseline edp") {
		t.Errorf("table output unexpected:\n%s", out.String())
	}
}

// TestBadFlags: unknown workloads and objectives exit 2 without tuning.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-workload", "fft"},
		{"-objective", "joules"},
		{"-not-a-flag"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
