// Command spatialtune searches the discrete layout/schedule space of the
// library's primitives — grid track, collective-tree arity, tile aspect
// ratio, sort-algorithm choice — and reports the energy-, depth- or
// EDP-minimal mapping per workload and problem size (see internal/tuner).
//
// Usage:
//
//	spatialtune                      # tune every workload, EDP objective
//	spatialtune -workload sort       # one workload
//	spatialtune -objective energy    # minimize energy (or: depth, edp)
//	spatialtune -quick               # smaller problem sizes (~seconds)
//	spatialtune -json                # full verdicts (all candidates, Pareto
//	                                 # fronts, per-objective winners) as JSON
//	spatialtune -list                # list tunable workloads and exit
//	spatialtune -cache DIR           # reuse previously simulated points
//	spatialtune -backend mesh:8x8:4  # tune on a folded finite fabric
//
// Every candidate of a workload is measured on the identical input (the
// mapping travels in the result-cache key, never in the RNG seed), so the
// verdict compares configurations, not workloads. Output is
// byte-identical for any -parallel/-shards/-batch combination at a fixed
// -seed, and for cold vs warm -cache runs; the table and -json bytes are
// a pure function of (workloads, sizes, seed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/cliflags"
	"repro/internal/harness"
	"repro/internal/tuner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json document; the nightly workflow archives it as the
// tuner verdict artifact.
type report struct {
	Objective tuner.Objective `json:"objective"`
	Quick     bool            `json:"quick"`
	Seed      int64           `json:"seed"`
	Shards    int             `json:"shards"`
	Batch     bool            `json:"batch"`
	// Machine is the canonical finite-backend spec, omitted for the ideal
	// model so pre-backend tuner artifacts stay byte-identical.
	Machine   string         `json:"machine,omitempty"`
	Workloads []tuner.Result `json:"workloads"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spatialtune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloadName = fs.String("workload", "all", "workload to tune (see -list)")
		objName      = fs.String("objective", "edp", "objective to minimize: energy, depth or edp")
		quick        = fs.Bool("quick", false, "smaller problem sizes (seconds instead of minutes)")
		jsonOut      = fs.Bool("json", false, "emit the full verdicts as JSON")
		list         = fs.Bool("list", false, "list tunable workloads and exit")
		progress     = fs.Bool("progress", false, "report completion and ETA on stderr")
		seed         = cliflags.AddSeed(fs)
		pool         = cliflags.AddPool(fs)
		cacheFlag    = cliflags.AddCache(fs, "")
		backend      = cliflags.AddBackend(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	bk, err := backend.Parse()
	if err != nil {
		fmt.Fprintf(stderr, "spatialtune: -backend: %v\n", err)
		return 2
	}

	obj, err := tuner.ParseObjective(*objName)
	if err != nil {
		fmt.Fprintf(stderr, "spatialtune: %v\n", err)
		return 2
	}

	if *list {
		t := analysis.NewTable("workload", "candidates", "description")
		for _, w := range tuner.Workloads() {
			t.AddRow(w.Name, len(w.Candidates), w.Desc)
		}
		fmt.Fprint(stdout, t.String())
		return 0
	}

	workloads := tuner.Workloads()
	if *workloadName != "all" {
		w, ok := tuner.ByName(*workloadName)
		if !ok {
			fmt.Fprintf(stderr, "spatialtune: unknown workload %q (use -list)\n", *workloadName)
			return 2
		}
		workloads = []tuner.Workload{w}
	}

	opts := append(pool.HarnessOptions(), harness.WithLargestFirst(), harness.WithBackend(bk))
	cache, err := cacheFlag.Open()
	if err != nil {
		fmt.Fprintf(stderr, "spatialtune: -cache: %v\n", err)
		return 2
	}
	if cache != nil {
		opts = append(opts, harness.WithCache(cache))
	}
	if *progress {
		start := time.Now()
		opts = append(opts, harness.WithWeightedProgress(func(p harness.Progress) {
			fmt.Fprintf(stderr, "\r%d/%d points (%3.0f%% of est. cost%s)",
				p.Done, p.Total, 100*p.Fraction(), etaSuffix(time.Since(start), p.DoneCost-p.HitCost, p.TotalCost-p.HitCost))
			if p.Done == p.Total {
				fmt.Fprintln(stderr)
			}
		}))
	}

	r := harness.New(*seed, opts...)
	rep := report{Objective: obj, Quick: *quick, Seed: *seed, Shards: pool.Shards, Batch: pool.Batch}
	if bk.Finite() {
		rep.Machine = bk.String()
	}
	for _, w := range workloads {
		rep.Workloads = append(rep.Workloads, tuner.Tune(r, w, *quick))
	}
	cacheFlag.ReportStats(stderr, "spatialtune", cache)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "spatialtune: %v\n", err)
			return 2
		}
		return 0
	}
	writeTable(stdout, rep, obj)
	return 0
}

// writeTable renders the per-size winners under the chosen objective,
// next to the row-major baseline's EDP so the gain is visible at a
// glance.
func writeTable(w io.Writer, rep report, obj tuner.Objective) {
	t := analysis.NewTable("workload", "n", "best mapping ("+string(obj)+")", "energy", "depth", "edp", "baseline edp", "edp gain")
	for _, res := range rep.Workloads {
		for _, sz := range res.Sizes {
			best := sz.Best(obj)
			gain := "n/a"
			baseEDP := "n/a"
			if base, ok := tuner.Baseline(sz.Candidates); ok {
				baseEDP = fmt.Sprintf("%.3g", base.EDP())
				gain = fmt.Sprintf("%.2fx", base.EDP()/best.EDP())
			}
			t.AddRow(res.Workload, sz.N, best.Mapping.String(),
				best.Energy, best.Depth, fmt.Sprintf("%.3g", best.EDP()), baseEDP, gain)
		}
	}
	fmt.Fprint(w, t.String())
}

// etaSuffix renders a remaining-time estimate from simulated (non-hit)
// cost, as in boundcheck.
func etaSuffix(elapsed time.Duration, doneCost, totalCost float64) string {
	if doneCost <= 0 || totalCost <= doneCost {
		return ""
	}
	eta := time.Duration(float64(elapsed) * (totalCost - doneCost) / doneCost)
	return ", ETA " + eta.Round(time.Second).String()
}
