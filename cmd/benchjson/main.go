// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document of per-benchmark numbers, so benchmark runs
// can be committed and diffed. Units become keys: "ns/op" -> "ns_per_op",
// "allocs/op" -> "allocs_per_op", and the repository's custom model-cost
// metrics ("energy/op", ...) come along for free.
//
// With -o FILE the document is written to FILE; if FILE already exists its
// top-level "seed_baseline" object is preserved, so regenerated results
// keep the recorded pre-optimization numbers for comparison.
//
// With -compare FILE the parsed run is instead diffed against FILE's
// "benchmarks" object: every benchmark present in both whose name matches
// -match is checked, and the command exits 1 if any ns_per_op regresses by
// more than -tol (fractional, default 0.20) or any allocs_per_op grows
// beyond the same fractional tolerance — a zero-alloc baseline therefore
// fails on the first allocation. Benchmarks reporting a "shards" metric
// (b.ReportMetric(float64(shards), "shards")) additionally have the shard
// count echoed in the comparison, and a run whose shard count differs from
// the baseline's fails outright: timings at different parallelism are not
// comparable, and a regression must not hide behind one. Benchmarks
// reporting a "hit_rate" metric (the result-cache benchmarks) are treated
// more leniently: a hit-rate difference against the baseline is reported
// and exempts the benchmark from the ns/op gate — a cold cache is an
// expected state, not a configuration error. This is the
// `make bench-compare` regression gate.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/machine/ | go run ./cmd/benchjson -o BENCH_machine.json
//	go test -run '^$' -bench . -benchmem ./internal/machine/ | go run ./cmd/benchjson -compare BENCH_machine.json -tol 0.20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func parse(r *bufio.Scanner) map[string]map[string]float64 {
	benches := make(map[string]map[string]float64)
	for r.Scan() {
		fields := strings.Fields(r.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		res := map[string]float64{"iterations": iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res[strings.ReplaceAll(fields[i+1], "/", "_per_")] = v
		}
		benches[name] = res
	}
	return benches
}

// compareBenches reports current-vs-baseline ns_per_op and allocs_per_op
// for every benchmark in both maps whose name has the given prefix, and
// returns the number of regressions: ns_per_op beyond tol (fractional
// slowdown), or allocs_per_op grown beyond the same fraction. Allocation
// counts are exact, so any growth over a zero-alloc baseline regresses.
// Benchmarks missing from either side are reported but not counted as
// failures — sweeps grow new benchmarks, and baselines list retired ones.
func compareBenches(w io.Writer, cur, base map[string]map[string]float64, prefix string, tol float64) int {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "  new      %-44s %12.1f ns/op (no baseline)\n", name, cur[name]["ns_per_op"])
			continue
		}
		curNs, baseNs := cur[name]["ns_per_op"], b["ns_per_op"]
		if baseNs == 0 {
			continue
		}
		delta := curNs/baseNs - 1
		status := "ok"
		// Benchmarks that exercise the result cache report their hit rate
		// (b.ReportMetric(hits/lookups, "hit_rate")). A run whose hit rate
		// differs from the baseline's measured something else — cached
		// lookups versus real simulation — so its ns/op delta is reported
		// but not gated: unlike a shard mismatch this is an expected state
		// difference (cold CI caches), not a configuration error.
		curH, curHasH := cur[name]["hit_rate"]
		baseH, baseHasH := b["hit_rate"]
		hitNote := ""
		gate := true
		switch {
		case curHasH && baseHasH && curH == baseH:
			hitNote = fmt.Sprintf(" [hit_rate %g]", curH)
		case curHasH || baseHasH:
			status = "HITRATE"
			gate = false
			hitNote = fmt.Sprintf(" [hit_rate %g -> %g: reported, not gated]", baseH, curH)
		}
		if gate && delta > tol {
			status = "REGRESSED"
		}
		curA, baseA := cur[name]["allocs_per_op"], b["allocs_per_op"]
		allocNote := ""
		if gate && curA > baseA && curA > baseA*(1+tol) {
			status = "ALLOCS"
			allocNote = fmt.Sprintf(" [allocs %g -> %g]", baseA, curA)
		}
		// Benchmarks that exercise shard-parallel rounds report their shard
		// count as a metric; a ns/op delta measured at a different shard
		// count than the baseline is not a like-for-like comparison, so a
		// mismatch fails rather than letting a regression (or a fake win)
		// hide behind a parallelism change.
		curS, baseS := cur[name]["shards"], b["shards"]
		shardNote := ""
		switch {
		case curS == baseS && curS != 0:
			shardNote = fmt.Sprintf(" [shards %g]", curS)
		case curS != baseS:
			status = "SHARDS"
			shardNote = fmt.Sprintf(" [shards %g -> %g: not comparable]", baseS, curS)
		}
		if status != "ok" && status != "HITRATE" {
			regressions++
		}
		fmt.Fprintf(w, "  %-8s %-44s %12.1f -> %10.1f ns/op (%+.1f%%)%s%s%s\n", status, name, baseNs, curNs, 100*delta, allocNote, shardNote, hitNote)
	}
	for name := range base {
		if strings.HasPrefix(name, prefix) {
			if _, ok := cur[name]; !ok {
				fmt.Fprintf(w, "  missing  %-44s (in baseline, not in this run)\n", name)
			}
		}
	}
	return regressions
}

func main() {
	out := flag.String("o", "", "output file (default stdout); an existing file's seed_baseline is preserved")
	compare := flag.String("compare", "", "baseline JSON file to diff against instead of emitting JSON")
	tol := flag.Float64("tol", 0.20, "with -compare: allowed fractional ns/op slowdown before failing")
	match := flag.String("match", "Benchmark", "with -compare: only check benchmarks with this name prefix")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	benches := parse(sc)
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *compare != "" {
		data, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var doc struct {
			Benchmarks map[string]map[string]float64 `json:"benchmarks"`
		}
		if err := json.Unmarshal(data, &doc); err != nil || len(doc.Benchmarks) == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s has no benchmarks object\n", *compare)
			os.Exit(1)
		}
		fmt.Printf("comparing against %s (tolerance %+.0f%% ns/op):\n", *compare, 100**tol)
		if n := compareBenches(os.Stdout, benches, doc.Benchmarks, *match, *tol); n > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%\n", n, 100**tol)
			os.Exit(1)
		}
		return
	}

	doc := map[string]any{"benchmarks": benches}
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			var old map[string]any
			if json.Unmarshal(data, &old) == nil {
				if sb, ok := old["seed_baseline"]; ok {
					doc["seed_baseline"] = sb
				}
			}
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
