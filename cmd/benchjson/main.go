// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document of per-benchmark numbers, so benchmark runs
// can be committed and diffed. Units become keys: "ns/op" -> "ns_per_op",
// "allocs/op" -> "allocs_per_op", and the repository's custom model-cost
// metrics ("energy/op", ...) come along for free.
//
// With -o FILE the document is written to FILE; if FILE already exists its
// top-level "seed_baseline" object is preserved, so regenerated results
// keep the recorded pre-optimization numbers for comparison.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/machine/ | go run ./cmd/benchjson -o BENCH_machine.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func parse(r *bufio.Scanner) map[string]map[string]float64 {
	benches := make(map[string]map[string]float64)
	for r.Scan() {
		fields := strings.Fields(r.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		res := map[string]float64{"iterations": iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res[strings.ReplaceAll(fields[i+1], "/", "_per_")] = v
		}
		benches[name] = res
	}
	return benches
}

func main() {
	out := flag.String("o", "", "output file (default stdout); an existing file's seed_baseline is preserved")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	benches := parse(sc)
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	doc := map[string]any{"benchmarks": benches}
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			var old map[string]any
			if json.Unmarshal(data, &old) == nil {
				if sb, ok := old["seed_baseline"]; ok {
					doc["seed_baseline"] = sb
				}
			}
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
