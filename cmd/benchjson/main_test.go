package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/machine
BenchmarkSendChain-8         	   12345	     97531.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkMachineReset-8      	  500000	      2000 ns/op	      32 B/op	       1 allocs/op
BenchmarkParRound/n=1024-8   	    8000	    150000 ns/op	  123456 energy/op
PASS
ok  	repro/internal/machine	12.3s
`

func TestParse(t *testing.T) {
	benches := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(benches), benches)
	}
	chain := benches["BenchmarkSendChain"]
	if chain == nil {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if chain["ns_per_op"] != 97531.0 || chain["iterations"] != 12345 || chain["allocs_per_op"] != 0 {
		t.Errorf("SendChain = %v", chain)
	}
	par := benches["BenchmarkParRound/n=1024"]
	if par == nil || par["energy_per_op"] != 123456 {
		t.Errorf("custom metric not parsed: %v", par)
	}
}

func bench(ns float64) map[string]float64 { return map[string]float64{"ns_per_op": ns} }

func TestCompareBenches(t *testing.T) {
	base := map[string]map[string]float64{
		"BenchmarkMachineReset": bench(100),
		"BenchmarkSendChain":    bench(200),
		"BenchmarkRetired":      bench(50),
		"BenchmarkOther":        bench(10),
	}
	cur := map[string]map[string]float64{
		"BenchmarkMachineReset": bench(115), // +15%: within 20% tolerance
		"BenchmarkSendChain":    bench(300), // +50%: regression
		"BenchmarkBrandNew":     bench(70),  // no baseline: reported, not failed
		"BenchmarkOther":        bench(1000),
	}

	var b strings.Builder
	n := compareBenches(&b, cur, base, "Benchmark", 0.20)
	if n != 2 {
		t.Errorf("regressions = %d, want 2 (SendChain, Other)\n%s", n, b.String())
	}
	out := b.String()
	for _, want := range []string{"REGRESSED", "BenchmarkSendChain", "new", "BenchmarkBrandNew", "missing", "BenchmarkRetired"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// Prefix filtering confines the gate to machine-core benchmarks.
	b.Reset()
	if n := compareBenches(&b, cur, base, "BenchmarkMachine", 0.20); n != 0 {
		t.Errorf("prefix-filtered regressions = %d, want 0\n%s", n, b.String())
	}

	// Improvements never fail, however large.
	b.Reset()
	if n := compareBenches(&b, map[string]map[string]float64{"BenchmarkMachineReset": bench(1)}, base, "Benchmark", 0.20); n != 0 {
		t.Errorf("improvement counted as regression\n%s", b.String())
	}
}

// benchA builds a result with both timing and allocation counts.
func benchA(ns, allocs float64) map[string]float64 {
	return map[string]float64{"ns_per_op": ns, "iterations": 1000, "allocs_per_op": allocs}
}

func TestCompareBenchesAllocs(t *testing.T) {
	base := map[string]map[string]float64{
		"BenchmarkZeroAlloc": benchA(100, 0),
		"BenchmarkSomeAlloc": benchA(100, 10),
		"BenchmarkDrop":      benchA(100, 5),
	}

	// Growing over a zero-alloc baseline fails regardless of tolerance;
	// growth within tolerance on a nonzero baseline and any reduction pass.
	cur := map[string]map[string]float64{
		"BenchmarkZeroAlloc": benchA(100, 1),
		"BenchmarkSomeAlloc": benchA(100, 11),
		"BenchmarkDrop":      benchA(100, 0),
	}
	var b strings.Builder
	if n := compareBenches(&b, cur, base, "Benchmark", 0.20); n != 1 {
		t.Errorf("regressions = %d, want 1 (ZeroAlloc)\n%s", n, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "ALLOCS") || !strings.Contains(out, "allocs 0 -> 1") {
		t.Errorf("report missing alloc diagnostic:\n%s", out)
	}

	// Growth beyond tolerance on a nonzero baseline fails too.
	b.Reset()
	cur = map[string]map[string]float64{"BenchmarkSomeAlloc": benchA(100, 13)}
	if n := compareBenches(&b, cur, base, "Benchmark", 0.20); n != 1 {
		t.Errorf("regressions = %d, want 1 (SomeAlloc +30%%)\n%s", n, b.String())
	}

	// A bench failing on both time and allocations counts once.
	b.Reset()
	cur = map[string]map[string]float64{"BenchmarkSomeAlloc": benchA(200, 20)}
	if n := compareBenches(&b, cur, base, "Benchmark", 0.20); n != 1 {
		t.Errorf("regressions = %d, want 1 (single bench)\n%s", n, b.String())
	}
}

// benchS builds a result carrying the reported shard-count metric.
func benchS(ns, shards float64) map[string]float64 {
	return map[string]float64{"ns_per_op": ns, "iterations": 1000, "shards": shards}
}

func benchH(ns, hitRate float64) map[string]float64 {
	return map[string]float64{"ns_per_op": ns, "hit_rate": hitRate}
}

// TestCompareBenchesHitRate: a hit-rate difference against the baseline is
// reported but never gates — a warm ns/op measured against a cold baseline
// (or vice versa) compares cache lookups with real simulation, which is an
// expected state difference, unlike a shard-count mismatch.
func TestCompareBenchesHitRate(t *testing.T) {
	base := map[string]map[string]float64{
		"BenchmarkCacheHit": benchH(100, 1),
		"BenchmarkPlain":    bench(100),
	}

	// Same hit rate: echoed, timing judged normally (and gated).
	var b strings.Builder
	cur := map[string]map[string]float64{"BenchmarkCacheHit": benchH(200, 1)}
	if n := compareBenches(&b, cur, base, "Benchmark", 0.20); n != 1 {
		t.Errorf("regressions = %d, want 1 (same hit rate regressed)\n%s", n, b.String())
	}
	if !strings.Contains(b.String(), "[hit_rate 1]") {
		t.Errorf("report missing hit rate echo:\n%s", b.String())
	}

	// Different hit rate: a 10x slowdown is reported but tolerated — the
	// baseline was warm, this run was cold.
	b.Reset()
	cur = map[string]map[string]float64{"BenchmarkCacheHit": benchH(1000, 0)}
	if n := compareBenches(&b, cur, base, "Benchmark", 0.20); n != 0 {
		t.Errorf("regressions = %d, want 0 (hit-rate difference exempts timing)\n%s", n, b.String())
	}
	if !strings.Contains(b.String(), "HITRATE") || !strings.Contains(b.String(), "hit_rate 1 -> 0") {
		t.Errorf("report missing hit-rate diagnostic:\n%s", b.String())
	}

	// Gaining the metric relative to the baseline is also exempt-but-noted.
	b.Reset()
	cur = map[string]map[string]float64{"BenchmarkPlain": benchH(1000, 0.5)}
	if n := compareBenches(&b, cur, base, "Benchmark", 0.20); n != 0 {
		t.Errorf("regressions = %d, want 0 (metric appeared)\n%s", n, b.String())
	}
}

func TestCompareBenchesShards(t *testing.T) {
	base := map[string]map[string]float64{
		"BenchmarkShardedRound": benchS(100, 4),
		"BenchmarkPlain":        bench(100),
	}

	// Same shard count: the count is echoed and the timing judged normally.
	var b strings.Builder
	cur := map[string]map[string]float64{
		"BenchmarkShardedRound": benchS(110, 4),
		"BenchmarkPlain":        bench(100),
	}
	if n := compareBenches(&b, cur, base, "Benchmark", 0.20); n != 0 {
		t.Errorf("regressions = %d, want 0\n%s", n, b.String())
	}
	if !strings.Contains(b.String(), "[shards 4]") {
		t.Errorf("report missing shard count:\n%s", b.String())
	}

	// A different shard count fails even when the timing "improved": the
	// numbers are not comparable, so a regression could hide behind it.
	b.Reset()
	cur = map[string]map[string]float64{"BenchmarkShardedRound": benchS(40, 8)}
	if n := compareBenches(&b, cur, base, "Benchmark", 0.20); n != 1 {
		t.Errorf("regressions = %d, want 1 (shard mismatch)\n%s", n, b.String())
	}
	if !strings.Contains(b.String(), "SHARDS") || !strings.Contains(b.String(), "shards 4 -> 8") {
		t.Errorf("report missing shard mismatch diagnostic:\n%s", b.String())
	}

	// A run that gained (or lost) the shards metric relative to its baseline
	// is a mismatch too — the baseline must be regenerated deliberately.
	b.Reset()
	cur = map[string]map[string]float64{"BenchmarkPlain": benchS(100, 2)}
	if n := compareBenches(&b, cur, base, "Benchmark", 0.20); n != 1 {
		t.Errorf("regressions = %d, want 1 (metric appeared)\n%s", n, b.String())
	}
}
