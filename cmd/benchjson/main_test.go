package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/machine
BenchmarkSendChain-8         	   12345	     97531.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkMachineReset-8      	  500000	      2000 ns/op	      32 B/op	       1 allocs/op
BenchmarkParRound/n=1024-8   	    8000	    150000 ns/op	  123456 energy/op
PASS
ok  	repro/internal/machine	12.3s
`

func TestParse(t *testing.T) {
	benches := parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(benches), benches)
	}
	chain := benches["BenchmarkSendChain"]
	if chain == nil {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if chain["ns_per_op"] != 97531.0 || chain["iterations"] != 12345 || chain["allocs_per_op"] != 0 {
		t.Errorf("SendChain = %v", chain)
	}
	par := benches["BenchmarkParRound/n=1024"]
	if par == nil || par["energy_per_op"] != 123456 {
		t.Errorf("custom metric not parsed: %v", par)
	}
}

func bench(ns float64) map[string]float64 { return map[string]float64{"ns_per_op": ns} }

func TestCompareBenches(t *testing.T) {
	base := map[string]map[string]float64{
		"BenchmarkMachineReset": bench(100),
		"BenchmarkSendChain":    bench(200),
		"BenchmarkRetired":      bench(50),
		"BenchmarkOther":        bench(10),
	}
	cur := map[string]map[string]float64{
		"BenchmarkMachineReset": bench(115), // +15%: within 20% tolerance
		"BenchmarkSendChain":    bench(300), // +50%: regression
		"BenchmarkBrandNew":     bench(70),  // no baseline: reported, not failed
		"BenchmarkOther":        bench(1000),
	}

	var b strings.Builder
	n := compareBenches(&b, cur, base, "Benchmark", 0.20)
	if n != 2 {
		t.Errorf("regressions = %d, want 2 (SendChain, Other)\n%s", n, b.String())
	}
	out := b.String()
	for _, want := range []string{"REGRESSED", "BenchmarkSendChain", "new", "BenchmarkBrandNew", "missing", "BenchmarkRetired"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// Prefix filtering confines the gate to machine-core benchmarks.
	b.Reset()
	if n := compareBenches(&b, cur, base, "BenchmarkMachine", 0.20); n != 0 {
		t.Errorf("prefix-filtered regressions = %d, want 0\n%s", n, b.String())
	}

	// Improvements never fail, however large.
	b.Reset()
	if n := compareBenches(&b, map[string]map[string]float64{"BenchmarkMachineReset": bench(1)}, base, "Benchmark", 0.20); n != 0 {
		t.Errorf("improvement counted as regression\n%s", b.String())
	}
}
