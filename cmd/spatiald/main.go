// Command spatiald is the pooled simulation daemon: a long-running
// HTTP/JSON service that runs measurement sweeps and bound-conformance
// jobs for many clients on one shared worker pool, answering repeated
// requests from a content-addressed result cache (every sweep point is
// byte-deterministic in its cache key, so hits are exact — see
// internal/simcache).
//
// Usage:
//
//	spatiald                          # listen on 127.0.0.1:8053, in-memory cache
//	spatiald -addr :9000              # different listen address
//	spatiald -cache /var/simcache     # persist results across restarts
//	spatiald -rate 10 -burst 20       # cap job submissions per second
//	spatiald -backend mesh:8x8:4      # default machine backend for jobs
//	                                  # (requests may override per job)
//	spatiald -addrfile /tmp/addr      # write the bound address (with -addr :0)
//
// Endpoints: POST /v1/jobs/sweep, POST /v1/jobs/boundcheck,
// GET /v1/jobs/{id}, GET /v1/jobs/{id}/result, GET /metrics,
// GET /healthz — see internal/service. `boundcheck -server URL` and
// `spatialbench -server URL -sweep NAME` are the bundled clients.
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains the ones in
// flight (up to -drain), then exits — pollers keep getting status while
// the drain runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bounds"
	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/simcache"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-sig
		close(stop)
	}()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, stop, mainProvider))
}

// Header/read/idle timeouts bound what one slow client can hold: without
// ReadHeaderTimeout a connection trickling header bytes pins a goroutine
// forever (slowloris). Job execution itself is async (submit returns an
// id; results are polled), so request bodies are small and these bounds
// never race a long simulation. No WriteTimeout: result documents for big
// cached sweeps can legitimately take a while on a slow reader, and the
// drain path needs pollers to keep receiving status. Vars, not consts, so
// the slowloris regression test can shrink them to test scale.
var (
	readHeaderTimeout = 10 * time.Second
	readTimeout       = 30 * time.Second
	idleTimeout       = 2 * time.Minute
)

// provider yields the sweep registry and claim set, injectable so the
// smoke test drives the full daemon against fast synthetic sweeps.
type provider func(quick bool) (*harness.Registry, []bounds.Claim)

func mainProvider(quick bool) (*harness.Registry, []bounds.Claim) {
	return experiments.BoundSweeps(quick), bounds.Registry()
}

func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}, prov provider) int {
	fs := flag.NewFlagSet("spatiald", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8053", "listen address (use :0 for a random port)")
		addrFile = fs.String("addrfile", "", "write the bound address to this file once listening")
		pool     = cliflags.AddPool(fs)
		cacheFlg = cliflags.AddCache(fs, "directory for the persistent result cache (default: in-memory only)")
		entries  = fs.Int("cache-entries", 4096, "in-memory LRU capacity, sweep points (0 = unbounded)")
		backend  = cliflags.AddBackend(fs)
		rate     = fs.Float64("rate", 0, "max job submissions per second (0 = unlimited)")
		burst    = fs.Int("burst", 0, "rate-limit burst (default: ceil(rate))")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	bk, err := backend.Parse()
	if err != nil {
		fmt.Fprintf(stderr, "spatiald: -backend: %v\n", err)
		return 2
	}
	store, err := cacheFlg.Backend()
	if err != nil {
		fmt.Fprintf(stderr, "spatiald: -cache: %v\n", err)
		return 2
	}
	cache := simcache.New(store, *entries)

	eng := service.New(service.Config{
		Workers:    pool.Parallel,
		Shards:     pool.Shards,
		Batch:      pool.Batch,
		Backend:    bk,
		Cache:      cache,
		Sweeps:     func(quick bool) *harness.Registry { reg, _ := prov(quick); return reg },
		Claims:     func() []bounds.Claim { _, claims := prov(false); return claims },
		RatePerSec: *rate,
		Burst:      *burst,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "spatiald: listen: %v\n", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(stderr, "spatiald: -addrfile: %v\n", err)
			ln.Close()
			return 1
		}
	}
	fmt.Fprintf(stdout, "spatiald: listening on http://%s\n", ln.Addr())

	srv := &http.Server{
		Handler:           eng.Handler(),
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		IdleTimeout:       idleTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "spatiald: serve: %v\n", err)
		return 1
	case <-stop:
	}

	fmt.Fprintln(stderr, "spatiald: shutting down, draining in-flight jobs...")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	// Drain the job pool first (pollers still get status over HTTP), then
	// stop the HTTP server itself.
	if err := eng.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "spatiald: %v\n", err)
		code = 1
	}
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
	}
	m := eng.Snapshot()
	fmt.Fprintf(stderr, "spatiald: drained: %d jobs done, %d failed; cache %d hits / %d misses; %d rows simulated\n",
		m.Jobs.Done, m.Jobs.Failed, m.Cache.Hits, m.Cache.Misses, m.RowsSimulated)
	return code
}
