package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bounds"
	"repro/internal/harness"
	"repro/internal/service"
)

// synthProvider mirrors cmd/boundcheck's: closed-form sweeps so the smoke
// test drives the whole daemon (HTTP, batcher, cache, drain) in
// milliseconds — which is what lets CI run it under -race.
func synthProvider(quick bool) (*harness.Registry, []bounds.Claim) {
	points := 5
	if quick {
		points = 3
	}
	reg := &harness.Registry{}
	reg.MustRegister(harness.SweepSpec{Name: "syn/quadratic", Points: points,
		Point: func(i int, env *harness.Env) []harness.Row {
			n := float64(int(128) << uint(2*i))
			return harness.One(n, n*n)
		}})
	claims := []bounds.Claim{{
		ID: "syn/exponent", Source: "test", Stated: "Θ(n²)",
		Kind: bounds.Exponent, Sweep: "syn/quadratic", Col: 1, Want: 2.0, Tol: 0.1,
	}}
	return reg, claims
}

// startDaemon runs the full spatiald CLI on a random port and returns a
// client plus a shutdown func that triggers the drain path and reports the
// exit code.
func startDaemon(t *testing.T, extraArgs ...string) (*service.Client, func() int) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{"-addr", "127.0.0.1:0", "-addrfile", addrFile, "-parallel", "2"}, extraArgs...)
	stop := make(chan struct{})
	exit := make(chan int, 1)
	var out, errOut bytes.Buffer
	go func() { exit <- run(args, &out, &errOut, stop, synthProvider) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return &service.Client{Base: string(data)}, func() int {
				close(stop)
				select {
				case code := <-exit:
					t.Logf("spatiald stderr:\n%s", errOut.String())
					return code
				case <-time.After(30 * time.Second):
					t.Fatal("spatiald did not exit after stop")
					return -1
				}
			}
		}
		select {
		case code := <-exit:
			t.Fatalf("spatiald exited early with %d\nstderr: %s", code, errOut.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote %s", addrFile)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSmoke is the CI gate for the daemon: start it on a random port,
// submit the same conformance run twice, and require that the second run
// is answered entirely from the result cache with byte-identical verdicts.
func TestSmoke(t *testing.T) {
	c, shutdown := startDaemon(t)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	runOnce := func() (service.JobInfo, []byte) {
		id, err := c.SubmitBoundcheck(service.BoundcheckRequest{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		info, err := c.Wait(ctx, id, 5*time.Millisecond, nil)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status != service.StatusDone {
			t.Fatalf("job = %+v", info)
		}
		doc, err := c.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		return info, doc
	}

	cold, coldDoc := runOnce()
	if cold.CacheHits != 0 {
		t.Errorf("cold run reported %d cache hits", cold.CacheHits)
	}
	warm, warmDoc := runOnce()
	if warm.CacheHits != warm.Progress.Total || warm.Progress.Total == 0 {
		t.Errorf("warm run: %d/%d points from cache, want all", warm.CacheHits, warm.Progress.Total)
	}
	if !bytes.Equal(coldDoc, warmDoc) {
		t.Errorf("verdicts differ between cold and warm runs:\ncold: %s\nwarm: %s", coldDoc, warmDoc)
	}
	if !strings.Contains(string(coldDoc), `"pass": true`) {
		t.Errorf("no passing verdict in document: %s", coldDoc)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits == 0 || m.RowsSimulated == 0 {
		t.Errorf("metrics = %+v, want nonzero cache hits and simulated rows", m)
	}

	if code := shutdown(); code != 0 {
		t.Errorf("spatiald exit = %d, want 0", code)
	}
}

// TestSmokePersistentCache: with -cache DIR, a daemon restart keeps its
// results — the second daemon's first run is already warm.
func TestSmokePersistentCache(t *testing.T) {
	dir := t.TempDir()
	c, shutdown := startDaemon(t, "-cache", dir)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	submitAndWait := func(c *service.Client) service.JobInfo {
		id, err := c.SubmitSweep(service.SweepRequest{Name: "syn/quadratic", Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		info, err := c.Wait(ctx, id, 5*time.Millisecond, nil)
		if err != nil || info.Status != service.StatusDone {
			t.Fatalf("job = %+v, err = %v", info, err)
		}
		return info
	}
	submitAndWait(c)
	if code := shutdown(); code != 0 {
		t.Fatalf("first daemon exit = %d", code)
	}

	c2, shutdown2 := startDaemon(t, "-cache", dir)
	if info := submitAndWait(c2); info.CacheHits != info.Progress.Total || info.Progress.Total == 0 {
		t.Errorf("restarted daemon: %d/%d points from cache, want all", info.CacheHits, info.Progress.Total)
	}
	if code := shutdown2(); code != 0 {
		t.Errorf("second daemon exit = %d", code)
	}
}

// TestSlowHeaderClientDisconnected is the slowloris regression test: a
// client that opens a connection and never finishes its request header must
// be cut off by ReadHeaderTimeout instead of pinning a server goroutine
// forever, and the daemon must stay responsive to real clients throughout.
func TestSlowHeaderClientDisconnected(t *testing.T) {
	defer func(h, r, i time.Duration) { readHeaderTimeout, readTimeout, idleTimeout = h, r, i }(
		readHeaderTimeout, readTimeout, idleTimeout)
	readHeaderTimeout = 150 * time.Millisecond
	readTimeout = 300 * time.Millisecond

	c, shutdown := startDaemon(t)
	defer shutdown()

	conn, err := net.Dial("tcp", strings.TrimPrefix(c.Base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Trickle an eternally incomplete request line, slowloris-style.
	if _, err := conn.Write([]byte("GET /healthz HT")); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 256)
	start := time.Now()
	for {
		_, err := conn.Read(buf)
		if err != nil {
			break // server closed the connection (or sent 408 then closed)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("slow-header connection survived %v, want prompt close", elapsed)
	}

	// A well-behaved client is unaffected while the slow one is cut off.
	if _, err := c.Metrics(); err != nil {
		t.Errorf("healthy client blocked by slowloris connection: %v", err)
	}
}

func TestBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	stop := make(chan struct{})
	if code := run([]string{"-bogus"}, &out, &errOut, stop, synthProvider); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}
