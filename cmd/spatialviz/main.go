// Command spatialviz renders ASCII visualizations of the Spatial Computer
// Model: space-filling curve layouts and per-PE message-traffic heatmaps of
// the library's algorithms. It exists to make the spatial structure of the
// algorithms — quadrant recursion, Z-order locality, the all-pairs
// "explosion" — visible at a glance.
//
// Usage:
//
//	spatialviz -curve zorder -side 8        # draw a curve's visit order
//	spatialviz -curve hilbert -side 8
//	spatialviz -heat scan -side 16          # traffic heatmap of an algorithm
//	spatialviz -heat sort -side 16
//	spatialviz -heat broadcast -side 32
//	spatialviz -heat spmv -side 16
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/sortnet"
	"repro/internal/spmv"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/zorder"
)

func main() {
	var (
		curve = flag.String("curve", "", "draw a curve: zorder | hilbert")
		heat  = flag.String("heat", "", "heatmap an algorithm: scan | sort | bitonic | broadcast | reduce | selection | spmv")
		side  = flag.Int("side", 8, "grid side (power of two)")
		seed  = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	if !zorder.IsPow2(*side) {
		fmt.Fprintln(os.Stderr, "side must be a power of two")
		os.Exit(2)
	}
	switch {
	case *curve != "":
		drawCurve(*curve, *side)
	case *heat != "":
		drawHeat(*heat, *side, *seed)
	default:
		flag.Usage()
	}
}

// drawCurve prints the visit order of a space-filling curve and its total
// wire length.
func drawCurve(kind string, side int) {
	var cells [][2]int
	var energy int64
	switch kind {
	case "zorder":
		cells = zorder.Curve(side)
		energy = zorder.CurveEnergy(side)
	case "hilbert":
		cells = zorder.HilbertCurve(side)
		energy = zorder.HilbertCurveEnergy(side)
	default:
		fmt.Fprintf(os.Stderr, "unknown curve %q\n", kind)
		os.Exit(2)
	}
	idx := make([][]int, side)
	for r := range idx {
		idx[r] = make([]int, side)
	}
	for i, c := range cells {
		idx[c[0]][c[1]] = i
	}
	w := len(fmt.Sprint(side*side - 1))
	for r := 0; r < side; r++ {
		parts := make([]string, side)
		for c := 0; c < side; c++ {
			parts[c] = fmt.Sprintf("%*d", w, idx[r][c])
		}
		fmt.Println(strings.Join(parts, " "))
	}
	fmt.Printf("\n%s curve on %dx%d: total length %d (n-1 = %d)\n",
		kind, side, side, energy, side*side-1)
}

// drawHeat runs an algorithm with a trace.Heatmap sink attached — each PE
// accumulates the total Manhattan distance of the messages it sends and
// receives — then renders the map with intensity characters.
func drawHeat(op string, side int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n := side * side
	m := machine.New()
	hm := trace.NewHeatmap()
	m.SetSink(hm)

	r := grid.Square(machine.Coord{}, side)
	vals := workload.Array(workload.Random, n, rng)
	place := func(t grid.Track) {
		for i := 0; i < n; i++ {
			m.Set(t.At(i), "v", vals[i])
		}
	}
	switch op {
	case "scan":
		place(grid.ZOrder(r))
		collectives.Scan(m, r, "v", collectives.Add, 0.0)
	case "sort":
		place(grid.RowMajor(r))
		core.MergeSort(m, r, "v", order.Float64)
	case "bitonic":
		place(grid.RowMajor(r))
		sortnet.Sort(m, grid.RowMajor(r), "v", n, order.Float64)
	case "broadcast":
		m.Set(r.Origin, "v", 1.0)
		collectives.Broadcast(m, r, "v")
	case "reduce":
		place(grid.RowMajor(r))
		collectives.Reduce(m, r, "v", collectives.Add)
	case "selection":
		place(grid.RowMajor(r))
		core.Select(m, r, "v", n/2, order.Float64, rng)
	case "spmv":
		a := workload.SparseMatrix(workload.MatUniform, n, n, rng)
		x := workload.Array(workload.Random, n, rng)
		if _, err := spmv.Multiply(m, a, x); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown heat op %q\n", op)
		os.Exit(2)
	}

	// Bounding box of all traffic (algorithms use scratch outside r),
	// always covering the input region.
	minR, maxR, minC, maxC := 0, side-1, 0, side-1
	var peak int64
	if lo, hi, ok := hm.Bounds(); ok {
		minR, maxR = min(minR, lo.Row), max(maxR, hi.Row)
		minC, maxC = min(minC, lo.Col), max(maxC, hi.Col)
	}
	for row := minR; row <= maxR; row++ {
		for col := minC; col <= maxC; col++ {
			if t := hm.Cell(trace.Coord{Row: row, Col: col}).Traffic(); t > peak {
				peak = t
			}
		}
	}
	const ramp = " .:-=+*#%@"
	fmt.Printf("%s on %dx%d (input region top-left; peak PE traffic %d):\n\n", op, side, side, peak)
	for row := minR; row <= maxR; row++ {
		var b strings.Builder
		for col := minC; col <= maxC; col++ {
			t := hm.Cell(trace.Coord{Row: row, Col: col}).Traffic()
			lvl := 0
			if peak > 0 && t > 0 {
				lvl = 1 + int(t*int64(len(ramp)-2)/peak)
				if lvl > len(ramp)-1 {
					lvl = len(ramp) - 1
				}
			}
			b.WriteByte(ramp[lvl])
		}
		fmt.Println(b.String())
	}
	mm := m.Metrics()
	fmt.Printf("\n%v maxLinkXY=%d\n", mm, hm.MaxLinkLoad())
}
