// Command boundcheck machine-checks the paper's Θ/O bounds against fresh
// measurements: it replays the registered bound sweeps on the simulator,
// fits the results, and evaluates every claim in the internal/bounds
// registry. The exit code is the conformance verdict — 0 when every claim
// holds, 1 when any fails — which is what `make conformance` and CI gate
// on.
//
// Usage:
//
//	boundcheck -quick          # smaller sweeps (~seconds; the CI gate)
//	boundcheck                 # full sweeps (minutes; nightly / release)
//	boundcheck -json           # structured verdicts on stdout
//	boundcheck -run table1/    # only claims whose ID has this prefix
//	boundcheck -timeout 9m     # per-sweep budget; unstarted points skipped
//	boundcheck -shards 4       # shard-parallel rounds inside each machine
//	boundcheck -batch=false    # disable the batched/counting-only fast path
//	boundcheck -list           # list registered claims and exit
//	boundcheck -cache DIR      # content-addressed result cache (see below)
//	boundcheck -backend mesh:8x8:4  # measure on a folded finite fabric
//	                           # (claims still judge what they state; the
//	                           # spec is recorded as "machine" in -json)
//	boundcheck -server URL     # run on a spatiald daemon instead of locally
//	boundcheck -compare OLD.json NEW.json  # diff two -json runs; exit 1 on
//	                           # any claim that flipped from PASS to FAIL
//
// -cache points at a directory of previously computed sweep rows keyed by
// (sweep, point, seed, shards, batch, code version) — see
// internal/simcache. Because every sweep point is byte-deterministic in
// those inputs, a warm rerun produces the *identical* report (table and
// -json bytes) while skipping the simulation entirely; hit/miss counts go
// to stderr, never into the report. -server submits the run as a job to a
// spatiald daemon and polls it; the daemon's own pool settings replace
// -parallel/-shards/-batch, and -quick/-seed/-maxpoints/-timeout/-run
// travel with the request.
//
// -shards (default GOMAXPROCS) and -batch (default on) change wall-clock
// only: sweep rows are byte-identical for any setting (see
// internal/machine), and the settings used are recorded in the -json
// document so artifacts are self-describing.
//
// Full runs report weighted progress and an ETA on stderr by default
// (large-n points dominate the wall clock, so the estimate is cost-based,
// not point-count-based); -progress=false silences it.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/bounds"
	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, mainProvider))
}

// provider yields the sweep registry and claim set for a run; tests inject
// synthetic ones to exercise failure paths without minutes of simulation.
type provider func(quick bool) (*harness.Registry, []bounds.Claim)

func mainProvider(quick bool) (*harness.Registry, []bounds.Claim) {
	return experiments.BoundSweeps(quick), bounds.Registry()
}

func run(args []string, stdout, stderr io.Writer, prov provider) int {
	fs := flag.NewFlagSet("boundcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick     = fs.Bool("quick", false, "smaller sweeps (seconds instead of minutes)")
		full      = fs.Bool("full", false, "full sweeps (the default; flag exists for symmetry)")
		jsonOut   = fs.Bool("json", false, "emit the verdicts as JSON")
		list      = fs.Bool("list", false, "list registered claims and exit")
		runFilter = fs.String("run", "", "only evaluate claims whose ID starts with this prefix")
		seed      = cliflags.AddSeed(fs)
		pool      = cliflags.AddPool(fs)
		maxPoints = fs.Int("maxpoints", 0, "cap every sweep at its first k points (0 = no cap)")
		timeout   = cliflags.AddTimeout(fs)
		progress  = fs.Bool("progress", false, "report completion and ETA on stderr (default true for full runs)")
		cacheFlag = cliflags.AddCache(fs, "")
		backend   = cliflags.AddBackend(fs)
		server    = cliflags.AddServer(fs, "run on this spatiald daemon (URL or host:port) instead of locally")
		compare   = fs.Bool("compare", false, "diff two -json verdict documents (OLD.json NEW.json); exit 1 on a PASS→FAIL flip")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	bk, err := backend.Parse()
	if err != nil {
		fmt.Fprintf(stderr, "boundcheck: -backend: %v\n", err)
		return 2
	}
	// The canonical spec travels into the JSON document (and to the
	// daemon); ideal stays "" so pre-backend artifacts compare equal.
	machineMeta := ""
	if bk.Finite() {
		machineMeta = bk.String()
	}
	if *compare {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "boundcheck: -compare takes exactly two arguments: OLD.json NEW.json")
			return 2
		}
		return runCompare(fs.Arg(0), fs.Arg(1), stdout, stderr)
	}
	if *quick && *full {
		fmt.Fprintln(stderr, "boundcheck: -quick and -full are mutually exclusive")
		return 2
	}
	progressSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "progress" {
			progressSet = true
		}
	})
	if !progressSet && !*quick {
		// Full sweeps run for minutes; default to telling the operator
		// where the run stands. Quick runs stay silent (they gate CI logs).
		*progress = true
	}

	if *server != "" && !*list {
		return runOnServer(*server, stdout, stderr, serverRun{
			quick: *quick, seed: *seed, maxPoints: *maxPoints, timeout: *timeout,
			filter: *runFilter, jsonOut: *jsonOut, progress: *progress,
			backend: machineMeta,
		})
	}

	reg, claims := prov(*quick)
	if *runFilter != "" {
		var kept []bounds.Claim
		for _, c := range claims {
			if strings.HasPrefix(c.ID, *runFilter) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(stderr, "boundcheck: no claims match -run %q; registered IDs:\n", *runFilter)
			for _, c := range claims {
				fmt.Fprintf(stderr, "  %s\n", c.ID)
			}
			return 2
		}
		claims = kept
	}

	if *list {
		t := analysis.NewTable("id", "source", "kind", "stated", "sweep")
		for _, c := range claims {
			t.AddRow(c.ID, c.Source, string(c.Kind), c.Stated, c.Sweep)
		}
		fmt.Fprint(stdout, t.String())
		return 0
	}

	// Largest-first scheduling: the 2²⁰ tail points start immediately and
	// overlap the swarm of cheap points instead of serializing the pool at
	// the end of the run. Row order and RNG seeding are unaffected — and so
	// are the sweep rows under -shards/-batch (sharding and the counting
	// fast path change wall-clock only; see internal/machine).
	opts := append(pool.HarnessOptions(), harness.WithLargestFirst(), harness.WithBackend(bk))
	cache, err := cacheFlag.Open()
	if err != nil {
		fmt.Fprintf(stderr, "boundcheck: -cache: %v\n", err)
		return 2
	}
	if cache != nil {
		opts = append(opts, harness.WithCache(cache))
	}
	if *progress {
		start := time.Now()
		opts = append(opts, harness.WithWeightedProgress(func(p harness.Progress) {
			// Cache hits carry no simulation time, so the ETA extrapolates
			// from simulated cost only (Done−Hit over Total−Hit). An all-hit
			// run still prints 100% instead of dividing by zero.
			line := fmt.Sprintf("\r%d/%d points (%3.0f%% of est. cost%s%s)",
				p.Done, p.Total, 100*p.Fraction(),
				hitSuffix(p.Hits),
				etaSuffix(time.Since(start), p.DoneCost-p.HitCost, p.TotalCost-p.HitCost))
			fmt.Fprint(stderr, line)
			if p.Done == p.Total {
				fmt.Fprintln(stderr)
			}
		}))
	}

	rep, err := bounds.Check(harness.New(*seed, opts...), reg, claims,
		bounds.Options{MaxPoints: *maxPoints, Deadline: *timeout})
	if err != nil {
		fmt.Fprintf(stderr, "boundcheck: %v\n", err)
		return 2
	}
	if n := rep.Skipped(); n > 0 {
		fmt.Fprintf(stderr, "boundcheck: -timeout %v skipped %d sweep points; claims judged on the points that ran\n", *timeout, n)
	}
	cacheFlag.ReportStats(stderr, "boundcheck", cache)

	if *jsonOut {
		if err := bounds.WriteReportJSON(stdout, rep, bounds.RunMeta{
			Quick: *quick, Seed: *seed, MaxPoints: *maxPoints, Shards: pool.Shards, Batch: pool.Batch,
			Machine: machineMeta,
		}); err != nil {
			fmt.Fprintf(stderr, "boundcheck: %v\n", err)
			return 2
		}
	} else {
		writeTable(stdout, rep)
	}
	if !rep.Passed() {
		return 1
	}
	return 0
}

// etaSuffix renders a cost-weighted remaining-time estimate once enough of
// the run has finished for extrapolation to mean anything. Callers pass
// simulated (non-hit) cost so cached points don't skew the rate.
func etaSuffix(elapsed time.Duration, doneCost, totalCost float64) string {
	if doneCost <= 0 || totalCost <= doneCost {
		return ""
	}
	eta := time.Duration(float64(elapsed) * (totalCost - doneCost) / doneCost)
	return ", ETA " + eta.Round(time.Second).String()
}

// hitSuffix annotates progress lines with the cache-hit count, when any.
func hitSuffix(hits int) string {
	if hits == 0 {
		return ""
	}
	return fmt.Sprintf(", %d cached", hits)
}

func writeTable(w io.Writer, rep bounds.Report) {
	t := analysis.NewTable("claim", "source", "stated", "verdict", "detail")
	for _, v := range rep.Verdicts {
		verdict := "PASS"
		if !v.Pass {
			verdict = "FAIL"
		}
		t.AddRow(v.ID, v.Source, v.Stated, verdict, v.Detail)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "\n%d/%d claims hold\n", len(rep.Verdicts)-rep.Failures(), len(rep.Verdicts))
}

// serverRun carries the flags a -server run ships to the daemon.
type serverRun struct {
	quick     bool
	seed      int64
	maxPoints int
	timeout   time.Duration
	filter    string
	jsonOut   bool
	progress  bool
	backend   string // canonical finite-backend spec, "" for ideal
}

// runOnServer submits the conformance run to a spatiald daemon, polls it
// to completion, and renders the daemon's result document. The document
// is the same bounds.MarshalReportJSON bytes a local -json run with the
// daemon's pool settings would produce, so -json output is directly
// comparable across local and server runs.
func runOnServer(server string, stdout, stderr io.Writer, sr serverRun) int {
	c := &service.Client{Base: server}
	id, err := c.SubmitBoundcheck(service.BoundcheckRequest{
		Quick: sr.quick, Seed: sr.seed, MaxPoints: sr.maxPoints,
		TimeoutMS: sr.timeout.Milliseconds(), Run: sr.filter, Backend: sr.backend,
	})
	if err != nil {
		fmt.Fprintf(stderr, "boundcheck: %v\n", err)
		return 2
	}
	var onProgress func(service.JobInfo)
	if sr.progress {
		onProgress = func(info service.JobInfo) {
			p := info.Progress
			fmt.Fprintf(stderr, "\r%s: %d/%d points (%3.0f%% of est. cost)", id, p.Done, p.Total, 100*info.Fraction)
			if info.Status != service.StatusRunning {
				fmt.Fprintln(stderr)
			}
		}
	}
	info, err := c.Wait(context.Background(), id, 250*time.Millisecond, onProgress)
	if err != nil {
		fmt.Fprintf(stderr, "boundcheck: %v\n", err)
		return 2
	}
	if info.Status != service.StatusDone {
		fmt.Fprintf(stderr, "boundcheck: job %s %s: %s\n", id, info.Status, info.Error)
		return 2
	}
	if info.Skipped > 0 {
		fmt.Fprintf(stderr, "boundcheck: daemon skipped %d sweep points on its deadline; claims judged on the points that ran\n", info.Skipped)
	}
	fmt.Fprintf(stderr, "boundcheck: server job %s: %d/%d points from cache\n", id, info.CacheHits, info.Progress.Total)
	doc, err := c.Result(id)
	if err != nil {
		fmt.Fprintf(stderr, "boundcheck: %v\n", err)
		return 2
	}
	rep, _, err := bounds.ReadReportJSON(doc)
	if err != nil {
		fmt.Fprintf(stderr, "boundcheck: bad result document: %v\n", err)
		return 2
	}
	if sr.jsonOut {
		stdout.Write(doc)
	} else {
		writeTable(stdout, rep)
	}
	if !rep.Passed() {
		return 1
	}
	return 0
}
