package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/bounds"
)

// runCompare diffs two conformance documents (the -json output of two
// boundcheck runs) claim by claim. It exists so the nightly job can hold
// tonight's verdicts against last night's artifact: a claim that passed
// before and fails now is a conformance regression and exits 1, with a
// diff naming the flipped claims and both details. New, removed, and
// newly-fixed claims are reported informationally — growing the registry
// or repairing a bound is not a regression. Exit 2 is reserved for
// unreadable documents, mirroring the main command's usage errors.
func runCompare(oldPath, newPath string, stdout, stderr io.Writer) int {
	oldRep, oldMeta, err := readReportFile(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "boundcheck: -compare: %s: %v\n", oldPath, err)
		return 2
	}
	newRep, newMeta, err := readReportFile(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "boundcheck: -compare: %s: %v\n", newPath, err)
		return 2
	}
	if oldMeta.Quick != newMeta.Quick {
		fmt.Fprintf(stderr, "boundcheck: -compare: warning: comparing a quick run against a full run (old quick=%v, new quick=%v)\n",
			oldMeta.Quick, newMeta.Quick)
	}

	oldByID := make(map[string]bounds.Verdict, len(oldRep.Verdicts))
	for _, v := range oldRep.Verdicts {
		oldByID[v.ID] = v
	}
	newByID := make(map[string]bounds.Verdict, len(newRep.Verdicts))
	for _, v := range newRep.Verdicts {
		newByID[v.ID] = v
	}

	var regressed, fixed, added, removed []string
	for _, v := range newRep.Verdicts {
		prev, ok := oldByID[v.ID]
		switch {
		case !ok:
			added = append(added, v.ID)
		case prev.Pass && !v.Pass:
			regressed = append(regressed, v.ID)
		case !prev.Pass && v.Pass:
			fixed = append(fixed, v.ID)
		}
	}
	for _, v := range oldRep.Verdicts {
		if _, ok := newByID[v.ID]; !ok {
			removed = append(removed, v.ID)
		}
	}
	sort.Strings(regressed)
	sort.Strings(fixed)
	sort.Strings(added)
	sort.Strings(removed)

	fmt.Fprintf(stdout, "compared %d claims (old) vs %d claims (new)\n",
		len(oldRep.Verdicts), len(newRep.Verdicts))
	for _, id := range added {
		fmt.Fprintf(stdout, "  new claim:   %s (%s)\n", id, passWord(newByID[id].Pass))
	}
	for _, id := range removed {
		fmt.Fprintf(stdout, "  removed:     %s (was %s)\n", id, passWord(oldByID[id].Pass))
	}
	for _, id := range fixed {
		fmt.Fprintf(stdout, "  fixed:       %s\n    now:  %s\n", id, newByID[id].Detail)
	}
	for _, id := range regressed {
		fmt.Fprintf(stdout, "  REGRESSION:  %s\n    was:  %s\n    now:  %s\n",
			id, oldByID[id].Detail, newByID[id].Detail)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(stdout, "\n%d claim(s) regressed from PASS to FAIL\n", len(regressed))
		return 1
	}
	fmt.Fprintln(stdout, "no conformance regressions")
	return 0
}

func readReportFile(path string) (bounds.Report, bounds.RunMeta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return bounds.Report{}, bounds.RunMeta{}, err
	}
	return bounds.ReadReportJSON(data)
}

func passWord(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}
