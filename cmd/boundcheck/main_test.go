package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/bounds"
	"repro/internal/harness"
	"repro/internal/service"
)

var update = flag.Bool("update", false, "rewrite golden files")

// synthProvider returns closed-form sweeps and claims so exit codes are
// testable without simulation: one claim that holds and one that cannot.
func synthProvider(pass bool) provider {
	return func(quick bool) (*harness.Registry, []bounds.Claim) {
		reg := &harness.Registry{}
		reg.MustRegister(harness.SweepSpec{Name: "syn/quadratic", Points: 4,
			Point: func(i int, env *harness.Env) []harness.Row {
				n := float64(int(256) << uint(2*i))
				return harness.One(n, n*n)
			}})
		want := 2.0 // the sweep's true exponent
		if !pass {
			want = 1.0 // a Θ(n) claim against n² data: must fail
		}
		return reg, []bounds.Claim{{
			ID: "syn/exponent", Source: "test", Stated: "synthetic",
			Kind: bounds.Exponent, Sweep: "syn/quadratic", Col: 1, Want: want, Tol: 0.1,
		}}
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		prov provider
		want int
	}{
		{"all claims hold", []string{"-quick"}, synthProvider(true), 0},
		{"out-of-tolerance exponent", []string{"-quick"}, synthProvider(false), 1},
		{"failure in json mode", []string{"-quick", "-json"}, synthProvider(false), 1},
		{"quick and full conflict", []string{"-quick", "-full"}, synthProvider(true), 2},
		{"unknown flag", []string{"-bogus"}, synthProvider(true), 2},
		{"no claims match -run", []string{"-run", "nope/"}, synthProvider(true), 2},
		{"list is not a run", []string{"-list"}, synthProvider(false), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if got := run(tc.args, &out, &errOut, tc.prov); got != tc.want {
				t.Errorf("exit = %d, want %d (stderr: %s)", got, tc.want, errOut.String())
			}
		})
	}
}

// TestRunFilterListsClaimIDs: a -run prefix that matches nothing must name
// every registered claim ID on stderr, so the caller can correct the typo
// without a separate -list invocation.
func TestRunFilterListsClaimIDs(t *testing.T) {
	var out, errOut bytes.Buffer
	if got := run([]string{"-run", "nope/"}, &out, &errOut, synthProvider(true)); got != 2 {
		t.Fatalf("exit = %d, want 2", got)
	}
	if !strings.Contains(errOut.String(), "syn/exponent") {
		t.Errorf("stderr does not list the registered claim IDs: %s", errOut.String())
	}
}

// writeVerdictDoc renders a canonical conformance document with the given
// claim verdicts, standing in for a stored nightly artifact.
func writeVerdictDoc(t *testing.T, path string, verdicts map[string]bool) {
	t.Helper()
	var rep bounds.Report
	ids := make([]string, 0, len(verdicts))
	for id := range verdicts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rep.Verdicts = append(rep.Verdicts, bounds.Verdict{
			ID: id, Pass: verdicts[id], Detail: fmt.Sprintf("detail for %s (pass=%v)", id, verdicts[id]),
		})
	}
	data, err := bounds.MarshalReportJSON(rep, bounds.RunMeta{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompareMode covers the nightly regression gate: only a PASS→FAIL
// flip fails the comparison; new, removed, and fixed claims are reported
// but benign.
func TestCompareMode(t *testing.T) {
	dir := t.TempDir()
	oldDoc := filepath.Join(dir, "old.json")
	writeVerdictDoc(t, oldDoc, map[string]bool{"a/ok": true, "a/broken": false, "a/gone": true})

	cases := []struct {
		name     string
		verdicts map[string]bool
		want     int
		output   []string
	}{
		{"unchanged", map[string]bool{"a/ok": true, "a/broken": false, "a/gone": true},
			0, []string{"no conformance regressions"}},
		{"regression", map[string]bool{"a/ok": false, "a/broken": false, "a/gone": true},
			1, []string{"REGRESSION:  a/ok", "was:", "now:", "1 claim(s) regressed"}},
		{"fixed and grown", map[string]bool{"a/ok": true, "a/broken": true, "a/new": false},
			0, []string{"fixed:       a/broken", "new claim:   a/new (FAIL)", "removed:     a/gone (was PASS)", "no conformance regressions"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newDoc := filepath.Join(dir, "new.json")
			writeVerdictDoc(t, newDoc, tc.verdicts)
			var out, errOut bytes.Buffer
			if got := run([]string{"-compare", oldDoc, newDoc}, &out, &errOut, synthProvider(true)); got != tc.want {
				t.Fatalf("exit = %d, want %d (stderr: %s)", got, tc.want, errOut.String())
			}
			for _, want := range tc.output {
				if !strings.Contains(out.String(), want) {
					t.Errorf("diff output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

// TestCompareModeUsage: bad arity and unreadable documents are usage
// errors (exit 2), never silent successes.
func TestCompareModeUsage(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	writeVerdictDoc(t, good, map[string]bool{"a/ok": true})
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-compare", good},
		{"-compare", good, good, good},
		{"-compare", good, filepath.Join(dir, "missing.json")},
		{"-compare", bad, good},
	} {
		var out, errOut bytes.Buffer
		if got := run(args, &out, &errOut, synthProvider(true)); got != 2 {
			t.Errorf("%v: exit = %d, want 2 (stderr: %s)", args, got, errOut.String())
		}
	}
}

// TestCompareRealDocuments round-trips the real -json output through
// -compare: a run compared against itself reports no regressions.
func TestCompareRealDocuments(t *testing.T) {
	var doc, errOut bytes.Buffer
	if got := run([]string{"-quick", "-json"}, &doc, &errOut, synthProvider(true)); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errOut.String())
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, doc.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if got := run([]string{"-compare", path, path}, &out, &errOut, synthProvider(true)); got != 0 {
		t.Fatalf("self-compare exit = %d\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "no conformance regressions") {
		t.Errorf("self-compare output:\n%s", out.String())
	}
}

func TestFailureVerdictInOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if got := run([]string{"-quick"}, &out, &errOut, synthProvider(false)); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "0/1 claims hold") {
		t.Errorf("table output missing failure verdict:\n%s", out.String())
	}
}

// TestJSONRunMetadata: the JSON document carries the run shape — the
// maxpoints cap and per-sweep row counts — so nightly artifacts are
// self-describing about their coverage.
func TestJSONRunMetadata(t *testing.T) {
	var out, errOut bytes.Buffer
	if got := run([]string{"-quick", "-json", "-maxpoints", "2"}, &out, &errOut, synthProvider(true)); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, errOut.String())
	}
	var doc struct {
		MaxPoints int `json:"maxpoints"`
		Sweeps    []struct {
			Name    string `json:"name"`
			Rows    int    `json:"rows"`
			Skipped int    `json:"skipped"`
		} `json:"sweeps"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if doc.MaxPoints != 2 {
		t.Errorf("maxpoints = %d, want 2", doc.MaxPoints)
	}
	if len(doc.Sweeps) != 1 || doc.Sweeps[0].Name != "syn/quadratic" || doc.Sweeps[0].Rows != 2 {
		t.Errorf("sweeps = %+v, want syn/quadratic with 2 rows", doc.Sweeps)
	}
}

// TestTimeoutSkipsPoints: an expired -timeout budget skips every
// unstarted point; the run reports the truncation on stderr and the
// claim fails on the empty evidence instead of passing vacuously.
func TestTimeoutSkipsPoints(t *testing.T) {
	var out, errOut bytes.Buffer
	got := run([]string{"-quick", "-timeout", "1ns"}, &out, &errOut, synthProvider(true))
	if got != 1 {
		t.Fatalf("exit = %d, want 1 (no rows → claim cannot hold); stderr: %s", got, errOut.String())
	}
	if !strings.Contains(errOut.String(), "skipped") {
		t.Errorf("stderr does not report the skipped points: %s", errOut.String())
	}
}

// TestCacheWarmRunByteIdentical: the -cache contract — a second identical
// run serves every point from the cache and still prints the exact same
// report bytes, with hit/miss accounting on stderr only.
func TestCacheWarmRunByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-quick", "-json", "-cache", dir}
	var cold, warm, errCold, errWarm bytes.Buffer
	if got := run(args, &cold, &errCold, synthProvider(true)); got != 0 {
		t.Fatalf("cold exit = %d (stderr: %s)", got, errCold.String())
	}
	if got := run(args, &warm, &errWarm, synthProvider(true)); got != 0 {
		t.Fatalf("warm exit = %d (stderr: %s)", got, errWarm.String())
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("warm run output differs from cold:\ncold: %s\nwarm: %s", cold.String(), warm.String())
	}
	if !strings.Contains(errCold.String(), "cache: 0 hits, 4 misses") {
		t.Errorf("cold stderr missing miss accounting: %s", errCold.String())
	}
	if !strings.Contains(errWarm.String(), "cache: 4 hits, 0 misses") {
		t.Errorf("warm stderr does not show an all-hit run: %s", errWarm.String())
	}
}

// TestServerModeMatchesLocal: `boundcheck -server` must print the same
// -json document (and exit code) as a local run with the daemon's pool
// settings — the verdict bytes are produced by the same
// bounds.MarshalReportJSON on both paths.
func TestServerModeMatchesLocal(t *testing.T) {
	for _, pass := range []bool{true, false} {
		prov := synthProvider(pass)
		eng := service.New(service.Config{
			Workers: 2,
			Sweeps:  func(quick bool) *harness.Registry { reg, _ := prov(quick); return reg },
			Claims:  func() []bounds.Claim { _, claims := prov(false); return claims },
		})
		srv := httptest.NewServer(eng.Handler())

		var local, remote, errOut bytes.Buffer
		localCode := run([]string{"-quick", "-json", "-shards", "1", "-batch=false"}, &local, &errOut, prov)
		remoteCode := run([]string{"-server", srv.URL, "-quick", "-json"}, &remote, &errOut, prov)
		srv.Close()

		want := 0
		if !pass {
			want = 1
		}
		if localCode != want || remoteCode != want {
			t.Errorf("pass=%t: exit local=%d remote=%d, want %d (stderr: %s)",
				pass, localCode, remoteCode, want, errOut.String())
		}
		if !bytes.Equal(local.Bytes(), remote.Bytes()) {
			t.Errorf("pass=%t: server document differs from local run:\nlocal:  %s\nserver: %s",
				pass, local.String(), remote.String())
		}
	}
}

// TestGoldenJSON pins the machine-readable output format: boundcheck -json
// over the quick scan sweep at seed 1 is byte-deterministic (floats are
// rounded %.4g strings), so docs generators and CI consumers can rely on
// it. Regenerate with `go test ./cmd/boundcheck -run Golden -update`.
func TestGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick scan sweep")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-quick", "-json", "-run", "table1/scan"}, &out, &errOut, mainProvider)
	if code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errOut.String())
	}
	golden := filepath.Join("testdata", "scan_quick.json")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("JSON output drifted from %s (rerun with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, out.Bytes(), want)
	}
}
