package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

func runCheck(t *testing.T, content string) (string, string, int) {
	t.Helper()
	f := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(f, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{f}, &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestValidObjectForm(t *testing.T) {
	out, errOut, code := runCheck(t, `{"traceEvents":[
		{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"grid"}},
		{"name":"a","ph":"B","ts":1,"pid":1,"tid":0},
		{"name":"send d=1","ph":"X","ts":2,"dur":1,"pid":0,"tid":0},
		{"name":"a","ph":"E","ts":3,"pid":1,"tid":0}
	]}`)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "4 events") || !strings.Contains(out, "1 slices") {
		t.Errorf("summary = %q", out)
	}
}

func TestValidBareArray(t *testing.T) {
	_, errOut, code := runCheck(t, `[{"name":"x","ph":"X","ts":1,"pid":0,"tid":0}]`)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
}

func TestViolations(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"not JSON", `{"traceEvents":[`, "not valid JSON"},
		{"wrong shape", `{"foo":1}`, "neither a JSON event array"},
		{"missing ph", `[{"name":"x","ts":1}]`, "missing ph"},
		{"missing ts", `[{"name":"x","ph":"X","pid":0,"tid":0}]`, "missing ts"},
		{"missing name", `[{"ph":"X","ts":1,"pid":0,"tid":0}]`, "missing name"},
		{"unbalanced E", `[{"name":"a","ph":"E","ts":1,"pid":0,"tid":0}]`, "no open scope"},
		{"unclosed B", `[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0}]`, "unclosed scope"},
		{"crossed scopes", `[
			{"name":"a","ph":"B","ts":1,"pid":0,"tid":0},
			{"name":"b","ph":"B","ts":2,"pid":0,"tid":0},
			{"name":"a","ph":"E","ts":3,"pid":0,"tid":0},
			{"name":"b","ph":"E","ts":4,"pid":0,"tid":0}
		]`, "closes open scope"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, errOut, code := runCheck(t, c.doc)
			if code != 1 {
				t.Fatalf("exit %d, want 1", code)
			}
			if !strings.Contains(errOut, c.want) {
				t.Errorf("stderr = %q, want %q", errOut, c.want)
			}
		})
	}
}

// TestScopesBalancePerTrack: identical names on different (pid,tid) tracks
// are independent scopes.
func TestScopesBalancePerTrack(t *testing.T) {
	_, errOut, code := runCheck(t, `[
		{"name":"a","ph":"B","ts":1,"pid":0,"tid":0},
		{"name":"a","ph":"B","ts":2,"pid":0,"tid":1},
		{"name":"a","ph":"E","ts":3,"pid":0,"tid":0},
		{"name":"a","ph":"E","ts":4,"pid":0,"tid":1}
	]`)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
}

// TestChromeSinkOutputPasses validates a real trace produced by the
// machine + ChromeSink pipeline, phases included.
func TestChromeSinkOutputPasses(t *testing.T) {
	var buf bytes.Buffer
	cs := trace.NewChromeSink(&buf)
	m := machine.New()
	m.SetSink(cs)
	m.Phase("demo/stage1")
	m.Set(machine.Coord{}, "v", 1.0)
	m.Send(machine.Coord{}, "v", machine.Coord{Row: 2}, "v")
	m.Phase("demo/stage2")
	m.Send(machine.Coord{Row: 2}, "v", machine.Coord{Row: 2, Col: 3}, "v")
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := runCheck(t, buf.String())
	if code != 0 {
		t.Fatalf("real ChromeSink trace failed validation (exit %d): %s", code, errOut)
	}
}

func TestUsageAndMissingFile(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"/no/such/file.json"}, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
