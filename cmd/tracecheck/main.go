// Command tracecheck validates a Chrome trace_event JSON file — the format
// `spatialbench -trace` emits and chrome://tracing / Perfetto load. It is
// the `make trace-smoke` gate: a structurally broken trace fails the build
// instead of failing silently in a browser tab.
//
// Checks: the document parses (either a bare event array or an object with
// a "traceEvents" array); every event carries a phase type and a name,
// duration ("X") and begin/end ("B"/"E") events carry timestamps; and
// B/E scopes balance per (pid, tid) track with LIFO nesting.
//
// Usage:
//
//	tracecheck trace.json
//	spatialbench -exp scan-ablation -quick -parallel 1 -trace /dev/stdout | tracecheck /dev/stdin
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

type event struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Pid  int64    `json:"pid"`
	Tid  int64    `json:"tid"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: tracecheck FILE")
		return 2
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "tracecheck:", err)
		return 1
	}

	events, err := decode(data)
	if err != nil {
		fmt.Fprintln(stderr, "tracecheck:", err)
		return 1
	}
	if errs := check(events); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(stderr, "tracecheck:", e)
		}
		return 1
	}

	counts := make(map[string]int)
	for _, e := range events {
		counts[e.Ph]++
	}
	fmt.Fprintf(stdout, "tracecheck: %s ok: %d events (%d slices, %d begin/end, %d counters, %d metadata)\n",
		args[0], len(events), counts["X"], counts["B"]+counts["E"], counts["C"], counts["M"])
	return 0
}

// decode accepts both trace_event layouts: a bare JSON array of events, or
// an object whose "traceEvents" member holds the array.
func decode(data []byte) ([]event, error) {
	var events []event
	if err := json.Unmarshal(data, &events); err == nil {
		return events, nil
	}
	var doc struct {
		TraceEvents *[]event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("neither a JSON event array nor an object with a traceEvents array")
	}
	return *doc.TraceEvents, nil
}

type track struct {
	Pid, Tid int64
}

// check validates per-event required fields and per-track B/E balance.
// It collects every violation rather than stopping at the first.
func check(events []event) []string {
	var errs []string
	fail := func(format string, a ...any) {
		if len(errs) < 20 { // enough to diagnose, bounded for huge traces
			errs = append(errs, fmt.Sprintf(format, a...))
		}
	}
	stacks := make(map[track][]string)
	for i, e := range events {
		switch e.Ph {
		case "":
			fail("event %d: missing ph", i)
			continue
		case "X", "B", "E", "C":
			if e.Ts == nil {
				fail("event %d (%s %q): missing ts", i, e.Ph, e.Name)
			}
		}
		if e.Name == "" {
			fail("event %d (%s): missing name", i, e.Ph)
		}
		tr := track{e.Pid, e.Tid}
		switch e.Ph {
		case "B":
			stacks[tr] = append(stacks[tr], e.Name)
		case "E":
			st := stacks[tr]
			if len(st) == 0 {
				fail("event %d: E %q on pid=%d tid=%d with no open scope", i, e.Name, e.Pid, e.Tid)
				continue
			}
			if top := st[len(st)-1]; e.Name != "" && top != e.Name {
				fail("event %d: E %q closes open scope %q (pid=%d tid=%d)", i, e.Name, top, e.Pid, e.Tid)
			}
			stacks[tr] = st[:len(st)-1]
		}
	}
	for tr, st := range stacks {
		if len(st) > 0 {
			fail("pid=%d tid=%d: %d unclosed scope(s), innermost %q", tr.Pid, tr.Tid, len(st), st[len(st)-1])
		}
	}
	return errs
}
