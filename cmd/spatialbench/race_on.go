//go:build race

package main

// raceEnabled lets long-running tests detect the race detector (roughly a
// 10x slowdown) and skip sweeps that would exceed the test timeout.
const raceEnabled = true
