// Command spatialbench regenerates the paper's evaluation artifacts: Table I
// and the per-lemma/figure cost comparisons, measured on the Spatial
// Computer Model simulator. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	spatialbench -exp all            # run everything
//	spatialbench -exp table1        # one experiment
//	spatialbench -list              # list experiments
//	spatialbench -exp table1 -quick # smaller sweeps
//	spatialbench -exp scan-ablation -csv  # machine-readable series
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

type config struct {
	quick bool
	csv   bool
	seed  int64
}

type experiment struct {
	name     string
	artifact string // the paper artifact it reproduces
	desc     string
	run      func(cfg config)
}

var experiments = []experiment{
	{"table1", "Table I", "energy/depth/distance scaling of scan, sort, selection, SpMV", runTable1},
	{"collectives", "Lemma IV.1, Cor. IV.2", "broadcast and reduce bounds on h x w subgrids", runCollectives},
	{"scan-ablation", "Fig. 1 / Sec. IV-C", "Z-order scan vs binary-tree scan vs sequential scan", runScanAblation},
	{"reduce-ablation", "Sec. IV-B", "multicast-free reduce vs binary-tree reduce (log-factor energy win)", runReduceAblation},
	{"sort-ablation", "Fig. 2, Lemmas V.3-V.4, Thm V.8", "2-D mergesort vs bitonic network vs mesh shearsort", runSortAblation},
	{"components", "Lemmas V.5-V.7", "all-pairs sort, rank selection in sorted arrays, 2-D merge bounds", runComponents},
	{"lowerbound", "Lemma V.1, Cor. V.2", "permutation energy lower bound and sorting optimality", runLowerBound},
	{"selection", "Thm VI.3", "randomized selection: linear energy, polylog depth, vs sorting", runSelection},
	{"pram", "Lemmas VII.1-VII.2", "EREW and CRCW simulation per-step costs", runPRAM},
	{"spmv-ablation", "Thm VIII.2 / Sec. VIII", "direct SpMV vs PRAM-simulated SpMV across matrix families", runSpMVAblation},
	{"treefix", "Sec. II-A vs [38]", "Euler-tour treefix sums at Theta(n) energy vs the tree-scan baseline", runTreefix},
	{"depth-scaling", "Table I depth column", "fitted polylog degrees of depth for all four primitives", runDepthScaling},
	{"congestion", "extension", "max per-link load (XY routing) of scans, sorts and broadcast", runCongestion},
}

func main() {
	var (
		expName = flag.String("exp", "all", "experiment to run (see -list)")
		list    = flag.Bool("list", false, "list experiments and exit")
		quick   = flag.Bool("quick", false, "smaller problem sizes")
		csv     = flag.Bool("csv", false, "emit CSV series instead of tables where applicable")
		seed    = flag.Int64("seed", 1, "random seed for workload generation")
	)
	flag.Parse()

	if *list {
		names := make([]string, len(experiments))
		for i, e := range experiments {
			names[i] = fmt.Sprintf("  %-16s %-28s %s", e.name, e.artifact, e.desc)
		}
		sort.Strings(names)
		fmt.Println("experiments:")
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	cfg := config{quick: *quick, csv: *csv, seed: *seed}
	ran := false
	for _, e := range experiments {
		if *expName == "all" || *expName == e.name {
			fmt.Printf("=== %s — %s ===\n%s\n\n", e.name, e.artifact, e.desc)
			e.run(cfg)
			fmt.Println()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *expName)
		os.Exit(2)
	}
}
