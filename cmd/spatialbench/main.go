// Command spatialbench regenerates the paper's evaluation artifacts: Table I
// and the per-lemma/figure cost comparisons, measured on the Spatial
// Computer Model simulator. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Every experiment is decomposed into independent measurement points and
// executed through internal/harness on a pool of recycled machines, so
// sweeps use all cores by default. Output is byte-identical for any
// -parallel value at a fixed -seed.
//
// Usage:
//
//	spatialbench -exp all            # run everything
//	spatialbench -exp table1        # one experiment
//	spatialbench -list              # list experiments
//	spatialbench -exp table1 -quick # smaller sweeps
//	spatialbench -exp all -parallel 1    # sequential (same output)
//	spatialbench -exp scan-ablation -csv  # machine-readable series
//	spatialbench -exp scan-ablation -json # JSON tables
//	spatialbench -exp scan-ablation -quick -parallel 1 -trace out.json \
//	    -heatmap out.csv              # trace to chrome://tracing + PE heatmap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/harness"
	"repro/internal/trace"
)

type config struct {
	quick bool
	csv   bool
	json  bool
	out   io.Writer
	h     *harness.Runner
}

type experiment struct {
	name     string
	artifact string // the paper artifact it reproduces
	desc     string
	run      func(cfg config)
}

var experiments = []experiment{
	{"table1", "Table I", "energy/depth/distance scaling of scan, sort, selection, SpMV", runTable1},
	{"collectives", "Lemma IV.1, Cor. IV.2", "broadcast and reduce bounds on h x w subgrids", runCollectives},
	{"scan-ablation", "Fig. 1 / Sec. IV-C", "Z-order scan vs binary-tree scan vs sequential scan", runScanAblation},
	{"reduce-ablation", "Sec. IV-B", "multicast-free reduce vs binary-tree reduce (log-factor energy win)", runReduceAblation},
	{"sort-ablation", "Fig. 2, Lemmas V.3-V.4, Thm V.8", "2-D mergesort vs bitonic network vs mesh shearsort", runSortAblation},
	{"components", "Lemmas V.5-V.7", "all-pairs sort, rank selection in sorted arrays, 2-D merge bounds", runComponents},
	{"lowerbound", "Lemma V.1, Cor. V.2", "permutation energy lower bound and sorting optimality", runLowerBound},
	{"selection", "Thm VI.3", "randomized selection: linear energy, polylog depth, vs sorting", runSelection},
	{"pram", "Lemmas VII.1-VII.2", "EREW and CRCW simulation per-step costs", runPRAM},
	{"spmv-ablation", "Thm VIII.2 / Sec. VIII", "direct SpMV vs PRAM-simulated SpMV across matrix families", runSpMVAblation},
	{"treefix", "Sec. II-A vs [38]", "Euler-tour treefix sums at Theta(n) energy vs the tree-scan baseline", runTreefix},
	{"depth-scaling", "Table I depth column", "fitted polylog degrees of depth for all four primitives", runDepthScaling},
	{"congestion", "extension", "max per-link load (XY routing) of scans, sorts and broadcast", runCongestion},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so tests can drive the full
// CLI (flags, experiment dispatch, exit codes) against in-memory buffers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spatialbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expName    = fs.String("exp", "all", "experiment to run (see -list)")
		list       = fs.Bool("list", false, "list experiments and exit")
		quick      = fs.Bool("quick", false, "smaller problem sizes")
		csv        = fs.Bool("csv", false, "emit CSV series instead of tables where applicable")
		jsonOut    = fs.Bool("json", false, "emit JSON tables instead of text")
		seed       = fs.Int64("seed", 1, "random seed for workload generation")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for sweep points")
		progress   = fs.Bool("progress", false, "report per-sweep point completion on stderr")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = fs.String("trace", "", "write a chrome://tracing / Perfetto trace of every message to this file (use -parallel 1 for readable scopes)")
		heatOut    = fs.String("heatmap", "", "write a per-PE send/recv/link-load heatmap CSV to this file")
		cpCheck    = fs.Bool("cpcheck", false, "verify every measurement's critical path against its Depth/Distance metrics (slow)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		names := make([]string, len(experiments))
		for i, e := range experiments {
			names[i] = fmt.Sprintf("  %-16s %-28s %s", e.name, e.artifact, e.desc)
		}
		sort.Strings(names)
		fmt.Fprintln(stdout, "experiments:")
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	if *expName != "all" {
		known := false
		for _, e := range experiments {
			if e.name == *expName {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(stderr, "unknown experiment %q (use -list)\n", *expName)
			return 2
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
			}
		}()
	}

	opts := []harness.Option{harness.WithWorkers(*parallel)}
	if *progress {
		opts = append(opts, harness.WithProgress(func(done, total int) {
			fmt.Fprintf(stderr, "\r%d/%d points", done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}))
	}
	if *cpCheck {
		opts = append(opts, harness.WithCriticalPathCheck())
	}

	// Observability sinks are shared by every worker, so they go behind one
	// lock; the cost is per-message, which only matters when tracing is on.
	var sinks []trace.Sink
	var chrome *trace.ChromeSink
	var heat *trace.Heatmap
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 1
		}
		traceFile = f
		chrome = trace.NewChromeSink(f)
		sinks = append(sinks, chrome)
	}
	if *heatOut != "" {
		heat = trace.NewHeatmap()
		sinks = append(sinks, heat)
	}
	if len(sinks) > 0 {
		opts = append(opts, harness.WithSink(trace.Synchronized(trace.Multi(sinks...))))
	}

	cfg := config{
		quick: *quick,
		csv:   *csv,
		json:  *jsonOut,
		out:   stdout,
		h:     harness.New(*seed, opts...),
	}
	for _, e := range experiments {
		if *expName == "all" || *expName == e.name {
			fmt.Fprintf(stdout, "=== %s — %s ===\n%s\n\n", e.name, e.artifact, e.desc)
			e.run(cfg)
			fmt.Fprintln(stdout)
		}
	}

	if chrome != nil {
		if err := chrome.Close(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 1
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 1
		}
	}
	if heat != nil {
		f, err := os.Create(*heatOut)
		if err != nil {
			fmt.Fprintf(stderr, "heatmap: %v\n", err)
			return 1
		}
		err = heat.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "heatmap: %v\n", err)
			return 1
		}
	}
	return 0
}
