// Command spatialbench regenerates the paper's evaluation artifacts: Table I
// and the per-lemma/figure cost comparisons, measured on the Spatial
// Computer Model simulator. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Every experiment is decomposed into independent measurement points and
// executed through internal/harness on a pool of recycled machines, so
// sweeps use all cores by default. Within each machine, -shards splits
// every parallel round across worker goroutines and -batch drives the
// machines through the batched send API (both on by default). Output is
// byte-identical for any -parallel/-shards/-batch combination at a fixed
// -seed; the knobs exist so regressions and speedups can be attributed.
//
// Usage:
//
//	spatialbench -exp all            # run everything
//	spatialbench -exp table1        # one experiment
//	spatialbench -list              # list experiments
//	spatialbench -exp table1 -quick # smaller sweeps
//	spatialbench -exp all -parallel 1    # sequential (same output)
//	spatialbench -exp scan-ablation -csv  # machine-readable series
//	spatialbench -exp scan-ablation -json # JSON tables
//	spatialbench -exp scan-ablation -quick -parallel 1 -trace out.json \
//	    -heatmap out.csv              # trace to chrome://tracing + PE heatmap
//	spatialbench -cache DIR          # reuse previously simulated sweep points
//	spatialbench -backend torus:8x8:4    # fold onto a finite fabric (costs
//	                                 # change, results don't; heatmaps show
//	                                 # load on physical links)
//	spatialbench -server URL -sweep table1/scan   # run a bound sweep on spatiald
//	spatialbench -server URL -sweep list          # list the daemon-runnable sweeps
//
// -cache keys every sweep point by (sweep, point, seed, shards, batch,
// code version) — see internal/simcache — so repeat runs replay stored
// rows instead of simulating; experiment output is byte-identical either
// way, and hit/miss counts go to stderr. -server submits one *registered
// bound sweep* (the named sweeps of internal/experiments.BoundSweeps; the
// full experiment drivers run locally only) to a spatiald daemon and
// prints its rows.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/service"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so tests can drive the full
// CLI (flags, experiment dispatch, exit codes) against in-memory buffers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spatialbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expName    = fs.String("exp", "all", "experiment to run (see -list)")
		list       = fs.Bool("list", false, "list experiments and exit")
		quick      = fs.Bool("quick", false, "smaller problem sizes")
		csv        = fs.Bool("csv", false, "emit CSV series instead of tables where applicable")
		jsonOut    = fs.Bool("json", false, "emit JSON tables instead of text")
		seed       = cliflags.AddSeed(fs)
		pool       = cliflags.AddPool(fs)
		progress   = fs.Bool("progress", false, "report per-sweep point completion on stderr")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = fs.String("trace", "", "write a chrome://tracing / Perfetto trace of every message to this file (use -parallel 1 for readable scopes)")
		heatOut    = fs.String("heatmap", "", "write a per-PE send/recv/link-load heatmap CSV to this file")
		cpCheck    = fs.Bool("cpcheck", false, "verify every measurement's critical path against its Depth/Distance metrics (slow)")
		cacheFlag  = cliflags.AddCache(fs, "")
		backend    = cliflags.AddBackend(fs)
		server     = cliflags.AddServer(fs, "submit -sweep to this spatiald daemon (URL or host:port) instead of running locally")
		sweepName  = fs.String("sweep", "", "registered bound sweep to run via -server (\"list\" to enumerate)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	bk, err := backend.Parse()
	if err != nil {
		fmt.Fprintf(stderr, "spatialbench: -backend: %v\n", err)
		return 2
	}

	// The daemon interprets "" as its own default backend, so only a
	// finite spec travels with server requests (same convention as the
	// JSON document's "machine" field).
	backendSpec := ""
	if bk.Finite() {
		backendSpec = bk.String()
	}

	if *server != "" {
		return runSweepOnServer(*server, *sweepName, *quick, *seed, *jsonOut, backendSpec, stdout, stderr)
	}
	if *sweepName != "" {
		fmt.Fprintln(stderr, "spatialbench: -sweep requires -server (local runs use -exp)")
		return 2
	}

	exps := experiments.All()

	if *list {
		names := make([]string, len(exps))
		for i, e := range exps {
			names[i] = fmt.Sprintf("  %-16s %-28s %s", e.Name, e.Artifact, e.Desc)
		}
		sort.Strings(names)
		fmt.Fprintln(stdout, "experiments:")
		for _, n := range names {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	if *expName != "all" {
		if _, known := experiments.ByName(*expName); !known {
			names := make([]string, len(exps))
			for i, e := range exps {
				names[i] = e.Name
			}
			sort.Strings(names)
			fmt.Fprintf(stderr, "unknown experiment %q; available: all, %s\n", *expName, strings.Join(names, ", "))
			return 2
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
			}
		}()
	}

	opts := append(pool.HarnessOptions(), harness.WithBackend(bk))
	if *progress {
		opts = append(opts, harness.WithProgress(func(done, total int) {
			fmt.Fprintf(stderr, "\r%d/%d points", done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		}))
	}
	if *cpCheck {
		opts = append(opts, harness.WithCriticalPathCheck())
	}
	cache, err := cacheFlag.Open()
	if err != nil {
		fmt.Fprintf(stderr, "spatialbench: -cache: %v\n", err)
		return 2
	}
	if cache != nil {
		opts = append(opts, harness.WithCache(cache))
		// Hit/miss counts are reported after the run, on stderr only:
		// stdout must stay byte-identical between cold and warm runs.
		defer cacheFlag.ReportStats(stderr, "spatialbench", cache)
	}

	// Observability sinks are shared by every worker, so they go behind one
	// lock; the cost is per-message, which only matters when tracing is on.
	var sinks []trace.Sink
	var chrome *trace.ChromeSink
	var heat *trace.Heatmap
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 1
		}
		traceFile = f
		chrome = trace.NewChromeSink(f)
		sinks = append(sinks, chrome)
	}
	if *heatOut != "" {
		heat = trace.NewHeatmap()
		if bk.Finite() {
			// Fold the heatmap onto the same physical fabric the machines
			// charge costs on, so the CSV shows load on physical links.
			heat.SetFabric(bk.W, bk.H, bk.Block, bk.Kind == machine.BackendTorus)
		}
		sinks = append(sinks, heat)
	}
	if len(sinks) > 0 {
		opts = append(opts, harness.WithSink(trace.Synchronized(trace.Multi(sinks...))))
	}

	cfg := experiments.Config{
		Quick: *quick,
		CSV:   *csv,
		JSON:  *jsonOut,
		Out:   stdout,
		H:     harness.New(*seed, opts...),
	}
	for _, e := range exps {
		if *expName == "all" || *expName == e.Name {
			fmt.Fprintf(stdout, "=== %s — %s ===\n%s\n\n", e.Name, e.Artifact, e.Desc)
			e.Run(cfg)
			fmt.Fprintln(stdout)
		}
	}

	if chrome != nil {
		if err := chrome.Close(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 1
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 1
		}
	}
	if heat != nil {
		f, err := os.Create(*heatOut)
		if err != nil {
			fmt.Fprintf(stderr, "heatmap: %v\n", err)
			return 1
		}
		err = heat.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "heatmap: %v\n", err)
			return 1
		}
	}
	return 0
}

// runSweepOnServer submits one registered bound sweep to a spatiald daemon
// and prints its rows (tab-separated, or the raw result document with
// -json). "-sweep list" asks the local registry for the runnable names.
func runSweepOnServer(server, name string, quick bool, seed int64, jsonOut bool, backendSpec string, stdout, stderr io.Writer) int {
	if name == "list" {
		fmt.Fprintln(stdout, "bound sweeps (run with -server URL -sweep NAME):")
		for _, n := range experiments.BoundSweeps(quick).Names() {
			fmt.Fprintf(stdout, "  %s\n", n)
		}
		return 0
	}
	if name == "" {
		fmt.Fprintln(stderr, "spatialbench: -server requires -sweep NAME (\"list\" to enumerate)")
		return 2
	}
	c := &service.Client{Base: server}
	id, err := c.SubmitSweep(service.SweepRequest{Name: name, Quick: quick, Seed: seed, Backend: backendSpec})
	if err != nil {
		fmt.Fprintf(stderr, "spatialbench: %v\n", err)
		return 2
	}
	info, err := c.Wait(context.Background(), id, 250*time.Millisecond, nil)
	if err != nil {
		fmt.Fprintf(stderr, "spatialbench: %v\n", err)
		return 2
	}
	if info.Status != service.StatusDone {
		fmt.Fprintf(stderr, "spatialbench: job %s %s: %s\n", id, info.Status, info.Error)
		return 2
	}
	fmt.Fprintf(stderr, "spatialbench: server job %s: %d/%d points from cache\n", id, info.CacheHits, info.Progress.Total)
	doc, err := c.Result(id)
	if err != nil {
		fmt.Fprintf(stderr, "spatialbench: %v\n", err)
		return 2
	}
	if jsonOut {
		stdout.Write(doc)
		fmt.Fprintln(stdout)
		return 0
	}
	var res service.SweepResult
	if err := json.Unmarshal(doc, &res); err != nil {
		fmt.Fprintf(stderr, "spatialbench: bad result document: %v\n", err)
		return 2
	}
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = fmt.Sprint(v)
		}
		fmt.Fprintln(stdout, strings.Join(cells, "\t"))
	}
	return 0
}
