package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/collectives"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/pram"
	"repro/internal/sortnet"
	"repro/internal/spmv"
	"repro/internal/tree"
	"repro/internal/workload"
)

// sweepMachine is reused across all sweep points: machine.Reset zeroes the
// grid in place, so consecutive measurements skip reallocating the tile
// storage and the register-name intern table.
var sweepMachine = machine.New()

// measure runs one computation on a reset machine and returns its costs.
func measure(run func(m *machine.Machine)) machine.Metrics {
	m := sweepMachine
	m.Reset()
	run(m)
	return m.Metrics()
}

// placeFloats lays vals out on the given track, padding the remainder of
// the track with pad.
func placeFloats(m *machine.Machine, t grid.Track, reg machine.Reg, vals []float64, pad float64) {
	for i := 0; i < t.Len(); i++ {
		v := pad
		if i < len(vals) {
			v = vals[i]
		}
		m.Set(t.At(i), reg, v)
	}
}

func sizes(quick bool, full ...int) []int {
	if quick && len(full) > 2 {
		return full[:len(full)-1]
	}
	return full
}

// squareFor returns a power-of-two square region holding at least n cells.
func squareFor(n int) grid.Rect {
	side := 1
	for side*side < n {
		side *= 2
	}
	return grid.Square(machine.Coord{}, side)
}

// tailExp is the scaling exponent between the last two sweep points. The
// distance metric converges slowly (additive O(sqrt n) terms with large
// constants dominate small sizes), so the tail is the honest estimate.
func tailExp(pts []analysis.Point) float64 {
	if len(pts) < 2 {
		return math.NaN()
	}
	a, b := pts[len(pts)-2], pts[len(pts)-1]
	return math.Log(b.Cost/a.Cost) / math.Log(b.N/a.N)
}

func emit(cfg config, t *analysis.Table) {
	if cfg.csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t.String())
	}
}

// ---------------------------------------------------------------- table1 --

// runTable1 reproduces Table I: for each primitive, sweep n, measure
// energy/depth/distance, fit the scaling exponents and compare them with
// the paper's Theta bounds.
func runTable1(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	t := analysis.NewTable("problem", "n", "energy", "depth", "distance")
	type row struct {
		n                       int
		energy, depth, distance int64
	}
	collect := func(name string, ns []int, run func(n int) machine.Metrics) (eFit, dTail float64) {
		var pts, dpts []analysis.Point
		for _, n := range ns {
			mm := run(n)
			t.AddRow(name, n, float64(mm.Energy), float64(mm.Depth), float64(mm.Distance))
			pts = append(pts, analysis.Point{N: float64(n), Cost: float64(mm.Energy)})
			dpts = append(dpts, analysis.Point{N: float64(n), Cost: float64(mm.Distance)})
		}
		return analysis.FitExponent(pts), tailExp(dpts)
	}

	scanE, scanD := collect("scan", sizes(cfg.quick, 256, 1024, 4096, 16384, 65536), func(n int) machine.Metrics {
		vals := workload.Array(workload.Random, n, rng)
		return measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.ZOrder(r), "v", vals, 0)
			collectives.Scan(m, r, "v", collectives.Add, 0.0)
		})
	})
	sortE, sortD := collect("sort", sizes(cfg.quick, 256, 1024, 4096, 16384), func(n int) machine.Metrics {
		vals := workload.Array(workload.Random, n, rng)
		return measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			core.MergeSort(m, r, "v", order.Float64)
		})
	})
	selE, selD := collect("selection", sizes(cfg.quick, 256, 1024, 4096, 16384), func(n int) machine.Metrics {
		vals := workload.Array(workload.Random, n, rng)
		return measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			core.Select(m, r, "v", n/2, order.Float64, rand.New(rand.NewSource(cfg.seed)))
		})
	})
	spmvE, spmvD := collect("spmv", sizes(cfg.quick, 256, 1024, 4096, 16384), func(nnz int) machine.Metrics {
		a := workload.SparseMatrix(workload.MatUniform, nnz, nnz, rng)
		x := workload.Array(workload.Random, nnz, rng)
		return measure(func(m *machine.Machine) {
			if _, err := spmv.Multiply(m, a, x); err != nil {
				panic(err)
			}
		})
	})

	emit(cfg, t)
	fmt.Println()
	v := analysis.NewTable("problem", "paper energy", "measured exp", "verdict", "paper distance", "tail exp", "verdict")
	v.AddRow("scan", "Theta(n)", scanE, analysis.Verdict(scanE, 1.0, 0.15), "Theta(sqrt n)", scanD, analysis.Verdict(scanD, 0.5, 0.3))
	v.AddRow("sort", "Theta(n^1.5)", sortE, analysis.Verdict(sortE, 1.5, 0.25), "Theta(sqrt n)", sortD, analysis.Verdict(sortD, 0.5, 0.3))
	v.AddRow("selection", "Theta(n)", selE, analysis.Verdict(selE, 1.0, 0.2), "Theta(sqrt n)", selD, analysis.Verdict(selD, 0.5, 0.3))
	v.AddRow("spmv", "Theta(m^1.5)", spmvE, analysis.Verdict(spmvE, 1.5, 0.25), "Theta(sqrt m)", spmvD, analysis.Verdict(spmvD, 0.5, 0.3))
	fmt.Print(v.String())
	fmt.Println("\ndepth values above are O(log n), O(log^3 n), O(log^2 n), O(log^3 n) respectively (polylog; see the per-experiment sections);")
	fmt.Println("distance uses the tail exponent — additive O(sqrt n) terms with large constants dominate the small end of the sweep")
}

// ----------------------------------------------------------- collectives --

// runCollectives validates Lemma IV.1 / Corollary IV.2 on square, column
// and general h x w subgrids: energy within a constant of hw + h log h,
// logarithmic depth, O(h + w) distance.
func runCollectives(cfg config) {
	t := analysis.NewTable("op", "h", "w", "energy", "hw+h*log(h)", "ratio", "depth", "distance")
	shapes := [][2]int{{32, 32}, {64, 64}, {128, 128}, {1024, 1}, {4096, 1}, {256, 16}, {16, 256}, {512, 8}}
	if cfg.quick {
		shapes = shapes[:5]
	}
	for _, sh := range shapes {
		h, w := sh[0], sh[1]
		r := grid.Rect{Origin: machine.Coord{}, H: h, W: w}
		bm := measure(func(m *machine.Machine) {
			m.Set(r.Origin, "v", 1.0)
			collectives.Broadcast(m, r, "v")
		})
		bound := float64(h*w) + float64(maxInt(h, w))*log2f(maxInt(h, w))
		t.AddRow("broadcast", h, w, float64(bm.Energy), bound, float64(bm.Energy)/bound, bm.Depth, bm.Distance)

		rm := measure(func(m *machine.Machine) {
			placeFloats(m, grid.RowMajor(r), "v", nil, 1)
			collectives.Reduce(m, r, "v", collectives.Add)
		})
		t.AddRow("reduce", h, w, float64(rm.Energy), bound, float64(rm.Energy)/bound, rm.Depth, rm.Distance)
	}
	emit(cfg, t)
}

// ---------------------------------------------------------- scan ablation --

// runScanAblation compares the three scan designs of Section IV-C. The
// Z-order scan must match the sequential scan's Theta(n) energy while
// keeping the tree scan's O(log n) depth; the tree scan pays an extra
// Theta(log n) energy factor.
func runScanAblation(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	t := analysis.NewTable("n", "zorder energy", "tree energy", "seq energy", "tree/zorder", "zorder depth", "tree depth", "seq depth")
	for _, n := range sizes(cfg.quick, 256, 1024, 4096, 16384, 65536) {
		vals := workload.Array(workload.Random, n, rng)
		z := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.ZOrder(r), "v", vals, 0)
			collectives.Scan(m, r, "v", collectives.Add, 0.0)
		})
		tr := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			collectives.ScanTrack(m, grid.RowMajor(r), "v", collectives.Add, 0.0)
		})
		sq := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.ZOrder(r), "v", vals, 0)
			collectives.ScanSequential(m, grid.ZOrder(r), "v", collectives.Add)
		})
		t.AddRow(n, float64(z.Energy), float64(tr.Energy), float64(sq.Energy),
			float64(tr.Energy)/float64(z.Energy), z.Depth, tr.Depth, sq.Depth)
	}
	emit(cfg, t)
	fmt.Println("\nexpected shape: tree/zorder ratio grows ~log n; zorder and seq energies stay within a constant; seq depth = n-1")
}

// -------------------------------------------------------- reduce ablation --

func runReduceAblation(cfg config) {
	t := analysis.NewTable("n", "2D reduce energy", "tree reduce energy", "ratio", "2D depth", "tree depth")
	for _, side := range sizes(cfg.quick, 16, 32, 64, 128, 256) {
		r := grid.Square(machine.Coord{}, side)
		two := measure(func(m *machine.Machine) {
			placeFloats(m, grid.RowMajor(r), "v", nil, 1)
			collectives.Reduce(m, r, "v", collectives.Add)
		})
		tree := measure(func(m *machine.Machine) {
			placeFloats(m, grid.RowMajor(r), "v", nil, 1)
			collectives.ReduceTrack(m, grid.RowMajor(r), "v", collectives.Add)
		})
		t.AddRow(side*side, float64(two.Energy), float64(tree.Energy),
			float64(tree.Energy)/float64(two.Energy), two.Depth, tree.Depth)
	}
	emit(cfg, t)
	fmt.Println("\nexpected shape: ratio grows ~log n (Section IV-B's Theta(log n) energy improvement at equal O(log n) depth)")
}

// ---------------------------------------------------------- sort ablation --

// runSortAblation is the sorting comparison behind Figure 2 and Section
// V-C's discussion: bitonic pays a log-factor more energy than mergesort
// asymptotically (normalized energies diverge), and the mesh baseline pays
// polynomial depth.
func runSortAblation(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	t := analysis.NewTable("n", "merge energy", "bitonic energy", "mesh energy",
		"merge E/n^1.5", "bitonic E/n^1.5", "merge depth", "bitonic depth", "mesh depth")
	var mPts, bPts []analysis.Point
	for _, n := range sizes(cfg.quick, 256, 1024, 4096, 16384) {
		vals := workload.Array(workload.Random, n, rng)
		ms := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			core.MergeSort(m, r, "v", order.Float64)
		})
		bs := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			sortnet.Sort(m, grid.RowMajor(r), "v", n, order.Float64)
		})
		sh := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			sortnet.Shearsort(m, r, "v", order.Float64)
		})
		n15 := float64(n) * sqrtf(n)
		t.AddRow(n, float64(ms.Energy), float64(bs.Energy), float64(sh.Energy),
			float64(ms.Energy)/n15, float64(bs.Energy)/n15, ms.Depth, bs.Depth, sh.Depth)
		mPts = append(mPts, analysis.Point{N: float64(n), Cost: float64(ms.Energy)})
		bPts = append(bPts, analysis.Point{N: float64(n), Cost: float64(bs.Energy)})
	}
	emit(cfg, t)
	fmt.Printf("\nmergesort energy exponent: %.3f (paper: 1.5)   bitonic energy exponent: %.3f (paper: 1.5 + log factor)\n",
		analysis.FitExponent(mPts), analysis.FitExponent(bPts))
	fmt.Println("expected shape: bitonic E/n^1.5 grows with n while mergesort E/n^1.5 falls toward a constant; mesh depth ~ sqrt(n) log n vs polylog for the others")
}

// ------------------------------------------------------------- components --

func runComponents(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))

	// All-Pairs Sort (Lemma V.5): O(n^{5/2}) energy, O(log n) depth.
	ap := analysis.NewTable("all-pairs n", "energy", "depth", "distance")
	var apPts []analysis.Point
	for _, n := range sizes(cfg.quick, 16, 64, 256) {
		vals := workload.Array(workload.Random, n, rng)
		mm := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			tr := grid.RowMajor(r)
			placeFloats(m, tr, "v", vals, 0)
			scratch := r.RightOf(core.AllPairsScratchSide(n), core.AllPairsScratchSide(n))
			core.AllPairsSort(m, tr, "v", n, scratch, order.Float64)
		})
		ap.AddRow(n, float64(mm.Energy), mm.Depth, mm.Distance)
		apPts = append(apPts, analysis.Point{N: float64(n), Cost: float64(mm.Energy)})
	}
	emit(cfg, ap)
	fmt.Printf("all-pairs energy exponent: %.3f (paper: 2.5)\n\n", analysis.FitExponent(apPts))

	// Rank selection in two sorted arrays (Lemma V.6).
	rs := analysis.NewTable("rank-select n", "energy", "depth", "distance")
	var rsPts []analysis.Point
	for _, n := range sizes(cfg.quick, 1024, 4096, 16384) {
		half := n / 2
		a := workload.Array(workload.Sorted, half, rng)
		b := workload.Array(workload.Sorted, half, rng)
		mm := measure(func(m *machine.Machine) {
			ra := squareFor(half)
			rb := grid.Square(machine.Coord{Row: 0, Col: ra.W + 1}, ra.W)
			tA := grid.Slice(grid.RowMajor(ra), 0, half)
			tB := grid.Slice(grid.RowMajor(rb), 0, half)
			placeFloats(m, tA, "v", a, 0)
			placeFloats(m, tB, "v", b, 0)
			scratch := grid.Square(machine.Coord{Row: ra.H + 1, Col: 0}, core.SelectScratchSide(n))
			core.SelectInSorted(m, tA, tB, "v", n/2, scratch, order.Float64)
		})
		rs.AddRow(n, float64(mm.Energy), mm.Depth, mm.Distance)
		rsPts = append(rsPts, analysis.Point{N: float64(n), Cost: float64(mm.Energy)})
	}
	emit(cfg, rs)
	fmt.Printf("rank-select energy exponent: %.3f (paper: <= 1.25)\n\n", analysis.FitExponent(rsPts))

	// 2-D Merge (Lemma V.7): O(n^{3/2}) energy, O(log^2 n) depth.
	mg := analysis.NewTable("merge n", "energy", "depth", "distance")
	var mgPts []analysis.Point
	for _, n := range sizes(cfg.quick, 512, 2048, 8192) {
		quarter := n / 2
		a := workload.Array(workload.Sorted, quarter, rng)
		b := workload.Array(workload.Sorted, quarter, rng)
		mm := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, 2*n)
			q := r.Quadrants()
			tA := grid.Slice(grid.RowMajor(q[0]), 0, quarter)
			tB := grid.Slice(grid.RowMajor(q[1]), 0, quarter)
			placeFloats(m, tA, "v", a, 0)
			placeFloats(m, tB, "v", b, 0)
			core.Merge(m, tA, tB, "v", r.TopHalf(), order.Float64)
		})
		mg.AddRow(n, float64(mm.Energy), mm.Depth, mm.Distance)
		mgPts = append(mgPts, analysis.Point{N: float64(n), Cost: float64(mm.Energy)})
	}
	emit(cfg, mg)
	fmt.Printf("merge energy exponent: %.3f (paper: 1.5)\n", analysis.FitExponent(mgPts))
}

// -------------------------------------------------------------- lowerbound --

func runLowerBound(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	t := analysis.NewTable("n", "permutation", "energy", "energy/n^1.5")
	for _, n := range sizes(cfg.quick, 1024, 4096, 16384) {
		for _, kind := range workload.PermKinds() {
			perm := workload.Permutation(kind, n, rng)
			mm := measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				tr := grid.RowMajor(r)
				placeFloats(m, tr, "v", nil, 1)
				core.Permute(m, tr, "v", tr, "v", perm)
			})
			t.AddRow(n, string(kind), float64(mm.Energy), float64(mm.Energy)/(float64(n)*sqrtf(n)))
		}
	}
	emit(cfg, t)

	// Sorting a reversal-permuted input must cost within a constant of the
	// permutation itself (Corollary V.2: the mergesort is energy-optimal).
	fmt.Println()
	c := analysis.NewTable("n", "reversal energy", "mergesort-on-reversed energy", "sort/permutation")
	for _, n := range sizes(cfg.quick, 1024, 4096) {
		perm := workload.Permutation(workload.PermReversal, n, rng)
		pe := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			tr := grid.RowMajor(r)
			placeFloats(m, tr, "v", nil, 1)
			core.Permute(m, tr, "v", tr, "v", perm)
		})
		vals := workload.Array(workload.Reversed, n, rng)
		se := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			core.MergeSort(m, r, "v", order.Float64)
		})
		c.AddRow(n, float64(pe.Energy), float64(se.Energy), float64(se.Energy)/float64(pe.Energy))
	}
	emit(cfg, c)
	fmt.Println("\nexpected shape: reversal ~ n^1.5/2; identity = 0; sort/permutation ratio bounded (sorting is energy-optimal up to constants)")
}

// --------------------------------------------------------------- selection --

func runSelection(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	t := analysis.NewTable("n", "select energy", "sort energy", "sort/select", "select depth", "select energy/n")
	var ePts []analysis.Point
	for _, n := range sizes(cfg.quick, 1024, 4096, 16384, 65536) {
		vals := workload.Array(workload.Random, n, rng)
		sel := measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			core.Select(m, r, "v", n/2, order.Float64, rand.New(rand.NewSource(cfg.seed)))
		})
		var sortE int64
		if n <= 16384 {
			srt := measure(func(m *machine.Machine) {
				r := grid.SquareFor(machine.Coord{}, n)
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				core.MergeSort(m, r, "v", order.Float64)
			})
			sortE = srt.Energy
		}
		ratio := 0.0
		if sortE > 0 {
			ratio = float64(sortE) / float64(sel.Energy)
		}
		t.AddRow(n, float64(sel.Energy), float64(sortE), ratio, sel.Depth, float64(sel.Energy)/float64(n))
		ePts = append(ePts, analysis.Point{N: float64(n), Cost: float64(sel.Energy)})
	}
	emit(cfg, t)
	fmt.Printf("\nselection energy exponent: %.3f (paper: 1.0) — the sort/select gap grows ~sqrt(n) (polynomial separation, Section VI)\n",
		analysis.FitExponent(ePts))
}

// -------------------------------------------------------------------- pram --

func runPRAM(cfg config) {
	t := analysis.NewTable("mode", "p", "energy/step", "depth/step", "p*(sqrt p + sqrt m)", "energy ratio")
	for _, p := range sizes(cfg.quick, 64, 256, 1024) {
		prog := pram.ConcurrentRead{P: p}
		bound := float64(p) * (sqrtf(p) + 1)
		em := measure(func(m *machine.Machine) {
			sim := pram.New(m, pram.BroadcastWrite{P: p}, pram.CRCW, nil)
			if err := sim.Run(); err != nil {
				panic(err)
			}
		})
		t.AddRow("CRCW-write", p, float64(em.Energy), em.Depth, bound, float64(em.Energy)/bound)

		cm := measure(func(m *machine.Machine) {
			sim := pram.New(m, prog, pram.CRCW, []machine.Value{1.0})
			if err := sim.Run(); err != nil {
				panic(err)
			}
		})
		t.AddRow("CRCW-read", p, float64(cm.Energy), cm.Depth, bound, float64(cm.Energy)/bound)

		n := 2 * p
		treeProg := pram.TreeSum{N: n}
		steps := float64(treeProg.Steps())
		tm := measure(func(m *machine.Machine) {
			init := make([]machine.Value, n)
			for i := range init {
				init[i] = 1.0
			}
			sim := pram.New(m, treeProg, pram.EREW, init)
			if err := sim.Run(); err != nil {
				panic(err)
			}
		})
		eBound := float64(p) * (sqrtf(p) + sqrtf(n)) * steps
		t.AddRow("EREW-treesum", p, float64(tm.Energy)/steps, float64(tm.Depth)/steps, eBound/steps, float64(tm.Energy)/eBound)
	}
	emit(cfg, t)
	fmt.Println("\nexpected shape: energy/step within a constant of p(sqrt p + sqrt m); EREW depth/step O(1); CRCW depth/step polylog(p)")
}

// ----------------------------------------------------------- spmv ablation --

func runSpMVAblation(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	t := analysis.NewTable("matrix", "n", "nnz", "direct energy", "direct depth", "direct distance")
	var ePts []analysis.Point
	for _, kind := range workload.MatrixKinds() {
		for _, n := range sizes(cfg.quick, 64, 256, 1024) {
			a := workload.SparseMatrix(kind, n, 4*n, rng)
			x := workload.Array(workload.Random, n, rng)
			dm := measure(func(m *machine.Machine) {
				if _, err := spmv.Multiply(m, a, x); err != nil {
					panic(err)
				}
			})
			t.AddRow(string(kind), n, a.NNZ(), float64(dm.Energy), dm.Depth, dm.Distance)
			if kind == workload.MatUniform {
				ePts = append(ePts, analysis.Point{N: float64(a.NNZ()), Cost: float64(dm.Energy)})
			}
		}
	}
	emit(cfg, t)
	fmt.Printf("\ndirect spmv energy exponent in nnz (uniform): %.3f (paper: 1.5)\n\n", analysis.FitExponent(ePts))

	// Direct vs PRAM-simulated (kept small: the CRCW simulation sorts per
	// step).
	c := analysis.NewTable("n", "nnz", "direct depth", "pram depth", "direct distance", "pram distance", "direct energy", "pram energy")
	for _, n := range sizes(cfg.quick, 16, 32, 64) {
		a := workload.SparseMatrix(workload.MatUniform, n, 4*n, rng)
		x := workload.Array(workload.Random, n, rng)
		dm := measure(func(m *machine.Machine) {
			if _, err := spmv.Multiply(m, a, x); err != nil {
				panic(err)
			}
		})
		pm := measure(func(m *machine.Machine) {
			if _, err := spmv.MultiplyPRAM(m, a, x); err != nil {
				panic(err)
			}
		})
		c.AddRow(n, a.NNZ(), dm.Depth, pm.Depth, dm.Distance, pm.Distance, float64(dm.Energy), float64(pm.Energy))
	}
	emit(cfg, c)
	fmt.Println("\nexpected shape: direct wins depth and distance by a growing (log) factor; energies within constants of each other")
}

// ---------------------------------------------------------------- treefix --

// runTreefix quantifies the Section II-A comparison against the spatial
// tree algorithms [38]: their treefix sums take Theta(n log n) energy even
// on a path; the Euler-tour + energy-optimal-scan route costs Theta(n) for
// any tree shape. The binary-tree scan stands in for the [38] path
// baseline.
func runTreefix(cfg config) {
	t := analysis.NewTable("n", "treefix(path) E", "treefix(balanced) E", "tree-scan baseline E", "baseline/treefix", "treefix depth")
	for _, n := range sizes(cfg.quick, 1024, 4096, 16384, 65536) {
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		run := func(tr tree.Tree) machine.Metrics {
			return measure(func(m *machine.Machine) {
				if _, err := tree.RootfixSum(m, tr, ones); err != nil {
					panic(err)
				}
			})
		}
		pathM := run(tree.Path(n))
		balM := run(tree.Balanced(n))
		base := measure(func(m *machine.Machine) {
			r := squareFor(n)
			placeFloats(m, grid.RowMajor(r), "v", ones, 0)
			collectives.ScanTrack(m, grid.RowMajor(r), "v", collectives.Add, 0.0)
		})
		t.AddRow(n, float64(pathM.Energy), float64(balM.Energy), float64(base.Energy),
			float64(base.Energy)/float64(pathM.Energy), pathM.Depth)
	}
	emit(cfg, t)
	fmt.Println("\nexpected shape: treefix energy linear in n for both shapes; the baseline/treefix ratio grows ~log n")
	fmt.Println("(the Euler tour doubles the scanned elements, so the ratio starts below 1 and crosses it near n ~ 2^20)")
}

// ---------------------------------------------------------- depth scaling --

// runDepthScaling fits the polylog degree c of depth ~ (log n)^c for each
// primitive — the depth column of Table I. Paper targets: scan 1, selection
// 2, sort 3, spmv 3 (upper bounds; measured degrees land at or below them).
func runDepthScaling(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	t := analysis.NewTable("problem", "paper depth", "measured polylog degree", "depth series")
	fit := func(ns []int, run func(n int) machine.Metrics) (float64, string) {
		var pts []analysis.Point
		series := ""
		for _, n := range ns {
			mm := run(n)
			pts = append(pts, analysis.Point{N: float64(n), Cost: float64(mm.Depth)})
			if series != "" {
				series += " "
			}
			series += fmt.Sprint(mm.Depth)
		}
		return analysis.FitLogExponent(pts), series
	}
	scanC, scanS := fit(sizes(cfg.quick, 256, 1024, 4096, 16384, 65536), func(n int) machine.Metrics {
		vals := workload.Array(workload.Random, n, rng)
		return measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.ZOrder(r), "v", vals, 0)
			collectives.Scan(m, r, "v", collectives.Add, 0.0)
		})
	})
	selC, selS := fit(sizes(cfg.quick, 256, 1024, 4096, 16384, 65536), func(n int) machine.Metrics {
		vals := workload.Array(workload.Random, n, rng)
		return measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			core.Select(m, r, "v", n/2, order.Float64, rand.New(rand.NewSource(cfg.seed)))
		})
	})
	sortC, sortS := fit(sizes(cfg.quick, 256, 1024, 4096, 16384), func(n int) machine.Metrics {
		vals := workload.Array(workload.Random, n, rng)
		return measure(func(m *machine.Machine) {
			r := grid.SquareFor(machine.Coord{}, n)
			placeFloats(m, grid.RowMajor(r), "v", vals, 0)
			core.MergeSort(m, r, "v", order.Float64)
		})
	})
	spmvC, spmvS := fit(sizes(cfg.quick, 256, 1024, 4096), func(nnz int) machine.Metrics {
		a := workload.SparseMatrix(workload.MatUniform, nnz, nnz, rng)
		x := workload.Array(workload.Random, nnz, rng)
		return measure(func(m *machine.Machine) {
			if _, err := spmv.Multiply(m, a, x); err != nil {
				panic(err)
			}
		})
	})
	t.AddRow("scan", "O(log n)", scanC, scanS)
	t.AddRow("selection", "O(log^2 n)", selC, selS)
	t.AddRow("sort", "O(log^3 n)", sortC, sortS)
	t.AddRow("spmv", "O(log^3 n)", spmvC, spmvS)
	emit(cfg, t)
	fmt.Println("\ndiscriminating check: a polylog depth has per-quadrupling growth ratios that *decline* toward 1")
	fmt.Println("(scan 1.25->1.17, selection 1.8->1.2, sort 3.2->1.9->1.8), whereas any polynomial n^c keeps a")
	fmt.Println("constant ratio 4^c (the mesh sort measures a steady ~2.3x). Fitted degrees overshoot the paper's")
	fmt.Println("upper bounds on short sweeps because of additive lower-order terms; the ratios are the evidence.")
}

// ------------------------------------------------------------ congestion --

// runCongestion is an extension experiment: energy is the *total* network
// load; this measures the *maximum* per-link load under dimension-ordered
// routing, comparing the scan designs and the two sorters. The locality
// of the Z-order scan shows up as near-flat link load, while the tree scan
// funnels traffic through the middle of the row-major layout.
func runCongestion(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	t := analysis.NewTable("algorithm", "n", "energy", "max link load", "load/sqrt(n)")
	// One tracked machine for the whole sweep; Reset zeroes the link loads
	// in place and keeps tracking enabled.
	m := machine.New()
	m.EnableCongestionTracking()
	for _, n := range sizes(cfg.quick, 1024, 4096, 16384) {
		vals := workload.Array(workload.Random, n, rng)
		type algo struct {
			name string
			run  func(m *machine.Machine, r grid.Rect)
		}
		algos := []algo{
			{"zorder-scan", func(m *machine.Machine, r grid.Rect) {
				placeFloats(m, grid.ZOrder(r), "v", vals, 0)
				collectives.Scan(m, r, "v", collectives.Add, 0.0)
			}},
			{"tree-scan", func(m *machine.Machine, r grid.Rect) {
				placeFloats(m, grid.RowMajor(r), "v", vals, 0)
				collectives.ScanTrack(m, grid.RowMajor(r), "v", collectives.Add, 0.0)
			}},
			{"broadcast", func(m *machine.Machine, r grid.Rect) {
				m.Set(r.Origin, "v", 1.0)
				collectives.Broadcast(m, r, "v")
			}},
		}
		if n <= 4096 {
			algos = append(algos,
				algo{"mergesort", func(m *machine.Machine, r grid.Rect) {
					placeFloats(m, grid.RowMajor(r), "v", vals, 0)
					core.MergeSort(m, r, "v", order.Float64)
				}},
				algo{"bitonic", func(m *machine.Machine, r grid.Rect) {
					placeFloats(m, grid.RowMajor(r), "v", vals, 0)
					sortnet.Sort(m, grid.RowMajor(r), "v", n, order.Float64)
				}})
		}
		for _, a := range algos {
			m.Reset()
			a.run(m, grid.SquareFor(machine.Coord{}, n))
			t.AddRow(a.name, n, float64(m.Metrics().Energy), float64(m.MaxCongestion()),
				float64(m.MaxCongestion())/sqrtf(n))
		}
	}
	emit(cfg, t)
	fmt.Println("\nextension beyond the paper's metrics: max per-link load under XY routing (energy is the total load)")
}

func log2f(x int) float64 {
	l := 0.0
	for s := x; s > 1; s /= 2 {
		l++
	}
	return l
}

func sqrtf(n int) float64 { return math.Sqrt(float64(n)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
