package main

import "testing"

// Smoke tests: the cheap experiments must run to completion without
// panicking (output goes to stdout; correctness of the numbers is covered
// by the package tests the experiments are built from).
func TestCollectivesExperimentSmoke(t *testing.T) {
	runCollectives(config{quick: true, seed: 1})
}

func TestReduceAblationSmoke(t *testing.T) {
	runReduceAblation(config{quick: true, seed: 1, csv: true})
}

func TestScanAblationSmoke(t *testing.T) {
	runScanAblation(config{quick: true, seed: 1})
}

func TestTreefixExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("treefix sweep skipped in -short mode")
	}
	runTreefix(config{quick: true, seed: 1})
}
