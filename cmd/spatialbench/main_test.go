package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/service"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return out.String(), errOut.String(), code
}

// testConfig builds a config for driving one experiment directly.
func testConfig(workers int, opts ...func(*experiments.Config)) experiments.Config {
	cfg := experiments.Config{
		Quick: true,
		Out:   io.Discard,
		H:     harness.New(1, harness.WithWorkers(workers)),
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// runByName drives one experiment end to end through the shared registry.
func runByName(t *testing.T, name string, cfg experiments.Config) {
	t.Helper()
	e, ok := experiments.ByName(name)
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	e.Run(cfg)
}

// Smoke tests: the cheap experiments must run to completion without
// panicking (correctness of the numbers is covered by the package tests the
// experiments are built from).
func TestCollectivesExperimentSmoke(t *testing.T) {
	runByName(t, "collectives", testConfig(2))
}

func TestReduceAblationSmoke(t *testing.T) {
	runByName(t, "reduce-ablation", testConfig(2, func(c *experiments.Config) { c.CSV = true }))
}

func TestScanAblationSmoke(t *testing.T) {
	runByName(t, "scan-ablation", testConfig(2))
}

func TestTreefixExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("treefix sweep skipped in -short mode")
	}
	runByName(t, "treefix", testConfig(2))
}

func TestUnknownExperimentExitCode(t *testing.T) {
	out, errOut, code := runCLI(t, "-exp", "no-such-experiment")
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown experiment") || !strings.Contains(errOut, "no-such-experiment") {
		t.Errorf("stderr = %q, want unknown-experiment diagnostic", errOut)
	}
	// The diagnostic enumerates the runnable names so a typo is one glance
	// from its fix, not a second -list invocation.
	for _, e := range experiments.All() {
		if !strings.Contains(errOut, e.Name) {
			t.Errorf("stderr does not offer experiment %q: %q", e.Name, errOut)
		}
	}
	if out != "" {
		t.Errorf("stdout = %q, want empty (validation happens before any sweep runs)", out)
	}
}

func TestBadFlagExitCode(t *testing.T) {
	if _, _, code := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}

func TestListExperiments(t *testing.T) {
	out, _, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	for _, e := range experiments.All() {
		if !strings.Contains(out, e.Name) {
			t.Errorf("-list output missing %q", e.Name)
		}
	}
}

// TestParallelOutputIdentical is the harness's end-to-end determinism
// guarantee at the CLI boundary: for a fixed -seed the full byte stream —
// text tables, CSV and JSON alike — must not depend on -parallel.
func TestParallelOutputIdentical(t *testing.T) {
	cases := [][]string{
		{"-exp", "collectives", "-quick"},
		{"-exp", "scan-ablation", "-quick", "-csv"},
		{"-exp", "reduce-ablation", "-quick", "-json"},
	}
	for _, base := range cases {
		name := strings.Join(base, " ")
		seq, _, code := runCLI(t, append([]string{"-parallel", "1", "-seed", "7"}, base...)...)
		if code != 0 {
			t.Fatalf("%s sequential: exit %d", name, code)
		}
		par, _, code := runCLI(t, append([]string{"-parallel", "8", "-seed", "7"}, base...)...)
		if code != 0 {
			t.Fatalf("%s parallel: exit %d", name, code)
		}
		if seq != par {
			t.Errorf("%s: -parallel 1 and -parallel 8 outputs differ\n--- seq ---\n%s\n--- par ---\n%s", name, seq, par)
		}
		if len(seq) == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
}

func TestJSONOutputShape(t *testing.T) {
	out, _, code := runCLI(t, "-exp", "reduce-ablation", "-quick", "-json", "-parallel", "4")
	if code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	if !strings.Contains(out, `{"header":["n",`) {
		t.Errorf("-json output missing JSON table:\n%s", out)
	}
}

// TestAllExperimentsCriticalPath runs every experiment in quick mode with
// per-measurement critical-path verification: each measurement's recorded
// event stream must reconstruct a depth chain of exactly Depth hops and a
// distance chain summing to Distance. A mismatch panics out of the sweep.
func TestAllExperimentsCriticalPath(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("full experiment sweep skipped under the race detector (sink concurrency is covered by the harness tests)")
	}
	for _, e := range experiments.All() {
		t.Run(e.Name, func(t *testing.T) {
			e.Run(testConfig(4, func(c *experiments.Config) {
				c.H = harness.New(1, harness.WithWorkers(4), harness.WithCriticalPathCheck())
			}))
		})
	}
}

// TestTraceAndHeatmapFlags drives the CLI end to end with -trace and
// -heatmap and validates the artifacts: parseable trace_event JSON with
// send slices, and a heatmap CSV with the documented header.
func TestTraceAndHeatmapFlags(t *testing.T) {
	dir := t.TempDir()
	traceFile := dir + "/trace.json"
	heatFile := dir + "/heat.csv"
	_, errOut, code := runCLI(t, "-exp", "collectives", "-quick", "-parallel", "1",
		"-trace", traceFile, "-heatmap", heatFile)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errOut)
	}

	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	sends := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			sends++
		}
	}
	if sends == 0 {
		t.Error("trace contains no send slices")
	}

	csvRaw, err := os.ReadFile(heatFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvRaw)), "\n")
	if lines[0] != "row,col,sends,recvs,send_traffic,recv_traffic,east,west,south,north" {
		t.Errorf("heatmap header = %q", lines[0])
	}
	if len(lines) < 2 {
		t.Error("heatmap CSV has no data rows")
	}
}

// TestTraceFlagBadPath: an uncreatable trace file must fail cleanly.
// TestCacheWarmRunByteIdentical: -cache must leave stdout byte-identical
// between a cold and a fully warmed run, with hit accounting on stderr.
func TestCacheWarmRunByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "collectives", "-quick", "-parallel", "2", "-cache", dir}
	cold, _, code := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("cold exit = %d", code)
	}
	warm, errWarm, code := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("warm exit = %d", code)
	}
	if cold != warm {
		t.Errorf("warm output differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if !strings.Contains(errWarm, " 0 misses") {
		t.Errorf("warm stderr does not report an all-hit run: %s", errWarm)
	}
}

// TestServerSweepMode drives -server/-sweep against an in-process service
// engine: the printed rows must match a direct harness run of the sweep.
func TestServerSweepMode(t *testing.T) {
	reg := &harness.Registry{}
	reg.MustRegister(harness.SweepSpec{Name: "syn/cubes", Points: 3,
		Point: func(i int, env *harness.Env) []harness.Row {
			n := 1 << uint(i)
			return harness.One(n, n*n*n)
		}})
	eng := service.New(service.Config{
		Workers: 1,
		Sweeps:  func(bool) *harness.Registry { return reg },
	})
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	out, errOut, code := runCLI(t, "-server", srv.URL, "-sweep", "syn/cubes")
	if code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errOut)
	}
	if want := "1\t1\n2\t8\n4\t64\n"; out != want {
		t.Errorf("rows = %q, want %q", out, want)
	}

	if _, errOut, code = runCLI(t, "-server", srv.URL, "-sweep", "syn/nope"); code != 2 {
		t.Errorf("unknown sweep: exit = %d (stderr: %s)", code, errOut)
	}
	if _, errOut, code = runCLI(t, "-server", srv.URL); code != 2 {
		t.Errorf("missing -sweep: exit = %d (stderr: %s)", code, errOut)
	}
	if _, _, code = runCLI(t, "-sweep", "syn/cubes"); code != 2 {
		t.Errorf("-sweep without -server: exit = %d", code)
	}
}

func TestSweepListMode(t *testing.T) {
	out, _, code := runCLI(t, "-server", "ignored", "-sweep", "list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "bounds/scan") {
		t.Errorf("sweep list missing table1/scan:\n%s", out)
	}
}

func TestTraceFlagBadPath(t *testing.T) {
	_, errOut, code := runCLI(t, "-exp", "collectives", "-quick",
		"-trace", t.TempDir()+"/no/such/dir/trace.json")
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(errOut, "trace:") {
		t.Errorf("stderr = %q, want trace diagnostic", errOut)
	}
}
