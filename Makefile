GO ?= go

.PHONY: check bench test bench-compare trace-smoke

# check is the full gate: build, vet, the race-enabled test suite and the
# trace-artifact smoke test.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) trace-smoke

test:
	$(GO) test ./...

# bench reruns the simulator micro-benchmarks plus the end-to-end Table I
# sort and rewrites BENCH_machine.json. The recorded seed_baseline object
# (the pre-optimization numbers) is preserved across rewrites.
bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkMachine' -benchmem ./internal/machine/; \
	  $(GO) test -run '^$$' -bench 'BenchmarkTable1Sort' -benchtime 1x . ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_machine.json
	@echo wrote BENCH_machine.json

# bench-compare is the perf regression gate: rerun the machine-core
# micro-benchmarks and fail if any ns/op regresses more than 20% against
# the committed BENCH_machine.json. Noisy shared machines may need a wider
# tolerance: make bench-compare TOL=0.35. Run it alongside `make check`
# before committing machine/harness changes; rebaseline with `make bench`.
TOL ?= 0.20
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkMachine' -benchmem ./internal/machine/ \
	| $(GO) run ./cmd/benchjson -compare BENCH_machine.json -tol $(TOL) -match BenchmarkMachine

# trace-smoke runs one quick experiment with tracing and heatmap output on
# and validates the trace_event JSON with cmd/tracecheck (-parallel 1 keeps
# the phase scopes of the single worker readable).
TRACE_TMP := $(shell mktemp -d)
trace-smoke:
	$(GO) run ./cmd/spatialbench -exp scan-ablation -quick -parallel 1 \
		-trace $(TRACE_TMP)/trace.json -heatmap $(TRACE_TMP)/heat.csv > /dev/null
	$(GO) run ./cmd/tracecheck $(TRACE_TMP)/trace.json
	@head -1 $(TRACE_TMP)/heat.csv | grep -q '^row,col,sends' \
		|| { echo "trace-smoke: bad heatmap header" >&2; exit 1; }
	@rm -rf $(TRACE_TMP)
