GO ?= go

.PHONY: check bench test bench-compare trace-smoke spatiald-smoke tune-smoke graph-smoke backend-smoke conformance conformance-full experiments-refresh staticcheck

# check is the full gate: build, vet, staticcheck, the race-enabled test
# suite, the trace-artifact smoke test, the spatiald daemon smoke test and
# the quick conformance run.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) staticcheck
	$(GO) test -race ./...
	$(MAKE) trace-smoke
	$(MAKE) spatiald-smoke
	$(MAKE) tune-smoke
	$(MAKE) graph-smoke
	$(MAKE) backend-smoke
	$(MAKE) conformance QUICK=1

test:
	$(GO) test ./...

# staticcheck runs the pinned honnef.co/go/tools linter. The tool is not
# vendored, so offline machines (no module proxy) skip it with a warning
# instead of failing `make check`; CI always has network and runs it for
# real. Pin bumps go here and in .github/workflows/ci.yml together.
STATICCHECK_VERSION ?= 2025.1.1
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	elif $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... ; \
	else \
		echo "staticcheck: tool unavailable (offline?); skipping" >&2 ; \
	fi

# conformance machine-checks every registered Θ/O claim against fresh
# sweeps (internal/bounds); non-zero exit means a bound no longer holds.
# QUICK=1 runs the smaller sweeps (~10 s, the CI gate); the default full
# sweeps — sort-family included — reach n = 2²⁰ and take a few minutes
# single-core (boundcheck defaults to shard-parallel rounds and the batched
# counting-only send path; rows are byte-identical to the sequential
# engine's). JSON=1 emits structured verdicts on stdout.
conformance:
	@$(GO) run ./cmd/boundcheck $(if $(QUICK),-quick,-full) $(if $(JSON),-json)

# conformance-full is the nightly entry point: full sweeps with a
# per-sweep wall-clock budget so a slow runner truncates sweeps (recorded
# in the JSON sweep stats) instead of hanging the job. Override with
# `make conformance-full TIMEOUT=20m`; JSON=1 as above. CACHE_DIR=path
# runs with the content-addressed result cache, so a repeat run on an
# unchanged tree is served from disk instead of re-simulated (the nightly
# workflow persists the directory between runs). The recipes are
# @-silenced so `JSON=1 > file.json` captures a pure JSON document — an
# echoed recipe line would corrupt the nightly artifact.
TIMEOUT ?= 9m
conformance-full:
	@$(GO) run ./cmd/boundcheck -full -timeout $(TIMEOUT) $(if $(JSON),-json) $(if $(CACHE_DIR),-cache $(CACHE_DIR))

# experiments-refresh regenerates the conformance verdict table used in
# EXPERIMENTS.md (full sweeps, JSON verdicts). Paste/update the verdict
# columns from this output when re-recording results.
experiments-refresh:
	$(GO) run ./cmd/boundcheck -full -json

# bench reruns the simulator micro-benchmarks plus two end-to-end
# measurements — the Table I sort and the MeshSortPoint value/counting pair
# (whose ns/op ratio records the single-measurement speedup of the batched
# send API) — plus the warm result-cache benchmark (its hit_rate metric
# tells bench-compare the timing measured cache lookups, not simulation)
# and rewrites BENCH_machine.json. The recorded seed_baseline object (the
# pre-optimization numbers) is preserved across rewrites.
bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkMachine' -benchmem ./internal/machine/; \
	  $(GO) test -run '^$$' -bench 'BenchmarkCacheHit' -benchmem ./internal/harness/; \
	  $(GO) test -run '^$$' -bench 'BenchmarkTable1Sort|BenchmarkMeshSortPoint' -benchtime 1x . ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_machine.json
	@echo wrote BENCH_machine.json

# bench-compare is the perf regression gate: rerun the machine-core
# micro-benchmarks and fail if any ns/op regresses more than 20% against
# the committed BENCH_machine.json. Noisy shared machines may need a wider
# tolerance: make bench-compare TOL=0.35. Run it alongside `make check`
# before committing machine/harness changes; rebaseline with `make bench`.
TOL ?= 0.20
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkMachine' -benchmem ./internal/machine/ \
	| $(GO) run ./cmd/benchjson -compare BENCH_machine.json -tol $(TOL) -match BenchmarkMachine

# spatiald-smoke boots the daemon on a random port, submits the same
# boundcheck job twice and checks the second is served from cache with a
# byte-identical verdict document — all under the race detector. This is
# exactly the cmd/spatiald test suite, named as a target so CI and `make
# check` gate on it explicitly.
spatiald-smoke:
	$(GO) test -race -count 1 ./cmd/spatiald/ ./internal/service/

# tune-smoke runs the layout/schedule auto-tuner end to end under the
# race detector: the tuner and spatialtune test suites, then a real quick
# tune through the result cache whose warm rerun must produce the
# byte-identical JSON verdict document (the tuner's determinism contract:
# output is a pure function of (workloads, sizes, seed)).
tune-smoke:
	$(GO) test -race -count 1 ./internal/tuner/ ./cmd/spatialtune/
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run -race ./cmd/spatialtune -quick -json -cache $$tmp/cache > $$tmp/a.json; \
	$(GO) run -race ./cmd/spatialtune -quick -json -cache $$tmp/cache > $$tmp/b.json; \
	cmp $$tmp/a.json $$tmp/b.json \
		|| { echo "tune-smoke: warm rerun verdict differs" >&2; exit 1; }

# graph-smoke gates the composed graph-analytics suite: the internal/graph
# tests under the race detector (every algorithm checked against its host
# reference, answers pinned across shards/batch/mappings), then the quick
# graph bound claims through the result cache — the warm rerun must emit
# the byte-identical verdict JSON, which is the suite's determinism
# contract at the CLI boundary.
graph-smoke:
	$(GO) test -race -count 1 ./internal/graph/
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/boundcheck -quick -run graph/ -json -cache $$tmp/cache > $$tmp/a.json; \
	$(GO) run ./cmd/boundcheck -quick -run graph/ -json -cache $$tmp/cache > $$tmp/b.json; \
	cmp $$tmp/a.json $$tmp/b.json \
		|| { echo "graph-smoke: warm rerun verdict differs" >&2; exit 1; }

# backend-smoke gates the finite-hardware backend layer: the folded
# mesh/torus machine tests under the race detector (sharded folded runs
# must stay byte-identical to the sequential folded engine), then the
# quick backend bound claims through the result cache — the warm rerun
# must emit the byte-identical verdict JSON, so backend simcache keying
# and verdict determinism are checked at the CLI boundary.
backend-smoke:
	$(GO) test -race -count 1 -run 'Backend|Fold' ./internal/machine/ ./internal/harness/ ./spatialdf/
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/boundcheck -quick -run backend/ -json -cache $$tmp/cache > $$tmp/a.json; \
	$(GO) run ./cmd/boundcheck -quick -run backend/ -json -cache $$tmp/cache > $$tmp/b.json; \
	cmp $$tmp/a.json $$tmp/b.json \
		|| { echo "backend-smoke: warm rerun verdict differs" >&2; exit 1; }

# trace-smoke runs one quick experiment with tracing and heatmap output on
# and validates the trace_event JSON with cmd/tracecheck (-parallel 1 keeps
# the phase scopes of the single worker readable). The temp dir is created
# inside the recipe — a `:=` $(shell mktemp -d) would leak a directory on
# every make invocation, even `make help` — and removed on any exit.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/spatialbench -exp scan-ablation -quick -parallel 1 \
		-trace $$tmp/trace.json -heatmap $$tmp/heat.csv > /dev/null; \
	$(GO) run ./cmd/tracecheck $$tmp/trace.json; \
	head -1 $$tmp/heat.csv | grep -q '^row,col,sends' \
		|| { echo "trace-smoke: bad heatmap header" >&2; exit 1; }
