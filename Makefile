GO ?= go

.PHONY: check bench test

# check is the full gate: build, vet and the race-enabled test suite.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

test:
	$(GO) test ./...

# bench reruns the simulator micro-benchmarks plus the end-to-end Table I
# sort and rewrites BENCH_machine.json. The recorded seed_baseline object
# (the pre-optimization numbers) is preserved across rewrites.
bench:
	{ $(GO) test -run '^$$' -bench 'BenchmarkMachine' -benchmem ./internal/machine/; \
	  $(GO) test -run '^$$' -bench 'BenchmarkTable1Sort' -benchtime 1x . ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_machine.json
	@echo wrote BENCH_machine.json
