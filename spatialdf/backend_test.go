package spatialdf

import (
	"math/rand"
	"strings"
	"testing"
)

// TestWithBackendFacade: a finite backend must change only the cost
// metrics, never the computed answer — and the ordering E_torus <= E_mesh
// <= E_ideal must hold (folding contracts distances; wraparound shortens
// them further).
func TestWithBackendFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	base, baseMet := Sort(vals)
	mesh, meshMet := Sort(vals, WithBackend("mesh:8x8:4"))
	torus, torusMet := Sort(vals, WithBackend("torus:8x8:4"))
	for i := range base {
		if mesh[i] != base[i] || torus[i] != base[i] {
			t.Fatalf("backend changed the answer at index %d", i)
		}
	}
	if meshMet.Messages != baseMet.Messages || torusMet.Messages != baseMet.Messages {
		t.Errorf("backend changed message count: ideal %d mesh %d torus %d",
			baseMet.Messages, meshMet.Messages, torusMet.Messages)
	}
	if meshMet.Energy > baseMet.Energy {
		t.Errorf("mesh energy %d exceeds ideal %d", meshMet.Energy, baseMet.Energy)
	}
	if torusMet.Energy > meshMet.Energy {
		t.Errorf("torus energy %d exceeds mesh %d", torusMet.Energy, meshMet.Energy)
	}
	// "ideal" is the explicit spelling of the default.
	ideal, idealMet := Sort(vals, WithBackend("ideal"))
	if idealMet.Energy != baseMet.Energy {
		t.Errorf("explicit ideal backend energy %d, default %d", idealMet.Energy, baseMet.Energy)
	}
	for i := range base {
		if ideal[i] != base[i] {
			t.Fatalf("explicit ideal backend changed the answer at index %d", i)
		}
	}
}

// TestWithBackendBadSpec: malformed specs follow the Option error contract
// (error return on error-returning ops, documented panic otherwise).
func TestWithBackendBadSpec(t *testing.T) {
	vals := []float64{3, 1, 2}
	_, _, err := Select(vals, 1, WithBackend("mesh:0x4"))
	if err == nil || !strings.Contains(err.Error(), "WithBackend") {
		t.Errorf("Select err = %v, want a WithBackend parse error", err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(optionErrString(r), "WithBackend") {
				t.Errorf("Sort panic = %v, want a WithBackend parse error", r)
			}
		}()
		Sort(vals, WithBackend("grid:banana"))
	}()
}

// TestWithBackendComposesWithCongestion: congestion tracking on a folded
// fabric reports physical link loads, which can only concentrate relative
// to the unbounded grid.
func TestWithBackendComposesWithCongestion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	_, idealMet := Sort(vals, WithCongestion())
	_, meshMet := Sort(vals, WithCongestion(), WithBackend("mesh:4x4:8"))
	if idealMet.MaxLinkLoad <= 0 || meshMet.MaxLinkLoad <= 0 {
		t.Fatalf("congestion tracking inactive: ideal %d mesh %d", idealMet.MaxLinkLoad, meshMet.MaxLinkLoad)
	}
	if meshMet.MaxLinkLoad < idealMet.MaxLinkLoad {
		t.Errorf("folding spread load out: mesh max %d < ideal max %d", meshMet.MaxLinkLoad, idealMet.MaxLinkLoad)
	}
}
