package spatialdf

import (
	"repro/internal/machine"
	"repro/internal/trace"
)

// Coord identifies one processing element of the simulated grid in trace
// events. The grid is unbounded; negative coordinates are valid.
type Coord = trace.Coord

// Event is one traced message: who sent it, who received it, how far it
// travelled and where it sits on the dependency chains the cost model
// tracks. See the trace package for the field-by-field contract.
type Event = trace.Event

// TraceSink consumes the event stream of an operation's machine. The
// built-in sinks (trace.CriticalPath, trace.Heatmap, trace.Counters,
// trace.NewChromeSink) and combinators (trace.Multi, trace.Synchronized)
// all satisfy it.
type TraceSink = trace.Sink

// Tracer receives a callback for every message the simulated machine sends.
// It is the legacy callback form of WithTraceSink: the callback sees only
// the endpoints and the payload, not the cost annotations. It must not call
// back into the facade.
type Tracer func(from, to Coord, v any)

// Option configures the simulated machine an operation runs on. Every
// facade operation accepts options; options meaningless to an operation
// (e.g. WithSeed on a deterministic scan) are ignored.
type Option func(*config)

type config struct {
	memLimit   int
	congestion bool
	sinks      []trace.Sink
	seed       int64
}

func buildConfig(opts []Option) config {
	cfg := config{seed: 1}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithMemoryLimit bounds the number of registers any single PE may hold,
// certifying the model's O(1)-memory contract. Exceeding the limit is an
// algorithmic contract violation: operations that return an error report it
// as a machine.MemoryLimitError; operations without an error return panic.
func WithMemoryLimit(limit int) Option {
	return func(c *config) { c.memLimit = limit }
}

// WithCongestion enables per-link traffic tracking under dimension-ordered
// (X-then-Y) mesh routing; the resulting maximum per-link load is reported
// in Metrics.MaxLinkLoad. Tracking costs O(distance) bookkeeping per
// message, so it is off by default.
func WithCongestion() Option {
	return func(c *config) { c.congestion = true }
}

// WithTraceSink attaches a sink to the operation's machine; it receives one
// Event per message sent. Multiple WithTraceSink options fan out to every
// sink in order. The operation does not close the sink — callers flush or
// close file-backed sinks (e.g. trace.NewChromeSink) themselves after the
// operation returns. A nil sink is ignored.
func WithTraceSink(s TraceSink) Option {
	return func(c *config) {
		if s != nil {
			c.sinks = append(c.sinks, s)
		}
	}
}

// WithTracer installs a callback invoked for every message sent. It is a
// thin adapter over WithTraceSink for callers that only want endpoints and
// payloads; new code should prefer WithTraceSink, whose events also carry
// the distance, chain-depth and energy annotations.
func WithTracer(t Tracer) Option {
	if t == nil {
		return func(*config) {}
	}
	return WithTraceSink(trace.SinkFunc(func(e *trace.Event) {
		t(e.From, e.To, e.Value)
	}))
}

// WithSeed sets the seed of the pseudo-random choices of randomized
// operations (Select, Median). Results are deterministic for a fixed seed;
// the default seed is 1.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// newMachine constructs the simulated machine an operation runs on. Every
// machine gets a critical-path recorder ahead of the caller's sinks so
// Metrics.CriticalPath is available on demand.
func (c config) newMachine() *machine.Machine {
	var m *machine.Machine
	if c.memLimit > 0 {
		m = machine.NewWithMemoryLimit(c.memLimit)
	} else {
		m = machine.New()
	}
	if c.congestion {
		m.EnableCongestionTracking()
	}
	all := append([]trace.Sink{trace.NewCriticalPath()}, c.sinks...)
	m.SetSink(trace.Multi(all...))
	return m
}

// captureMemLimit converts a memory-limit contract violation into the
// returned error of the enclosing operation. Any other panic propagates.
func captureMemLimit(err *error) {
	if r := recover(); r != nil {
		if mle, ok := r.(machine.MemoryLimitError); ok {
			*err = mle
			return
		}
		panic(r)
	}
}
