package spatialdf

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mapping"
	"repro/internal/trace"
)

// Coord identifies one processing element of the simulated grid in trace
// events. The grid is unbounded; negative coordinates are valid.
type Coord = trace.Coord

// Event is one traced message: who sent it, who received it, how far it
// travelled and where it sits on the dependency chains the cost model
// tracks. See the trace package for the field-by-field contract.
type Event = trace.Event

// TraceSink consumes the event stream of an operation's machine. The
// built-in sinks (trace.CriticalPath, trace.Heatmap, trace.Counters,
// trace.NewChromeSink) and combinators (trace.Multi, trace.Synchronized)
// all satisfy it.
type TraceSink = trace.Sink

// Tracer receives a callback for every message the simulated machine sends.
// It is the legacy callback form of WithTraceSink: the callback sees only
// the endpoints and the payload, not the cost annotations. It must not call
// back into the facade.
//
// Deprecated: use a TraceSink with WithTraceSink instead.
type Tracer func(from, to Coord, v any)

// Option configures the simulated machine an operation runs on. Every
// facade operation accepts options; options meaningless to an operation
// (e.g. WithSeed on a deterministic scan) are ignored.
//
// Some option combinations are contradictory (see WithShards and
// WithBatchSends). Operations that return an error report an invalid
// combination as that error; operations without an error return panic with
// it, like they do for the memory-limit contract.
type Option func(*config)

type config struct {
	memLimit   int
	congestion bool
	sinks      []trace.Sink
	seed       int64
	shards     int
	batchSends bool
	mapping    mapping.Mapping
	mapped     bool
	backend    machine.Backend
	err        error
}

func buildConfig(opts []Option) config {
	cfg := config{seed: 1}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if cfg.err == nil {
		cfg.err = cfg.validate()
	}
	return cfg
}

// validate rejects contradictory option combinations. The rules mirror the
// machine's semantics: sharding reports a memory-limit violation only after
// the offending round completes, so the deterministic mid-round panic the
// limit promises needs the sequential engine; the counting-only fast path
// keeps payloads host-side, which would blind both a trace sink and the
// per-PE memory accounting.
func (c config) validate() error {
	if c.shards > 1 && c.memLimit > 0 {
		return fmt.Errorf("spatialdf: WithShards(%d) is incompatible with WithMemoryLimit (violation attribution needs the sequential engine)", c.shards)
	}
	if c.batchSends {
		if c.memLimit > 0 {
			return fmt.Errorf("spatialdf: WithBatchSends is incompatible with WithMemoryLimit (counting-only sends keep payloads host-side)")
		}
		if len(c.sinks) > 0 {
			return fmt.Errorf("spatialdf: WithBatchSends is incompatible with WithTraceSink/WithTracer (counting-only sends carry no payload to trace)")
		}
	}
	return nil
}

// WithMemoryLimit bounds the number of registers any single PE may hold,
// certifying the model's O(1)-memory contract. Exceeding the limit is an
// algorithmic contract violation: operations that return an error report it
// as a machine.MemoryLimitError; operations without an error return panic.
func WithMemoryLimit(limit int) Option {
	return func(c *config) { c.memLimit = limit }
}

// WithCongestion enables per-link traffic tracking under dimension-ordered
// (X-then-Y) mesh routing; the resulting maximum per-link load is reported
// in Metrics.MaxLinkLoad. Tracking costs O(distance) bookkeeping per
// message, so it is off by default. It composes with WithShards: link loads
// are tracked in the (sequential) charge pass, so the reported load is
// identical for every shard count.
func WithCongestion() Option {
	return func(c *config) { c.congestion = true }
}

// WithShards executes the operation's parallel rounds across k shards of
// the PE grid (destination-tile partitioning; see internal/machine). The
// results and Metrics are byte-identical for every k — sharding changes
// wall-clock time only. k <= 1 keeps rounds sequential. Composes with
// WithCongestion and WithTraceSink (the event stream stays in issue order);
// combining it with WithMemoryLimit is an error, reported per the Option
// contract.
func WithShards(k int) Option {
	return func(c *config) {
		if k < 1 {
			c.err = fmt.Errorf("spatialdf: WithShards(%d): shard count must be at least 1", k)
			return
		}
		c.shards = k
	}
}

// WithBatchSends drives the operation through the machine's batched send
// API with the counting-only fast path enabled: operations whose
// communication is data-oblivious (SortBitonic, SortMesh) keep payloads
// host-side and skip the register traffic. Energy, Depth, Distance and
// Messages are unchanged; PeakMemory reflects only the registers actually
// materialized, and Metrics.CriticalPath is unavailable (the implicit
// critical-path recorder is a trace sink, which the fast path forgoes).
// Combining it with WithTraceSink, WithTracer or WithMemoryLimit is an
// error, reported per the Option contract.
func WithBatchSends() Option {
	return func(c *config) { c.batchSends = true }
}

// WithTraceSink attaches a sink to the operation's machine; it receives one
// Event per message sent. Multiple WithTraceSink options fan out to every
// sink in order. The operation does not close the sink — callers flush or
// close file-backed sinks (e.g. trace.NewChromeSink) themselves after the
// operation returns. A nil sink is ignored.
func WithTraceSink(s TraceSink) Option {
	return func(c *config) {
		if s != nil {
			c.sinks = append(c.sinks, s)
		}
	}
}

// WithTracer installs a callback invoked for every message sent. It is a
// thin adapter over WithTraceSink for callers that only want endpoints and
// payloads.
//
// Deprecated: use WithTraceSink, whose events also carry the distance,
// chain-depth and energy annotations the cost model is about. WithTracer
// remains as a compatibility veneer and will not grow new capabilities.
func WithTracer(t Tracer) Option {
	if t == nil {
		return func(*config) {}
	}
	return WithTraceSink(trace.SinkFunc(func(e *trace.Event) {
		t(e.From, e.To, e.Value)
	}))
}

// WithBackend runs the operation on a finite hardware backend instead of
// the ideal unbounded grid. The spec is "ideal" (the default), or
// "mesh:WxH[:block]" / "torus:WxH[:block]": the virtual grid folds onto a
// W×H fabric of physical PEs (block consecutive virtual PEs per physical
// PE per axis) and every message is charged the mesh — or wraparound torus
// — distance between the physical homes of its endpoints. Results are
// identical under every backend; only the cost metrics (Energy, Distance,
// PeakMemory, MaxLinkLoad) change. A malformed spec is an error, reported
// per the Option contract.
func WithBackend(spec string) Option {
	return func(c *config) {
		b, err := machine.ParseBackend(spec)
		if err != nil {
			c.err = fmt.Errorf("spatialdf: WithBackend: %w", err)
			return
		}
		c.backend = b
	}
}

// WithSeed sets the seed of the pseudo-random choices of randomized
// operations (Select, Median). Results are deterministic for a fixed seed;
// the default seed is 1.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// newMachine constructs the simulated machine an operation runs on. Every
// machine gets a critical-path recorder ahead of the caller's sinks so
// Metrics.CriticalPath is available on demand — except under WithBatchSends,
// whose counting-only fast path requires a sink-free machine. An invalid
// option combination panics here with the config error; error-returning
// operations recover it (see capture).
func (c config) newMachine() *machine.Machine {
	if c.err != nil {
		panic(optionError{c.err})
	}
	var m *machine.Machine
	if c.memLimit > 0 {
		m = machine.NewWithMemoryLimit(c.memLimit)
	} else {
		m = machine.New()
	}
	if c.congestion {
		m.EnableCongestionTracking()
	}
	if c.batchSends {
		m.SetBatchSends(true)
	} else {
		all := append([]trace.Sink{trace.NewCriticalPath()}, c.sinks...)
		m.SetSink(trace.Multi(all...))
	}
	if c.shards > 1 {
		m.SetShards(c.shards)
	}
	if c.backend.Finite() {
		m.SetBackend(c.backend)
	}
	return m
}

// optionError wraps an invalid option combination for transport through the
// panic path of operations that lack an error return.
type optionError struct{ err error }

func (e optionError) Error() string { return e.err.Error() }

// captureMemLimit converts a memory-limit contract violation or an invalid
// option combination into the returned error of the enclosing operation.
// Any other panic propagates.
func captureMemLimit(err *error) {
	if r := recover(); r != nil {
		switch v := r.(type) {
		case machine.MemoryLimitError:
			*err = v
		case optionError:
			*err = v.err
		default:
			panic(r)
		}
	}
}
