package spatialdf

import (
	"repro/internal/machine"
)

// Coord identifies one processing element of the simulated grid in tracer
// callbacks. The grid is unbounded; negative coordinates are valid.
type Coord struct {
	Row, Col int
}

// Tracer receives a callback for every message the simulated machine sends,
// for visualization and debugging. It must not call back into the facade.
type Tracer func(from, to Coord, v any)

// Option configures the simulated machine an operation runs on. Every
// facade operation accepts options; options meaningless to an operation
// (e.g. WithSeed on a deterministic scan) are ignored.
type Option func(*config)

type config struct {
	memLimit   int
	congestion bool
	tracer     Tracer
	seed       int64
}

func buildConfig(opts []Option) config {
	cfg := config{seed: 1}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithMemoryLimit bounds the number of registers any single PE may hold,
// certifying the model's O(1)-memory contract. Exceeding the limit is an
// algorithmic contract violation: operations that return an error report it
// as a machine.MemoryLimitError; operations without an error return panic.
func WithMemoryLimit(limit int) Option {
	return func(c *config) { c.memLimit = limit }
}

// WithCongestion enables per-link traffic tracking under dimension-ordered
// (X-then-Y) mesh routing; the resulting maximum per-link load is reported
// in Metrics.MaxLinkLoad. Tracking costs O(distance) bookkeeping per
// message, so it is off by default.
func WithCongestion() Option {
	return func(c *config) { c.congestion = true }
}

// WithTracer installs a callback invoked for every message sent.
func WithTracer(t Tracer) Option {
	return func(c *config) { c.tracer = t }
}

// WithSeed sets the seed of the pseudo-random choices of randomized
// operations (Select, Median). Results are deterministic for a fixed seed;
// the default seed is 1.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// newMachine constructs the simulated machine an operation runs on.
func (c config) newMachine() *machine.Machine {
	var m *machine.Machine
	if c.memLimit > 0 {
		m = machine.NewWithMemoryLimit(c.memLimit)
	} else {
		m = machine.New()
	}
	if c.congestion {
		m.EnableCongestionTracking()
	}
	if c.tracer != nil {
		t := c.tracer
		m.SetTracer(func(from, to machine.Coord, v machine.Value) {
			t(Coord{from.Row, from.Col}, Coord{to.Row, to.Col}, v)
		})
	}
	return m
}

// captureMemLimit converts a memory-limit contract violation into the
// returned error of the enclosing operation. Any other panic propagates.
func captureMemLimit(err *error) {
	if r := recover(); r != nil {
		if mle, ok := r.(machine.MemoryLimitError); ok {
			*err = mle
			return
		}
		panic(r)
	}
}
