package spatialdf

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScanArbitraryLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 7, 16, 100, 333} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		got, metrics := Scan(vals)
		acc := 0.0
		for i := range vals {
			acc += vals[i]
			if d := got[i] - acc; d > 1e-9 || d < -1e-9 {
				t.Fatalf("n=%d: prefix[%d] = %v, want %v", n, i, got[i], acc)
			}
		}
		if n > 1 && metrics.Energy == 0 {
			t.Errorf("n=%d: zero energy", n)
		}
	}
}

func TestScanEmpty(t *testing.T) {
	out, metrics := Scan(nil)
	if out != nil || metrics.Energy != 0 {
		t.Error("empty scan should be free")
	}
}

func TestScanWithMax(t *testing.T) {
	maxOp := func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	got, _ := ScanWith(maxOp, -1e18, vals)
	want := []float64{3, 3, 4, 4, 5, 9, 9, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("running max[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSegmentedScan(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6}
	heads := []bool{true, false, true, false, false, true}
	got, _, err := SegmentedScan(vals, heads)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 3, 7, 12, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segmented[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	a, am := Scan(vals)
	b, bm := ScanTree(vals)
	c, cm := ScanSequential(vals)
	for i := range vals {
		if d := a[i] - b[i]; d > 1e-9 || d < -1e-9 {
			t.Fatal("tree scan disagrees")
		}
		if d := a[i] - c[i]; d > 1e-9 || d < -1e-9 {
			t.Fatal("sequential scan disagrees")
		}
	}
	if !(am.Energy < bm.Energy) {
		t.Errorf("z-order scan energy %d should beat tree scan %d", am.Energy, bm.Energy)
	}
	if !(am.Depth < cm.Depth) {
		t.Errorf("z-order scan depth %d should beat sequential %d", am.Depth, cm.Depth)
	}
}

func TestReduceMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 100)
	want := 0.0
	for i := range vals {
		vals[i] = rng.Float64()
		want += vals[i]
	}
	got, _ := Reduce(vals)
	if d := got - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("Reduce = %v, want %v", got, want)
	}
}

func TestBroadcastCost(t *testing.T) {
	m := BroadcastCost(4096)
	if m.Energy < 4096 || m.Energy > 4*4096 {
		t.Errorf("broadcast energy %d not Theta(n)", m.Energy)
	}
	if m.Depth > 16 {
		t.Errorf("broadcast depth %d not logarithmic", m.Depth)
	}
}

func TestSortVariantsAllSort(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 150) // deliberately not a power of four
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	want := append([]float64(nil), vals...)
	sort.Float64s(want)
	for name, f := range map[string]func([]float64, ...Option) ([]float64, Metrics){
		"mergesort": Sort, "bitonic": SortBitonic, "mesh": SortMesh,
	} {
		got, _ := f(vals)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: sorted[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
}

func TestSortQuick(t *testing.T) {
	f := func(raw []int16) bool {
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		got, _ := Sort(vals)
		want := append([]float64(nil), vals...)
		sort.Float64s(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSortEnergyAndDepthShapes(t *testing.T) {
	// The paper's comparative claims are asymptotic; at simulatable sizes
	// we verify the *shapes*: bitonic's normalized energy E/n^1.5 grows
	// (the Theta(log n) factor of Lemma V.4) while mergesort's falls
	// toward its constant (Theorem V.8), so their ratio converges; the
	// mesh sort has polynomial depth while mergesort stays polylog.
	rng := rand.New(rand.NewSource(5))
	norm := func(n int, f func([]float64, ...Option) ([]float64, Metrics)) float64 {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		_, m := f(vals)
		return float64(m.Energy) / (float64(n) * math.Sqrt(float64(n)))
	}
	ms1, ms4 := norm(1024, Sort), norm(4096, Sort)
	mb1, mb4 := norm(1024, SortBitonic), norm(4096, SortBitonic)
	if ms4 >= ms1 {
		t.Errorf("mergesort E/n^1.5 should fall: %.1f -> %.1f", ms1, ms4)
	}
	if mb4 <= mb1 {
		t.Errorf("bitonic E/n^1.5 should grow: %.1f -> %.1f", mb1, mb4)
	}
	if ms4/mb4 >= ms1/mb1 {
		t.Errorf("mergesort/bitonic energy gap should shrink: %.2f -> %.2f", ms1/mb1, ms4/mb4)
	}

	n := 4096
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	_, ms := Sort(vals)
	_, mm := SortMesh(vals)
	logn := math.Log2(float64(n))
	if float64(ms.Depth) > logn*logn*logn {
		t.Errorf("mergesort depth %d exceeds log^3 n = %.0f", ms.Depth, logn*logn*logn)
	}
	if float64(mm.Depth) < 5*math.Sqrt(float64(n)) {
		t.Errorf("mesh depth %d unexpectedly below 5*sqrt(n)", mm.Depth)
	}
}

func TestSelectAndMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, k := range []int{1, 50, 100, 200} {
		got, _, err := Select(vals, k, WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		if got != sorted[k-1] {
			t.Fatalf("Select(%d) = %v, want %v", k, got, sorted[k-1])
		}
	}
	med, _, err := Median(vals, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if med != sorted[99] {
		t.Errorf("Median = %v, want %v", med, sorted[99])
	}
}

func TestSelectCheaperThanSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	_, msel, err := Select(vals, 512, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	_, msort := Sort(vals)
	if msel.Energy >= msort.Energy {
		t.Errorf("selection energy %d should beat sorting %d", msel.Energy, msort.Energy)
	}
}

func TestPermuteReversal(t *testing.T) {
	n := 256
	vals := make([]float64, n)
	perm := make([]int, n)
	for i := range vals {
		vals[i] = float64(i)
		perm[i] = n - 1 - i
	}
	got, metrics, err := Permute(vals, perm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != float64(n-1-i) {
			t.Fatalf("reversed[%d] = %v", i, got[i])
		}
	}
	// Lemma V.1: the reversal costs Omega(n^{3/2}).
	if metrics.Energy < int64(n)*16/4 {
		t.Errorf("reversal energy %d below n^{3/2}/4", metrics.Energy)
	}
}

func TestSpMVAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Matrix{N: 16}
	for i := 0; i < 48; i++ {
		a.Entries = append(a.Entries, MatrixEntry{Row: rng.Intn(16), Col: rng.Intn(16), Val: rng.Float64()})
	}
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.Float64()
	}
	got, metrics, err := SpMV(a, x)
	if err != nil {
		t.Fatal(err)
	}
	want := a.MultiplyDense(x)
	for i := range want {
		if d := got[i] - want[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("SpMV[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if metrics.Energy == 0 {
		t.Error("SpMV reported zero energy")
	}
}

func TestSpMVPRAMAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Matrix{N: 8}
	for i := 0; i < 20; i++ {
		a.Entries = append(a.Entries, MatrixEntry{Row: rng.Intn(8), Col: rng.Intn(8), Val: rng.Float64()})
	}
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.Float64()
	}
	got, _, err := SpMVPRAM(a, x)
	if err != nil {
		t.Fatal(err)
	}
	want := a.MultiplyDense(x)
	for i := range want {
		if d := got[i] - want[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("SpMVPRAM[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMetricsSequential(t *testing.T) {
	a := Metrics{Energy: 10, Depth: 3, Distance: 5, Messages: 2, PeakMemory: 4, MaxLinkLoad: 9}
	b := Metrics{Energy: 1, Depth: 2, Distance: 1, Messages: 1, PeakMemory: 7, MaxLinkLoad: 2}
	c := a.Sequential(b)
	if c.Energy != 11 || c.Depth != 5 || c.Distance != 6 || c.Messages != 3 || c.PeakMemory != 7 {
		t.Errorf("Sequential = %+v", c)
	}
	if c.MaxLinkLoad != 9 {
		t.Errorf("Sequential MaxLinkLoad = %d, want max(9,2)", c.MaxLinkLoad)
	}
}

func TestSelectRejectsBadRank(t *testing.T) {
	for _, k := range []int{0, -1, 3} {
		if _, _, err := Select([]float64{1, 2}, k); err == nil {
			t.Errorf("Select rank %d accepted", k)
		}
	}
	if _, _, err := Median(nil); err == nil {
		t.Error("Median of empty slice accepted")
	}
}

func TestSortIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	order, _ := SortIndices(vals)
	seen := make([]bool, len(vals))
	for i := 1; i < len(order); i++ {
		if vals[order[i]] < vals[order[i-1]] {
			t.Fatalf("SortIndices out of order at %d", i)
		}
	}
	for _, idx := range order {
		if idx < 0 || idx >= len(vals) || seen[idx] {
			t.Fatalf("SortIndices not a permutation: %v", order)
		}
		seen[idx] = true
	}
}

func TestSortIndicesStable(t *testing.T) {
	// Equal keys must keep their original relative order.
	vals := []float64{2, 1, 2, 1, 2, 1, 1, 2}
	order, _ := SortIndices(vals)
	want := []int{1, 3, 5, 6, 0, 2, 4, 7}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("SortIndices = %v, want %v", order, want)
		}
	}
}

func TestGNNForward(t *testing.T) {
	g := GNNGraph{Nodes: 8, Edges: []GraphEdge{
		{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1}, {4, 5, 2}, {6, 7, 1}, {0, 4, 1},
	}}
	features := [][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{8, 7, 6, 5, 4, 3, 2, 1},
	}
	net := GNN{Layers: 2, TopK: 3}
	pooled, picked, cost, err := net.Forward(g, features)
	if err != nil {
		t.Fatal(err)
	}
	if len(pooled) != 3 || len(pooled[0]) != 2 || len(picked) != 3 {
		t.Fatalf("pooled %dx? picked %d", len(pooled), len(picked))
	}
	if cost.Energy == 0 || cost.Depth == 0 {
		t.Errorf("zero cost: %v", cost)
	}
	if _, _, _, err := (GNN{Layers: 1, TopK: 99}).Forward(g, features); err == nil {
		t.Error("bad TopK accepted")
	}
}

func TestTreefixFacade(t *testing.T) {
	// Path 0->1->2->3 with unit values: rootfix = depth+1, leaffix =
	// descendants+1.
	tr := Tree{Parent: []int{0, 0, 1, 2}}
	vals := []float64{1, 1, 1, 1}
	root, _, err := tr.RootfixSum(vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if root[i] != want {
			t.Fatalf("rootfix[%d] = %v, want %v", i, root[i], want)
		}
	}
	leaf, m, err := tr.LeaffixSum(vals)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{4, 3, 2, 1} {
		if leaf[i] != want {
			t.Fatalf("leaffix[%d] = %v, want %v", i, leaf[i], want)
		}
	}
	if m.Energy == 0 {
		t.Error("treefix reported zero energy")
	}
	if _, _, err := (Tree{Parent: []int{1, 0}}).RootfixSum([]float64{1, 2}); err == nil {
		t.Error("invalid tree accepted")
	}
}
